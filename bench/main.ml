(* Benchmark harness.

   Two parts:

   1. Regeneration of every table and figure in the paper's evaluation
      (Tables 1-4, Figures 1-3), from fresh deterministic simulation runs
      at the default (scaled) inputs on 8 simulated processors.  Pass a
      subset of artifact names (e.g. `table3 fig2`) to restrict; pass
      `--tiny` for a fast smoke run.

   2. Bechamel microbenchmarks of the protocol primitives that the cost
      model charges for (twin creation, diff creation/application, vector
      timestamps, the event heap), reported in nanoseconds per operation.
      Enabled with `micro` (included in the default full run).
*)

module Config = Adsm_dsm.Config
module Dsm = Adsm_dsm.Dsm
module Vc = Adsm_dsm.Vc
module Interval = Adsm_dsm.Interval
module Diff = Adsm_dsm.Diff
module Page = Adsm_mem.Page
module Eheap = Adsm_sim.Eheap
module Rng = Adsm_sim.Rng
module Registry = Adsm_apps.Registry
module Experiments = Adsm_harness.Experiments
module Pool = Adsm_harness.Pool
module Runner = Adsm_harness.Runner
module Json = Adsm_trace.Json

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks                                           *)
(* ------------------------------------------------------------------ *)

let page_pair ~modified =
  let twin = Page.create () in
  let rng = Rng.create 7L in
  for i = 0 to (Page.size / 8) - 1 do
    Page.set_f64 twin (8 * i) (Rng.float rng)
  done;
  let current = Page.copy twin in
  if modified > 0 then begin
    let slots = Page.size / 8 in
    let step = max 1 (slots / modified) in
    let k = ref 0 in
    while !k < slots do
      Page.set_f64 current (8 * !k) (float_of_int !k +. 0.5);
      k := !k + step
    done
  end;
  (twin, current)

let micro_tests () =
  let open Bechamel in
  let twin_full, current_full = page_pair ~modified:512 in
  let twin_sparse, current_sparse = page_pair ~modified:8 in
  let full_diff = Diff.create ~twin:twin_full ~current:current_full () in
  let sparse_diff = Diff.create ~twin:twin_sparse ~current:current_sparse () in
  let target = Page.create () in
  let ranges =
    List.init 16 (fun i -> ((i * 256) + (if i mod 3 = 0 then 64 else 0), 40))
  in
  let vc_a = Vc.zero ~nprocs:8 and vc_b = Vc.zero ~nprocs:8 in
  for i = 0 to 7 do
    Vc.set vc_a i (i * 3);
    Vc.set vc_b i (23 - i)
  done;
  (* 1024-wide clocks with distinct sums (the sum cut decides), an
     epoch-stamped base with a rebased clock two components ahead, and a
     4096-interval indexed log probed near its tail. *)
  let vc_big_lo = Vc.zero ~nprocs:1024 and vc_big_hi = Vc.zero ~nprocs:1024 in
  for i = 0 to 1023 do
    Vc.set vc_big_lo i i;
    Vc.set vc_big_hi i (i + 1)
  done;
  let epoch_base = Vc.copy vc_big_lo in
  let vc_rebased = Vc.copy vc_big_lo in
  Vc.rebase ~epoch:1 vc_rebased ~base:epoch_base;
  Vc.set vc_rebased 3 2000;
  Vc.set vc_rebased 700 2000;
  let big_log = Interval.Log.create () in
  for i = 1 to 4096 do
    let vc = Vc.zero ~nprocs:4 in
    Vc.set vc 0 i;
    Interval.Log.append big_log (Interval.make ~proc:0 ~vc ~notices:[])
  done;
  let log_probe = Vc.zero ~nprocs:4 in
  Vc.set log_probe 0 4090;
  [
    Test.make ~name:"twin (page copy, 4KB)"
      (Staged.stage (fun () -> ignore (Page.copy twin_full)));
    Test.make ~name:"diff create (full page)"
      (Staged.stage (fun () ->
           ignore (Diff.create ~twin:twin_full ~current:current_full ())));
    Test.make ~name:"diff create (sparse)"
      (Staged.stage (fun () ->
           ignore (Diff.create ~twin:twin_sparse ~current:current_sparse ())));
    Test.make ~name:"diff create (clean page)"
      (Staged.stage (fun () ->
           (* all-equal pages: pure scan cost, the word-skip fast path *)
           ignore (Diff.create ~twin:twin_full ~current:twin_full ())));
    Test.make ~name:"diff of_ranges (16 ranges)"
      (Staged.stage (fun () -> ignore (Diff.of_ranges ranges current_full)));
    Test.make ~name:"diff apply (full page)"
      (Staged.stage (fun () -> Diff.apply full_diff target));
    Test.make ~name:"diff apply (sparse)"
      (Staged.stage (fun () -> Diff.apply sparse_diff target));
    Test.make ~name:"vc merge+compare (8p)"
      (Staged.stage (fun () ->
           let c = Vc.copy vc_a in
           Vc.merge_into c vc_b;
           ignore (Vc.leq vc_a c && Vc.concurrent vc_a vc_b)));
    Test.make ~name:"vc merge_into (in-place, 8p)"
      (Staged.stage (fun () -> Vc.merge_into vc_a vc_b));
    (* Large-n summary ops: [leq]/[order] on 1024-wide clocks with
       distinct cached sums decide without touching the components, and
       [delta_size_bytes] against a current epoch base counts only the
       dirty components.  These are the hot comparisons of the 1024-node
       grid; see DESIGN.md "Large-n data structures". *)
    Test.make ~name:"vc leq (1024p, sum cut)"
      (Staged.stage (fun () -> ignore (Vc.leq vc_big_lo vc_big_hi)));
    Test.make ~name:"vc order (1024p, sum cut)"
      (Staged.stage (fun () -> ignore (Vc.order vc_big_hi vc_big_lo)));
    Test.make ~name:"vc delta_size (1024p, epoch)"
      (Staged.stage (fun () ->
           ignore (Vc.delta_size_bytes ~since:epoch_base vc_rebased)));
    Test.make ~name:"log first_after (4k intervals)"
      (Staged.stage (fun () -> ignore (Interval.Log.first_after big_log 2048)));
    Test.make ~name:"log unseen_by tail (4k)"
      (Staged.stage (fun () ->
           ignore (Interval.Log.unseen_by log_probe ~proc:0 big_log [])));
    Test.make ~name:"event heap push+pop x64"
      (Staged.stage (fun () ->
           let h = Eheap.create () in
           for i = 0 to 63 do
             Eheap.push h ~time:((i * 37) mod 101) ~seq:i i
           done;
           let rec drain () =
             match Eheap.pop_min h with Some _ -> drain () | None -> ()
           in
           drain ()));
  ]

(* Accessor hot-path rows: each run is a full 1-processor [Dsm.run] (its
   engine/node setup is a few microseconds, small against the 8k
   accesses), so a regression anywhere on the access path — TLB hit,
   permission check, or the outlined fault path — moves these numbers.
   The x-counts are in the row names; divide to get per-access cost. *)
let accessor_tests () =
  let open Bechamel in
  let pages = 64 in
  let cfg = Config.make ~protocol:Config.Mw ~nprocs:1 () in
  let t = Dsm.create cfg in
  let a = Dsm.alloc_f64 t ~name:"bench-accessors" ~len:(pages * 512) in
  let buf = Array.make 512 0. in
  [
    Test.make ~name:"f64_get x8192 (scalar, warm)"
      (Staged.stage (fun () ->
           ignore
             (Dsm.run t (fun ctx ->
                  let s = ref 0. in
                  for i = 0 to 8191 do
                    s := !s +. Dsm.f64_get ctx a (i land 511)
                  done;
                  ignore !s))));
    Test.make ~name:"f64_set x8192 (scalar, warm)"
      (Staged.stage (fun () ->
           ignore
             (Dsm.run t (fun ctx ->
                  for i = 0 to 8191 do
                    Dsm.f64_set ctx a (i land 511) 1.0
                  done))));
    Test.make ~name:"f64_get_run x8192 (512/run)"
      (Staged.stage (fun () ->
           ignore
             (Dsm.run t (fun ctx ->
                  for _ = 1 to 16 do
                    Dsm.f64_get_run ctx a 0 buf 0 512
                  done))));
    Test.make ~name:"f64_set_run x8192 (512/run)"
      (Staged.stage (fun () ->
           ignore
             (Dsm.run t (fun ctx ->
                  for _ = 1 to 16 do
                    Dsm.f64_set_run ctx a 0 buf 0 512
                  done))));
    Test.make ~name:"page fault x64 (read, cold)"
      (Staged.stage (fun () ->
           ignore
             (Dsm.run t (fun ctx ->
                  let s = ref 0. in
                  for p = 0 to pages - 1 do
                    s := !s +. Dsm.f64_get ctx a (p * 512)
                  done;
                  ignore !s))));
  ]

let run_micro () =
  let open Bechamel in
  print_endline "Microbenchmarks: protocol primitives (wall-clock, host CPU)";
  print_endline
    "(the simulation charges these at 1997 SPARC-20 prices instead: twin\n\
     104 us, full-page diff 179 us)\n";
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:500 ~quota:(Time.second 0.2) ~kde:None ()
  in
  let tests =
    Test.make_grouped ~name:"primitives"
      (micro_tests () @ accessor_tests ())
  in
  let raw = Benchmark.all cfg [ instance ] tests in
  let results =
    Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false
                   ~predictors:[| Measure.run |])
      instance raw
  in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] ->
        Printf.printf "  %-28s %12.1f ns/op\n"
          (match String.index_opt name '/' with
          | Some i -> String.sub name (i + 1) (String.length name - i - 1)
          | None -> name)
          est
      | _ -> ())
    results;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Simulator cost: events executed and wire traffic per protocol      *)
(* ------------------------------------------------------------------ *)

let simcost (suite : Experiments.suite) =
  let module Runner = Adsm_harness.Runner in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "Simulator cost per protocol (summed over all applications)\n";
  Buffer.add_string buf
    (Printf.sprintf "  %-8s %16s %16s %12s\n" "protocol" "events executed"
       "wire bytes" "messages");
  List.iter
    (fun protocol ->
      let ms =
        List.filter
          (fun m -> m.Runner.protocol = protocol && m.Runner.nprocs > 1)
          suite.Experiments.measurements
      in
      if ms <> [] then
        let sum f = List.fold_left (fun acc m -> acc + f m) 0 ms in
        Buffer.add_string buf
          (Printf.sprintf "  %-8s %16d %16d %12d\n"
             (Config.protocol_name protocol)
             (sum (fun m -> m.Runner.events))
             (sum (fun m -> m.Runner.wire_bytes))
             (sum (fun m -> m.Runner.messages))))
    Config.all_protocols;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Trace smoke test: run SOR with tracing on, validate the artifact   *)
(* ------------------------------------------------------------------ *)

let trace_smoke () =
  let module Runner = Adsm_harness.Runner in
  let module Trace = Adsm_trace in
  let nprocs = 4 in
  let app =
    match Registry.find "SOR" with
    | Some app -> app
    | None -> failwith "trace-smoke: SOR not registered"
  in
  let path = Filename.temp_file "adsm_trace_smoke" ".json" in
  let ring = Trace.Sink.ring () in
  let tracer =
    Trace.Tracer.create
      [
        Trace.Sink.file Trace.Sink.Chrome ~nodes:nprocs path;
        Trace.Sink.ring_sink ring;
      ]
  in
  let m =
    Runner.run ~tracer ~app ~protocol:Config.Wfs ~nprocs
      ~scale:Registry.Tiny ()
  in
  Trace.Tracer.close tracer;
  let contents = In_channel.with_open_text path In_channel.input_all in
  Sys.remove path;
  (* The emitted Chrome trace must be a valid JSON document with a
     non-empty traceEvents array covering every simulated node. *)
  let json =
    match Trace.Json.parse contents with
    | Ok json -> json
    | Error e -> failwith ("trace-smoke: chrome trace does not parse: " ^ e)
  in
  let records =
    match Option.bind (Trace.Json.member "traceEvents" json) Trace.Json.to_list
    with
    | Some (_ :: _ as l) -> l
    | _ -> failwith "trace-smoke: traceEvents missing or empty"
  in
  let pids =
    List.sort_uniq compare
      (List.filter_map
         (fun r -> Option.bind (Trace.Json.member "pid" r) Trace.Json.to_int)
         records)
  in
  if pids <> List.init nprocs Fun.id then
    failwith "trace-smoke: expected one Perfetto track per node";
  let events = Trace.Sink.ring_contents ring in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf
       "Trace smoke test: SOR under WFS, %d processors, tiny inputs\n" nprocs);
  Buffer.add_string buf
    (Printf.sprintf
       "  chrome artifact    %d bytes, %d records, valid JSON, pids 0..%d\n"
       (String.length contents) (List.length records) (nprocs - 1));
  Buffer.add_string buf
    (Printf.sprintf "  events captured    %d (ring dropped %d)\n"
       (List.length events)
       (Trace.Sink.ring_dropped ring));
  List.iter
    (fun tag ->
      let n = Trace.Query.count ~tag events in
      if n > 0 then Buffer.add_string buf (Printf.sprintf "    %-14s %6d\n" tag n))
    [
      "read-fault"; "write-fault"; "own-request"; "own-grant"; "own-refuse";
      "mode-change"; "twin-create"; "diff-create"; "diff-apply";
      "barrier-enter"; "barrier-leave"; "msg-send"; "msg-deliver";
    ];
  Buffer.add_string buf
    (Printf.sprintf "  run checksum       %.6f (%d messages)\n"
       m.Runner.checksum m.Runner.messages);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Wall-clock perf artifact: BENCH_suite.json                         *)
(* ------------------------------------------------------------------ *)

let git_rev () =
  let read path =
    try Some (String.trim (In_channel.with_open_text path In_channel.input_all))
    with Sys_error _ -> None
  in
  match read ".git/HEAD" with
  | Some head when String.length head > 5 && String.sub head 0 5 = "ref: " -> (
    let r = String.sub head 5 (String.length head - 5) in
    match read (Filename.concat ".git" r) with
    | Some rev -> rev
    | None -> head)
  | Some rev -> rev
  | None -> "unknown"

let bench_out = "BENCH_suite.json"

(* Host wall-clock rows for the node-count scaling study's two fabrics:
   SOR at tiny scale, MW and WFS, 8 -> 1024 nodes, flat vs tree.  These
   price what a CI scaling run costs on the host (the flat fabric's
   simulated time explodes with node count, but its host cost grows too:
   every barrier is an O(n) serialized fan-in through node 0's NIC, and
   each of those messages is a simulator event). *)
let scaling_cells =
  let module Scaling = Adsm_harness.Scaling in
  List.concat_map
    (fun protocol ->
      List.concat_map
        (fun nprocs ->
          List.map
            (fun fabric -> (protocol, nprocs, fabric))
            [ Scaling.Flat_central; Scaling.Tree_combining ])
        [ 8; 64; 256; 1024 ])
    [ Config.Mw; Config.Wfs ]

let run_scaling_cell ?engine (protocol, nprocs, fabric) =
  let module Scaling = Adsm_harness.Scaling in
  let app =
    match Registry.find "SOR" with
    | Some a -> a
    | None -> failwith "perf: SOR not registered"
  in
  Runner.run
    ~tweak:(Scaling.tweak_of_fabric fabric)
    ?engine ~app ~protocol ~nprocs ~scale:Registry.Tiny ()

(* The full large-cluster grid: every application under all four
   protocols on both fabrics at 1024 nodes (3D-FFT at its structural
   64-plane cap — the tiny problem has 64 planes).  Still minutes of
   host wall even after the large-n work (IS and Water dominate), so
   the rows regenerate only under [--grid]; the committed artifact
   carries them. *)
let grid_nodes = 1024

let grid_cells =
  let module Scaling = Adsm_harness.Scaling in
  List.concat_map
    (fun app ->
      List.concat_map
        (fun protocol ->
          List.map
            (fun fabric -> (app, protocol, fabric))
            [ Scaling.Flat_central; Scaling.Tree_combining ])
        Config.all_protocols)
    Registry.names

let run_grid_cell (name, protocol, fabric) =
  let module Scaling = Adsm_harness.Scaling in
  let app =
    match Registry.find name with
    | Some a -> a
    | None -> failwith ("perf: unknown application " ^ name)
  in
  let nprocs =
    if String.lowercase_ascii name = "3d-fft" then 64 else grid_nodes
  in
  ( nprocs,
    Runner.run
      ~tweak:(Scaling.tweak_of_fabric fabric)
      ~app ~protocol ~nprocs ~scale:Registry.Tiny () )

(* Conservative parallel-engine rows (see PARALLELISM.md): each cell is
   the same simulation run twice, on the sequential engine and on the
   safe-horizon engine.  The two measurements must be identical field
   for field — the engine is behavior-neutral — so the artifact records
   only host wall-clock for both plus the divergence bit.  64 and 256
   nodes are where the windows hold enough events per domain for the
   parallel engine to win on a multicore host. *)
let engine_cells =
  let module Scaling = Adsm_harness.Scaling in
  List.concat_map
    (fun protocol ->
      List.concat_map
        (fun nprocs ->
          List.map
            (fun fabric -> (protocol, nprocs, fabric))
            [ Scaling.Flat_central; Scaling.Tree_combining ])
        [ 64; 256 ])
    [ Config.Mw; Config.Wfs ]

(* Measures the real (host) cost of the simulator itself: per-cell wall
   clock and events/second for the full 8-app x 4-protocol suite, then
   the same suite again fanned out over [jobs] worker domains.  The
   parallel pass must reproduce every sequential measurement
   field-for-field — any divergence is a pool bug and fails the run. *)
let perf ~tiny ~jobs ~grid () =
  let scale = if tiny then Registry.Tiny else Registry.Default in
  let nprocs = 8 in
  let apps = Registry.names in
  let cells =
    List.concat_map
      (fun name -> List.map (fun p -> (name, p)) Config.all_protocols)
      apps
  in
  let run_cell (name, protocol) =
    let app =
      match Registry.find name with
      | Some a -> a
      | None -> failwith ("perf: unknown application " ^ name)
    in
    Runner.run ~app ~protocol ~nprocs ~scale ()
  in
  let now = Unix.gettimeofday in
  let seq_t0 = now () in
  (* Allocation stats ride along with the wall clock: the words
     allocated by the cell (deltas over the run) plus the process-wide
     heap high-water mark after it, so allocation diets show up in the
     artifact trajectory alongside wall_ns. *)
  let timed =
    List.map
      (fun cell ->
        let g0 = Gc.quick_stat () in
        let t0 = now () in
        let m = run_cell cell in
        let wall_ns = int_of_float ((now () -. t0) *. 1e9) in
        let g1 = Gc.quick_stat () in
        let alloc =
          ( g1.Gc.minor_words -. g0.Gc.minor_words,
            g1.Gc.major_words -. g0.Gc.major_words,
            g1.Gc.top_heap_words )
        in
        (cell, m, wall_ns, alloc))
      cells
  in
  let seq_wall_ns = int_of_float ((now () -. seq_t0) *. 1e9) in
  (* The sequential pass doubles as the weight oracle: dispatch the
     parallel pass longest-first so the heaviest cell (SOR/MW by a wide
     margin) cannot start last and run alone past the rest of the
     suite. *)
  let wall_of = Hashtbl.create 16 in
  List.iter (fun (cell, _, w, _) -> Hashtbl.replace wall_of cell w) timed;
  let weight cell = try Hashtbl.find wall_of cell with Not_found -> 0 in
  let par_t0 = now () in
  let par = Pool.map ~jobs ~weight run_cell cells in
  let par_wall_ns = int_of_float ((now () -. par_t0) *. 1e9) in
  let mismatches =
    List.filter (fun ((_, m, _, _), m') -> m <> m') (List.combine timed par)
  in
  let speedup = float_of_int seq_wall_ns /. float_of_int (max 1 par_wall_ns) in
  let scaling_timed =
    List.map
      (fun cell ->
        let t0 = now () in
        let m = run_scaling_cell cell in
        let wall_ns = int_of_float ((now () -. t0) *. 1e9) in
        (cell, m, wall_ns))
      scaling_cells
  in
  let engine_domains = max 2 (min 4 (Domain.recommended_domain_count ())) in
  let engine_timed =
    List.map
      (fun cell ->
        let t0 = now () in
        let m = run_scaling_cell cell in
        let t1 = now () in
        let m' =
          run_scaling_cell
            ~engine:(Config.Parallel { domains = engine_domains })
            cell
        in
        let t2 = now () in
        let seq_wall_ns = int_of_float ((t1 -. t0) *. 1e9) in
        let par_wall_ns = int_of_float ((t2 -. t1) *. 1e9) in
        (cell, m, m', seq_wall_ns, par_wall_ns))
      engine_cells
  in
  let engine_mismatches =
    List.filter (fun (_, m, m', _, _) -> m <> m') engine_timed
  in
  let engine_speedup (_, _, _, s, p) =
    float_of_int s /. float_of_int (max 1 p)
  in
  let grid_timed =
    if not grid then []
    else
      List.map
        (fun cell ->
          let t0 = now () in
          let nprocs, m = run_grid_cell cell in
          let wall_ns = int_of_float ((now () -. t0) *. 1e9) in
          (cell, nprocs, m, wall_ns))
        grid_cells
  in
  let grid_json =
    if grid_timed = [] then []
    else
      [
        ("grid_nodes", Json.Int grid_nodes);
        ( "grid",
          Json.List
            (List.map
               (fun ((name, protocol, fabric), nprocs,
                     (m : Runner.measurement), wall_ns) ->
                 Json.Obj
                   [
                     ("app", Json.String name);
                     ("protocol", Json.String (Config.protocol_name protocol));
                     ( "fabric",
                       Json.String (Adsm_harness.Scaling.fabric_name fabric) );
                     ("nprocs", Json.Int nprocs);
                     ("wall_ns", Json.Int wall_ns);
                     ("sim_time_ns", Json.Int m.Runner.time_ns);
                     ("events", Json.Int m.Runner.events);
                     ("messages", Json.Int m.Runner.messages);
                     ("wire_bytes", Json.Int m.Runner.wire_bytes);
                     ("checksum", Json.Float m.Runner.checksum);
                   ])
               grid_timed) );
      ]
  in
  let cell_json ((name, protocol), (m : Runner.measurement), wall_ns,
                 (minor_words, major_words, top_heap_words)) m' =
    let secs = float_of_int (max 1 wall_ns) /. 1e9 in
    Json.Obj
      [
        ("app", Json.String name);
        ("protocol", Json.String (Config.protocol_name protocol));
        ("wall_ns", Json.Int wall_ns);
        ("events", Json.Int m.Runner.events);
        ("events_per_sec", Json.Float (float_of_int m.Runner.events /. secs));
        ( "ns_per_event",
          Json.Float (float_of_int wall_ns /. float_of_int (max 1 m.Runner.events))
        );
        ("minor_words", Json.Float minor_words);
        ("major_words", Json.Float major_words);
        ("top_heap_words", Json.Int top_heap_words);
        ("checksum", Json.Float m.Runner.checksum);
        ("parallel_identical", Json.Bool (m = m'));
      ]
  in
  let doc =
    Json.Obj
      ([
        ("run_id", Json.String (Printf.sprintf "suite-%d" (int_of_float (Unix.time ()))));
        ("git_rev", Json.String (git_rev ()));
        ("scale", Json.String (if tiny then "tiny" else "default"));
        ("nprocs", Json.Int nprocs);
        ("jobs", Json.Int jobs);
        ("suite_seq_wall_ns", Json.Int seq_wall_ns);
        ("suite_par_wall_ns", Json.Int par_wall_ns);
        ("suite_speedup", Json.Float speedup);
        ("parallel_identical", Json.Bool (mismatches = []));
        ("cells", Json.List (List.map2 cell_json timed par));
        ( "scaling",
          Json.List
            (List.map
               (fun ((protocol, nprocs, fabric), (m : Runner.measurement),
                     wall_ns) ->
                 Json.Obj
                   [
                     ("app", Json.String "SOR");
                     ("protocol", Json.String (Config.protocol_name protocol));
                     ("nprocs", Json.Int nprocs);
                     ( "fabric",
                       Json.String (Adsm_harness.Scaling.fabric_name fabric) );
                     ("wall_ns", Json.Int wall_ns);
                     ("sim_time_ns", Json.Int m.Runner.time_ns);
                     ("events", Json.Int m.Runner.events);
                     ( "ns_per_event",
                       Json.Float
                         (float_of_int wall_ns
                         /. float_of_int (max 1 m.Runner.events)) );
                     ("checksum", Json.Float m.Runner.checksum);
                   ])
               scaling_timed) );
        ("engine_domains", Json.Int engine_domains);
        ( "engine",
          Json.List
            (List.map
               (fun (((protocol, nprocs, fabric), (m : Runner.measurement),
                      m', seq_wall_ns, par_wall_ns) as row) ->
                 Json.Obj
                   [
                     ("app", Json.String "SOR");
                     ("protocol", Json.String (Config.protocol_name protocol));
                     ("nprocs", Json.Int nprocs);
                     ( "fabric",
                       Json.String (Adsm_harness.Scaling.fabric_name fabric) );
                     ("domains", Json.Int engine_domains);
                     ("seq_wall_ns", Json.Int seq_wall_ns);
                     ("par_wall_ns", Json.Int par_wall_ns);
                     ("par_speedup", Json.Float (engine_speedup row));
                     ("identical", Json.Bool (m = m'));
                   ])
               engine_timed) );
      ]
      @ grid_json)
  in
  Out_channel.with_open_text bench_out (fun oc ->
      Out_channel.output_string oc (Json.to_string doc);
      Out_channel.output_char oc '\n');
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "Suite wall-clock (host): %d cells, %d simulated processors, %s scale\n"
       (List.length cells) nprocs
       (if tiny then "tiny" else "default"));
  Buffer.add_string buf
    (Printf.sprintf "  %-8s %-8s %12s %12s %14s %10s\n" "app" "protocol"
       "wall ms" "events" "ns/event" "minor MW");
  List.iter
    (fun ((name, protocol), (m : Runner.measurement), wall_ns, (minor, _, _))
    ->
      Buffer.add_string buf
        (Printf.sprintf "  %-8s %-8s %12.2f %12d %14.1f %10.1f\n" name
           (Config.protocol_name protocol)
           (float_of_int wall_ns /. 1e6)
           m.Runner.events
           (float_of_int wall_ns /. float_of_int (max 1 m.Runner.events))
           (minor /. 1e6)))
    timed;
  Buffer.add_string buf
    (Printf.sprintf
       "  suite: sequential %.1f ms, --jobs %d %.1f ms (speedup %.2fx)\n"
       (float_of_int seq_wall_ns /. 1e6)
       jobs
       (float_of_int par_wall_ns /. 1e6)
       speedup);
  Buffer.add_string buf
    "  node-count scaling (SOR, tiny scale; host cost per run):\n";
  Buffer.add_string buf
    (Printf.sprintf "  %-8s %6s %-6s %12s %12s %14s\n" "protocol" "nodes"
       "fabric" "wall ms" "events" "sim ms");
  List.iter
    (fun ((protocol, nprocs, fabric), (m : Runner.measurement), wall_ns) ->
      Buffer.add_string buf
        (Printf.sprintf "  %-8s %6d %-6s %12.2f %12d %14.1f\n"
           (Config.protocol_name protocol)
           nprocs
           (Adsm_harness.Scaling.fabric_name fabric)
           (float_of_int wall_ns /. 1e6)
           m.Runner.events
           (float_of_int m.Runner.time_ns /. 1e6)))
    scaling_timed;
  Buffer.add_string buf
    (Printf.sprintf
       "  parallel engine (SOR, tiny scale; --par %d vs sequential):\n"
       engine_domains);
  Buffer.add_string buf
    (Printf.sprintf "  %-8s %6s %-6s %12s %12s %9s %10s\n" "protocol" "nodes"
       "fabric" "seq ms" "par ms" "speedup" "identical");
  List.iter
    (fun (((protocol, nprocs, fabric), m, m', seq_wall_ns, par_wall_ns) as row)
    ->
      Buffer.add_string buf
        (Printf.sprintf "  %-8s %6d %-6s %12.2f %12.2f %8.2fx %10s\n"
           (Config.protocol_name protocol)
           nprocs
           (Adsm_harness.Scaling.fabric_name fabric)
           (float_of_int seq_wall_ns /. 1e6)
           (float_of_int par_wall_ns /. 1e6)
           (engine_speedup row)
           (if m = m' then "yes" else "NO")))
    engine_timed;
  if grid_timed <> [] then begin
    Buffer.add_string buf
      (Printf.sprintf
         "  full %d-node grid (tiny scale; 3D-FFT at its structural 64 cap):\n"
         grid_nodes);
    Buffer.add_string buf
      (Printf.sprintf "  %-8s %-8s %-6s %6s %12s %14s %12s\n" "app" "protocol"
         "fabric" "nodes" "wall ms" "sim ms" "messages");
    List.iter
      (fun ((name, protocol, fabric), nprocs, (m : Runner.measurement),
            wall_ns) ->
        Buffer.add_string buf
          (Printf.sprintf "  %-8s %-8s %-6s %6d %12.2f %14.1f %12d\n" name
             (Config.protocol_name protocol)
             (Adsm_harness.Scaling.fabric_name fabric)
             nprocs
             (float_of_int wall_ns /. 1e6)
             (float_of_int m.Runner.time_ns /. 1e6)
             m.Runner.messages))
      grid_timed
  end;
  Buffer.add_string buf
    (if mismatches = [] then
       Printf.sprintf "  parallel run identical to sequential; wrote %s\n"
         bench_out
     else
       Printf.sprintf "  PARALLEL/SEQUENTIAL DIVERGENCE in %d cell(s)\n"
         (List.length mismatches));
  if mismatches <> [] then begin
    print_string (Buffer.contents buf);
    failwith "perf: parallel suite diverged from sequential"
  end;
  if engine_mismatches <> [] then begin
    print_string (Buffer.contents buf);
    failwith
      (Printf.sprintf
         "perf: parallel engine diverged from sequential in %d cell(s)"
         (List.length engine_mismatches))
  end;
  (* The engine must actually pay off where it claims to: on a >= 4-core
     host, the best 256-node cell must beat sequential by >= 1.5x with
     >= 4 domains.  Smaller hosts record the rows but skip the
     assertion — there is no parallel hardware to claim. *)
  if engine_domains >= 4 && Domain.recommended_domain_count () >= 4 then begin
    let best_256 =
      List.fold_left
        (fun acc (((_, nprocs, _), _, _, _, _) as row) ->
          if nprocs = 256 then max acc (engine_speedup row) else acc)
        0. engine_timed
    in
    if best_256 < 1.5 then begin
      print_string (Buffer.contents buf);
      failwith
        (Printf.sprintf
           "perf: parallel engine best 256-node speedup %.2fx < 1.5x on a \
            >=4-core host"
           best_256)
    end
  end;
  (* Smoke criterion: on a multicore host, a parallel pass that is not
     actually faster than sequential is a pool regression.  Single-core
     hosts (and jobs=1 runs) are exempt — there is no parallelism to
     claim. *)
  if jobs >= 2 && Domain.recommended_domain_count () >= 2 && speedup <= 1.0
  then begin
    print_string (Buffer.contents buf);
    failwith
      (Printf.sprintf
         "perf: parallel suite speedup %.2fx <= 1.0 on a multicore host"
         speedup)
  end;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Paper artifact regeneration                                        *)
(* ------------------------------------------------------------------ *)

let artifacts ~tiny ~jobs ~grid suite =
  [
    ("perf", fun () -> perf ~tiny ~jobs ~grid ());
    ("table1", fun () -> Experiments.table1 suite);
    ("table2", fun () -> Experiments.table2 suite);
    ("fig1", fun () -> Experiments.figure1 ());
    ("fig2", fun () -> Experiments.figure2 suite);
    ("table3", fun () -> Experiments.table3 suite);
    ("table4", fun () -> Experiments.table4 suite);
    ("fig3", fun () -> Experiments.figure3 suite);
    ("breakdown", fun () -> Experiments.breakdown suite);
    ("simcost", fun () -> simcost suite);
    ("trace-smoke", fun () -> trace_smoke ());
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let tiny = List.mem "--tiny" args in
  (* `--grid`: regenerate the perf artifact's full 1024-node grid rows
     (minutes of wall; the committed artifact carries them). *)
  let grid = List.mem "--grid" args in
  (* `--jobs N` (or `-j N`): worker domains for the suite collection and
     the perf artifact's parallel pass.  Default: all cores. *)
  let jobs =
    let rec find = function
      | ("--jobs" | "-j") :: n :: _ -> (
        match int_of_string_opt n with
        | Some n when n >= 1 -> n
        | _ -> failwith "bench: --jobs expects a positive integer")
      | _ :: rest -> find rest
      | [] -> Pool.default_jobs ()
    in
    find args
  in
  let selected =
    let rec strip = function
      | ("--jobs" | "-j") :: _ :: rest -> strip rest
      | a :: rest when a = "--tiny" || a = "--grid" || a = "micro" -> strip rest
      | a :: rest -> a :: strip rest
      | [] -> []
    in
    strip args
  in
  let want_micro = selected = [] || List.mem "micro" args in
  let scale = if tiny then Registry.Tiny else Registry.Default in
  Printf.printf
    "Reproduction benchmarks: Amza et al., \"Software DSM Protocols that \
     Adapt\nbetween Single Writer and Multiple Writer\" (HPCA 1997)\n\
     Inputs: %s scale, 8 simulated processors, SPARC/ATM cost model.\n\n"
    (if tiny then "tiny" else "default (scaled-down paper)");
  let suite = Experiments.collect ~scale ~nprocs:8 ~jobs () in
  List.iter
    (fun (name, render) ->
      if selected = [] || List.mem name selected then begin
        print_endline (render ());
        print_newline ()
      end)
    (artifacts ~tiny ~jobs ~grid suite);
  if want_micro then run_micro ()
