(* Tests for the domain work pool and the parallel suite runner.

   The load-bearing property is determinism: [Pool.map ~jobs:n] must be
   indistinguishable from [List.map] for every [n], and a full
   [Experiments.collect ~jobs] suite must reproduce the sequential suite
   field for field — that test doubles as the domain-safety audit of
   [Runner.run] (any cross-run mutable global would show up as a
   diverging counter under contention). *)

module Pool = Adsm_harness.Pool
module Runner = Adsm_harness.Runner
module Experiments = Adsm_harness.Experiments
module Registry = Adsm_apps.Registry
module Config = Adsm_dsm.Config

(* --- Pool.map ------------------------------------------------------ *)

let test_ordering () =
  let items = List.init 100 Fun.id in
  let f x = (x * x) - (3 * x) in
  let expect = List.map f items in
  Alcotest.(check (list int)) "jobs=1 is List.map" expect (Pool.map ~jobs:1 f items);
  Alcotest.(check (list int)) "jobs=8 same order" expect (Pool.map ~jobs:8 f items)

let test_empty_and_single () =
  Alcotest.(check (list int)) "empty" [] (Pool.map ~jobs:8 (fun x -> x) []);
  Alcotest.(check (list string)) "singleton" [ "a" ]
    (Pool.map ~jobs:8 String.lowercase_ascii [ "A" ])

let test_invalid_jobs () =
  Alcotest.check_raises "jobs=0 rejected"
    (Invalid_argument "Pool.map: jobs must be >= 1") (fun () ->
      ignore (Pool.map ~jobs:0 Fun.id [ 1 ]))

exception Boom of int

let test_exception_propagation () =
  (* Two tasks fail; the pool must join every worker (no hang, no orphan
     domain) and re-raise the failure of the lowest-indexed task. *)
  let items = List.init 50 Fun.id in
  match
    Pool.map ~jobs:4 (fun x -> if x = 7 || x = 23 then raise (Boom x) else x) items
  with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom i -> Alcotest.(check int) "lowest failing index" 7 i

let test_exception_does_not_poison_pool () =
  (* A failed map leaves no shared state behind: the next map works. *)
  (try ignore (Pool.map ~jobs:4 (fun _ -> raise Exit) [ 1; 2; 3 ])
   with Exit -> ());
  Alcotest.(check (list int)) "pool reusable after failure" [ 2; 4; 6 ]
    (Pool.map ~jobs:4 (fun x -> 2 * x) [ 1; 2; 3 ])

let test_oversubscription () =
  (* Far more tasks than workers, and more workers than cores: every
     task runs exactly once and order is preserved. *)
  let n = 200 in
  let hits = Array.make n 0 in
  let results =
    Pool.map ~jobs:8
      (fun i ->
        hits.(i) <- hits.(i) + 1;
        i)
      (List.init n Fun.id)
  in
  Alcotest.(check (list int)) "order preserved" (List.init n Fun.id) results;
  Alcotest.(check bool) "each task ran exactly once" true
    (Array.for_all (fun h -> h = 1) hits)

let test_default_jobs () =
  Alcotest.(check bool) "default_jobs >= 1" true (Pool.default_jobs () >= 1)

(* --- parallel suite = sequential suite ----------------------------- *)

let cell_name (m : Runner.measurement) =
  Printf.sprintf "%s/%s/%dp" m.Runner.app
    (Config.protocol_name m.Runner.protocol)
    m.Runner.nprocs

(* Field-for-field equality of two measurements, with a per-field check
   so a divergence names the field instead of just "records differ". *)
let check_measurement (a : Runner.measurement) (b : Runner.measurement) =
  let name = cell_name a in
  let ci field get = Alcotest.(check int) (name ^ " " ^ field) (get a) (get b) in
  Alcotest.(check string) (name ^ " app") a.Runner.app b.Runner.app;
  Alcotest.(check bool) (name ^ " protocol") true (a.Runner.protocol = b.Runner.protocol);
  ci "nprocs" (fun m -> m.Runner.nprocs);
  ci "time_ns" (fun m -> m.Runner.time_ns);
  ci "messages" (fun m -> m.Runner.messages);
  ci "data_bytes" (fun m -> m.Runner.data_bytes);
  ci "wire_bytes" (fun m -> m.Runner.wire_bytes);
  ci "own_requests" (fun m -> m.Runner.own_requests);
  ci "own_refusals" (fun m -> m.Runner.own_refusals);
  ci "twins_created" (fun m -> m.Runner.twins_created);
  ci "twin_bytes" (fun m -> m.Runner.twin_bytes);
  ci "diffs_created" (fun m -> m.Runner.diffs_created);
  ci "diff_bytes" (fun m -> m.Runner.diff_bytes);
  ci "gc_runs" (fun m -> m.Runner.gc_runs);
  ci "mode_switches" (fun m -> m.Runner.mode_switches);
  ci "shared_pages" (fun m -> m.Runner.shared_pages);
  ci "pages_written" (fun m -> m.Runner.pages_written);
  ci "pages_false_shared" (fun m -> m.Runner.pages_false_shared);
  ci "read_faults" (fun m -> m.Runner.read_faults);
  ci "write_faults" (fun m -> m.Runner.write_faults);
  ci "events" (fun m -> m.Runner.events);
  ci "compute_ns" (fun m -> m.Runner.compute_ns);
  ci "fault_time_ns" (fun m -> m.Runner.fault_time_ns);
  ci "lock_time_ns" (fun m -> m.Runner.lock_time_ns);
  ci "barrier_time_ns" (fun m -> m.Runner.barrier_time_ns);
  Alcotest.(check (float 0.)) (name ^ " mean_diff_bytes") a.Runner.mean_diff_bytes
    b.Runner.mean_diff_bytes;
  Alcotest.(check (float 0.)) (name ^ " checksum") a.Runner.checksum
    b.Runner.checksum;
  Alcotest.(check bool) (name ^ " live_diff_series") true
    (a.Runner.live_diff_series = b.Runner.live_diff_series)

let test_parallel_suite_identical () =
  (* The full grid — every application under all four protocols plus
     the sequential baselines — run twice: plain and on 8 domains. *)
  let seq = Experiments.collect ~scale:Registry.Tiny ~nprocs:8 () in
  let par = Experiments.collect ~scale:Registry.Tiny ~nprocs:8 ~jobs:8 () in
  Alcotest.(check int) "same cell count"
    (List.length seq.Experiments.measurements)
    (List.length par.Experiments.measurements);
  List.iter2 check_measurement seq.Experiments.measurements
    par.Experiments.measurements

let test_runner_inside_worker_domain () =
  (* A single Runner.run executed inside a pool worker must match the
     same run from the main domain (no domain-local state leaks). *)
  let app =
    match Registry.find "IS" with Some a -> a | None -> Alcotest.fail "no IS"
  in
  let go () =
    Runner.run ~app ~protocol:Config.Wfs ~nprocs:4 ~scale:Registry.Tiny ()
  in
  let main = go () in
  match Pool.map ~jobs:2 (fun () -> go ()) [ (); () ] with
  | [ a; b ] ->
    check_measurement main a;
    check_measurement main b
  | _ -> Alcotest.fail "expected two results"

let () =
  Alcotest.run "pool"
    [
      ( "map",
        [
          Alcotest.test_case "deterministic ordering" `Quick test_ordering;
          Alcotest.test_case "empty and singleton" `Quick test_empty_and_single;
          Alcotest.test_case "invalid jobs" `Quick test_invalid_jobs;
          Alcotest.test_case "exception propagation" `Quick
            test_exception_propagation;
          Alcotest.test_case "reusable after failure" `Quick
            test_exception_does_not_poison_pool;
          Alcotest.test_case "oversubscription" `Quick test_oversubscription;
          Alcotest.test_case "default_jobs" `Quick test_default_jobs;
        ] );
      ( "suite",
        [
          Alcotest.test_case "runner in worker domain" `Quick
            test_runner_inside_worker_domain;
          Alcotest.test_case "parallel suite = sequential suite" `Slow
            test_parallel_suite_identical;
        ] );
    ]
