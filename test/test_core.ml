(* Unit and property tests for the DSM core data structures: vector
   timestamps, diffs, write notices, intervals, messages, configuration
   and statistics. *)

module Vc = Adsm_dsm.Vc
module Diff = Adsm_dsm.Diff
module Notice = Adsm_dsm.Notice
module Interval = Adsm_dsm.Interval
module Msg = Adsm_dsm.Msg
module Config = Adsm_dsm.Config
module Stats = Adsm_dsm.Stats
module Page = Adsm_mem.Page
module Rng = Adsm_sim.Rng

(* ------------------------------------------------------------------ *)
(* Vc                                                                 *)
(* ------------------------------------------------------------------ *)

let vc_of_list l =
  let t = Vc.zero ~nprocs:(List.length l) in
  List.iteri (fun i v -> Vc.set t i v) l;
  t

let test_vc_basic () =
  let a = Vc.zero ~nprocs:4 in
  Alcotest.(check int) "nprocs" 4 (Vc.nprocs a);
  Alcotest.(check int) "zero" 0 (Vc.get a 2);
  Vc.tick a ~proc:2;
  Vc.tick a ~proc:2;
  Alcotest.(check int) "ticked" 2 (Vc.get a 2);
  let b = Vc.copy a in
  Vc.tick b ~proc:0;
  Alcotest.(check int) "copy is independent" 0 (Vc.get a 0)

let test_vc_order () =
  let a = vc_of_list [ 1; 0; 0 ]
  and b = vc_of_list [ 1; 2; 0 ]
  and c = vc_of_list [ 0; 0; 3 ] in
  Alcotest.(check bool) "a <= b" true (Vc.leq a b);
  Alcotest.(check bool) "not b <= a" false (Vc.leq b a);
  Alcotest.(check bool) "b, c concurrent" true (Vc.concurrent b c);
  Alcotest.(check bool) "a not concurrent with b" false (Vc.concurrent a b);
  Alcotest.(check int) "order respects causality" (-1) (Vc.order a b);
  Alcotest.(check int) "order antisymmetric" 1 (Vc.order b a);
  Alcotest.(check int) "order reflexive" 0 (Vc.order a (Vc.copy a))

let test_vc_merge () =
  let a = vc_of_list [ 1; 5; 0 ] and b = vc_of_list [ 3; 2; 4 ] in
  Vc.merge_into a b;
  Alcotest.(check bool) "merge is lub" true
    (Vc.equal a (vc_of_list [ 3; 5; 4 ]))

let vc_gen =
  QCheck.Gen.(
    list_size (return 4) (int_bound 20) >|= fun l -> vc_of_list l)

let arb_vc = QCheck.make ~print:(Format.asprintf "%a" Vc.pp) vc_gen

let prop_vc_merge_upper_bound =
  QCheck.Test.make ~name:"merge_into produces an upper bound" ~count:300
    (QCheck.pair arb_vc arb_vc) (fun (a, b) ->
      let m = Vc.copy a in
      Vc.merge_into m b;
      Vc.leq a m && Vc.leq b m)

let prop_vc_order_total =
  QCheck.Test.make ~name:"Vc.order is antisymmetric and total" ~count:300
    (QCheck.pair arb_vc arb_vc) (fun (a, b) ->
      let ab = Vc.order a b and ba = Vc.order b a in
      if Vc.equal a b then ab = 0 && ba = 0 else ab = -ba && ab <> 0)

let prop_vc_order_respects_causality =
  QCheck.Test.make ~name:"Vc.order extends happened-before" ~count:300
    (QCheck.pair arb_vc arb_vc) (fun (a, b) ->
      (not (Vc.leq a b)) || Vc.equal a b || Vc.order a b < 0)

(* ------------------------------------------------------------------ *)
(* Diff                                                               *)
(* ------------------------------------------------------------------ *)

let page_of_f seed =
  let p = Page.create () in
  let rng = Rng.create (Int64.of_int seed) in
  for i = 0 to Page.size - 1 do
    Page.set_byte p i (Rng.int rng 256)
  done;
  p

let test_diff_empty () =
  let p = page_of_f 1 in
  let d = Diff.create ~twin:p ~current:(Page.copy p) () in
  Alcotest.(check bool) "empty" true (Diff.is_empty d);
  Alcotest.(check int) "no bytes" 0 (Diff.modified_bytes d);
  Alcotest.(check int) "no size" 0 (Diff.size_bytes d)

let test_diff_word_granularity () =
  (* A single changed byte charges its whole 32-bit word, as TreadMarks'
     word-granular detection does. *)
  let twin = Page.create () in
  let current = Page.copy twin in
  Page.set_byte current 101 7;
  let d = Diff.create ~twin ~current () in
  Alcotest.(check int) "one run" 1 (Diff.run_count d);
  Alcotest.(check int) "word-sized" 4 (Diff.modified_bytes d);
  Alcotest.(check (list (pair int int))) "aligned range" [ (100, 4) ]
    (Diff.ranges d)

let test_diff_apply_roundtrip () =
  let twin = page_of_f 2 in
  let current = Page.copy twin in
  Page.set_f64 current 0 3.25;
  Page.set_f64 current 2048 (-1.5);
  Page.set_i32 current 512 77l;
  let d = Diff.create ~twin ~current () in
  let target = Page.copy twin in
  Diff.apply d target;
  Alcotest.(check bool) "target equals current" true
    (Page.equal target current)

let prop_diff_roundtrip =
  QCheck.Test.make ~name:"diff(create;apply) reproduces modifications"
    ~count:100
    QCheck.(pair small_nat (small_list (pair (int_bound 511) (int_bound 1000))))
    (fun (seed, writes) ->
      let twin = page_of_f seed in
      let current = Page.copy twin in
      List.iter
        (fun (slot, v) -> Page.set_f64 current (slot * 8) (float_of_int v))
        writes;
      let d = Diff.create ~twin ~current () in
      let target = Page.copy twin in
      Diff.apply d target;
      Page.equal target current)

let prop_diff_disjoint_merge =
  QCheck.Test.make
    ~name:"diffs of disjoint writes commute (the MW merge property)"
    ~count:100
    QCheck.(pair (small_list (int_bound 255)) (small_list (int_bound 255)))
    (fun (w1, w2) ->
      (* writer 1 uses slots 0..255, writer 2 slots 256..511 *)
      let base = page_of_f 9 in
      let c1 = Page.copy base and c2 = Page.copy base in
      List.iter (fun s -> Page.set_f64 c1 (s * 8) 1.25) w1;
      List.iter (fun s -> Page.set_f64 c2 ((256 + s) * 8) 2.5) w2;
      let d1 = Diff.create ~twin:base ~current:c1 () in
      let d2 = Diff.create ~twin:base ~current:c2 () in
      let ab = Page.copy base and ba = Page.copy base in
      Diff.apply d1 ab;
      Diff.apply d2 ab;
      Diff.apply d2 ba;
      Diff.apply d1 ba;
      Page.equal ab ba)

let test_diff_size_accounting () =
  let twin = Page.create () in
  let current = Page.copy twin in
  (* two separate words *)
  Page.set_i32 current 0 1l;
  Page.set_i32 current 100 1l;
  let d = Diff.create ~twin ~current () in
  Alcotest.(check int) "runs" 2 (Diff.run_count d);
  Alcotest.(check int) "modified" 8 (Diff.modified_bytes d);
  Alcotest.(check int) "encoded = headers + data" (8 + 8) (Diff.size_bytes d)

let test_diff_of_ranges () =
  let page = page_of_f 4 in
  let d = Diff.of_ranges [ (10, 4); (100, 8); (12, 6) ] page in
  (* 10..14 and 12..18 word-align to 8..20 and merge; 100..108 is alone *)
  Alcotest.(check (list (pair int int))) "coalesced, word-aligned"
    [ (8, 12); (100, 8) ]
    (Diff.ranges d);
  let target = Page.create () in
  Diff.apply d target;
  for i = 8 to 19 do
    Alcotest.(check int)
      (Printf.sprintf "byte %d copied" i)
      (Page.get_byte page i) (Page.get_byte target i)
  done;
  Alcotest.(check int) "outside untouched" 0 (Page.get_byte target 50)

let test_diff_of_ranges_empty_and_edge () =
  let page = page_of_f 5 in
  Alcotest.(check bool) "empty" true (Diff.is_empty (Diff.of_ranges [] page));
  let d = Diff.of_ranges [ (Page.size - 3, 3) ] page in
  Alcotest.(check (list (pair int int))) "clamped at page end"
    [ (Page.size - 4, 4) ]
    (Diff.ranges d)

let test_diff_of_ranges_coalesce () =
  let page = page_of_f 7 in
  (* Unsorted, duplicate, overlapping, and merely adjacent ranges must
     all coalesce: after word-alignment, 8..12 / 12..16 are adjacent,
     28..32 / 28..36 overlap, (8,4) appears twice, and 40..44 stands
     alone. *)
  let d =
    Diff.of_ranges
      [ (40, 4); (8, 4); (12, 4); (8, 4); (30, 6); (28, 4) ]
      page
  in
  Alcotest.(check (list (pair int int)))
    "overlapping/adjacent/unsorted/duplicate ranges coalesce"
    [ (8, 8); (28, 8); (40, 4) ]
    (Diff.ranges d);
  let target = Page.create () in
  Diff.apply d target;
  List.iter
    (fun (off, len) ->
      for i = off to off + len - 1 do
        Alcotest.(check int)
          (Printf.sprintf "byte %d copied" i)
          (Page.get_byte page i) (Page.get_byte target i)
      done)
    [ (8, 8); (28, 8); (40, 4) ];
  Alcotest.(check int) "gap untouched" 0 (Page.get_byte target 20)

(* The scan compares 8-byte chunks at a time; runs that start or stop
   inside a chunk, cross a chunk boundary, or touch the page's last word
   must come out identical to a word-by-word scan. *)
let test_diff_chunk_boundaries () =
  let flip current off =
    Page.set_i32 current off (Int32.lognot (Page.get_i32 current off))
  in
  let mk offs =
    let twin = page_of_f 8 in
    let current = Page.copy twin in
    List.iter (flip current) offs;
    Diff.create ~twin ~current ()
  in
  Alcotest.(check (list (pair int int)))
    "last word of the page"
    [ (Page.size - 4, 4) ]
    (Diff.ranges (mk [ Page.size - 4 ]));
  Alcotest.(check (list (pair int int)))
    "run crossing an 8-byte boundary"
    [ (4, 8) ]
    (Diff.ranges (mk [ 4; 8 ]));
  Alcotest.(check (list (pair int int)))
    "aligned full chunk" [ (0, 8) ]
    (Diff.ranges (mk [ 0; 4 ]));
  Alcotest.(check (list (pair int int)))
    "first and last words"
    [ (0, 4); (Page.size - 4, 4) ]
    (Diff.ranges (mk [ 0; Page.size - 4 ]));
  Alcotest.(check (list (pair int int)))
    "three chunks straddled"
    [ (12, 12) ]
    (Diff.ranges (mk [ 12; 16; 20 ]))

(* The chunk comparison splits each int64 into 32-bit halves; a value
   with the sign bit set in either half must still compare correctly. *)
let test_diff_sign_bit_words () =
  let twin = page_of_f 9 in
  let current = Page.copy twin in
  Page.set_i32 current 16 0x8000_0000l;
  Page.set_i32 current 28 Int32.min_int;
  let d = Diff.create ~twin ~current () in
  Alcotest.(check (list (pair int int)))
    "sign-bit words detected"
    [ (16, 4); (28, 4) ]
    (Diff.ranges d);
  let target = Page.copy twin in
  Diff.apply d target;
  Alcotest.(check int32) "value applied" 0x8000_0000l (Page.get_i32 target 16)

let prop_of_ranges_covers_writes =
  QCheck.Test.make ~name:"of_ranges covers every logged write" ~count:200
    QCheck.(small_list (pair (int_bound (Page.size - 8)) (int_range 1 8)))
    (fun writes ->
      let page = page_of_f 6 in
      let d = Diff.of_ranges writes page in
      let covered (off, len) =
        List.exists
          (fun (roff, rlen) -> roff <= off && off + len <= roff + rlen)
          (Diff.ranges d)
      in
      List.for_all covered writes)

(* ------------------------------------------------------------------ *)
(* Notice / Interval                                                  *)
(* ------------------------------------------------------------------ *)

let notice ~page ~proc ~seq ~vc ~version =
  { Notice.page; proc; seq; vc; version }

let test_notice_covers () =
  let older = notice ~page:3 ~proc:0 ~seq:1 ~vc:(vc_of_list [ 1; 0 ]) ~version:None in
  let owner =
    notice ~page:3 ~proc:1 ~seq:2 ~vc:(vc_of_list [ 1; 2 ]) ~version:(Some 4)
  in
  let concurrent =
    notice ~page:3 ~proc:0 ~seq:2 ~vc:(vc_of_list [ 2; 0 ]) ~version:None
  in
  Alcotest.(check bool) "owner covers earlier write" true
    (Notice.covers ~by:owner older);
  Alcotest.(check bool) "owner does not cover concurrent write" false
    (Notice.covers ~by:owner concurrent);
  Alcotest.(check bool) "owner notice" true (Notice.is_owner owner);
  Alcotest.(check bool) "plain notice" false (Notice.is_owner older)

let test_notice_sizes () =
  let plain = notice ~page:0 ~proc:0 ~seq:1 ~vc:(vc_of_list [ 1 ]) ~version:None in
  let owner = { plain with Notice.version = Some 3 } in
  Alcotest.(check int) "plain" 8 (Notice.size_bytes plain);
  Alcotest.(check int) "owner" 12 (Notice.size_bytes owner)

let test_interval_unseen () =
  let mk seq =
    Interval.make ~proc:1
      ~vc:(vc_of_list [ 0; seq; 0 ])
      ~notices:[]
  in
  let log = [ mk 3; mk 2; mk 1 ] in
  let unseen = Interval.unseen_by (vc_of_list [ 9; 1; 9 ]) log in
  Alcotest.(check (list int)) "seqs above the clock" [ 3; 2 ]
    (List.map (fun (i : Interval.t) -> i.seq) unseen)

(* ------------------------------------------------------------------ *)
(* Msg sizes                                                          *)
(* ------------------------------------------------------------------ *)

let test_msg_sizes () =
  let vc = vc_of_list [ 1; 2 ] in
  Alcotest.(check int) "lock acquire" (8 + 8)
    (Msg.size_bytes (Msg.Lock_acquire { lock = 0; vc }));
  Alcotest.(check bool) "page reply carries a page" true
    (Msg.size_bytes
       (Msg.Page_reply
          {
            page = 0;
            data = Page.create ();
            version = 0;
            committed = 0;
            reflected = [| 0; 0 |];
          })
    >= Page.size);
  Alcotest.(check bool) "own reply without data is small" true
    (Msg.size_bytes
       (Msg.Own_reply
          {
            page = 0;
            result = Msg.Refused_fs;
            version = 1;
            committed = 1;
            data = None;
            reflected = [| 0; 0 |];
          })
    < 64)

let test_msg_kinds () =
  let vc = vc_of_list [ 0 ] in
  let kind_str m = Adsm_net.Kind.to_string (Msg.kind m) in
  Alcotest.(check string) "lock" "lock"
    (kind_str (Msg.Lock_acquire { lock = 1; vc }));
  Alcotest.(check string) "own" "own"
    (kind_str (Msg.Own_req { page = 0; version = 0; want_data = false }));
  Alcotest.(check string) "gc" "gc" (kind_str (Msg.Gc_done { epoch = 0 }));
  (* The typed kind round-trips through its label. *)
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (Adsm_net.Kind.to_string k ^ " roundtrips")
        true
        (Adsm_net.Kind.of_string (Adsm_net.Kind.to_string k) = Some k))
    Adsm_net.Kind.all

(* ------------------------------------------------------------------ *)
(* Config                                                             *)
(* ------------------------------------------------------------------ *)

let test_config_protocol_names () =
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Config.protocol_name p ^ " roundtrips")
        true
        (Config.protocol_of_string (Config.protocol_name p) = Some p))
    Config.all_protocols;
  Alcotest.(check bool) "unknown rejected" true
    (Config.protocol_of_string "nope" = None)

let test_config_defaults_match_paper () =
  let cfg = Config.make ~protocol:Config.Wfs ~nprocs:8 () in
  Alcotest.(check int) "twin cost 104us" 104_000 cfg.Config.twin_ns;
  Alcotest.(check int) "diff cost 179us" 179_000 cfg.Config.diff_create_ns;
  Alcotest.(check int) "WG threshold 3KB" 3_072 cfg.Config.wg_threshold_bytes;
  Alcotest.(check int) "quantum 1ms" 1_000_000 cfg.Config.ownership_quantum_ns;
  Alcotest.(check int) "GC threshold 1MB" 1_048_576 cfg.Config.gc_threshold_bytes

(* ------------------------------------------------------------------ *)
(* Stats                                                              *)
(* ------------------------------------------------------------------ *)

let test_stats_counters () =
  let s = Stats.create ~nprocs:2 () in
  Stats.twin_created s ~node:0;
  Stats.twin_created s ~node:1;
  Stats.twin_freed s ~node:0;
  Alcotest.(check int) "twins" 2 (Stats.twins_created_total s);
  Stats.diff_created s ~node:0 ~page:5 ~bytes:100 ~modified:64 ~time:10;
  Stats.diff_created s ~node:0 ~page:5 ~bytes:200 ~modified:128 ~time:20;
  Alcotest.(check int) "diffs" 2 (Stats.diffs_created_total s);
  Alcotest.(check int) "diff bytes" 300 (Stats.diff_bytes_total s);
  Alcotest.(check int) "store" 300 (Stats.diff_store_bytes s ~node:0);
  Stats.diffs_dropped s ~node:0 ~bytes:300 ~count:2 ~time:30;
  Alcotest.(check int) "store emptied" 0 (Stats.diff_store_bytes s ~node:0);
  Alcotest.(check (float 0.)) "mean diff" 96. (Stats.mean_diff_size s)

let test_stats_sharing_profile () =
  let s = Stats.create ~nprocs:4 () in
  Stats.note_write s ~page:1;
  Stats.note_write s ~page:1;
  Stats.note_write s ~page:2;
  Stats.note_false_sharing s ~page:1;
  Alcotest.(check int) "written" 2 (Stats.pages_written s);
  Alcotest.(check int) "false shared" 1 (Stats.pages_false_shared s);
  Alcotest.(check (float 1e-9)) "fraction" 0.5 (Stats.false_shared_fraction s)

let test_stats_series () =
  let s = Stats.create ~nprocs:1 () in
  Stats.diff_created s ~node:0 ~page:0 ~bytes:10 ~modified:10 ~time:5;
  Stats.diff_created s ~node:0 ~page:0 ~bytes:10 ~modified:10 ~time:9;
  Stats.diffs_dropped s ~node:0 ~bytes:20 ~count:2 ~time:12;
  let series = Stats.live_diff_series s in
  Alcotest.(check (float 0.)) "peak" 2. (Adsm_sim.Series.max_value series);
  Alcotest.(check (float 0.)) "after drop" 0.
    (Adsm_sim.Series.value_at series ~time:20)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "core"
    [
      ( "vc",
        [
          Alcotest.test_case "basic" `Quick test_vc_basic;
          Alcotest.test_case "order" `Quick test_vc_order;
          Alcotest.test_case "merge" `Quick test_vc_merge;
          qt prop_vc_merge_upper_bound;
          qt prop_vc_order_total;
          qt prop_vc_order_respects_causality;
        ] );
      ( "diff",
        [
          Alcotest.test_case "empty" `Quick test_diff_empty;
          Alcotest.test_case "word granularity" `Quick
            test_diff_word_granularity;
          Alcotest.test_case "apply roundtrip" `Quick test_diff_apply_roundtrip;
          Alcotest.test_case "size accounting" `Quick test_diff_size_accounting;
          Alcotest.test_case "of_ranges" `Quick test_diff_of_ranges;
          Alcotest.test_case "of_ranges edges" `Quick
            test_diff_of_ranges_empty_and_edge;
          Alcotest.test_case "of_ranges coalescing" `Quick
            test_diff_of_ranges_coalesce;
          Alcotest.test_case "chunk boundaries" `Quick
            test_diff_chunk_boundaries;
          Alcotest.test_case "sign-bit words" `Quick test_diff_sign_bit_words;
          qt prop_diff_roundtrip;
          qt prop_diff_disjoint_merge;
          qt prop_of_ranges_covers_writes;
        ] );
      ( "notice",
        [
          Alcotest.test_case "covers" `Quick test_notice_covers;
          Alcotest.test_case "sizes" `Quick test_notice_sizes;
          Alcotest.test_case "interval unseen" `Quick test_interval_unseen;
        ] );
      ( "msg",
        [
          Alcotest.test_case "sizes" `Quick test_msg_sizes;
          Alcotest.test_case "kinds" `Quick test_msg_kinds;
        ] );
      ( "config",
        [
          Alcotest.test_case "protocol names" `Quick test_config_protocol_names;
          Alcotest.test_case "paper defaults" `Quick
            test_config_defaults_match_paper;
        ] );
      ( "stats",
        [
          Alcotest.test_case "counters" `Quick test_stats_counters;
          Alcotest.test_case "sharing profile" `Quick
            test_stats_sharing_profile;
          Alcotest.test_case "series" `Quick test_stats_series;
        ] );
    ]
