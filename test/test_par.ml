(* Tests for the conservative parallel engine (see PARALLELISM.md).

   The contract under test is byte-identity: a [Parallel {domains}] run
   must reproduce the sequential run exactly — measurements, checksums,
   per-kind traffic counters, JSONL trace bytes, and the consistency
   oracle's observation stream.  The engine-level model tests drive the
   raw engine with seeded workloads whose schedules derive from a pure
   hash (no execution-order-dependent randomness), so the sequential
   engine is a usable oracle for the parallel merge. *)

module Engine = Adsm_sim.Engine
module Runner = Adsm_harness.Runner
module Scaling = Adsm_harness.Scaling
module Registry = Adsm_apps.Registry
module Config = Adsm_dsm.Config
module Trace = Adsm_trace
module Recorder = Adsm_check.Recorder

(* ------------------------------------------------------------------ *)
(* Engine-level model tests                                           *)
(* ------------------------------------------------------------------ *)

(* A tiny pure hash (splitmix-style) so every schedule decision in the
   model workload depends only on (seed, id), never on execution order. *)
let h seed id k =
  let z = Int64.of_int ((seed * 0x9E3779B9) + (id * 0x85EBCA6B) + (k * 0xC2B2AE35)) in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.to_int (Int64.shift_right_logical (Int64.logxor z (Int64.shift_right_logical z 31)) 2)

let model_lanes = 8

let model_lookahead = 1_000

(* Run the seeded workload on [engine] and return the execution log in
   global event order: each event appends [(time, id)] through
   [Engine.defer], which is exactly the ordering channel the DSM layer
   uses for stats and traces.  Cross-lane children travel the way the
   network layer does — a deferred [schedule_at] at [now + lookahead +
   slack] — while same-lane children may be scheduled directly at any
   future time, including inside the current safe window. *)
let model_run engine seed =
  let log = ref [] in
  let rec handler id depth () =
    let tm = Engine.now engine in
    Engine.defer engine (fun () -> log := (tm, id) :: !log);
    if depth < 3 then begin
      let kid k = (id * 7) + k + 1 in
      (* same-lane child, possibly inside the current window *)
      Engine.schedule engine
        ~delay:(h seed id 1 mod (2 * model_lookahead))
        (handler (kid 1) (depth + 1));
      (* cross-lane child: journaled, lands at or above the horizon *)
      let target = h seed id 2 mod model_lanes in
      let time = tm + model_lookahead + (h seed id 3 mod 500) in
      Engine.defer engine (fun () ->
          Engine.schedule_at ~lane:target engine ~time
            (handler (kid 2) (depth + 1)))
    end
  in
  for lane = 0 to model_lanes - 1 do
    Engine.schedule_at ~lane engine ~time:(h seed lane 0 mod 500)
      (handler lane 0)
  done;
  let final = Engine.run engine in
  (final, Engine.events_executed engine, List.rev !log)

let test_merge_model () =
  (* Seeded workloads: the parallel engine (2, 3 and 4 domains — 3
     exercises uneven lane partitions) must replay the exact execution
     log of the sequential engine, event for event. *)
  for seed = 0 to 9 do
    let oracle = model_run (Engine.create ~lanes:model_lanes ()) seed in
    List.iter
      (fun domains ->
        let engine =
          Engine.create ~lanes:model_lanes
            ~parallel:(domains, model_lookahead) ()
        in
        Alcotest.(check bool)
          (Printf.sprintf "parallel mode on (seed %d, %d domains)" seed domains)
          true
          (Engine.is_parallel engine);
        let ft, ev, log = model_run engine seed in
        let ft', ev', log' = oracle in
        let name fmt =
          Printf.sprintf "seed %d, %d domains: %s" seed domains fmt
        in
        Alcotest.(check int) (name "final time") ft' ft;
        Alcotest.(check int) (name "events executed") ev' ev;
        Alcotest.(check bool) (name "execution log") true (log = log'))
      [ 2; 3; 4 ]
  done

let test_single_lane_oracle () =
  (* The lane split itself is behavior-neutral: the multi-lane parallel
     engine must also match a 1-lane engine driven by the same workload
     (all events in one heap — the original sequential configuration). *)
  let one_lane seed =
    (* same workload, with every event forced onto lane 0 *)
    let engine = Engine.create ~lanes:1 () in
    let log = ref [] in
    let rec handler id depth () =
      let tm = Engine.now engine in
      Engine.defer engine (fun () -> log := (tm, id) :: !log);
      if depth < 3 then begin
        let kid k = (id * 7) + k + 1 in
        Engine.schedule engine
          ~delay:(h seed id 1 mod (2 * model_lookahead))
          (handler (kid 1) (depth + 1));
        let time = tm + model_lookahead + (h seed id 3 mod 500) in
        Engine.defer engine (fun () ->
            Engine.schedule_at engine ~time (handler (kid 2) (depth + 1)))
      end
    in
    for lane = 0 to model_lanes - 1 do
      Engine.schedule_at engine ~time:(h seed lane 0 mod 500) (handler lane 0)
    done;
    let final = Engine.run engine in
    (final, Engine.events_executed engine, List.rev !log)
  in
  for seed = 0 to 4 do
    let ft, ev, log =
      model_run (Engine.create ~lanes:model_lanes ~parallel:(4, model_lookahead) ()) seed
    in
    let ft', ev', log' = one_lane seed in
    let name fmt = Printf.sprintf "seed %d: %s" seed fmt in
    Alcotest.(check int) (name "final time vs 1-lane oracle") ft' ft;
    Alcotest.(check int) (name "events vs 1-lane oracle") ev' ev;
    Alcotest.(check bool) (name "log vs 1-lane oracle") true (log = log')
  done

let test_repartition_model () =
  (* The LPT repartitioner must actually fire under skewed per-lane load
     sustained over many windows — and be invisible: lane-to-domain
     assignment is a wall-clock concern only, so the execution log must
     still replay the sequential engine event for event. *)
  let lanes = 8 in
  let lookahead = 100 in
  let rounds = 300 in
  let run engine =
    let log = ref [] in
    let rec tick lane k () =
      let tm = Engine.now engine in
      Engine.defer engine (fun () -> log := (tm, lane, k) :: !log);
      if k < rounds then begin
        (* lanes 0 and 1 carry ~9x the load of the rest *)
        if lane < 2 then
          for j = 1 to 8 do
            Engine.schedule engine
              ~delay:(j * 7 mod lookahead)
              (fun () ->
                let t' = Engine.now engine in
                Engine.defer engine (fun () -> log := (t', lane, -j) :: !log))
          done;
        Engine.schedule engine ~delay:lookahead (tick lane (k + 1))
      end
    in
    for lane = 0 to lanes - 1 do
      Engine.schedule_at ~lane engine ~time:lane (tick lane 0)
    done;
    let final = Engine.run engine in
    (final, Engine.events_executed engine, List.rev !log)
  in
  let oracle = run (Engine.create ~lanes ()) in
  let engine = Engine.create ~lanes ~parallel:(4, lookahead) () in
  let res = run engine in
  Alcotest.(check bool) "skewed-load log = sequential" true (res = oracle);
  Alcotest.(check bool) "repartitions happened" true
    (Engine.repartitions engine > 0);
  Alcotest.(check int) "sequential engine never repartitions" 0
    (Engine.repartitions (Engine.create ~lanes ()))

let test_batched_single_domain () =
  (* All load on one lane: every window has at most one active domain
     and runs on the coordinator without a handshake — and that batched
     path must replay the sequential engine exactly. *)
  let run engine =
    let log = ref [] in
    let rec tick k () =
      let tm = Engine.now engine in
      Engine.defer engine (fun () -> log := (tm, k) :: !log);
      if k < 50 then Engine.schedule engine ~delay:100 (tick (k + 1))
    in
    Engine.schedule_at ~lane:0 engine ~time:0 (tick 0);
    let final = Engine.run engine in
    (final, Engine.events_executed engine, List.rev !log)
  in
  let oracle = run (Engine.create ~lanes:4 ()) in
  let engine = Engine.create ~lanes:4 ~parallel:(2, 100) () in
  let res = run engine in
  Alcotest.(check bool) "single-domain log = sequential" true (res = oracle);
  Alcotest.(check bool) "windows were batched" true
    (Engine.batched_windows engine > 0)

let test_domains_one_is_sequential () =
  (* A parallel request of (or clamped to) 1 domain yields the exact
     sequential engine — not a 1-worker parallel machine. *)
  let e = Engine.create ~lanes:4 ~parallel:(1, 1_000) () in
  Alcotest.(check bool) "domains=1 not parallel" false (Engine.is_parallel e);
  Alcotest.(check int) "domains=1 reports 1" 1 (Engine.parallel_domains e);
  Alcotest.(check bool) "domains=1 no window" true
    (Engine.lookahead_window e = None);
  let e = Engine.create ~lanes:1 ~parallel:(8, 1_000) () in
  Alcotest.(check bool) "1 lane clamps to sequential" false
    (Engine.is_parallel e)

let test_fuzz_parallel_rejected () =
  Alcotest.check_raises "schedule_fuzz + parallel rejected"
    (Invalid_argument
       "Engine.create: schedule fuzzing permutes sequence numbers and is \
        incompatible with the parallel engine") (fun () ->
      ignore (Engine.create ~schedule_seed:42 ~lanes:4 ~parallel:(2, 1_000) ()))

let test_bad_lookahead_rejected () =
  Alcotest.check_raises "lookahead 0 rejected"
    (Invalid_argument "Engine.create: parallel lookahead must be positive")
    (fun () -> ignore (Engine.create ~lanes:4 ~parallel:(2, 0) ()))

let test_cross_domain_schedule_rejected () =
  (* Inside a parallel window, scheduling directly onto another domain's
     lane is a lane-discipline violation the engine must catch: with 2
     domains, lane 1 belongs to domain 1 while the event runs on lane 0
     (domain 0). *)
  let engine = Engine.create ~lanes:4 ~parallel:(2, 1_000) () in
  Engine.schedule_at ~lane:0 engine ~time:0 (fun () ->
      Engine.schedule_at ~lane:1 engine ~time:5_000 (fun () -> ()));
  Alcotest.check_raises "cross-domain schedule rejected"
    (Invalid_argument
       "Engine.schedule_at: cross-domain schedule inside a parallel window \
        (cross-lane effects must go through the network or Engine.defer)")
    (fun () -> ignore (Engine.run engine))

(* ------------------------------------------------------------------ *)
(* Full-stack byte identity                                           *)
(* ------------------------------------------------------------------ *)

let tree_tweak = Scaling.tweak_of_fabric Scaling.Tree_combining

let topologies = [ ("flat", Fun.id); ("tree", tree_tweak) ]

(* Run one cell and capture everything observable: the measurement, the
   JSONL trace bytes, and the consistency oracle's observation stream. *)
let observe ?engine ?faults ~tweak ~app ~protocol ~nprocs () =
  let buf = Buffer.create 4096 in
  let tracer = Trace.Tracer.create [ Trace.Sink.jsonl (Buffer.add_string buf) ] in
  let recorder = Recorder.create () in
  let m =
    Runner.run ~tweak ?engine ?faults ~tracer ~recorder ~app ~protocol ~nprocs
      ~scale:Registry.Tiny ()
  in
  Trace.Tracer.close tracer;
  (m, Buffer.contents buf, Recorder.stream recorder)

let check_identical name ((a, ta, oa) : Runner.measurement * string * _)
    ((b, tb, ob) : Runner.measurement * string * _) =
  let ci field get = Alcotest.(check int) (name ^ " " ^ field) (get a) (get b) in
  ci "time_ns" (fun m -> m.Runner.time_ns);
  ci "messages" (fun m -> m.Runner.messages);
  ci "data_bytes" (fun m -> m.Runner.data_bytes);
  ci "wire_bytes" (fun m -> m.Runner.wire_bytes);
  ci "own_requests" (fun m -> m.Runner.own_requests);
  ci "own_refusals" (fun m -> m.Runner.own_refusals);
  ci "twins_created" (fun m -> m.Runner.twins_created);
  ci "twin_bytes" (fun m -> m.Runner.twin_bytes);
  ci "diffs_created" (fun m -> m.Runner.diffs_created);
  ci "diff_bytes" (fun m -> m.Runner.diff_bytes);
  ci "gc_runs" (fun m -> m.Runner.gc_runs);
  ci "mode_switches" (fun m -> m.Runner.mode_switches);
  ci "shared_pages" (fun m -> m.Runner.shared_pages);
  ci "pages_written" (fun m -> m.Runner.pages_written);
  ci "pages_false_shared" (fun m -> m.Runner.pages_false_shared);
  ci "read_faults" (fun m -> m.Runner.read_faults);
  ci "write_faults" (fun m -> m.Runner.write_faults);
  ci "events" (fun m -> m.Runner.events);
  ci "compute_ns" (fun m -> m.Runner.compute_ns);
  ci "fault_time_ns" (fun m -> m.Runner.fault_time_ns);
  ci "lock_time_ns" (fun m -> m.Runner.lock_time_ns);
  ci "barrier_time_ns" (fun m -> m.Runner.barrier_time_ns);
  Alcotest.(check (float 0.)) (name ^ " mean_diff_bytes") a.Runner.mean_diff_bytes
    b.Runner.mean_diff_bytes;
  Alcotest.(check (float 0.)) (name ^ " checksum") a.Runner.checksum
    b.Runner.checksum;
  Alcotest.(check bool) (name ^ " by_kind") true (a.Runner.by_kind = b.Runner.by_kind);
  Alcotest.(check bool) (name ^ " live_diff_series") true
    (a.Runner.live_diff_series = b.Runner.live_diff_series);
  Alcotest.(check string) (name ^ " trace bytes") ta tb;
  Alcotest.(check bool) (name ^ " oracle observation stream") true (oa = ob)

let check_cell ~app ~protocol ~topo_name ~tweak ~domains =
  let name =
    Printf.sprintf "%s/%s/%s/par:%d" app.Registry.name
      (Config.protocol_name protocol)
      topo_name domains
  in
  let seq = observe ~tweak ~app ~protocol ~nprocs:8 () in
  let par =
    observe ~engine:(Config.Parallel { domains }) ~tweak ~app ~protocol
      ~nprocs:8 ()
  in
  check_identical name seq par

let test_byte_identity_grid () =
  (* Every application under all four protocols, on both fabrics, on 2
     domains — the engine's widest exposure to protocol behavior. *)
  List.iter
    (fun app ->
      List.iter
        (fun protocol ->
          List.iter
            (fun (topo_name, tweak) ->
              check_cell ~app ~protocol ~topo_name ~tweak ~domains:2)
            topologies)
        Config.all_protocols)
    Registry.all

let test_domain_counts () =
  (* Domain-count sweep on the two CI smoke applications: domains=1 must
     take the exact sequential path, and 4 domains (uneven lanes at
     8 nodes over the fabric split) must still be identical. *)
  List.iter
    (fun app_name ->
      let app =
        match Registry.find app_name with
        | Some a -> a
        | None -> Alcotest.fail ("unknown app " ^ app_name)
      in
      List.iter
        (fun protocol ->
          List.iter
            (fun (topo_name, tweak) ->
              List.iter
                (fun domains ->
                  check_cell ~app ~protocol ~topo_name ~tweak ~domains)
                [ 1; 4 ])
            topologies)
        Config.all_protocols)
    [ "SOR"; "IS" ]

let test_fault_byte_identity () =
  (* Fault schedules are part of the deterministic input: the same
     (app, protocol, seed, schedule) on 2 domains must replay the
     sequential faulty run exactly — crash timing, retransmissions and
     recovery traffic included. *)
  let faults =
    match
      Adsm_net.Fault.of_string "crash=1@400us:200us;loss=0.05;jitter=2us"
    with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  List.iter
    (fun app_name ->
      let app =
        match Registry.find app_name with
        | Some a -> a
        | None -> Alcotest.fail ("unknown app " ^ app_name)
      in
      List.iter
        (fun protocol ->
          let name =
            Printf.sprintf "%s/%s/faults/par:2" app.Registry.name
              (Config.protocol_name protocol)
          in
          let seq = observe ~faults ~tweak:Fun.id ~app ~protocol ~nprocs:8 () in
          let par =
            observe
              ~engine:(Config.Parallel { domains = 2 })
              ~faults ~tweak:Fun.id ~app ~protocol ~nprocs:8 ()
          in
          check_identical name seq par)
        [ Config.Mw; Config.Wfs ])
    [ "SOR"; "IS"; "Water" ]

let () =
  Alcotest.run "par"
    [
      ( "engine",
        [
          Alcotest.test_case "seeded merge model = sequential" `Quick
            test_merge_model;
          Alcotest.test_case "parallel = single-lane oracle" `Quick
            test_single_lane_oracle;
          Alcotest.test_case "LPT repartition is invisible" `Quick
            test_repartition_model;
          Alcotest.test_case "batched single-domain windows" `Quick
            test_batched_single_domain;
          Alcotest.test_case "domains=1 is sequential" `Quick
            test_domains_one_is_sequential;
          Alcotest.test_case "fuzz + parallel rejected" `Quick
            test_fuzz_parallel_rejected;
          Alcotest.test_case "non-positive lookahead rejected" `Quick
            test_bad_lookahead_rejected;
          Alcotest.test_case "cross-domain schedule rejected" `Quick
            test_cross_domain_schedule_rejected;
        ] );
      ( "byte-identity",
        [
          Alcotest.test_case "domain counts (SOR, IS)" `Quick
            test_domain_counts;
          Alcotest.test_case "full grid, both fabrics" `Slow
            test_byte_identity_grid;
          Alcotest.test_case "crash schedules (SOR, IS, Water)" `Quick
            test_fault_byte_identity;
        ] );
    ]
