(* Unit and property tests for the discrete-event simulation substrate. *)

module Eheap = Adsm_sim.Eheap
module Engine = Adsm_sim.Engine
module Proc = Adsm_sim.Proc
module Rng = Adsm_sim.Rng
module Series = Adsm_sim.Series

(* ------------------------------------------------------------------ *)
(* Eheap                                                              *)
(* ------------------------------------------------------------------ *)

let test_heap_empty () =
  let h = Eheap.create () in
  Alcotest.(check bool) "empty" true (Eheap.is_empty h);
  Alcotest.(check int) "length" 0 (Eheap.length h);
  Alcotest.(check bool) "pop none" true (Eheap.pop_min h = None);
  Alcotest.(check bool) "peek none" true (Eheap.peek_time h = None)

let test_heap_order () =
  let h = Eheap.create () in
  let input = [ (5, 0, "a"); (1, 1, "b"); (3, 2, "c"); (1, 3, "d"); (0, 4, "e") ] in
  List.iter (fun (time, seq, v) -> Eheap.push h ~time ~seq v) input;
  let rec drain acc =
    match Eheap.pop_min h with
    | None -> List.rev acc
    | Some (_, _, v) -> drain (v :: acc)
  in
  Alcotest.(check (list string)) "sorted by (time,seq)" [ "e"; "b"; "d"; "c"; "a" ]
    (drain [])

let test_heap_fifo_ties () =
  let h = Eheap.create () in
  for i = 0 to 99 do
    Eheap.push h ~time:7 ~seq:i i
  done;
  let out = ref [] in
  let rec drain () =
    match Eheap.pop_min h with
    | None -> ()
    | Some (_, _, v) ->
      out := v :: !out;
      drain ()
  in
  drain ();
  Alcotest.(check (list int)) "ties pop in insertion order"
    (List.init 100 (fun i -> i))
    (List.rev !out)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drains in nondecreasing time order" ~count:200
    QCheck.(list (pair small_nat small_nat))
    (fun pairs ->
      let h = Eheap.create () in
      List.iteri (fun seq (time, v) -> Eheap.push h ~time ~seq v) pairs;
      let rec drain last =
        match Eheap.pop_min h with
        | None -> true
        | Some (time, _, _) -> time >= last && drain time
      in
      drain min_int)

(* Model-based check under randomized push/pop interleavings: the heap
   must agree, element for element, with a sorted-list reference — not
   just on final drain order, but at every intermediate pop, with
   pending pushes mixed in.  Times are drawn from a tiny range so equal
   keys are the common case and tie-stability is exercised hard. *)
let test_heap_random_interleaving () =
  let r = Rng.create 2024L in
  let h = Eheap.create () in
  let model = ref [] in
  let seq = ref 0 in
  let insert_model entry =
    let rec go = function
      | [] -> [ entry ]
      | e :: rest -> if entry < e then entry :: e :: rest else e :: go rest
    in
    model := go !model
  in
  let expect_check = Alcotest.(triple int int int) in
  for step = 1 to 5_000 do
    if !model = [] || Rng.int r 3 < 2 then begin
      let time = Rng.int r 40 in
      Eheap.push h ~time ~seq:!seq step;
      insert_model (time, !seq, step);
      incr seq
    end
    else begin
      match (Eheap.pop_min h, !model) with
      | Some got, expect :: rest ->
        model := rest;
        Alcotest.(check expect_check) "pop matches model" expect got
      | None, _ -> Alcotest.fail "heap empty while model holds elements"
      | Some _, [] -> Alcotest.fail "heap holds elements while model empty"
    end
  done;
  List.iter
    (fun expect ->
      match Eheap.pop_min h with
      | Some got -> Alcotest.(check expect_check) "drain matches model" expect got
      | None -> Alcotest.fail "heap drained before model")
    !model;
  Alcotest.(check bool) "both empty" true (Eheap.is_empty h)

(* Lane-split equivalence: a multilane heap must pop the exact global
   (time, seq) order of a single-lane heap under a randomized push/pop
   interleaving, no matter which lane absorbs each push.  Times are
   drawn from a tiny range so cross-lane ties are the common case. *)
let test_heap_lanes_match_single () =
  let r = Rng.create 7L in
  let multi = Eheap.create ~lanes:7 () in
  let single = Eheap.create () in
  Alcotest.(check int) "lanes" 7 (Eheap.lanes multi);
  Alcotest.(check int) "single lane" 1 (Eheap.lanes single);
  let seq = ref 0 in
  for _ = 1 to 3_000 do
    if Rng.int r 3 < 2 then begin
      let time = Rng.int r 40 in
      let v = Rng.int r 1_000_000 in
      Eheap.push ~lane:(v mod 7) multi ~time ~seq:!seq v;
      Eheap.push single ~time ~seq:!seq v;
      incr seq
    end
    else if Eheap.pop_min multi <> Eheap.pop_min single then
      Alcotest.fail "lane split changed pop order"
  done;
  let rec drain () =
    match (Eheap.pop_min multi, Eheap.pop_min single) with
    | None, None -> ()
    | a, b when a = b -> drain ()
    | _ -> Alcotest.fail "drain order disagrees"
  in
  drain ();
  Alcotest.(check bool) "both empty" true
    (Eheap.is_empty multi && Eheap.is_empty single)

let test_heap_min_lane () =
  let h = Eheap.create ~lanes:4 () in
  Eheap.push ~lane:3 h ~time:5 ~seq:0 "a";
  Eheap.push ~lane:1 h ~time:2 ~seq:1 "b";
  Alcotest.(check int) "min lane" 1 (Eheap.min_lane h);
  Alcotest.(check int) "min time" 2 (Eheap.min_time_exn h);
  ignore (Eheap.pop_min h);
  Alcotest.(check int) "next lane" 3 (Eheap.min_lane h);
  Alcotest.(check string) "next value" "a" (Eheap.pop_min_exn h)

(* A popped value must become unreachable from the heap: the old
   representation left it live in the vacated slot until a later push
   overwrote it, pinning arbitrarily large closures for the rest of the
   run.  Track a popped block with a weak pointer and force a major GC;
   the helpers are [@inline never] so no stack slot keeps it alive. *)
let[@inline never] push_tracked h w ~time ~seq =
  let v = ref 42 in
  Weak.set w 0 (Some v);
  Eheap.push h ~time ~seq v

let[@inline never] pop_and_drop h =
  match Eheap.pop_min h with Some _ -> () | None -> ()

let check_collected name w =
  Gc.full_major ();
  Gc.full_major ();
  Alcotest.(check bool) name true (Weak.get w 0 = None)

let test_heap_pop_releases_value () =
  (* Pop with entries remaining: the last entry moves into the root and
     its old slot is vacated. *)
  let h = Eheap.create () in
  let w = Weak.create 1 in
  push_tracked h w ~time:1 ~seq:0;
  Eheap.push h ~time:2 ~seq:1 (ref 0);
  Eheap.push h ~time:3 ~seq:2 (ref 0);
  pop_and_drop h;
  check_collected "popped value collected (non-empty heap)" w;
  (* Pop to empty: slot 0 itself is the vacated slot. *)
  let h = Eheap.create () in
  let w = Weak.create 1 in
  push_tracked h w ~time:1 ~seq:0;
  pop_and_drop h;
  check_collected "popped value collected (emptied heap)" w

let test_heap_exn_variants () =
  let h = Eheap.create () in
  Alcotest.check_raises "min_time_exn on empty"
    (Invalid_argument "Eheap.min_time_exn: empty heap") (fun () ->
      ignore (Eheap.min_time_exn h));
  Alcotest.check_raises "pop_min_exn on empty"
    (Invalid_argument "Eheap.pop_min_exn: empty heap") (fun () ->
      ignore (Eheap.pop_min_exn h : int));
  Eheap.push h ~time:9 ~seq:1 111;
  Eheap.push h ~time:4 ~seq:0 222;
  Alcotest.(check int) "min_time_exn" 4 (Eheap.min_time_exn h);
  Alcotest.(check int) "pop_min_exn pops min" 222 (Eheap.pop_min_exn h);
  Alcotest.(check int) "then next" 111 (Eheap.pop_min_exn h);
  Alcotest.(check bool) "empty after" true (Eheap.is_empty h)

(* Insertion order of equal keys must survive pops happening in between
   the pushes, not only a push-everything-then-drain pattern. *)
let test_heap_ties_stable_under_interleaving () =
  let h = Eheap.create () in
  let seq = ref 0 in
  let push v =
    Eheap.push h ~time:3 ~seq:!seq v;
    incr seq
  in
  let pop () =
    match Eheap.pop_min h with
    | Some (_, _, v) -> v
    | None -> Alcotest.fail "unexpected empty heap"
  in
  push 0;
  push 1;
  push 2;
  Alcotest.(check int) "first tie" 0 (pop ());
  push 3;
  push 4;
  Alcotest.(check int) "second tie" 1 (pop ());
  Alcotest.(check int) "third tie" 2 (pop ());
  push 5;
  Alcotest.(check (list int)) "remaining ties in insertion order" [ 3; 4; 5 ]
    (List.init 3 (fun _ -> pop ()));
  Alcotest.(check bool) "empty" true (Eheap.is_empty h)

(* ------------------------------------------------------------------ *)
(* Engine                                                             *)
(* ------------------------------------------------------------------ *)

let test_engine_order () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~delay:30 (fun () -> log := (30, Engine.now e) :: !log);
  Engine.schedule e ~delay:10 (fun () -> log := (10, Engine.now e) :: !log);
  Engine.schedule e ~delay:20 (fun () ->
      log := (20, Engine.now e) :: !log;
      (* nested scheduling from within an event *)
      Engine.schedule e ~delay:5 (fun () -> log := (25, Engine.now e) :: !log));
  let final = Engine.run e in
  Alcotest.(check int) "final time" 30 final;
  Alcotest.(check (list (pair int int)))
    "events ran at their times"
    [ (10, 10); (20, 20); (25, 25); (30, 30) ]
    (List.rev !log)

let test_engine_negative_delay () =
  let e = Engine.create () in
  Alcotest.check_raises "negative delay rejected"
    (Invalid_argument "Engine.schedule: negative delay") (fun () ->
      Engine.schedule e ~delay:(-1) (fun () -> ()))

let test_engine_same_time_fifo () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 0 to 9 do
    Engine.schedule e ~delay:5 (fun () -> log := i :: !log)
  done;
  ignore (Engine.run e);
  Alcotest.(check (list int)) "fifo at equal time" (List.init 10 Fun.id)
    (List.rev !log)

let test_engine_counts_events () =
  let e = Engine.create () in
  for _ = 1 to 17 do
    Engine.schedule e ~delay:1 (fun () -> ())
  done;
  ignore (Engine.run e);
  Alcotest.(check int) "executed" 17 (Engine.events_executed e)

let test_time_units () =
  Alcotest.(check int) "us" 3_000 (Engine.us 3);
  Alcotest.(check int) "ms" 2_000_000 (Engine.ms 2);
  Alcotest.(check (float 1e-9)) "us_of_ns" 1.5 (Engine.us_of_ns 1_500)

(* ------------------------------------------------------------------ *)
(* Proc                                                               *)
(* ------------------------------------------------------------------ *)

let test_proc_sleep () =
  let e = Engine.create () in
  let finished_at = ref (-1) in
  Proc.spawn e (fun () ->
      Proc.sleep e 100;
      Proc.sleep e 250;
      finished_at := Engine.now e);
  ignore (Engine.run e);
  Alcotest.(check int) "slept 350" 350 !finished_at

let test_proc_interleaving () =
  let e = Engine.create () in
  let log = ref [] in
  let say tag = log := (tag, Engine.now e) :: !log in
  Proc.spawn e (fun () ->
      say "a0";
      Proc.sleep e 10;
      say "a1";
      Proc.sleep e 20;
      say "a2");
  Proc.spawn e (fun () ->
      say "b0";
      Proc.sleep e 15;
      say "b1");
  ignore (Engine.run e);
  Alcotest.(check (list (pair string int)))
    "two processes interleave deterministically"
    [ ("a0", 0); ("b0", 0); ("a1", 10); ("b1", 15); ("a2", 30) ]
    (List.rev !log)

let test_ivar_fill_then_await () =
  let e = Engine.create () in
  let iv = Proc.Ivar.create () in
  let got = ref 0 in
  Proc.Ivar.fill e iv 42;
  Proc.spawn e (fun () -> got := Proc.Ivar.await iv);
  ignore (Engine.run e);
  Alcotest.(check int) "value" 42 !got

let test_ivar_await_then_fill () =
  let e = Engine.create () in
  let iv = Proc.Ivar.create () in
  let got = ref (0, -1) in
  Proc.spawn e (fun () ->
      let v = Proc.Ivar.await iv in
      got := (v, Engine.now e));
  Proc.spawn e (fun () ->
      Proc.sleep e 500;
      Proc.Ivar.fill e iv 7);
  ignore (Engine.run e);
  Alcotest.(check (pair int int)) "resumed with value at fill time" (7, 500) !got

let test_ivar_double_fill () =
  let e = Engine.create () in
  let iv = Proc.Ivar.create () in
  Proc.Ivar.fill e iv 1;
  Alcotest.check_raises "double fill" (Failure "Ivar.fill: already filled")
    (fun () -> Proc.Ivar.fill e iv 2)

let test_semaphore_mutex () =
  let e = Engine.create () in
  let sem = Proc.Semaphore.create 1 in
  let log = ref [] in
  let worker name hold =
    Proc.spawn e (fun () ->
        Proc.Semaphore.acquire sem;
        log := (name ^ ":in", Engine.now e) :: !log;
        Proc.sleep e hold;
        log := (name ^ ":out", Engine.now e) :: !log;
        Proc.Semaphore.release e sem)
  in
  worker "p" 100;
  worker "q" 50;
  ignore (Engine.run e);
  Alcotest.(check (list (pair string int)))
    "mutual exclusion with fifo handoff"
    [ ("p:in", 0); ("p:out", 100); ("q:in", 100); ("q:out", 150) ]
    (List.rev !log)

(* ------------------------------------------------------------------ *)
(* Rng                                                                *)
(* ------------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Rng.create 42L and b = Rng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next64 a) (Rng.next64 b)
  done

let test_rng_replay () =
  let r = Rng.create 1234567L in
  let first = Rng.next64 r in
  let second = Rng.next64 r in
  Alcotest.(check bool) "distinct" true (first <> second);
  let r' = Rng.create 1234567L in
  Alcotest.(check int64) "replay first" first (Rng.next64 r');
  Alcotest.(check int64) "replay second" second (Rng.next64 r')

let prop_rng_int_in_bounds =
  QCheck.Test.make ~name:"Rng.int stays in bounds" ~count:500
    QCheck.(pair int64 (int_range 1 1000))
    (fun (seed, bound) ->
      let r = Rng.create seed in
      let v = Rng.int r bound in
      v >= 0 && v < bound)

let prop_rng_float_unit_interval =
  QCheck.Test.make ~name:"Rng.float in [0,1)" ~count:500 QCheck.int64
    (fun seed ->
      let r = Rng.create seed in
      let v = Rng.float r in
      v >= 0. && v < 1.)

let test_rng_split_independent () =
  let r = Rng.create 99L in
  let s = Rng.split r in
  let a = Rng.next64 r and b = Rng.next64 s in
  Alcotest.(check bool) "split streams differ" true (a <> b)

(* Splitting is itself deterministic: the same construction sequence
   yields the same parent AND child streams, and drawing from one must
   not perturb the other. *)
let test_rng_split_replay () =
  let mk () =
    let r = Rng.create 5L in
    ignore (Rng.next64 r);
    let s = Rng.split r in
    (r, s)
  in
  let r1, s1 = mk () in
  let r2, s2 = mk () in
  (* Interleave differently on purpose: drain the child of one pair
     first, the parent of the other first. *)
  let s1_draws = List.init 50 (fun _ -> Rng.next64 s1) in
  let r1_draws = List.init 50 (fun _ -> Rng.next64 r1) in
  let r2_draws = List.init 50 (fun _ -> Rng.next64 r2) in
  let s2_draws = List.init 50 (fun _ -> Rng.next64 s2) in
  Alcotest.(check (list int64)) "parent stream replays" r1_draws r2_draws;
  Alcotest.(check (list int64)) "child stream replays" s1_draws s2_draws

(* The per-node streams the DSM derives (seed + id * 7919, as in
   State.make_node) must be pairwise distinct essentially everywhere —
   a correlated pair would silently synchronize "random" workloads. *)
let test_rng_derived_streams_independent () =
  let streams =
    Array.init 8 (fun id ->
        Rng.create (Int64.add 0x5EEDL (Int64.of_int (id * 7919))))
  in
  let draws = Array.map (fun r -> Array.init 200 (fun _ -> Rng.next64 r)) streams in
  for i = 0 to 7 do
    for j = i + 1 to 7 do
      let equal = ref 0 in
      for k = 0 to 199 do
        if draws.(i).(k) = draws.(j).(k) then incr equal
      done;
      Alcotest.(check bool)
        (Printf.sprintf "streams %d and %d nearly disjoint" i j)
        true (!equal <= 1)
    done
  done

let prop_rng_seeds_give_distinct_streams =
  QCheck.Test.make ~name:"distinct seeds give distinct streams" ~count:200
    QCheck.(pair int64 int64)
    (fun (a, b) ->
      QCheck.assume (a <> b);
      let ra = Rng.create a and rb = Rng.create b in
      let da = List.init 8 (fun _ -> Rng.next64 ra) in
      let db = List.init 8 (fun _ -> Rng.next64 rb) in
      da <> db)

let test_rng_shuffle_permutation () =
  let r = Rng.create 7L in
  let a = Array.init 50 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "shuffle is a permutation"
    (Array.init 50 Fun.id) sorted

(* ------------------------------------------------------------------ *)
(* Series                                                             *)
(* ------------------------------------------------------------------ *)

let test_series_basic () =
  let s = Series.create ~name:"diffs" in
  Alcotest.(check string) "name" "diffs" (Series.name s);
  Series.record s ~time:0 ~value:1.;
  Series.record s ~time:10 ~value:5.;
  Series.record s ~time:20 ~value:3.;
  Alcotest.(check int) "length" 3 (Series.length s);
  Alcotest.(check (float 0.)) "max" 5. (Series.max_value s);
  Alcotest.(check (list (pair int (float 0.))))
    "to_list"
    [ (0, 1.); (10, 5.); (20, 3.) ]
    (Series.to_list s)

let test_series_value_at () =
  let s = Series.create ~name:"x" in
  Series.record s ~time:100 ~value:1.;
  Series.record s ~time:200 ~value:2.;
  Series.record s ~time:300 ~value:3.;
  Alcotest.(check (float 0.)) "before first" 0. (Series.value_at s ~time:50);
  Alcotest.(check (float 0.)) "at sample" 1. (Series.value_at s ~time:100);
  Alcotest.(check (float 0.)) "between" 2. (Series.value_at s ~time:250);
  Alcotest.(check (float 0.)) "after last" 3. (Series.value_at s ~time:1000)

let test_series_resample () =
  let s = Series.create ~name:"x" in
  Series.record s ~time:0 ~value:0.;
  Series.record s ~time:50 ~value:10.;
  let r = Series.resample s ~buckets:3 ~t_end:100 in
  Alcotest.(check (array (float 0.))) "resampled" [| 0.; 10.; 10. |] r

let prop_series_value_at_matches_scan =
  QCheck.Test.make ~name:"Series.value_at agrees with linear scan" ~count:200
    QCheck.(pair (list (pair small_nat (float_bound_exclusive 100.))) small_nat)
    (fun (samples, query) ->
      let samples = List.sort (fun (a, _) (b, _) -> compare a b) samples in
      let s = Series.create ~name:"p" in
      List.iter (fun (time, value) -> Series.record s ~time ~value) samples;
      let expected =
        List.fold_left
          (fun acc (t, v) -> if t <= query then v else acc)
          0. samples
      in
      Series.value_at s ~time:query = expected)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "sim"
    [
      ( "eheap",
        [
          Alcotest.test_case "empty" `Quick test_heap_empty;
          Alcotest.test_case "order" `Quick test_heap_order;
          Alcotest.test_case "fifo ties" `Quick test_heap_fifo_ties;
          Alcotest.test_case "random interleaving vs model" `Quick
            test_heap_random_interleaving;
          Alcotest.test_case "lane split matches single lane" `Quick
            test_heap_lanes_match_single;
          Alcotest.test_case "min_lane tracks earliest" `Quick
            test_heap_min_lane;
          Alcotest.test_case "popped values not retained" `Quick
            test_heap_pop_releases_value;
          Alcotest.test_case "exn variants" `Quick test_heap_exn_variants;
          Alcotest.test_case "ties stable under interleaved pops" `Quick
            test_heap_ties_stable_under_interleaving;
          qt prop_heap_sorts;
        ] );
      ( "engine",
        [
          Alcotest.test_case "order" `Quick test_engine_order;
          Alcotest.test_case "negative delay" `Quick test_engine_negative_delay;
          Alcotest.test_case "same-time fifo" `Quick test_engine_same_time_fifo;
          Alcotest.test_case "event count" `Quick test_engine_counts_events;
          Alcotest.test_case "time units" `Quick test_time_units;
        ] );
      ( "proc",
        [
          Alcotest.test_case "sleep" `Quick test_proc_sleep;
          Alcotest.test_case "interleaving" `Quick test_proc_interleaving;
          Alcotest.test_case "ivar fill-await" `Quick test_ivar_fill_then_await;
          Alcotest.test_case "ivar await-fill" `Quick test_ivar_await_then_fill;
          Alcotest.test_case "ivar double fill" `Quick test_ivar_double_fill;
          Alcotest.test_case "semaphore" `Quick test_semaphore_mutex;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "replay" `Quick test_rng_replay;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
          Alcotest.test_case "split replay" `Quick test_rng_split_replay;
          Alcotest.test_case "derived streams independent" `Quick
            test_rng_derived_streams_independent;
          Alcotest.test_case "shuffle" `Quick test_rng_shuffle_permutation;
          qt prop_rng_int_in_bounds;
          qt prop_rng_float_unit_interval;
          qt prop_rng_seeds_give_distinct_streams;
        ] );
      ( "series",
        [
          Alcotest.test_case "basic" `Quick test_series_basic;
          Alcotest.test_case "value_at" `Quick test_series_value_at;
          Alcotest.test_case "resample" `Quick test_series_resample;
          qt prop_series_value_at_matches_scan;
        ] );
    ]
