(* Tracing subsystem tests: codec round-trips, sink output validity, the
   zero-cost disabled path, and protocol-level assertions made against
   captured event streams (the paper's Section 6 narratives). *)

module Trace = Adsm_trace
module Event = Trace.Event
module Json = Trace.Json
module Sink = Trace.Sink
module Tracer = Trace.Tracer
module Query = Trace.Query
module Kind = Adsm_net.Kind
module Config = Adsm_dsm.Config
module Registry = Adsm_apps.Registry
module Runner = Adsm_harness.Runner

(* One of each constructor, with distinctive field values. *)
let sample_events : Event.t list =
  [
    Event.Read_fault { page = 3 };
    Event.Write_fault { page = 4 };
    Event.Twin_create { page = 5 };
    Event.Twin_free { page = 5 };
    Event.Diff_create { page = 5; seq = 2; bytes = 144; modified = 128 };
    Event.Diff_apply { page = 5; writer = 1; seq = 2 };
    Event.Diff_gc { count = 7; bytes = 9_000 };
    Event.Gc_drop { page = 6 };
    Event.Mode_change { page = 7; mode = Event.Mw };
    Event.Mode_change { page = 7; mode = Event.Sw };
    Event.Own_request { page = 8; owner = 2; version = 11 };
    Event.Own_grant { page = 8; requester = 0; version = 12 };
    Event.Own_refuse { page = 8; requester = 0; reason = Event.Fs };
    Event.Own_refuse { page = 8; requester = 3; reason = Event.Measure };
    Event.Lock_acquire { lock = 1 };
    Event.Lock_release { lock = 1 };
    Event.Barrier_enter { epoch = 4 };
    Event.Barrier_leave { epoch = 4 };
    Event.Msg_send { dst = 2; kind = Kind.Diff; bytes = 356 };
    Event.Msg_deliver { src = 0; kind = Kind.Diff; bytes = 356 };
    Event.Compute { ns = 123_456 };
    Event.Sim_events { executed = 640 };
  ]

let sample_stamped : Event.stamped list =
  List.mapi
    (fun i event -> { Event.time = i * 1_000; node = i mod 4; event })
    sample_events

(* ------------------------------------------------------------------ *)
(* Codec round-trips                                                  *)
(* ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  List.iter
    (fun (s : Event.stamped) ->
      match Event.of_json (Event.to_json s) with
      | Some s' ->
        Alcotest.(check bool)
          (Printf.sprintf "%s round-trips" (Event.tag s.Event.event))
          true (s = s')
      | None ->
        Alcotest.failf "of_json rejected %s" (Event.tag s.Event.event))
    sample_stamped

let test_jsonl_parse_back () =
  (* The JSONL sink followed by Query.of_jsonl is the identity. *)
  let buf = Buffer.create 1024 in
  let sink = Sink.jsonl (Buffer.add_string buf) in
  List.iter sink.Sink.emit sample_stamped;
  sink.Sink.close ();
  let back = Query.of_jsonl (Buffer.contents buf) in
  Alcotest.(check int) "event count" (List.length sample_stamped)
    (List.length back);
  Alcotest.(check bool) "events identical" true (back = sample_stamped)

let test_of_json_rejects_garbage () =
  let cases =
    [
      Json.Null;
      Json.String "read-fault";
      Json.Obj [ ("t", Json.Int 0); ("node", Json.Int 0) ];
      Json.Obj
        [ ("t", Json.Int 0); ("node", Json.Int 0); ("ev", Json.String "nope") ];
      (* right tag, missing payload field *)
      Json.Obj
        [
          ("t", Json.Int 0);
          ("node", Json.Int 0);
          ("ev", Json.String "diff-create");
          ("page", Json.Int 1);
        ];
    ]
  in
  List.iter
    (fun j ->
      Alcotest.(check bool) "rejected" true (Event.of_json j = None))
    cases

let test_of_jsonl_skips_bad_lines () =
  let buf = Buffer.create 256 in
  let sink = Sink.jsonl (Buffer.add_string buf) in
  List.iter sink.Sink.emit (List.filteri (fun i _ -> i < 3) sample_stamped);
  let text = "not json at all\n" ^ Buffer.contents buf ^ "{\"half\": tru\n" in
  Alcotest.(check int) "three good lines survive" 3
    (List.length (Query.of_jsonl text))

(* ------------------------------------------------------------------ *)
(* Chrome sink                                                        *)
(* ------------------------------------------------------------------ *)

let test_chrome_output_is_valid_json () =
  let buf = Buffer.create 4096 in
  let sink = Sink.chrome ~nodes:4 (Buffer.add_string buf) in
  List.iter sink.Sink.emit sample_stamped;
  sink.Sink.close ();
  sink.Sink.close ();
  (* idempotent: one footer *)
  let json =
    match Json.parse (Buffer.contents buf) with
    | Ok j -> j
    | Error e -> Alcotest.failf "chrome output does not parse: %s" e
  in
  let records =
    match Option.bind (Json.member "traceEvents" json) Json.to_list with
    | Some l -> l
    | None -> Alcotest.failf "no traceEvents array"
  in
  let phase r =
    Option.value ~default:"?" (Option.bind (Json.member "ph" r) Json.to_str)
  in
  let count ph = List.length (List.filter (fun r -> phase r = ph) records) in
  Alcotest.(check int) "one process_name metadata per node" 4 (count "M");
  Alcotest.(check int) "barrier duration pair" (count "B") (count "E");
  Alcotest.(check bool) "barriers present" true (count "B" >= 1);
  Alcotest.(check int) "compute complete slice" 1 (count "X");
  Alcotest.(check int) "sim-events counter sample" 1 (count "C");
  (* every non-metadata record sits on a node track: pid = tid = node *)
  List.iter
    (fun r ->
      if phase r <> "M" then begin
        let field k = Option.bind (Json.member k r) Json.to_int in
        match (field "pid", field "tid") with
        | Some pid, Some tid ->
          Alcotest.(check bool) "pid = tid" true (pid = tid);
          Alcotest.(check bool) "pid in range" true (pid >= 0 && pid < 4)
        | _ -> Alcotest.failf "record without pid/tid"
      end)
    records

(* ------------------------------------------------------------------ *)
(* Ring sink and tracer plumbing                                      *)
(* ------------------------------------------------------------------ *)

let test_ring_eviction () =
  let ring = Sink.ring ~capacity:4 () in
  let sink = Sink.ring_sink ring in
  List.iteri
    (fun i _ ->
      sink.Sink.emit
        { Event.time = i; node = 0; event = Event.Read_fault { page = i } })
    [ (); (); (); (); (); () ];
  let contents = Sink.ring_contents ring in
  Alcotest.(check int) "keeps capacity" 4 (List.length contents);
  Alcotest.(check int) "counts evictions" 2 (Sink.ring_dropped ring);
  Alcotest.(check (list int)) "oldest first" [ 2; 3; 4; 5 ]
    (List.map (fun (s : Event.stamped) -> s.Event.time) contents)

let test_tracer_fan_out () =
  let r1 = Sink.ring () and r2 = Sink.ring () in
  let tracer = Tracer.create [ Sink.ring_sink r1; Sink.ring_sink r2 ] in
  Alcotest.(check bool) "enabled" true (Tracer.enabled tracer);
  Tracer.emit tracer ~time:7 ~node:1 (Event.Lock_acquire { lock = 0 });
  Tracer.close tracer;
  Tracer.close tracer;
  Alcotest.(check int) "emitted counted" 1 (Tracer.emitted tracer);
  Alcotest.(check int) "sink 1 got it" 1 (List.length (Sink.ring_contents r1));
  Alcotest.(check int) "sink 2 got it" 1 (List.length (Sink.ring_contents r2))

let test_disabled_path_does_not_allocate () =
  (* The emission idiom used throughout lib/dsm:
       if tracing then emit (Event.X {...})
     must construct nothing when tracing is off.  10k iterations through
     the guard should stay within noise (the Gc.minor_words calls
     themselves box a float). *)
  let tracer = Tracer.disabled in
  Alcotest.(check bool) "disabled" false (Tracer.enabled tracer);
  let page = ref 0 in
  let before = Gc.minor_words () in
  for i = 0 to 9_999 do
    if Tracer.enabled tracer then begin
      page := i;
      Tracer.emit tracer ~time:i ~node:0 (Event.Read_fault { page = !page })
    end
  done;
  let after = Gc.minor_words () in
  Alcotest.(check bool)
    (Printf.sprintf "no per-event allocation (%.0f words)" (after -. before))
    true
    (after -. before < 256.)

(* ------------------------------------------------------------------ *)
(* Query combinators                                                  *)
(* ------------------------------------------------------------------ *)

let test_query_filters () =
  let evs = sample_stamped in
  Alcotest.(check int) "by tag" 2 (Query.count ~tag:"own-refuse" evs);
  Alcotest.(check int) "by page" 4 (Query.count ~page:8 evs);
  Alcotest.(check int) "by node" (List.length (Query.filter ~node:2 evs))
    (Query.count ~node:2 evs);
  Alcotest.(check int) "conjunction" 1
    (Query.count ~page:8 ~tag:"own-grant" evs);
  (* events are stamped 0, 1000, ..., 21000 ns; the window is inclusive *)
  Alcotest.(check int) "window"
    (List.length evs - 2)
    (Query.count ~since:1_000 ~until:20_000 evs);
  (match Query.first ~tag:"mode-change" evs with
  | Some { Event.event = Event.Mode_change { mode = Event.Mw; _ }; _ } -> ()
  | _ -> Alcotest.failf "first mode-change should be the Mw flip");
  (match Query.last ~tag:"mode-change" evs with
  | Some { Event.event = Event.Mode_change { mode = Event.Sw; _ }; _ } -> ()
  | _ -> Alcotest.failf "last mode-change should be the Sw flip");
  Alcotest.(check (list int)) "nodes" [ 0; 1; 2; 3 ] (Query.nodes evs);
  Alcotest.(check bool) "pages sorted" true
    (let p = Query.pages evs in
     p = List.sort_uniq compare p)

(* Time-window and page criteria composed in one query: the page-8
   ownership exchange spans 10–13 µs (request, grant, two refusals), so
   slicing it by window must keep page and time predicates ANDed, and
   first/last must respect the window rather than the whole stream. *)
let test_query_window_page_composed () =
  let evs = sample_stamped in
  Alcotest.(check int) "page 8 events in a sub-window" 2
    (Query.count ~page:8 ~since:11_000 ~until:12_000 evs);
  List.iter
    (fun { Event.time; event; _ } ->
      Alcotest.(check bool) "inside window" true
        (time >= 11_000 && time <= 12_000);
      Alcotest.(check (option int)) "right page" (Some 8) (Event.page event))
    (Query.filter ~page:8 ~since:11_000 ~until:12_000 evs);
  Alcotest.(check int) "three-way conjunction" 1
    (Query.count ~page:8 ~tag:"own-refuse" ~since:13_000 evs);
  (match Query.first ~page:8 ~since:11_000 evs with
  | Some { Event.event = Event.Own_grant { page = 8; _ }; time = 11_000; _ }
    -> ()
  | _ -> Alcotest.fail "first page-8 event at/after 11 us should be the grant");
  (match Query.last ~page:8 ~until:12_000 evs with
  | Some { Event.event = Event.Own_refuse { page = 8; _ }; time = 12_000; _ }
    -> ()
  | _ -> Alcotest.fail "last page-8 event up to 12 us should be the refusal");
  Alcotest.(check int) "window past the page's events" 0
    (Query.count ~page:8 ~since:14_000 ~until:9_000_000 evs)

(* ------------------------------------------------------------------ *)
(* Captured protocol runs                                             *)
(* ------------------------------------------------------------------ *)

let capture ?(nprocs = 4) app_name protocol =
  let app =
    match Registry.find app_name with
    | Some app -> app
    | None -> Alcotest.failf "unknown app %s" app_name
  in
  let ring = Sink.ring ~capacity:1_000_000 () in
  let tracer = Tracer.create [ Sink.ring_sink ring ] in
  let m =
    Runner.run ~tracer ~app ~protocol ~nprocs ~scale:Registry.Tiny ()
  in
  Tracer.close tracer;
  Alcotest.(check int) "ring kept everything" 0 (Sink.ring_dropped ring);
  (m, Sink.ring_contents ring)

let test_sor_wfs_trace_matches_stats () =
  (* SOR has no write-write false sharing: WFS keeps every page in SW
     mode, so the trace must show ownership traffic but no twins, no
     diffs and no mode departures (paper Section 6.4). *)
  let m, evs = capture "SOR" Config.Wfs in
  Alcotest.(check int) "read faults" m.Runner.read_faults
    (Query.count ~tag:"read-fault" evs);
  Alcotest.(check int) "write faults" m.Runner.write_faults
    (Query.count ~tag:"write-fault" evs);
  Alcotest.(check int) "ownership requests" m.Runner.own_requests
    (Query.count ~tag:"own-request" evs);
  Alcotest.(check int) "messages" m.Runner.messages
    (Query.count ~tag:"msg-send" evs);
  Alcotest.(check int) "every send delivered"
    (Query.count ~tag:"msg-send" evs)
    (Query.count ~tag:"msg-deliver" evs);
  Alcotest.(check bool) "ownership moved" true (m.Runner.own_requests > 0);
  Alcotest.(check int) "no twins" 0 (Query.count ~tag:"twin-create" evs);
  Alcotest.(check int) "no diffs" 0 (Query.count ~tag:"diff-create" evs);
  Alcotest.(check int) "never leaves SW" 0
    (Query.count ~tag:"mode-change" evs);
  Alcotest.(check int) "barriers balanced"
    (Query.count ~tag:"barrier-enter" evs)
    (Query.count ~tag:"barrier-leave" evs)

let test_is_mw_trace_shows_multiple_writers () =
  (* IS under MW: the shared bucket pages are written by several nodes in
     the same interval — the trace must show some page with diffs created
     by at least two distinct nodes. *)
  let m, evs = capture "IS" Config.Mw in
  Alcotest.(check int) "diff count matches stats" m.Runner.diffs_created
    (Query.count ~tag:"diff-create" evs);
  Alcotest.(check bool) "diffs exist" true (m.Runner.diffs_created > 0);
  let dc = Query.filter ~tag:"diff-create" evs in
  let multi_writer_page =
    List.exists
      (fun p -> List.length (Query.nodes (Query.filter ~page:p dc)) >= 2)
      (Query.pages dc)
  in
  Alcotest.(check bool) "some page diffed by >= 2 nodes" true
    multi_writer_page;
  Alcotest.(check bool) "locks traced" true
    (Query.count ~tag:"lock-acquire" evs > 0);
  Alcotest.(check int) "locks balanced"
    (Query.count ~tag:"lock-acquire" evs)
    (Query.count ~tag:"lock-release" evs)

let () =
  Alcotest.run "trace"
    [
      ( "codec",
        [
          Alcotest.test_case "to_json/of_json round-trip" `Quick
            test_json_roundtrip;
          Alcotest.test_case "jsonl sink parse-back" `Quick
            test_jsonl_parse_back;
          Alcotest.test_case "of_json rejects garbage" `Quick
            test_of_json_rejects_garbage;
          Alcotest.test_case "of_jsonl skips bad lines" `Quick
            test_of_jsonl_skips_bad_lines;
        ] );
      ( "sinks",
        [
          Alcotest.test_case "chrome output valid" `Quick
            test_chrome_output_is_valid_json;
          Alcotest.test_case "ring eviction" `Quick test_ring_eviction;
          Alcotest.test_case "tracer fan-out" `Quick test_tracer_fan_out;
          Alcotest.test_case "disabled path allocation-free" `Quick
            test_disabled_path_does_not_allocate;
        ] );
      ( "query",
        [
          Alcotest.test_case "filters" `Quick test_query_filters;
          Alcotest.test_case "time-window + page composition" `Quick
            test_query_window_page_composed;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "SOR/WFS stays single-writer" `Quick
            test_sor_wfs_trace_matches_stats;
          Alcotest.test_case "IS/MW multiple writers" `Quick
            test_is_mw_trace_shows_multiple_writers;
        ] );
    ]
