(* Bulk-run accessors are sugar over word accesses: for every protocol,
   a program using f64_get_run/f64_set_run/f64_fold_run must be
   indistinguishable — values, fault counts, events, per-kind message
   counters, diff bytes — from the same program written with per-word
   accessors.  The scenarios deliberately include runs that straddle a
   fault mid-run and runs starting exactly at a page boundary. *)

module Config = Adsm_dsm.Config
module Dsm = Adsm_dsm.Dsm
module Stats = Adsm_dsm.Stats
module Diff = Adsm_dsm.Diff
module Page = Adsm_mem.Page
module Recorder = Adsm_check.Recorder

let protocols = Config.all_protocols

(* Everything observable about a run that the bulk rewrite must not
   move. *)
type summary = {
  time_ns : int;
  messages : int;
  payload_bytes : int;
  wire_bytes : int;
  by_kind : (string * (int * int)) list;
  events : int;
  read_faults : int;
  write_faults : int;
  twins : int;
  diffs : int;
  diff_bytes : int;
  v1 : float;
  v2 : float;
}

let summarize (r : Dsm.report) ~v1 ~v2 =
  {
    time_ns = r.Dsm.time_ns;
    messages = r.Dsm.messages;
    payload_bytes = r.Dsm.payload_bytes;
    wire_bytes = r.Dsm.wire_bytes;
    by_kind = r.Dsm.by_kind;
    events = r.Dsm.events;
    read_faults = Stats.read_faults r.Dsm.stats;
    write_faults = Stats.write_faults r.Dsm.stats;
    twins = Stats.twins_created_total r.Dsm.stats;
    diffs = Stats.diffs_created_total r.Dsm.stats;
    diff_bytes = Stats.diff_bytes_total r.Dsm.stats;
    v1;
    v2;
  }

let check_summary name a b =
  Alcotest.(check int) (name ^ " time_ns") a.time_ns b.time_ns;
  Alcotest.(check int) (name ^ " messages") a.messages b.messages;
  Alcotest.(check int) (name ^ " payload") a.payload_bytes b.payload_bytes;
  Alcotest.(check int) (name ^ " wire") a.wire_bytes b.wire_bytes;
  Alcotest.(check (list (pair string (pair int int))))
    (name ^ " by_kind") a.by_kind b.by_kind;
  Alcotest.(check int) (name ^ " events") a.events b.events;
  Alcotest.(check int) (name ^ " read faults") a.read_faults b.read_faults;
  Alcotest.(check int) (name ^ " write faults") a.write_faults b.write_faults;
  Alcotest.(check int) (name ^ " twins") a.twins b.twins;
  Alcotest.(check int) (name ^ " diffs") a.diffs b.diffs;
  Alcotest.(check int) (name ^ " diff bytes") a.diff_bytes b.diff_bytes;
  Alcotest.(check (float 0.)) (name ^ " v1") a.v1 b.v1;
  Alcotest.(check (float 0.)) (name ^ " v2") a.v2 b.v2

(* The f64 scenario on 2 processors and a 4-page array:

   - p0 writes [300, 1900): starts mid-page and straddles three page
     boundaries, so the bulk run takes a write fault mid-run at 512,
     1024 and 1536.
   - p1 reads the same region back (read faults mid-run at the same
     boundaries) and then overwrites [512, 1536): a run starting
     exactly at a page boundary, covering two whole pages.
   - p0 folds [512, 1536) back.

   Accumulation order is ascending in both variants, so the float
   results are bit-identical, not just close. *)
let f64_scenario ~bulk ?(recorder = Recorder.disabled) protocol =
  let cfg = Config.make ~protocol ~nprocs:2 () in
  let t = Dsm.create cfg in
  let a = Dsm.alloc_f64 t ~name:"bulk-eq" ~len:2048 in
  let v1 = ref 0. and v2 = ref 0. in
  let buf = Array.make 1600 0. in
  let report =
    Dsm.run ~recorder t (fun ctx ->
        let me = Dsm.me ctx in
        if me = 0 then
          if bulk then begin
            for k = 0 to 1599 do
              buf.(k) <- float_of_int (300 + k) *. 0.5
            done;
            Dsm.f64_set_run ctx a 300 buf 0 1600
          end
          else
            for i = 300 to 1899 do
              Dsm.f64_set ctx a i (float_of_int i *. 0.5)
            done;
        Dsm.barrier ctx;
        if me = 1 then begin
          (if bulk then begin
             Dsm.f64_get_run ctx a 300 buf 0 1600;
             let s = ref 0. in
             for k = 0 to 1599 do
               s := !s +. buf.(k)
             done;
             v1 := !s
           end
           else begin
             let s = ref 0. in
             for i = 300 to 1899 do
               s := !s +. Dsm.f64_get ctx a i
             done;
             v1 := !s
           end);
          if bulk then begin
            for k = 0 to 1023 do
              buf.(k) <- float_of_int k +. 0.25
            done;
            Dsm.f64_set_run ctx a 512 buf 0 1024
          end
          else
            for i = 512 to 1535 do
              Dsm.f64_set ctx a i (float_of_int (i - 512) +. 0.25)
            done
        end;
        Dsm.barrier ctx;
        if me = 0 then
          if bulk then
            v2 := Dsm.f64_fold_run ctx a 512 1024 ~init:0. ~f:( +. )
          else begin
            let s = ref 0. in
            for i = 512 to 1535 do
              s := !s +. Dsm.f64_get ctx a i
            done;
            v2 := !s
          end)
  in
  summarize report ~v1:!v1 ~v2:!v2

let test_f64_equivalence () =
  List.iter
    (fun protocol ->
      let name = Config.protocol_name protocol in
      let scalar = f64_scenario ~bulk:false protocol in
      let bulk = f64_scenario ~bulk:true protocol in
      check_summary name scalar bulk;
      (* The scenario must actually exercise faulting runs. *)
      Alcotest.(check bool)
        (name ^ " scenario faults") true
        (scalar.read_faults >= 4 && scalar.write_faults >= 4))
    protocols

(* The i32 scenario, doubling as the i32_add equivalence check:
   i32_add's contract is "exactly i32_get then i32_set", so a run using
   it must summarize identically to one spelling out the
   read-modify-write. *)
let i32_scenario ~fast protocol =
  let cfg = Config.make ~protocol ~nprocs:2 () in
  let t = Dsm.create cfg in
  let b = Dsm.alloc_i32 t ~name:"bulk-i32" ~len:2048 in
  let v = ref 0. in
  let buf = Array.make 1024 0l in
  let report =
    Dsm.run t (fun ctx ->
        let me = Dsm.me ctx in
        if me = 0 then begin
          (* A set_run starting at a page boundary (index 1024) and one
             straddling it (from 1000). *)
          for k = 0 to 1023 do
            buf.(k) <- Int32.of_int (3 * k)
          done;
          Dsm.i32_set_run ctx b 1024 buf 0 1024;
          Dsm.i32_set_run ctx b 1000 buf 0 48
        end;
        Dsm.barrier ctx;
        if me = 1 then begin
          for i = 1000 to 1099 do
            if fast then Dsm.i32_add ctx b i 7l
            else Dsm.i32_set ctx b i (Int32.add (Dsm.i32_get ctx b i) 7l)
          done;
          Dsm.i32_get_run ctx b 1000 buf 0 148;
          let s = ref 0. in
          for k = 0 to 147 do
            s := !s +. Int32.to_float buf.(k)
          done;
          v := !s
        end;
        Dsm.barrier ctx;
        if me = 0 then
          v :=
            !v
            +. Dsm.i32_fold_run ctx b 1000 148 ~init:0. ~f:(fun acc x ->
                   acc +. Int32.to_float x))
  in
  summarize report ~v1:!v ~v2:0.

let test_i32_add_equivalence () =
  List.iter
    (fun protocol ->
      let name = Config.protocol_name protocol in
      check_summary name
        (i32_scenario ~fast:false protocol)
        (i32_scenario ~fast:true protocol))
    protocols

(* With the consistency recorder live, bulk operations degrade to
   per-word observation: the recorded streams of the scalar and bulk
   variants must match element for element. *)
let test_recorded_streams_equal () =
  List.iter
    (fun protocol ->
      let name = Config.protocol_name protocol in
      let rec_scalar = Recorder.create () in
      let rec_bulk = Recorder.create () in
      let s = f64_scenario ~bulk:false ~recorder:rec_scalar protocol in
      let b = f64_scenario ~bulk:true ~recorder:rec_bulk protocol in
      check_summary (name ^ " recorded") s b;
      Alcotest.(check int)
        (name ^ " observation count")
        (Recorder.count rec_scalar) (Recorder.count rec_bulk);
      Alcotest.(check bool)
        (name ^ " observation streams equal")
        true
        (Recorder.stream rec_scalar = Recorder.stream rec_bulk))
    protocols

(* Software-TLB staleness: a node's cached page entry must be reset on
   every effective-rights downgrade.  p0 caches the page by writing,
   p1's write invalidates it across the barrier, and p0's read must see
   p1's value — under every protocol, via both access paths. *)
let test_tlb_staleness () =
  List.iter
    (fun protocol ->
      List.iter
        (fun bulk ->
          let cfg = Config.make ~protocol ~nprocs:2 () in
          let t = Dsm.create cfg in
          let a = Dsm.alloc_f64 t ~name:"tlb" ~len:512 in
          let seen = ref 0. in
          let buf = Array.make 1 0. in
          ignore
            (Dsm.run t (fun ctx ->
                 let me = Dsm.me ctx in
                 if me = 0 then Dsm.f64_set ctx a 7 1.0;
                 Dsm.barrier ctx;
                 if me = 1 then Dsm.f64_set ctx a 7 2.0;
                 Dsm.barrier ctx;
                 if me = 0 then
                   if bulk then begin
                     Dsm.f64_get_run ctx a 7 buf 0 1;
                     seen := buf.(0)
                   end
                   else seen := Dsm.f64_get ctx a 7));
          Alcotest.(check (float 0.))
            (Printf.sprintf "%s %s sees latest write"
               (Config.protocol_name protocol)
               (if bulk then "bulk" else "scalar"))
            2.0 !seen)
        [ false; true ])
    protocols

(* One coalesced logged range must produce a byte-identical diff to
   per-word logging of the same writes. *)
let test_of_ranges_coalescing () =
  let page = Page.create () in
  for i = 0 to (Page.size / 8) - 1 do
    Page.set_f64 page (8 * i) (float_of_int (i * i))
  done;
  let per_word = List.init 64 (fun k -> (1024 + (4 * k), 4)) in
  let coalesced = [ (1024, 256) ] in
  let d1 = Diff.of_ranges per_word page in
  let d2 = Diff.of_ranges coalesced page in
  Alcotest.(check (list (pair int int)))
    "coalesced run list" (Diff.ranges d2) (Diff.ranges d1);
  Alcotest.(check int) "modified bytes" (Diff.modified_bytes d2)
    (Diff.modified_bytes d1);
  Alcotest.(check int) "encoded size" (Diff.size_bytes d2)
    (Diff.size_bytes d1);
  let t1 = Page.create () and t2 = Page.create () in
  Diff.apply d1 t1;
  Diff.apply d2 t2;
  Alcotest.(check bool) "applied bytes identical" true (Page.equal t1 t2)

let () =
  Alcotest.run "bulk"
    [
      ( "equivalence",
        [
          Alcotest.test_case "f64 scalar = bulk (all protocols)" `Quick
            test_f64_equivalence;
          Alcotest.test_case "i32_add = get+set (all protocols)" `Quick
            test_i32_add_equivalence;
          Alcotest.test_case "recorded streams equal" `Quick
            test_recorded_streams_equal;
        ] );
      ( "fast path",
        [
          Alcotest.test_case "TLB reset on downgrade" `Quick
            test_tlb_staleness;
          Alcotest.test_case "of_ranges coalescing" `Quick
            test_of_ranges_coalescing;
        ] );
    ]
