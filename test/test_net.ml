(* Tests for the simulated cluster network and RPC layer. *)

module Engine = Adsm_sim.Engine
module Proc = Adsm_sim.Proc
module Netcfg = Adsm_net.Netcfg
module Network = Adsm_net.Network
module Rpc = Adsm_net.Rpc
module Kind = Adsm_net.Kind

(* ------------------------------------------------------------------ *)
(* Cost model calibration (paper Section 4)                           *)
(* ------------------------------------------------------------------ *)

let test_small_message_rtt () =
  let rtt = Netcfg.round_trip_ns Netcfg.atm_155 ~req_bytes:0 ~reply_bytes:0 in
  (* Paper: minimum round-trip 1 ms.  We accept within 2%. *)
  let err = abs (rtt - 1_000_000) in
  Alcotest.(check bool)
    (Printf.sprintf "small RTT %d ns within 2%% of 1 ms" rtt)
    true (err < 20_000)

let test_page_fetch_time () =
  let t = Netcfg.round_trip_ns Netcfg.atm_155 ~req_bytes:0 ~reply_bytes:4096 in
  (* Paper: remote 4096-byte page miss takes 1921 us. *)
  let err = abs (t - 1_921_000) in
  Alcotest.(check bool)
    (Printf.sprintf "page fetch %d ns within 2%% of 1921 us" t)
    true (err < 40_000)

let test_one_way_monotone_in_size () =
  let c = Netcfg.atm_155 in
  let a = Netcfg.one_way_ns c ~bytes:0
  and b = Netcfg.one_way_ns c ~bytes:100
  and d = Netcfg.one_way_ns c ~bytes:4096 in
  Alcotest.(check bool) "monotone" true (a < b && b < d)

(* ------------------------------------------------------------------ *)
(* Network delivery                                                   *)
(* ------------------------------------------------------------------ *)

let make_net ?(nodes = 4) () =
  let e = Engine.create () in
  let net = Network.create e Netcfg.atm_155 ~nodes in
  (e, net)

let test_delivery_and_timing () =
  let e, net = make_net () in
  let got = ref None in
  Network.set_handler net ~node:1 (fun ~src msg ->
      got := Some (src, msg, Engine.now e));
  Network.send net ~src:0 ~dst:1 ~bytes:0 ~kind:Kind.Page "hello";
  ignore (Engine.run e);
  let expect = Netcfg.one_way_ns Netcfg.atm_155 ~bytes:0 in
  match !got with
  | Some (src, msg, time) ->
    Alcotest.(check int) "src" 0 src;
    Alcotest.(check string) "payload" "hello" msg;
    Alcotest.(check int) "arrival time" expect time
  | None -> Alcotest.fail "message not delivered"

let test_link_fifo () =
  (* A large message sent first must not be overtaken by a small one sent
     immediately after on the same link. *)
  let e, net = make_net () in
  let order = ref [] in
  Network.set_handler net ~node:1 (fun ~src:_ msg -> order := msg :: !order);
  Network.send net ~src:0 ~dst:1 ~bytes:100_000 ~kind:Kind.Page "big";
  Network.send net ~src:0 ~dst:1 ~bytes:0 ~kind:Kind.Diff "small";
  ignore (Engine.run e);
  Alcotest.(check (list string)) "fifo per link" [ "big"; "small" ]
    (List.rev !order)

let test_distinct_links_independent () =
  (* Different links are not serialized against each other. *)
  let e, net = make_net () in
  let arrivals = Hashtbl.create 4 in
  let handler node ~src:_ msg = Hashtbl.replace arrivals (node, msg) (Engine.now e) in
  Network.set_handler net ~node:1 (handler 1);
  Network.set_handler net ~node:2 (handler 2);
  Network.send net ~src:0 ~dst:1 ~bytes:100_000 ~kind:Kind.Page "big";
  Network.send net ~src:3 ~dst:2 ~bytes:0 ~kind:Kind.Diff "small";
  ignore (Engine.run e);
  let t_big = Hashtbl.find arrivals (1, "big") in
  let t_small = Hashtbl.find arrivals (2, "small") in
  Alcotest.(check bool) "small on other link arrives first" true
    (t_small < t_big)

let test_counters () =
  let e, net = make_net () in
  Network.set_handler net ~node:1 (fun ~src:_ _ -> ());
  Network.set_handler net ~node:2 (fun ~src:_ _ -> ());
  Network.send net ~src:0 ~dst:1 ~bytes:10 ~kind:Kind.Diff ();
  Network.send net ~src:0 ~dst:2 ~bytes:20 ~kind:Kind.Diff ();
  Network.send net ~src:1 ~dst:2 ~bytes:30 ~kind:Kind.Page ();
  ignore (Engine.run e);
  Alcotest.(check int) "messages" 3 (Network.total_messages net);
  Alcotest.(check int) "payload" 60 (Network.total_payload_bytes net);
  Alcotest.(check int) "wire includes headers"
    (60 + (3 * Netcfg.atm_155.Netcfg.header_bytes))
    (Network.total_wire_bytes net);
  Alcotest.(check (list (pair string (pair int int))))
    "by kind"
    [ ("diff", (2, 30)); ("page", (1, 30)) ]
    (Network.by_kind net);
  Alcotest.(check (pair int int)) "diff kind counts" (2, 30)
    (Network.kind_counts net ~kind:Kind.Diff);
  Alcotest.(check (pair int int)) "unused kind counts" (0, 0)
    (Network.kind_counts net ~kind:Kind.Own);
  Alcotest.(check (pair int int)) "node 0 counts" (2, 0)
    (Network.node_counts net ~node:0);
  Alcotest.(check (pair int int)) "node 2 counts" (0, 2)
    (Network.node_counts net ~node:2);
  Network.reset_counters net;
  Alcotest.(check int) "reset" 0 (Network.total_messages net)

let test_self_send_rejected () =
  let _, net = make_net () in
  Alcotest.check_raises "self send" (Invalid_argument "Network.send: self-send")
    (fun () -> Network.send net ~src:1 ~dst:1 ~bytes:0 ~kind:Kind.Page ())

(* ------------------------------------------------------------------ *)
(* Endpoint serialization (NIC contention model)                      *)
(* ------------------------------------------------------------------ *)

let bytes_ns cfg b = (cfg.Netcfg.header_bytes + b) * cfg.Netcfg.per_byte_ns

let test_receiver_serialization () =
  (* Two large messages from different senders to ONE receiver must
     serialize: the second is delayed by the first's transfer time. *)
  let e, net = make_net () in
  let arrivals = ref [] in
  Network.set_handler net ~node:2 (fun ~src _ ->
      arrivals := (src, Engine.now e) :: !arrivals);
  let payload = 40_000 in
  Network.send net ~src:0 ~dst:2 ~bytes:payload ~kind:Kind.Diff ();
  Network.send net ~src:1 ~dst:2 ~bytes:payload ~kind:Kind.Page ();
  ignore (Engine.run e);
  match List.rev !arrivals with
  | [ (_, t1); (_, t2) ] ->
    let gap = t2 - t1 in
    Alcotest.(check bool)
      (Printf.sprintf "second delayed by a full transfer (gap %d ns)" gap)
      true
      (gap >= bytes_ns Netcfg.atm_155 payload)
  | _ -> Alcotest.fail "expected two arrivals"

let test_sender_serialization () =
  (* Two large messages from ONE sender to different receivers serialize
     at the sender's NIC. *)
  let e, net = make_net () in
  let arrivals = ref [] in
  let handler node ~src:_ _ = arrivals := (node, Engine.now e) :: !arrivals in
  Network.set_handler net ~node:1 (handler 1);
  Network.set_handler net ~node:2 (handler 2);
  let payload = 40_000 in
  Network.send net ~src:0 ~dst:1 ~bytes:payload ~kind:Kind.Diff ();
  Network.send net ~src:0 ~dst:2 ~bytes:payload ~kind:Kind.Page ();
  ignore (Engine.run e);
  match List.rev !arrivals with
  | [ (_, t1); (_, t2) ] ->
    Alcotest.(check bool) "second send waits for the first" true
      (t2 - t1 >= bytes_ns Netcfg.atm_155 payload)
  | _ -> Alcotest.fail "expected two arrivals"

let test_disjoint_paths_parallel () =
  (* Transfers on disjoint sender/receiver pairs overlap fully. *)
  let e, net = make_net () in
  let arrivals = ref [] in
  let handler node ~src:_ _ = arrivals := (node, Engine.now e) :: !arrivals in
  Network.set_handler net ~node:2 (handler 2);
  Network.set_handler net ~node:3 (handler 3);
  let payload = 40_000 in
  Network.send net ~src:0 ~dst:2 ~bytes:payload ~kind:Kind.Diff ();
  Network.send net ~src:1 ~dst:3 ~bytes:payload ~kind:Kind.Page ();
  ignore (Engine.run e);
  match List.rev !arrivals with
  | [ (_, t1); (_, t2) ] ->
    Alcotest.(check int) "identical arrival times" t1 t2
  | _ -> Alcotest.fail "expected two arrivals"

let test_uncontended_matches_cost_model () =
  (* With no contention, delivery time equals Netcfg.one_way_ns exactly,
     for several sizes. *)
  List.iter
    (fun payload ->
      let e, net = make_net () in
      let seen = ref (-1) in
      Network.set_handler net ~node:1 (fun ~src:_ _ -> seen := Engine.now e);
      Network.send net ~src:0 ~dst:1 ~bytes:payload ~kind:Kind.Page ();
      ignore (Engine.run e);
      Alcotest.(check int)
        (Printf.sprintf "%d bytes" payload)
        (Netcfg.one_way_ns Netcfg.atm_155 ~bytes:payload)
        !seen)
    [ 0; 100; 4096; 100_000 ]

(* ------------------------------------------------------------------ *)
(* RPC                                                                *)
(* ------------------------------------------------------------------ *)

let test_rpc_call_reply () =
  let e = Engine.create () in
  let rpc = Rpc.create e Netcfg.atm_155 ~nodes:2 in
  Rpc.set_handler rpc ~node:1 (fun ~src:_ msg respond ->
      match respond with
      | Some r -> r ~bytes:4096 ~kind:Kind.Page (msg * 2)
      | None -> Alcotest.fail "expected a request");
  Rpc.set_handler rpc ~node:0 (fun ~src:_ _ _ -> ());
  let result = ref 0 and finish = ref 0 in
  Proc.spawn e (fun () ->
      result := Rpc.call rpc ~src:0 ~dst:1 ~bytes:0 ~kind:Kind.Page 21;
      finish := Engine.now e);
  ignore (Engine.run e);
  Alcotest.(check int) "reply value" 42 !result;
  let expect =
    Netcfg.round_trip_ns Netcfg.atm_155 ~req_bytes:0 ~reply_bytes:4096
  in
  Alcotest.(check int) "round trip equals model" expect !finish

let test_rpc_delayed_reply () =
  (* Server withholds the reply (ownership quantum style). *)
  let e = Engine.create () in
  let rpc = Rpc.create e Netcfg.atm_155 ~nodes:2 in
  let hold = 5_000_000 in
  Rpc.set_handler rpc ~node:1 (fun ~src:_ () respond ->
      match respond with
      | Some r -> Engine.schedule e ~delay:hold (fun () -> r ~bytes:0 ~kind:Kind.Lock ())
      | None -> ());
  let finish = ref 0 in
  Proc.spawn e (fun () ->
      Rpc.call rpc ~src:0 ~dst:1 ~bytes:0 ~kind:Kind.Lock ();
      finish := Engine.now e);
  ignore (Engine.run e);
  let expect = hold + Netcfg.round_trip_ns Netcfg.atm_155 ~req_bytes:0 ~reply_bytes:0 in
  Alcotest.(check int) "delayed grant" expect !finish

let test_rpc_cast () =
  let e = Engine.create () in
  let rpc = Rpc.create e Netcfg.atm_155 ~nodes:2 in
  let got = ref false in
  Rpc.set_handler rpc ~node:1 (fun ~src:_ () respond ->
      Alcotest.(check bool) "oneway has no respond" true (respond = None);
      got := true);
  Rpc.cast rpc ~src:0 ~dst:1 ~bytes:8 ~kind:Kind.Barrier ();
  ignore (Engine.run e);
  Alcotest.(check bool) "delivered" true !got

let test_rpc_concurrent_calls () =
  (* Several outstanding calls from different processes correlate correctly. *)
  let e = Engine.create () in
  let rpc = Rpc.create e Netcfg.atm_155 ~nodes:3 in
  for node = 1 to 2 do
    Rpc.set_handler rpc ~node (fun ~src:_ x respond ->
        match respond with
        | Some r -> r ~bytes:0 ~kind:Kind.Page (x + (node * 100))
        | None -> ())
  done;
  Rpc.set_handler rpc ~node:0 (fun ~src:_ _ _ -> ());
  let results = Array.make 4 0 in
  for i = 0 to 3 do
    let dst = 1 + (i mod 2) in
    Proc.spawn e (fun () ->
        results.(i) <- Rpc.call rpc ~src:0 ~dst ~bytes:0 ~kind:Kind.Page i)
  done;
  ignore (Engine.run e);
  Alcotest.(check (array int)) "all correlated" [| 100; 201; 102; 203 |] results

let () =
  Alcotest.run "net"
    [
      ( "netcfg",
        [
          Alcotest.test_case "small RTT ~ 1ms" `Quick test_small_message_rtt;
          Alcotest.test_case "page fetch ~ 1921us" `Quick test_page_fetch_time;
          Alcotest.test_case "monotone in size" `Quick test_one_way_monotone_in_size;
        ] );
      ( "network",
        [
          Alcotest.test_case "delivery" `Quick test_delivery_and_timing;
          Alcotest.test_case "link fifo" `Quick test_link_fifo;
          Alcotest.test_case "links independent" `Quick test_distinct_links_independent;
          Alcotest.test_case "counters" `Quick test_counters;
          Alcotest.test_case "self send" `Quick test_self_send_rejected;
        ] );
      ( "endpoint-serialization",
        [
          Alcotest.test_case "receiver contention" `Quick
            test_receiver_serialization;
          Alcotest.test_case "sender contention" `Quick
            test_sender_serialization;
          Alcotest.test_case "disjoint paths overlap" `Quick
            test_disjoint_paths_parallel;
          Alcotest.test_case "uncontended = cost model" `Quick
            test_uncontended_matches_cost_model;
        ] );
      ( "rpc",
        [
          Alcotest.test_case "call/reply" `Quick test_rpc_call_reply;
          Alcotest.test_case "delayed reply" `Quick test_rpc_delayed_reply;
          Alcotest.test_case "cast" `Quick test_rpc_cast;
          Alcotest.test_case "concurrent calls" `Quick test_rpc_concurrent_calls;
        ] );
    ]
