(* Tests for the simulated cluster network and RPC layer. *)

module Engine = Adsm_sim.Engine
module Proc = Adsm_sim.Proc
module Netcfg = Adsm_net.Netcfg
module Network = Adsm_net.Network
module Rpc = Adsm_net.Rpc
module Kind = Adsm_net.Kind
module Topology = Adsm_net.Topology

(* ------------------------------------------------------------------ *)
(* Cost model calibration (paper Section 4)                           *)
(* ------------------------------------------------------------------ *)

let test_small_message_rtt () =
  let rtt = Netcfg.round_trip_ns Netcfg.atm_155 ~req_bytes:0 ~reply_bytes:0 in
  (* Paper: minimum round-trip 1 ms.  We accept within 2%. *)
  let err = abs (rtt - 1_000_000) in
  Alcotest.(check bool)
    (Printf.sprintf "small RTT %d ns within 2%% of 1 ms" rtt)
    true (err < 20_000)

let test_page_fetch_time () =
  let t = Netcfg.round_trip_ns Netcfg.atm_155 ~req_bytes:0 ~reply_bytes:4096 in
  (* Paper: remote 4096-byte page miss takes 1921 us. *)
  let err = abs (t - 1_921_000) in
  Alcotest.(check bool)
    (Printf.sprintf "page fetch %d ns within 2%% of 1921 us" t)
    true (err < 40_000)

let test_one_way_monotone_in_size () =
  let c = Netcfg.atm_155 in
  let a = Netcfg.one_way_ns c ~bytes:0
  and b = Netcfg.one_way_ns c ~bytes:100
  and d = Netcfg.one_way_ns c ~bytes:4096 in
  Alcotest.(check bool) "monotone" true (a < b && b < d)

(* ------------------------------------------------------------------ *)
(* Network delivery                                                   *)
(* ------------------------------------------------------------------ *)

let make_net ?(nodes = 4) () =
  let e = Engine.create () in
  let net = Network.create e Netcfg.atm_155 ~nodes in
  (e, net)

let test_delivery_and_timing () =
  let e, net = make_net () in
  let got = ref None in
  Network.set_handler net ~node:1 (fun ~src msg ->
      got := Some (src, msg, Engine.now e));
  Network.send net ~src:0 ~dst:1 ~bytes:0 ~kind:Kind.Page "hello";
  ignore (Engine.run e);
  let expect = Netcfg.one_way_ns Netcfg.atm_155 ~bytes:0 in
  match !got with
  | Some (src, msg, time) ->
    Alcotest.(check int) "src" 0 src;
    Alcotest.(check string) "payload" "hello" msg;
    Alcotest.(check int) "arrival time" expect time
  | None -> Alcotest.fail "message not delivered"

let test_link_fifo () =
  (* A large message sent first must not be overtaken by a small one sent
     immediately after on the same link. *)
  let e, net = make_net () in
  let order = ref [] in
  Network.set_handler net ~node:1 (fun ~src:_ msg -> order := msg :: !order);
  Network.send net ~src:0 ~dst:1 ~bytes:100_000 ~kind:Kind.Page "big";
  Network.send net ~src:0 ~dst:1 ~bytes:0 ~kind:Kind.Diff "small";
  ignore (Engine.run e);
  Alcotest.(check (list string)) "fifo per link" [ "big"; "small" ]
    (List.rev !order)

let test_distinct_links_independent () =
  (* Different links are not serialized against each other. *)
  let e, net = make_net () in
  let arrivals = Hashtbl.create 4 in
  let handler node ~src:_ msg = Hashtbl.replace arrivals (node, msg) (Engine.now e) in
  Network.set_handler net ~node:1 (handler 1);
  Network.set_handler net ~node:2 (handler 2);
  Network.send net ~src:0 ~dst:1 ~bytes:100_000 ~kind:Kind.Page "big";
  Network.send net ~src:3 ~dst:2 ~bytes:0 ~kind:Kind.Diff "small";
  ignore (Engine.run e);
  let t_big = Hashtbl.find arrivals (1, "big") in
  let t_small = Hashtbl.find arrivals (2, "small") in
  Alcotest.(check bool) "small on other link arrives first" true
    (t_small < t_big)

let test_counters () =
  let e, net = make_net () in
  Network.set_handler net ~node:1 (fun ~src:_ _ -> ());
  Network.set_handler net ~node:2 (fun ~src:_ _ -> ());
  Network.send net ~src:0 ~dst:1 ~bytes:10 ~kind:Kind.Diff ();
  Network.send net ~src:0 ~dst:2 ~bytes:20 ~kind:Kind.Diff ();
  Network.send net ~src:1 ~dst:2 ~bytes:30 ~kind:Kind.Page ();
  ignore (Engine.run e);
  Alcotest.(check int) "messages" 3 (Network.total_messages net);
  Alcotest.(check int) "payload" 60 (Network.total_payload_bytes net);
  Alcotest.(check int) "wire includes headers"
    (60 + (3 * Netcfg.atm_155.Netcfg.header_bytes))
    (Network.total_wire_bytes net);
  Alcotest.(check (list (pair string (pair int int))))
    "by kind"
    [ ("diff", (2, 30)); ("page", (1, 30)) ]
    (Network.by_kind net);
  Alcotest.(check (pair int int)) "diff kind counts" (2, 30)
    (Network.kind_counts net ~kind:Kind.Diff);
  Alcotest.(check (pair int int)) "unused kind counts" (0, 0)
    (Network.kind_counts net ~kind:Kind.Own);
  Alcotest.(check (pair int int)) "node 0 counts" (2, 0)
    (Network.node_counts net ~node:0);
  Alcotest.(check (pair int int)) "node 2 counts" (0, 2)
    (Network.node_counts net ~node:2);
  Network.reset_counters net;
  Alcotest.(check int) "reset" 0 (Network.total_messages net)

let test_self_send_rejected () =
  let _, net = make_net () in
  Alcotest.check_raises "self send" (Invalid_argument "Network.send: self-send")
    (fun () -> Network.send net ~src:1 ~dst:1 ~bytes:0 ~kind:Kind.Page ())

(* ------------------------------------------------------------------ *)
(* Endpoint serialization (NIC contention model)                      *)
(* ------------------------------------------------------------------ *)

let bytes_ns cfg b = (cfg.Netcfg.header_bytes + b) * cfg.Netcfg.per_byte_ns

let test_receiver_serialization () =
  (* Two large messages from different senders to ONE receiver must
     serialize: the second is delayed by the first's transfer time. *)
  let e, net = make_net () in
  let arrivals = ref [] in
  Network.set_handler net ~node:2 (fun ~src _ ->
      arrivals := (src, Engine.now e) :: !arrivals);
  let payload = 40_000 in
  Network.send net ~src:0 ~dst:2 ~bytes:payload ~kind:Kind.Diff ();
  Network.send net ~src:1 ~dst:2 ~bytes:payload ~kind:Kind.Page ();
  ignore (Engine.run e);
  match List.rev !arrivals with
  | [ (_, t1); (_, t2) ] ->
    let gap = t2 - t1 in
    Alcotest.(check bool)
      (Printf.sprintf "second delayed by a full transfer (gap %d ns)" gap)
      true
      (gap >= bytes_ns Netcfg.atm_155 payload)
  | _ -> Alcotest.fail "expected two arrivals"

let test_sender_serialization () =
  (* Two large messages from ONE sender to different receivers serialize
     at the sender's NIC. *)
  let e, net = make_net () in
  let arrivals = ref [] in
  let handler node ~src:_ _ = arrivals := (node, Engine.now e) :: !arrivals in
  Network.set_handler net ~node:1 (handler 1);
  Network.set_handler net ~node:2 (handler 2);
  let payload = 40_000 in
  Network.send net ~src:0 ~dst:1 ~bytes:payload ~kind:Kind.Diff ();
  Network.send net ~src:0 ~dst:2 ~bytes:payload ~kind:Kind.Page ();
  ignore (Engine.run e);
  match List.rev !arrivals with
  | [ (_, t1); (_, t2) ] ->
    Alcotest.(check bool) "second send waits for the first" true
      (t2 - t1 >= bytes_ns Netcfg.atm_155 payload)
  | _ -> Alcotest.fail "expected two arrivals"

let test_disjoint_paths_parallel () =
  (* Transfers on disjoint sender/receiver pairs overlap fully. *)
  let e, net = make_net () in
  let arrivals = ref [] in
  let handler node ~src:_ _ = arrivals := (node, Engine.now e) :: !arrivals in
  Network.set_handler net ~node:2 (handler 2);
  Network.set_handler net ~node:3 (handler 3);
  let payload = 40_000 in
  Network.send net ~src:0 ~dst:2 ~bytes:payload ~kind:Kind.Diff ();
  Network.send net ~src:1 ~dst:3 ~bytes:payload ~kind:Kind.Page ();
  ignore (Engine.run e);
  match List.rev !arrivals with
  | [ (_, t1); (_, t2) ] ->
    Alcotest.(check int) "identical arrival times" t1 t2
  | _ -> Alcotest.fail "expected two arrivals"

let test_uncontended_matches_cost_model () =
  (* With no contention, delivery time equals Netcfg.one_way_ns exactly,
     for several sizes. *)
  List.iter
    (fun payload ->
      let e, net = make_net () in
      let seen = ref (-1) in
      Network.set_handler net ~node:1 (fun ~src:_ _ -> seen := Engine.now e);
      Network.send net ~src:0 ~dst:1 ~bytes:payload ~kind:Kind.Page ();
      ignore (Engine.run e);
      Alcotest.(check int)
        (Printf.sprintf "%d bytes" payload)
        (Netcfg.one_way_ns Netcfg.atm_155 ~bytes:payload)
        !seen)
    [ 0; 100; 4096; 100_000 ]

(* ------------------------------------------------------------------ *)
(* Tree topology: per-hop costs and shared-uplink serialization        *)
(* ------------------------------------------------------------------ *)

(* Explicit hop parameters (not the derived defaults) so each expected
   arrival time below is a plain sum of named constants. *)
let tree_uplink = { Topology.latency_ns = 2_000; per_byte_ns = 5 }

let tree_topo =
  Topology.tree ~nodes_per_switch:2 ~edge_latency_ns:1_000 ~switch_ns:500
    ~uplink:tree_uplink Netcfg.atm_155

let make_tree_net ?(nodes = 6) () =
  let e = Engine.create () in
  let net = Network.create_topo e tree_topo ~nodes in
  (e, net)

let up_bytes_ns b =
  (Netcfg.atm_155.Netcfg.header_bytes + b) * tree_uplink.Topology.per_byte_ns

(* Uncontended tree arrival time for a single message on a fresh net. *)
let arrival_time ~src ~dst ~bytes =
  let e, net = make_tree_net () in
  let seen = ref (-1) in
  Network.set_handler net ~node:dst (fun ~src:_ _ -> seen := Engine.now e);
  Network.send net ~src ~dst ~bytes ~kind:Kind.Page ();
  ignore (Engine.run e);
  !seen

let test_flat_topo_matches_create () =
  (* [create_topo] with the Flat shape must be byte- and time-identical
     to the historical [create] path. *)
  List.iter
    (fun payload ->
      let e1, net1 = make_net () in
      let e2 = Engine.create () in
      let net2 =
        Network.create_topo e2 (Topology.flat Netcfg.atm_155) ~nodes:4
      in
      let t1 = ref (-1) and t2 = ref (-1) in
      Network.set_handler net1 ~node:1 (fun ~src:_ _ -> t1 := Engine.now e1);
      Network.set_handler net2 ~node:1 (fun ~src:_ _ -> t2 := Engine.now e2);
      Network.send net1 ~src:0 ~dst:1 ~bytes:payload ~kind:Kind.Page ();
      Network.send net2 ~src:0 ~dst:1 ~bytes:payload ~kind:Kind.Page ();
      ignore (Engine.run e1);
      ignore (Engine.run e2);
      Alcotest.(check int) (Printf.sprintf "%d bytes" payload) !t1 !t2)
    [ 0; 4096; 100_000 ]

let test_tree_same_switch_cost () =
  (* Nodes 0 and 1 share leaf switch 0: NIC transfer, edge up, one
     switch traversal, edge down. *)
  let cfg = Netcfg.atm_155 in
  let payload = 4096 in
  let expect =
    cfg.Netcfg.send_overhead_ns
    + bytes_ns cfg payload
    + 1_000 + 500 + 1_000
    + cfg.Netcfg.recv_overhead_ns
  in
  Alcotest.(check int) "same-switch arrival additive" expect
    (arrival_time ~src:0 ~dst:1 ~bytes:payload)

let test_tree_cross_switch_cost () =
  (* Node 0 (switch 0) to node 2 (switch 1): edge, leaf switch, uplink
     transfer + latency, root switch, downlink transfer + latency,
     destination leaf switch, edge. *)
  let cfg = Netcfg.atm_155 in
  let payload = 4096 in
  let expect =
    cfg.Netcfg.send_overhead_ns
    + bytes_ns cfg payload
    + 1_000 + 500 (* edge up, source leaf switch *)
    + up_bytes_ns payload + 2_000 + 500 (* uplink, root switch *)
    + up_bytes_ns payload + 2_000 + 500 (* downlink, dest leaf switch *)
    + 1_000 (* edge down *)
    + cfg.Netcfg.recv_overhead_ns
  in
  Alcotest.(check int) "cross-switch arrival additive" expect
    (arrival_time ~src:0 ~dst:2 ~bytes:payload)

let test_tree_uplink_contention () =
  (* Nodes 0 and 1 (both on leaf switch 0) send to nodes on two
     DIFFERENT remote switches at the same instant: distinct sender and
     receiver NICs, distinct down channels — the only shared resource is
     switch 0's root-bound uplink, so the second transfer arrives
     exactly one uplink transfer time after the first. *)
  let e, net = make_tree_net () in
  let payload = 4096 in
  let arrivals = Hashtbl.create 4 in
  Network.set_handler net ~node:2 (fun ~src:_ _ ->
      Hashtbl.replace arrivals 2 (Engine.now e));
  Network.set_handler net ~node:4 (fun ~src:_ _ ->
      Hashtbl.replace arrivals 4 (Engine.now e));
  Network.send net ~src:0 ~dst:2 ~bytes:payload ~kind:Kind.Page ();
  Network.send net ~src:1 ~dst:4 ~bytes:payload ~kind:Kind.Diff ();
  ignore (Engine.run e);
  let t_first = Hashtbl.find arrivals 2 and t_second = Hashtbl.find arrivals 4 in
  Alcotest.(check int) "second delayed by one uplink transfer"
    (up_bytes_ns payload) (t_second - t_first)

let test_tree_downlink_contention () =
  (* Senders on two different switches target two different nodes of ONE
     remote switch: the shared leaf-bound channel of that switch
     serializes them. *)
  let e, net = make_tree_net () in
  let payload = 4096 in
  let arrivals = Hashtbl.create 4 in
  Network.set_handler net ~node:4 (fun ~src:_ _ ->
      Hashtbl.replace arrivals 4 (Engine.now e));
  Network.set_handler net ~node:5 (fun ~src:_ _ ->
      Hashtbl.replace arrivals 5 (Engine.now e));
  Network.send net ~src:0 ~dst:4 ~bytes:payload ~kind:Kind.Page ();
  Network.send net ~src:2 ~dst:5 ~bytes:payload ~kind:Kind.Diff ();
  ignore (Engine.run e);
  let t_first = Hashtbl.find arrivals 4 and t_second = Hashtbl.find arrivals 5 in
  Alcotest.(check int) "second delayed by one downlink transfer"
    (up_bytes_ns payload) (t_second - t_first)

let test_tree_same_switch_avoids_uplink () =
  (* Same-switch traffic must not touch the uplink channels: a transfer
     between two nodes of switch 0, issued while a huge cross-switch
     transfer from the same switch occupies its uplink, still arrives at
     exactly its uncontended time. *)
  let payload = 4096 in
  let uncontended = arrival_time ~src:0 ~dst:1 ~bytes:payload in
  let e, net = make_tree_net () in
  let seen = ref (-1) in
  Network.set_handler net ~node:1 (fun ~src:_ _ -> seen := Engine.now e);
  Network.set_handler net ~node:4 (fun ~src:_ _ -> ());
  Network.send net ~src:1 ~dst:4 ~bytes:1_000_000 ~kind:Kind.Page ();
  Network.send net ~src:0 ~dst:1 ~bytes:payload ~kind:Kind.Diff ();
  ignore (Engine.run e);
  Alcotest.(check int) "unaffected by uplink traffic" uncontended !seen

let test_shape_of_string () =
  let base = Netcfg.atm_155 in
  (match Topology.shape_of_string ~base "flat" with
  | Ok Topology.Flat -> ()
  | _ -> Alcotest.fail "flat must parse");
  (match Topology.shape_of_string ~base "tree:8" with
  | Ok (Topology.Tree t) ->
    Alcotest.(check int) "radix" 8 t.Topology.nodes_per_switch
  | _ -> Alcotest.fail "tree:8 must parse");
  match Topology.shape_of_string ~base "tree:bogus" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "tree:bogus must be rejected"

let test_node_speeds () =
  let t =
    Topology.with_speeds (Topology.flat Netcfg.atm_155) [| 1.0; 2.0; 0.5 |]
  in
  Alcotest.(check (float 0.0)) "node 1" 2.0 (Topology.node_speed t 1);
  Alcotest.(check (float 0.0)) "wraps modulo" 1.0 (Topology.node_speed t 3);
  Alcotest.(check (float 0.0)) "homogeneous" 1.0
    (Topology.node_speed (Topology.flat Netcfg.atm_155) 5)

(* ------------------------------------------------------------------ *)
(* Lookahead: the parallel engine's safe-horizon bound                 *)
(* ------------------------------------------------------------------ *)

(* [lookahead_ns] underpins the conservative parallel engine (see
   PARALLELISM.md): it must be a true lower bound on every possible
   delivery latency, and as tight as the cost model allows — a slack
   bound costs parallel window width. *)

let test_lookahead_flat () =
  (* On a flat fabric the cheapest message is a 0-byte payload, so the
     bound is exactly the cost model's empty one-way time. *)
  List.iter
    (fun (name, base) ->
      Alcotest.(check int)
        (name ^ " flat lookahead = empty one-way")
        (Netcfg.one_way_ns base ~bytes:0)
        (Topology.lookahead_ns base Topology.Flat))
    [ ("atm", Netcfg.atm_155); ("fast-ethernet", Netcfg.fast_ethernet) ];
  (* Pin the ATM value: it is the default safe-horizon width, quoted in
     PARALLELISM.md's lookahead table. *)
  Alcotest.(check int) "atm flat lookahead pinned" 499_000
    (Topology.lookahead_ns Netcfg.atm_155 Topology.Flat)

let test_lookahead_positive () =
  List.iter
    (fun (name, base) ->
      List.iter
        (fun (shape_name, shape) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s lookahead > 0" name shape_name)
            true
            (Topology.lookahead_ns base shape > 0))
        [
          ("flat", Topology.Flat);
          ("tree", Topology.shape (Topology.tree base));
        ])
    [ ("atm", Netcfg.atm_155); ("fast-ethernet", Netcfg.fast_ethernet) ]

let test_lookahead_bounds_tree_delivery () =
  (* Measure the two cheapest tree deliveries (0-byte payload, same
     switch and cross switch) on an otherwise idle fabric: the static
     bound must not exceed either, and must equal the cheaper one. *)
  let measure ~dst =
    let e, net = make_tree_net () in
    let seen = ref (-1) in
    Network.set_handler net ~node:dst (fun ~src:_ _ -> seen := Engine.now e);
    Network.send net ~src:0 ~dst ~bytes:0 ~kind:Kind.Page ();
    ignore (Engine.run e);
    !seen
  in
  let same_switch = measure ~dst:1 in
  let cross_switch = measure ~dst:2 in
  let bound =
    Topology.lookahead_ns Netcfg.atm_155 (Topology.shape tree_topo)
  in
  Alcotest.(check bool) "bound <= same-switch delivery" true
    (bound <= same_switch);
  Alcotest.(check bool) "bound <= cross-switch delivery" true
    (bound <= cross_switch);
  Alcotest.(check int) "bound is tight" (min same_switch cross_switch) bound

(* ------------------------------------------------------------------ *)
(* RPC                                                                *)
(* ------------------------------------------------------------------ *)

let test_rpc_call_reply () =
  let e = Engine.create () in
  let rpc = Rpc.create e Netcfg.atm_155 ~nodes:2 in
  Rpc.set_handler rpc ~node:1 (fun ~src:_ msg respond ->
      match respond with
      | Some r -> r ~bytes:4096 ~kind:Kind.Page (msg * 2)
      | None -> Alcotest.fail "expected a request");
  Rpc.set_handler rpc ~node:0 (fun ~src:_ _ _ -> ());
  let result = ref 0 and finish = ref 0 in
  Proc.spawn e (fun () ->
      result := Rpc.call rpc ~src:0 ~dst:1 ~bytes:0 ~kind:Kind.Page 21;
      finish := Engine.now e);
  ignore (Engine.run e);
  Alcotest.(check int) "reply value" 42 !result;
  let expect =
    Netcfg.round_trip_ns Netcfg.atm_155 ~req_bytes:0 ~reply_bytes:4096
  in
  Alcotest.(check int) "round trip equals model" expect !finish

let test_rpc_delayed_reply () =
  (* Server withholds the reply (ownership quantum style). *)
  let e = Engine.create () in
  let rpc = Rpc.create e Netcfg.atm_155 ~nodes:2 in
  let hold = 5_000_000 in
  Rpc.set_handler rpc ~node:1 (fun ~src:_ () respond ->
      match respond with
      | Some r -> Engine.schedule e ~delay:hold (fun () -> r ~bytes:0 ~kind:Kind.Lock ())
      | None -> ());
  let finish = ref 0 in
  Proc.spawn e (fun () ->
      Rpc.call rpc ~src:0 ~dst:1 ~bytes:0 ~kind:Kind.Lock ();
      finish := Engine.now e);
  ignore (Engine.run e);
  let expect = hold + Netcfg.round_trip_ns Netcfg.atm_155 ~req_bytes:0 ~reply_bytes:0 in
  Alcotest.(check int) "delayed grant" expect !finish

let test_rpc_cast () =
  let e = Engine.create () in
  let rpc = Rpc.create e Netcfg.atm_155 ~nodes:2 in
  let got = ref false in
  Rpc.set_handler rpc ~node:1 (fun ~src:_ () respond ->
      Alcotest.(check bool) "oneway has no respond" true (respond = None);
      got := true);
  Rpc.cast rpc ~src:0 ~dst:1 ~bytes:8 ~kind:Kind.Barrier ();
  ignore (Engine.run e);
  Alcotest.(check bool) "delivered" true !got

let test_rpc_concurrent_calls () =
  (* Several outstanding calls from different processes correlate correctly. *)
  let e = Engine.create () in
  let rpc = Rpc.create e Netcfg.atm_155 ~nodes:3 in
  for node = 1 to 2 do
    Rpc.set_handler rpc ~node (fun ~src:_ x respond ->
        match respond with
        | Some r -> r ~bytes:0 ~kind:Kind.Page (x + (node * 100))
        | None -> ())
  done;
  Rpc.set_handler rpc ~node:0 (fun ~src:_ _ _ -> ());
  let results = Array.make 4 0 in
  for i = 0 to 3 do
    let dst = 1 + (i mod 2) in
    Proc.spawn e (fun () ->
        results.(i) <- Rpc.call rpc ~src:0 ~dst ~bytes:0 ~kind:Kind.Page i)
  done;
  ignore (Engine.run e);
  Alcotest.(check (array int)) "all correlated" [| 100; 201; 102; 203 |] results

let () =
  Alcotest.run "net"
    [
      ( "netcfg",
        [
          Alcotest.test_case "small RTT ~ 1ms" `Quick test_small_message_rtt;
          Alcotest.test_case "page fetch ~ 1921us" `Quick test_page_fetch_time;
          Alcotest.test_case "monotone in size" `Quick test_one_way_monotone_in_size;
        ] );
      ( "network",
        [
          Alcotest.test_case "delivery" `Quick test_delivery_and_timing;
          Alcotest.test_case "link fifo" `Quick test_link_fifo;
          Alcotest.test_case "links independent" `Quick test_distinct_links_independent;
          Alcotest.test_case "counters" `Quick test_counters;
          Alcotest.test_case "self send" `Quick test_self_send_rejected;
        ] );
      ( "endpoint-serialization",
        [
          Alcotest.test_case "receiver contention" `Quick
            test_receiver_serialization;
          Alcotest.test_case "sender contention" `Quick
            test_sender_serialization;
          Alcotest.test_case "disjoint paths overlap" `Quick
            test_disjoint_paths_parallel;
          Alcotest.test_case "uncontended = cost model" `Quick
            test_uncontended_matches_cost_model;
        ] );
      ( "topology",
        [
          Alcotest.test_case "flat topo = historic create" `Quick
            test_flat_topo_matches_create;
          Alcotest.test_case "same-switch hop costs add" `Quick
            test_tree_same_switch_cost;
          Alcotest.test_case "cross-switch hop costs add" `Quick
            test_tree_cross_switch_cost;
          Alcotest.test_case "shared uplink serializes" `Quick
            test_tree_uplink_contention;
          Alcotest.test_case "shared downlink serializes" `Quick
            test_tree_downlink_contention;
          Alcotest.test_case "same-switch avoids uplink" `Quick
            test_tree_same_switch_avoids_uplink;
          Alcotest.test_case "shape_of_string" `Quick test_shape_of_string;
          Alcotest.test_case "node speeds" `Quick test_node_speeds;
        ] );
      ( "lookahead",
        [
          Alcotest.test_case "flat = empty one-way" `Quick test_lookahead_flat;
          Alcotest.test_case "positive on all fabrics" `Quick
            test_lookahead_positive;
          Alcotest.test_case "lower-bounds tree delivery" `Quick
            test_lookahead_bounds_tree_delivery;
        ] );
      ( "rpc",
        [
          Alcotest.test_case "call/reply" `Quick test_rpc_call_reply;
          Alcotest.test_case "delayed reply" `Quick test_rpc_delayed_reply;
          Alcotest.test_case "cast" `Quick test_rpc_cast;
          Alcotest.test_case "concurrent calls" `Quick test_rpc_concurrent_calls;
        ] );
    ]
