(* End-to-end protocol tests: small access-pattern scenarios executed under
   all four protocols, checking both correctness (values read back) and
   protocol behaviour (twins, diffs, ownership traffic, adaptation). *)

module Config = Adsm_dsm.Config
module Dsm = Adsm_dsm.Dsm
module Stats = Adsm_dsm.Stats

let protocols = Config.all_protocols

let check_all_protocols ?(nprocs = 2) name scenario =
  List.iter
    (fun protocol ->
      let cfg = Config.make ~protocol ~nprocs () in
      scenario
        (Printf.sprintf "%s [%s]" name (Config.protocol_name protocol))
        cfg)
    protocols

(* ------------------------------------------------------------------ *)
(* Basic read/write correctness                                       *)
(* ------------------------------------------------------------------ *)

let test_single_proc_roundtrip () =
  check_all_protocols ~nprocs:1 "roundtrip" (fun name cfg ->
      let t = Dsm.create cfg in
      let a = Dsm.alloc_f64 t ~name:"a" ~len:1000 in
      let ok = ref true in
      let report =
        Dsm.run t (fun ctx ->
            for i = 0 to 999 do
              Dsm.f64_set ctx a i (float_of_int (i * i))
            done;
            for i = 0 to 999 do
              if Dsm.f64_get ctx a i <> float_of_int (i * i) then ok := false
            done)
      in
      Alcotest.(check bool) (name ^ " values") true !ok;
      Alcotest.(check int) (name ^ " no messages") 0 report.Dsm.messages)

let test_initial_zero () =
  check_all_protocols "initial zero" (fun name cfg ->
      let t = Dsm.create cfg in
      let a = Dsm.alloc_f64 t ~name:"a" ~len:100 in
      let sum = ref 1.0 in
      ignore
        (Dsm.run t (fun ctx ->
             if Dsm.me ctx = 0 then begin
               sum := 0.;
               for i = 0 to 99 do
                 sum := !sum +. Dsm.f64_get ctx a i
               done
             end));
      Alcotest.(check (float 0.)) (name ^ " zero-filled") 0. !sum)

(* ------------------------------------------------------------------ *)
(* Producer/consumer through a barrier                                *)
(* ------------------------------------------------------------------ *)

let test_producer_consumer () =
  check_all_protocols "producer-consumer" (fun name cfg ->
      let t = Dsm.create cfg in
      let a = Dsm.alloc_f64 t ~name:"a" ~len:512 in
      let seen = ref [] in
      ignore
        (Dsm.run t (fun ctx ->
             (* p0 produces a full page per iteration; p1 consumes. *)
             for iter = 1 to 3 do
               if Dsm.me ctx = 0 then
                 for i = 0 to 511 do
                   Dsm.f64_set ctx a i (float_of_int (iter * 1000 + i))
                 done;
               Dsm.barrier ctx;
               if Dsm.me ctx = 1 then begin
                 let v = Dsm.f64_get ctx a 100 in
                 seen := v :: !seen
               end;
               Dsm.barrier ctx
             done));
      Alcotest.(check (list (float 0.)))
        (name ^ " consumed values")
        [ 3100.; 2100.; 1100. ]
        !seen)

(* ------------------------------------------------------------------ *)
(* Migratory data through a lock                                      *)
(* ------------------------------------------------------------------ *)

let test_migratory_lock () =
  check_all_protocols ~nprocs:4 "migratory" (fun name cfg ->
      let t = Dsm.create cfg in
      let a = Dsm.alloc_f64 t ~name:"counter" ~len:8 in
      let l = Dsm.fresh_lock t in
      let final = ref 0. in
      ignore
        (Dsm.run t (fun ctx ->
             for _ = 1 to 5 do
               Dsm.lock ctx l;
               let v = Dsm.f64_get ctx a 0 in
               Dsm.f64_set ctx a 0 (v +. 1.);
               Dsm.unlock ctx l
             done;
             Dsm.barrier ctx;
             if Dsm.me ctx = 0 then final := Dsm.f64_get ctx a 0));
      Alcotest.(check (float 0.)) (name ^ " count") 20. !final)

(* ------------------------------------------------------------------ *)
(* Write-write false sharing                                          *)
(* ------------------------------------------------------------------ *)

(* Two processors repeatedly write disjoint halves of the same page
   between barriers. *)
let false_sharing_run cfg =
  let t = Dsm.create cfg in
  let a = Dsm.alloc_f64 t ~name:"page" ~len:512 in
  let ok = ref true in
  let report =
    Dsm.run t (fun ctx ->
        let me = Dsm.me ctx in
        let base = me * 256 in
        for iter = 1 to 4 do
          for i = base to base + 255 do
            Dsm.f64_set ctx a i (float_of_int ((iter * 10_000) + i))
          done;
          Dsm.barrier ctx;
          (* Everyone checks the whole page. *)
          for i = 0 to 511 do
            let expect = float_of_int ((iter * 10_000) + i) in
            if Dsm.f64_get ctx a i <> expect then ok := false
          done;
          Dsm.barrier ctx
        done)
  in
  (report, !ok)

let test_false_sharing_correct () =
  check_all_protocols "false sharing" (fun name cfg ->
      let _, ok = false_sharing_run cfg in
      Alcotest.(check bool) (name ^ " merged correctly") true ok)

let test_false_sharing_detected_by_wfs () =
  let cfg = Config.make ~protocol:Config.Wfs ~nprocs:2 () in
  let report, _ = false_sharing_run cfg in
  Alcotest.(check bool)
    "ownership refused at least once" true
    (Stats.ownership_refusals report.Dsm.stats >= 1);
  Alcotest.(check int) "page marked falsely shared" 1
    (Stats.pages_false_shared report.Dsm.stats);
  Alcotest.(check bool)
    "twins were created (MW mode engaged)" true
    (Stats.twins_created_total report.Dsm.stats > 0)

let test_no_false_sharing_under_wfs_means_no_twins () =
  (* Pure producer-consumer sharing: WFS should keep everything in SW mode
     and never twin or diff. *)
  let cfg = Config.make ~protocol:Config.Wfs ~nprocs:2 () in
  let t = Dsm.create cfg in
  let a = Dsm.alloc_f64 t ~name:"a" ~len:512 in
  let report =
    Dsm.run t (fun ctx ->
        for _ = 1 to 5 do
          if Dsm.me ctx = 0 then
            for i = 0 to 511 do
              Dsm.f64_set ctx a i 1.0
            done;
          Dsm.barrier ctx;
          if Dsm.me ctx = 1 then ignore (Dsm.f64_get ctx a 5);
          Dsm.barrier ctx
        done)
  in
  Alcotest.(check int) "no twins" 0 (Stats.twins_created_total report.Dsm.stats);
  Alcotest.(check int) "no diffs" 0 (Stats.diffs_created_total report.Dsm.stats)

let test_mw_always_twins () =
  (* The same producer-consumer pattern under MW must twin and diff. *)
  let cfg = Config.make ~protocol:Config.Mw ~nprocs:2 () in
  let t = Dsm.create cfg in
  let a = Dsm.alloc_f64 t ~name:"a" ~len:512 in
  let report =
    Dsm.run t (fun ctx ->
        for _ = 1 to 3 do
          if Dsm.me ctx = 0 then
            for i = 0 to 511 do
              Dsm.f64_set ctx a i 1.0
            done;
          Dsm.barrier ctx;
          if Dsm.me ctx = 1 then ignore (Dsm.f64_get ctx a 5);
          Dsm.barrier ctx
        done)
  in
  Alcotest.(check bool) "twins created" true
    (Stats.twins_created_total report.Dsm.stats >= 3);
  Alcotest.(check bool) "diffs created" true
    (Stats.diffs_created_total report.Dsm.stats >= 3)

(* ------------------------------------------------------------------ *)
(* SW protocol specifics                                              *)
(* ------------------------------------------------------------------ *)

let test_sw_ping_pong_is_correct () =
  (* False sharing under SW: slow (ping-pong) but correct. *)
  let cfg = Config.make ~protocol:Config.Sw ~nprocs:2 () in
  let report, ok = false_sharing_run cfg in
  Alcotest.(check bool) "correct" true ok;
  Alcotest.(check int) "SW never twins" 0
    (Stats.twins_created_total report.Dsm.stats);
  Alcotest.(check bool) "ownership moved" true
    (Stats.ownership_requests report.Dsm.stats > 0)

let test_adaptive_beats_sw_on_false_sharing () =
  (* Interleaved multi-pass writes to disjoint halves of one page: under SW
     the page ping-pongs on every pass; WFS refuses ownership once and then
     both writers proceed locally with twins and diffs. *)
  let time_for protocol =
    let cfg = Config.make ~protocol ~nprocs:2 () in
    let t = Dsm.create cfg in
    let a = Dsm.alloc_f64 t ~name:"page" ~len:512 in
    let report =
      Dsm.run t (fun ctx ->
          let base = Dsm.me ctx * 256 in
          for _iter = 1 to 3 do
            for pass = 1 to 5 do
              for i = base to base + 255 do
                Dsm.f64_set ctx a i (float_of_int (pass + i))
              done;
              (* computation between passes lets the writes interleave *)
              Dsm.compute ctx 300_000
            done;
            Dsm.barrier ctx
          done)
    in
    report.Dsm.time_ns
  in
  let sw = time_for Config.Sw and wfs = time_for Config.Wfs in
  Alcotest.(check bool)
    (Printf.sprintf "WFS (%d ns) faster than SW (%d ns) under false sharing"
       wfs sw)
    true (wfs < sw)

let test_sw_quantum_delays_transfer () =
  (* A freshly acquired page cannot be taken away before the ownership
     quantum expires: with a 10 ms quantum, a competing writer's transfer
     completes no earlier than 10 ms. *)
  let run quantum =
    let cfg = Config.make ~protocol:Config.Sw ~nprocs:2 () in
    let cfg = { cfg with Config.ownership_quantum_ns = quantum } in
    let t = Dsm.create cfg in
    let a = Dsm.alloc_f64 t ~name:"a" ~len:8 in
    let report =
      Dsm.run t (fun ctx ->
          (* Page is homed at p0, which grabs ownership immediately; p1's
             concurrent write forces a transfer. *)
          if Dsm.me ctx = 0 then Dsm.f64_set ctx a 0 1.0
          else Dsm.f64_set ctx a 1 2.0;
          Dsm.barrier ctx)
    in
    report.Dsm.time_ns
  in
  let slow = run 10_000_000 and fast = run 0 in
  Alcotest.(check bool)
    (Printf.sprintf "transfer waits for quantum (%d ns >= 10 ms)" slow)
    true (slow >= 10_000_000);
  Alcotest.(check bool)
    (Printf.sprintf "no quantum is faster (%d < %d)" fast slow)
    true
    (fast < slow)

(* ------------------------------------------------------------------ *)
(* Garbage collection                                                 *)
(* ------------------------------------------------------------------ *)

let test_mw_gc_triggers_and_preserves_data () =
  (* Rewrite several whole pages many times under MW with a tiny GC
     threshold: GC must run and data must survive. *)
  let cfg = Config.make ~protocol:Config.Mw ~nprocs:2 () in
  let cfg = { cfg with Config.gc_threshold_bytes = 16_384 } in
  let t = Dsm.create cfg in
  let npages = 8 in
  let a = Dsm.alloc_f64 t ~name:"a" ~len:(512 * npages) in
  let ok = ref true in
  let report =
    Dsm.run t (fun ctx ->
        let me = Dsm.me ctx in
        for iter = 1 to 6 do
          (* each proc overwrites its own pages completely *)
          for p = 0 to (npages / 2) - 1 do
            let page = (me * npages / 2) + p in
            for i = 0 to 511 do
              Dsm.f64_set ctx a ((page * 512) + i)
                (float_of_int ((iter * 100_000) + (page * 512) + i))
            done
          done;
          Dsm.barrier ctx;
          (* read it all back cross-wise *)
          let other_first = (1 - me) * npages / 2 * 512 in
          for i = 0 to (npages / 2 * 512) - 1 do
            let idx = other_first + i in
            let expect = float_of_int ((iter * 100_000) + idx) in
            if Dsm.f64_get ctx a idx <> expect then ok := false
          done;
          Dsm.barrier ctx
        done)
  in
  Alcotest.(check bool) "data correct across GC" true !ok;
  Alcotest.(check bool) "GC ran" true (Stats.gc_count report.Dsm.stats >= 1)

(* ------------------------------------------------------------------ *)
(* WFS+WG specifics                                                   *)
(* ------------------------------------------------------------------ *)

let test_wg_switches_large_writes_to_sw () =
  (* Producer overwrites a whole page with values whose bytes genuinely
     change every iteration: WFS+WG must measure once (one diff, above the
     3 KB threshold) and then stop diffing, switching the page to SW. *)
  let cfg = Config.make ~protocol:Config.Wfs_wg ~nprocs:2 () in
  let t = Dsm.create cfg in
  let a = Dsm.alloc_f64 t ~name:"a" ~len:512 in
  let report =
    Dsm.run t (fun ctx ->
        for iter = 1 to 6 do
          if Dsm.me ctx = 0 then
            for i = 0 to 511 do
              Dsm.f64_set ctx a i (sqrt (float_of_int ((iter * 100_000) + i)))
            done;
          Dsm.barrier ctx;
          if Dsm.me ctx = 1 then ignore (Dsm.f64_get ctx a 0);
          Dsm.barrier ctx
        done)
  in
  let diffs = Stats.diffs_created_total report.Dsm.stats in
  Alcotest.(check bool)
    (Printf.sprintf "exactly one measurement diff (%d)" diffs)
    true (diffs = 1);
  Alcotest.(check bool) "measured diff above threshold" true
    (Stats.mean_diff_size report.Dsm.stats
    > float_of_int cfg.Config.wg_threshold_bytes)

let test_wg_keeps_small_writes_in_mw () =
  (* Producer writes 16 bytes per page per iteration: WFS+WG should keep
     using (cheap, small) diffs rather than whole-page transfers. *)
  let cfg = Config.make ~protocol:Config.Wfs_wg ~nprocs:2 () in
  let t = Dsm.create cfg in
  let a = Dsm.alloc_f64 t ~name:"a" ~len:512 in
  let report =
    Dsm.run t (fun ctx ->
        for iter = 1 to 6 do
          if Dsm.me ctx = 0 then begin
            Dsm.f64_set ctx a 0 (float_of_int iter);
            Dsm.f64_set ctx a 1 (float_of_int (iter + 1))
          end;
          Dsm.barrier ctx;
          if Dsm.me ctx = 1 then ignore (Dsm.f64_get ctx a 0);
          Dsm.barrier ctx
        done)
  in
  let diffs = Stats.diffs_created_total report.Dsm.stats in
  Alcotest.(check bool)
    (Printf.sprintf "keeps diffing (%d diffs)" diffs)
    true (diffs >= 4);
  Alcotest.(check (float 64.)) "diffs are small" 16.
    (Stats.mean_diff_size report.Dsm.stats)

(* ------------------------------------------------------------------ *)
(* Figure 3 live-diff series                                          *)
(* ------------------------------------------------------------------ *)

let test_live_diff_series_counts_stored_copies () =
  (* Producer/consumer on one page under MW: p0 creates one diff per
     iteration and p1 fetches (and stores) a copy of each.  Both sides
     count toward the live-diff population that GC eventually collects,
     so the Figure 3 series must sample at both kinds of event — the
     fetched copies used to be counted but never sampled, leaving the
     even plateaus invisible. *)
  let cfg = Config.make ~protocol:Config.Mw ~nprocs:2 () in
  let t = Dsm.create cfg in
  let a = Dsm.alloc_f64 t ~name:"a" ~len:512 in
  let report =
    Dsm.run t (fun ctx ->
        for iter = 1 to 3 do
          if Dsm.me ctx = 0 then Dsm.f64_set ctx a 0 (float_of_int iter);
          Dsm.barrier ctx;
          if Dsm.me ctx = 1 then ignore (Dsm.f64_get ctx a 0);
          Dsm.barrier ctx
        done)
  in
  Alcotest.(check int) "three diffs created" 3
    (Stats.diffs_created_total report.Dsm.stats);
  let series =
    Adsm_sim.Series.to_list (Stats.live_diff_series report.Dsm.stats)
  in
  let values =
    List.sort_uniq compare (List.map (fun (_, v) -> v) series)
  in
  Alcotest.(check (list (float 0.)))
    "series samples every creation and every stored copy"
    [ 1.; 2.; 3.; 4.; 5.; 6. ]
    values;
  let times = List.map fst series in
  Alcotest.(check bool) "timestamps nondecreasing" true
    (List.sort compare times = times)

(* ------------------------------------------------------------------ *)
(* Deadlock detection                                                 *)
(* ------------------------------------------------------------------ *)

let test_deadlock_detected () =
  let cfg = Config.make ~protocol:Config.Mw ~nprocs:2 () in
  let t = Dsm.create cfg in
  let _a = Dsm.alloc_f64 t ~name:"a" ~len:8 in
  let raised = ref false in
  (try
     ignore
       (Dsm.run t (fun ctx ->
            (* only node 0 reaches the barrier *)
            if Dsm.me ctx = 0 then Dsm.barrier ctx))
   with Failure msg ->
     raised := String.length msg > 0);
  Alcotest.(check bool) "deadlock reported" true !raised

(* ------------------------------------------------------------------ *)
(* API edge cases                                                     *)
(* ------------------------------------------------------------------ *)

let test_api_errors () =
  let cfg = Config.make ~protocol:Config.Mw ~nprocs:1 () in
  let t = Dsm.create cfg in
  Alcotest.check_raises "bad alloc"
    (Invalid_argument "Dsm.alloc_f64: len must be positive") (fun () ->
      ignore (Dsm.alloc_f64 t ~name:"x" ~len:0));
  let a = Dsm.alloc_f64 t ~name:"a" ~len:10 in
  let raised = ref 0 in
  ignore
    (Dsm.run t (fun ctx ->
         (try ignore (Dsm.f64_get ctx a 10)
          with Invalid_argument _ -> incr raised);
         (try Dsm.f64_set ctx a (-1) 0. with Invalid_argument _ -> incr raised);
         try Dsm.unlock ctx 0 with Invalid_argument _ -> incr raised));
  Alcotest.(check int) "all three rejected" 3 !raised

let test_lock_ids_are_independent () =
  (* Distinct locks never exclude each other. *)
  let cfg = Config.make ~protocol:Config.Mw ~nprocs:2 () in
  let t = Dsm.create cfg in
  let l0 = Dsm.fresh_lock t and l1 = Dsm.fresh_lock t in
  Alcotest.(check bool) "distinct ids" true (l0 <> l1);
  let entered = ref 0 in
  ignore
    (Dsm.run t (fun ctx ->
         let l = if Dsm.me ctx = 0 then l0 else l1 in
         Dsm.lock ctx l;
         incr entered;
         (* both hold "their" lock across a long window simultaneously *)
         Dsm.compute ctx 5_000_000;
         Alcotest.(check bool) "both inside" true (!entered >= 1);
         Dsm.unlock ctx l;
         Dsm.barrier ctx));
  Alcotest.(check int) "both entered" 2 !entered

let () =
  Alcotest.run "dsm"
    [
      ( "correctness",
        [
          Alcotest.test_case "single-proc roundtrip" `Quick
            test_single_proc_roundtrip;
          Alcotest.test_case "initial zero" `Quick test_initial_zero;
          Alcotest.test_case "producer-consumer" `Quick test_producer_consumer;
          Alcotest.test_case "migratory lock" `Quick test_migratory_lock;
          Alcotest.test_case "false sharing merges" `Quick
            test_false_sharing_correct;
        ] );
      ( "adaptation",
        [
          Alcotest.test_case "WFS detects false sharing" `Quick
            test_false_sharing_detected_by_wfs;
          Alcotest.test_case "WFS stays SW without FS" `Quick
            test_no_false_sharing_under_wfs_means_no_twins;
          Alcotest.test_case "MW always twins" `Quick test_mw_always_twins;
          Alcotest.test_case "WFS beats SW on FS" `Quick
            test_adaptive_beats_sw_on_false_sharing;
          Alcotest.test_case "WG large writes -> SW" `Quick
            test_wg_switches_large_writes_to_sw;
          Alcotest.test_case "WG small writes stay MW" `Quick
            test_wg_keeps_small_writes_in_mw;
        ] );
      ( "sw",
        [
          Alcotest.test_case "ping-pong correct" `Quick
            test_sw_ping_pong_is_correct;
          Alcotest.test_case "quantum delays transfer" `Quick
            test_sw_quantum_delays_transfer;
        ] );
      ( "gc",
        [
          Alcotest.test_case "MW GC preserves data" `Quick
            test_mw_gc_triggers_and_preserves_data;
          Alcotest.test_case "live-diff series counts stored copies" `Quick
            test_live_diff_series_counts_stored_copies;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "deadlock detected" `Quick test_deadlock_detected;
          Alcotest.test_case "API errors" `Quick test_api_errors;
          Alcotest.test_case "independent locks" `Quick
            test_lock_ids_are_independent;
        ] );
    ]
