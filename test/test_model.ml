(* Randomized model tests for the large-n data structures.

   The summarized vector clock (cached sum, dirty-component tracking,
   epoch-stamped bases, per-epoch delta caches) and the array-backed
   interval log both exist to skip dense rescans; correctness means
   every observable agrees with the naive implementation they replaced.
   Seeded op sequences drive the real structure and a naive reference
   through the same mutations — honoring the documented preconditions
   (rebase on a just-taken snapshot, equal components per epoch stamp,
   strictly ascending log appends) — and compare every query. *)

module Vc = Adsm_dsm.Vc
module Interval = Adsm_dsm.Interval

(* ------------------------------------------------------------------ *)
(* Naive vector-clock reference: a plain int array, rescanned fully    *)
(* ------------------------------------------------------------------ *)

let width = 16

let nnodes = 5

let nsum = Array.fold_left ( + ) 0

let nleq a b =
  let ok = ref true in
  Array.iteri (fun i av -> if av > b.(i) then ok := false) a;
  !ok

(* Historical total order: dominated-first, concurrent clocks broken by
   (sum, lexicographic) — which collapses to (sum, lexicographic). *)
let norder a b =
  let c = Int.compare (nsum a) (nsum b) in
  if c <> 0 then c
  else
    let rec go i =
      if i = Array.length a then 0
      else
        let c = Int.compare a.(i) b.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0

let ndelta ~since a =
  let changed = ref 0 in
  Array.iteri (fun i av -> if av <> since.(i) then incr changed) a;
  8 + (8 * !changed)

let sign c = compare c 0

let check_pair step i j vc nv vc' nv' =
  let name fmt = Printf.sprintf "step %d, clocks (%d,%d): %s" step i j fmt in
  if Vc.leq vc vc' <> nleq nv nv' then Alcotest.fail (name "leq");
  if Vc.leq vc' vc <> nleq nv' nv then Alcotest.fail (name "leq (flipped)");
  if Vc.equal vc vc' <> (nv = nv') then Alcotest.fail (name "equal");
  if Vc.concurrent vc vc' <> ((not (nleq nv nv')) && not (nleq nv' nv)) then
    Alcotest.fail (name "concurrent");
  if sign (Vc.order vc vc') <> sign (norder nv nv') then
    Alcotest.fail (name "order sign");
  if Vc.order vc vc' = 0 && nv <> nv' then Alcotest.fail (name "order zero")

let check_node step i vc nv =
  let name fmt = Printf.sprintf "step %d, clock %d: %s" step i fmt in
  for p = 0 to width - 1 do
    if Vc.get vc p <> nv.(p) then
      Alcotest.failf "%s" (name (Printf.sprintf "component %d" p))
  done;
  if Vc.sum vc <> nsum nv then Alcotest.fail (name "sum");
  if Vc.size_bytes vc <> 4 * width then Alcotest.fail (name "size_bytes")

let test_vc_model () =
  for seed = 0 to 9 do
    let rs = Random.State.make [| 0xADC0; seed |] in
    let vcs = Array.init nnodes (fun _ -> Vc.zero ~nprocs:width) in
    let nvs = Array.init nnodes (fun _ -> Array.make width 0) in
    (* Pool of rebase snapshots, each frozen at creation; delta queries
       pick arbitrary (clock, base) pairs to exercise the same-base,
       same-epoch and cold paths alike. *)
    let bases = ref [ (Vc.zero ~nprocs:width, Array.make width 0) ] in
    let push_base b nb =
      bases :=
        (b, nb)
        :: (if List.length !bases > 8 then List.filteri (fun k _ -> k < 7) !bases
            else !bases)
    in
    let epoch = ref 0 in
    for step = 1 to 300 do
      let i = Random.State.int rs nnodes in
      let j = Random.State.int rs nnodes in
      (match Random.State.int rs 12 with
      | 0 | 1 ->
        (* set: usually a bump, occasionally a decrease (the API is
           generic even though the protocol only ever moves forward) *)
        let p = Random.State.int rs width in
        let cur = nvs.(i).(p) in
        let v =
          if Random.State.int rs 10 = 0 then max 0 (cur - Random.State.int rs 3)
          else cur + 1 + Random.State.int rs 4
        in
        Vc.set vcs.(i) p v;
        nvs.(i).(p) <- v
      | 2 | 3 | 4 ->
        let p = Random.State.int rs width in
        Vc.tick vcs.(i) ~proc:p;
        nvs.(i).(p) <- nvs.(i).(p) + 1
      | 5 | 6 ->
        Vc.merge_into vcs.(i) vcs.(j);
        Array.iteri (fun p v -> nvs.(i).(p) <- max nvs.(i).(p) v) nvs.(j)
      | 7 ->
        Vc.min_into vcs.(i) vcs.(j);
        Array.iteri (fun p v -> nvs.(i).(p) <- min nvs.(i).(p) v) nvs.(j)
      | 8 ->
        Vc.blit_into ~src:vcs.(j) ~dst:vcs.(i);
        Array.blit nvs.(j) 0 nvs.(i) 0 width
      | 9 ->
        vcs.(i) <- Vc.copy vcs.(j);
        nvs.(i) <- Array.copy nvs.(j)
      | 10 ->
        (* plain rebase: snapshot then rebase, per the precondition *)
        let b = Vc.copy vcs.(i) in
        Vc.rebase vcs.(i) ~base:b;
        push_base b (Array.copy nvs.(i))
      | _ ->
        (* barrier: every clock becomes the global supremum, then takes
           an epoch-stamped snapshot — the one legitimate way to stamp
           the same epoch on every node *)
        let sup = Vc.copy vcs.(0) in
        Array.iter (fun vc -> Vc.merge_into sup vc) vcs;
        let nsup = Array.make width 0 in
        Array.iter
          (fun nv -> Array.iteri (fun p v -> nsup.(p) <- max nsup.(p) v) nv)
          nvs;
        Array.iteri
          (fun k vc ->
            Vc.blit_into ~src:sup ~dst:vc;
            Array.blit nsup 0 nvs.(k) 0 width;
            let b = Vc.copy vc in
            Vc.rebase ~epoch:!epoch vc ~base:b;
            push_base b (Array.copy nsup))
          vcs;
        incr epoch);
      for a = 0 to nnodes - 1 do
        check_node step a vcs.(a) nvs.(a);
        for b = 0 to nnodes - 1 do
          check_pair step a b vcs.(a) nvs.(a) vcs.(b) nvs.(b)
        done;
        (* delta against another live clock (cold path) *)
        let d = Vc.delta_size_bytes ~since:vcs.(j) vcs.(a) in
        if d <> ndelta ~since:nvs.(j) nvs.(a) then
          Alcotest.failf "step %d: delta clock %d since clock %d" step a j;
        (* delta against pooled snapshots (same-base / same-epoch /
           cross-node-epoch fast paths, depending on provenance) *)
        List.iteri
          (fun k (bvc, bnv) ->
            let d = Vc.delta_size_bytes ~since:bvc vcs.(a) in
            if d <> ndelta ~since:bnv nvs.(a) then
              Alcotest.failf "step %d: delta clock %d since base %d" step a k)
          !bases
      done
    done
  done

(* ------------------------------------------------------------------ *)
(* Naive interval-log reference: a plain list, filtered fully          *)
(* ------------------------------------------------------------------ *)

let owner = 1

let make_iv seq =
  let vc = Vc.zero ~nprocs:4 in
  Vc.set vc owner seq;
  Interval.make ~proc:owner ~vc ~notices:[]

let seqs = List.map (fun (iv : Interval.t) -> iv.Interval.seq)

let test_log_model () =
  for seed = 0 to 9 do
    let rs = Random.State.make [| 0x106; seed |] in
    let log = Interval.Log.create () in
    let naive = ref [] (* oldest first, like the log's index order *) in
    let last_seq = ref 0 in
    for step = 1 to 400 do
      (match Random.State.int rs 8 with
      | 0 ->
        (* GC/crash truncation: drop everything, keep appending above
           the old seqs (the protocol never reuses a sequence number) *)
        Interval.Log.clear log;
        naive := []
      | 1 | 2 | 3 | 4 | 5 ->
        (* strictly ascending appends, with gaps *)
        let seq = !last_seq + 1 + Random.State.int rs 3 in
        last_seq := seq;
        let iv = make_iv seq in
        Interval.Log.append log iv;
        naive := !naive @ [ iv ]
      | _ -> ());
      let name fmt = Printf.sprintf "seed %d, step %d: %s" seed step fmt in
      let n = List.length !naive in
      if Interval.Log.length log <> n then Alcotest.fail (name "length");
      if n > 0 then begin
        let k = Random.State.int rs n in
        if (Interval.Log.get log k).Interval.seq
           <> (List.nth !naive k).Interval.seq
        then Alcotest.fail (name "get")
      end;
      (* coverage queries across the whole seq range, including exact
         hits, gap values, 0 and past-the-end *)
      let s = Random.State.int rs (!last_seq + 2) in
      let expected_idx =
        let rec go k = function
          | [] -> n
          | (iv : Interval.t) :: tl -> if iv.Interval.seq > s then k else go (k + 1) tl
        in
        go 0 !naive
      in
      if Interval.Log.first_after log s <> expected_idx then
        Alcotest.fail (name (Printf.sprintf "first_after %d" s));
      let vc = Vc.zero ~nprocs:4 in
      Vc.set vc owner s;
      let expected =
        (* prepended onto the accumulator walking oldest-first, so the
           result comes out newest-first — the orientation the old list
           representation produced *)
        List.rev
          (List.filter (fun (iv : Interval.t) -> iv.Interval.seq > s) !naive)
      in
      if seqs (Interval.Log.unseen_by vc ~proc:owner log []) <> seqs expected
      then Alcotest.fail (name (Printf.sprintf "unseen_by %d" s));
      let acc = [ make_iv (!last_seq + 100) ] in
      if seqs (Interval.Log.unseen_by vc ~proc:owner log acc)
         <> seqs (expected @ acc)
      then Alcotest.fail (name (Printf.sprintf "unseen_by %d with acc" s))
    done
  done

let () =
  Alcotest.run "model"
    [
      ( "vc",
        [ Alcotest.test_case "summarized vs naive (seeded)" `Quick test_vc_model ]
      );
      ( "interval-log",
        [ Alcotest.test_case "indexed vs naive (seeded)" `Quick test_log_model ]
      );
    ]
