(* Equivalence suite for the protocol-stack split.

   The layered stack (Lrc_core + Sync + per-protocol modules behind
   Dispatch) must reproduce the monolithic [Proto] bit-for-bit: the
   baselines below — application result, total message count, total wire
   bytes, and per-kind (messages, bytes) counters — were recorded from
   the pre-refactor monolith running SOR and TSP on every non-HLRC
   protocol under three fuzzed schedules.  Any behavioral drift in
   interval closure, diffing, ownership transfer, adaptation, or the
   typed message-kind accounting shows up as a counter mismatch here. *)

module Config = Adsm_dsm.Config
module Dsm = Adsm_dsm.Dsm
module Registry = Adsm_apps.Registry

(* (app, protocol, fuzz seed, result, messages, wire bytes, by_kind) —
   recorded from the pre-refactor monolith at Registry.Tiny, nprocs=4. *)
let baselines =
  [
    ("SOR", Config.Mw, 1, 2.6180339887498949, 180, 156692,
     [ ("barrier", (60, 6864)); ("diff", (120, 142628)) ]);
    ("SOR", Config.Mw, 2, 2.6180339887498949, 180, 156692,
     [ ("barrier", (60, 6864)); ("diff", (120, 142628)) ]);
    ("SOR", Config.Mw, 3, 2.6180339887498949, 180, 156692,
     [ ("barrier", (60, 6864)); ("diff", (120, 142628)) ]);
    ("SOR", Config.Sw, 1, 2.6180339887498949, 196, 296848,
     [ ("barrier", (60, 8400)); ("own", (24, 49440)); ("page", (112, 231168)) ]);
    ("SOR", Config.Sw, 2, 2.6180339887498949, 196, 296848,
     [ ("barrier", (60, 8400)); ("own", (24, 49440)); ("page", (112, 231168)) ]);
    ("SOR", Config.Sw, 3, 2.6180339887498949, 196, 296848,
     [ ("barrier", (60, 8400)); ("own", (24, 49440)); ("page", (112, 231168)) ]);
    ("SOR", Config.Wfs, 1, 2.6180339887498949, 196, 247912,
     [ ("barrier", (60, 8400)); ("own", (24, 504)); ("page", (112, 231168)) ]);
    ("SOR", Config.Wfs, 2, 2.6180339887498949, 196, 247912,
     [ ("barrier", (60, 8400)); ("own", (24, 504)); ("page", (112, 231168)) ]);
    ("SOR", Config.Wfs, 3, 2.6180339887498949, 196, 247912,
     [ ("barrier", (60, 8400)); ("own", (24, 504)); ("page", (112, 231168)) ]);
    ("SOR", Config.Wfs_wg, 1, 2.6180339887498949, 202, 135721,
     [ ("barrier", (60, 7848)); ("diff", (82, 44985)); ("own", (24, 504));
       ("page", (36, 74304)) ]);
    ("SOR", Config.Wfs_wg, 2, 2.6180339887498949, 202, 135721,
     [ ("barrier", (60, 7848)); ("diff", (82, 44985)); ("own", (24, 504));
       ("page", (36, 74304)) ]);
    ("SOR", Config.Wfs_wg, 3, 2.6180339887498949, 202, 135721,
     [ ("barrier", (60, 7848)); ("diff", (82, 44985)); ("own", (24, 504));
       ("page", (36, 74304)) ]);
    ("TSP", Config.Mw, 1, 165., 400, 34895,
     [ ("barrier", (18, 1528)); ("diff", (270, 11115)); ("lock", (112, 6252)) ]);
    ("TSP", Config.Mw, 2, 165., 400, 34895,
     [ ("barrier", (18, 1528)); ("diff", (270, 11115)); ("lock", (112, 6252)) ]);
    ("TSP", Config.Mw, 3, 165., 400, 34895,
     [ ("barrier", (18, 1528)); ("diff", (270, 11115)); ("lock", (112, 6252)) ]);
    ("TSP", Config.Sw, 1, 165., 293, 353288,
     [ ("barrier", (18, 1476)); ("lock", (94, 5684)); ("own", (93, 152776));
       ("page", (88, 181632)) ]);
    ("TSP", Config.Sw, 2, 165., 291, 353180,
     [ ("barrier", (18, 1476)); ("lock", (94, 5684)); ("own", (91, 152748));
       ("page", (88, 181632)) ]);
    ("TSP", Config.Sw, 3, 165., 292, 353236,
     [ ("barrier", (18, 1476)); ("lock", (94, 5684)); ("own", (92, 152764));
       ("page", (88, 181632)) ]);
    ("TSP", Config.Wfs, 1, 165., 274, 201306,
     [ ("barrier", (18, 1476)); ("lock", (94, 5684)); ("own", (74, 1554));
       ("page", (88, 181632)) ]);
    ("TSP", Config.Wfs, 2, 165., 274, 201306,
     [ ("barrier", (18, 1476)); ("lock", (94, 5684)); ("own", (74, 1554));
       ("page", (88, 181632)) ]);
    ("TSP", Config.Wfs, 3, 165., 274, 201306,
     [ ("barrier", (18, 1476)); ("lock", (94, 5684)); ("own", (74, 1554));
       ("page", (88, 181632)) ]);
    ("TSP", Config.Wfs_wg, 1, 165., 336, 78628,
     [ ("barrier", (18, 1384)); ("diff", (188, 4630)); ("lock", (94, 5300));
       ("own", (10, 210)); ("page", (26, 53664)) ]);
    ("TSP", Config.Wfs_wg, 2, 165., 336, 78628,
     [ ("barrier", (18, 1384)); ("diff", (188, 4630)); ("lock", (94, 5300));
       ("own", (10, 210)); ("page", (26, 53664)) ]);
    ("TSP", Config.Wfs_wg, 3, 165., 336, 78628,
     [ ("barrier", (18, 1384)); ("diff", (188, 4630)); ("lock", (94, 5300));
       ("own", (10, 210)); ("page", (26, 53664)) ]);
    (* Water (lock-heavy) and Shallow (barrier-only) rows were recorded
       from the split stack once it matched the monolith on SOR and TSP;
       they pin the remaining synchronization mixes against drift. *)
    ("Water", Config.Mw, 1, 1.5938376384442554, 410, 56818,
     [ ("barrier", (48, 6008)); ("diff", (308, 31666)); ("lock", (54, 2744)) ]);
    ("Water", Config.Mw, 2, 1.5938376384442554, 410, 56818,
     [ ("barrier", (48, 6008)); ("diff", (308, 31666)); ("lock", (54, 2744)) ]);
    ("Water", Config.Mw, 3, 1.5938376384442554, 410, 56818,
     [ ("barrier", (48, 6008)); ("diff", (308, 31666)); ("lock", (54, 2744)) ]);
    ("Water", Config.Sw, 1, 1.5938376384442554, 428, 613716,
     [ ("barrier", (48, 7152)); ("lock", (54, 3112)); ("own", (182, 289116));
       ("page", (144, 297216)) ]);
    ("Water", Config.Sw, 2, 1.5938376384442554, 428, 613716,
     [ ("barrier", (48, 7152)); ("lock", (54, 3112)); ("own", (182, 289116));
       ("page", (144, 297216)) ]);
    ("Water", Config.Sw, 3, 1.5938376384442554, 428, 613716,
     [ ("barrier", (48, 7152)); ("lock", (54, 3112)); ("own", (182, 289116));
       ("page", (144, 297216)) ]);
    ("Water", Config.Wfs, 1, 1.5938376384442554, 394, 267055,
     [ ("barrier", (48, 6432)); ("diff", (106, 9233)); ("lock", (54, 2908));
       ("own", (74, 1554)); ("page", (112, 231168)) ]);
    ("Water", Config.Wfs, 2, 1.5938376384442554, 394, 267055,
     [ ("barrier", (48, 6432)); ("diff", (106, 9233)); ("lock", (54, 2908));
       ("own", (74, 1554)); ("page", (112, 231168)) ]);
    ("Water", Config.Wfs, 3, 1.5938376384442554, 394, 267055,
     [ ("barrier", (48, 6432)); ("diff", (106, 9233)); ("lock", (54, 2908));
       ("own", (74, 1554)); ("page", (112, 231168)) ]);
    ("Water", Config.Wfs_wg, 1, 1.5938376384442554, 406, 159918,
     [ ("barrier", (48, 6256)); ("diff", (216, 22436)); ("lock", (54, 2816));
       ("own", (34, 714)); ("page", (54, 111456)) ]);
    ("Water", Config.Wfs_wg, 2, 1.5938376384442554, 406, 159918,
     [ ("barrier", (48, 6256)); ("diff", (216, 22436)); ("lock", (54, 2816));
       ("own", (34, 714)); ("page", (54, 111456)) ]);
    ("Water", Config.Wfs_wg, 3, 1.5938376384442554, 406, 159918,
     [ ("barrier", (48, 6256)); ("diff", (216, 22436)); ("lock", (54, 2816));
       ("own", (34, 714)); ("page", (54, 111456)) ]);
    ("Shallow", Config.Mw, 1, 141.43544026792017, 134, 188387,
     [ ("barrier", (48, 5184)); ("diff", (86, 177843)) ]);
    ("Shallow", Config.Mw, 2, 141.43544026792017, 134, 188387,
     [ ("barrier", (48, 5184)); ("diff", (86, 177843)) ]);
    ("Shallow", Config.Mw, 3, 141.43544026792017, 134, 188387,
     [ ("barrier", (48, 5184)); ("diff", (86, 177843)) ]);
    ("Shallow", Config.Sw, 1, 141.43544026792017, 134, 189152,
     [ ("barrier", (48, 6288)); ("page", (86, 177504)) ]);
    ("Shallow", Config.Sw, 2, 141.43544026792017, 134, 189152,
     [ ("barrier", (48, 6288)); ("page", (86, 177504)) ]);
    ("Shallow", Config.Sw, 3, 141.43544026792017, 134, 189152,
     [ ("barrier", (48, 6288)); ("page", (86, 177504)) ]);
    ("Shallow", Config.Wfs, 1, 141.43544026792017, 134, 189152,
     [ ("barrier", (48, 6288)); ("page", (86, 177504)) ]);
    ("Shallow", Config.Wfs, 2, 141.43544026792017, 134, 189152,
     [ ("barrier", (48, 6288)); ("page", (86, 177504)) ]);
    ("Shallow", Config.Wfs, 3, 141.43544026792017, 134, 189152,
     [ ("barrier", (48, 6288)); ("page", (86, 177504)) ]);
    ("Shallow", Config.Wfs_wg, 1, 141.43544026792017, 134, 189172,
     [ ("barrier", (48, 6048)); ("diff", (40, 82820)); ("page", (46, 94944)) ]);
    ("Shallow", Config.Wfs_wg, 2, 141.43544026792017, 134, 189172,
     [ ("barrier", (48, 6048)); ("diff", (40, 82820)); ("page", (46, 94944)) ]);
    ("Shallow", Config.Wfs_wg, 3, 141.43544026792017, 134, 189172,
     [ ("barrier", (48, 6048)); ("diff", (40, 82820)); ("page", (46, 94944)) ]);
  ]

let run_case (app_name, protocol, seed, result, messages, wire_bytes, by_kind) =
  let case_name =
    Printf.sprintf "%s/%s/seed%d" app_name
      (Config.protocol_name protocol)
      seed
  in
  let app =
    match Registry.find app_name with
    | Some app -> app
    | None -> Alcotest.failf "%s: unknown application" case_name
  in
  let cfg = Config.make ~protocol ~nprocs:4 () in
  let cfg = { cfg with Config.schedule_fuzz = Some seed } in
  let t = Dsm.create cfg in
  let program, got_result = app.Registry.instantiate Registry.Tiny t in
  let report = Dsm.run t program in
  Alcotest.(check (float 0.0))
    (case_name ^ ": application result") result (got_result ());
  Alcotest.(check int) (case_name ^ ": messages") messages report.Dsm.messages;
  Alcotest.(check int)
    (case_name ^ ": wire bytes") wire_bytes report.Dsm.wire_bytes;
  Alcotest.(check (list (pair string (pair int int))))
    (case_name ^ ": per-kind counters") by_kind report.Dsm.by_kind

let test_against_baselines () = List.iter run_case baselines

(* Independent of recorded counters: every protocol (including HLRC,
   which has no pre-refactor baseline entry above because its message
   mix was already covered elsewhere) still computes the same
   application result through the split stack. *)
let test_all_protocols_agree () =
  List.iter
    (fun app_name ->
      let app = Option.get (Registry.find app_name) in
      let results =
        List.map
          (fun protocol ->
            let cfg = Config.make ~protocol ~nprocs:4 () in
            let t = Dsm.create cfg in
            let program, result = app.Registry.instantiate Registry.Tiny t in
            ignore (Dsm.run t program);
            result ())
          Config.all_protocols
      in
      match results with
      | [] -> ()
      | r0 :: rest ->
        List.iter
          (fun r ->
            Alcotest.(check (float 0.0))
              (app_name ^ ": protocols agree") r0 r)
          rest)
    [ "SOR"; "TSP"; "Water"; "Shallow" ]

let () =
  Alcotest.run "proto-split"
    [
      ( "equivalence",
        [
          Alcotest.test_case "matches pre-refactor counters" `Quick
            test_against_baselines;
          Alcotest.test_case "all protocols agree" `Quick
            test_all_protocols_agree;
        ] );
    ]
