(* Error-path coverage for the adsm_run executable: bad names, bad
   paths and conflicting flags must fail fast with a non-zero exit code
   and a diagnostic on stderr, never start a simulation.

   The binary is a declared dune dependency, so it is always freshly
   built; resolving it relative to this test executable keeps the suite
   independent of the working directory it is launched from. *)

let exe =
  Filename.concat (Filename.dirname Sys.executable_name) "../bin/adsm_run.exe"

let slurp path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  s

(* Run through /bin/sh to get exit code, stdout and stderr separately. *)
let run_capture args =
  let out = Filename.temp_file "adsm_cli" ".out" in
  let err = Filename.temp_file "adsm_cli" ".err" in
  let cmd =
    Printf.sprintf "%s %s >%s 2>%s" (Filename.quote exe) args
      (Filename.quote out) (Filename.quote err)
  in
  let code = Sys.command cmd in
  (code, slurp out, slurp err)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec at i = i + nl <= hl && (String.sub haystack i nl = needle || at (i + 1)) in
  at 0

let check_failure name args ~code ~stderr_has =
  let got_code, _out, err = run_capture args in
  Alcotest.(check int) (name ^ ": exit code") code got_code;
  Alcotest.(check bool)
    (Printf.sprintf "%s: stderr mentions %S (got %S)" name stderr_has err)
    true
    (contains ~needle:stderr_has err)

let test_unknown_app () =
  check_failure "unknown app" "run --app NOPE --tiny --procs 2" ~code:1
    ~stderr_has:"unknown application"

let test_unknown_protocol () =
  check_failure "unknown protocol" "run --protocol BOGUS --tiny --procs 2"
    ~code:1 ~stderr_has:"unknown protocol"

let test_unknown_verify_app () =
  check_failure "verify unknown app" "verify --app NOPE --tiny" ~code:1
    ~stderr_has:"unknown application"

let test_bad_trace_path () =
  check_failure "bad trace path"
    "run --app TSP --tiny --procs 2 --trace /nonexistent-dir/sub/t.jsonl"
    ~code:1 ~stderr_has:"cannot open trace file"

let test_trace_format_without_trace () =
  check_failure "conflicting flags" "run --tiny --procs 2 --trace-format chrome"
    ~code:1 ~stderr_has:"--trace-format requires --trace"

let test_bad_trace_format_value () =
  (* Rejected by the cmdliner enum converter: cli-error exit code 124. *)
  check_failure "bad trace format" "run --tiny --trace x.out --trace-format xml"
    ~code:124 ~stderr_has:"trace-format"

let test_unknown_mutation () =
  check_failure "unknown mutation" "fuzz --seeds 1 --mutation bogus" ~code:1
    ~stderr_has:"unknown mutation"

let test_unknown_ablation () =
  check_failure "unknown ablation" "ablations nosuchstudy" ~code:1
    ~stderr_has:"unknown study"

let test_list_ok () =
  let code, out, _err = run_capture "list" in
  Alcotest.(check int) "list: exit code" 0 code;
  Alcotest.(check bool) "list: mentions SOR" true (contains ~needle:"SOR" out)

let () =
  Alcotest.run "cli"
    [
      ( "errors",
        [
          Alcotest.test_case "unknown application" `Quick test_unknown_app;
          Alcotest.test_case "unknown protocol" `Quick test_unknown_protocol;
          Alcotest.test_case "verify: unknown application" `Quick
            test_unknown_verify_app;
          Alcotest.test_case "unwritable trace path" `Quick test_bad_trace_path;
          Alcotest.test_case "--trace-format without --trace" `Quick
            test_trace_format_without_trace;
          Alcotest.test_case "invalid --trace-format value" `Quick
            test_bad_trace_format_value;
          Alcotest.test_case "unknown fuzz mutation" `Quick
            test_unknown_mutation;
          Alcotest.test_case "unknown ablation study" `Quick
            test_unknown_ablation;
        ] );
      ("smoke", [ Alcotest.test_case "list exits zero" `Quick test_list_ok ]);
    ]
