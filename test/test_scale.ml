(* Scaling-refactor tests: the combining tree barrier, sharded lock
   homes, sparse vector-clock accounting and the node-count scaling
   study must all be pure COST-MODEL changes — every application result
   stays bit-identical to the central-barrier flat fabric — while the
   barrier's traffic stays within the combining-tree bound. *)

module Config = Adsm_dsm.Config
module Dsm = Adsm_dsm.Dsm
module Registry = Adsm_apps.Registry
module Runner = Adsm_harness.Runner
module Scaling = Adsm_harness.Scaling

let run ?(tweak = Fun.id) ?engine ~app ~protocol ~nprocs () =
  let entry =
    match Registry.find app with
    | Some e -> e
    | None -> Alcotest.fail ("unknown app " ^ app)
  in
  Runner.run ~tweak ?engine ~app:entry ~protocol ~nprocs ~scale:Registry.Tiny ()

let tree_tweak = Scaling.tweak_of_fabric Scaling.Tree_combining

let barrier_msgs (m : Runner.measurement) =
  match List.assoc_opt "barrier" m.Runner.by_kind with
  | Some (count, _) -> count
  | None -> 0

(* ------------------------------------------------------------------ *)
(* Tree fabric is checksum-transparent                                 *)
(* ------------------------------------------------------------------ *)

(* Every application, both protocol families: the full large-cluster
   configuration (tree topology + combining barrier + sharded locks +
   sparse VCs) reproduces the flat/central checksum exactly. *)
let test_tree_transparent_all_apps () =
  List.iter
    (fun app ->
      List.iter
        (fun protocol ->
          let flat = run ~app ~protocol ~nprocs:8 () in
          let tree = run ~tweak:tree_tweak ~app ~protocol ~nprocs:8 () in
          Alcotest.(check (float 0.0))
            (Printf.sprintf "%s/%s checksum" app
               (Config.protocol_name protocol))
            flat.Runner.checksum tree.Runner.checksum)
        [ Config.Mw; Config.Wfs ])
    Registry.names

(* SOR under every protocol, including the adaptive ones. *)
let test_tree_transparent_all_protocols () =
  List.iter
    (fun protocol ->
      let flat = run ~app:"SOR" ~protocol ~nprocs:8 () in
      let tree = run ~tweak:tree_tweak ~app:"SOR" ~protocol ~nprocs:8 () in
      Alcotest.(check (float 0.0))
        (Config.protocol_name protocol)
        flat.Runner.checksum tree.Runner.checksum)
    Config.all_protocols

(* A combining tree uses exactly 2(n-1) barrier messages per round —
   the same TOTAL as the central barrier (the tree's win is fan-in, not
   message count), so the two fabrics must agree on it exactly. *)
let test_barrier_message_parity () =
  let flat = run ~app:"SOR" ~protocol:Config.Mw ~nprocs:8 () in
  let tree = run ~tweak:tree_tweak ~app:"SOR" ~protocol:Config.Mw ~nprocs:8 () in
  Alcotest.(check int) "barrier messages" (barrier_msgs flat)
    (barrier_msgs tree)

(* The fanout only reshapes the combining tree; results and barrier
   traffic are unchanged. *)
let test_fanout_invariance () =
  let base = run ~app:"SOR" ~protocol:Config.Mw ~nprocs:13 () in
  List.iter
    (fun fanout ->
      let tweak cfg = { cfg with Config.barrier = Config.Tree { fanout } } in
      let m = run ~tweak ~app:"SOR" ~protocol:Config.Mw ~nprocs:13 () in
      Alcotest.(check (float 0.0))
        (Printf.sprintf "fanout %d checksum" fanout)
        base.Runner.checksum m.Runner.checksum;
      Alcotest.(check int)
        (Printf.sprintf "fanout %d barrier msgs" fanout)
        (barrier_msgs base) (barrier_msgs m))
    [ 2; 4; 8 ]

(* ------------------------------------------------------------------ *)
(* Tree-mode garbage collection                                        *)
(* ------------------------------------------------------------------ *)

(* Drive the GC rounds through the tree (Gc_done combining up,
   Gc_complete fanning down) by shrinking the trigger threshold, and
   check the result still matches a central-barrier run under the same
   threshold. *)
let test_tree_gc_round () =
  let low cfg = { cfg with Config.gc_threshold_bytes = 2_048 } in
  let flat = run ~tweak:low ~app:"SOR" ~protocol:Config.Mw ~nprocs:8 () in
  let tree =
    run
      ~tweak:(fun cfg -> low (tree_tweak cfg))
      ~app:"SOR" ~protocol:Config.Mw ~nprocs:8 ()
  in
  Alcotest.(check bool) "gc actually ran" true (tree.Runner.gc_runs > 0);
  Alcotest.(check int) "same gc rounds" flat.Runner.gc_runs
    tree.Runner.gc_runs;
  Alcotest.(check (float 0.0)) "checksum" flat.Runner.checksum
    tree.Runner.checksum

(* ------------------------------------------------------------------ *)
(* Sharded lock homes                                                  *)
(* ------------------------------------------------------------------ *)

(* Lock-home placement is pure policy: any shard count yields the same
   result as the historical modulo placement on a lock-heavy program. *)
let test_sharded_locks_transparent () =
  let base = run ~app:"Water" ~protocol:Config.Mw ~nprocs:8 () in
  List.iter
    (fun shards ->
      let tweak cfg =
        { cfg with Config.lock_homes = Config.Sharded shards }
      in
      let m = run ~tweak ~app:"Water" ~protocol:Config.Mw ~nprocs:8 () in
      Alcotest.(check (float 0.0))
        (Printf.sprintf "%d shards checksum" shards)
        base.Runner.checksum m.Runner.checksum)
    [ 1; 2; 4 ]

(* Grant order is FIFO by request arrival at the home, whichever node
   the placement policy makes the home.  Node 0 grabs the lock and
   holds it while every other node's request (staggered well past the
   1 ms message latency) queues up; grants must then follow arrival
   order exactly. *)
let test_sharded_lock_fifo () =
  List.iter
    (fun lock_homes ->
      let cfg =
        { (Config.make ~protocol:Config.Mw ~nprocs:8 ()) with lock_homes }
      in
      let t = Dsm.create cfg in
      let l = Dsm.fresh_lock t in
      let order = ref [] in
      ignore
        (Dsm.run t (fun ctx ->
             let me = Dsm.me ctx in
             Dsm.compute ctx (me * 5_000_000);
             Dsm.lock ctx l;
             order := me :: !order;
             (* Hold long enough that every later request queues. *)
             if me = 0 then Dsm.compute ctx 200_000_000;
             Dsm.unlock ctx l));
      Alcotest.(check (list int))
        (Printf.sprintf "grant order (%s)"
           (match lock_homes with
           | Config.Modulo -> "modulo"
           | Config.Sharded k -> Printf.sprintf "sharded %d" k))
        (List.init 8 Fun.id) (List.rev !order))
    [ Config.Modulo; Config.Sharded 1; Config.Sharded 2; Config.Sharded 4;
      Config.Sharded 8 ]

(* ------------------------------------------------------------------ *)
(* 256-node completion and the scaling study's own checks              *)
(* ------------------------------------------------------------------ *)

(* The CI smoke study end-to-end: SOR to 256 nodes on both fabrics.
   Asserts the study's two hard invariants (fabric checksum equality,
   barrier traffic within 4 R n log2 n) and the refactor's headline:
   at 256 nodes the tree fabric beats the flat fabric's serialized
   barrier fan-in by a wide margin. *)
let test_smoke_study () =
  let study = Scaling.collect ~smoke:true ~max_nodes:256 () in
  Alcotest.(check int) "rows" 16 (List.length study.Scaling.rows);
  Alcotest.(check (list string)) "fabric checksums agree" []
    (Scaling.checksum_mismatches study);
  Alcotest.(check (list string)) "barrier traffic within bound" []
    (Scaling.barrier_bound_violations study);
  let time fabric =
    match
      List.find_opt
        (fun r ->
          r.Scaling.nprocs = 256 && r.Scaling.fabric = fabric
          && r.Scaling.protocol = Config.Mw)
        study.Scaling.rows
    with
    | Some r -> r.Scaling.time_ns
    | None -> Alcotest.fail "missing 256-node row"
  in
  Alcotest.(check bool) "tree fabric wins at 256 nodes" true
    (time Scaling.Tree_combining * 10 < time Scaling.Flat_central)

(* The large-n fast paths (summarized clocks, indexed interval logs,
   repartitioned domains, pooled envelopes) are all behavior-neutral
   claims; pin them where they actually bite — 512 and 1024 nodes —
   by requiring full measurement identity between the sequential and
   2-domain engines on both fabrics, and checksum identity between the
   fabrics themselves. *)
let test_large_n_byte_identity () =
  List.iter
    (fun nprocs ->
      let name fmt = Printf.sprintf "SOR/%d nodes: %s" nprocs fmt in
      let flat = run ~app:"SOR" ~protocol:Config.Mw ~nprocs () in
      let tree =
        run ~tweak:tree_tweak ~app:"SOR" ~protocol:Config.Mw ~nprocs ()
      in
      Alcotest.(check (float 0.0))
        (name "flat vs tree checksum")
        flat.Runner.checksum tree.Runner.checksum;
      List.iter
        (fun (fabric, tweak, (base : Runner.measurement)) ->
          let par =
            run ~tweak
              ~engine:(Config.Parallel { domains = 2 })
              ~app:"SOR" ~protocol:Config.Mw ~nprocs ()
          in
          Alcotest.(check bool)
            (name (fabric ^ " seq vs par:2 measurement"))
            true (par = base))
        [ ("flat", Fun.id, flat); ("tree", tree_tweak, tree) ])
    [ 512; 1024 ]

let () =
  Alcotest.run "scale"
    [
      ( "tree-fabric",
        [
          Alcotest.test_case "transparent for all apps" `Quick
            test_tree_transparent_all_apps;
          Alcotest.test_case "transparent for all protocols" `Quick
            test_tree_transparent_all_protocols;
          Alcotest.test_case "barrier message parity" `Quick
            test_barrier_message_parity;
          Alcotest.test_case "fanout invariance" `Quick test_fanout_invariance;
          Alcotest.test_case "tree gc round" `Quick test_tree_gc_round;
        ] );
      ( "locks",
        [
          Alcotest.test_case "sharded homes transparent" `Quick
            test_sharded_locks_transparent;
          Alcotest.test_case "fifo grants under any placement" `Quick
            test_sharded_lock_fifo;
        ] );
      ( "study",
        [
          Alcotest.test_case "smoke study to 256 nodes" `Slow test_smoke_study;
          Alcotest.test_case "byte identity at 512/1024 nodes" `Slow
            test_large_n_byte_identity;
        ] );
    ]
