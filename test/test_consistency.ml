(* The release-consistency oracle and its workload fuzzer (TESTING.md).

   Three legs hold this suite up:

   - fuzzing: random data-race-free programs run on every protocol at
     several node counts must produce zero oracle violations;
   - real applications: whole benchmark runs recorded and validated;
   - mutation detection: deliberately-broken protocol variants MUST be
     flagged, with the failure shrunk to a minimal counterexample —
     otherwise a green oracle proves nothing.

   Plus the observation codec round-trip and the guarantee that an
   oracle-enabled run is event-identical to a plain one. *)

module Config = Adsm_dsm.Config
module Dsm = Adsm_dsm.Dsm
module Registry = Adsm_apps.Registry
module Runner = Adsm_harness.Runner
module Fuzz = Adsm_harness.Fuzz
module Obs = Adsm_check.Obs
module Oracle = Adsm_check.Oracle
module Recorder = Adsm_check.Recorder
module Workload = Adsm_check.Workload

let case name protocol = Printf.sprintf "%s/%s" name (Config.protocol_name protocol)

let assert_clean name (report : Oracle.report) =
  if not (Oracle.ok report) then
    Alcotest.failf "%s: %s" name (Format.asprintf "%a" Oracle.pp_report report);
  Alcotest.(check bool) (name ^ ": observed something") true (report.Oracle.observations > 0)

(* --- fuzzing: every protocol, several node counts, 10+ seeds --- *)

let test_fuzz_protocols () =
  List.iter
    (fun protocol ->
      for seed = 1 to 10 do
        let o = Fuzz.fuzz_once ~protocol ~nprocs:4 ~seed:(Int64.of_int seed) () in
        assert_clean
          (Printf.sprintf "%s seed %d" (case "fuzz" protocol) seed)
          o.Fuzz.report
      done)
    Config.all_protocols

let test_fuzz_node_counts () =
  List.iter
    (fun nprocs ->
      List.iter
        (fun protocol ->
          for seed = 40 to 42 do
            let o =
              Fuzz.fuzz_once ~protocol ~nprocs ~seed:(Int64.of_int seed) ()
            in
            assert_clean
              (Printf.sprintf "%s %dp seed %d" (case "fuzz" protocol) nprocs
                 seed)
              o.Fuzz.report
          done)
        [ Config.Mw; Config.Wfs_wg ])
    [ 2; 8 ]

(* --- real applications, whole runs validated --- *)

let test_apps_oracle () =
  List.iter
    (fun app_name ->
      let app = Option.get (Registry.find app_name) in
      List.iter
        (fun protocol ->
          let report =
            Fuzz.check_app ~app ~protocol ~nprocs:4 ~scale:Registry.Tiny ()
          in
          assert_clean (case app_name protocol) report)
        Config.all_protocols)
    [ "SOR"; "TSP"; "IS"; "Water" ]

(* --- mutation detection: the oracle must have teeth --- *)

(* For each broken protocol variant, some seed in a small budget must
   produce a violation, and the shrinker must deliver a smaller (or
   equal) still-failing program with a printable counterexample.  A
   mutated run that crashes outright does not count as detection. *)
let test_mutations_detected () =
  List.iter
    (fun (mutation, protocol) ->
      let name =
        Printf.sprintf "%s under %s"
          (Config.mutation_name mutation)
          (Config.protocol_name protocol)
      in
      let detected = ref false in
      let seed = ref 1 in
      while (not !detected) && !seed <= 25 do
        let seed64 = Int64.of_int !seed in
        (match Fuzz.fuzz_once ~mutation ~protocol ~nprocs:4 ~seed:seed64 () with
        | exception _ -> ()
        | o when Oracle.ok o.Fuzz.report -> ()
        | o -> (
          match Fuzz.shrink_failing ~mutation ~protocol ~seed:seed64 o.Fuzz.program with
          | None ->
            Alcotest.failf "%s: seed %d failed but shrink lost the failure"
              name !seed
          | Some minimal ->
            Alcotest.(check bool)
              (name ^ ": shrunk program is no larger") true
              (Workload.ops_count minimal.Fuzz.program
              <= Workload.ops_count o.Fuzz.program);
            (match Fuzz.counterexample minimal with
            | None -> Alcotest.failf "%s: no counterexample rendered" name
            | Some text ->
              Alcotest.(check bool)
                (name ^ ": counterexample names the violation") true
                (String.length text > 0));
            detected := true));
        incr seed
      done;
      if not !detected then
        Alcotest.failf "%s: not detected in 25 fuzz seeds" name)
    [
      (Config.Skip_diff_apply, Config.Mw);
      (Config.Drop_write_notice, Config.Mw);
      (Config.Stale_ownership_grant, Config.Sw);
      (Config.Stale_ownership_grant, Config.Wfs);
    ]

(* --- the clean protocols pass the exact workloads that catch mutants --- *)

(* Control for the mutation leg: the same seeds on the unmutated
   protocols stay clean, so detection is the mutation's doing. *)
let test_mutation_seeds_clean_without_mutation () =
  List.iter
    (fun protocol ->
      for seed = 1 to 25 do
        let o = Fuzz.fuzz_once ~protocol ~nprocs:4 ~seed:(Int64.of_int seed) () in
        assert_clean
          (Printf.sprintf "control %s seed %d" (Config.protocol_name protocol)
             seed)
          o.Fuzz.report
      done)
    [ Config.Mw; Config.Sw ]

(* --- observation codec --- *)

let stamped_testable =
  Alcotest.testable Obs.pp (fun (a : Obs.stamped) b -> a = b)

let test_codec_roundtrip () =
  let samples =
    [
      { Obs.time = 0; node = 0;
        obs = Obs.Read { page = 3; off = 8; width = 8;
                         bits = Int64.bits_of_float (-1.5e-300) } };
      { Obs.time = 17; node = 2;
        obs = Obs.Write { page = 0; off = 4088; width = 8;
                          bits = Int64.bits_of_float Float.nan } };
      { Obs.time = 99; node = 1;
        obs = Obs.Read { page = 12; off = 0; width = 4;
                         bits = Int64.of_int32 (-7l) } };
      { Obs.time = 100; node = 1;
        obs = Obs.Write { page = 12; off = 0; width = 4;
                          bits = Int64.of_int32 Int32.max_int } };
      { Obs.time = 5; node = 3; obs = Obs.Acquire { lock = 2 } };
      { Obs.time = 6; node = 3; obs = Obs.Release { lock = 2 } };
      { Obs.time = 7; node = 0; obs = Obs.Barrier_enter { epoch = 4 } };
      { Obs.time = 8; node = 0; obs = Obs.Barrier_leave { epoch = 4 } };
    ]
  in
  List.iter
    (fun s ->
      match Obs.of_json (Obs.to_json s) with
      | Some back -> Alcotest.(check stamped_testable) "round-trip" s back
      | None -> Alcotest.failf "codec rejected its own output for %s"
                  (Obs.tag s.Obs.obs))
    samples;
  (* Unknown tags and missing fields decode to None, not an exception. *)
  let module Json = Adsm_trace.Json in
  Alcotest.(check bool) "garbage tag rejected" true
    (Obs.of_json
       (Json.Obj [ ("t", Json.Int 0); ("node", Json.Int 0);
                   ("ob", Json.String "flush") ])
    = None);
  Alcotest.(check bool) "missing field rejected" true
    (Obs.of_json
       (Json.Obj [ ("t", Json.Int 0); ("node", Json.Int 0);
                   ("ob", Json.String "read"); ("page", Json.Int 1) ])
    = None)

(* --- enabling the oracle is purely observational --- *)

let test_recorder_is_observational () =
  let app = Option.get (Registry.find "SOR") in
  let run recorder =
    Runner.run ?recorder ~app ~protocol:Config.Wfs_wg ~nprocs:4
      ~scale:Registry.Tiny ()
  in
  let plain = run None in
  let recorder = Recorder.create () in
  let checked = run (Some recorder) in
  Alcotest.(check bool) "observations collected" true (Recorder.count recorder > 0);
  Alcotest.(check int) "same simulated events" plain.Runner.events checked.Runner.events;
  Alcotest.(check int) "same simulated time" plain.Runner.time_ns checked.Runner.time_ns;
  Alcotest.(check int) "same messages" plain.Runner.messages checked.Runner.messages;
  Alcotest.(check int) "same wire bytes" plain.Runner.wire_bytes checked.Runner.wire_bytes;
  Alcotest.(check (float 0.0)) "same result" plain.Runner.checksum checked.Runner.checksum

let () =
  Alcotest.run "consistency"
    [
      ( "fuzz",
        [
          Alcotest.test_case "all protocols, 10 seeds" `Quick
            test_fuzz_protocols;
          Alcotest.test_case "node counts 2 and 8" `Quick
            test_fuzz_node_counts;
          Alcotest.test_case "control seeds stay clean" `Quick
            test_mutation_seeds_clean_without_mutation;
        ] );
      ( "apps",
        [ Alcotest.test_case "four apps, four protocols" `Quick test_apps_oracle ] );
      ( "mutations",
        [
          Alcotest.test_case "every mutant detected and shrunk" `Quick
            test_mutations_detected;
        ] );
      ( "codec",
        [ Alcotest.test_case "observation round-trip" `Quick test_codec_roundtrip ] );
      ( "overhead",
        [
          Alcotest.test_case "recorder is observational" `Quick
            test_recorder_is_observational;
        ] );
    ]
