(* Deterministic fault injection and LRC crash recovery (FAULTS.md).

   The suite pins, in roughly this order:
   - the fault-spec codec (round trip, error cases) and validation;
   - zero-cost disabled path: [faults = None] and [Some Fault.empty]
     are byte-identical to the pre-fault baselines, and the disabled
     guard allocates nothing;
   - determinism: the same (seed, schedule) replays byte-identically;
   - survivability: every registered app completes under a nontrivial
     crash/restart schedule with the oracle clean AND the checksum
     equal to the fault-free run (the write-behind log + recovery
     round restore a view at least as fresh as the pre-crash one, so
     the application computes the same values);
   - message faults (loss/dup/jitter/partition) complete, cost wire
     bytes, and keep checksums unchanged;
   - the two seeded recovery mutations are detected by the oracle and
     shrunk by the joint (program, schedule) shrinker. *)

module Config = Adsm_dsm.Config
module Dsm = Adsm_dsm.Dsm
module Fault = Adsm_net.Fault
module Registry = Adsm_apps.Registry
module Runner = Adsm_harness.Runner
module Fuzz = Adsm_harness.Fuzz
module Oracle = Adsm_check.Oracle
module Recorder = Adsm_check.Recorder
module Rng = Adsm_sim.Rng

let app name =
  match Registry.find name with
  | Some app -> app
  | None -> Alcotest.failf "unknown app %s" name

let sched spec =
  match Fault.of_string spec with
  | Ok s -> s
  | Error msg -> Alcotest.failf "bad schedule %S: %s" spec msg

let with_faults s cfg = { cfg with Config.faults = Some s }

(* ------------------------------------------------------------------ *)
(* Spec codec                                                         *)
(* ------------------------------------------------------------------ *)

let test_spec_roundtrip () =
  List.iter
    (fun spec ->
      let s = sched spec in
      let printed = Fault.to_string s in
      match Fault.of_string printed with
      | Ok s' ->
        Alcotest.(check string)
          (spec ^ ": stable") printed (Fault.to_string s');
        if s <> s' then Alcotest.failf "%s: schedule changed by round trip" spec
      | Error msg -> Alcotest.failf "%s: reparse failed: %s" printed msg)
    [
      "crash=1@400us:200us";
      "crash=0@1ms:100us;crash=2@2ms:50us";
      "loss=0.1;dup=0.05;jitter=2us";
      "crash=3@100000:70000;loss=0.02;rto=100us";
      "part=0-1@500us:900us";
      "crash=1@1ms:1ms;part=2-3@1ms:2ms;jitter=15000";
      "";
    ]

let test_spec_durations () =
  let s = sched "crash=1@1ms:50us;jitter=250" in
  (match s.Fault.crashes with
  | [ { Fault.node = 1; at = 1_000_000; downtime = 50_000 } ] -> ()
  | _ -> Alcotest.fail "duration suffixes misparsed");
  Alcotest.(check int) "ns default" 250 s.Fault.jitter_ns

let test_spec_errors () =
  List.iter
    (fun spec ->
      match Fault.of_string spec with
      | Ok _ -> Alcotest.failf "%S: expected a parse error" spec
      | Error _ -> ())
    [
      "crash=1";
      "crash=1@x:y";
      "loss=1.5";
      "dup=-0.1";
      "jitter=abc";
      "part=0@1:2";
      "bogus=3";
      "crash";
    ]

let test_validate () =
  let ok s = Result.is_ok (Fault.validate ~nprocs:4 s) in
  Alcotest.(check bool) "in range" true (ok (sched "crash=3@1ms:1ms"));
  Alcotest.(check bool) "node range" false (ok (sched "crash=4@1ms:1ms"));
  Alcotest.(check bool)
    "overlapping windows" false
    (ok (sched "crash=1@1ms:1ms;crash=1@1500us:1ms"));
  Alcotest.(check bool)
    "disjoint windows" true
    (ok (sched "crash=1@1ms:1ms;crash=1@2500us:1ms"));
  Alcotest.(check bool) "partition range" false (ok (sched "part=0-5@1ms:2ms"));
  Alcotest.(check bool) "empty is valid" true (ok Fault.empty)

let test_generate_valid () =
  for seed = 1 to 50 do
    let rng = Rng.create (Int64.of_int seed) in
    let s = Fault.generate rng ~nprocs:4 ~horizon_ns:2_000_000 in
    (match Fault.validate ~nprocs:4 s with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "seed %d: generated invalid: %s" seed msg);
    if s.Fault.crashes = [] then
      Alcotest.failf "seed %d: generated schedule without a crash" seed;
    (* Shrink candidates of a valid schedule stay valid. *)
    Seq.iter
      (fun s' ->
        match Fault.validate ~nprocs:4 s' with
        | Ok () -> ()
        | Error msg -> Alcotest.failf "seed %d: shrink invalid: %s" seed msg)
      (Fault.shrink s)
  done

(* ------------------------------------------------------------------ *)
(* Crash survivability                                                *)
(* ------------------------------------------------------------------ *)

let crash_sched = sched "crash=1@400us:200us;crash=2@900us:150us"

let measure ?tweak ?recorder name protocol =
  Runner.run ?tweak ?recorder ~app:(app name) ~protocol ~nprocs:4
    ~scale:Registry.Tiny ()

let test_apps_survive_crashes () =
  List.iter
    (fun (entry : Registry.entry) ->
      let name = entry.Registry.name in
      let base = measure name Config.Wfs in
      let faulty =
        measure ~tweak:(with_faults crash_sched) name Config.Wfs
      in
      Alcotest.(check (float 0.0))
        (name ^ ": checksum unchanged by crash recovery")
        base.Runner.checksum faulty.Runner.checksum;
      if faulty.Runner.time_ns < base.Runner.time_ns then
        Alcotest.failf "%s: crashes made the run faster?" name)
    Registry.all

let test_oracle_clean_under_crashes () =
  List.iter
    (fun name ->
      List.iter
        (fun protocol ->
          let recorder = Recorder.create () in
          let _m =
            measure ~tweak:(with_faults crash_sched) ~recorder name protocol
          in
          let report = Oracle.check ~nprocs:4 (Recorder.stream recorder) in
          if not (Oracle.ok report) then
            Alcotest.failf "%s/%s: %s" name
              (Config.protocol_name protocol)
              (Format.asprintf "%a" Oracle.pp_report report);
          (* The stream must actually contain both crash/restart pairs. *)
          let crashes =
            Array.fold_left
              (fun acc (s : Adsm_check.Obs.stamped) ->
                match s.Adsm_check.Obs.obs with
                | Adsm_check.Obs.Crash -> acc + 1
                | _ -> acc)
              0 (Recorder.stream recorder)
          in
          Alcotest.(check int)
            (name ^ ": both crashes manifested")
            2 crashes)
        [ Config.Mw; Config.Sw; Config.Wfs ])
    [ "sor"; "is"; "water" ]

(* ------------------------------------------------------------------ *)
(* Determinism and the disabled path                                  *)
(* ------------------------------------------------------------------ *)

(* Same (seed, schedule) must replay byte-identically: every field of
   the measurement, including the full traffic breakdown and the
   live-diff time series, compares structurally equal. *)
let test_replay_identical () =
  let s = sched "crash=1@400us:200us;loss=0.08;dup=0.03;jitter=3us" in
  let m1 = measure ~tweak:(with_faults s) "sor" Config.Mw in
  let m2 = measure ~tweak:(with_faults s) "sor" Config.Mw in
  if m1 <> m2 then Alcotest.fail "same (seed, schedule) diverged on replay"

(* [Some Fault.empty] must be indistinguishable from [None]: the null
   runtime perturbs nothing and parks nothing, so simulated time,
   event counts and traffic are all byte-identical. *)
let test_empty_schedule_is_free () =
  List.iter
    (fun protocol ->
      let base = measure "is" protocol in
      let nulled = measure ~tweak:(with_faults Fault.empty) "is" protocol in
      if base <> nulled then
        Alcotest.failf "%s: a null fault schedule changed the run"
          (Config.protocol_name protocol))
    [ Config.Mw; Config.Wfs ]

(* The guard idiom on the hot paths — [match cfg.faults with None -> ...]
   per message and the [crash_pending] bool test per DSM operation —
   must construct nothing when faults are off (compare
   test_trace.ml's disabled-tracer test). *)
let test_disabled_path_does_not_allocate () =
  let faults : Fault.schedule option = None in
  let crash_pending = ref false in
  let hits = ref 0 in
  let before = Gc.minor_words () in
  for _ = 0 to 9_999 do
    (match faults with
    | Some s -> if s.Fault.loss > 0.0 then incr hits
    | None -> ());
    if !crash_pending then incr hits
  done;
  let after = Gc.minor_words () in
  Alcotest.(check int) "guards never taken" 0 !hits;
  Alcotest.(check bool)
    (Printf.sprintf "no per-op allocation (%.0f words)" (after -. before))
    true
    (after -. before < 256.)

(* ------------------------------------------------------------------ *)
(* Message faults                                                     *)
(* ------------------------------------------------------------------ *)

(* Loss, duplication, jitter and partitions perturb delivery timing and
   wire traffic but are invisible to the protocol (reliable-transport
   model, FAULTS.md): every run completes with the fault-free checksum.
   Loss and duplication must also show up as wire-byte overhead. *)
let test_message_faults () =
  let base = measure "water" Config.Wfs in
  List.iter
    (fun (spec, costs_wire) ->
      let m = measure ~tweak:(with_faults (sched spec)) "water" Config.Wfs in
      Alcotest.(check (float 0.0))
        (spec ^ ": checksum") base.Runner.checksum m.Runner.checksum;
      if costs_wire && m.Runner.wire_bytes <= base.Runner.wire_bytes then
        Alcotest.failf "%s: expected wire overhead (%d <= %d)" spec
          m.Runner.wire_bytes base.Runner.wire_bytes)
    [
      ("loss=0.15", true);
      ("dup=0.2", true);
      ("jitter=5us", false);
      ("part=0-1@200us:700us", false);
      ("loss=0.05;dup=0.05;jitter=2us;part=2-3@300us:600us", true);
    ]

(* ------------------------------------------------------------------ *)
(* Oracle crash/restart structure checks                              *)
(* ------------------------------------------------------------------ *)

let stream obs_list =
  Array.of_list
    (List.mapi
       (fun i (node, obs) -> { Adsm_check.Obs.time = i; node; obs })
       obs_list)

let fault_errors obs_list =
  (Oracle.check ~nprocs:2 (stream obs_list)).Oracle.fault_errors

let test_oracle_fault_structure () =
  let module O = Adsm_check.Obs in
  Alcotest.(check int)
    "clean crash/restart pair" 0
    (List.length (fault_errors [ (0, O.Crash); (0, O.Restart) ]));
  Alcotest.(check bool)
    "double crash flagged" true
    (fault_errors [ (0, O.Crash); (0, O.Crash); (0, O.Restart) ] <> []);
  Alcotest.(check bool)
    "restart without crash flagged" true
    (fault_errors [ (0, O.Restart) ] <> []);
  Alcotest.(check bool)
    "still down at end flagged" true
    (fault_errors [ (0, O.Crash) ] <> []);
  Alcotest.(check bool)
    "activity while down flagged" true
    (fault_errors
       [ (0, O.Crash); (0, O.Acquire { lock = 0 }); (0, O.Restart) ]
    <> []);
  Alcotest.(check bool)
    "nested barrier enter flagged" true
    (fault_errors
       [ (1, O.Barrier_enter { epoch = 0 }); (1, O.Barrier_enter { epoch = 1 }) ]
    <> []);
  Alcotest.(check bool)
    "mismatched barrier leave flagged" true
    (fault_errors
       [ (1, O.Barrier_enter { epoch = 0 }); (1, O.Barrier_leave { epoch = 1 }) ]
    <> [])

(* ------------------------------------------------------------------ *)
(* Recovery-mutation detection and joint shrinking                    *)
(* ------------------------------------------------------------------ *)

let sched_size (s : Fault.schedule) =
  List.length s.Fault.crashes
  + List.length s.Fault.partitions
  + (if s.Fault.loss > 0.0 then 1 else 0)
  + (if s.Fault.dup > 0.0 then 1 else 0)
  + if s.Fault.jitter_ns > 0 then 1 else 0

(* Sweep seeds until the oracle flags the mutation, then shrink jointly
   over (program, schedule) and require that the minimal counterexample
   still fails and got no bigger in either dimension. *)
let assert_detected_and_shrunk mutation ~seeds =
  let detected =
    List.find_map
      (fun s ->
        let o =
          Fuzz.fuzz_once ~mutation ~faults:true ~nprocs:4
            ~seed:(Int64.of_int s) ()
        in
        if Oracle.ok o.Fuzz.report then None else Some (s, o))
      seeds
  in
  match detected with
  | None ->
    Alcotest.failf "%s: not detected in %d seeds"
      (Config.mutation_name mutation)
      (List.length seeds)
  | Some (seed, o) -> (
    let faults =
      match o.Fuzz.faults with
      | Some f -> f
      | None -> Alcotest.fail "fault-mode outcome without a schedule"
    in
    match
      Fuzz.shrink_failing ~mutation ~seed:(Int64.of_int seed) ~faults
        o.Fuzz.program
    with
    | None -> Alcotest.failf "shrink lost the seed-%d failure" seed
    | Some m ->
      if Oracle.ok m.Fuzz.report then
        Alcotest.fail "shrunk outcome no longer fails";
      let mf =
        match m.Fuzz.faults with
        | Some f -> f
        | None -> Alcotest.fail "shrunk outcome lost its schedule"
      in
      if sched_size mf > sched_size faults then
        Alcotest.fail "shrinking grew the fault schedule";
      (* The recovery mutations need a crash to manifest, and greedy
         shrinking must preserve that. *)
      if mf.Fault.crashes = [] then
        Alcotest.fail "shrunk schedule lost its crash")

let test_mutation_skip_notice_replay () =
  assert_detected_and_shrunk Config.Skip_notice_replay
    ~seeds:(List.init 20 (fun i -> i + 1))

let test_mutation_stale_vc () =
  assert_detected_and_shrunk Config.Stale_vc_after_restart
    ~seeds:(List.init 30 (fun i -> i + 1))

(* The unmutated recovery path stays oracle-clean over the same seed
   window the mutation tests sweep — the fuzzer's schedules (crashes,
   loss, duplication, jitter, partitions) never produce a violation. *)
let test_fuzz_clean_under_faults () =
  List.iter
    (fun s ->
      let o = Fuzz.fuzz_once ~faults:true ~nprocs:4 ~seed:(Int64.of_int s) () in
      if not (Oracle.ok o.Fuzz.report) then
        Alcotest.failf "seed %d: clean run flagged:@ %s" s
          (Format.asprintf "%a" Oracle.pp_report o.Fuzz.report))
    (List.init 30 (fun i -> i + 1))

let () =
  Alcotest.run "fault"
    [
      ( "spec",
        [
          Alcotest.test_case "round trip" `Quick test_spec_roundtrip;
          Alcotest.test_case "durations" `Quick test_spec_durations;
          Alcotest.test_case "errors" `Quick test_spec_errors;
          Alcotest.test_case "validation" `Quick test_validate;
          Alcotest.test_case "generate/shrink valid" `Quick test_generate_valid;
        ] );
      ( "crash-recovery",
        [
          Alcotest.test_case "apps survive crashes" `Slow
            test_apps_survive_crashes;
          Alcotest.test_case "oracle clean under crashes" `Slow
            test_oracle_clean_under_crashes;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "replay byte-identical" `Quick
            test_replay_identical;
          Alcotest.test_case "null schedule is free" `Quick
            test_empty_schedule_is_free;
          Alcotest.test_case "disabled path allocates nothing" `Quick
            test_disabled_path_does_not_allocate;
        ] );
      ( "message-faults",
        [ Alcotest.test_case "transparent to the app" `Slow test_message_faults ]
      );
      ( "oracle",
        [
          Alcotest.test_case "crash/restart structure" `Quick
            test_oracle_fault_structure;
        ] );
      ( "mutations",
        [
          Alcotest.test_case "skip-notice-replay detected+shrunk" `Slow
            test_mutation_skip_notice_replay;
          Alcotest.test_case "stale-vc-after-restart detected+shrunk" `Slow
            test_mutation_stale_vc;
          Alcotest.test_case "clean fuzz stays clean" `Slow
            test_fuzz_clean_under_faults;
        ] );
    ]
