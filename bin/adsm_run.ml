(* Command-line driver: run applications under the DSM protocols and
   regenerate the paper's tables and figures.

     adsm_run run --app SOR --protocol WFS --procs 8
     adsm_run experiments [--tiny] [--procs 8] [--app SOR --app IS ...]
     adsm_run list
*)

open Cmdliner
module Config = Adsm_dsm.Config
module Registry = Adsm_apps.Registry
module Runner = Adsm_harness.Runner
module Experiments = Adsm_harness.Experiments
module Fuzz = Adsm_harness.Fuzz
module Pool = Adsm_harness.Pool
module Oracle = Adsm_check.Oracle
module Recorder = Adsm_check.Recorder

let scale_of_tiny tiny = if tiny then Registry.Tiny else Registry.Default

(* Fabric selection shared by `run` and `experiments`: a network cost
   model plus a topology shape, folded into one configuration tweak. *)
let fabric_tweak net topology =
  let base =
    match net with
    | `Atm97 -> Adsm_net.Netcfg.atm_155
    | `Fast -> Adsm_net.Netcfg.fast_ethernet
  in
  match Adsm_net.Topology.shape_of_string ~base topology with
  | Error msg -> Error msg
  | Ok shape ->
    Ok (fun cfg -> { cfg with Config.net = base; topology = shape })

(* --- run one configuration --- *)

let engine_of_par par =
  if par > 1 then Some (Config.Parallel { domains = par }) else None

(* --faults SPEC shared by `run` and `fuzz`: parse early so a typo is a
   usage error, not a mid-run exception. *)
let faults_of_spec ~nprocs = function
  | None -> Ok None
  | Some spec -> (
    match Adsm_net.Fault.of_string spec with
    | Error msg -> Error (Printf.sprintf "bad --faults: %s" msg)
    | Ok sched -> (
      match Adsm_net.Fault.validate ~nprocs sched with
      | Error msg -> Error (Printf.sprintf "bad --faults: %s" msg)
      | Ok () -> Ok (Some sched)))

let run_one app_name protocol_name nprocs tiny seed trace_file trace_format
    check faults_spec net topology par =
  match Registry.find app_name with
  | None ->
    Printf.eprintf "unknown application %S; try `adsm_run list'\n" app_name;
    1
  | Some _ when trace_format <> None && trace_file = None ->
    Printf.eprintf "--trace-format requires --trace\n";
    1
  | Some app -> (
    match Config.protocol_of_string protocol_name with
    | None ->
      Printf.eprintf
        "unknown protocol %S (MW, SW, WFS, WFS+WG, HLRC)\n"
        protocol_name;
      1
    | Some protocol -> (
      match faults_of_spec ~nprocs faults_spec with
      | Error msg ->
        Printf.eprintf "%s\n" msg;
        1
      | Ok faults -> (
      match fabric_tweak net topology with
      | Error msg ->
        Printf.eprintf "bad --topology: %s\n" msg;
        1
      | Ok tweak -> (
      let scale = scale_of_tiny tiny in
      let module Trace = Adsm_trace in
      let trace_format =
        Option.value trace_format ~default:Trace.Sink.Jsonl
      in
      match
        match trace_file with
        | None -> Ok None
        | Some path -> (
          try
            Ok
              (Some
                 (Trace.Tracer.create
                    [ Trace.Sink.file trace_format ~nodes:nprocs path ]))
          with Sys_error msg -> Error msg)
      with
      | Error msg ->
        Printf.eprintf "cannot open trace file: %s\n" msg;
        1
      | Ok tracer ->
      let recorder = if check then Recorder.create () else Recorder.disabled in
      let m =
        Runner.run ?tracer ~recorder ~tweak ?faults
          ?engine:(engine_of_par par) ~seed:(Int64.of_int seed) ~app
          ~protocol ~nprocs ~scale ()
      in
      (match (tracer, trace_file) with
      | Some tracer, Some path ->
        Trace.Tracer.close tracer;
        Printf.printf "wrote %d trace events to %s\n"
          (Trace.Tracer.emitted tracer)
          path
      | _ -> ());
      let speedup = Runner.speedup m in
      Printf.printf "%s under %s on %d processor(s) [%s scale]\n"
        m.Runner.app
        (Config.protocol_name protocol)
        nprocs
        (match scale with Registry.Tiny -> "tiny" | Registry.Default -> "default");
      Printf.printf "  simulated time   %.3f ms\n"
        (float_of_int m.Runner.time_ns /. 1e6);
      Printf.printf "  speedup          %.2f\n" speedup;
      Printf.printf "  messages         %d\n" m.Runner.messages;
      Printf.printf "  data             %.2f MB\n"
        (float_of_int m.Runner.data_bytes /. 1_048_576.);
      Printf.printf "  ownership reqs   %d (refused %d)\n" m.Runner.own_requests
        m.Runner.own_refusals;
      Printf.printf "  twins/diffs      %d / %d (%.2f MB)\n"
        m.Runner.twins_created m.Runner.diffs_created
        (float_of_int (m.Runner.twin_bytes + m.Runner.diff_bytes)
        /. 1_048_576.);
      Printf.printf "  faults           %d read, %d write\n"
        m.Runner.read_faults m.Runner.write_faults;
      Printf.printf "  GC runs          %d\n" m.Runner.gc_runs;
      Printf.printf "  checksum         %.6f\n" m.Runner.checksum;
      (match faults with
      | Some sched ->
        Printf.printf "  faults           %s\n" (Adsm_net.Fault.to_string sched)
      | None -> ());
      if not check then 0
      else begin
        let report = Oracle.check ~nprocs (Recorder.stream recorder) in
        Format.printf "%a@." Oracle.pp_report report;
        if Oracle.ok report then 0
        else begin
          List.iter
            (fun v ->
              Format.printf "%a@." Oracle.pp_violation v)
            report.Oracle.violations;
          1
        end
      end))))

(* --- the full experiment suite --- *)

let run_experiments tiny nprocs apps out jobs net topology par =
  match fabric_tweak net topology with
  | Error msg ->
    Printf.eprintf "bad --topology: %s\n" msg;
    1
  | Ok tweak -> (
    let apps = match apps with [] -> None | l -> Some l in
    let engine = engine_of_par par in
    match out with
    | None ->
      print_string
        (Experiments.run_all ?apps ~scale:(scale_of_tiny tiny) ~nprocs ~jobs
           ~tweak ?engine ());
      0
    | Some dir ->
      let suite =
        Experiments.collect ?apps ~scale:(scale_of_tiny tiny) ~nprocs ~jobs
          ~tweak ?engine ()
      in
      let written = Experiments.export_csv suite ~dir in
      List.iter (Printf.printf "wrote %s\n") written;
      0)

let list_apps () =
  List.iter
    (fun (e : Registry.entry) ->
      Printf.printf "%-8s sync=%-4s default=%s\n" e.Registry.name
        e.Registry.sync
        (e.Registry.data_desc Registry.Default))
    Registry.all;
  0

(* --- cmdliner wiring --- *)

let app_arg =
  Arg.(value & opt string "SOR" & info [ "app"; "a" ] ~doc:"Application name.")

let protocol_arg =
  Arg.(
    value & opt string "WFS"
    & info [ "protocol"; "p" ] ~doc:"Protocol: MW, SW, WFS or WFS+WG.")

let procs_arg =
  Arg.(value & opt int 8 & info [ "procs"; "n" ] ~doc:"Simulated processors.")

let tiny_arg =
  Arg.(value & flag & info [ "tiny" ] ~doc:"Use tiny (test-size) inputs.")

let seed_arg =
  Arg.(value & opt int 0x5EED & info [ "seed" ] ~doc:"Simulation seed.")

let apps_arg =
  Arg.(
    value & opt_all string []
    & info [ "app"; "a" ] ~doc:"Restrict to this application (repeatable).")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Write the structured protocol event trace (faults, \
              twins/diffs, mode transitions, ownership, synchronization, \
              messages) to $(docv).  See TRACING.md.")

let trace_format_arg =
  let fmt =
    Arg.enum
      [ ("jsonl", Adsm_trace.Sink.Jsonl); ("chrome", Adsm_trace.Sink.Chrome) ]
  in
  Arg.(
    value
    & opt (some fmt) None
    & info [ "trace-format" ] ~docv:"FMT"
        ~doc:"Trace file format: $(b,jsonl) (one event per line, the \
              default) or $(b,chrome) (Chrome trace_event JSON, loadable \
              in Perfetto).  Requires $(b,--trace).")

let net_arg =
  Arg.(
    value
    & opt (enum [ ("atm97", `Atm97); ("fast", `Fast) ]) `Atm97
    & info [ "net" ] ~docv:"MODEL"
        ~doc:"Network cost model: $(b,atm97) (the paper's 155 Mbps ATM \
              testbed, the default) or $(b,fast) (a ~1 Gbps \
              low-overhead network).")

let topology_arg =
  Arg.(
    value & opt string "flat"
    & info [ "topology" ] ~docv:"SHAPE"
        ~doc:"Cluster fabric: $(b,flat) (the paper's all-pairs model, \
              the default), $(b,tree), or $(b,tree:N) (2-level switched \
              tree with N nodes per leaf switch).")

let par_arg =
  Arg.(
    value & opt int 1
    & info [ "par" ] ~docv:"N"
        ~doc:"Run each simulation on the conservative parallel engine \
              with $(docv) OCaml domains (default 1 = the sequential \
              engine).  Behavior-neutral: traces, checksums, counters and \
              oracle streams are byte-identical (see PARALLELISM.md); \
              only host wall-clock changes.  Avoid oversubscribing the \
              host when combined with $(b,--jobs).")

let faults_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "faults" ] ~docv:"SPEC"
        ~doc:"Run under a deterministic fault schedule, e.g. \
              $(b,crash=1\\@400us:200us;loss=0.05;jitter=2us).  Clauses \
              (`;'-separated): $(b,crash=N\\@T:D) (node N down at time T \
              for D), $(b,part=LO-HI\\@F:U) (partition), $(b,loss=P), \
              $(b,dup=P), $(b,jitter=D), $(b,rto=D); durations take \
              ns/us/ms suffixes.  See FAULTS.md.")

let check_arg =
  Arg.(
    value & flag
    & info [ "check" ]
        ~doc:"Record every shared access and synchronization operation \
              and validate the run against the release-consistency \
              oracle afterwards (see TESTING.md).  Exits non-zero on a \
              consistency violation.")

let run_cmd =
  Cmd.v (Cmd.info "run" ~doc:"Run one application under one protocol")
    Term.(
      const run_one $ app_arg $ protocol_arg $ procs_arg $ tiny_arg $ seed_arg
      $ trace_arg $ trace_format_arg $ check_arg $ faults_arg $ net_arg
      $ topology_arg $ par_arg)

(* --- oracle-checked workload fuzzing --- *)

let run_fuzz protocol_name nprocs seeds seed mutation_name faults jobs =
  match Config.protocol_of_string protocol_name with
  | None ->
    Printf.eprintf
      "unknown protocol %S (MW, SW, WFS, WFS+WG, HLRC)\n"
      protocol_name;
    1
  | Some protocol -> (
    let mutation =
      match mutation_name with
      | None -> Ok None
      | Some s -> (
        match Config.mutation_of_string s with
        | Some m -> Ok (Some m)
        | None -> Error s)
    in
    match mutation with
    | Error s ->
      Printf.eprintf "unknown mutation %S (available: %s)\n" s
        (String.concat ", " (List.map Config.mutation_name Config.all_mutations));
      1
    | Ok mutation ->
      (* The seed sweep fans out over [jobs] worker domains; results come
         back in seed order, and shrinking of any failing seed stays
         sequential down here so its output is deterministic. *)
      let results =
        Fuzz.sweep ~jobs ?mutation ~protocol ~faults ~nprocs ~seed
          ~count:seeds ()
      in
      let failures = ref 0 in
      List.iter
        (fun (s, result) ->
          match result with
          | Error msg ->
            incr failures;
            Printf.printf "seed %d: CRASH (%s)\n" s msg
          | Ok o ->
            if Oracle.ok o.Fuzz.report then
              Printf.printf "seed %d: ok (%d observations, %d reads)\n" s
                o.Fuzz.report.Oracle.observations o.Fuzz.report.Oracle.reads
            else begin
              incr failures;
              Printf.printf "seed %d: %d violation(s), shrinking...\n" s
                (List.length o.Fuzz.report.Oracle.violations
                + List.length o.Fuzz.report.Oracle.fault_errors);
              let minimal =
                match
                  Fuzz.shrink_failing ?mutation ~protocol
                    ~seed:(Int64.of_int s) ?faults:o.Fuzz.faults
                    o.Fuzz.program
                with
                | Some shrunk -> shrunk
                | None -> o
              in
              match Fuzz.counterexample minimal with
              | Some text -> print_string text
              | None -> ()
            end)
        results;
      match mutation with
      | Some m ->
        (* Mutation runs invert the exit logic: the oracle MUST notice. *)
        if !failures > 0 then begin
          Printf.printf "mutation %s: detected (%d of %d seeds)\n"
            (Config.mutation_name m) !failures seeds;
          0
        end
        else begin
          Printf.printf "mutation %s: NOT detected in %d seeds\n"
            (Config.mutation_name m) seeds;
          1
        end
      | None -> if !failures = 0 then 0 else 1)

let jobs_arg =
  Arg.(
    value
    & opt int (Pool.default_jobs ())
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:"Run independent simulations on $(docv) worker domains \
              (default: the number of cores).  Results are bit-identical \
              for any value; $(b,--jobs 1) is the plain sequential path.")

let seeds_arg =
  Arg.(
    value & opt int 10
    & info [ "seeds" ] ~docv:"N" ~doc:"Number of consecutive seeds to run.")

let mutation_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "mutation" ] ~docv:"NAME"
        ~doc:"Inject a deliberately broken protocol variant \
              (skip-diff-apply, drop-write-notice, \
              stale-ownership-grant, skip-notice-replay, \
              stale-vc-after-restart); the run then $(i,fails) unless \
              the oracle detects the bug.  The two recovery mutations \
              only manifest under crashes — combine with $(b,--faults).")

let fuzz_faults_arg =
  Arg.(
    value & flag
    & info [ "faults" ]
        ~doc:"Generate a random fault schedule (node crashes, message \
              loss/duplication/jitter, partitions) alongside each \
              workload, sized to the workload's own duration; failures \
              shrink jointly over program and schedule.  See FAULTS.md.")

let fuzz_cmd =
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Generate random data-race-free workloads and validate every \
          read against the release-consistency oracle, shrinking any \
          failure to a minimal counterexample")
    Term.(
      const run_fuzz $ protocol_arg $ procs_arg $ seeds_arg $ seed_arg
      $ mutation_arg $ fuzz_faults_arg $ jobs_arg)

let out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "out"; "o" ] ~docv:"DIR"
        ~doc:"Write machine-readable CSV files into $(docv) instead of \
              printing tables.")

let experiments_cmd =
  Cmd.v
    (Cmd.info "experiments"
       ~doc:"Regenerate every table and figure of the paper")
    Term.(
      const run_experiments $ tiny_arg $ procs_arg $ apps_arg $ out_arg
      $ jobs_arg $ net_arg $ topology_arg $ par_arg)

let list_cmd =
  Cmd.v (Cmd.info "list" ~doc:"List the available applications")
    Term.(const list_apps $ const ())

(* --- node-count scaling study --- *)

let run_scaling smoke max_nodes jobs out par apps =
  let module Scaling = Adsm_harness.Scaling in
  let apps =
    match apps with
    | None -> None
    | Some s ->
      Some
        (List.filter
           (fun a -> a <> "")
           (String.split_on_char ',' s))
  in
  let study = Scaling.collect ~smoke ~max_nodes ~jobs ~par ?apps () in
  print_string (Scaling.render study);
  (match out with
  | Some path ->
    let oc = open_out path in
    output_string oc (Scaling.to_json study);
    close_out oc;
    Printf.printf "wrote %s\n" path
  | None -> ());
  let mismatches = Scaling.checksum_mismatches study in
  let violations = Scaling.barrier_bound_violations study in
  List.iter (Printf.eprintf "FABRIC CHECKSUM MISMATCH: %s\n") mismatches;
  List.iter (Printf.eprintf "BARRIER BOUND EXCEEDED: %s\n") violations;
  if mismatches = [] && violations = [] then 0 else 1

let max_nodes_arg =
  Arg.(
    value & opt int 1024
    & info [ "max-nodes" ] ~docv:"N"
        ~doc:"Truncate the node grid at $(docv) simulated nodes (3D-FFT \
              is structurally capped at 64; see EXPERIMENTS.md).")

let scaling_apps_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "apps" ] ~docv:"A,B"
        ~doc:"Sweep only these comma-separated applications (default: \
              all eight; with $(b,--tiny), SOR).")

let scaling_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "out"; "o" ] ~docv:"FILE"
        ~doc:"Also write the study as a JSON artifact to $(docv).")

let scaling_tiny_arg =
  Arg.(
    value & flag
    & info [ "tiny" ]
        ~doc:"Smoke subset (SOR, MW + WFS, sparse node grid): seconds \
              of wall clock, used by CI.  The full grid costs minutes, \
              dominated by IS and Water at 512+ nodes.")

let scaling_cmd =
  Cmd.v
    (Cmd.info "scaling"
       ~doc:
         "Sweep the cluster from 8 to 1024 nodes, comparing the paper's \
          flat fabric + central barrier against the 2-level tree fabric \
          + combining barrier, and report the protocol crossover per \
          node count.  Exits non-zero if the fabrics disagree on any \
          application checksum or the tree barrier exceeds its \
          n-log-n message bound.")
    Term.(
      const run_scaling $ scaling_tiny_arg $ max_nodes_arg $ jobs_arg
      $ scaling_out_arg $ par_arg $ scaling_apps_arg)

let run_ablations studies jobs =
  let module Ablations = Adsm_harness.Ablations in
  match studies with
  | [] ->
    print_string (Ablations.run_all ~jobs ());
    0
  | names ->
    List.fold_left
      (fun code name ->
        match Ablations.run ~jobs name with
        | Some table ->
          print_string table;
          print_newline ();
          code
        | None ->
          Printf.eprintf "unknown study %S (available: %s)\n" name
            (String.concat ", " Ablations.names);
          1)
      0 names

let studies_arg =
  Arg.(
    value & pos_all string []
    & info [] ~docv:"STUDY"
        ~doc:"Studies to run: quantum, threshold, network, migratory, \
              hlrc, scaling.  Default: all.")

let ablations_cmd =
  Cmd.v
    (Cmd.info "ablations"
       ~doc:
         "Sensitivity studies for the paper's fixed design choices \
          (ownership quantum, WG threshold, network model, processor \
          scaling) and the migratory-detection extension")
    Term.(const run_ablations $ studies_arg $ jobs_arg)

(* --- crash survivability study --- *)

let run_survive tiny nprocs apps jobs =
  let apps = match apps with [] -> None | l -> Some l in
  match
    Experiments.survivability ?apps ~scale:(scale_of_tiny tiny) ~nprocs ~jobs
      ()
  with
  | table ->
    print_string table;
    0
  | exception Invalid_argument msg ->
    (* A checksum divergence under crashes is the one way this study
       can fail; surface it as a non-zero exit for CI. *)
    Printf.eprintf "%s\n" msg;
    1

let survive_cmd =
  Cmd.v
    (Cmd.info "survive"
       ~doc:
         "Crash-survivability study (the EXPERIMENTS.md appendix): run \
          SOR, IS and Water under MW, SW and WFS with 1 and 2 \
          mid-computation node crashes, verify every checksum against \
          the fault-free run, and report completion-time and traffic \
          overheads")
    Term.(const run_survive $ tiny_arg $ procs_arg $ apps_arg $ jobs_arg)

(* --- cross-protocol verification --- *)

let run_verify app_name tiny nprocs jobs =
  match Registry.find app_name with
  | None ->
    Printf.eprintf "unknown application %S; try `adsm_run list'\n" app_name;
    1
  | Some app ->
    let scale = scale_of_tiny tiny in
    (* The sequential reference and every protocol run are independent,
       so they all go through the pool in one batch. *)
    let cells =
      (Config.Sw, 1)
      :: List.map (fun p -> (p, nprocs)) Config.extended_protocols
    in
    let checksums =
      Pool.map ~jobs
        (fun (protocol, nprocs) ->
          (Runner.run ~app ~protocol ~nprocs ~scale ()).Runner.checksum)
        cells
    in
    let reference, values =
      match checksums with
      | r :: vs -> (r, vs)
      | [] -> assert false
    in
    Printf.printf "%s: sequential checksum %h\n" app.Registry.name reference;
    let failures = ref 0 in
    List.iter2
      (fun protocol value ->
        let ok = value = reference in
        if not ok then incr failures;
        Printf.printf "  %-8s %dp  %s\n"
          (Config.protocol_name protocol)
          nprocs
          (if ok then "ok" else Printf.sprintf "MISMATCH (%h)" value))
      Config.extended_protocols values;
    if !failures = 0 then begin
      Printf.printf "all protocols agree bit-for-bit\n";
      0
    end
    else begin
      Printf.printf "%d protocol(s) diverged\n" !failures;
      1
    end

let verify_cmd =
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Check that every protocol (including HLRC) produces a \
          bit-identical result for an application — the first thing to \
          run after porting a new application to the DSM API")
    Term.(const run_verify $ app_arg $ tiny_arg $ procs_arg $ jobs_arg)

let main =
  Cmd.group
    (Cmd.info "adsm_run" ~version:"1.0"
       ~doc:
         "Adaptive software DSM (WFS / WFS+WG) protocol simulator - \
          reproduction of Amza et al., HPCA 1997")
    [
      run_cmd; experiments_cmd; scaling_cmd; ablations_cmd; verify_cmd;
      fuzz_cmd; survive_cmd; list_cmd;
    ]

let () = exit (Cmd.eval' main)
