(* Command-line driver: run applications under the DSM protocols and
   regenerate the paper's tables and figures.

     adsm_run run --app SOR --protocol WFS --procs 8
     adsm_run experiments [--tiny] [--procs 8] [--app SOR --app IS ...]
     adsm_run list
*)

open Cmdliner
module Config = Adsm_dsm.Config
module Registry = Adsm_apps.Registry
module Runner = Adsm_harness.Runner
module Experiments = Adsm_harness.Experiments

let scale_of_tiny tiny = if tiny then Registry.Tiny else Registry.Default

(* --- run one configuration --- *)

let run_one app_name protocol_name nprocs tiny seed trace_file trace_format =
  match Registry.find app_name with
  | None ->
    Printf.eprintf "unknown application %S; try `adsm_run list'\n" app_name;
    1
  | Some app -> (
    match Config.protocol_of_string protocol_name with
    | None ->
      Printf.eprintf
        "unknown protocol %S (MW, SW, WFS, WFS+WG, HLRC)\n"
        protocol_name;
      1
    | Some protocol -> (
      let scale = scale_of_tiny tiny in
      let module Trace = Adsm_trace in
      match
        match trace_file with
        | None -> Ok None
        | Some path -> (
          try
            Ok
              (Some
                 (Trace.Tracer.create
                    [ Trace.Sink.file trace_format ~nodes:nprocs path ]))
          with Sys_error msg -> Error msg)
      with
      | Error msg ->
        Printf.eprintf "cannot open trace file: %s\n" msg;
        1
      | Ok tracer ->
      let m =
        Runner.run ?tracer ~seed:(Int64.of_int seed) ~app ~protocol ~nprocs
          ~scale ()
      in
      (match (tracer, trace_file) with
      | Some tracer, Some path ->
        Trace.Tracer.close tracer;
        Printf.printf "wrote %d trace events to %s\n"
          (Trace.Tracer.emitted tracer)
          path
      | _ -> ());
      let speedup = Runner.speedup m in
      Printf.printf "%s under %s on %d processor(s) [%s scale]\n"
        m.Runner.app
        (Config.protocol_name protocol)
        nprocs
        (match scale with Registry.Tiny -> "tiny" | Registry.Default -> "default");
      Printf.printf "  simulated time   %.3f ms\n"
        (float_of_int m.Runner.time_ns /. 1e6);
      Printf.printf "  speedup          %.2f\n" speedup;
      Printf.printf "  messages         %d\n" m.Runner.messages;
      Printf.printf "  data             %.2f MB\n"
        (float_of_int m.Runner.data_bytes /. 1_048_576.);
      Printf.printf "  ownership reqs   %d (refused %d)\n" m.Runner.own_requests
        m.Runner.own_refusals;
      Printf.printf "  twins/diffs      %d / %d (%.2f MB)\n"
        m.Runner.twins_created m.Runner.diffs_created
        (float_of_int (m.Runner.twin_bytes + m.Runner.diff_bytes)
        /. 1_048_576.);
      Printf.printf "  faults           %d read, %d write\n"
        m.Runner.read_faults m.Runner.write_faults;
      Printf.printf "  GC runs          %d\n" m.Runner.gc_runs;
      Printf.printf "  checksum         %.6f\n" m.Runner.checksum;
      0))

(* --- the full experiment suite --- *)

let run_experiments tiny nprocs apps out =
  let apps = match apps with [] -> None | l -> Some l in
  match out with
  | None ->
    print_string
      (Experiments.run_all ?apps ~scale:(scale_of_tiny tiny) ~nprocs ());
    0
  | Some dir ->
    let suite =
      Experiments.collect ?apps ~scale:(scale_of_tiny tiny) ~nprocs ()
    in
    let written = Experiments.export_csv suite ~dir in
    List.iter (Printf.printf "wrote %s\n") written;
    0

let list_apps () =
  List.iter
    (fun (e : Registry.entry) ->
      Printf.printf "%-8s sync=%-4s default=%s\n" e.Registry.name
        e.Registry.sync
        (e.Registry.data_desc Registry.Default))
    Registry.all;
  0

(* --- cmdliner wiring --- *)

let app_arg =
  Arg.(value & opt string "SOR" & info [ "app"; "a" ] ~doc:"Application name.")

let protocol_arg =
  Arg.(
    value & opt string "WFS"
    & info [ "protocol"; "p" ] ~doc:"Protocol: MW, SW, WFS or WFS+WG.")

let procs_arg =
  Arg.(value & opt int 8 & info [ "procs"; "n" ] ~doc:"Simulated processors.")

let tiny_arg =
  Arg.(value & flag & info [ "tiny" ] ~doc:"Use tiny (test-size) inputs.")

let seed_arg =
  Arg.(value & opt int 0x5EED & info [ "seed" ] ~doc:"Simulation seed.")

let apps_arg =
  Arg.(
    value & opt_all string []
    & info [ "app"; "a" ] ~doc:"Restrict to this application (repeatable).")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Write the structured protocol event trace (faults, \
              twins/diffs, mode transitions, ownership, synchronization, \
              messages) to $(docv).  See TRACING.md.")

let trace_format_arg =
  let fmt =
    Arg.enum
      [ ("jsonl", Adsm_trace.Sink.Jsonl); ("chrome", Adsm_trace.Sink.Chrome) ]
  in
  Arg.(
    value
    & opt fmt Adsm_trace.Sink.Jsonl
    & info [ "trace-format" ] ~docv:"FMT"
        ~doc:"Trace file format: $(b,jsonl) (one event per line) or \
              $(b,chrome) (Chrome trace_event JSON, loadable in Perfetto).")

let run_cmd =
  Cmd.v (Cmd.info "run" ~doc:"Run one application under one protocol")
    Term.(
      const run_one $ app_arg $ protocol_arg $ procs_arg $ tiny_arg $ seed_arg
      $ trace_arg $ trace_format_arg)

let out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "out"; "o" ] ~docv:"DIR"
        ~doc:"Write machine-readable CSV files into $(docv) instead of \
              printing tables.")

let experiments_cmd =
  Cmd.v
    (Cmd.info "experiments"
       ~doc:"Regenerate every table and figure of the paper")
    Term.(const run_experiments $ tiny_arg $ procs_arg $ apps_arg $ out_arg)

let list_cmd =
  Cmd.v (Cmd.info "list" ~doc:"List the available applications")
    Term.(const list_apps $ const ())

let run_ablations studies =
  let module Ablations = Adsm_harness.Ablations in
  match studies with
  | [] ->
    print_string (Ablations.run_all ());
    0
  | names ->
    List.fold_left
      (fun code name ->
        match Ablations.run name with
        | Some table ->
          print_string table;
          print_newline ();
          code
        | None ->
          Printf.eprintf "unknown study %S (available: %s)\n" name
            (String.concat ", " Ablations.names);
          1)
      0 names

let studies_arg =
  Arg.(
    value & pos_all string []
    & info [] ~docv:"STUDY"
        ~doc:"Studies to run: quantum, threshold, network, migratory, \
              hlrc, scaling.  Default: all.")

let ablations_cmd =
  Cmd.v
    (Cmd.info "ablations"
       ~doc:
         "Sensitivity studies for the paper's fixed design choices \
          (ownership quantum, WG threshold, network model, processor \
          scaling) and the migratory-detection extension")
    Term.(const run_ablations $ studies_arg)

(* --- cross-protocol verification --- *)

let run_verify app_name tiny nprocs =
  match Registry.find app_name with
  | None ->
    Printf.eprintf "unknown application %S; try `adsm_run list'\n" app_name;
    1
  | Some app ->
    let scale = scale_of_tiny tiny in
    let checksum protocol nprocs =
      (Runner.run ~app ~protocol ~nprocs ~scale ()).Runner.checksum
    in
    let reference = checksum Config.Sw 1 in
    Printf.printf "%s: sequential checksum %h\n" app.Registry.name reference;
    let failures = ref 0 in
    List.iter
      (fun protocol ->
        let value = checksum protocol nprocs in
        let ok = value = reference in
        if not ok then incr failures;
        Printf.printf "  %-8s %dp  %s\n"
          (Config.protocol_name protocol)
          nprocs
          (if ok then "ok" else Printf.sprintf "MISMATCH (%h)" value))
      Config.extended_protocols;
    if !failures = 0 then begin
      Printf.printf "all protocols agree bit-for-bit\n";
      0
    end
    else begin
      Printf.printf "%d protocol(s) diverged\n" !failures;
      1
    end

let verify_cmd =
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Check that every protocol (including HLRC) produces a \
          bit-identical result for an application — the first thing to \
          run after porting a new application to the DSM API")
    Term.(const run_verify $ app_arg $ tiny_arg $ procs_arg)

let main =
  Cmd.group
    (Cmd.info "adsm_run" ~version:"1.0"
       ~doc:
         "Adaptive software DSM (WFS / WFS+WG) protocol simulator - \
          reproduction of Amza et al., HPCA 1997")
    [ run_cmd; experiments_cmd; ablations_cmd; verify_cmd; list_cmd ]

let () = exit (Cmd.eval' main)
