type t = {
  mutable clock : int;
  mutable next_seq : int;
  mutable executed : int;
  queue : (unit -> unit) Eheap.t;
  lane_count : int;
  mutable current_lane : int;
      (* lane of the event being executed; events scheduled without an
         explicit lane inherit it, so work a node's handler spawns stays
         on that node's lane *)
  tiebreak : int -> int;
  mutable probe : (time:int -> executed:int -> unit) option;
}

(* SplitMix64 finalizer: a bijection on 64-bit integers, used to permute
   same-instant event ordering deterministically from a seed. *)
let mix64 seed z =
  let z = Int64.add (Int64.of_int z) seed in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  Int64.to_int (Int64.shift_right_logical z 2)

let create ?schedule_seed ?(lanes = 1) () =
  if lanes <= 0 then invalid_arg "Engine.create: lanes must be positive";
  let tiebreak =
    match schedule_seed with
    | None -> Fun.id
    | Some seed -> mix64 (Int64.of_int seed)
  in
  {
    clock = 0;
    next_seq = 0;
    executed = 0;
    queue = Eheap.create ~lanes ();
    lane_count = lanes;
    current_lane = 0;
    tiebreak;
    probe = None;
  }

let lanes t = t.lane_count

let set_probe t probe = t.probe <- probe

let now t = t.clock

let schedule_at ?lane t ~time f =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %d is before now %d" time
         t.clock);
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  (* Lane routing is a cost-locality hint only: the heap pops in global
     (time, seq) order whatever the lane, so a 1-lane engine and an
     n-lane engine run byte-identical simulations. *)
  let lane =
    if t.lane_count = 1 then 0
    else
      match lane with
      | Some l ->
        if l < 0 || l >= t.lane_count then
          invalid_arg "Engine.schedule_at: lane out of range";
        l
      | None -> t.current_lane
  in
  Eheap.push ~lane t.queue ~time ~seq:(t.tiebreak seq) f

let schedule ?lane t ~delay f =
  if delay < 0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at ?lane t ~time:(t.clock + delay) f

let run t =
  (* Allocation-free event loop: read the key, then pop just the value —
     no [Some (time, seq, f)] box per event. *)
  let q = t.queue in
  let multi = t.lane_count > 1 in
  let rec loop () =
    if Eheap.is_empty q then t.clock
    else begin
      let time = Eheap.min_time_exn q in
      if multi then t.current_lane <- Eheap.min_lane q;
      let f = Eheap.pop_min_exn q in
      t.clock <- time;
      t.executed <- t.executed + 1;
      (match t.probe with
      | None -> ()
      | Some probe -> probe ~time ~executed:t.executed);
      f ();
      loop ()
    end
  in
  loop ()

let events_executed t = t.executed

let ns x = x
let us x = x * 1_000
let ms x = x * 1_000_000
let us_of_ns x = float_of_int x /. 1_000.
