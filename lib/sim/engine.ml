(* Discrete-event engine with two execution modes sharing one event
   vocabulary:

   - Sequential (the historical engine): one thread drains the [Eheap]
     in global (time, seq) order.  This path is allocation-free per
     event and byte-identical to every release since PR 4.

   - Parallel (conservative, safe-horizon): lanes are partitioned over
     OCaml 5 domains — round-robin initially, then rebalanced by cost
     (see "Load balancing" below).  Execution alternates between two
     phases:

       window  Every domain executes its own lanes' events up to a
               global safe horizon H = T_min + lookahead, where T_min
               is the earliest pending event anywhere and [lookahead]
               is a static lower bound on cross-lane influence delay
               (the minimum network latency — see Topology.lookahead_ns).
               Inside a window an event may only touch its own domain's
               lanes; anything with a cross-domain (or otherwise
               globally ordered) effect is journaled via [defer] or a
               [schedule] journal entry instead of being performed.

       walk    One thread (the caller of [run]) merges the domains'
               per-window execution logs back into the exact global
               (time, seq) order and replays each event's journal in
               that order: deferred effects run, and journaled schedule
               calls are assigned their final sequence numbers from the
               global counter — exactly the numbers the sequential
               engine would have handed out.  New cross-window events
               land in the owning domain's heap for the next window.

     Determinism argument (the full contract lives in PARALLELISM.md):
     cross-lane influence travels only through deferred effects, which
     schedule at time >= T_min + lookahead = H, so no event executed in
     a window (all < H) can be affected by one; within a domain the
     window executes main-heap events and same-window children in
     merged (time, key) order with main-heap events winning ties, which
     is the sequential order restricted to that domain because every
     pre-window seq is smaller than every seq assigned during the walk;
     and the walk's merge therefore reproduces the global sequential
     order, making the replayed seq assignment, clock, probe stream and
     deferred side effects identical to the sequential engine's.

     Load balancing.  The lane->domain assignment is DATA, not a
     formula: [p_lane_dom]/[p_lane_local] map a global lane to its
     owning domain and its index in that domain's heap, and each domain
     counts the events it executes per lane.  Between windows — a full
     quiescence point: the workers are parked on the phase condition,
     every pending event sits in some domain's main heap with its final
     (time, seq) key, and no provisional children survive the walk —
     the coordinator periodically repartitions the lanes across domains
     by LPT (longest processing time first) on the accumulated costs
     and migrates the pending events into the new owners' heaps.  The
     keys never change, and the walk merges by (time, seq) regardless
     of which domain executed what, so the assignment is invisible to
     the simulation: it only moves wall-clock work between threads.

     Handshake batching.  A window in which at most one domain has any
     event below the horizon (the common shape for lock-chain phases,
     which serialize by construction) is executed by the coordinator
     thread directly on the active domain's state — no broadcast, no
     condition-variable round trip.  Consecutive such windows therefore
     run back-to-back on one thread at sequential-engine cost instead
     of paying a coordinator handshake each. *)

type jitem =
  | Jdef of (unit -> unit)  (* deferred side effect, replayed in the walk *)
  | Jsched of pev  (* schedule call made inside a window *)

(* A provisionally scheduled event: created inside a window, keyed there
   by domain-local scheduling order ([d_prov]), and given its final
   global [seq] when the walk replays the scheduling call. *)
and pev = {
  pv_time : int;
  pv_lane : int;
  pv_fn : unit -> unit;
  mutable pv_seq : int;  (* final seq; -1 until the walk assigns it *)
  mutable pv_ran : bool;  (* executed inside the same window *)
}

(* One executed event in a domain's window log. *)
type xev = {
  x_time : int;
  x_lane : int;
  x_seq : int;  (* final seq for heap events; -1 for same-window children *)
  x_pev : pev option;  (* the child record, holding its walk-assigned seq *)
  x_journal : jitem list;  (* in call order *)
}

let dummy_xev =
  { x_time = 0; x_lane = 0; x_seq = 0; x_pev = None; x_journal = [] }

(* Per-domain state.  The main heap holds events with final sequence
   numbers; only the coordinator thread pushes into it (setup, walk and
   repartition) and only the owning domain pops from it (windows) — the
   phase handshake orders the two.  [d_lanes] maps the heap's local
   lane indices back to global lanes; it and [d_main] are replaced
   together when the coordinator repartitions. *)
type dstate = {
  d_index : int;
  mutable d_main : (unit -> unit) Eheap.t;
  mutable d_lanes : int array;  (* local lane index -> global lane *)
  d_kids : pev Eheap.t;  (* same-window children, keyed (time, d_prov) *)
  mutable d_prov : int;  (* domain-local provisional counter, per window *)
  mutable d_exec : xev array;  (* window execution log, read by the walk *)
  mutable d_exec_len : int;
}

type par = {
  p_domains : int;
  p_lookahead : int;
  p_dstates : dstate array;
  p_lane_dom : int array;  (* global lane -> owning domain *)
  p_lane_local : int array;  (* global lane -> local index in that domain *)
  p_lane_cost : int array;  (* events executed per lane since last decay *)
  p_mutex : Mutex.t;
  p_start : Condition.t;  (* coordinator -> workers: window open *)
  p_done : Condition.t;  (* workers -> coordinator: window complete *)
  mutable p_epoch : int;
  mutable p_horizon : int;
  mutable p_pending : int;
  mutable p_stop : bool;
  mutable p_in_walk : bool;
  mutable p_exn : (exn * Printexc.raw_backtrace) option;
  mutable p_windows : int;  (* windows since the last repartition check *)
  mutable p_reparts : int;  (* repartitions performed *)
  mutable p_batched : int;  (* windows run without a coordinator handshake *)
}

(* Window execution context, domain-local.  Present in a domain's DLS
   exactly while that domain is executing a window. *)
type wctx = {
  w_ds : dstate;
  w_domains : int;
  w_horizon : int;
  mutable w_clock : int;
  mutable w_lane : int;
  mutable w_journal : jitem list;  (* current event's journal, reversed *)
}

let wkey : wctx option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

type t = {
  mutable clock : int;
  mutable next_seq : int;
  mutable executed : int;
  queue : (unit -> unit) Eheap.t;
  lane_count : int;
  mutable current_lane : int;
      (* lane of the event being executed; events scheduled without an
         explicit lane inherit it, so work a node's handler spawns stays
         on that node's lane *)
  tiebreak : int -> int;
  mutable probe : (time:int -> executed:int -> unit) option;
  par : par option;
}

(* SplitMix64 finalizer: a bijection on 64-bit integers, used to permute
   same-instant event ordering deterministically from a seed. *)
let mix64 seed z =
  let z = Int64.add (Int64.of_int z) seed in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  Int64.to_int (Int64.shift_right_logical z 2)

(* The lane->domain assignment is table-driven; [create] deals the
   lanes round-robin (domain of lane l is l mod domains) and the
   repartitioner rewrites the tables later. *)
let domain_of_lane p lane = p.p_lane_dom.(lane)

let local_of_lane p lane = p.p_lane_local.(lane)

let local_lanes ~lanes ~domains index =
  if lanes <= index then 1 else ((lanes - index - 1) / domains) + 1

let create ?schedule_seed ?(lanes = 1) ?parallel () =
  if lanes <= 0 then invalid_arg "Engine.create: lanes must be positive";
  let tiebreak =
    match schedule_seed with
    | None -> Fun.id
    | Some seed -> mix64 (Int64.of_int seed)
  in
  let par =
    match parallel with
    | None -> None
    | Some (domains, lookahead) ->
      if domains <= 0 then
        invalid_arg "Engine.create: parallel domains must be positive";
      let domains = min domains lanes in
      if domains <= 1 then None
      else begin
        if schedule_seed <> None then
          invalid_arg
            "Engine.create: schedule fuzzing permutes sequence numbers and \
             is incompatible with the parallel engine";
        if lookahead <= 0 then
          invalid_arg "Engine.create: parallel lookahead must be positive";
        Some
          {
            p_domains = domains;
            p_lookahead = lookahead;
            p_dstates =
              Array.init domains (fun i ->
                  let nlocal = local_lanes ~lanes ~domains i in
                  {
                    d_index = i;
                    d_main = Eheap.create ~lanes:nlocal ();
                    d_lanes =
                      Array.init nlocal (fun j -> (j * domains) + i);
                    d_kids = Eheap.create ();
                    d_prov = 0;
                    d_exec = [||];
                    d_exec_len = 0;
                  });
            p_lane_dom = Array.init lanes (fun l -> l mod domains);
            p_lane_local = Array.init lanes (fun l -> l / domains);
            p_lane_cost = Array.make lanes 0;
            p_mutex = Mutex.create ();
            p_start = Condition.create ();
            p_done = Condition.create ();
            p_epoch = 0;
            p_horizon = 0;
            p_pending = 0;
            p_stop = false;
            p_in_walk = false;
            p_exn = None;
            p_windows = 0;
            p_reparts = 0;
            p_batched = 0;
          }
      end
  in
  {
    clock = 0;
    next_seq = 0;
    executed = 0;
    queue = Eheap.create ~lanes:(if par = None then lanes else 1) ();
    lane_count = lanes;
    current_lane = 0;
    tiebreak;
    probe = None;
    par;
  }

let lanes t = t.lane_count

let parallel_domains t =
  match t.par with None -> 1 | Some p -> p.p_domains

let is_parallel t = t.par <> None

let lookahead_window t =
  match t.par with None -> None | Some p -> Some p.p_lookahead

let set_probe t probe = t.probe <- probe

let[@inline never] now_par t =
  match Domain.DLS.get wkey with
  | Some w -> w.w_clock
  | None -> t.clock

let now t = match t.par with None -> t.clock | Some _ -> now_par t

let deferring t =
  match t.par with
  | None -> false
  | Some _ -> Domain.DLS.get wkey <> None

let defer t f =
  match t.par with
  | None -> f ()
  | Some _ -> (
    match Domain.DLS.get wkey with
    | Some w -> w.w_journal <- Jdef f :: w.w_journal
    | None -> f ())

let check_lane t lane =
  if lane < 0 || lane >= t.lane_count then
    invalid_arg "Engine.schedule_at: lane out of range"

(* Parallel-mode scheduling, two contexts:

   - inside a window (the domain's DLS carries a [wctx]): the target
     lane must belong to the executing domain — cross-domain effects
     must travel through [defer] (the network does).  The event is
     journaled; if it lands inside the current window it also enters
     the domain's child heap, keyed by domain-local scheduling order.

   - on the coordinator (setup before [run], or journal replay during a
     walk): the event receives its final global sequence number and
     goes straight to the owning domain's heap.  During a walk the
     event must not land below the horizon — every event below it has
     already executed, so a violation means the configured lookahead
     overstated the minimum cross-lane delay. *)
let[@inline never] schedule_par ?lane t p ~time f =
  match Domain.DLS.get wkey with
  | Some w ->
    if time < w.w_clock then
      invalid_arg
        (Printf.sprintf "Engine.schedule_at: time %d is before now %d" time
           w.w_clock);
    let lane =
      match lane with
      | Some l ->
        check_lane t l;
        l
      | None -> w.w_lane
    in
    if domain_of_lane p lane <> w.w_ds.d_index then
      invalid_arg
        "Engine.schedule_at: cross-domain schedule inside a parallel window \
         (cross-lane effects must go through the network or Engine.defer)";
    let pev =
      { pv_time = time; pv_lane = lane; pv_fn = f; pv_seq = -1; pv_ran = false }
    in
    w.w_journal <- Jsched pev :: w.w_journal;
    if time < w.w_horizon then begin
      let prov = w.w_ds.d_prov in
      w.w_ds.d_prov <- prov + 1;
      Eheap.push w.w_ds.d_kids ~time ~seq:prov pev
    end
  | None ->
    if time < t.clock then
      invalid_arg
        (Printf.sprintf "Engine.schedule_at: time %d is before now %d" time
           t.clock);
    let lane =
      match lane with
      | Some l ->
        check_lane t l;
        l
      | None -> t.current_lane
    in
    if p.p_in_walk && time < p.p_horizon then
      failwith
        (Printf.sprintf
           "Engine: deferred effect scheduled an event at %d below the safe \
            horizon %d — the lookahead overstates the minimum cross-lane \
            delay"
           time p.p_horizon);
    let seq = t.next_seq in
    t.next_seq <- seq + 1;
    let ds = p.p_dstates.(domain_of_lane p lane) in
    Eheap.push ~lane:(local_of_lane p lane) ds.d_main ~time ~seq f

let schedule_at ?lane t ~time f =
  match t.par with
  | Some p -> schedule_par ?lane t p ~time f
  | None ->
    if time < t.clock then
      invalid_arg
        (Printf.sprintf "Engine.schedule_at: time %d is before now %d" time
           t.clock);
    let seq = t.next_seq in
    t.next_seq <- seq + 1;
    (* Lane routing is a cost-locality hint only: the heap pops in global
       (time, seq) order whatever the lane, so a 1-lane engine and an
       n-lane engine run byte-identical simulations. *)
    let lane =
      if t.lane_count = 1 then 0
      else
        match lane with
        | Some l ->
          check_lane t l;
          l
        | None -> t.current_lane
    in
    Eheap.push ~lane t.queue ~time ~seq:(t.tiebreak seq) f

let schedule ?lane t ~delay f =
  if delay < 0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at ?lane t ~time:(now t + delay) f

(* ------------------------------------------------------------------ *)
(* Sequential run                                                     *)
(* ------------------------------------------------------------------ *)

let run_seq t =
  (* Allocation-free event loop: read the key, then pop just the value —
     no [Some (time, seq, f)] box per event. *)
  let q = t.queue in
  let multi = t.lane_count > 1 in
  let rec loop () =
    if Eheap.is_empty q then t.clock
    else begin
      let time = Eheap.min_time_exn q in
      if multi then t.current_lane <- Eheap.min_lane q;
      let f = Eheap.pop_min_exn q in
      t.clock <- time;
      t.executed <- t.executed + 1;
      (match t.probe with
      | None -> ()
      | Some probe -> probe ~time ~executed:t.executed);
      f ();
      loop ()
    end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Parallel run                                                       *)
(* ------------------------------------------------------------------ *)

let push_exec ds x =
  let n = ds.d_exec_len in
  if n = Array.length ds.d_exec then begin
    let grown = Array.make (max 64 (2 * n)) dummy_xev in
    Array.blit ds.d_exec 0 grown 0 n;
    ds.d_exec <- grown
  end;
  ds.d_exec.(n) <- x;
  ds.d_exec_len <- n + 1

(* Execute one domain's window: merged (time, key) order over the main
   heap (final seqs) and the child heap (provisional keys), main heap
   winning ties — every pre-window seq is smaller than every seq the
   walk will assign, so this IS the sequential order restricted to the
   domain's lanes. *)
let exec_window t p ds =
  let horizon = p.p_horizon in
  let w =
    {
      w_ds = ds;
      w_domains = p.p_domains;
      w_horizon = horizon;
      w_clock = t.clock;
      w_lane = 0;
      w_journal = [];
    }
  in
  Domain.DLS.set wkey (Some w);
  Fun.protect
    ~finally:(fun () -> Domain.DLS.set wkey None)
    (fun () ->
      let rec loop () =
        let tm =
          if Eheap.is_empty ds.d_main then max_int
          else Eheap.min_time_exn ds.d_main
        in
        let tk =
          if Eheap.is_empty ds.d_kids then max_int
          else Eheap.min_time_exn ds.d_kids
        in
        let time = if tm <= tk then tm else tk in
        if time < horizon then begin
          w.w_journal <- [];
          if tm <= tk then begin
            let local = Eheap.min_lane ds.d_main in
            match Eheap.pop_min ds.d_main with
            | None -> assert false
            | Some (time, seq, f) ->
              let lane = ds.d_lanes.(local) in
              w.w_clock <- time;
              w.w_lane <- lane;
              p.p_lane_cost.(lane) <- p.p_lane_cost.(lane) + 1;
              f ();
              push_exec ds
                {
                  x_time = time;
                  x_lane = lane;
                  x_seq = seq;
                  x_pev = None;
                  x_journal = List.rev w.w_journal;
                }
          end
          else begin
            match Eheap.pop_min ds.d_kids with
            | None -> assert false
            | Some (time, _prov, pev) ->
              pev.pv_ran <- true;
              w.w_clock <- time;
              w.w_lane <- pev.pv_lane;
              p.p_lane_cost.(pev.pv_lane) <- p.p_lane_cost.(pev.pv_lane) + 1;
              pev.pv_fn ();
              push_exec ds
                {
                  x_time = time;
                  x_lane = pev.pv_lane;
                  x_seq = -1;
                  x_pev = Some pev;
                  x_journal = List.rev w.w_journal;
                }
          end;
          loop ()
        end
      in
      loop ())

(* Merge the domains' window logs back into global (time, seq) order and
   replay each event's journal: assign final sequence numbers to
   journaled schedule calls (pushing not-yet-run events into their
   owning domain's heap) and run deferred effects.  A candidate's seq is
   always known when it reaches the front of its domain's log: a child's
   scheduling parent sits earlier in the same log, so its Jsched was
   already replayed. *)
let walk t p cursors =
  p.p_in_walk <- true;
  let ds = p.p_dstates in
  let nd = Array.length ds in
  Array.fill cursors 0 nd 0;
  let rec next () =
    let best_d = ref (-1) in
    let best_time = ref max_int in
    let best_seq = ref max_int in
    for d = 0 to nd - 1 do
      let s = ds.(d) in
      if cursors.(d) < s.d_exec_len then begin
        let x = s.d_exec.(cursors.(d)) in
        let seq =
          match x.x_pev with None -> x.x_seq | Some pv -> pv.pv_seq
        in
        if seq < 0 then
          failwith
            "Engine: walk reached an executed event with no assigned seq \
             (parallel determinism invariant violated)";
        if
          x.x_time < !best_time
          || (x.x_time = !best_time && seq < !best_seq)
        then begin
          best_d := d;
          best_time := x.x_time;
          best_seq := seq
        end
      end
    done;
    if !best_d >= 0 then begin
      let d = !best_d in
      let x = ds.(d).d_exec.(cursors.(d)) in
      cursors.(d) <- cursors.(d) + 1;
      t.clock <- x.x_time;
      t.current_lane <- x.x_lane;
      t.executed <- t.executed + 1;
      (match t.probe with
      | None -> ()
      | Some probe -> probe ~time:x.x_time ~executed:t.executed);
      List.iter
        (fun item ->
          match item with
          | Jsched pv ->
            let seq = t.next_seq in
            t.next_seq <- seq + 1;
            pv.pv_seq <- seq;
            if not pv.pv_ran then begin
              let target = p.p_dstates.(domain_of_lane p pv.pv_lane) in
              Eheap.push
                ~lane:(local_of_lane p pv.pv_lane)
                target.d_main ~time:pv.pv_time ~seq pv.pv_fn
            end
          | Jdef f -> f ())
        x.x_journal;
      next ()
    end
  in
  next ();
  Array.iter
    (fun s ->
      Array.fill s.d_exec 0 s.d_exec_len dummy_xev;
      s.d_exec_len <- 0;
      s.d_prov <- 0;
      if not (Eheap.is_empty s.d_kids) then
        failwith "Engine: window left same-window children unexecuted")
    ds;
  p.p_in_walk <- false

(* How many windows between repartition checks, and how lopsided the
   per-domain costs must be before a repartition is worth the event
   migration (max domain cost > 1.25x the mean). *)
let repart_interval = 64

let imbalanced dom_cost total nd = 4 * nd * Array.fold_left max 0 dom_cost > 5 * total

(* Repartition the lanes across domains by LPT on the accumulated
   per-lane costs, at full quiescence (between windows: workers parked,
   every pending event in a main heap under its final (time, seq) key,
   child heaps empty).  The events migrate to their lanes' new owners
   with their keys intact, so the walk's (time, seq) merge — and hence
   the simulation — is unchanged; only the wall-clock distribution of
   work moves.  Costs are halved afterwards so the balance tracks
   recent behavior rather than the whole run. *)
let repartition t p =
  let lanes = t.lane_count in
  let nd = p.p_domains in
  let dom_cost = Array.make nd 0 in
  for l = 0 to lanes - 1 do
    dom_cost.(p.p_lane_dom.(l)) <- dom_cost.(p.p_lane_dom.(l)) + p.p_lane_cost.(l)
  done;
  let total = Array.fold_left ( + ) 0 dom_cost in
  if total > 0 && imbalanced dom_cost total nd then begin
    (* LPT: heaviest lane first, each to the least-loaded domain
       (ties to the lowest index — fully deterministic).  Idle lanes
       count as 1 so they still spread across domains. *)
    let order = Array.init lanes Fun.id in
    Array.sort
      (fun a b ->
        let c = Int.compare p.p_lane_cost.(b) p.p_lane_cost.(a) in
        if c <> 0 then c else Int.compare a b)
      order;
    let load = Array.make nd 0 in
    let counts = Array.make nd 0 in
    let new_dom = Array.make lanes 0 in
    let new_local = Array.make lanes 0 in
    Array.iter
      (fun l ->
        let best = ref 0 in
        for d = 1 to nd - 1 do
          if load.(d) < load.(!best) then best := d
        done;
        let d = !best in
        new_dom.(l) <- d;
        new_local.(l) <- counts.(d);
        counts.(d) <- counts.(d) + 1;
        load.(d) <- load.(d) + max 1 p.p_lane_cost.(l))
      order;
    (* Rebuild each domain's heap and lane table, migrating pending
       events under their existing keys. *)
    let new_heaps =
      Array.init nd (fun d -> Eheap.create ~lanes:(max 1 counts.(d)) ())
    in
    let new_tables =
      Array.init nd (fun d -> Array.make (max 1 counts.(d)) 0)
    in
    for l = 0 to lanes - 1 do
      new_tables.(new_dom.(l)).(new_local.(l)) <- l
    done;
    Array.iter
      (fun ds ->
        let rec drain () =
          if not (Eheap.is_empty ds.d_main) then begin
            let local = Eheap.min_lane ds.d_main in
            match Eheap.pop_min ds.d_main with
            | None -> assert false
            | Some (time, seq, f) ->
              let l = ds.d_lanes.(local) in
              Eheap.push ~lane:new_local.(l)
                new_heaps.(new_dom.(l))
                ~time ~seq f;
              drain ()
          end
        in
        drain ())
      p.p_dstates;
    Array.iteri
      (fun d ds ->
        ds.d_main <- new_heaps.(d);
        ds.d_lanes <- new_tables.(d))
      p.p_dstates;
    Array.blit new_dom 0 p.p_lane_dom 0 lanes;
    Array.blit new_local 0 p.p_lane_local 0 lanes;
    p.p_reparts <- p.p_reparts + 1
  end;
  for l = 0 to lanes - 1 do
    p.p_lane_cost.(l) <- p.p_lane_cost.(l) / 2
  done

let record_exn p exn =
  let bt = Printexc.get_raw_backtrace () in
  Mutex.lock p.p_mutex;
  if p.p_exn = None then p.p_exn <- Some (exn, bt);
  Mutex.unlock p.p_mutex

let worker t p i =
  let rec loop last_epoch =
    Mutex.lock p.p_mutex;
    while p.p_epoch = last_epoch && not p.p_stop do
      Condition.wait p.p_start p.p_mutex
    done;
    let epoch = p.p_epoch in
    let stop = p.p_stop in
    Mutex.unlock p.p_mutex;
    if not stop then begin
      (try exec_window t p p.p_dstates.(i) with exn -> record_exn p exn);
      Mutex.lock p.p_mutex;
      p.p_pending <- p.p_pending - 1;
      if p.p_pending = 0 then Condition.signal p.p_done;
      Mutex.unlock p.p_mutex;
      loop epoch
    end
  in
  loop 0

let run_par t p =
  let nd = p.p_domains in
  let workers =
    Array.init (nd - 1) (fun i -> Domain.spawn (fun () -> worker t p (i + 1)))
  in
  let stopped = ref false in
  let stop_workers () =
    if not !stopped then begin
      stopped := true;
      Mutex.lock p.p_mutex;
      p.p_stop <- true;
      Condition.broadcast p.p_start;
      Mutex.unlock p.p_mutex;
      Array.iter Domain.join workers
    end
  in
  let cursors = Array.make nd 0 in
  let next_window_start () =
    Array.fold_left
      (fun acc s ->
        if Eheap.is_empty s.d_main then acc
        else
          let m = Eheap.min_time_exn s.d_main in
          if m < acc then m else acc)
      max_int p.p_dstates
  in
  let rec windows () =
    let t_min = next_window_start () in
    if t_min < max_int then begin
      p.p_horizon <- t_min + p.p_lookahead;
      (* Which domains have any event below the horizon?  When at most
         one does, skip the coordinator handshake entirely and run that
         domain's window on this thread — the parked workers would have
         found nothing to execute, and the next real handshake's mutex
         publishes our writes to them. *)
      let active = ref 0 in
      let active_d = ref 0 in
      Array.iter
        (fun s ->
          if
            (not (Eheap.is_empty s.d_main))
            && Eheap.min_time_exn s.d_main < p.p_horizon
          then begin
            incr active;
            active_d := s.d_index
          end)
        p.p_dstates;
      if !active <= 1 then begin
        p.p_batched <- p.p_batched + 1;
        (try exec_window t p p.p_dstates.(!active_d)
         with exn -> record_exn p exn)
      end
      else begin
        Mutex.lock p.p_mutex;
        p.p_epoch <- p.p_epoch + 1;
        p.p_pending <- nd - 1;
        Condition.broadcast p.p_start;
        Mutex.unlock p.p_mutex;
        (* The coordinator doubles as domain 0's worker. *)
        (try exec_window t p p.p_dstates.(0) with exn -> record_exn p exn);
        Mutex.lock p.p_mutex;
        while p.p_pending > 0 do
          Condition.wait p.p_done p.p_mutex
        done;
        Mutex.unlock p.p_mutex
      end;
      (match p.p_exn with
      | Some (exn, bt) ->
        stop_workers ();
        Printexc.raise_with_backtrace exn bt
      | None -> ());
      walk t p cursors;
      p.p_windows <- p.p_windows + 1;
      if p.p_windows >= repart_interval then begin
        p.p_windows <- 0;
        repartition t p
      end;
      windows ()
    end
  in
  (match windows () with
  | () -> stop_workers ()
  | exception exn ->
    let bt = Printexc.get_raw_backtrace () in
    stop_workers ();
    Printexc.raise_with_backtrace exn bt);
  t.clock

let run t = match t.par with None -> run_seq t | Some p -> run_par t p

let events_executed t = t.executed

let repartitions t = match t.par with None -> 0 | Some p -> p.p_reparts

let batched_windows t = match t.par with None -> 0 | Some p -> p.p_batched

let ns x = x
let us x = x * 1_000
let ms x = x * 1_000_000
let us_of_ns x = float_of_int x /. 1_000.
