(** Binary min-heap of timestamped events.

    Events are ordered by [(time, seq)]: [seq] is a monotonically increasing
    insertion counter supplied by the caller, so that events scheduled for the
    same simulated instant fire in insertion order.  This makes the whole
    simulation deterministic.

    The heap can be split into independent per-lane sub-heaps (one lane per
    simulated node, say) indexed by a small heap over the lanes' minima: a
    push or pop then costs O(log lane_size) instead of O(log total), so one
    hot lane cannot degrade operations for every idle one.  The pop order is
    the global [(time, seq)] order regardless of the lane split. *)

type 'a t

(** [create ?lanes ()] makes an empty heap.  [lanes] defaults to 1 — a
    classic single heap. *)
val create : ?lanes:int -> unit -> 'a t

(** Number of lanes the heap was created with. *)
val lanes : 'a t -> int

val length : 'a t -> int

val is_empty : 'a t -> bool

(** [push ?lane h ~time ~seq v] inserts [v] with priority [(time, seq)] into
    [lane] (default 0).  On a 1-lane heap [lane] is ignored; otherwise it
    must be within range.  The lane choice never affects pop order — only
    which sub-heap absorbs the sifting cost. *)
val push : ?lane:int -> 'a t -> time:int -> seq:int -> 'a -> unit

(** [pop_min h] removes and returns the event with the smallest [(time, seq)],
    or [None] when the heap is empty.  The heap drops every reference to the
    popped value. *)
val pop_min : 'a t -> (int * int * 'a) option

(** Allocation-free variant for the simulation inner loop: the value of the
    earliest event, which is removed.  Read {!min_time_exn} first if the
    event's time is needed.
    @raise Invalid_argument on an empty heap. *)
val pop_min_exn : 'a t -> 'a

(** The time of the earliest event, without removing it.
    @raise Invalid_argument on an empty heap. *)
val min_time_exn : 'a t -> int

(** The lane holding the earliest event.
    @raise Invalid_argument on an empty heap. *)
val min_lane : 'a t -> int

(** [peek_time h] is the time of the earliest event without removing it. *)
val peek_time : 'a t -> int option
