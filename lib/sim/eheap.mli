(** Binary min-heap of timestamped events.

    Events are ordered by [(time, seq)]: [seq] is a monotonically increasing
    insertion counter supplied by the caller, so that events scheduled for the
    same simulated instant fire in insertion order.  This makes the whole
    simulation deterministic. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

(** [push h ~time ~seq v] inserts [v] with priority [(time, seq)]. *)
val push : 'a t -> time:int -> seq:int -> 'a -> unit

(** [pop_min h] removes and returns the event with the smallest [(time, seq)],
    or [None] when the heap is empty.  The heap drops every reference to the
    popped value. *)
val pop_min : 'a t -> (int * int * 'a) option

(** Allocation-free variant for the simulation inner loop: the value of the
    earliest event, which is removed.  Read {!min_time_exn} first if the
    event's time is needed.
    @raise Invalid_argument on an empty heap. *)
val pop_min_exn : 'a t -> 'a

(** The time of the earliest event, without removing it.
    @raise Invalid_argument on an empty heap. *)
val min_time_exn : 'a t -> int

(** [peek_time h] is the time of the earliest event without removing it. *)
val peek_time : 'a t -> int option
