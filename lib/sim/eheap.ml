(* Packed binary min-heap, optionally split into per-lane sub-heaps.

   The heap is the simulator's hottest data structure: every simulated
   event passes through one push and one pop.  Keys are stored packed —
   [keys.(2i)] is the entry's time, [keys.(2i+1)] its sequence number —
   in a single unboxed int array, with the payloads in a parallel value
   array, so a push allocates nothing (the old representation boxed a
   4-word record per entry).  Sifting uses hole insertion: parents or
   children are shifted into the hole and the moving entry is written
   exactly once at its final slot, so each level costs one
   pointer-array write (one write barrier), not a two-slot swap.

   Indices are bounded by [size] by construction, so accesses use the
   unsafe array primitives; every index is derived from [size] or a
   parent/child of a checked one.

   The value array is an [Obj.t] array so the heap stays polymorphic
   without an ['a option] box per slot.  The [Obj] use is confined to
   this module: only values put in by [push] come back out, at the same
   type, and vacated slots are reset to an untyped unit sentinel.  Slots
   at indices >= size are always [nil], so a popped value is never kept
   reachable from the heap (a value retained here would be un-GC-able
   for the rest of the run).

   Lanes: with [create ~lanes:n] the heap is split into [n] independent
   sub-heaps plus a small index heap over the lanes' minima.  A push or
   pop then sifts within one lane — O(log lane_size) — plus an O(log n)
   fix-up of the lane index, so one hot lane (a busy simulated node)
   cannot degrade every other lane's operations.  The observable order
   is STILL the global [(time, seq)] order: the lane index is keyed by
   each lane's minimum, so [pop_min] always returns the global minimum
   regardless of which lane holds it.  A 1-lane heap skips the index
   entirely and is exactly the classic single heap. *)

type lane = {
  mutable keys : int array;  (* 2 cells per entry: time, seq *)
  mutable values : Obj.t array;
  mutable size : int;
}

type 'a t = {
  lanes : lane array;
  (* Index heap over non-empty lanes, ordered by the lane's root key.
     Only used when [Array.length lanes > 1].  A lane leaves the index
     when it empties (always at the index root, since only the global
     minimum's lane is ever popped) and re-enters on its next push. *)
  top : int array;
  mutable top_size : int;
  mutable total : int;
}

let nil = Obj.repr ()

let make_lane () = { keys = [||]; values = [||]; size = 0 }

let create ?(lanes = 1) () =
  if lanes <= 0 then invalid_arg "Eheap.create: lanes must be positive";
  {
    lanes = Array.init lanes (fun _ -> make_lane ());
    top = Array.make lanes 0;
    top_size = 0;
    total = 0;
  }

let lanes h = Array.length h.lanes

let length h = h.total

let is_empty h = h.total = 0

let grow l =
  let cap = Array.length l.values in
  let cap' = if cap = 0 then 64 else cap * 2 in
  let keys' = Array.make (2 * cap') 0 in
  let values' = Array.make cap' nil in
  Array.blit l.keys 0 keys' 0 (2 * l.size);
  Array.blit l.values 0 values' 0 l.size;
  l.keys <- keys';
  l.values <- values'

let lane_push l ~time ~seq value =
  if l.size = Array.length l.values then grow l;
  let keys = l.keys and values = l.values in
  let v = Obj.repr value in
  (* Sift up: shift preceded parents down into the hole, then write the
     new entry once. *)
  let i = ref l.size in
  l.size <- l.size + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    let pt = Array.unsafe_get keys (2 * parent) in
    let ps = Array.unsafe_get keys ((2 * parent) + 1) in
    if time < pt || (time = pt && seq < ps) then begin
      Array.unsafe_set keys (2 * !i) pt;
      Array.unsafe_set keys ((2 * !i) + 1) ps;
      Array.unsafe_set values !i (Array.unsafe_get values parent);
      i := parent
    end
    else continue := false
  done;
  Array.unsafe_set keys (2 * !i) time;
  Array.unsafe_set keys ((2 * !i) + 1) seq;
  Array.unsafe_set values !i v

(* Remove the root: take the last entry out, clear its slot (so the
   popped value is not retained by the heap), and sift it down from the
   root — shifting preceding children up into the hole and writing the
   entry once at its final position. *)
let lane_remove_min l =
  let n = l.size - 1 in
  l.size <- n;
  let keys = l.keys and values = l.values in
  if n = 0 then Array.unsafe_set values 0 nil
  else begin
    let time = Array.unsafe_get keys (2 * n) in
    let seq = Array.unsafe_get keys ((2 * n) + 1) in
    let v = Array.unsafe_get values n in
    Array.unsafe_set values n nil;
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l' = (2 * !i) + 1 in
      if l' >= n then continue := false
      else begin
        (* smallest child of the hole *)
        let lt = Array.unsafe_get keys (2 * l') in
        let ls = Array.unsafe_get keys ((2 * l') + 1) in
        let r = l' + 1 in
        let c, ct, cs =
          if r < n then begin
            let rt = Array.unsafe_get keys (2 * r) in
            let rs = Array.unsafe_get keys ((2 * r) + 1) in
            if rt < lt || (rt = lt && rs < ls) then (r, rt, rs)
            else (l', lt, ls)
          end
          else (l', lt, ls)
        in
        if ct < time || (ct = time && cs < seq) then begin
          Array.unsafe_set keys (2 * !i) ct;
          Array.unsafe_set keys ((2 * !i) + 1) cs;
          Array.unsafe_set values !i (Array.unsafe_get values c);
          i := c
        end
        else continue := false
      end
    done;
    Array.unsafe_set keys (2 * !i) time;
    Array.unsafe_set keys ((2 * !i) + 1) seq;
    Array.unsafe_set values !i v
  end

(* --- lane index maintenance (multi-lane heaps only) --- *)

(* Compare two lanes by their root keys.  Both lanes are non-empty by
   construction (only lanes in the index are compared). *)
let lane_before (a : lane) (b : lane) =
  let at = Array.unsafe_get a.keys 0 and bt = Array.unsafe_get b.keys 0 in
  at < bt
  || (at = bt && Array.unsafe_get a.keys 1 < Array.unsafe_get b.keys 1)

let top_sift_up h i0 =
  let top = h.top and lanes = h.lanes in
  let i = ref i0 in
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if lane_before lanes.(top.(!i)) lanes.(top.(parent)) then begin
      let tmp = top.(!i) in
      top.(!i) <- top.(parent);
      top.(parent) <- tmp;
      i := parent
    end
    else continue := false
  done

let top_sift_down h =
  let top = h.top and lanes = h.lanes in
  let n = h.top_size in
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 in
    if l >= n then continue := false
    else begin
      let c =
        if l + 1 < n && lane_before lanes.(top.(l + 1)) lanes.(top.(l)) then
          l + 1
        else l
      in
      if lane_before lanes.(top.(c)) lanes.(top.(!i)) then begin
        let tmp = top.(!i) in
        top.(!i) <- top.(c);
        top.(c) <- tmp;
        i := c
      end
      else continue := false
    end
  done

(* Find the index-heap slot of [lane] by scanning.  Only called on the
   push path when the pushed entry became its lane's new minimum, which
   needs an upward fix from the lane's slot.  The scan is O(lanes); to
   stay O(log lanes) we instead only ever fix from wherever the lane
   sits, found by linear search — but since pushes that change a lane
   minimum are rare (most pushes land mid-heap), the search cost is
   negligible against the per-event work it replaces.  [top_size] is at
   most the lane count (<= node count). *)
let top_slot_of h lane =
  let rec go i = if h.top.(i) = lane then i else go (i + 1) in
  go 0

let push ?(lane = 0) h ~time ~seq value =
  let nlanes = Array.length h.lanes in
  if nlanes = 1 then begin
    lane_push h.lanes.(0) ~time ~seq value;
    h.total <- h.total + 1
  end
  else begin
    if lane < 0 || lane >= nlanes then
      invalid_arg "Eheap.push: lane out of range";
    let l = h.lanes.(lane) in
    let was_empty = l.size = 0 in
    let old_t = if was_empty then 0 else Array.unsafe_get l.keys 0 in
    let old_s = if was_empty then 0 else Array.unsafe_get l.keys 1 in
    lane_push l ~time ~seq value;
    h.total <- h.total + 1;
    if was_empty then begin
      h.top.(h.top_size) <- lane;
      h.top_size <- h.top_size + 1;
      top_sift_up h (h.top_size - 1)
    end
    else if time < old_t || (time = old_t && seq < old_s) then
      (* The lane's minimum decreased: fix the index upward from the
         lane's current slot. *)
      top_sift_up h (top_slot_of h lane)
  end

(* Pop the global minimum's lane root and repair the index: the popped
   lane is always at the index root, so the repair is a sift-down (its
   key grew) or a root deletion (it emptied). *)
let multi_after_pop h =
  let lane = h.top.(0) in
  if h.lanes.(lane).size = 0 then begin
    h.top_size <- h.top_size - 1;
    if h.top_size > 0 then begin
      h.top.(0) <- h.top.(h.top_size);
      top_sift_down h
    end
  end
  else top_sift_down h

let pop_min (type a) (h : a t) =
  if h.total = 0 then None
  else begin
    let l =
      if Array.length h.lanes = 1 then h.lanes.(0) else h.lanes.(h.top.(0))
    in
    let time = l.keys.(0) and seq = l.keys.(1) in
    let v : a = Obj.obj l.values.(0) in
    lane_remove_min l;
    h.total <- h.total - 1;
    if Array.length h.lanes > 1 then multi_after_pop h;
    Some (time, seq, v)
  end

let min_time_exn h =
  if h.total = 0 then invalid_arg "Eheap.min_time_exn: empty heap";
  if Array.length h.lanes = 1 then h.lanes.(0).keys.(0)
  else h.lanes.(h.top.(0)).keys.(0)

let min_lane h =
  if h.total = 0 then invalid_arg "Eheap.min_lane: empty heap";
  if Array.length h.lanes = 1 then 0 else h.top.(0)

let pop_min_exn (type a) (h : a t) =
  if h.total = 0 then invalid_arg "Eheap.pop_min_exn: empty heap";
  let l =
    if Array.length h.lanes = 1 then h.lanes.(0) else h.lanes.(h.top.(0))
  in
  let v : a = Obj.obj l.values.(0) in
  lane_remove_min l;
  h.total <- h.total - 1;
  if Array.length h.lanes > 1 then multi_after_pop h;
  v

let peek_time h =
  if h.total = 0 then None
  else if Array.length h.lanes = 1 then Some h.lanes.(0).keys.(0)
  else Some h.lanes.(h.top.(0)).keys.(0)
