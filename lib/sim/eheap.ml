(* Packed binary min-heap.

   The heap is the simulator's hottest data structure: every simulated
   event passes through one push and one pop.  Keys are stored packed —
   [keys.(2i)] is the entry's time, [keys.(2i+1)] its sequence number —
   in a single unboxed int array, with the payloads in a parallel value
   array, so a push allocates nothing (the old representation boxed a
   4-word record per entry).  Sifting uses hole insertion: parents or
   children are shifted into the hole and the moving entry is written
   exactly once at its final slot, so each level costs one
   pointer-array write (one write barrier), not a two-slot swap.

   Indices are bounded by [size] by construction, so accesses use the
   unsafe array primitives; every index is derived from [size] or a
   parent/child of a checked one.

   The value array is an [Obj.t] array so the heap stays polymorphic
   without an ['a option] box per slot.  The [Obj] use is confined to
   this module: only values put in by [push] come back out, at the same
   type, and vacated slots are reset to an untyped unit sentinel.  Slots
   at indices >= size are always [nil], so a popped value is never kept
   reachable from the heap (a value retained here would be un-GC-able
   for the rest of the run). *)

type 'a t = {
  mutable keys : int array;  (* 2 cells per entry: time, seq *)
  mutable values : Obj.t array;
  mutable size : int;
}

let nil = Obj.repr ()

let create () = { keys = [||]; values = [||]; size = 0 }

let length h = h.size

let is_empty h = h.size = 0

let grow h =
  let cap = Array.length h.values in
  let cap' = if cap = 0 then 64 else cap * 2 in
  let keys' = Array.make (2 * cap') 0 in
  let values' = Array.make cap' nil in
  Array.blit h.keys 0 keys' 0 (2 * h.size);
  Array.blit h.values 0 values' 0 h.size;
  h.keys <- keys';
  h.values <- values'

let push h ~time ~seq value =
  if h.size = Array.length h.values then grow h;
  let keys = h.keys and values = h.values in
  let v = Obj.repr value in
  (* Sift up: shift preceded parents down into the hole, then write the
     new entry once. *)
  let i = ref h.size in
  h.size <- h.size + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    let pt = Array.unsafe_get keys (2 * parent) in
    let ps = Array.unsafe_get keys ((2 * parent) + 1) in
    if time < pt || (time = pt && seq < ps) then begin
      Array.unsafe_set keys (2 * !i) pt;
      Array.unsafe_set keys ((2 * !i) + 1) ps;
      Array.unsafe_set values !i (Array.unsafe_get values parent);
      i := parent
    end
    else continue := false
  done;
  Array.unsafe_set keys (2 * !i) time;
  Array.unsafe_set keys ((2 * !i) + 1) seq;
  Array.unsafe_set values !i v

(* Remove the root: take the last entry out, clear its slot (so the
   popped value is not retained by the heap), and sift it down from the
   root — shifting preceding children up into the hole and writing the
   entry once at its final position. *)
let remove_min h =
  let n = h.size - 1 in
  h.size <- n;
  let keys = h.keys and values = h.values in
  if n = 0 then Array.unsafe_set values 0 nil
  else begin
    let time = Array.unsafe_get keys (2 * n) in
    let seq = Array.unsafe_get keys ((2 * n) + 1) in
    let v = Array.unsafe_get values n in
    Array.unsafe_set values n nil;
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 in
      if l >= n then continue := false
      else begin
        (* smallest child of the hole *)
        let lt = Array.unsafe_get keys (2 * l) in
        let ls = Array.unsafe_get keys ((2 * l) + 1) in
        let r = l + 1 in
        let c, ct, cs =
          if r < n then begin
            let rt = Array.unsafe_get keys (2 * r) in
            let rs = Array.unsafe_get keys ((2 * r) + 1) in
            if rt < lt || (rt = lt && rs < ls) then (r, rt, rs)
            else (l, lt, ls)
          end
          else (l, lt, ls)
        in
        if ct < time || (ct = time && cs < seq) then begin
          Array.unsafe_set keys (2 * !i) ct;
          Array.unsafe_set keys ((2 * !i) + 1) cs;
          Array.unsafe_set values !i (Array.unsafe_get values c);
          i := c
        end
        else continue := false
      end
    done;
    Array.unsafe_set keys (2 * !i) time;
    Array.unsafe_set keys ((2 * !i) + 1) seq;
    Array.unsafe_set values !i v
  end

let pop_min (type a) (h : a t) =
  if h.size = 0 then None
  else begin
    let time = h.keys.(0) and seq = h.keys.(1) in
    let v : a = Obj.obj h.values.(0) in
    remove_min h;
    Some (time, seq, v)
  end

let min_time_exn h =
  if h.size = 0 then invalid_arg "Eheap.min_time_exn: empty heap";
  h.keys.(0)

let pop_min_exn (type a) (h : a t) =
  if h.size = 0 then invalid_arg "Eheap.pop_min_exn: empty heap";
  let v : a = Obj.obj h.values.(0) in
  remove_min h;
  v

let peek_time h = if h.size = 0 then None else Some h.keys.(0)
