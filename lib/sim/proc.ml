open Effect
open Effect.Deep

type _ Effect.t += Suspend : ((unit -> unit) -> unit) -> unit Effect.t

let suspend f = perform (Suspend f)

let spawn ?lane engine f =
  let body () =
    match_with f ()
      {
        retc = (fun () -> ());
        exnc = raise;
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Suspend register ->
              Some
                (fun (k : (a, _) continuation) ->
                  register (fun () -> continue k ()))
            | _ -> None);
      }
  in
  Engine.schedule ?lane engine ~delay:0 body

let sleep engine d =
  if d < 0 then invalid_arg "Proc.sleep: negative duration";
  if d = 0 then ()
  else suspend (fun resume -> Engine.schedule engine ~delay:d resume)

module Ivar = struct
  type 'a state =
    | Empty
    | Waiting of ('a -> unit)
    | Filled of 'a

  type 'a t = { mutable state : 'a state }

  let create () = { state = Empty }

  let is_filled t = match t.state with Filled _ -> true | Empty | Waiting _ -> false

  let fill engine t v =
    match t.state with
    | Filled _ -> failwith "Ivar.fill: already filled"
    | Empty -> t.state <- Filled v
    | Waiting k ->
      t.state <- Filled v;
      Engine.schedule engine ~delay:0 (fun () -> k v)

  let await t =
    match t.state with
    | Filled v -> v
    | Waiting _ -> failwith "Ivar.await: already awaited"
    | Empty ->
      let result = ref None in
      suspend (fun resume ->
          t.state <-
            Waiting
              (fun v ->
                result := Some v;
                resume ()));
      (match !result with
      | Some v -> v
      | None -> assert false)
end

module Semaphore = struct
  type t = { mutable count : int; waiters : (unit -> unit) Queue.t }

  let create count =
    if count < 0 then invalid_arg "Semaphore.create: negative count";
    { count; waiters = Queue.create () }

  let acquire t =
    if t.count > 0 then t.count <- t.count - 1
    else suspend (fun resume -> Queue.add resume t.waiters)

  let release engine t =
    match Queue.take_opt t.waiters with
    | Some resume -> Engine.schedule engine ~delay:0 resume
    | None -> t.count <- t.count + 1
end
