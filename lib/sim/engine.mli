(** Discrete-event simulation engine.

    Simulated time is an integer number of nanoseconds.  All state changes in
    a simulation happen inside events; [run] drains the event queue in
    deterministic [(time, insertion)] order. *)

type t

(** [create ?schedule_seed ?lanes ()] makes a fresh engine.  By default,
    same-instant events fire in scheduling order (FIFO).  With
    [schedule_seed], their order is permuted deterministically from the
    seed — schedule fuzzing: different seeds explore different legal
    interleavings, and correct protocols must produce identical results
    under all of them.

    [lanes] (default 1) splits the event queue into that many per-lane
    sub-heaps (see {!Eheap}): with one lane per simulated node, heap
    operations cost O(log per-node events) instead of O(log total).  The
    lane split never changes the execution order — a 1-lane and an n-lane
    engine run byte-identical simulations. *)
val create : ?schedule_seed:int -> ?lanes:int -> unit -> t

(** The lane count the engine was created with. *)
val lanes : t -> int

(** Current simulated time in nanoseconds. *)
val now : t -> int

(** [schedule ?lane t ~delay f] runs [f ()] at time [now t + delay].
    [lane] routes the event to that per-lane queue; without it the event
    inherits the lane of the event currently executing, so work a node's
    handler spawns stays on that node's lane.  Ignored on 1-lane engines.
    @raise Invalid_argument if [delay] is negative or [lane] out of range. *)
val schedule : ?lane:int -> t -> delay:int -> (unit -> unit) -> unit

(** [schedule_at ?lane t ~time f] runs [f ()] at absolute [time], which must
    not be in the simulated past. *)
val schedule_at : ?lane:int -> t -> time:int -> (unit -> unit) -> unit

(** Drain the event queue.  Returns the final simulated time. *)
val run : t -> int

(** Number of events executed so far. *)
val events_executed : t -> int

(** [set_probe t (Some f)] arranges for [f ~time ~executed] to run just
    before each event fires; [set_probe t None] removes it.  The probe
    must not schedule events or otherwise touch the engine — it exists
    so an observer (e.g. the tracing subsystem) can sample progress
    without perturbing the simulation. *)
val set_probe : t -> (time:int -> executed:int -> unit) option -> unit

(** Time helpers (nanosecond arithmetic). *)
val ns : int -> int

val us : int -> int

val ms : int -> int

val us_of_ns : int -> float
