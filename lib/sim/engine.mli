(** Discrete-event simulation engine.

    Simulated time is an integer number of nanoseconds.  All state changes in
    a simulation happen inside events; [run] drains the event queue in
    deterministic [(time, insertion)] order. *)

type t

(** [create ?schedule_seed ()] makes a fresh engine.  By default,
    same-instant events fire in scheduling order (FIFO).  With
    [schedule_seed], their order is permuted deterministically from the
    seed — schedule fuzzing: different seeds explore different legal
    interleavings, and correct protocols must produce identical results
    under all of them. *)
val create : ?schedule_seed:int -> unit -> t

(** Current simulated time in nanoseconds. *)
val now : t -> int

(** [schedule t ~delay f] runs [f ()] at time [now t + delay].
    @raise Invalid_argument if [delay] is negative. *)
val schedule : t -> delay:int -> (unit -> unit) -> unit

(** [schedule_at t ~time f] runs [f ()] at absolute [time], which must not be
    in the simulated past. *)
val schedule_at : t -> time:int -> (unit -> unit) -> unit

(** Drain the event queue.  Returns the final simulated time. *)
val run : t -> int

(** Number of events executed so far. *)
val events_executed : t -> int

(** [set_probe t (Some f)] arranges for [f ~time ~executed] to run just
    before each event fires; [set_probe t None] removes it.  The probe
    must not schedule events or otherwise touch the engine — it exists
    so an observer (e.g. the tracing subsystem) can sample progress
    without perturbing the simulation. *)
val set_probe : t -> (time:int -> executed:int -> unit) option -> unit

(** Time helpers (nanosecond arithmetic). *)
val ns : int -> int

val us : int -> int

val ms : int -> int

val us_of_ns : int -> float
