(** Discrete-event simulation engine.

    Simulated time is an integer number of nanoseconds.  All state changes in
    a simulation happen inside events; [run] drains the event queue in
    deterministic [(time, insertion)] order.

    The engine has two execution modes producing byte-identical simulations
    (the full contract lives in PARALLELISM.md):

    - {b sequential} (the default): one thread drains the heap in global
      [(time, seq)] order;
    - {b parallel} ([?parallel] below): lanes are partitioned over OCaml 5
      domains (round-robin initially, then LPT-rebalanced from per-lane
      executed-event costs at inter-window quiescence points) and
      executed conservatively in safe-horizon windows derived from a static
      lookahead (the minimum cross-lane influence delay, e.g.
      {!Adsm_net.Topology.lookahead_ns}).  Between windows a single-threaded
      walk merges the domains' execution logs back into global [(time, seq)]
      order and replays journaled cross-lane effects, so sequence numbers,
      clock values, probes, and deferred side effects are assigned exactly
      as the sequential engine would.  The lane->domain assignment and the
      handshake batching of single-active-domain windows move wall-clock
      work between threads but never change the simulation. *)

type t

(** [create ?schedule_seed ?lanes ?parallel ()] makes a fresh engine.  By
    default, same-instant events fire in scheduling order (FIFO).  With
    [schedule_seed], their order is permuted deterministically from the
    seed — schedule fuzzing: different seeds explore different legal
    interleavings, and correct protocols must produce identical results
    under all of them.

    [lanes] (default 1) splits the event queue into that many per-lane
    sub-heaps (see {!Eheap}): with one lane per simulated node, heap
    operations cost O(log per-node events) instead of O(log total).  The
    lane split never changes the execution order — a 1-lane and an n-lane
    engine run byte-identical simulations.

    [parallel], when [Some (domains, lookahead_ns)], enables the
    conservative parallel mode with lanes partitioned over [domains] OCaml
    domains and safe-horizon windows of [lookahead_ns] simulated
    nanoseconds.  [domains] is clamped to [lanes]; a clamped or requested
    value of 1 yields the exact sequential engine.  In parallel mode every
    event is lane-confined: it may only mutate state owned by its own
    domain's lanes, and must route cross-lane effects through {!defer} or a
    lane-targeted {!schedule_at} made from a deferred context.
    @raise Invalid_argument if [lookahead_ns <= 0], if [domains <= 0], or
    if [schedule_seed] is combined with an effective [domains > 1]
    (fuzzing permutes sequence numbers, which the parallel merge relies
    on being monotone). *)
val create : ?schedule_seed:int -> ?lanes:int -> ?parallel:int * int -> unit -> t

(** The lane count the engine was created with. *)
val lanes : t -> int

(** Number of domains the engine executes on: 1 for the sequential engine
    (including a [?parallel] request clamped down to 1). *)
val parallel_domains : t -> int

(** Whether the conservative parallel mode is active ([parallel_domains > 1]). *)
val is_parallel : t -> bool

(** The safe-horizon lookahead in simulated nanoseconds, when parallel. *)
val lookahead_window : t -> int option

(** Current simulated time in nanoseconds.  Inside a parallel window this is
    the executing domain's local clock — the time of the event running on
    this domain, exactly what the sequential engine would report. *)
val now : t -> int

(** [schedule ?lane t ~delay f] runs [f ()] at time [now t + delay].
    [lane] routes the event to that per-lane queue; without it the event
    inherits the lane of the event currently executing, so work a node's
    handler spawns stays on that node's lane.  Ignored on 1-lane engines.
    @raise Invalid_argument if [delay] is negative or [lane] out of range. *)
val schedule : ?lane:int -> t -> delay:int -> (unit -> unit) -> unit

(** [schedule_at ?lane t ~time f] runs [f ()] at absolute [time], which must
    not be in the simulated past.
    @raise Invalid_argument additionally, in parallel mode, if the call is
    made inside a window and [lane] belongs to another domain — cross-domain
    effects must travel through {!defer} (as the network layer does). *)
val schedule_at : ?lane:int -> t -> time:int -> (unit -> unit) -> unit

(** [defer t f] runs [f ()] in global event order.  On the sequential engine
    (and outside parallel windows) this is just [f ()], allocation-free.
    Inside a parallel window, [f] is journaled and replayed by the
    single-threaded inter-window walk at this event's position in the global
    [(time, seq)] order — use it for effects that touch state shared across
    domains (global counters, contention bookkeeping, trace sinks).  [f] may
    call {!schedule_at} with any lane; the event lands in the owning domain's
    queue for a later window and must not fall below the current safe
    horizon. *)
val defer : t -> (unit -> unit) -> unit

(** [deferring t] is [true] exactly when {!defer} would journal rather than
    run immediately — i.e. inside a parallel window.  Lets hot paths skip
    building a closure on the sequential engine. *)
val deferring : t -> bool

(** Drain the event queue.  Returns the final simulated time. *)
val run : t -> int

(** Number of events executed so far. *)
val events_executed : t -> int

(** Times the parallel engine LPT-repartitioned lanes across domains
    (0 on the sequential engine). *)
val repartitions : t -> int

(** Parallel windows executed entirely on the coordinator thread because
    at most one domain had events below the horizon — each saved a full
    broadcast/wait handshake (0 on the sequential engine). *)
val batched_windows : t -> int

(** [set_probe t (Some f)] arranges for [f ~time ~executed] to run just
    before each event fires; [set_probe t None] removes it.  The probe
    must not schedule events or otherwise touch the engine — it exists
    so an observer (e.g. the tracing subsystem) can sample progress
    without perturbing the simulation.  In parallel mode the probe runs
    during the inter-window walk, in global order with the global
    executed count — the identical stream to the sequential engine. *)
val set_probe : t -> (time:int -> executed:int -> unit) option -> unit

(** Time helpers (nanosecond arithmetic). *)
val ns : int -> int

val us : int -> int

val ms : int -> int

val us_of_ns : int -> float
