(** Cooperative simulated processes built on OCaml effects.

    A process is a plain OCaml function executed inside an effect handler.
    When it needs simulated time to pass, or must wait for a message, it
    suspends; the engine later resumes it.  Exactly one process step runs at
    a time, so process code can freely mutate simulation state without
    locking. *)

(** [spawn ?lane engine f] schedules process [f] to start at the current
    simulated time, on event-queue [lane] when given (see
    {!Engine.schedule}); the process's later wake-ups inherit the lane of
    whatever event resumes them.  An exception escaping [f] aborts the
    whole simulation ([run] re-raises it). *)
val spawn : ?lane:int -> Engine.t -> (unit -> unit) -> unit

(** [sleep engine d] suspends the calling process for [d] simulated
    nanoseconds.  Must be called from process context. *)
val sleep : Engine.t -> int -> unit

(** [suspend f] captures the calling process's continuation as a resume thunk
    and hands it to [f].  The process is paused until the thunk is called
    (at most once).  Must be called from process context. *)
val suspend : ((unit -> unit) -> unit) -> unit

(** A one-shot value cell: a process blocks on [await] until another event
    [fill]s the cell. *)
module Ivar : sig
  type 'a t

  val create : unit -> 'a t

  (** [fill engine t v] makes [v] available and resumes the waiter, if any,
      at the current simulated time.  @raise Failure if already filled. *)
  val fill : Engine.t -> 'a t -> 'a -> unit

  (** Block the calling process until the cell is filled; returns the value.
      At most one process may await a given cell. *)
  val await : 'a t -> 'a

  val is_filled : 'a t -> bool
end

(** Counting semaphore for process coordination inside one simulated node. *)
module Semaphore : sig
  type t

  val create : int -> t

  val acquire : t -> unit

  val release : Engine.t -> t -> unit
end
