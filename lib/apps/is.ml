module Dsm = Adsm_dsm.Dsm
module Rng = Adsm_sim.Rng

type params = { total_keys : int; buckets : int; iters : int }

let default = { total_keys = 131072; buckets = 2048; iters = 5 }

let tiny = { total_keys = 2048; buckets = 512; iters = 2 }

let data_desc p = Printf.sprintf "%d keys, %d buckets" p.total_keys p.buckets

let sync_desc = "l,b"

let ns_per_key = 780

let ns_per_bucket = 500

let make t p =
  let buckets = Dsm.alloc_i32 t ~name:"is-buckets" ~len:p.buckets in
  let ranks = Dsm.alloc_i32 t ~name:"is-ranks" ~len:p.buckets in
  let l = Dsm.fresh_lock t in
  let checksum = Common.new_checksum () in
  let run ctx =
    let me = Dsm.me ctx and nprocs = Dsm.nprocs ctx in
    (* Private keys: a band of the fixed global key sequence, so the
       workload is independent of the processor count. *)
    let lo, hi = Common.band ~n:p.total_keys ~nprocs ~me in
    let keys =
      Array.init (hi - lo) (fun k ->
          let rng = Rng.create (Int64.of_int (((lo + k) * 1_000_003) + 17)) in
          Rng.int rng p.buckets)
    in
    let private_counts = Array.make p.buckets 0 in
    for _iter = 1 to p.iters do
      (* Count private keys into private buckets. *)
      Array.fill private_counts 0 p.buckets 0;
      Array.iter
        (fun k -> private_counts.(k) <- private_counts.(k) + 1)
        keys;
      Dsm.compute ctx (ns_per_key * (hi - lo));
      (* Add them into the shared buckets: migratory pages under a lock,
         every page completely overwritten by every processor. *)
      Dsm.lock ctx l;
      for b = 0 to p.buckets - 1 do
        Dsm.i32_add ctx buckets b (Int32.of_int private_counts.(b))
      done;
      Dsm.compute ctx (ns_per_bucket * p.buckets);
      Dsm.unlock ctx l;
      Dsm.barrier ctx;
      (* Processor 0 turns counts into ranks (prefix sums).  Chunked at
         page granularity so the page fault order stays that of the
         scalar loop: buckets page, ranks page, next buckets page, ... *)
      if me = 0 then begin
        let chunk = Adsm_mem.Page.size / 4 in
        let cbuf = Array.make (min chunk p.buckets) 0l in
        let acc = ref 0l in
        let b = ref 0 in
        while !b < p.buckets do
          let len = min chunk (p.buckets - !b) in
          Dsm.i32_get_run ctx buckets !b cbuf 0 len;
          for q = 0 to len - 1 do
            acc := Int32.add !acc cbuf.(q);
            cbuf.(q) <- !acc
          done;
          Dsm.i32_set_run ctx ranks !b cbuf 0 len;
          b := !b + len
        done;
        Dsm.compute ctx (ns_per_bucket * p.buckets)
      end;
      Dsm.barrier ctx
    done;
    if me = 0 then
      Common.set_checksum checksum
        (Dsm.i32_fold_run ctx ranks 0 p.buckets ~init:0. ~f:(fun a v ->
             Common.mix a (Int32.to_float v)));
    Dsm.barrier ctx
  in
  (run, fun () -> Common.get_checksum checksum)
