module Dsm = Adsm_dsm.Dsm

type params = { rows : int; cols : int; iters : int }

(* One row of 512 float64s fills exactly one 4 KB page, mirroring the
   paper's no-false-sharing input geometry. *)
let default = { rows = 256; cols = 512; iters = 48 }

let tiny = { rows = 16; cols = 512; iters = 4 }

let data_desc p = Printf.sprintf "%dx%d" p.rows p.cols

let sync_desc = "b"

(* Per-element update cost (4 adds, 1 multiply, loads/stores). *)
let ns_per_update = 4_000

let make t p =
  let grid = Dsm.alloc_f64 t ~name:"sor-grid" ~len:(p.rows * p.cols) in
  let checksum = Common.new_checksum () in
  let run ctx =
    let me = Dsm.me ctx and nprocs = Dsm.nprocs ctx in
    let lo, hi = Common.band ~n:p.rows ~nprocs ~me in
    let idx i j = (i * p.cols) + j in
    (* Private row buffers for the bulk reads.  The red-black coloring
       makes the row snapshots exact: a phase only writes elements of one
       parity and only reads the other, so nothing read here can have been
       written earlier in the same phase. *)
    let up = Array.make p.cols 0. in
    let down = Array.make p.cols 0. in
    let row = Array.make p.cols 0. in
    let ones = Array.make p.cols 1.0 in
    (* Each processor initializes its own band: boundary elements 1,
       interior 0 (pages are already zero-filled). *)
    for i = lo to hi - 1 do
      if i = 0 || i = p.rows - 1 then
        Dsm.f64_set_run ctx grid (idx i 0) ones 0 p.cols
      else begin
        Dsm.f64_set ctx grid (idx i 0) 1.0;
        Dsm.f64_set ctx grid (idx i (p.cols - 1)) 1.0
      end
    done;
    Dsm.barrier ctx;
    for _iter = 1 to p.iters do
      (* Red phase then black phase, separated by barriers. *)
      for phase = 0 to 1 do
        for i = max lo 1 to min (hi - 1) (p.rows - 2) do
          let j0 = 1 + ((i + phase) land 1) in
          (* Rows inside our own band are read in full with one bulk run
             per page — every word was written by us, so the extra words a
             full-row read touches are race-free.  A neighbor's boundary
             row is read only at the scalar loop's read-parity columns:
             its write-parity columns are being written concurrently over
             there, and the word sets must not grow racier than the
             per-word code.  Page first-touch order stays that of the
             scalar loop: row i-1, row i+1, then row i. *)
          let read_neighbor buf r =
            let j = ref j0 in
            while !j <= p.cols - 2 do
              buf.(!j) <- Dsm.f64_get ctx grid (idx r !j);
              j := !j + 2
            done
          in
          if i - 1 >= lo then Dsm.f64_get_run ctx grid (idx (i - 1) 0) up 0 p.cols
          else read_neighbor up (i - 1);
          if i + 1 <= hi - 1 then
            Dsm.f64_get_run ctx grid (idx (i + 1) 0) down 0 p.cols
          else read_neighbor down (i + 1);
          Dsm.f64_get_run ctx grid (idx i 0) row 0 p.cols;
          let j = ref j0 in
          while !j <= p.cols - 2 do
            let v =
              0.25 *. (up.(!j) +. down.(!j) +. row.(!j - 1) +. row.(!j + 1))
            in
            if v <> row.(!j) then Dsm.f64_set ctx grid (idx i !j) v;
            j := !j + 2
          done;
          Dsm.compute ctx (ns_per_update * (p.cols - 2) / 2)
        done;
        Dsm.barrier ctx
      done
    done;
    if me = 0 then
      Common.set_checksum checksum
        (Dsm.f64_fold_run ctx grid 0 (p.rows * p.cols) ~init:0. ~f:Common.mix);
    Dsm.barrier ctx
  in
  (run, fun () -> Common.get_checksum checksum)
