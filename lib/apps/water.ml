module Dsm = Adsm_dsm.Dsm
module Rng = Adsm_sim.Rng

type params = { molecules : int; steps : int; cutoff : float }

let default = { molecules = 512; steps = 5; cutoff = 0.28 }

let tiny = { molecules = 48; steps = 2; cutoff = 0.9 }

let data_desc p = Printf.sprintf "%d molecules" p.molecules

let sync_desc = "l,b"

(* 76 doubles per molecule = 608 bytes: ~6.7 molecules per page, matching
   the paper's "on average 6 molecule data-structures per page".  608 does
   not divide the page size, so band boundaries fall mid-page and adjacent
   processors falsely share the boundary pages, as in the paper. *)
let mol_size = 76

let pos_off = 0 (* 3 doubles *)

let vel_off = 3 (* 3 doubles *)

let force_off = 6 (* 3 doubles *)

let ns_per_pair = 18_000

let ns_per_mol = 3_000

(* Quantize to multiples of 2^-20: fixed-point values of bounded magnitude
   add exactly in float64, so cross-processor accumulation order (which
   depends on lock arrival order, hence on the protocol) cannot change the
   result.  This keeps checksums bit-identical across all four protocols. *)
let quantum = 1048576.0

let quantize v = Float.round (v *. quantum) /. quantum

let make t p =
  let mols = Dsm.alloc_f64 t ~name:"water-molecules" ~len:(p.molecules * mol_size) in
  let energy = Dsm.alloc_f64 t ~name:"water-energy" ~len:8 in
  let checksum = Common.new_checksum () in
  (* One lock per owner region plus the energy lock. *)
  let max_regions = 16 in
  let region_lock =
    Array.init max_regions (fun _ -> Dsm.fresh_lock t)
  in
  let energy_lock = Dsm.fresh_lock t in
  let run ctx =
    let me = Dsm.me ctx and nprocs = Dsm.nprocs ctx in
    let lo, hi = Common.band ~n:p.molecules ~nprocs ~me in
    let fidx m field = (m * mol_size) + field in
    (* Run buffers: force clear and the pair loop's position reads. *)
    let zero3 = Array.make 3 0. in
    let pos3i = Array.make 3 0. and pos3j = Array.make 3 0. in
    (* Initialize own molecules deterministically; per-molecule seeds keep
       the workload independent of the processor count. *)
    for m = lo to hi - 1 do
      let rng = Rng.create (Int64.of_int ((m * 7_919) + 101)) in
      for k = 0 to 2 do
        Dsm.f64_set ctx mols (fidx m (pos_off + k)) (Rng.float rng);
        Dsm.f64_set ctx mols (fidx m (vel_off + k)) ((Rng.float rng -. 0.5) *. 0.01)
      done
    done;
    Dsm.barrier ctx;
    for _step = 1 to p.steps do
      (* Clear own forces (unsynchronized writes: boundary pages falsely
         shared between adjacent bands).  One 3-word run per molecule —
         same words in the same ascending order as the scalar loop, so a
         molecule straddling a page boundary faults in the same
         sequence. *)
      for m = lo to hi - 1 do
        Dsm.f64_set_run ctx mols (fidx m force_off) zero3 0 3
      done;
      Dsm.compute ctx (ns_per_mol * (hi - lo));
      Dsm.barrier ctx;
      (* Pairwise forces with cutoff.  Own half of the i<j pair matrix;
         contributions to other processors' molecules are accumulated
         privately and added under the owner region's lock. *)
      let contrib = Hashtbl.create 64 in
      let add_contrib m k v =
        let key = (m, k) in
        Hashtbl.replace contrib key
          (v +. Option.value ~default:0. (Hashtbl.find_opt contrib key))
      in
      let pairs = ref 0 in
      for i = lo to hi - 1 do
        Dsm.f64_get_run ctx mols (fidx i pos_off) pos3i 0 3;
        let xi = pos3i.(0) and yi = pos3i.(1) and zi = pos3i.(2) in
        for j = i + 1 to p.molecules - 1 do
          incr pairs;
          Dsm.f64_get_run ctx mols (fidx j pos_off) pos3j 0 3;
          let dx = xi -. pos3j.(0)
          and dy = yi -. pos3j.(1)
          and dz = zi -. pos3j.(2) in
          let r2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) in
          if r2 < p.cutoff *. p.cutoff && r2 > 1e-12 then begin
            let f = 1e-4 /. (r2 +. 0.01) in
            add_contrib i 0 (quantize (f *. dx));
            add_contrib i 1 (quantize (f *. dy));
            add_contrib i 2 (quantize (f *. dz));
            add_contrib j 0 (quantize (-.f *. dx));
            add_contrib j 1 (quantize (-.f *. dy));
            add_contrib j 2 (quantize (-.f *. dz))
          end
        done
      done;
      Dsm.compute ctx (ns_per_pair * !pairs);
      (* Write the contributions back, one owner region at a time, each
         under that region's lock (ordered writes: migratory pages). *)
      for q = 0 to nprocs - 1 do
        let qlo, qhi = Common.band ~n:p.molecules ~nprocs ~me:q in
        let any =
          Hashtbl.fold
            (fun (m, _) _ acc -> acc || (m >= qlo && m < qhi))
            contrib false
        in
        if any then begin
          Dsm.lock ctx region_lock.(q mod Array.length region_lock);
          Hashtbl.iter
            (fun (m, k) v ->
              if m >= qlo && m < qhi then begin
                let idx = fidx m (force_off + k) in
                Dsm.f64_set ctx mols idx (Dsm.f64_get ctx mols idx +. v)
              end)
            contrib;
          Dsm.unlock ctx region_lock.(q mod Array.length region_lock)
        end
      done;
      Dsm.barrier ctx;
      (* Integrate own molecules and accumulate the potential-energy
         partial sum under a lock (small migratory writes). *)
      let partial = ref 0. in
      for m = lo to hi - 1 do
        for k = 0 to 2 do
          let v =
            Dsm.f64_get ctx mols (fidx m (vel_off + k))
            +. Dsm.f64_get ctx mols (fidx m (force_off + k))
          in
          Dsm.f64_set ctx mols (fidx m (vel_off + k)) v;
          let x = Dsm.f64_get ctx mols (fidx m (pos_off + k)) +. (0.01 *. v) in
          (* keep molecules in the unit box *)
          let x = x -. Float.of_int (int_of_float x) in
          let x = if x < 0. then x +. 1. else x in
          Dsm.f64_set ctx mols (fidx m (pos_off + k)) x;
          partial := !partial +. (v *. v)
        done
      done;
      Dsm.compute ctx (ns_per_mol * (hi - lo));
      Dsm.lock ctx energy_lock;
      Dsm.f64_set ctx energy 0
        (Dsm.f64_get ctx energy 0 +. quantize !partial);
      Dsm.unlock ctx energy_lock;
      Dsm.barrier ctx
    done;
    if me = 0 then begin
      let acc = ref (Dsm.f64_get ctx energy 0) in
      for m = 0 to p.molecules - 1 do
        acc := Common.mix !acc (Dsm.f64_get ctx mols (fidx m pos_off))
      done;
      Common.set_checksum checksum !acc
    end;
    Dsm.barrier ctx
  in
  (run, fun () -> Common.get_checksum checksum)
