module Dsm = Adsm_dsm.Dsm

type params = { n1 : int; n2 : int; n3 : int; iters : int }

(* Plane geometry keeps re/im plane blocks page-aligned: an A plane's real
   part is n2*n3 = 512 doubles = exactly one page. *)
let default = { n1 = 32; n2 = 32; n3 = 16; iters = 6 }

let tiny = { n1 = 8; n2 = 8; n3 = 8; iters = 2 }

let data_desc p = Printf.sprintf "%dx%dx%d" p.n1 p.n2 p.n3

let sync_desc = "b"

let ns_fft_elem = 4_500 (* per element per butterfly stage *)

let ns_elem = 2_000 (* evolve / transpose per element *)

let log2i n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n / 2) in
  go 0 n

let make t p =
  let size = p.n1 * p.n2 * p.n3 in
  (* Split re/im halves keep plane blocks page-aligned. *)
  let a = Dsm.alloc_f64 t ~name:"fft-a" ~len:(2 * size) in
  let b = Dsm.alloc_f64 t ~name:"fft-b" ~len:(2 * size) in
  let norms = Dsm.alloc_f64 t ~name:"fft-norms" ~len:64 in
  let checksum = Common.new_checksum () in
  let run ctx =
    let me = Dsm.me ctx and nprocs = Dsm.nprocs ctx in
    (* A is partitioned along n1; B (the transpose target) along n3. *)
    let a_lo, a_hi = Common.band ~n:p.n1 ~nprocs ~me in
    let b_lo, b_hi = Common.band ~n:p.n3 ~nprocs ~me in
    let a_idx i j k = (((i * p.n2) + j) * p.n3) + k in
    let b_idx k j i = (((k * p.n2) + j) * p.n1) + i in
    let charge_fft n = Dsm.compute ctx (ns_fft_elem * n * log2i n) in
    let re3 = Array.make p.n3 0. and im3 = Array.make p.n3 0. in
    let re2 = Array.make p.n2 0. and im2 = Array.make p.n2 0. in
    let re1 = Array.make p.n1 0. and im1 = Array.make p.n1 0. in
    (* Initialize own planes with a deterministic field.

       Note the writes here (and in the loops below) stay per-word even
       though each half-row is run-contiguous: the scalar code
       interleaves re/im writes word by word across the two halves —
       two different pages — and under SW an ownership revocation can
       land while the writer is suspended in a mid-row fault, making
       the next write to the *other* page fault again.  Batching the
       halves into two runs would reorder that access sequence and
       change the protocol traffic.  Reads are batched below: losing
       ownership only downgrades to read-only, so a read run never
       faults past its first word and reordering-free bulk reads are
       behavior-neutral. *)
    for i = a_lo to a_hi - 1 do
      for j = 0 to p.n2 - 1 do
        for k = 0 to p.n3 - 1 do
          let x = float_of_int (((i * 31) + (j * 17) + (k * 7)) mod 97) in
          Dsm.f64_set ctx a (a_idx i j k) (sin x);
          Dsm.f64_set ctx a (size + a_idx i j k) (cos x)
        done
      done
    done;
    Dsm.compute ctx (ns_elem * (a_hi - a_lo) * p.n2 * p.n3);
    Dsm.barrier ctx;
    for iter = 1 to p.iters do
      let factor = 1.0 +. (0.01 *. float_of_int iter) in
      (* Evolve and FFT along n3 (locally contiguous rows of A). *)
      for i = a_lo to a_hi - 1 do
        for j = 0 to p.n2 - 1 do
          Dsm.f64_get_run ctx a (a_idx i j 0) re3 0 p.n3;
          Dsm.f64_get_run ctx a (size + a_idx i j 0) im3 0 p.n3;
          for k = 0 to p.n3 - 1 do
            re3.(k) <- factor *. re3.(k);
            im3.(k) <- factor *. im3.(k)
          done;
          Fft_core.fft ~invert:false re3 im3;
          for k = 0 to p.n3 - 1 do
            Dsm.f64_set ctx a (a_idx i j k) re3.(k);
            Dsm.f64_set ctx a (size + a_idx i j k) im3.(k)
          done;
          charge_fft p.n3
        done;
        (* FFT along n2 (strided but still within the local plane). *)
        for k = 0 to p.n3 - 1 do
          for j = 0 to p.n2 - 1 do
            re2.(j) <- Dsm.f64_get ctx a (a_idx i j k);
            im2.(j) <- Dsm.f64_get ctx a (size + a_idx i j k)
          done;
          Fft_core.fft ~invert:false re2 im2;
          for j = 0 to p.n2 - 1 do
            Dsm.f64_set ctx a (a_idx i j k) re2.(j);
            Dsm.f64_set ctx a (size + a_idx i j k) im2.(j)
          done;
          charge_fft p.n2
        done
      done;
      Dsm.barrier ctx;
      (* Transpose (remote, producer-consumer reads of A) and FFT along the
         now-contiguous n1 dimension of B. *)
      for k = b_lo to b_hi - 1 do
        for j = 0 to p.n2 - 1 do
          for i = 0 to p.n1 - 1 do
            re1.(i) <- Dsm.f64_get ctx a (a_idx i j k);
            im1.(i) <- Dsm.f64_get ctx a (size + a_idx i j k)
          done;
          Fft_core.fft ~invert:false re1 im1;
          (* Per-word interleaved writes: see the init-loop comment. *)
          for i = 0 to p.n1 - 1 do
            Dsm.f64_set ctx b (b_idx k j i) re1.(i);
            Dsm.f64_set ctx b (size + b_idx k j i) im1.(i)
          done;
          charge_fft p.n1;
          Dsm.compute ctx (ns_elem * p.n1)
        done
      done;
      (* Per-processor partial norm: all eight live in one shared page —
         the paper's single falsely-shared page with small writes. *)
      let norm = ref 0. in
      for k = b_lo to b_hi - 1 do
        for j = 0 to p.n2 - 1 do
          Dsm.f64_get_run ctx b (b_idx k j 0) re1 0 p.n1;
          Dsm.f64_get_run ctx b (size + b_idx k j 0) im1 0 p.n1;
          (* Accumulate in the scalar loop's exact FP order:
             re_i^2 then im_i^2, element by element. *)
          for i = 0 to p.n1 - 1 do
            norm := !norm +. (re1.(i) *. re1.(i)) +. (im1.(i) *. im1.(i))
          done
        done
      done;
      Dsm.compute ctx (ns_elem * (b_hi - b_lo) * p.n2 * p.n1);
      Dsm.f64_set ctx norms me !norm;
      Dsm.barrier ctx;
      if me = 0 && iter = p.iters then begin
        (* The partial-norm page demonstrates the falsely-shared page; the
           checksum itself reads B in a fixed order so it is independent of
           the processor count. *)
        for q = 0 to nprocs - 1 do
          ignore (Dsm.f64_get ctx norms q)
        done;
        let acc = ref 0. in
        let step = max 1 (size / 512) in
        let i = ref 0 in
        while !i < size do
          acc := Common.mix !acc (Dsm.f64_get ctx b !i);
          i := !i + step
        done;
        Common.set_checksum checksum !acc
      end;
      Dsm.barrier ctx
    done
  in
  (run, fun () -> Common.get_checksum checksum)
