module Dsm = Adsm_dsm.Dsm

type params = { rows : int; cols : int; iters : int }

(* A 128-column row is 1 KB, four rows per page; 254 rows do not divide
   evenly among 8 processors, so band boundaries fall inside pages and the
   boundary pages are write-write falsely shared, as in the paper. *)
let default = { rows = 252; cols = 128; iters = 8 }

let tiny = { rows = 32; cols = 64; iters = 2 }

let data_desc p = Printf.sprintf "%dx%d" p.rows p.cols

let sync_desc = "b"

let ns_per_point = 4_500

(* Shallow deliberately keeps per-word accessors rather than the bulk
   run API: every stencil nest interleaves reads of several source
   arrays with the per-element write of its target, so a mid-row read
   fault is a yield point at which SW can revoke the target page's
   ownership and force the next write to fault again.  Hoisting rows
   into get_run/set_run removes those re-faults, which is observable in
   SW message counts once bands are narrow enough for neighbouring
   processors to contend on boundary pages (8+ processors at tiny
   scale).  See the matching note in fft3d.ml. *)

let make t p =
  let size = p.rows * p.cols in
  let u = Dsm.alloc_f64 t ~name:"shallow-u" ~len:size in
  let v = Dsm.alloc_f64 t ~name:"shallow-v" ~len:size in
  let pg = Dsm.alloc_f64 t ~name:"shallow-p" ~len:size in
  let cu = Dsm.alloc_f64 t ~name:"shallow-cu" ~len:size in
  let cv = Dsm.alloc_f64 t ~name:"shallow-cv" ~len:size in
  let z = Dsm.alloc_f64 t ~name:"shallow-z" ~len:size in
  let h = Dsm.alloc_f64 t ~name:"shallow-h" ~len:size in
  let unew = Dsm.alloc_f64 t ~name:"shallow-unew" ~len:size in
  let vnew = Dsm.alloc_f64 t ~name:"shallow-vnew" ~len:size in
  let pnew = Dsm.alloc_f64 t ~name:"shallow-pnew" ~len:size in
  let checksum = Common.new_checksum () in
  let run ctx =
    let me = Dsm.me ctx and nprocs = Dsm.nprocs ctx in
    let lo, hi = Common.band ~n:p.rows ~nprocs ~me in
    let idx i j = (i * p.cols) + j in
    (* Periodic neighbors. *)
    let up i = if i = 0 then p.rows - 1 else i - 1 in
    let down i = if i = p.rows - 1 then 0 else i + 1 in
    let left j = if j = 0 then p.cols - 1 else j - 1 in
    let right j = if j = p.cols - 1 then 0 else j + 1 in
    (* Initial condition: a smooth deterministic height field. *)
    for i = lo to hi - 1 do
      for j = 0 to p.cols - 1 do
        let x = float_of_int i /. float_of_int p.rows
        and y = float_of_int j /. float_of_int p.cols in
        Dsm.f64_set ctx pg (idx i j)
          (50.0 +. (10.0 *. sin (6.2831853 *. x) *. cos (6.2831853 *. y)));
        Dsm.f64_set ctx u (idx i j) (sin (6.2831853 *. y));
        Dsm.f64_set ctx v (idx i j) (cos (6.2831853 *. x))
      done
    done;
    Dsm.compute ctx (ns_per_point * (hi - lo) * p.cols);
    Dsm.barrier ctx;
    for _iter = 1 to p.iters do
      (* Phase 1: capital terms cu, cv, z, h — one loop nest per target
         grid, as in split/vectorized shallow-water codes.  (A fused nest
         would make the SW protocol juggle four contested boundary pages
         at once; split nests bound it to one page pair at a time.) *)
      for i = lo to hi - 1 do
        for j = 0 to p.cols - 1 do
          let pij = Dsm.f64_get ctx pg (idx i j)
          and p_rt = Dsm.f64_get ctx pg (idx i (right j)) in
          Dsm.f64_set ctx cu (idx i j)
            (0.5 *. (pij +. p_rt) *. Dsm.f64_get ctx u (idx i j))
        done;
        Dsm.compute ctx (ns_per_point * p.cols / 4)
      done;
      for i = lo to hi - 1 do
        for j = 0 to p.cols - 1 do
          let pij = Dsm.f64_get ctx pg (idx i j)
          and p_dn = Dsm.f64_get ctx pg (idx (down i) j) in
          Dsm.f64_set ctx cv (idx i j)
            (0.5 *. (pij +. p_dn) *. Dsm.f64_get ctx v (idx i j))
        done;
        Dsm.compute ctx (ns_per_point * p.cols / 4)
      done;
      for i = lo to hi - 1 do
        for j = 0 to p.cols - 1 do
          let uij = Dsm.f64_get ctx u (idx i j)
          and vij = Dsm.f64_get ctx v (idx i j) in
          let u_dn = Dsm.f64_get ctx u (idx (down i) j)
          and v_rt = Dsm.f64_get ctx v (idx i (right j)) in
          Dsm.f64_set ctx z (idx i j)
            ((v_rt -. vij +. uij -. u_dn)
            /. (Dsm.f64_get ctx pg (idx i j) +. 1.0))
        done;
        Dsm.compute ctx (ns_per_point * p.cols / 4)
      done;
      for i = lo to hi - 1 do
        for j = 0 to p.cols - 1 do
          let uij = Dsm.f64_get ctx u (idx i j)
          and vij = Dsm.f64_get ctx v (idx i j) in
          Dsm.f64_set ctx h (idx i j)
            (Dsm.f64_get ctx pg (idx i j)
            +. (0.25 *. ((uij *. uij) +. (vij *. vij))))
        done;
        Dsm.compute ctx (ns_per_point * p.cols / 4)
      done;
      Dsm.barrier ctx;
      (* Phase 2: new time level from the capital terms (split nests). *)
      let dt = 0.02 in
      for i = lo to hi - 1 do
        for j = 0 to p.cols - 1 do
          let zij = Dsm.f64_get ctx z (idx i j)
          and z_up = Dsm.f64_get ctx z (idx (up i) j)
          and cv_ij = Dsm.f64_get ctx cv (idx i j)
          and h_ij = Dsm.f64_get ctx h (idx i j)
          and h_l = Dsm.f64_get ctx h (idx i (left j)) in
          Dsm.f64_set ctx unew (idx i j)
            (Dsm.f64_get ctx u (idx i j)
            +. (dt *. ((0.5 *. (zij +. z_up) *. cv_ij) -. (h_ij -. h_l))))
        done;
        Dsm.compute ctx (ns_per_point * p.cols / 3)
      done;
      for i = lo to hi - 1 do
        for j = 0 to p.cols - 1 do
          let zij = Dsm.f64_get ctx z (idx i j)
          and z_up = Dsm.f64_get ctx z (idx (up i) j)
          and cu_ij = Dsm.f64_get ctx cu (idx i j)
          and h_ij = Dsm.f64_get ctx h (idx i j)
          and h_up = Dsm.f64_get ctx h (idx (up i) j) in
          Dsm.f64_set ctx vnew (idx i j)
            (Dsm.f64_get ctx v (idx i j)
            -. (dt *. ((0.5 *. (zij +. z_up) *. cu_ij) +. (h_ij -. h_up))))
        done;
        Dsm.compute ctx (ns_per_point * p.cols / 3)
      done;
      for i = lo to hi - 1 do
        for j = 0 to p.cols - 1 do
          let cv_l = Dsm.f64_get ctx cv (idx i (left j))
          and cv_ij = Dsm.f64_get ctx cv (idx i j)
          and cu_up = Dsm.f64_get ctx cu (idx (up i) j)
          and cu_ij = Dsm.f64_get ctx cu (idx i j) in
          Dsm.f64_set ctx pnew (idx i j)
            (Dsm.f64_get ctx pg (idx i j)
            -. (dt *. (cu_ij -. cv_l +. cv_ij -. cu_up)))
        done;
        Dsm.compute ctx (ns_per_point * p.cols / 3)
      done;
      Dsm.barrier ctx;
      (* Phase 3: copy the new level back (time smoothing simplified). *)
      List.iter
        (fun (dst, src) ->
          for i = lo to hi - 1 do
            for j = 0 to p.cols - 1 do
              Dsm.f64_set ctx dst (idx i j) (Dsm.f64_get ctx src (idx i j))
            done;
            Dsm.compute ctx (ns_per_point * p.cols / 6)
          done)
        [ (u, unew); (v, vnew); (pg, pnew) ];
      Dsm.barrier ctx
    done;
    if me = 0 then begin
      let acc = ref 0. in
      for i = 0 to p.rows - 1 do
        acc := Common.mix !acc (Dsm.f64_get ctx pg (idx i (i mod p.cols)))
      done;
      Common.set_checksum checksum !acc
    end;
    Dsm.barrier ctx
  in
  (run, fun () -> Common.get_checksum checksum)
