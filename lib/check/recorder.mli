(** Collects a run's observation stream for the {!Oracle}.

    Mirrors the zero-cost-when-disabled discipline of
    {!Adsm_trace.Tracer}: recording sites are guarded with {!enabled}, so
    a run with the {!disabled} recorder constructs no observation values
    and executes identically to an unobserved one. *)

type t

(** The inert recorder: {!enabled} is false, {!record} is a no-op. *)
val disabled : t

val create : unit -> t

val enabled : t -> bool

val record : t -> time:int -> node:int -> Obs.t -> unit

val count : t -> int

(** The recorded observations, oldest first. *)
val stream : t -> Obs.stamped array

(** Drop everything recorded so far (for reusing a recorder across
    runs). *)
val reset : t -> unit
