(* Property-based workload generation for the consistency oracle.

   A workload is a tiny page-access program: per node, per barrier-
   separated phase, a list of reads/writes on abstract shared words and
   lock-protected critical sections.  Programs are data-race-free *by
   construction* — every word follows one of three disciplines:

   - [Phased]: in phase p only the word's phase-owner ((word + p) mod
     nprocs) touches it, so each phase hands the word to the next node
     across a barrier (exercising ownership migration, diffs and owner
     write notices);
   - [Locked l]: touched only inside critical sections of lock l
     (exercising release->acquire interval propagation and lost-update
     detection);
   - [Private n]: only node n ever touches it (padding that creates
     false sharing when several words share a page).

   Under DRF the oracle's read rule is exact: every read has a unique
   legal value.  Words map to f64 slots [word * stride], so small
   strides pack several disciplines into one page (false sharing, the
   paper's central stressor) while [stride = 512] isolates each word on
   its own page.

   The shrinker only removes things — whole phases, units of one node's
   phase program, single ops inside a critical section — and each
   removal preserves the DRF disciplines, so a shrunk counterexample is
   still a valid workload. *)

module Rng = Adsm_sim.Rng

type op =
  | R of int  (** read word *)
  | W of int  (** write word (the interpreter assigns a unique value) *)
  | C of int  (** local compute, ns (interleaving variety) *)

type unit_ =
  | Plain of op
  | Crit of int * op list  (** lock; acquire, run ops, release *)

type program = {
  nprocs : int;
  words : int;
  stride : int;  (** word [i] lives at f64 index [i * stride] *)
  nlocks : int;
  phases : unit_ list array array;
      (** [phases.(p).(node)] = node's program for phase [p]; a barrier
          separates consecutive phases *)
}

type discipline = Phased | Locked of int | Private of int

(* ------------------------------------------------------------------ *)
(* Generation                                                         *)
(* ------------------------------------------------------------------ *)

type params = {
  p_nprocs : int;
  p_max_words : int;
  p_max_phases : int;
  p_max_units : int;  (** per node per phase *)
}

let default_params ~nprocs =
  { p_nprocs = nprocs; p_max_words = 16; p_max_phases = 4; p_max_units = 6 }

let strides = [| 1; 3; 7; 64; 512 |]

let generate rng params =
  let nprocs = params.p_nprocs in
  let words = 2 + Rng.int rng (max 1 (params.p_max_words - 1)) in
  let stride = strides.(Rng.int rng (Array.length strides)) in
  let nlocks = 1 + Rng.int rng 3 in
  let nphases = 1 + Rng.int rng params.p_max_phases in
  let discipline =
    Array.init words (fun w ->
        match Rng.int rng 10 with
        | 0 | 1 | 2 | 3 | 4 -> Phased
        | 5 | 6 | 7 -> Locked (w mod nlocks)
        | _ -> Private (w mod nprocs))
  in
  let locked_words lock =
    List.filter
      (fun w -> discipline.(w) = Locked lock)
      (List.init words Fun.id)
  in
  let plain_words node phase =
    List.filter
      (fun w ->
        match discipline.(w) with
        | Phased -> (w + phase) mod nprocs = node
        | Private n -> n = node
        | Locked _ -> false)
      (List.init words Fun.id)
  in
  let pick rng l = List.nth l (Rng.int rng (List.length l)) in
  let gen_op rng word =
    if Rng.int rng 2 = 0 then R word else W word
  in
  let gen_unit rng node phase =
    let plain = plain_words node phase in
    let roll = Rng.int rng 10 in
    if roll = 0 then Some (Plain (C (100 + Rng.int rng 5_000)))
    else if roll <= 6 && plain <> [] then
      Some (Plain (gen_op rng (pick rng plain)))
    else begin
      let lock = Rng.int rng nlocks in
      match locked_words lock with
      | [] ->
        if plain = [] then None else Some (Plain (gen_op rng (pick rng plain)))
      | lw ->
        let n_ops = 1 + Rng.int rng 3 in
        Some (Crit (lock, List.init n_ops (fun _ -> gen_op rng (pick rng lw))))
    end
  in
  let phases =
    Array.init nphases (fun phase ->
        Array.init nprocs (fun node ->
            let n_units = Rng.int rng (params.p_max_units + 1) in
            List.filter_map
              (fun _ -> gen_unit rng node phase)
              (List.init n_units Fun.id)))
  in
  { nprocs; words; stride; nlocks; phases }

(* ------------------------------------------------------------------ *)
(* Shrinking                                                          *)
(* ------------------------------------------------------------------ *)

let ops_count p =
  Array.fold_left
    (fun acc phase ->
      Array.fold_left
        (fun acc units ->
          List.fold_left
            (fun acc -> function
              | Plain _ -> acc + 1
              | Crit (_, ops) -> acc + 1 + List.length ops)
            acc units)
        acc phase)
    0 p.phases

let drop_nth l n = List.filteri (fun i _ -> i <> n) l

(* Candidate reductions, biggest cuts first: drop a phase, drop a unit
   of one node's phase program, drop one op inside a critical section.
   Each preserves the per-word access disciplines, hence DRF. *)
let shrink p =
  let drop_phase =
    Seq.init (Array.length p.phases) (fun i ->
        {
          p with
          phases =
            Array.of_list
              (List.filteri
                 (fun j _ -> j <> i)
                 (Array.to_list p.phases));
        })
  in
  let with_units ~phase ~node units =
    let phases = Array.map Array.copy p.phases in
    phases.(phase).(node) <- units;
    { p with phases }
  in
  let drop_unit =
    Seq.concat_map
      (fun phase ->
        Seq.concat_map
          (fun node ->
            let units = p.phases.(phase).(node) in
            Seq.init (List.length units) (fun i ->
                with_units ~phase ~node (drop_nth units i)))
          (Seq.init p.nprocs Fun.id))
      (Seq.init (Array.length p.phases) Fun.id)
  in
  let drop_crit_op =
    Seq.concat_map
      (fun phase ->
        Seq.concat_map
          (fun node ->
            let units = p.phases.(phase).(node) in
            Seq.concat_map
              (fun i ->
                match List.nth units i with
                | Plain _ -> Seq.empty
                | Crit (lock, ops) when List.length ops > 1 ->
                  Seq.init (List.length ops) (fun j ->
                      let units' =
                        List.mapi
                          (fun k u ->
                            if k = i then Crit (lock, drop_nth ops j) else u)
                          units
                      in
                      with_units ~phase ~node units')
                | Crit _ -> Seq.empty)
              (Seq.init (List.length units) Fun.id))
          (Seq.init p.nprocs Fun.id))
      (Seq.init (Array.length p.phases) Fun.id)
  in
  Seq.append drop_phase (Seq.append drop_unit drop_crit_op)

(* ------------------------------------------------------------------ *)
(* Pretty printing                                                    *)
(* ------------------------------------------------------------------ *)

let op_string = function
  | R w -> Printf.sprintf "R%d" w
  | W w -> Printf.sprintf "W%d" w
  | C ns -> Printf.sprintf "C%d" ns

let unit_string = function
  | Plain op -> op_string op
  | Crit (lock, ops) ->
    Printf.sprintf "lock%d{%s}" lock (String.concat ";" (List.map op_string ops))

let pp ppf p =
  Format.fprintf ppf
    "workload: %d nodes, %d words (stride %d), %d locks, %d phases@." p.nprocs
    p.words p.stride p.nlocks (Array.length p.phases);
  Array.iteri
    (fun i phase ->
      Format.fprintf ppf "phase %d:@." i;
      Array.iteri
        (fun node units ->
          Format.fprintf ppf "  node %d: %s@." node
            (if units = [] then "(idle)"
             else String.concat "; " (List.map unit_string units)))
        phase)
    p.phases

let to_string p = Format.asprintf "%a" pp p
