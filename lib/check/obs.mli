(** Memory-model observations: what the application did to the shared
    store.  The {!Oracle} replays a run's observation stream against the
    lazy-release-consistency contract; the {!Recorder} collects it. *)

type t =
  | Read of { page : int; off : int; width : int; bits : int64 }
      (** a shared-word read returning the value [bits] (f64 bit pattern
          when [width = 8], sign-extended i32 when [width = 4]) *)
  | Write of { page : int; off : int; width : int; bits : int64 }
  | Acquire of { lock : int }  (** lock acquisition completed *)
  | Release of { lock : int }  (** lock release started *)
  | Barrier_enter of { epoch : int }
  | Barrier_leave of { epoch : int }
  | Crash
      (** the node fail-stopped (fault injection); volatile protocol
          state is lost, but the application's causal past is not — a
          recovered node must still read hb-maximal writes *)
  | Restart  (** the node completed crash recovery and resumed *)

type stamped = { time : int; node : int; obs : t }
(** Stamped with simulated time and recorded in global completion
    order (the simulator is single-threaded). *)

val tag : t -> string

(** The (page, offset) word a memory observation touches. *)
val location : t -> (int * int) option

(** Render a value for humans: a float when [width = 8], an int32
    otherwise. *)
val value_string : width:int -> int64 -> string

val to_json : stamped -> Adsm_trace.Json.t

val of_json : Adsm_trace.Json.t -> stamped option

val pp : Format.formatter -> stamped -> unit
