(* Observation collection front-end, following the Tracer pattern from
   lib/trace: a phantom [disabled] recorder whose [enabled] test guards
   every emission site, so observation payloads are never constructed —
   and the run is event- and byte-identical — when checking is off. *)

type t = {
  on : bool;
  mutable observations : Obs.stamped list;  (* newest first *)
  mutable count : int;
}

let disabled = { on = false; observations = []; count = 0 }

let create () = { on = true; observations = []; count = 0 }

let enabled t = t.on

let record t ~time ~node obs =
  if t.on then begin
    t.observations <- { Obs.time; node; obs } :: t.observations;
    t.count <- t.count + 1
  end

let count t = t.count

let stream t = Array.of_list (List.rev t.observations)

let reset t =
  if t.on then begin
    t.observations <- [];
    t.count <- 0
  end
