(* The oracle's own happens-before machinery.

   Deliberately independent of the protocol's [Vc] in lib/dsm: the
   oracle must derive happens-before purely from the observation stream
   (program order, lock release->acquire chains, barriers), so a bug in
   the protocol's vector-clock plumbing cannot silently agree with
   itself here.

   Clocks tick on every observation, giving each event a unique
   per-node component; [e1 happens-before e2] iff e1's snapshot is
   componentwise <= e2's. *)

type t = int array

let zero ~nprocs = Array.make nprocs 0

let copy = Array.copy

let tick t ~node = t.(node) <- t.(node) + 1

let get (t : t) node = t.(node)

(* Merge [src] into [dst] (componentwise max). *)
let join_into ~dst ~src =
  Array.iteri (fun i v -> if v > dst.(i) then dst.(i) <- v) src

let leq (a : t) (b : t) =
  let n = Array.length a in
  let rec go i = i >= n || (a.(i) <= b.(i) && go (i + 1)) in
  go 0

let concurrent a b = (not (leq a b)) && not (leq b a)

let to_string (t : t) =
  "<" ^ String.concat "," (Array.to_list (Array.map string_of_int t)) ^ ">"
