(** Property-based workload generation for the consistency oracle:
    random page-access programs that are data-race-free by construction
    (so every read has a unique legal value), a shrinker that only
    removes structure (preserving DRF), and a human-readable printer
    for counterexamples. *)

type op =
  | R of int  (** read word *)
  | W of int  (** write word (the interpreter assigns a unique value) *)
  | C of int  (** local compute, ns *)

type unit_ =
  | Plain of op
  | Crit of int * op list  (** lock; acquire, run ops, release *)

type program = {
  nprocs : int;
  words : int;
  stride : int;  (** word [i] lives at f64 index [i * stride] *)
  nlocks : int;
  phases : unit_ list array array;
      (** [phases.(p).(node)]; a barrier separates consecutive phases *)
}

type params = {
  p_nprocs : int;
  p_max_words : int;
  p_max_phases : int;
  p_max_units : int;
}

val default_params : nprocs:int -> params

val generate : Adsm_sim.Rng.t -> params -> program

(** Candidate reductions, biggest cuts first; every candidate is a
    valid DRF workload. *)
val shrink : program -> program Seq.t

(** Total op count (shrinking progress metric). *)
val ops_count : program -> int

val pp : Format.formatter -> program -> unit

val to_string : program -> string
