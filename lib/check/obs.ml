(* The memory-model observation vocabulary.

   An observation is what the *application* did to the shared store —
   a word read or written with its value, a lock acquired or released, a
   barrier crossed — as opposed to a trace event, which records what the
   *protocol* did about it.  The oracle replays a run's observation
   stream and checks it against lazy release consistency without looking
   at any protocol state, which is what makes it an independent check:
   the same stream semantics must hold whichever protocol produced it. *)

module Json = Adsm_trace.Json

type t =
  | Read of { page : int; off : int; width : int; bits : int64 }
  | Write of { page : int; off : int; width : int; bits : int64 }
  | Acquire of { lock : int }
  | Release of { lock : int }
  | Barrier_enter of { epoch : int }
  | Barrier_leave of { epoch : int }
  | Crash
  | Restart

(* Stamped in global recording order; the simulator is single-threaded,
   so stream order is the real-time order in which the operations
   completed. *)
type stamped = { time : int; node : int; obs : t }

let tag = function
  | Read _ -> "read"
  | Write _ -> "write"
  | Acquire _ -> "acquire"
  | Release _ -> "release"
  | Barrier_enter _ -> "barrier-enter"
  | Barrier_leave _ -> "barrier-leave"
  | Crash -> "crash"
  | Restart -> "restart"

(* The word a memory observation touches, as a (page, offset) pair. *)
let location = function
  | Read { page; off; _ } | Write { page; off; _ } -> Some (page, off)
  | Acquire _ | Release _ | Barrier_enter _ | Barrier_leave _ | Crash | Restart
    ->
    None

let value_string ~width bits =
  if width = 8 then Printf.sprintf "%.17g" (Int64.float_of_bits bits)
  else Printf.sprintf "%ld" (Int64.to_int32 bits)

(* ------------------------------------------------------------------ *)
(* JSON codec                                                         *)
(* ------------------------------------------------------------------ *)

(* [bits] is a full 64-bit pattern (e.g. the sign bit of a negative
   float), which does not fit OCaml's 63-bit [Json.Int]: encode it as a
   hex string instead. *)
let bits_to_json bits = Json.String (Printf.sprintf "0x%Lx" bits)

let bits_of_json = function
  | Json.String s -> Int64.of_string_opt s
  | _ -> None

let args = function
  | Read { page; off; width; bits } | Write { page; off; width; bits } ->
    [
      ("page", Json.Int page);
      ("off", Json.Int off);
      ("width", Json.Int width);
      ("bits", bits_to_json bits);
    ]
  | Acquire { lock } | Release { lock } -> [ ("lock", Json.Int lock) ]
  | Barrier_enter { epoch } | Barrier_leave { epoch } ->
    [ ("epoch", Json.Int epoch) ]
  | Crash | Restart -> []

let to_json { time; node; obs } =
  Json.Obj
    (("t", Json.Int time)
    :: ("node", Json.Int node)
    :: ("ob", Json.String (tag obs))
    :: args obs)

let of_json json =
  let ( let* ) o f = Option.bind o f in
  let field key conv = let* v = Json.member key json in conv v in
  let int key = field key Json.to_int in
  let obs =
    let* tag = field "ob" Json.to_str in
    match tag with
    | "read" | "write" ->
      let* page = int "page" in
      let* off = int "off" in
      let* width = int "width" in
      let* bits = field "bits" bits_of_json in
      Some
        (if tag = "read" then Read { page; off; width; bits }
         else Write { page; off; width; bits })
    | "acquire" | "release" ->
      let* lock = int "lock" in
      Some (if tag = "acquire" then Acquire { lock } else Release { lock })
    | "barrier-enter" | "barrier-leave" ->
      let* epoch = int "epoch" in
      Some
        (if tag = "barrier-enter" then Barrier_enter { epoch }
         else Barrier_leave { epoch })
    | "crash" -> Some Crash
    | "restart" -> Some Restart
    | _ -> None
  in
  let* time = int "t" in
  let* node = int "node" in
  let* obs = obs in
  Some { time; node; obs }

let pp ppf { time; node; obs } =
  let body =
    match obs with
    | Read { page; off; width; bits } ->
      Printf.sprintf "read  %d:%d = %s" page off (value_string ~width bits)
    | Write { page; off; width; bits } ->
      Printf.sprintf "write %d:%d = %s" page off (value_string ~width bits)
    | Acquire { lock } -> Printf.sprintf "acquire lock %d" lock
    | Release { lock } -> Printf.sprintf "release lock %d" lock
    | Barrier_enter { epoch } -> Printf.sprintf "barrier enter (epoch %d)" epoch
    | Barrier_leave { epoch } -> Printf.sprintf "barrier leave (epoch %d)" epoch
    | Crash -> "crash"
    | Restart -> "restart"
  in
  Format.fprintf ppf "[node %d @%dns] %s" node time body
