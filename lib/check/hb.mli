(** Vector clocks for the oracle's happens-before order, derived purely
    from the observation stream (independent of the protocol's [Vc]). *)

type t = int array

val zero : nprocs:int -> t

val copy : t -> t

(** Advance [node]'s component by one (every observation ticks). *)
val tick : t -> node:int -> unit

val get : t -> int -> int

(** Componentwise max of [src] into [dst]. *)
val join_into : dst:t -> src:t -> unit

(** [leq a b] — the event stamped [a] happens-before (or equals) the
    event stamped [b]. *)
val leq : t -> t -> bool

val concurrent : t -> t -> bool

val to_string : t -> string
