(** The release-consistency oracle: replays an observation stream and
    validates every read against the LRC contract, deriving
    happens-before purely from the stream (program order, lock
    release→acquire chains, barriers) — independent of any protocol
    state.

    The single read rule subsumes the interesting invariants: writes
    must propagate completely at acquires and barriers, no update may be
    lost under concurrent writers, and a mode transition (SW↔MW) that
    drops a diff or a write notice surfaces as a stale read. *)

type violation = {
  v_index : int;  (** stream position of the offending read *)
  v_node : int;
  v_page : int;
  v_off : int;
  v_width : int;
  v_got : int64;
  v_candidates : (int * int64) list;
      (** legal (writer stream index, value) pairs; index -1 = initial *)
}

type report = {
  nprocs : int;
  observations : int;
  reads : int;
  writes : int;
  racy_reads : int;
      (** reads with more than one legal value (word-granularity data
          race) — accepted leniently, as LRC allows, but counted *)
  violations : violation list;  (** oldest first *)
  fault_errors : string list;
      (** crash/restart structure violations (oldest first): activity on
          a crashed node, a restart without a crash, a crash never
          restarted by end of run, or mismatched barrier enter/leave
          epochs across a recovery boundary.  Empty for fault-free
          streams.  The per-node happens-before clock survives a crash:
          the application's causal past is durable even though protocol
          state is not, so a recovered node's reads face the same
          hb-maximality requirement as anyone else's. *)
}

val check : nprocs:int -> Obs.stamped array -> report

(** No read violations and no fault-structure errors. *)
val ok : report -> bool

val pp_violation : Format.formatter -> violation -> unit

(** Print the violation plus the trace window worth reading: candidate
    writes, synchronization operations, and every access to the
    violating word up to the offending read. *)
val pp_counterexample : Format.formatter -> Obs.stamped array -> violation -> unit

val pp_report : Format.formatter -> report -> unit
