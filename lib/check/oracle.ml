(* The release-consistency oracle.

   Replays an observation stream (see {!Obs}) and checks every read
   against the lazy-release-consistency contract, using only the stream
   itself — program order, lock release->acquire chains and barriers —
   to build happens-before:

   - a read must return the value of a write that is not stale: either
     the (unique, for data-race-free programs) happens-before-latest
     write to that word, or — LRC permits it — a write concurrent with
     the read that no hb-ordered write supersedes;
   - a word never written in the read's causal past may still hold its
     initial zero;
   - returning a value that some visible write has overwritten (a diff
     not applied, a notice never delivered, an ownership grant serving
     stale data, a lost update under concurrent writers) is a violation.

   Per word the oracle keeps only the hb-antichain of live writes: a new
   write prunes every write it dominates, so the history stays as small
   as the number of genuinely concurrent writers.  [first_write] keeps,
   per node, the node-local timestamp of its first write to the word, so
   "is the initial value still legal?" remains answerable after
   pruning. *)

type write = {
  w_vc : Hb.t;
  w_bits : int64;
  w_node : int;
  w_index : int;  (** position in the observation stream *)
}

type location = {
  mutable history : write list;  (** hb-antichain, newest first *)
  first_write : int array;
      (** per node: [Hb] self-component of its first write here; 0 = none *)
}

type violation = {
  v_index : int;  (** stream position of the offending read *)
  v_node : int;
  v_page : int;
  v_off : int;
  v_width : int;
  v_got : int64;
  v_candidates : (int * int64) list;
      (** legal (writer stream index, value) pairs; index -1 = initial *)
}

type report = {
  nprocs : int;
  observations : int;
  reads : int;
  writes : int;
  racy_reads : int;
      (** reads with more than one legal value (word-granularity data
          race): accepted leniently, counted for visibility *)
  violations : violation list;  (** oldest first *)
  fault_errors : string list;
      (** crash/restart structure violations (oldest first): activity
          on a crashed node, restart without a crash, a crash never
          restarted, or a barrier leave whose epoch does not match the
          node's last enter across a recovery boundary *)
}

let ok report = report.violations = [] && report.fault_errors = []

let check ~nprocs (stream : Obs.stamped array) =
  let vcs = Array.init nprocs (fun _ -> Hb.zero ~nprocs) in
  let last_release : (int, Hb.t) Hashtbl.t = Hashtbl.create 16 in
  let barrier_acc : (int, Hb.t) Hashtbl.t = Hashtbl.create 16 in
  let locations : (int * int, location) Hashtbl.t = Hashtbl.create 256 in
  let location key =
    match Hashtbl.find_opt locations key with
    | Some l -> l
    | None ->
      let l = { history = []; first_write = Array.make nprocs 0 } in
      Hashtbl.add locations key l;
      l
  in
  let reads = ref 0 in
  let writes = ref 0 in
  let racy = ref 0 in
  let violations = ref [] in
  (* Crash/restart structure.  The per-node Hb clock deliberately
     survives a crash: the application's causal past is durable even
     though the node's protocol state is not, so a recovered node's
     reads are checked against the same happens-before as anyone
     else's — that is the recovery contract. *)
  let down = Array.make nprocs false in
  let in_epoch = Array.make nprocs (-1) in
  let fault_errors = ref [] in
  let fault_err fmt =
    Printf.ksprintf (fun s -> fault_errors := s :: !fault_errors) fmt
  in
  Array.iteri
    (fun index { Obs.node; obs; _ } ->
      (match obs with
      | Obs.Crash ->
        if down.(node) then
          fault_err "observation #%d: node %d crashed while already down"
            index node
        else down.(node) <- true
      | Obs.Restart ->
        if not down.(node) then
          fault_err "observation #%d: node %d restarted without a crash"
            index node
        else down.(node) <- false
      | _ ->
        if down.(node) then
          fault_err "observation #%d: %s on crashed node %d" index
            (Obs.tag obs) node);
      (match obs with
      | Obs.Barrier_enter { epoch } ->
        if in_epoch.(node) <> -1 then
          fault_err
            "observation #%d: node %d entered barrier epoch %d while inside \
             epoch %d"
            index node epoch in_epoch.(node);
        in_epoch.(node) <- epoch
      | Obs.Barrier_leave { epoch } ->
        if in_epoch.(node) <> epoch then
          fault_err
            "observation #%d: node %d left barrier epoch %d but last entered \
             %d"
            index node epoch in_epoch.(node);
        in_epoch.(node) <- -1
      | _ -> ());
      let vc = vcs.(node) in
      Hb.tick vc ~node;
      match obs with
      | Obs.Crash | Obs.Restart -> ()
      | Obs.Write { page; off; bits; _ } ->
        incr writes;
        let l = location (page, off) in
        l.history <-
          { w_vc = Hb.copy vc; w_bits = bits; w_node = node; w_index = index }
          :: List.filter (fun w -> not (Hb.leq w.w_vc vc)) l.history;
        if l.first_write.(node) = 0 then
          l.first_write.(node) <- Hb.get vc node
      | Obs.Read { page; off; width; bits } ->
        incr reads;
        let l = location (page, off) in
        (* The initial zero is legal only while no write to the word is
           in the read's causal past. *)
        let init_legal =
          Array.for_all Fun.id
            (Array.mapi
               (fun n first -> first = 0 || first > Hb.get vc n)
               l.first_write)
        in
        let candidates =
          List.map (fun w -> (w.w_index, w.w_bits)) l.history
          @ (if init_legal then [ (-1, 0L) ] else [])
        in
        let distinct =
          List.sort_uniq compare (List.map snd candidates)
        in
        if List.length distinct > 1 then incr racy;
        if not (List.mem bits distinct) then
          violations :=
            {
              v_index = index;
              v_node = node;
              v_page = page;
              v_off = off;
              v_width = width;
              v_got = bits;
              v_candidates = candidates;
            }
            :: !violations
      | Obs.Acquire { lock } -> (
        match Hashtbl.find_opt last_release lock with
        | Some rel -> Hb.join_into ~dst:vc ~src:rel
        | None -> ())
      | Obs.Release { lock } ->
        Hashtbl.replace last_release lock (Hb.copy vc)
      | Obs.Barrier_enter { epoch } -> (
        match Hashtbl.find_opt barrier_acc epoch with
        | Some acc -> Hb.join_into ~dst:acc ~src:vc
        | None -> Hashtbl.add barrier_acc epoch (Hb.copy vc))
      | Obs.Barrier_leave { epoch } -> (
        match Hashtbl.find_opt barrier_acc epoch with
        | Some acc -> Hb.join_into ~dst:vc ~src:acc
        | None -> ()))
    stream;
  Array.iteri
    (fun node d ->
      if d then fault_err "node %d still crashed at end of run" node)
    down;
  {
    nprocs;
    observations = Array.length stream;
    reads = !reads;
    writes = !writes;
    racy_reads = !racy;
    violations = List.rev !violations;
    fault_errors = List.rev !fault_errors;
  }

(* ------------------------------------------------------------------ *)
(* Counterexample formatting                                          *)
(* ------------------------------------------------------------------ *)

let pp_violation ppf v =
  let value = Obs.value_string ~width:v.v_width in
  let candidate (idx, bits) =
    if idx = -1 then Printf.sprintf "%s (initial)" (value bits)
    else Printf.sprintf "%s (write #%d)" (value bits) idx
  in
  Format.fprintf ppf
    "node %d read %s from page %d offset %d (observation #%d); legal: %s"
    v.v_node (value v.v_got) v.v_page v.v_off v.v_index
    (match v.v_candidates with
    | [] -> "none recorded"
    | cs -> String.concat " | " (List.map candidate cs))

(* The trace window worth reading around a violation: the candidate
   writes, every synchronization operation, and every access to the
   violating word, ending at the offending read. *)
let pp_counterexample ppf (stream : Obs.stamped array) v =
  Format.fprintf ppf "VIOLATION: %a@." pp_violation v;
  Format.fprintf ppf "relevant observations:@.";
  let candidate_indices = List.map fst v.v_candidates in
  for i = 0 to v.v_index do
    let s = stream.(i) in
    let relevant =
      i = v.v_index
      || List.mem i candidate_indices
      || Obs.location s.Obs.obs = Some (v.v_page, v.v_off)
      || Obs.location s.Obs.obs = None
    in
    if relevant then
      Format.fprintf ppf "  #%-4d %a%s@." i Obs.pp s
        (if i = v.v_index then "   <-- violation"
         else if List.mem i candidate_indices then "   <-- legal candidate"
         else "")
  done

let pp_report ppf r =
  Format.fprintf ppf
    "oracle: %d observations (%d reads, %d writes, %d racy) on %d nodes — %s"
    r.observations r.reads r.writes r.racy_reads r.nprocs
    (match (r.violations, r.fault_errors) with
    | [], [] -> "no violations"
    | vs, fs ->
      String.concat ", "
        ((match vs with
         | [] -> []
         | _ -> [ Printf.sprintf "%d VIOLATION(S)" (List.length vs) ])
        @
        match fs with
        | [] -> []
        | _ -> [ Printf.sprintf "%d FAULT ERROR(S)" (List.length fs) ]));
  List.iter (fun e -> Format.fprintf ppf "@.  fault error: %s" e)
    r.fault_errors
