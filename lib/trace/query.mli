(** Querying a captured event stream.

    Operates on plain [Event.stamped list]s — typically
    {!Sink.ring_contents} of a ring sink, or {!of_jsonl} on a trace file
    read back from disk.  All combinators take the same optional
    predicate set and combine the given criteria conjunctively:

    - [node]: emitted on this node;
    - [page]: concerns this page ({!Event.page});
    - [tag]: constructor label ({!Event.tag}, e.g. ["diff-create"]);
    - [since]/[until]: inclusive simulated-time window (ns).

    Example — "no diffs were ever made for page 3 after 2 µs":

    {[
      assert (Query.count ~page:3 ~tag:"diff-create" ~since:2_000 evs = 0)
    ]} *)

val filter :
  ?node:int ->
  ?page:int ->
  ?tag:string ->
  ?since:int ->
  ?until:int ->
  Event.stamped list ->
  Event.stamped list

val count :
  ?node:int ->
  ?page:int ->
  ?tag:string ->
  ?since:int ->
  ?until:int ->
  Event.stamped list ->
  int

(** Earliest matching event (the list is assumed in emission order). *)
val first :
  ?node:int ->
  ?page:int ->
  ?tag:string ->
  ?since:int ->
  ?until:int ->
  Event.stamped list ->
  Event.stamped option

(** Latest matching event. *)
val last :
  ?node:int ->
  ?page:int ->
  ?tag:string ->
  ?since:int ->
  ?until:int ->
  Event.stamped list ->
  Event.stamped option

(** Distinct node ids appearing in the stream, ascending. *)
val nodes : Event.stamped list -> int list

(** Distinct pages referenced by the stream, ascending. *)
val pages : Event.stamped list -> int list

(** Parse the contents of a JSONL trace file back into events.
    Unparseable lines are skipped. *)
val of_jsonl : string -> Event.stamped list
