module Kind = Adsm_net.Kind

type mode = Sw | Mw

type refusal = Fs | Measure

type t =
  | Read_fault of { page : int }
  | Write_fault of { page : int }
  | Twin_create of { page : int }
  | Twin_free of { page : int }
  | Diff_create of { page : int; seq : int; bytes : int; modified : int }
  | Diff_apply of { page : int; writer : int; seq : int }
  | Diff_gc of { count : int; bytes : int }
  | Gc_drop of { page : int }
  | Mode_change of { page : int; mode : mode }
  | Own_request of { page : int; owner : int; version : int }
  | Own_grant of { page : int; requester : int; version : int }
  | Own_refuse of { page : int; requester : int; reason : refusal }
  | Lock_acquire of { lock : int }
  | Lock_release of { lock : int }
  | Barrier_enter of { epoch : int }
  | Barrier_leave of { epoch : int }
  | Msg_send of { dst : int; kind : Kind.t; bytes : int }
  | Msg_deliver of { src : int; kind : Kind.t; bytes : int }
  | Compute of { ns : int }
  | Sim_events of { executed : int }

type stamped = { time : int; node : int; event : t }

let mode_label = function Sw -> "sw" | Mw -> "mw"

let mode_of_label = function "sw" -> Some Sw | "mw" -> Some Mw | _ -> None

let refusal_label = function Fs -> "fs" | Measure -> "measure"

let refusal_of_label = function
  | "fs" -> Some Fs
  | "measure" -> Some Measure
  | _ -> None

let tag = function
  | Read_fault _ -> "read-fault"
  | Write_fault _ -> "write-fault"
  | Twin_create _ -> "twin-create"
  | Twin_free _ -> "twin-free"
  | Diff_create _ -> "diff-create"
  | Diff_apply _ -> "diff-apply"
  | Diff_gc _ -> "diff-gc"
  | Gc_drop _ -> "gc-drop"
  | Mode_change _ -> "mode-change"
  | Own_request _ -> "own-request"
  | Own_grant _ -> "own-grant"
  | Own_refuse _ -> "own-refuse"
  | Lock_acquire _ -> "lock-acquire"
  | Lock_release _ -> "lock-release"
  | Barrier_enter _ -> "barrier-enter"
  | Barrier_leave _ -> "barrier-leave"
  | Msg_send _ -> "msg-send"
  | Msg_deliver _ -> "msg-deliver"
  | Compute _ -> "compute"
  | Sim_events _ -> "sim-events"

let page = function
  | Read_fault { page }
  | Write_fault { page }
  | Twin_create { page }
  | Twin_free { page }
  | Diff_create { page; _ }
  | Diff_apply { page; _ }
  | Gc_drop { page }
  | Mode_change { page; _ }
  | Own_request { page; _ }
  | Own_grant { page; _ }
  | Own_refuse { page; _ } ->
    Some page
  | Diff_gc _ | Lock_acquire _ | Lock_release _ | Barrier_enter _
  | Barrier_leave _ | Msg_send _ | Msg_deliver _ | Compute _ | Sim_events _ ->
    None

(* ------------------------------------------------------------------ *)
(* JSON codec                                                         *)
(* ------------------------------------------------------------------ *)

(* Payload fields only (tag/time/node are added by [to_json]). *)
let args = function
  | Read_fault { page } | Write_fault { page } | Twin_create { page }
  | Twin_free { page } | Gc_drop { page } ->
    [ ("page", Json.Int page) ]
  | Diff_create { page; seq; bytes; modified } ->
    [
      ("page", Json.Int page);
      ("seq", Json.Int seq);
      ("bytes", Json.Int bytes);
      ("modified", Json.Int modified);
    ]
  | Diff_apply { page; writer; seq } ->
    [ ("page", Json.Int page); ("writer", Json.Int writer); ("seq", Json.Int seq) ]
  | Diff_gc { count; bytes } ->
    [ ("count", Json.Int count); ("bytes", Json.Int bytes) ]
  | Mode_change { page; mode } ->
    [ ("page", Json.Int page); ("mode", Json.String (mode_label mode)) ]
  | Own_request { page; owner; version } ->
    [ ("page", Json.Int page); ("owner", Json.Int owner); ("version", Json.Int version) ]
  | Own_grant { page; requester; version } ->
    [
      ("page", Json.Int page);
      ("requester", Json.Int requester);
      ("version", Json.Int version);
    ]
  | Own_refuse { page; requester; reason } ->
    [
      ("page", Json.Int page);
      ("requester", Json.Int requester);
      ("reason", Json.String (refusal_label reason));
    ]
  | Lock_acquire { lock } | Lock_release { lock } -> [ ("lock", Json.Int lock) ]
  | Barrier_enter { epoch } | Barrier_leave { epoch } ->
    [ ("epoch", Json.Int epoch) ]
  | Msg_send { dst; kind; bytes } ->
    [
      ("dst", Json.Int dst);
      ("kind", Json.String (Kind.to_string kind));
      ("bytes", Json.Int bytes);
    ]
  | Msg_deliver { src; kind; bytes } ->
    [
      ("src", Json.Int src);
      ("kind", Json.String (Kind.to_string kind));
      ("bytes", Json.Int bytes);
    ]
  | Compute { ns } -> [ ("ns", Json.Int ns) ]
  | Sim_events { executed } -> [ ("executed", Json.Int executed) ]

let to_json { time; node; event } =
  Json.Obj
    (("t", Json.Int time)
    :: ("node", Json.Int node)
    :: ("ev", Json.String (tag event))
    :: args event)

let of_json json =
  let ( let* ) o f = Option.bind o f in
  let field key conv = let* v = Json.member key json in conv v in
  let int key = field key Json.to_int in
  let str key = field key Json.to_str in
  let kind key = let* s = str key in Kind.of_string s in
  let event =
    let* tag = str "ev" in
    match tag with
    | "read-fault" ->
      let* page = int "page" in
      Some (Read_fault { page })
    | "write-fault" ->
      let* page = int "page" in
      Some (Write_fault { page })
    | "twin-create" ->
      let* page = int "page" in
      Some (Twin_create { page })
    | "twin-free" ->
      let* page = int "page" in
      Some (Twin_free { page })
    | "diff-create" ->
      let* page = int "page" in
      let* seq = int "seq" in
      let* bytes = int "bytes" in
      let* modified = int "modified" in
      Some (Diff_create { page; seq; bytes; modified })
    | "diff-apply" ->
      let* page = int "page" in
      let* writer = int "writer" in
      let* seq = int "seq" in
      Some (Diff_apply { page; writer; seq })
    | "diff-gc" ->
      let* count = int "count" in
      let* bytes = int "bytes" in
      Some (Diff_gc { count; bytes })
    | "gc-drop" ->
      let* page = int "page" in
      Some (Gc_drop { page })
    | "mode-change" ->
      let* page = int "page" in
      let* mode = let* s = str "mode" in mode_of_label s in
      Some (Mode_change { page; mode })
    | "own-request" ->
      let* page = int "page" in
      let* owner = int "owner" in
      let* version = int "version" in
      Some (Own_request { page; owner; version })
    | "own-grant" ->
      let* page = int "page" in
      let* requester = int "requester" in
      let* version = int "version" in
      Some (Own_grant { page; requester; version })
    | "own-refuse" ->
      let* page = int "page" in
      let* requester = int "requester" in
      let* reason = let* s = str "reason" in refusal_of_label s in
      Some (Own_refuse { page; requester; reason })
    | "lock-acquire" ->
      let* lock = int "lock" in
      Some (Lock_acquire { lock })
    | "lock-release" ->
      let* lock = int "lock" in
      Some (Lock_release { lock })
    | "barrier-enter" ->
      let* epoch = int "epoch" in
      Some (Barrier_enter { epoch })
    | "barrier-leave" ->
      let* epoch = int "epoch" in
      Some (Barrier_leave { epoch })
    | "msg-send" ->
      let* dst = int "dst" in
      let* kind = kind "kind" in
      let* bytes = int "bytes" in
      Some (Msg_send { dst; kind; bytes })
    | "msg-deliver" ->
      let* src = int "src" in
      let* kind = kind "kind" in
      let* bytes = int "bytes" in
      Some (Msg_deliver { src; kind; bytes })
    | "compute" ->
      let* ns = int "ns" in
      Some (Compute { ns })
    | "sim-events" ->
      let* executed = int "executed" in
      Some (Sim_events { executed })
    | _ -> None
  in
  let* time = int "t" in
  let* node = int "node" in
  let* event = event in
  Some { time; node; event }

let pp ppf { time; node; event } =
  Format.fprintf ppf "[%d @%dns] %s" node time
    (Json.to_string (Json.Obj (("ev", Json.String (tag event)) :: args event)))
