type t = { emit : Event.stamped -> unit; close : unit -> unit }

let null = { emit = (fun _ -> ()); close = (fun () -> ()) }

(* ------------------------------------------------------------------ *)
(* Ring buffer                                                        *)
(* ------------------------------------------------------------------ *)

type ring = {
  capacity : int;
  q : Event.stamped Queue.t;
  mutable dropped : int;
}

let ring ?(capacity = 65_536) () =
  if capacity <= 0 then invalid_arg "Sink.ring: capacity must be positive";
  { capacity; q = Queue.create (); dropped = 0 }

let ring_sink r =
  {
    emit =
      (fun ev ->
        if Queue.length r.q = r.capacity then begin
          ignore (Queue.pop r.q);
          r.dropped <- r.dropped + 1
        end;
        Queue.push ev r.q);
    close = (fun () -> ());
  }

let ring_contents r = List.of_seq (Queue.to_seq r.q)

let ring_dropped r = r.dropped

(* ------------------------------------------------------------------ *)
(* JSONL                                                              *)
(* ------------------------------------------------------------------ *)

let jsonl write =
  let buf = Buffer.create 256 in
  {
    emit =
      (fun ev ->
        Buffer.clear buf;
        Json.add_to_buffer buf (Event.to_json ev);
        Buffer.add_char buf '\n';
        write (Buffer.contents buf));
    close = (fun () -> ());
  }

(* ------------------------------------------------------------------ *)
(* Chrome trace_event JSON (Perfetto / chrome://tracing)              *)
(* ------------------------------------------------------------------ *)

(* Mapping:
   - one Perfetto track per simulated node (pid = tid = node id, named
     through "process_name" metadata records);
   - barriers render as duration slices ("B"/"E" pairs: the slice is the
     node's time inside the barrier, including any GC round);
   - compute charges render as complete slices ("X" with [dur]);
   - the engine probe renders as a counter track ("C");
   - everything else is a thread-scoped instant ("i") carrying its
     payload fields in [args].
   Timestamps are microseconds (float), per the trace_event spec. *)

let chrome_category (ev : Event.t) =
  match ev with
  | Event.Msg_send _ | Event.Msg_deliver _ -> "net"
  | Event.Lock_acquire _ | Event.Lock_release _ | Event.Barrier_enter _
  | Event.Barrier_leave _ ->
    "sync"
  | Event.Sim_events _ -> "sim"
  | _ -> "dsm"

let chrome_record { Event.time; node; event } =
  let ts = ("ts", Json.Float (float_of_int time /. 1_000.)) in
  let common name ph =
    [
      ("name", Json.String name);
      ("cat", Json.String (chrome_category event));
      ("ph", Json.String ph);
      ts;
      ("pid", Json.Int node);
      ("tid", Json.Int node);
    ]
  in
  let with_args fields = fields @ [ ("args", Json.Obj (Event.args event)) ] in
  match event with
  | Event.Barrier_enter _ -> Json.Obj (with_args (common "barrier" "B"))
  | Event.Barrier_leave _ -> Json.Obj (common "barrier" "E")
  | Event.Compute { ns } ->
    Json.Obj
      (with_args
         (common "compute" "X" @ [ ("dur", Json.Float (float_of_int ns /. 1_000.)) ]))
  | Event.Sim_events { executed } ->
    Json.Obj
      (common "events executed" "C" @ [ ("args", Json.Obj [ ("executed", Json.Int executed) ]) ])
  | _ ->
    Json.Obj
      (with_args (common (Event.tag event) "i" @ [ ("s", Json.String "t") ]))

let chrome ~nodes write =
  write "{\"traceEvents\":[";
  let first = ref true in
  let emit_json json =
    if !first then first := false else write ",";
    write (Json.to_string json);
    write "\n"
  in
  for node = 0 to nodes - 1 do
    emit_json
      (Json.Obj
         [
           ("name", Json.String "process_name");
           ("ph", Json.String "M");
           ("pid", Json.Int node);
           ("tid", Json.Int node);
           ("args", Json.Obj [ ("name", Json.String (Printf.sprintf "node %d" node)) ]);
         ])
  done;
  let closed = ref false in
  {
    emit = (fun ev -> emit_json (chrome_record ev));
    close =
      (fun () ->
        if not !closed then begin
          closed := true;
          write "]}\n"
        end);
  }

(* ------------------------------------------------------------------ *)
(* File convenience                                                   *)
(* ------------------------------------------------------------------ *)

type format = Jsonl | Chrome

let format_of_string = function
  | "jsonl" -> Some Jsonl
  | "chrome" -> Some Chrome
  | _ -> None

let file format ~nodes path =
  let oc = open_out path in
  let inner =
    match format with
    | Jsonl -> jsonl (output_string oc)
    | Chrome -> chrome ~nodes (output_string oc)
  in
  let closed = ref false in
  {
    emit = inner.emit;
    close =
      (fun () ->
        if not !closed then begin
          closed := true;
          inner.close ();
          close_out oc
        end);
  }
