type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Emission                                                           *)
(* ------------------------------------------------------------------ *)

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec add_to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    (* JSON has no NaN/infinity; clamp to null like most encoders. *)
    if Float.is_finite f then
      (* Shortest representation that round-trips, with a guaranteed
         '.'/'e' so the value parses back as a float. *)
      let s = Printf.sprintf "%.17g" f in
      let s =
        let short = Printf.sprintf "%.12g" f in
        if float_of_string short = f then short else s
      in
      if String.exists (fun c -> c = '.' || c = 'e' || c = 'n') s then
        Buffer.add_string buf s
      else Buffer.add_string buf (s ^ ".0")
    else Buffer.add_string buf "null"
  | String s -> add_escaped buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        add_to_buffer buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        add_escaped buf k;
        Buffer.add_char buf ':';
        add_to_buffer buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 128 in
  add_to_buffer buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                            *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

let parse_exn s =
  let n = String.length s in
  let pos = ref 0 in
  let error msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else error (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else error (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then error "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (if !pos >= n then error "unterminated escape"
           else
             match s.[!pos] with
             | '"' -> Buffer.add_char buf '"'; advance ()
             | '\\' -> Buffer.add_char buf '\\'; advance ()
             | '/' -> Buffer.add_char buf '/'; advance ()
             | 'b' -> Buffer.add_char buf '\b'; advance ()
             | 'f' -> Buffer.add_char buf '\012'; advance ()
             | 'n' -> Buffer.add_char buf '\n'; advance ()
             | 'r' -> Buffer.add_char buf '\r'; advance ()
             | 't' -> Buffer.add_char buf '\t'; advance ()
             | 'u' ->
               advance ();
               if !pos + 4 > n then error "truncated \\u escape";
               let code =
                 try int_of_string ("0x" ^ String.sub s !pos 4)
                 with _ -> error "bad \\u escape"
               in
               pos := !pos + 4;
               (* Encode the code point as UTF-8 (BMP only). *)
               if code < 0x80 then Buffer.add_char buf (Char.chr code)
               else if code < 0x800 then begin
                 Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                 Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
               end
               else begin
                 Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                 Buffer.add_char buf
                   (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                 Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
               end
             | c -> error (Printf.sprintf "bad escape \\%C" c));
          loop ()
        | c -> Buffer.add_char buf c; advance (); loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') text then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> error "bad number"
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> error "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          fields := (k, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); members ()
          | Some '}' -> advance ()
          | _ -> error "expected ',' or '}'"
        in
        members ();
        Obj (List.rev !fields)
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value () in
          items := v :: !items;
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); elements ()
          | Some ']' -> advance ()
          | _ -> error "expected ',' or ']'"
        in
        elements ();
        List (List.rev !items)
      end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then error "trailing input";
  v

let parse s =
  match parse_exn s with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors                                                          *)
(* ------------------------------------------------------------------ *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function Int i -> Some i | _ -> None

let to_str = function String s -> Some s | _ -> None

let to_list = function List l -> Some l | _ -> None
