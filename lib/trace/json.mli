(** Minimal JSON tree: enough to emit and parse the trace formats.

    The tracing subsystem must not pull a JSON dependency into the core
    libraries, so this module implements the small subset the {!Sink}
    writers ({{!Sink.jsonl} JSONL} and Chrome [trace_event]) and the
    test-side parse-back need: a value tree, an encoder with correct
    string escaping, and a strict recursive-descent parser.  Integers and
    floats are kept distinct ([Int] vs [Float]) so event fields round-trip
    exactly. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list  (** fields in emission order *)

(** Append the encoding of a value to a buffer (no trailing newline). *)
val add_to_buffer : Buffer.t -> t -> unit

val to_string : t -> string

(** Strict parse of a complete JSON document ([Error] carries the offset
    of the first syntax error).  [\uXXXX] escapes are decoded to UTF-8
    (basic multilingual plane only — all the trace emits is ASCII). *)
val parse : string -> (t, string) result

(** Raising variant of {!parse}.
    @raise Parse_error on malformed input. *)
val parse_exn : string -> t

exception Parse_error of string

(** [member key json] is the field [key] of an [Obj], if present. *)
val member : string -> t -> t option

val to_int : t -> int option

val to_str : t -> string option

val to_list : t -> t list option
