type t = {
  on : bool;
  sinks : Sink.t array;
  mutable emitted : int;
  mutable closed : bool;
}

let disabled = { on = false; sinks = [||]; emitted = 0; closed = true }

let create sinks =
  { on = true; sinks = Array.of_list sinks; emitted = 0; closed = false }

let enabled t = t.on

let emit t ~time ~node event =
  if t.on then begin
    let stamped = { Event.time; node; event } in
    Array.iter (fun (s : Sink.t) -> s.emit stamped) t.sinks;
    t.emitted <- t.emitted + 1
  end

let emitted t = t.emitted

let close t =
  if not t.closed then begin
    t.closed <- true;
    Array.iter (fun (s : Sink.t) -> s.close ()) t.sinks
  end
