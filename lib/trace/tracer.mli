(** The emission front-end: a guard bit plus a fan-out to sinks.

    Instrumented code holds a [Tracer.t] and wraps every emission in

    {[
      if Tracer.enabled tracer then
        Tracer.emit tracer ~time ~node (Event.Diff_create { ... })
    ]}

    The [enabled] guard is the whole zero-cost story: when tracing is
    off ({!disabled}) the event constructor argument is never built, so
    the instrumented hot paths allocate nothing and the simulation's
    observable numbers (events executed, wire bytes) are bit-identical
    to an uninstrumented build.  [test/test_trace.ml] pins this with a
    minor-words check.

    Emission never perturbs the simulation either way: the tracer only
    appends to sinks, it never schedules engine events or advances
    time. *)

type t

(** The off tracer: {!enabled} is [false], {!emit} does nothing. *)
val disabled : t

(** A live tracer fanning out to the given sinks. *)
val create : Sink.t list -> t

val enabled : t -> bool

(** [emit t ~time ~node ev] stamps [ev] and hands it to every sink.
    No-op when [t] is {!disabled}. *)
val emit : t -> time:int -> node:int -> Event.t -> unit

(** Number of events emitted so far. *)
val emitted : t -> int

(** Close all sinks (flush file footers etc.).  Idempotent. *)
val close : t -> unit
