let matches ?node ?page ?tag ?since ?until (ev : Event.stamped) =
  (match node with None -> true | Some n -> ev.node = n)
  && (match page with None -> true | Some p -> Event.page ev.event = Some p)
  && (match tag with None -> true | Some t -> Event.tag ev.event = t)
  && (match since with None -> true | Some t -> ev.time >= t)
  && match until with None -> true | Some t -> ev.time <= t

let filter ?node ?page ?tag ?since ?until events =
  List.filter (matches ?node ?page ?tag ?since ?until) events

let count ?node ?page ?tag ?since ?until events =
  List.fold_left
    (fun acc ev -> if matches ?node ?page ?tag ?since ?until ev then acc + 1 else acc)
    0 events

let first ?node ?page ?tag ?since ?until events =
  List.find_opt (matches ?node ?page ?tag ?since ?until) events

let last ?node ?page ?tag ?since ?until events =
  List.fold_left
    (fun acc ev -> if matches ?node ?page ?tag ?since ?until ev then Some ev else acc)
    None events

let nodes events =
  List.sort_uniq compare (List.map (fun (ev : Event.stamped) -> ev.node) events)

let pages events =
  List.sort_uniq compare
    (List.filter_map (fun (ev : Event.stamped) -> Event.page ev.event) events)

let of_jsonl text =
  String.split_on_char '\n' text
  |> List.filter (fun line -> String.trim line <> "")
  |> List.filter_map (fun line ->
         match Json.parse line with
         | Ok json -> Event.of_json json
         | Error _ -> None)
