(** The typed trace-event vocabulary.

    Every observable protocol action emits exactly one of these
    constructors, stamped ({!stamped}) with the simulated time and the
    node it happened on; the page (where one is involved) lives inside
    the constructor and is recovered uniformly with {!page}.  The
    vocabulary deliberately mirrors the page-level narratives of the
    paper's Section 6 — mode transitions, diff creation and collection,
    ownership traffic — so a run's account of "why protocol X wins on
    application Y" can be read (and asserted, via {!Query}) straight off
    the event stream.

    See [TRACING.md] at the repository root for the emission points, the
    sink formats and a worked Perfetto walkthrough. *)

module Kind = Adsm_net.Kind

(** Which per-page protocol mode a {!Mode_change} lands in: [Sw] means
    exclusive ownership (whole-page transfers), [Mw] means twin/diff. *)
type mode = Sw | Mw

(** Why an ownership request was refused: write-write false sharing
    ([Fs], the paper's ownership-refusal test) or a forced
    granularity-measurement round ([Measure], WFS+WG only). *)
type refusal = Fs | Measure

type t =
  | Read_fault of { page : int }  (** read access miss entered the runtime *)
  | Write_fault of { page : int }  (** write to a protected page *)
  | Twin_create of { page : int }  (** MW write path captured a twin *)
  | Twin_free of { page : int }  (** twin discarded (diffed or GC'd) *)
  | Diff_create of { page : int; seq : int; bytes : int; modified : int }
      (** interval [seq]'s diff was materialized: [bytes] encoded size,
          [modified] bytes actually changed (the write granularity) *)
  | Diff_apply of { page : int; writer : int; seq : int }
      (** diff [writer]/[seq] merged into the local frame *)
  | Diff_gc of { count : int; bytes : int }
      (** this node purged its diff store at a garbage-collection round *)
  | Gc_drop of { page : int }
      (** this node dropped its copy of the page at a GC round *)
  | Mode_change of { page : int; mode : mode }
      (** the page's protocol mode flipped (SW{%html:&harr;%}MW) at this node *)
  | Own_request of { page : int; owner : int; version : int }
      (** ownership requested from [owner] at page version [version] *)
  | Own_grant of { page : int; requester : int; version : int }
      (** the (serving) owner granted ownership to [requester] *)
  | Own_refuse of { page : int; requester : int; reason : refusal }
      (** the owner refused — the adaptation trigger *)
  | Lock_acquire of { lock : int }  (** critical section entered *)
  | Lock_release of { lock : int }
  | Barrier_enter of { epoch : int }  (** arrived at the barrier *)
  | Barrier_leave of { epoch : int }  (** released (incl. any GC round) *)
  | Msg_send of { dst : int; kind : Kind.t; bytes : int }
      (** payload handed to this node's NIC *)
  | Msg_deliver of { src : int; kind : Kind.t; bytes : int }
      (** payload delivered to this node's handler *)
  | Compute of { ns : int }  (** application compute slice of [ns] ns *)
  | Sim_events of { executed : int }
      (** engine probe sample: events executed so far (a counter track) *)

(** An event stamped with simulated time (ns) and the emitting node. *)
type stamped = { time : int; node : int; event : t }

(** Stable lowercase label of the constructor ("read-fault",
    "diff-create", ...) — the [ev] field of the JSONL encoding and the
    key {!Query} filters on. *)
val tag : t -> string

(** The page an event concerns, when it concerns one. *)
val page : t -> int option

val mode_label : mode -> string

val mode_of_label : string -> mode option

val refusal_label : refusal -> string

val refusal_of_label : string -> refusal option

(** Payload fields of the event as JSON (without the [t]/[node]/[ev]
    stamp) — what the Chrome sink puts in [args]. *)
val args : t -> (string * Json.t) list

(** Flat-object JSONL encoding:
    [{"t":<ns>,"node":<id>,"ev":"<tag>",<payload fields>}]. *)
val to_json : stamped -> Json.t

(** Inverse of {!to_json}; [None] on unknown tags or missing fields. *)
val of_json : Json.t -> stamped option

val pp : Format.formatter -> stamped -> unit
