(** Pluggable trace sinks.

    A sink is just a pair of callbacks ({!t}): the {!Tracer} fans each
    stamped event out to every attached sink, and calls [close] once at
    the end of the run.  Three concrete sinks are provided:

    - a bounded in-memory {!ring} buffer (what the tests and the
      {!Query} module read back);
    - a {!jsonl} writer — one flat JSON object per line, the stable
      machine-readable format ({!Event.to_json});
    - a {!chrome} writer — Chrome [trace_event] JSON, loadable in
      Perfetto ({:https://ui.perfetto.dev}) or [chrome://tracing] with
      one track per simulated node.

    Writers are byte-oriented ([string -> unit]) so they compose with
    [Buffer], channels or test probes; {!file} is the convenience that
    backs the [--trace FILE] command-line flag. *)

type t = { emit : Event.stamped -> unit; close : unit -> unit }

(** Swallows everything; closing is a no-op. *)
val null : t

(** {1 Ring buffer} *)

type ring

(** A bounded buffer keeping the most recent [capacity] (default 65536)
    events; older events are evicted silently (but counted). *)
val ring : ?capacity:int -> unit -> ring

val ring_sink : ring -> t

(** Buffered events, oldest first. *)
val ring_contents : ring -> Event.stamped list

(** Number of events evicted because the buffer was full. *)
val ring_dropped : ring -> int

(** {1 Writers} *)

(** [jsonl write] encodes each event with {!Event.to_json} and hands
    [write] one newline-terminated line per event. *)
val jsonl : (string -> unit) -> t

(** [chrome ~nodes write] streams a Chrome [trace_event] document.  The
    header and one [process_name] metadata record per node (so Perfetto
    shows a named track for each of the [nodes] simulated nodes) are
    written immediately; the footer is written on [close].  Barriers
    become duration slices ([B]/[E]), {!Event.Compute} becomes complete
    slices ([X]), {!Event.Sim_events} a counter track ([C]) and all
    other events thread-scoped instants.  Timestamps are microseconds,
    pid and tid are both the node id. *)
val chrome : nodes:int -> (string -> unit) -> t

(** {1 File convenience} *)

type format = Jsonl | Chrome

(** Recognizes the [--trace-format] spellings ["jsonl"] and ["chrome"]. *)
val format_of_string : string -> format option

(** [file format ~nodes path] opens [path] for writing and returns the
    corresponding writer sink; [close] flushes and closes the file (and
    is idempotent).  [nodes] is only consulted by the [Chrome] format. *)
val file : format -> nodes:int -> string -> t
