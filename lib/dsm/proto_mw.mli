(** MW: TreadMarks-style twin/diff multiple writer (paper Section 2.2). *)

include Protocol_intf.PROTOCOL
