(** Protocol selection: maps {!Config.protocol} to the first-class protocol
    module implementing it (WFS and WFS+WG share {!Proto_adaptive}; the
    variant-specific behavior reads the configuration through {!Mode}). *)

val get : Config.protocol -> Protocol_intf.t

val for_cluster : State.cluster -> Protocol_intf.t
