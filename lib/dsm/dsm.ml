module Engine = Adsm_sim.Engine
module Proc = Adsm_sim.Proc
module Rng = Adsm_sim.Rng
module Rpc = Adsm_net.Rpc
module Network = Adsm_net.Network
module Page = Adsm_mem.Page
module Perm = Adsm_mem.Perm
module Layout = Adsm_mem.Layout

type t = {
  cfg : Config.t;
  layout : Layout.t;
  mutable next_lock : int;
  mutable cluster : State.cluster option;  (** set once [run] starts *)
}

type ctx = { cluster : State.cluster; node : State.node }

type f64s = { f_region : Layout.region; f_len : int }

type i32s = { i_region : Layout.region; i_len : int }

type report = {
  time_ns : int;
  messages : int;
  payload_bytes : int;
  wire_bytes : int;
  by_kind : (string * (int * int)) list;
  stats : Stats.t;
  shared_pages : int;
  events : int;
}

let create cfg = { cfg; layout = Layout.create (); next_lock = 0; cluster = None }

let config t = t.cfg

let alloc_f64 t ~name ~len =
  if len <= 0 then invalid_arg "Dsm.alloc_f64: len must be positive";
  { f_region = Layout.alloc t.layout ~name ~bytes:(8 * len); f_len = len }

let alloc_i32 t ~name ~len =
  if len <= 0 then invalid_arg "Dsm.alloc_i32: len must be positive";
  { i_region = Layout.alloc t.layout ~name ~bytes:(4 * len); i_len = len }

let f64_len a = a.f_len

let i32_len a = a.i_len

let fresh_lock t =
  let l = t.next_lock in
  t.next_lock <- l + 1;
  l

let run ?(tracer = Adsm_trace.Tracer.disabled)
    ?(recorder = Adsm_check.Recorder.disabled) t app =
  let cfg = t.cfg in
  let engine = Engine.create ?schedule_seed:cfg.Config.schedule_fuzz () in
  let rpc = Rpc.create engine cfg.Config.net ~nodes:cfg.Config.nprocs in
  if Adsm_trace.Tracer.enabled tracer then begin
    (* Observation only: the monitor and probe run inside existing events
       and schedule nothing, so a traced run is event-for-event identical
       to an untraced one. *)
    Rpc.set_monitor rpc
      (Some
         {
           Network.on_send =
             (fun ~now ~src ~dst ~bytes ~kind ->
               Adsm_trace.Tracer.emit tracer ~time:now ~node:src
                 (Adsm_trace.Event.Msg_send { dst; kind; bytes }));
           on_deliver =
             (fun ~now ~src ~dst ~bytes ~kind ->
               Adsm_trace.Tracer.emit tracer ~time:now ~node:dst
                 (Adsm_trace.Event.Msg_deliver { src; kind; bytes }));
         });
    Engine.set_probe engine
      (Some
         (fun ~time ~executed ->
           if executed land 63 = 0 then
             Adsm_trace.Tracer.emit tracer ~time ~node:0
               (Adsm_trace.Event.Sim_events { executed })))
  end;
  let total_pages = Layout.total_pages t.layout in
  let nodes =
    Array.init cfg.Config.nprocs (fun id ->
        State.make_node ~cfg ~id ~total_pages)
  in
  let cluster =
    {
      State.cfg;
      engine;
      rpc;
      layout = t.layout;
      nodes;
      stats = Stats.create ~nprocs:cfg.Config.nprocs ();
      barrier_mgr =
        {
          State.epoch = 0;
          arrived = 0;
          arrivals = [];
          gc_requested = false;
          gc_done_count = 0;
        };
      next_lock = t.next_lock;
      running = cfg.Config.nprocs;
      tracer;
      recorder;
    }
  in
  t.cluster <- Some cluster;
  for node = 0 to cfg.Config.nprocs - 1 do
    Rpc.set_handler rpc ~node (fun ~src msg respond ->
        Proto.handle_message cluster ~node ~src msg respond)
  done;
  for id = 0 to cfg.Config.nprocs - 1 do
    Proc.spawn engine (fun () ->
        app { cluster; node = nodes.(id) };
        cluster.State.running <- cluster.State.running - 1)
  done;
  let time_ns = Engine.run engine in
  if cluster.State.running > 0 then begin
    let describe (n : State.node) =
      let waits = Buffer.create 64 in
      if n.State.barrier_wait <> None then Buffer.add_string waits " barrier";
      if n.State.gc_wait <> None then Buffer.add_string waits " gc";
      Hashtbl.iter
        (fun l _ -> Buffer.add_string waits (Printf.sprintf " lock:%d" l))
        n.State.lock_waits;
      Hashtbl.iter
        (fun p _ -> Buffer.add_string waits (Printf.sprintf " own:%d" p))
        n.State.own_waits;
      Printf.sprintf "node %d:%s" n.State.id
        (if Buffer.length waits = 0 then " (running/none)"
         else Buffer.contents waits)
    in
    let detail =
      String.concat "; " (Array.to_list (Array.map describe nodes))
    in
    failwith
      (Printf.sprintf
         "Dsm.run: deadlock — %d process(es) still blocked at simulated time \
          %d ns [%s]"
         cluster.State.running time_ns detail)
  end;
  (* Post-run protocol invariants: a completed run must leave no blocked
     continuation, queued ownership request or deferred reply behind — any
     of those means a protocol message was dropped. *)
  Array.iter
    (fun (n : State.node) ->
      let fail what =
        failwith
          (Printf.sprintf "Dsm.run: node %d finished with %s" n.State.id what)
      in
      if Hashtbl.length n.State.lock_waits > 0 then fail "a blocked lock wait";
      if Hashtbl.length n.State.own_waits > 0 then
        fail "a blocked ownership wait";
      if n.State.barrier_wait <> None then fail "a blocked barrier wait";
      if n.State.gc_wait <> None then fail "a blocked GC wait";
      if n.State.hlrc_waiting <> [] then fail "an unanswered HLRC fetch";
      Hashtbl.iter
        (fun lock (ls : State.lock_state) ->
          if ls.State.held then
            fail (Printf.sprintf "lock %d still held" lock))
        n.State.locks;
      Array.iter
        (fun (e : State.entry) ->
          if e.State.pending_own <> [] then
            fail
              (Printf.sprintf "queued ownership requests on page %d"
                 e.State.page))
        n.State.pages)
    nodes;
  let net = Rpc.network rpc in
  {
    time_ns;
    messages = Network.total_messages net;
    payload_bytes = Network.total_payload_bytes net;
    wire_bytes = Network.total_wire_bytes net;
    by_kind = Network.by_kind net;
    stats = cluster.State.stats;
    shared_pages = total_pages;
    events = Engine.events_executed engine;
  }

(* --- in-context operations --- *)

let me ctx = ctx.node.State.id

let nprocs ctx = ctx.cluster.State.cfg.Config.nprocs

let compute ctx ns =
  if State.tracing ctx.cluster then
    State.emit ctx.cluster ~node:ctx.node.State.id
      (Adsm_trace.Event.Compute { ns });
  Stats.add_time ctx.cluster.State.stats ~node:ctx.node.State.id
    ~category:Stats.Compute ~ns;
  Proc.sleep ctx.cluster.State.engine ns

let now ctx = Engine.now ctx.cluster.State.engine

let rng ctx = ctx.node.State.rng

let lock ctx l = Proto.lock ctx.cluster ctx.node l

let unlock ctx l = Proto.unlock ctx.cluster ctx.node l

let barrier ctx = Proto.barrier ctx.cluster ctx.node

(* --- shared-array accessors --- *)

let locate_f64 a i =
  if i < 0 || i >= a.f_len then
    invalid_arg
      (Printf.sprintf "Dsm: f64 index %d out of bounds [0,%d)" i a.f_len);
  let byte = 8 * i in
  (a.f_region.Layout.first_page + (byte / Page.size), byte mod Page.size)

let locate_i32 a i =
  if i < 0 || i >= a.i_len then
    invalid_arg
      (Printf.sprintf "Dsm: i32 index %d out of bounds [0,%d)" i a.i_len);
  let byte = 4 * i in
  (a.i_region.Layout.first_page + (byte / Page.size), byte mod Page.size)

let rec read_page ctx page off ~get =
  let e = ctx.node.State.pages.(page) in
  if Perm.allows_read e.State.perm then get (State.frame e) off
  else begin
    Proto.read_fault ctx.cluster ctx.node e;
    read_page ctx page off ~get
  end

let rec write_page ctx page off ~len ~set =
  let e = ctx.node.State.pages.(page) in
  if Perm.allows_write e.State.perm then begin
    set (State.frame e) off;
    if e.State.log_writes then begin
      (* software write detection (Config.write_ranges) *)
      e.State.logged_ranges <- (off, len) :: e.State.logged_ranges;
      e.State.logged_count <- e.State.logged_count + 1
    end
  end
  else begin
    Proto.write_fault ctx.cluster ctx.node e;
    write_page ctx page off ~len ~set
  end

let f64_get ctx a i =
  let page, off = locate_f64 a i in
  let v = read_page ctx page off ~get:Page.get_f64 in
  if State.checking ctx.cluster then
    State.observe ctx.cluster ~node:ctx.node.State.id
      (Adsm_check.Obs.Read { page; off; width = 8; bits = Int64.bits_of_float v });
  v

let f64_set ctx a i v =
  let page, off = locate_f64 a i in
  write_page ctx page off ~len:8 ~set:(fun p o -> Page.set_f64 p o v);
  if State.checking ctx.cluster then
    State.observe ctx.cluster ~node:ctx.node.State.id
      (Adsm_check.Obs.Write { page; off; width = 8; bits = Int64.bits_of_float v })

let i32_get ctx a i =
  let page, off = locate_i32 a i in
  let v = read_page ctx page off ~get:Page.get_i32 in
  if State.checking ctx.cluster then
    State.observe ctx.cluster ~node:ctx.node.State.id
      (Adsm_check.Obs.Read
         { page; off; width = 4; bits = Int64.of_int32 v });
  v

let i32_set ctx a i v =
  let page, off = locate_i32 a i in
  write_page ctx page off ~len:4 ~set:(fun p o -> Page.set_i32 p o v);
  if State.checking ctx.cluster then
    State.observe ctx.cluster ~node:ctx.node.State.id
      (Adsm_check.Obs.Write
         { page; off; width = 4; bits = Int64.of_int32 v })

let i32_add ctx a i v =
  let current = i32_get ctx a i in
  i32_set ctx a i (Int32.add current v)

let f64_pages _t a ~lo ~hi =
  if lo >= hi then []
  else
    Layout.pages_of_range a.f_region ~offset:(8 * lo) ~len:(8 * (hi - lo))
