module Engine = Adsm_sim.Engine
module Proc = Adsm_sim.Proc
module Rng = Adsm_sim.Rng
module Rpc = Adsm_net.Rpc
module Network = Adsm_net.Network
module Page = Adsm_mem.Page
module Perm = Adsm_mem.Perm
module Layout = Adsm_mem.Layout

type t = {
  cfg : Config.t;
  layout : Layout.t;
  mutable next_lock : int;
  mutable cluster : State.cluster option;  (** set once [run] starts *)
}

type ctx = { cluster : State.cluster; node : State.node }

type f64s = { f_region : Layout.region; f_len : int }

type i32s = { i_region : Layout.region; i_len : int }

type report = {
  time_ns : int;
  messages : int;
  payload_bytes : int;
  wire_bytes : int;
  by_kind : (string * (int * int)) list;
  stats : Stats.t;
  shared_pages : int;
  events : int;
}

let create cfg = { cfg; layout = Layout.create (); next_lock = 0; cluster = None }

let config t = t.cfg

let alloc_f64 t ~name ~len =
  if len <= 0 then invalid_arg "Dsm.alloc_f64: len must be positive";
  { f_region = Layout.alloc t.layout ~name ~bytes:(8 * len); f_len = len }

let alloc_i32 t ~name ~len =
  if len <= 0 then invalid_arg "Dsm.alloc_i32: len must be positive";
  { i_region = Layout.alloc t.layout ~name ~bytes:(4 * len); i_len = len }

let f64_len a = a.f_len

let i32_len a = a.i_len

let fresh_lock t =
  let l = t.next_lock in
  t.next_lock <- l + 1;
  l

let run ?(tracer = Adsm_trace.Tracer.disabled)
    ?(recorder = Adsm_check.Recorder.disabled) t app =
  let cfg = t.cfg in
  (* Fault-schedule gate.  Message faults (loss/dup/jitter/partitions)
     compose with every configuration; crash schedules additionally need
     the durable write-behind log of eagerly created diffs (so neither
     lazy diffing nor write-range logging, both of which keep dirty
     state outside the diff store at interval close) and a non-HLRC
     protocol (HLRC flushes diffs to homes and discards them locally, so
     a crashed home would need replicated-home recovery — out of
     scope). *)
  (match cfg.Config.faults with
  | None -> ()
  | Some sched ->
    (match Adsm_net.Fault.validate ~nprocs:cfg.Config.nprocs sched with
    | Ok () -> ()
    | Error msg -> invalid_arg ("Dsm.run: bad fault schedule: " ^ msg));
    if sched.Adsm_net.Fault.crashes <> [] then begin
      if cfg.Config.lazy_diffing then
        invalid_arg
          "Dsm.run: crash schedules are incompatible with lazy_diffing \
           (diffs must be durable at interval close)";
      if cfg.Config.write_ranges then
        invalid_arg
          "Dsm.run: crash schedules are incompatible with write_ranges \
           (logged ranges are volatile until diffed)";
      if cfg.Config.protocol = Config.Hlrc then
        invalid_arg
          "Dsm.run: crash schedules are not supported under HLRC (homes \
           hold the only diff copies; recovery needs replicated homes)"
    end);
  (* One event lane per simulated node: heap operations cost
     O(log per-node events) at large clusters.  The lane split never
     changes execution order (see Engine), so small runs stay
     byte-identical. *)
  (* Parallel-mode gate: fall back to the sequential engine whenever the
     request cannot run in parallel — one domain, one node, or schedule
     fuzzing (which permutes the sequence numbers the parallel merge
     relies on being monotone).  The lookahead is the fabric's static
     minimum delivery delay; it is > 0 for every preset cost model. *)
  let parallel =
    match cfg.Config.engine with
    | Config.Sequential -> None
    | Config.Parallel { domains } ->
      if domains <= 1 || cfg.Config.nprocs <= 1 || cfg.Config.schedule_fuzz <> None
      then None
      else
        let lookahead =
          Adsm_net.Topology.lookahead_ns cfg.Config.net cfg.Config.topology
        in
        if lookahead <= 0 then None
        else Some (min domains cfg.Config.nprocs, lookahead)
  in
  let engine =
    Engine.create ?schedule_seed:cfg.Config.schedule_fuzz
      ~lanes:cfg.Config.nprocs ?parallel ()
  in
  let topo =
    Adsm_net.Topology.make cfg.Config.net cfg.Config.topology
  in
  let rpc = Rpc.create_topo engine topo ~nodes:cfg.Config.nprocs in
  if Adsm_trace.Tracer.enabled tracer then begin
    (* Observation only: the monitor and probe run inside existing events
       and schedule nothing, so a traced run is event-for-event identical
       to an untraced one. *)
    Rpc.set_monitor rpc
      (Some
         {
           Network.on_send =
             (fun ~now ~src ~dst ~bytes ~kind ->
               Adsm_trace.Tracer.emit tracer ~time:now ~node:src
                 (Adsm_trace.Event.Msg_send { dst; kind; bytes }));
           on_deliver =
             (fun ~now ~src ~dst ~bytes ~kind ->
               Adsm_trace.Tracer.emit tracer ~time:now ~node:dst
                 (Adsm_trace.Event.Msg_deliver { src; kind; bytes }));
         });
    Engine.set_probe engine
      (Some
         (fun ~time ~executed ->
           if executed land 63 = 0 then
             Adsm_trace.Tracer.emit tracer ~time ~node:0
               (Adsm_trace.Event.Sim_events { executed })))
  end;
  let total_pages = Layout.total_pages t.layout in
  let nodes =
    Array.init cfg.Config.nprocs (fun id ->
        State.make_node ~cfg ~id ~total_pages)
  in
  let cluster =
    {
      State.cfg;
      engine;
      rpc;
      layout = t.layout;
      nodes;
      stats = Stats.create ~nprocs:cfg.Config.nprocs ();
      barrier_mgr =
        {
          State.epoch = 0;
          arrived = 0;
          arrivals = [];
          gc_requested = false;
          gc_done_count = 0;
        };
      next_lock = t.next_lock;
      running = cfg.Config.nprocs;
      tracer;
      recorder;
    }
  in
  t.cluster <- Some cluster;
  if Engine.is_parallel engine then
    (* Shared statistics updates must replay in global event order. *)
    Stats.set_defer cluster.State.stats (Some (Engine.defer engine));
  for node = 0 to cfg.Config.nprocs - 1 do
    Rpc.set_handler rpc ~node (fun ~src msg respond ->
        Proto.handle_message cluster ~node ~src msg respond)
  done;
  (match cfg.Config.faults with
  | None -> ()
  | Some sched ->
    let net = Rpc.network rpc in
    Network.set_faults net
      (Some
         (Adsm_net.Fault.runtime sched ~seed:cfg.Config.seed
            ~nodes:cfg.Config.nprocs));
    (* Crash and restart are lane-local events on the affected node: the
       crash parks subsequent deliveries and marks the node so its next
       DSM operation boundary fail-stops (Sync.crash_pause); the restart
       flushes the parked queue and resumes a process suspended in the
       downtime window. *)
    List.iter
      (fun (c : Adsm_net.Fault.crash) ->
        let n = nodes.(c.Adsm_net.Fault.node) in
        Engine.schedule_at ~lane:c.Adsm_net.Fault.node engine
          ~time:c.Adsm_net.Fault.at (fun () ->
            Network.fault_crash net ~node:c.Adsm_net.Fault.node;
            n.State.crash_pending <- true;
            n.State.crash_restart_at <- c.Adsm_net.Fault.at + c.Adsm_net.Fault.downtime);
        Engine.schedule_at ~lane:c.Adsm_net.Fault.node engine
          ~time:(c.Adsm_net.Fault.at + c.Adsm_net.Fault.downtime) (fun () ->
            Network.fault_restart net ~node:c.Adsm_net.Fault.node;
            match n.State.restart_wait with
            | Some ivar ->
              n.State.restart_wait <- None;
              Proc.Ivar.fill engine ivar ()
            | None -> ()))
      sched.Adsm_net.Fault.crashes);
  for id = 0 to cfg.Config.nprocs - 1 do
    Proc.spawn ~lane:id engine (fun () ->
        app { cluster; node = nodes.(id) };
        (* [running] is cluster-shared; decrement it in global order. *)
        Engine.defer engine (fun () ->
            cluster.State.running <- cluster.State.running - 1))
  done;
  let time_ns = Engine.run engine in
  if cluster.State.running > 0 then begin
    let describe (n : State.node) =
      let waits = Buffer.create 64 in
      if n.State.barrier_wait <> None then Buffer.add_string waits " barrier";
      if n.State.gc_wait <> None then Buffer.add_string waits " gc";
      Hashtbl.iter
        (fun l _ -> Buffer.add_string waits (Printf.sprintf " lock:%d" l))
        n.State.lock_waits;
      Hashtbl.iter
        (fun p _ -> Buffer.add_string waits (Printf.sprintf " own:%d" p))
        n.State.own_waits;
      Printf.sprintf "node %d:%s" n.State.id
        (if Buffer.length waits = 0 then " (running/none)"
         else Buffer.contents waits)
    in
    let detail =
      String.concat "; " (Array.to_list (Array.map describe nodes))
    in
    failwith
      (Printf.sprintf
         "Dsm.run: deadlock — %d process(es) still blocked at simulated time \
          %d ns [%s]"
         cluster.State.running time_ns detail)
  end;
  (* Post-run protocol invariants: a completed run must leave no blocked
     continuation, queued ownership request or deferred reply behind — any
     of those means a protocol message was dropped. *)
  Array.iter
    (fun (n : State.node) ->
      let fail what =
        failwith
          (Printf.sprintf "Dsm.run: node %d finished with %s" n.State.id what)
      in
      if Hashtbl.length n.State.lock_waits > 0 then fail "a blocked lock wait";
      if Hashtbl.length n.State.own_waits > 0 then
        fail "a blocked ownership wait";
      if n.State.barrier_wait <> None then fail "a blocked barrier wait";
      if n.State.gc_wait <> None then fail "a blocked GC wait";
      if n.State.hlrc_waiting <> [] then fail "an unanswered HLRC fetch";
      Hashtbl.iter
        (fun lock (ls : State.lock_state) ->
          if ls.State.held then
            fail (Printf.sprintf "lock %d still held" lock))
        n.State.locks;
      State.iter_entries n (fun (e : State.entry) ->
          if e.State.pending_own <> [] then
            fail
              (Printf.sprintf "queued ownership requests on page %d"
                 e.State.page)))
    nodes;
  let net = Rpc.network rpc in
  {
    time_ns;
    messages = Network.total_messages net;
    payload_bytes = Network.total_payload_bytes net;
    wire_bytes = Network.total_wire_bytes net;
    by_kind = Network.by_kind net;
    stats = cluster.State.stats;
    shared_pages = total_pages;
    events = Engine.events_executed engine;
  }

(* --- in-context operations --- *)

let me ctx = ctx.node.State.id

let nprocs ctx = ctx.cluster.State.cfg.Config.nprocs

let compute ctx ns =
  Proto.pause_if_crashed ctx.cluster ctx.node;
  (* Heterogeneous clusters: node [i] runs compute phases at
     [node_speeds.(i mod len)] times the base speed.  Protocol software
     costs (twinning, diffing, fault handling) stay at the calibrated
     base values — they model fixed DSM library code paths. *)
  let ns =
    let speeds = ctx.cluster.State.cfg.Config.node_speeds in
    if Array.length speeds = 0 then ns
    else
      let s = speeds.(ctx.node.State.id mod Array.length speeds) in
      max 0 (int_of_float (Float.round (float_of_int ns /. s)))
  in
  if State.tracing ctx.cluster then
    State.emit ctx.cluster ~node:ctx.node.State.id
      (Adsm_trace.Event.Compute { ns });
  Stats.add_time ctx.cluster.State.stats ~node:ctx.node.State.id
    ~category:Stats.Compute ~ns;
  Proc.sleep ctx.cluster.State.engine ns

let now ctx = Engine.now ctx.cluster.State.engine

let rng ctx = ctx.node.State.rng

let lock ctx l = Proto.lock ctx.cluster ctx.node l

let unlock ctx l = Proto.unlock ctx.cluster ctx.node l

let barrier ctx = Proto.barrier ctx.cluster ctx.node

(* --- shared-array accessors --- *)

(* The accessor hot path.  A scalar access compiles down to: bounds test,
   shift/mask address arithmetic (page sizes are powers of two), one-slot
   TLB probe, raw byte access.  Everything else — permission test against
   the entry, protocol faults, TLB fill, write logging — lives in the
   outlined cold paths below.  The TLB may only serve accesses the entry
   itself would have allowed: it is filled here after the permission check
   and reset by every site that downgrades a page's rights (see
   {!State.tlb_reset}), so hits never change the fault sequence.

   The loops use bounds-checked bytes primitives declared here rather
   than [Page.get_f64]/[set_f64]: without flambda a cross-module call is
   not inlined and every returned float is boxed — two minor words per
   word accessed.  Primitives applied directly are unboxed by the
   backend.  [Page] asserts a little-endian host at startup. *)

external get_32 : Bytes.t -> int -> int32 = "%caml_bytes_get32"

external set_32 : Bytes.t -> int -> int32 -> unit = "%caml_bytes_set32"

external get_64 : Bytes.t -> int -> int64 = "%caml_bytes_get64"

external set_64 : Bytes.t -> int -> int64 -> unit = "%caml_bytes_set64"

let[@inline never] oob_f64 i len =
  invalid_arg (Printf.sprintf "Dsm: f64 index %d out of bounds [0,%d)" i len)

let[@inline never] oob_i32 i len =
  invalid_arg (Printf.sprintf "Dsm: i32 index %d out of bounds [0,%d)" i len)

let[@inline never] oob_run kind i len bound =
  invalid_arg
    (Printf.sprintf "Dsm: %s run [%d,%d) out of bounds [0,%d)" kind i
       (i + len) bound)

let[@inline never] oob_buf fn =
  invalid_arg (Printf.sprintf "Dsm.%s: buffer range out of bounds" fn)

let install_tlb node page raw (e : State.entry) =
  node.State.tlb <-
    Some
      {
        State.t_page = page;
        t_raw = raw;
        t_entry = e;
        t_write = Perm.allows_write e.State.perm && not e.State.log_writes;
      }

let[@inline never] read_slow ctx page =
  let e = State.entry_of ctx.node page in
  while not (Perm.allows_read e.State.perm) do
    Proto.read_fault ctx.cluster ctx.node e
  done;
  let raw = Page.raw (State.frame e) in
  install_tlb ctx.node page raw e;
  raw

(* [words] is the number of word writes the logged range covers: software
   write detection charges per logged WORD ([logged_count]), while the
   range list carries one coalesced entry per run — [Diff.of_ranges]
   word-aligns, sorts and merges ranges, so the resulting diff is
   byte-identical to per-word logging of the same run. *)
let[@inline never] write_slow ctx page off ~bytes ~words =
  let e = State.entry_of ctx.node page in
  while not (Perm.allows_write e.State.perm) do
    Proto.write_fault ctx.cluster ctx.node e
  done;
  let raw = Page.raw (State.frame e) in
  if e.State.log_writes then begin
    (* software write detection (Config.write_ranges); the TLB must not
       cache a writable slot for a logging page. *)
    e.State.logged_ranges <- (off, bytes) :: e.State.logged_ranges;
    e.State.logged_count <- e.State.logged_count + words
  end
  else install_tlb ctx.node page raw e;
  raw

let f64_get ctx a i =
  if i < 0 || i >= a.f_len then oob_f64 i a.f_len;
  let byte = i lsl 3 in
  let page = a.f_region.Layout.first_page + (byte lsr Page.shift) in
  let off = byte land Page.mask in
  let v =
    match ctx.node.State.tlb with
    | Some t when t.State.t_page = page ->
      Int64.float_of_bits (get_64 t.State.t_raw off)
    | _ -> Int64.float_of_bits (get_64 (read_slow ctx page) off)
  in
  if State.checking ctx.cluster then
    State.observe ctx.cluster ~node:ctx.node.State.id
      (Adsm_check.Obs.Read { page; off; width = 8; bits = Int64.bits_of_float v });
  v

let f64_set ctx a i v =
  if i < 0 || i >= a.f_len then oob_f64 i a.f_len;
  let byte = i lsl 3 in
  let page = a.f_region.Layout.first_page + (byte lsr Page.shift) in
  let off = byte land Page.mask in
  (match ctx.node.State.tlb with
  | Some t when t.State.t_page = page && t.State.t_write ->
    set_64 t.State.t_raw off (Int64.bits_of_float v)
  | _ ->
    set_64
      (write_slow ctx page off ~bytes:8 ~words:1)
      off (Int64.bits_of_float v));
  if State.checking ctx.cluster then
    State.observe ctx.cluster ~node:ctx.node.State.id
      (Adsm_check.Obs.Write { page; off; width = 8; bits = Int64.bits_of_float v })

let i32_get ctx a i =
  if i < 0 || i >= a.i_len then oob_i32 i a.i_len;
  let byte = i lsl 2 in
  let page = a.i_region.Layout.first_page + (byte lsr Page.shift) in
  let off = byte land Page.mask in
  let v =
    match ctx.node.State.tlb with
    | Some t when t.State.t_page = page -> get_32 t.State.t_raw off
    | _ -> get_32 (read_slow ctx page) off
  in
  if State.checking ctx.cluster then
    State.observe ctx.cluster ~node:ctx.node.State.id
      (Adsm_check.Obs.Read
         { page; off; width = 4; bits = Int64.of_int32 v });
  v

let i32_set ctx a i v =
  if i < 0 || i >= a.i_len then oob_i32 i a.i_len;
  let byte = i lsl 2 in
  let page = a.i_region.Layout.first_page + (byte lsr Page.shift) in
  let off = byte land Page.mask in
  (match ctx.node.State.tlb with
  | Some t when t.State.t_page = page && t.State.t_write ->
    set_32 t.State.t_raw off v
  | _ -> set_32 (write_slow ctx page off ~bytes:4 ~words:1) off v);
  if State.checking ctx.cluster then
    State.observe ctx.cluster ~node:ctx.node.State.id
      (Adsm_check.Obs.Write
         { page; off; width = 4; bits = Int64.of_int32 v })

(* One locate for the whole read-modify-write.  Observable semantics are
   those of [i32_get] followed by [i32_set]: the read (and its possible
   read fault) happens first, the addend is applied to the value read
   BEFORE the write fault, and the write never re-reads. *)
let i32_add ctx a i v =
  if i < 0 || i >= a.i_len then oob_i32 i a.i_len;
  let byte = i lsl 2 in
  let page = a.i_region.Layout.first_page + (byte lsr Page.shift) in
  let off = byte land Page.mask in
  let current =
    match ctx.node.State.tlb with
    | Some t when t.State.t_page = page -> get_32 t.State.t_raw off
    | _ -> get_32 (read_slow ctx page) off
  in
  if State.checking ctx.cluster then
    State.observe ctx.cluster ~node:ctx.node.State.id
      (Adsm_check.Obs.Read
         { page; off; width = 4; bits = Int64.of_int32 current });
  let sum = Int32.add current v in
  (match ctx.node.State.tlb with
  | Some t when t.State.t_page = page && t.State.t_write ->
    set_32 t.State.t_raw off sum
  | _ -> set_32 (write_slow ctx page off ~bytes:4 ~words:1) off sum);
  if State.checking ctx.cluster then
    State.observe ctx.cluster ~node:ctx.node.State.id
      (Adsm_check.Obs.Write
         { page; off; width = 4; bits = Int64.of_int32 sum })

(* --- bulk page-run operations --- *)

(* Sugar over the word accessors with identical observable semantics: one
   bounds+permission check (and one fault retry loop) per within-page run
   instead of per word.  The page split visits pages in ascending order,
   exactly the order the equivalent scalar loop first touches them, and a
   run can only fault at its first word — between the words of a run the
   process never yields, so no handler can change the page's protection
   mid-run (the same argument that makes the scalar loop fault-free after
   its first touch).  When the consistency recorder is live the bulk ops
   degrade to the scalar loop so the observation stream is identical. *)

let f64_get_run ctx a i dst pos len =
  if len < 0 || i < 0 || i + len > a.f_len then oob_run "f64" i len a.f_len;
  if pos < 0 || pos + len > Array.length dst then oob_buf "f64_get_run";
  if State.checking ctx.cluster then
    for k = 0 to len - 1 do
      dst.(pos + k) <- f64_get ctx a (i + k)
    done
  else begin
    let first_page = a.f_region.Layout.first_page in
    let idx = ref i and dpos = ref pos and remaining = ref len in
    while !remaining > 0 do
      let byte = !idx lsl 3 in
      let page = first_page + (byte lsr Page.shift) in
      let off = byte land Page.mask in
      let run = min !remaining ((Page.size - off) lsr 3) in
      let raw =
        match ctx.node.State.tlb with
        | Some t when t.State.t_page = page -> t.State.t_raw
        | _ -> read_slow ctx page
      in
      let d = !dpos in
      for k = 0 to run - 1 do
        dst.(d + k) <- Int64.float_of_bits (get_64 raw (off + (k lsl 3)))
      done;
      idx := !idx + run;
      dpos := d + run;
      remaining := !remaining - run
    done
  end

let f64_set_run ctx a i src pos len =
  if len < 0 || i < 0 || i + len > a.f_len then oob_run "f64" i len a.f_len;
  if pos < 0 || pos + len > Array.length src then oob_buf "f64_set_run";
  if State.checking ctx.cluster then
    for k = 0 to len - 1 do
      f64_set ctx a (i + k) src.(pos + k)
    done
  else begin
    let first_page = a.f_region.Layout.first_page in
    let idx = ref i and spos = ref pos and remaining = ref len in
    while !remaining > 0 do
      let byte = !idx lsl 3 in
      let page = first_page + (byte lsr Page.shift) in
      let off = byte land Page.mask in
      let run = min !remaining ((Page.size - off) lsr 3) in
      let raw =
        match ctx.node.State.tlb with
        | Some t when t.State.t_page = page && t.State.t_write ->
          t.State.t_raw
        | _ -> write_slow ctx page off ~bytes:(run lsl 3) ~words:run
      in
      let s = !spos in
      for k = 0 to run - 1 do
        set_64 raw (off + (k lsl 3)) (Int64.bits_of_float src.(s + k))
      done;
      idx := !idx + run;
      spos := s + run;
      remaining := !remaining - run
    done
  end

let f64_fold_run ctx a i len ~init ~f =
  if len < 0 || i < 0 || i + len > a.f_len then oob_run "f64" i len a.f_len;
  if State.checking ctx.cluster then begin
    let acc = ref init in
    for k = 0 to len - 1 do
      acc := f !acc (f64_get ctx a (i + k))
    done;
    !acc
  end
  else begin
    let first_page = a.f_region.Layout.first_page in
    let idx = ref i and remaining = ref len and acc = ref init in
    while !remaining > 0 do
      let byte = !idx lsl 3 in
      let page = first_page + (byte lsr Page.shift) in
      let off = byte land Page.mask in
      let run = min !remaining ((Page.size - off) lsr 3) in
      let raw =
        match ctx.node.State.tlb with
        | Some t when t.State.t_page = page -> t.State.t_raw
        | _ -> read_slow ctx page
      in
      for k = 0 to run - 1 do
        acc := f !acc (Int64.float_of_bits (get_64 raw (off + (k lsl 3))))
      done;
      idx := !idx + run;
      remaining := !remaining - run
    done;
    !acc
  end

let i32_get_run ctx a i dst pos len =
  if len < 0 || i < 0 || i + len > a.i_len then oob_run "i32" i len a.i_len;
  if pos < 0 || pos + len > Array.length dst then oob_buf "i32_get_run";
  if State.checking ctx.cluster then
    for k = 0 to len - 1 do
      dst.(pos + k) <- i32_get ctx a (i + k)
    done
  else begin
    let first_page = a.i_region.Layout.first_page in
    let idx = ref i and dpos = ref pos and remaining = ref len in
    while !remaining > 0 do
      let byte = !idx lsl 2 in
      let page = first_page + (byte lsr Page.shift) in
      let off = byte land Page.mask in
      let run = min !remaining ((Page.size - off) lsr 2) in
      let raw =
        match ctx.node.State.tlb with
        | Some t when t.State.t_page = page -> t.State.t_raw
        | _ -> read_slow ctx page
      in
      let d = !dpos in
      for k = 0 to run - 1 do
        dst.(d + k) <- get_32 raw (off + (k lsl 2))
      done;
      idx := !idx + run;
      dpos := d + run;
      remaining := !remaining - run
    done
  end

let i32_set_run ctx a i src pos len =
  if len < 0 || i < 0 || i + len > a.i_len then oob_run "i32" i len a.i_len;
  if pos < 0 || pos + len > Array.length src then oob_buf "i32_set_run";
  if State.checking ctx.cluster then
    for k = 0 to len - 1 do
      i32_set ctx a (i + k) src.(pos + k)
    done
  else begin
    let first_page = a.i_region.Layout.first_page in
    let idx = ref i and spos = ref pos and remaining = ref len in
    while !remaining > 0 do
      let byte = !idx lsl 2 in
      let page = first_page + (byte lsr Page.shift) in
      let off = byte land Page.mask in
      let run = min !remaining ((Page.size - off) lsr 2) in
      let raw =
        match ctx.node.State.tlb with
        | Some t when t.State.t_page = page && t.State.t_write ->
          t.State.t_raw
        | _ -> write_slow ctx page off ~bytes:(run lsl 2) ~words:run
      in
      let s = !spos in
      for k = 0 to run - 1 do
        set_32 raw (off + (k lsl 2)) src.(s + k)
      done;
      idx := !idx + run;
      spos := s + run;
      remaining := !remaining - run
    done
  end

let i32_fold_run ctx a i len ~init ~f =
  if len < 0 || i < 0 || i + len > a.i_len then oob_run "i32" i len a.i_len;
  if State.checking ctx.cluster then begin
    let acc = ref init in
    for k = 0 to len - 1 do
      acc := f !acc (i32_get ctx a (i + k))
    done;
    !acc
  end
  else begin
    let first_page = a.i_region.Layout.first_page in
    let idx = ref i and remaining = ref len and acc = ref init in
    while !remaining > 0 do
      let byte = !idx lsl 2 in
      let page = first_page + (byte lsr Page.shift) in
      let off = byte land Page.mask in
      let run = min !remaining ((Page.size - off) lsr 2) in
      let raw =
        match ctx.node.State.tlb with
        | Some t when t.State.t_page = page -> t.State.t_raw
        | _ -> read_slow ctx page
      in
      for k = 0 to run - 1 do
        acc := f !acc (get_32 raw (off + (k lsl 2)))
      done;
      idx := !idx + run;
      remaining := !remaining - run
    done;
    !acc
  end

let f64_pages _t a ~lo ~hi =
  if lo >= hi then []
  else
    Layout.pages_of_range a.f_region ~offset:(8 * lo) ~len:(8 * (hi - lo))
