type protocol = Mw | Sw | Wfs | Wfs_wg | Hlrc

let protocol_name = function
  | Mw -> "MW"
  | Sw -> "SW"
  | Wfs -> "WFS"
  | Wfs_wg -> "WFS+WG"
  | Hlrc -> "HLRC"

let protocol_of_string s =
  match String.uppercase_ascii s with
  | "MW" -> Some Mw
  | "SW" -> Some Sw
  | "WFS" -> Some Wfs
  | "WFS+WG" | "WFSWG" | "WFS_WG" -> Some Wfs_wg
  | "HLRC" -> Some Hlrc
  | _ -> None

let all_protocols = [ Mw; Wfs_wg; Wfs; Sw ]

let extended_protocols = [ Mw; Wfs_wg; Wfs; Sw; Hlrc ]

type mutation =
  | Skip_diff_apply
  | Drop_write_notice
  | Stale_ownership_grant
  | Skip_notice_replay
  | Stale_vc_after_restart

let mutation_name = function
  | Skip_diff_apply -> "skip-diff-apply"
  | Drop_write_notice -> "drop-write-notice"
  | Stale_ownership_grant -> "stale-ownership-grant"
  | Skip_notice_replay -> "skip-notice-replay"
  | Stale_vc_after_restart -> "stale-vc-after-restart"

let mutation_of_string s =
  match String.lowercase_ascii s with
  | "skip-diff-apply" -> Some Skip_diff_apply
  | "drop-write-notice" -> Some Drop_write_notice
  | "stale-ownership-grant" -> Some Stale_ownership_grant
  | "skip-notice-replay" -> Some Skip_notice_replay
  | "stale-vc-after-restart" -> Some Stale_vc_after_restart
  | _ -> None

let all_mutations =
  [
    Skip_diff_apply;
    Drop_write_notice;
    Stale_ownership_grant;
    Skip_notice_replay;
    Stale_vc_after_restart;
  ]

type barrier = Central | Tree of { fanout : int }

let barrier_name = function
  | Central -> "central"
  | Tree { fanout } -> Printf.sprintf "tree:%d" fanout

let barrier_of_string s =
  match String.lowercase_ascii s with
  | "central" -> Some Central
  | "tree" -> Some (Tree { fanout = 4 })
  | s when String.length s > 5 && String.sub s 0 5 = "tree:" -> (
    match int_of_string_opt (String.sub s 5 (String.length s - 5)) with
    | Some k when k >= 2 -> Some (Tree { fanout = k })
    | Some _ | None -> None)
  | _ -> None

type lock_homes = Modulo | Sharded of int

type engine_mode = Sequential | Parallel of { domains : int }

let engine_mode_name = function
  | Sequential -> "seq"
  | Parallel { domains } -> Printf.sprintf "par:%d" domains

type t = {
  protocol : protocol;
  nprocs : int;
  net : Adsm_net.Netcfg.t;
  topology : Adsm_net.Topology.shape;
  node_speeds : float array;
  barrier : barrier;
  lock_homes : lock_homes;
  sparse_vc : bool;
  twin_ns : int;
  diff_create_ns : int;
  diff_apply_base_ns : int;
  diff_apply_byte_ns : int;
  page_install_ns : int;
  fault_ns : int;
  wg_threshold_bytes : int;
  ownership_quantum_ns : int;
  gc_threshold_bytes : int;
  migratory_detection : bool;
  write_ranges : bool;
  write_log_ns : int;
  lazy_diffing : bool;
  schedule_fuzz : int option;
  mutation : mutation option;
  faults : Adsm_net.Fault.schedule option;
  engine : engine_mode;
  seed : int64;
}

let make ?(seed = 0x5EEDL) ~protocol ~nprocs () =
  if nprocs <= 0 then invalid_arg "Config.make: nprocs must be positive";
  {
    protocol;
    nprocs;
    net = Adsm_net.Netcfg.atm_155;
    topology = Adsm_net.Topology.Flat;
    node_speeds = [||];
    barrier = Central;
    lock_homes = Modulo;
    sparse_vc = false;
    twin_ns = 104_000;
    diff_create_ns = 179_000;
    diff_apply_base_ns = 20_000;
    diff_apply_byte_ns = 40;
    page_install_ns = 30_000;
    fault_ns = 20_000;
    wg_threshold_bytes = 3_072;
    ownership_quantum_ns = 1_000_000;
    gc_threshold_bytes = 1_048_576;
    migratory_detection = false;
    write_ranges = false;
    write_log_ns = 250;
    lazy_diffing = false;
    schedule_fuzz = None;
    mutation = None;
    faults = None;
    engine = Sequential;
    seed;
  }
