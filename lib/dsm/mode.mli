(** Per-page protocol-mode predicates (SW vs MW, adaptivity, HLRC) shared
    by {!Lrc_core}, {!Sync} and the protocol modules. *)

open State

(** The cluster runs one of the adaptive protocols (WFS, WFS+WG). *)
val adaptive : cluster -> bool

val is_hlrc : cluster -> bool

val is_wfs_wg : cluster -> bool

(** The page should be written in single-writer mode under the cluster's
    protocol and the page's adaptive state variables. *)
val prefers_sw : cluster -> entry -> bool

(** The node believes the page is free of write-write false sharing
    (piggybacked on diff requests for WFS rule 1). *)
val sees_page_as_sw : entry -> bool

(** Set the page's false-sharing flag, counting (and tracing, as a
    {!Adsm_trace.Event.Mode_change} attributed to [node]) the SW<->MW
    mode switch when it actually changes under an adaptive protocol. *)
val set_fs_active : cluster -> node:int -> entry -> bool -> unit

(** The migratory-detection extension classifies the page as migratory at
    this node (read-then-write pattern, adaptive protocols only). *)
val migratory_classified : cluster -> entry -> bool
