(** Per-node and per-cluster runtime state (internal to the DSM runtime).

    Types are exposed transparently: the protocol, runtime and shared-memory
    modules cooperate on this mutable state.  Application code never sees
    them — it goes through {!Dsm}. *)

module Page = Adsm_mem.Page
module Perm = Adsm_mem.Perm
module Layout = Adsm_mem.Layout

(** Per-page protocol state at one node. *)
type entry = {
  page : int;
  mutable data : Page.t option;  (** local frame; [None] = not materialized *)
  mutable has_base : bool;
      (** the node holds a usable (possibly stale) base for the page — the
          initial zero page counts; false only after a GC dropped the copy *)
  mutable perm : Perm.t;
  mutable twin : Page.t option;
  mutable version : int;  (** highest version known here *)
  mutable content_version : int;
      (** version whose contents the local frame reflects; owner write
          notices at or below it are dominated and discarded on the fly *)
  mutable committed_version : int;
      (** highest version whose interval is fully contained in the local
          frame — what we may claim when serving copies (a dirty owner's
          frame holds a partial newer interval that must NOT be claimed) *)
  mutable owner : int;  (** last perceived owner / copy-fetch hint *)
  mutable is_owner : bool;
  mutable owned_at : int;  (** sim time ownership was (re)acquired *)
  mutable fs_active : bool;  (** believes the page is write-write falsely
                                 shared (adaptive mode variable: true = MW) *)
  mutable wg_large : bool;  (** WFS+WG: last measured diff above threshold *)
  mutable measured : bool;  (** WFS+WG: granularity has been measured *)
  mutable drop_at_release : bool;
      (** owner must emit a final owner notice at next release, then drop
          ownership and switch the page to MW mode *)
  mutable dirty : bool;  (** written during the current interval *)
  mutable notices : Notice.t list;  (** pending (unapplied) write notices *)
  mutable reflected : int array;
      (** per processor: highest interval seq whose modifications are
          reflected in the committed local copy.  [[||]] is the all-zeros
          sentinel — use {!reflected_get}/{!reflected_set}; the dense
          array materializes only once a nonzero seq is recorded, so
          entry metadata scales with active sharers, not cluster size *)
  mutable nw_procs : int array;
      (** sparse "latest notice timestamp per writer" map (write-write
          false-sharing detection), replacing a dense [Vc.t option array]:
        parallel arrays of writer ids / clocks, [nw_len] live slots *)
  mutable nw_vcs : Vc.t array;
  mutable nw_len : int;
  mutable fs_view : bool array;
      (** per processor: piggybacked "I see this page as SW" flags (WFS
          rule 1); [[||]] = all [true] *)
  mutable copyset : bool array;
      (** approximate copyset: processors that requested this page or its
          diffs from us; [[||]] = all [false] *)
  mutable own_diff_seqs : int list;
      (** interval seqs of live diffs this node created for the page (for
          re-merging own modifications over a fetched base copy, and the MW
          GC validator test) *)
  mutable sw_home_hint : int;
      (** SW protocol: at the page's home, the last known/queued owner *)
  mutable pending_own : (int * int) list;
      (** SW protocol: (requester, version) ownership requests queued while
          a transfer involving this page is in flight *)
  mutable migratory_score : int;
      (** migratory-detection extension: confidence that this page follows
          a read-then-write pattern at this node *)
  mutable read_fault_seq : int;
      (** interval index of the last local read fault on this page *)
  mutable pending_diff : (int * Vc.t) option;
      (** lazy diffing: a closed interval whose diff has not been
          materialized yet (the twin is retained until it is) *)
  mutable log_writes : bool;
      (** software write detection: the accessors log this interval's
          write ranges instead of relying on a twin *)
  mutable logged_ranges : (int * int) list;  (** (offset, length) log *)
  mutable logged_count : int;  (** writes logged (for cost accounting) *)
}

(** Distributed lock state. *)
type lock_state = {
  mutable have_token : bool;  (** the lock token rests here, free *)
  mutable held : bool;  (** this node is inside the critical section *)
  mutable next : (int * Vc.t) option;
      (** requester to hand the lock to at release *)
  mutable home_tail : int;  (** at the home node: last requester in the
                                distributed queue *)
}

(** One-slot software TLB: the last page an accessor touched on this node,
    with the permission test pre-resolved.  Installed only by the accessor
    slow path after the entry's permission has been verified; the fast path
    serves hits without consulting [pages.(page)] at all. *)
type tlb = {
  t_page : int;
  t_raw : Bytes.t;
      (** the frame's raw buffer ({!Adsm_mem.Page.raw}): accessor loops
          use direct primitives on it, avoiding a cross-module call and a
          boxed float per word *)
  t_entry : entry;
  t_write : bool;
      (** the slot may serve writes directly: [Read_write] permission AND
          no software write logging (logged writes must reach the entry) *)
}

(** Per-node combining state for the tree barrier ([Config.Tree]): a node
    folds its own arrival and each direct child subtree's into the
    componentwise-minimum clock [tb_vcmin] (the knowledge every subtree
    member shares) and the concatenated interval list, then forwards ONE
    combined arrival to its parent.  Reset when the release fans down. *)
type tree_barrier = {
  mutable tb_epoch : int;
  mutable tb_arrived : int;  (** direct children whose subtrees arrived *)
  mutable tb_self_arrived : bool;
  mutable tb_vc_valid : bool;  (** [tb_vcmin] holds at least one arrival *)
  tb_vcmin : Vc.t;
      (** preallocated — the tree barrier never allocates an O(nprocs)
          clock per barrier *)
  mutable tb_intervals : Interval.t list;
  mutable tb_gc_wanted : bool;
  mutable tb_child_vcs : (int * Vc.t) list;
      (** each direct child's subtree-min clock, kept to compute that
          child's release *)
  mutable tb_gc_done : int;  (** direct children whose subtrees validated *)
  mutable tb_self_gc_done : bool;
}

(** Barrier-leave checkpoint for crash recovery (see FAULTS.md): only
    the rollback clock.  Notice lists are rebuilt from the peers'
    retained interval logs during the recovery round, so no page or
    notice state is copied at checkpoint time. *)
type ckpt = { ck_vc : Vc.t }

type node = {
  id : int;
  nprocs : int;
  vc : Vc.t;
  pages : entry option array;
      (** indexed by global page number; entries materialize on first
          touch via {!entry_of} — an entry carries O(nprocs) arrays, so
          eager allocation would be O(pages x nprocs) words per node.
          Untouched pages hold no protocol state, so lazy creation is
          observationally identical. *)
  intervals : Interval.Log.t array;
      (** per processor, ascending seq (see {!Interval.Log}) *)
  nw_idx : (int, int) Hashtbl.t;
      (** (page * nprocs + proc) -> slot in the entry's last-notice
          arrays; see {!last_notice} *)
  mutable dirty_pages : int list;  (** pages written this interval *)
  diffs : (int * int * int, Vc.t * Diff.t) Hashtbl.t;
      (** (page, proc, seq) -> (interval timestamp, diff) *)
  locks : (int, lock_state) Hashtbl.t;
  lock_waits : (int, Interval.t list Adsm_sim.Proc.Ivar.t) Hashtbl.t;
      (** lock id -> continuation of a blocked acquire *)
  own_waits : (int, Msg.t Adsm_sim.Proc.Ivar.t) Hashtbl.t;
      (** page -> continuation of a blocked SW ownership transfer *)
  mutable barrier_wait : Msg.t Adsm_sim.Proc.Ivar.t option;
  mutable gc_wait : unit Adsm_sim.Proc.Ivar.t option;
  mutable last_barrier_vc : Vc.t;
      (** manager knowledge at the last barrier (bounds what we resend) *)
  mutable barrier_epoch : int;
  mutable hlrc_waiting : (int * (int * int) list * Msg.t Adsm_net.Rpc.respond) list;
      (** HLRC: deferred fetch replies (page, needed (proc,seq) pairs,
          respond closure) waiting for in-flight diffs to reach this home *)
  mutable tlb : tlb option;  (** accessor fast-path cache; see {!tlb_reset} *)
  tb : tree_barrier option;  (** [Some] iff [cfg.barrier] is [Tree] *)
  rng : Adsm_sim.Rng.t;
  mutable diff_scratch : Diff.scratch option;
      (** lazily allocated working space for {!Diff.create}, per node —
          nodes on different domains encode diffs concurrently under the
          parallel engine, so the scratch cannot be cluster-wide *)
  mutable ckpt : ckpt option;
      (** latest barrier-leave checkpoint; [None] until the first
          barrier (and always [None] without a crash schedule) *)
  mutable crash_pending : bool;
      (** set by the crash event; the next DSM operation boundary
          performs the fail-stop (wipe + recovery) *)
  mutable crash_restart_at : int;  (** absolute restart instant *)
  mutable restart_wait : unit Adsm_sim.Proc.Ivar.t option;
      (** filled by the restart event when the app process is suspended
          in the downtime window *)
  mutable crash_count : int;
}

(** Barrier manager bookkeeping (lives at node 0). *)
type barrier_manager = {
  mutable epoch : int;
  mutable arrived : int;
  mutable arrivals : (int * Vc.t * Interval.t list * bool) list;
      (** buffered (src, vc, intervals, gc_wanted); processed only once all
          nodes have arrived, so notices never land on a dirty page *)
  mutable gc_requested : bool;
  mutable gc_done_count : int;
}

type cluster = {
  cfg : Config.t;
  engine : Adsm_sim.Engine.t;
  rpc : Msg.t Adsm_net.Rpc.t;
  layout : Layout.t;
  nodes : node array;
  stats : Stats.t;
  barrier_mgr : barrier_manager;
  mutable next_lock : int;
  mutable running : int;  (** application processes still active *)
  tracer : Adsm_trace.Tracer.t;  (** structured trace emission front-end *)
  recorder : Adsm_check.Recorder.t;
      (** consistency-oracle observation stream front-end *)
}

val make_entry : nprocs:int -> page:int -> home:int -> entry

(** {2 Sparse entry-metadata accessors}

    Dense semantics over the sentinel representations above; the dense
    arrays materialize only when a value first deviates from its initial
    one ({!reflected_rw} and message construction excepted, where a dense
    array is part of the wire-size accounting). *)

val reflected_get : entry -> int -> int

(** Dense, materializing view of [reflected] (whole-array fills). *)
val reflected_rw : entry -> nprocs:int -> int array

val reflected_set : entry -> nprocs:int -> int -> int -> unit

(** Dense copy for a message's [reflected] field (always [nprocs] long —
    its length is part of the wire-byte accounting). *)
val reflected_copy : entry -> nprocs:int -> int array

(** Back to the all-zeros sentinel (crash wipe / GC drop). *)
val reflected_reset : entry -> unit

(** Latest notice clock recorded for writer [q], if any.  O(1) through
    the owning node's [nw_idx] slot index. *)
val last_notice : node -> entry -> int -> Vc.t option

val set_last_notice : node -> entry -> int -> Vc.t -> unit

val clear_last_notices : node -> entry -> unit

val fs_view_get : entry -> int -> bool

val fs_view_set : entry -> nprocs:int -> int -> bool -> unit

val copyset_add : entry -> nprocs:int -> int -> unit

(** Iterate the members of the (approximate) copyset. *)
val copyset_iter : entry -> (int -> unit) -> unit

val make_node : cfg:Config.t -> id:int -> total_pages:int -> node

(** Get-or-create the node's entry for a page.  A lazily-created entry is
    exactly what the eager initialization used to build: zero-page base,
    read-only, home = page mod nprocs, owner flag at the home. *)
val entry_of : node -> int -> entry

(** Iterate over the materialized entries — the only ones that can carry
    any protocol state. *)
val iter_entries : node -> (entry -> unit) -> unit

(** The node's diff-encoding scratch space, allocated on first use. *)
val scratch : node -> Diff.scratch

(** Committed contents of a page at this node: the twin while the page is
    dirty, the current data otherwise.  [None] when the node has no copy. *)
val committed_copy : entry -> Page.t option

(** The node's frame for the page, allocating it on first use. *)
val frame : entry -> Page.t

(** Invalidate the node's accessor TLB slot.  Contract (see DESIGN.md,
    "Access fast path"): every site that lowers an entry's effective access
    rights on a node — protection downgrade, frame drop, or turning on
    software write logging — MUST call this, because the cached slot
    bypasses the entry's permission test entirely.  Upgrades need no reset:
    a stale slot is only ever conservative (extra slow-path trip). *)
val tlb_reset : node -> unit

(** The node's state for a lock, created on first use; the token initially
    rests at the [home] node. *)
val lock_state : node -> home:int -> int -> lock_state

val home_of_page : cluster -> int -> int

val home_of_lock : cluster -> int -> int

(** Whether the cluster tracer is live.  Emission sites are guarded
    with it — [if tracing cl then emit cl ~node (Event.X {...})] — so
    event construction costs nothing when tracing is off. *)
val tracing : cluster -> bool

(** Emit a trace event stamped with the current simulated time. *)
val emit : cluster -> node:int -> Adsm_trace.Event.t -> unit

(** Whether the consistency-oracle recorder is live.  Same guard idiom as
    {!tracing}: [if checking cl then observe cl ~node (Obs.X {...})], so
    the disabled path never constructs observations. *)
val checking : cluster -> bool

(** Record an oracle observation stamped with the current simulated time. *)
val observe : cluster -> node:int -> Adsm_check.Obs.t -> unit
