(** SW: CVM-like single writer with version numbers, home-forwarded
    ownership transfers and a minimum ownership quantum (paper
    Section 2.3). *)

include Protocol_intf.PROTOCOL
