(** Synchronization over the LRC substrate: distributed locks, the global
    barrier (manager at node 0), and diff garbage collection.  Protocol
    policy enters only via {!Dispatch.for_cluster} (interval closure and
    the GC survival test). *)

open State

(** Close the node's current interval under the cluster's protocol; CPU
    cost goes to [charge] once (sleep in process context, reply latency in
    event context). *)
val end_interval : cluster -> node -> charge:(int -> unit) -> unit

(** [end_interval] charging by sleeping; process context only. *)
val end_interval_local : cluster -> node -> unit

(* --- locks (application side; process context) --- *)

val lock : cluster -> node -> int -> unit

val unlock : cluster -> node -> int -> unit

(* --- barriers (application side; process context) --- *)

(** Global barrier; runs garbage collection when any node's diff store
    exceeded the threshold. *)
val barrier : cluster -> node -> unit

(* --- crash recovery (see FAULTS.md) --- *)

(** Operation-boundary hook: if a crash event marked this node
    ([crash_pending]), perform the fail-stop — close the current
    interval (write-behind log flush), wipe volatile state, roll back to
    the barrier checkpoint, sleep out the remaining downtime, and run
    the peer recovery round.  One predictable-false branch when no
    crash is pending.  Process context only. *)
val pause_if_crashed : cluster -> node -> unit

(** Take the barrier-leave checkpoint (no-op unless the run's fault
    schedule contains crashes). *)
val checkpoint : cluster -> node -> unit

(* --- message handlers (event context: never block) --- *)

(** A restarted peer asks for every closed interval its checkpoint clock
    does not cover. *)
val handle_recover_req :
  cluster -> node -> vc:Vc.t -> Msg.t Adsm_net.Rpc.respond -> unit

val handle_lock_acquire : cluster -> node -> src:int -> vc:Vc.t -> int -> unit

val handle_lock_forward :
  cluster -> node -> requester:int -> vc:Vc.t -> int -> unit

val handle_lock_grant : cluster -> node -> lock:int -> Interval.t list -> unit

(** Barrier arrival at [node]: the central manager buffers it (one-batch
    apply once everyone arrived); a tree-barrier node folds it into its
    combining state and forwards one combined arrival up when its whole
    subtree has checked in. *)
val handle_barrier_arrive :
  cluster -> node -> src:int -> vc:Vc.t -> intervals:Interval.t list ->
  gc_wanted:bool -> int -> unit

(** Wake the local barrier waiter with the release message. *)
val handle_barrier_release : cluster -> node -> Msg.t -> unit

val handle_gc_done : cluster -> node -> int -> unit

val handle_gc_complete : cluster -> node -> int -> unit
