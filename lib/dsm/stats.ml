module Series = Adsm_sim.Series
module Page = Adsm_mem.Page

type t = {
  procs : int;
  mutable twins_created : int;
  mutable twins_live : int;
  mutable diffs_created : int;
  mutable diff_bytes_created : int;
  diff_store : int array;  (** live bytes per node *)
  mutable diffs_live : int;  (** live diff count, all nodes *)
  series : Series.t;
  mutable own_requests : int;
  mutable own_refusals : int;
  mutable gcs : int;
  mutable rfaults : int;
  mutable wfaults : int;
  writers : (int, unit) Hashtbl.t;  (** pages with a recorded writer *)
  false_shared : (int, unit) Hashtbl.t;
  mutable sizes : int list;  (** modified bytes per created diff *)
  mutable switches : int;
  mutable migratory_upgrades : int;
  compute_ns : int array;
  fault_ns : int array;
  lock_ns : int array;
  barrier_ns : int array;
  mutable defer : ((unit -> unit) -> unit) option;
      (** Parallel-engine hook (see PARALLELISM.md): when set, updates to
          state shared across nodes — the scalar counters, the series, the
          hashtables, the size list — are routed through it so the
          inter-window walk applies them in global event order.  Per-node
          array slots ([diff_store], the time breakdown) stay immediate:
          they are lane-owned, and [diff_store_bytes] must reflect a
          node's own writes mid-window (it triggers GC). *)
}

let create ~nprocs () =
  {
    procs = nprocs;
    twins_created = 0;
    twins_live = 0;
    diffs_created = 0;
    diff_bytes_created = 0;
    diff_store = Array.make nprocs 0;
    diffs_live = 0;
    series = Series.create ~name:"live diffs";
    own_requests = 0;
    own_refusals = 0;
    gcs = 0;
    rfaults = 0;
    wfaults = 0;
    writers = Hashtbl.create 256;
    false_shared = Hashtbl.create 64;
    sizes = [];
    switches = 0;
    migratory_upgrades = 0;
    compute_ns = Array.make nprocs 0;
    fault_ns = Array.make nprocs 0;
    lock_ns = Array.make nprocs 0;
    barrier_ns = Array.make nprocs 0;
    defer = None;
  }

let set_defer t defer = t.defer <- defer

let nprocs t = t.procs

(* Every shared-state mutator below has the same two-branch shape: the
   [None] branch is the historical sequential path (no closure built —
   these run on hot paths), the [Some d] branch journals the identical
   update for ordered replay. *)

let twin_created t ~node:_ =
  match t.defer with
  | None ->
    t.twins_created <- t.twins_created + 1;
    t.twins_live <- t.twins_live + 1
  | Some d ->
    d (fun () ->
        t.twins_created <- t.twins_created + 1;
        t.twins_live <- t.twins_live + 1)

let twin_freed t ~node:_ =
  match t.defer with
  | None -> t.twins_live <- t.twins_live - 1
  | Some d -> d (fun () -> t.twins_live <- t.twins_live - 1)

let twins_created_total t = t.twins_created

let twin_bytes_total t = t.twins_created * Page.size

let record_live t ~time =
  Series.record t.series ~time ~value:(float_of_int t.diffs_live)

let diff_created t ~node ~page ~bytes ~modified ~time =
  ignore page;
  t.diff_store.(node) <- t.diff_store.(node) + bytes;
  match t.defer with
  | None ->
    t.diffs_created <- t.diffs_created + 1;
    t.diff_bytes_created <- t.diff_bytes_created + bytes;
    t.diffs_live <- t.diffs_live + 1;
    t.sizes <- modified :: t.sizes;
    record_live t ~time
  | Some d ->
    d (fun () ->
        t.diffs_created <- t.diffs_created + 1;
        t.diff_bytes_created <- t.diff_bytes_created + bytes;
        t.diffs_live <- t.diffs_live + 1;
        t.sizes <- modified :: t.sizes;
        record_live t ~time)

let diff_stored t ~node ~bytes ~time =
  t.diff_store.(node) <- t.diff_store.(node) + bytes;
  (* a fetched diff is another live copy; garbage collection drops it
     per node, so it must be counted per node too *)
  match t.defer with
  | None ->
    t.diffs_live <- t.diffs_live + 1;
    record_live t ~time
  | Some d ->
    d (fun () ->
        t.diffs_live <- t.diffs_live + 1;
        record_live t ~time)

let diffs_dropped t ~node ~bytes ~count ~time =
  t.diff_store.(node) <- t.diff_store.(node) - bytes;
  match t.defer with
  | None ->
    t.diffs_live <- t.diffs_live - count;
    record_live t ~time
  | Some d ->
    d (fun () ->
        t.diffs_live <- t.diffs_live - count;
        record_live t ~time)

let diffs_created_total t = t.diffs_created

let diff_bytes_total t = t.diff_bytes_created

let diff_store_bytes t ~node = t.diff_store.(node)

let live_diff_series t = t.series

let ownership_request t =
  match t.defer with
  | None -> t.own_requests <- t.own_requests + 1
  | Some d -> d (fun () -> t.own_requests <- t.own_requests + 1)

let ownership_requests t = t.own_requests

let ownership_refused t =
  match t.defer with
  | None -> t.own_refusals <- t.own_refusals + 1
  | Some d -> d (fun () -> t.own_refusals <- t.own_refusals + 1)

let ownership_refusals t = t.own_refusals

let gc_started t =
  match t.defer with
  | None -> t.gcs <- t.gcs + 1
  | Some d -> d (fun () -> t.gcs <- t.gcs + 1)

let gc_count t = t.gcs

let page_fault t ~read =
  match t.defer with
  | None ->
    if read then t.rfaults <- t.rfaults + 1 else t.wfaults <- t.wfaults + 1
  | Some d ->
    d (fun () ->
        if read then t.rfaults <- t.rfaults + 1
        else t.wfaults <- t.wfaults + 1)

let page_faults t = t.rfaults + t.wfaults

let read_faults t = t.rfaults

let write_faults t = t.wfaults

let note_write t ~page =
  (* Hot path (every write notice on every node): test-then-add beats
     [replace], which re-removes the binding on every call. *)
  match t.defer with
  | None ->
    if not (Hashtbl.mem t.writers page) then Hashtbl.add t.writers page ()
  | Some d ->
    d (fun () ->
        if not (Hashtbl.mem t.writers page) then Hashtbl.add t.writers page ())

let note_false_sharing t ~page =
  match t.defer with
  | None -> Hashtbl.replace t.false_shared page ()
  | Some d -> d (fun () -> Hashtbl.replace t.false_shared page ())

let pages_written t = Hashtbl.length t.writers

(* Committed membership only: under deferred stats a pending insert is
   invisible here, so callers using this to skip idempotent re-noting
   merely re-note until the flush — never the other way round. *)
let page_false_shared t ~page = Hashtbl.mem t.false_shared page

let pages_false_shared t = Hashtbl.length t.false_shared

let false_shared_fraction t =
  let w = pages_written t in
  if w = 0 then 0. else float_of_int (pages_false_shared t) /. float_of_int w

let diff_sizes t = List.rev t.sizes

let mean_diff_size t =
  match t.sizes with
  | [] -> 0.
  | sizes ->
    let sum = List.fold_left ( + ) 0 sizes in
    float_of_int sum /. float_of_int (List.length sizes)

let mode_switches t = t.switches

let mode_switch t =
  match t.defer with
  | None -> t.switches <- t.switches + 1
  | Some d -> d (fun () -> t.switches <- t.switches + 1)

let migratory_upgrade t =
  match t.defer with
  | None -> t.migratory_upgrades <- t.migratory_upgrades + 1
  | Some d -> d (fun () -> t.migratory_upgrades <- t.migratory_upgrades + 1)

let migratory_upgrades t = t.migratory_upgrades

type time_category = Compute | Fault | Lock | Barrier

let add_time t ~node ~category ~ns =
  let a =
    match category with
    | Compute -> t.compute_ns
    | Fault -> t.fault_ns
    | Lock -> t.lock_ns
    | Barrier -> t.barrier_ns
  in
  a.(node) <- a.(node) + ns

let total_time t ~category =
  let a =
    match category with
    | Compute -> t.compute_ns
    | Fault -> t.fault_ns
    | Lock -> t.lock_ns
    | Barrier -> t.barrier_ns
  in
  Array.fold_left ( + ) 0 a
