(* Vector timestamps with cached summaries and delta tracking.

   A clock is a dense [int array] plus three kinds of bookkeeping that
   make the large-n hot paths cheap without changing any observable
   result:

   - [sum], the cached component sum, maintained incrementally by every
     mutator.  [order] on concurrent clocks tie-breaks by (sum, lex), and
     the domination cases are themselves sum-ordered (if [a <= b]
     componentwise with any strict component then [sum a < sum b]), so
     the whole total order collapses to "compare sums, then lex" — O(1)
     whenever the sums differ, which is the common case on the
     diff-apply and interval-sort paths.

   - [ver], a last-modified epoch: bumped on every content change, it
     gives a cheap identity for "has this clock changed since I looked".

   - a dirty-component set relative to a [base] clock (the owner's
     last-barrier knowledge, recorded by [rebase]): [delta_size_bytes]
     against that exact base counts only the components touched since
     the barrier instead of scanning all [nprocs].  The fast path is
     taken only when the [since] argument IS the recorded base (same
     physical clock, unchanged [ver]), so the counted bytes are exactly
     what the dense scan would produce; any other pairing falls back to
     the scan. *)

type t = {
  c : int array;
  mutable sum : int;
  mutable ver : int;
  mutable base : t option;
  mutable base_ver : int;
  mutable dirty : int array;  (* distinct component indices, [ndirty] live *)
  mutable ndirty : int;  (* -1 = overflowed: fall back to dense scans *)
  mutable epoch : int;  (* >= 0 iff this clock is a stamped epoch base *)
  mutable epoch_ver : int;  (* [ver] at the moment of stamping *)
  mutable mono : bool;  (* components have only grown since the rebase *)
  mutable dcache_epoch : int;  (* epoch of the cached delta count, -1 none *)
  mutable dcache_ver : int;  (* [ver] when the count was cached *)
  mutable dcache : int;  (* differing components vs that epoch's content *)
}

(* Epoch bases.  At the completion of barrier [e], EVERY node's clock
   equals the same global supremum, and each node records it as its
   last-barrier snapshot: all clocks stamped with epoch [e] therefore
   have identical components.  That turns the base identity from a
   physical one (same clock object) into a logical one — a clock whose
   recorded base carries the same epoch stamp as [since] (both stamps
   current, guarded by the [*_ver] fields) is delta-comparable against
   [since] through its dirty set alone, even on another node.  A clock
   that merely matches epoch NUMBERS from different stampings of the
   same object (the tree barrier blits one object per node forever)
   fails the [base_ver = epoch_ver] guard and falls back to the scan. *)
let same_epoch_base t other_base =
  t.ndirty >= 0
  &&
  match t.base with
  | Some b ->
    (b == other_base && t.base_ver = other_base.ver)
    || (b.epoch >= 0 && b.epoch = other_base.epoch
       && t.base_ver = b.epoch_ver)
  | None -> false

(* Enough slots for a node's own writes plus a few lock-carried merges
   between barriers; overflowing just reverts to the dense behavior. *)
let dirty_cap = 12

let zero ~nprocs =
  if nprocs <= 0 then invalid_arg "Vc.zero: nprocs must be positive";
  {
    c = Array.make nprocs 0;
    sum = 0;
    ver = 0;
    base = None;
    base_ver = 0;
    dirty = [||];
    ndirty = 0;
    epoch = -1;
    epoch_ver = 0;
    mono = false;
    dcache_epoch = -1;
    dcache_ver = 0;
    dcache = 0;
  }

let copy t =
  {
    c = Array.copy t.c;
    sum = t.sum;
    ver = 0;
    base = t.base;
    base_ver = t.base_ver;
    dirty = (if Array.length t.dirty = 0 then [||] else Array.copy t.dirty);
    ndirty = t.ndirty;
    epoch = -1;  (* being an epoch base is not inherited *)
    epoch_ver = 0;
    mono = t.mono;
    dcache_epoch = -1;  (* keyed to [ver], which restarts at 0 *)
    dcache_ver = 0;
    dcache = 0;
  }

let nprocs t = Array.length t.c

let get t i = t.c.(i)

let touched t =
  t.ver <- t.ver + 1

let mark_dirty t i =
  if t.ndirty >= 0 then begin
    if Array.length t.dirty = 0 then t.dirty <- Array.make dirty_cap 0;
    let rec known j = j < t.ndirty && (t.dirty.(j) = i || known (j + 1)) in
    if not (known 0) then
      if t.ndirty = Array.length t.dirty then t.ndirty <- -1
      else begin
        t.dirty.(t.ndirty) <- i;
        t.ndirty <- t.ndirty + 1
      end
  end

let set t i v =
  if t.c.(i) <> v then begin
    if v < t.c.(i) then t.mono <- false;
    t.sum <- t.sum + v - t.c.(i);
    t.c.(i) <- v;
    touched t;
    mark_dirty t i
  end

let tick t ~proc =
  t.c.(proc) <- t.c.(proc) + 1;
  t.sum <- t.sum + 1;
  touched t;
  mark_dirty t proc

let merge_into t other =
  if t != other then begin
    if Array.length t.c <> Array.length other.c then
      invalid_arg "Vc.merge_into: size mismatch";
    let changed = ref false in
    let bump i v =
      t.sum <- t.sum + v - t.c.(i);
      t.c.(i) <- v;
      mark_dirty t i;
      changed := true
    in
    (* Same-epoch shortcut: [other]'s non-dirty components equal the
       shared epoch base, and [t] has only grown past that base since
       its own rebase — only [other]'s dirty components can exceed
       [t]'s.  This is the O(active components) merge on the interval
       apply path; anything unprovable takes the dense loop. *)
    let fast =
      t.mono && other.ndirty >= 0
      &&
      match (t.base, other.base) with
      | Some tb, Some ob ->
        tb.epoch >= 0 && tb.epoch = ob.epoch
        && t.base_ver = tb.epoch_ver
        && other.base_ver = ob.epoch_ver
      | _ -> false
    in
    if fast then
      for j = 0 to other.ndirty - 1 do
        let i = other.dirty.(j) in
        if other.c.(i) > t.c.(i) then bump i other.c.(i)
      done
    else
      for i = 0 to Array.length t.c - 1 do
        if other.c.(i) > t.c.(i) then bump i other.c.(i)
      done;
    if !changed then touched t
  end

let blit_into ~src ~dst =
  if Array.length src.c <> Array.length dst.c then
    invalid_arg "Vc.blit_into: size mismatch";
  Array.blit src.c 0 dst.c 0 (Array.length src.c);
  dst.sum <- src.sum;
  touched dst;
  (* The overwritten content bears no relation to [dst]'s old base, and
     any epoch stamp it carried no longer describes its content. *)
  dst.base <- None;
  dst.ndirty <- 0;
  dst.epoch <- -1;
  dst.mono <- false

let min_into t other =
  if t != other then begin
    if Array.length t.c <> Array.length other.c then
      invalid_arg "Vc.min_into: size mismatch";
    let changed = ref false in
    for i = 0 to Array.length t.c - 1 do
      if other.c.(i) < t.c.(i) then begin
        t.sum <- t.sum + other.c.(i) - t.c.(i);
        t.c.(i) <- other.c.(i);
        mark_dirty t i;
        changed := true
      end
    done;
    if !changed then begin
      touched t;
      t.mono <- false
    end
  end

let rebase ?(epoch = -1) t ~base =
  if epoch >= 0 then begin
    base.epoch <- epoch;
    base.epoch_ver <- base.ver
  end;
  t.base <- Some base;
  t.base_ver <- base.ver;
  t.ndirty <- 0;
  t.mono <- true

let same_components a b =
  let n = Array.length a.c in
  let rec go i = i = n || (a.c.(i) = b.c.(i) && go (i + 1)) in
  go 0

let equal a b =
  a == b
  || (Array.length a.c = Array.length b.c
     && a.sum = b.sum
     && same_components a b)

let leq a b =
  a == b
  ||
  (if Array.length a.c <> Array.length b.c then
     invalid_arg "Vc.leq: size mismatch";
   if a.sum > b.sum then false
   else if a.sum = b.sum then
     (* Equal sums: domination with any strict component is impossible,
        so [a <= b] iff the clocks are equal. *)
     same_components a b
   else
     (* Same-epoch shortcut: [a]'s non-dirty components equal the
        shared epoch base, which [b] has only grown past — only [a]'s
        dirty components can decide. *)
     let fast =
       a.ndirty >= 0 && b.mono
       &&
       match (a.base, b.base) with
       | Some ab, Some bb ->
         ab.epoch >= 0 && ab.epoch = bb.epoch
         && a.base_ver = ab.epoch_ver
         && b.base_ver = bb.epoch_ver
       | _ -> false
     in
     if fast then begin
       let rec go j =
         j >= a.ndirty
         ||
         let i = a.dirty.(j) in
         a.c.(i) <= b.c.(i) && go (j + 1)
       in
       go 0
     end
     else
       let n = Array.length a.c in
       let rec go i = i = n || (a.c.(i) <= b.c.(i) && go (i + 1)) in
       go 0)

let concurrent a b = (not (leq a b)) && not (leq b a)

let sum t = t.sum

(* Lexicographic comparison on the components, avoiding the polymorphic
   [compare] (the clock sort on every diff-apply path goes through
   [order]). *)
let lex a b =
  let n = Array.length a.c in
  let rec go i =
    if i = n then 0
    else
      let c = Int.compare a.c.(i) b.c.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

(* The historical order was: dominated-first, concurrent clocks broken by
   (sum, lex).  Domination implies a strictly smaller sum, concurrency
   with distinct sums is already decided by the sum, and equal sums rule
   out domination entirely — so the whole thing IS "(sum, lex)", with the
   sums cached this is O(1) unless the sums collide. *)
let order a b =
  if a == b then 0
  else
    let c = Int.compare a.sum b.sum in
    if c <> 0 then c else lex a b

let size_bytes t = 4 * Array.length t.c

(* Delta encoding against a clock the receiver is known to share (the
   sender's last-barrier knowledge): an 8-byte header plus an
   (index, value) pair per differing component.  When [since] is exactly
   the clock's recorded [rebase] base and has not changed since, only the
   components touched since the rebase can differ — count those instead
   of scanning all of them. *)
let delta_size_bytes ~since t =
  if Array.length since.c <> Array.length t.c then
    invalid_arg "Vc.delta_size_bytes: size mismatch";
  let changed = ref 0 in
  let fast =
    same_epoch_base t since
    && (since.epoch < 0 || since.epoch_ver = since.ver)
  in
  if fast then
    for j = 0 to t.ndirty - 1 do
      let i = t.dirty.(j) in
      if t.c.(i) <> since.c.(i) then incr changed
    done
  else if since.epoch >= 0 && since.epoch_ver = since.ver then begin
    (* [since] is a current epoch snapshot, so the count against it is a
       pure function of ([t]'s content, the epoch): cache it on [t].
       Interval timestamps are immutable and get sized once per receiver
       they are relayed to — the dense scan runs once instead of
       O(receivers) times. *)
    if t.dcache_epoch = since.epoch && t.dcache_ver = t.ver then
      changed := t.dcache
    else begin
      for i = 0 to Array.length t.c - 1 do
        if t.c.(i) <> since.c.(i) then incr changed
      done;
      t.dcache_epoch <- since.epoch;
      t.dcache_ver <- t.ver;
      t.dcache <- !changed
    end
  end
  else
    for i = 0 to Array.length t.c - 1 do
      if t.c.(i) <> since.c.(i) then incr changed
    done;
  8 + (8 * !changed)

let pp ppf t =
  Format.fprintf ppf "<%a>"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
       Format.pp_print_int)
    (Array.to_list t.c)
