type t = int array

let zero ~nprocs =
  if nprocs <= 0 then invalid_arg "Vc.zero: nprocs must be positive";
  Array.make nprocs 0

let copy = Array.copy

let nprocs = Array.length

let get t i = t.(i)

let set t i v = t.(i) <- v

let tick t ~proc = t.(proc) <- t.(proc) + 1

let merge_into t other =
  if t != other then begin
    if Array.length t <> Array.length other then
      invalid_arg "Vc.merge_into: size mismatch";
    for i = 0 to Array.length t - 1 do
      if other.(i) > t.(i) then t.(i) <- other.(i)
    done
  end

let blit_into ~src ~dst =
  if Array.length src <> Array.length dst then
    invalid_arg "Vc.blit_into: size mismatch";
  Array.blit src 0 dst 0 (Array.length src)

let min_into t other =
  if t != other then begin
    if Array.length t <> Array.length other then
      invalid_arg "Vc.min_into: size mismatch";
    for i = 0 to Array.length t - 1 do
      if other.(i) < t.(i) then t.(i) <- other.(i)
    done
  end

let leq a b =
  a == b
  ||
  (if Array.length a <> Array.length b then
     invalid_arg "Vc.leq: size mismatch";
   let n = Array.length a in
   let rec go i = i = n || (a.(i) <= b.(i) && go (i + 1)) in
   go 0)

let concurrent a b = (not (leq a b)) && not (leq b a)

let sum a = Array.fold_left ( + ) 0 a

(* Lexicographic comparison on the components, avoiding the polymorphic
   [compare] (the clock sort on every diff-apply path goes through
   [order]). *)
let lex a b =
  let n = Array.length a in
  let rec go i =
    if i = n then 0
    else
      let c = Int.compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let order a b =
  if a == b then 0
  else if leq a b then if leq b a then 0 else -1
  else if leq b a then 1
  else begin
    (* Concurrent: any deterministic total order respecting nothing in
       particular is fine, as concurrent diffs touch disjoint words when the
       program is race-free.  Use (sum, lexicographic). *)
    let c = Int.compare (sum a) (sum b) in
    if c <> 0 then c else lex a b
  end

let size_bytes t = 4 * Array.length t

(* Delta encoding against a clock the receiver is known to share (the
   sender's last-barrier knowledge): an 8-byte header plus an
   (index, value) pair per differing component. *)
let delta_size_bytes ~since t =
  if Array.length since <> Array.length t then
    invalid_arg "Vc.delta_size_bytes: size mismatch";
  let changed = ref 0 in
  for i = 0 to Array.length t - 1 do
    if t.(i) <> since.(i) then incr changed
  done;
  8 + (8 * !changed)

let equal a b =
  a == b
  || (Array.length a = Array.length b
     &&
     let n = Array.length a in
     let rec go i = i = n || (a.(i) = b.(i) && go (i + 1)) in
     go 0)

let pp ppf t =
  Format.fprintf ppf "<%a>"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
       Format.pp_print_int)
    (Array.to_list t)
