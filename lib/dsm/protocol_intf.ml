(** The interface every DSM protocol implements.

    The paper's thesis is that MW, SW and the adaptive protocols share one
    lazy-release-consistency substrate and differ only in policy: what a
    fault does, how a dirty page is closed at a release, and how page, diff
    and ownership requests are served.  That policy surface is exactly this
    signature; {!Lrc_core} provides the substrate, {!Sync} the locks,
    barriers and garbage collection, and {!Dispatch} picks the module for a
    cluster's configured protocol as a first-class value. *)

open State

module type PROTOCOL = sig
  val name : string

  (** {2 Application context (may block and charge simulated time)} *)

  (** Make the page readable.  Runs after the generic fault prologue
      (fault cost, statistics) in {!Proto.read_fault}. *)
  val read_fault : cluster -> node -> entry -> unit

  (** Make the page writable and registered dirty. *)
  val write_fault : cluster -> node -> entry -> unit

  (** {2 Release side} *)

  (** Close one dirty page while ending an interval: create its diff or
      commit its single-writer interval.  [seq]/[vc] are the interval being
      closed; CPU costs go to [charge] (accumulated, charged once by the
      caller).  Returns the version number to put on the page's write
      notice ([Some] makes it an owner write notice).  Runs between
      {!Lrc_core.end_interval}'s shared bookkeeping steps and must not
      suspend — interval closure is atomic. *)
  val close_page :
    cluster -> node -> entry -> seq:int -> vc:Vc.t -> charge:(int -> unit) ->
    int option

  (** {2 Server side (event context: must never block)} *)

  val handle_page_req :
    cluster -> node -> src:int -> int -> Msg.t Adsm_net.Rpc.respond -> unit

  val handle_diff_req :
    cluster -> node -> src:int -> page:int -> seqs:int list -> sees_sw:bool ->
    Msg.t Adsm_net.Rpc.respond -> unit

  (** Adaptive ownership request (the ownership-refusal protocol).
      Protocols that never receive [Own_req] may fail. *)
  val handle_own_req :
    cluster -> node -> src:int -> page:int -> version:int -> want_data:bool ->
    Msg.t Adsm_net.Rpc.respond -> unit

  (** Protocol-private messages (SW ownership forwarding, HLRC home
      traffic).  Returns false if the message does not belong to this
      protocol, in which case the dispatcher reports it as malformed. *)
  val handle_protocol_msg :
    cluster -> node -> src:int -> Msg.t -> Msg.t Adsm_net.Rpc.respond option ->
    bool

  (** {2 Garbage-collection policy} *)

  (** Does this node keep (and bring up to date) its copy of the page at a
      GC round, rather than dropping it? *)
  val gc_validator : cluster -> node -> entry -> bool

  (** When a copy is dropped at GC, retarget [entry.owner] at the fetch
      hint (the writer of the latest pending notice)?  The adaptive
      protocols must not: [owner] is protocol state there, not just a
      fetch hint. *)
  val gc_retarget_owner_on_drop : bool
end

(** A protocol as a first-class value, as {!Dispatch} hands it out. *)
type t = (module PROTOCOL)
