(* Synchronization over the LRC substrate: distributed locks (a
   home-rooted distributed queue), the global barrier (manager at node 0),
   and diff garbage collection (piggybacked on a barrier round).

   Protocol policy enters only through {!Dispatch.for_cluster}: interval
   closure runs the protocol's [close_page], and the GC validation phase
   asks the protocol which copies survive. *)

module Perm = Adsm_mem.Perm
module Engine = Adsm_sim.Engine
module Proc = Adsm_sim.Proc
open State

let end_interval cl node ~charge =
  Lrc_core.end_interval cl (Dispatch.for_cluster cl) node ~charge

let end_interval_local cl node =
  end_interval cl node ~charge:(fun ns -> Proc.sleep cl.engine ns)

(* ------------------------------------------------------------------ *)
(* Crash recovery (see FAULTS.md)                                     *)
(* ------------------------------------------------------------------ *)

(* Failure model: fail-stop at DSM-operation granularity.  A crash event
   sets [node.crash_pending]; the next operation boundary (page fault,
   lock, unlock, barrier, compute) performs the actual fail-stop — wipe
   volatile state, roll back to the barrier checkpoint, sleep out the
   remaining downtime, run a recovery round — via [crash_pause] below.

   Durability model (what "local stable storage" holds):
   - the node's own closed intervals and their diffs: a write-behind log
     flushed at every interval close.  Implementation: own intervals,
     own diff-store entries and [own_diff_seqs] are simply not wiped;
   - the committed frame of every page the node is the designated copy
     holder for ([is_owner], or [owner = self] after an adaptive MW
     drop): peers' Page/Diff requests parked during the downtime must
     still be servable after restart;
   - directory fields (version, owner hint, copyset, mode bits): a
     page's directory claim survives so no page becomes ownerless.
   Everything else — non-owned frames, twins, remote diffs, remote
   interval logs, pending notices, TLB — is volatile and lost.

   The checkpoint, taken at every barrier leave, is tiny: just the VC
   to roll back to.  Frames need no checkpoint (re-fetched from copy
   holders on demand), and notice lists are NOT checkpointed — a
   pending-notice snapshot is only meaningful relative to the page
   copies it was taken against, and the crash wipes those.  Instead the
   recovery round below rebuilds each page's notice list from the
   peers' full retained interval logs, which stay alive while the node
   is down: no GC round can complete because barriers block on it. *)

let checkpoint cl node =
  match cl.cfg.Config.faults with
  | Some { Adsm_net.Fault.crashes = _ :: _; _ } ->
    node.ckpt <- Some { ck_vc = Vc.copy node.vc }
  | _ -> ()

(* A peer's view of a restarted node's recovery round: return every
   closed interval the given (checkpoint) clock does not cover.  No
   interval close is needed first — the requester's pre-crash VC can
   only cover closed intervals, never a peer's still-open one. *)
let handle_recover_req cl node ~vc respond =
  let intervals = Lrc_core.collect_unseen cl node vc in
  Lrc_core.respond_msg cl node respond (Msg.Recover_reply { intervals })

(* The fail-stop itself.  Runs in the application process's context at
   an operation boundary; [node.crash_pending] is already set. *)
let crash_pause cl node =
  node.crash_pending <- false;
  node.crash_count <- node.crash_count + 1;
  (* Flush the write-behind log: close the interval in progress so the
     writes already performed are durably diffed and noticed. *)
  end_interval_local cl node;
  if checking cl then observe cl ~node:node.id Adsm_check.Obs.Crash;
  let stash_vc = Vc.copy node.vc in
  let mutation = cl.cfg.Config.mutation in
  (* Wipe volatile state.  Pages whose committed frame is durable (we
     are the designated copy holder) keep everything; all other entries
     lose frame, twin, permissions, versions, reflected view and
     notices.  Directory fields survive (durable directory claim). *)
  iter_entries node (fun (e : entry) ->
      if not (e.is_owner || e.owner = node.id) then begin
        e.data <- None;
        e.has_base <- false;
        e.perm <- Perm.No_access;
        e.twin <- None;
        e.pending_diff <- None;
        e.dirty <- false;
        e.notices <- [];
        e.content_version <- 0;
        e.committed_version <- 0;
        reflected_reset e;
        clear_last_notices node e
      end);
  tlb_reset node;
  (* Remote diffs and remote interval logs are volatile caches. *)
  let dropped =
    Hashtbl.fold
      (fun ((_, proc, _) as key) _ acc ->
        if proc <> node.id then key :: acc else acc)
      node.diffs []
  in
  List.iter (Hashtbl.remove node.diffs) dropped;
  for p = 0 to node.nprocs - 1 do
    if p <> node.id then Interval.Log.clear node.intervals.(p)
  done;
  (* Roll the vector clock back to the checkpoint — except our own
     component, whose intervals are in the durable log (rolling it back
     would reuse sequence numbers).  The [Stale_vc_after_restart]
     mutation rolls the own component back too: the node then reissues
     already-used sequence numbers, so peers silently drop its
     post-restart intervals as duplicates. *)
  let own_seq = Vc.get stash_vc node.id in
  (match node.ckpt with
  | Some ck ->
    Vc.blit_into ~src:ck.ck_vc ~dst:node.vc;
    Vc.blit_into ~src:ck.ck_vc ~dst:node.last_barrier_vc
  | None ->
    for p = 0 to node.nprocs - 1 do
      Vc.set node.vc p 0;
      Vc.set node.last_barrier_vc p 0
    done);
  if mutation <> Some Config.Stale_vc_after_restart then
    Vc.set node.vc node.id own_seq;
  (* Sleep out the rest of the downtime.  If this boundary was reached
     at or after the scheduled restart (the process was blocked the
     whole window), the effective downtime is zero but the wipe and
     recovery above/below still happened. *)
  if Engine.now cl.engine < node.crash_restart_at then begin
    let ivar = Proc.Ivar.create () in
    node.restart_wait <- Some ivar;
    Proc.Ivar.await ivar
  end;
  (* Recovery round: ask every peer for its FULL retained interval log
     (a zero request clock), not just the intervals our rolled-back
     clock misses.  The full log is needed because a wiped page's next
     base copy can come from an arbitrarily stale holder: the notice
     list must cover every retained write so diffs always chain from
     whatever base arrives (the zero page is the ultimate fallback
     base).  Requests to a peer that is itself down park at its network
     interface and are answered after its restart.

     Replies are merged in three groups, oldest first, after dropping
     intervals we originated (our own log is durable and complete):
     - already-covered intervals re-enter the local interval log and
       have their notices re-applied ([apply_notice] consults the
       per-entry reflected view, so notices a durable frame already
       contains are skipped);
     - not-yet-covered intervals go through the normal
       [apply_intervals] (which also re-merges the clocks);
     affected pages end up invalid and re-fetch on demand through the
     normal validate path.

     The [Skip_notice_replay] mutation skips the rebuild of covered
     intervals — the classic recovery bug where the restarted node
     trusts its rolled-back clock to tell it what it is missing. *)
  begin
    let vc =
      if mutation = Some Config.Skip_notice_replay then Vc.copy node.vc
      else Vc.zero ~nprocs:node.nprocs
    in
    let batches = ref [] in
    (* One request record serves every peer: the payload is immutable
       and the network never retains it past delivery. *)
    let req = Msg.Recover_req { vc } in
    for p = node.nprocs - 1 downto 0 do
      if p <> node.id then begin
        match Lrc_core.call cl ~src:node.id ~dst:p req with
        | Msg.Recover_reply { intervals } -> batches := intervals :: !batches
        | _ -> failwith "Proto: unexpected recover reply"
      end
    done;
    (* Several peers may retain the same interval: dedupe by origin. *)
    let seen = Hashtbl.create 64 in
    let all =
      List.filter
        (fun (iv : Interval.t) ->
          iv.proc <> node.id
          &&
          let key = (iv.proc, iv.seq) in
          if Hashtbl.mem seen key then false
          else begin
            Hashtbl.add seen key ();
            true
          end)
        (List.concat !batches)
    in
    let covered, uncovered =
      List.partition
        (fun (iv : Interval.t) -> iv.seq <= Vc.get node.vc iv.proc)
        all
    in
    let covered =
      List.sort (fun (a : Interval.t) b -> Vc.order a.vc b.vc) covered
    in
    List.iter
      (fun (iv : Interval.t) ->
        Interval.Log.append node.intervals.(iv.proc) iv;
        List.iter (Lrc_core.apply_notice ~replay:true cl node) iv.notices)
      covered;
    Lrc_core.apply_intervals ~replay:true cl node uncovered
  end;
  if checking cl then observe cl ~node:node.id Adsm_check.Obs.Restart

(* Operation-boundary hook: one predictable-false branch on the
   fault-free path. *)
let pause_if_crashed cl node = if node.crash_pending then crash_pause cl node

(* ------------------------------------------------------------------ *)
(* Locks                                                              *)
(* ------------------------------------------------------------------ *)

(* Grant a lock to [requester]: close our interval (charging its cost as
   extra latency on the grant when running in event context) and send every
   interval the requester has not seen. *)
let lock_grant_now cl node lock requester req_vc ~charge_delay =
  (* Claim the token before any suspension point so no concurrent handler
     can decide to grant the same lock again. *)
  let ls = lock_state node ~home:(home_of_lock cl lock) lock in
  ls.have_token <- false;
  ls.next <- None;
  let delay = ref 0 in
  let charge =
    match charge_delay with
    | `Sleep -> fun ns -> Proc.sleep cl.engine ns
    | `Delay -> fun ns -> delay := !delay + ns
  in
  end_interval cl node ~charge;
  let intervals = Lrc_core.collect_unseen cl node req_vc in
  let send () =
    Lrc_core.cast cl ~src:node.id ~dst:requester
      (Msg.Lock_grant { lock; intervals })
  in
  if !delay = 0 then send () else Engine.schedule cl.engine ~delay:!delay send

let handle_lock_forward cl node ~requester ~vc lock =
  let ls = lock_state node ~home:(home_of_lock cl lock) lock in
  if ls.have_token && not ls.held then
    lock_grant_now cl node lock requester vc ~charge_delay:`Delay
  else begin
    assert (ls.next = None);
    ls.next <- Some (requester, vc)
  end

let handle_lock_acquire cl node ~src ~vc lock =
  (* We are the home: append [src] to the distributed queue. *)
  let ls = lock_state node ~home:(home_of_lock cl lock) lock in
  let prev = if ls.home_tail = -1 then node.id else ls.home_tail in
  ls.home_tail <- src;
  if prev = node.id then handle_lock_forward cl node ~requester:src ~vc lock
  else
    Lrc_core.cast cl ~src:node.id ~dst:prev
      (Msg.Lock_forward { lock; requester = src; vc })

let handle_lock_grant cl node ~lock intervals =
  match Hashtbl.find_opt node.lock_waits lock with
  | Some ivar -> Proc.Ivar.fill cl.engine ivar intervals
  | None -> failwith "Proto: unexpected lock grant"

let lock cl node l =
  pause_if_crashed cl node;
  let t0 = Engine.now cl.engine in
  let ls = lock_state node ~home:(home_of_lock cl l) l in
  if ls.have_token && not ls.held then ls.held <- true
  else begin
    end_interval_local cl node;
    let ivar = Proc.Ivar.create () in
    Hashtbl.replace node.lock_waits l ivar;
    let vc = Vc.copy node.vc in
    let home = home_of_lock cl l in
    if home = node.id then handle_lock_acquire cl node ~src:node.id ~vc l
    else
      Lrc_core.cast cl ~src:node.id ~dst:home
        (Msg.Lock_acquire { lock = l; vc });
    let intervals = Proc.Ivar.await ivar in
    Hashtbl.remove node.lock_waits l;
    Lrc_core.apply_intervals cl node intervals;
    ls.have_token <- true;
    ls.held <- true
  end;
  if tracing cl then
    emit cl ~node:node.id (Adsm_trace.Event.Lock_acquire { lock = l });
  if checking cl then observe cl ~node:node.id (Adsm_check.Obs.Acquire { lock = l });
  Stats.add_time cl.stats ~node:node.id ~category:Stats.Lock
    ~ns:(Engine.now cl.engine - t0)

let unlock cl node l =
  pause_if_crashed cl node;
  let ls = lock_state node ~home:(home_of_lock cl l) l in
  if not ls.held then invalid_arg "Dsm.unlock: lock not held";
  if tracing cl then
    emit cl ~node:node.id (Adsm_trace.Event.Lock_release { lock = l });
  if checking cl then observe cl ~node:node.id (Adsm_check.Obs.Release { lock = l });
  ls.held <- false;
  match ls.next with
  | Some (requester, vc) ->
    lock_grant_now cl node l requester vc ~charge_delay:`Sleep
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Barriers and garbage collection                                    *)
(* ------------------------------------------------------------------ *)

(* Rule 3 (Section 3.1.2): at a barrier, a write notice that dominates all
   other write notices — including this node's own recent writes — means
   false sharing has stopped. *)
let rule3_scan cl node =
  if Mode.adaptive cl then
    iter_entries node
      (fun (e : entry) ->
        match e.notices with
        | [] -> ()
        | notices ->
          let dominates (n : Notice.t) =
            List.for_all
              (fun (m : Notice.t) ->
                Notice.same_write n m || Notice.covers ~by:n m)
              notices
            &&
            match last_notice node e node.id with
            | Some own ->
              (* [own.(id)] is the seq of this node's latest writing
                 interval on the page: O(1) coverage (see
                 [Notice.covers]). *)
              Vc.get n.vc node.id >= Vc.get own node.id
            | None -> true
          in
          if List.exists dominates notices then
            Mode.set_fs_active cl ~node:node.id e false)

(* Pick the copy-fetch hint for a dropped page: the writer of the latest
   pending notice (necessarily a GC validator, since its diff is live). *)
let gc_fetch_hint (pending : Notice.t list) fallback =
  match pending with
  | [] -> fallback
  | n :: rest ->
    let best =
      List.fold_left
        (fun (acc : Notice.t) (m : Notice.t) ->
          if Vc.order m.vc acc.vc > 0 then m else acc)
        n rest
    in
    best.proc

(* Validation phase of garbage collection (runs in process context inside
   the barrier).  The protocol decides which copies survive: MW keeps every
   copy whose node has live own diffs; the adaptive protocols keep only the
   last owner's.  All other copies are dropped. *)
let gc_validate cl node =
  let (module P : Protocol_intf.PROTOCOL) = Dispatch.for_cluster cl in
  (* Copies are downgraded or dropped wholesale below. *)
  tlb_reset node;
  iter_entries node
    (fun (e : entry) ->
      let pending = List.filter (Lrc_core.still_needed node e) e.notices in
      if pending = [] then e.notices <- []
      else if P.gc_validator cl node e then begin
        (* Bring the copy fully up to date. *)
        if e.data = None then ignore (frame e);
        Lrc_core.fetch_and_apply_diffs cl node e;
        e.perm <- Perm.Read_only;
        e.content_version <- e.version;
        e.committed_version <- e.version;
        let r = reflected_rw e ~nprocs:node.nprocs in
        for q = 0 to Array.length r - 1 do
          r.(q) <- Vc.get node.vc q
        done
      end
      else begin
        let hint = gc_fetch_hint pending e.owner in
        if tracing cl then
          emit cl ~node:node.id (Adsm_trace.Event.Gc_drop { page = e.page });
        e.data <- None;
        e.has_base <- false;
        e.perm <- Perm.No_access;
        e.notices <- [];
        e.content_version <- 0;
        e.committed_version <- 0;
        reflected_reset e;
        if P.gc_retarget_owner_on_drop then e.owner <- hint
      end)

(* Purge the diff store and twins after everyone has validated. *)
let gc_purge cl node =
  let bytes = ref 0 and count = ref 0 in
  Hashtbl.iter
    (fun _ (_, diff) ->
      bytes := !bytes + Diff.size_bytes diff;
      incr count)
    node.diffs;
  Hashtbl.reset node.diffs;
  Stats.diffs_dropped cl.stats ~node:node.id ~bytes:!bytes ~count:!count
    ~time:(Engine.now cl.engine);
  if tracing cl then
    emit cl ~node:node.id
      (Adsm_trace.Event.Diff_gc { count = !count; bytes = !bytes });
  iter_entries node
    (fun (e : entry) ->
      e.own_diff_seqs <- [];
      (* Lazily-pending diffs whose notices were just discarded will never
         be requested: drop them uncreated (the lazy scheme's win). *)
      match e.pending_diff with
      | Some _ ->
        e.pending_diff <- None;
        if e.twin <> None then begin
          e.twin <- None;
          Stats.twin_freed cl.stats ~node:node.id
        end
      | None -> ());
  (* Interval logs are globally known at this point; drop them so grants
     stay small.  Vector clocks keep the ordering information. *)
  Array.iter Interval.Log.clear node.intervals

(* ------------------------------------------------------------------ *)
(* Tree (combining) barrier                                           *)
(* ------------------------------------------------------------------ *)

(* The combining tree (Config.Tree { fanout }) replaces the manager's
   n-way fan-in with a fanout-ary tree rooted at node 0: node i's parent
   is (i-1)/fanout, its children are i*fanout+1 .. i*fanout+fanout.  A
   node folds its own arrival and each direct child subtree's combined
   arrival into one (min-clock, concatenated-intervals, OR'd gc flag)
   record and forwards a single Barrier_arrive to its parent.  The
   subtree MINIMUM clock is the right summary: it covers an interval iff
   every subtree member does, so collect_unseen against it returns the
   union of what the members are missing — over-sending to an individual
   member is harmless because apply_intervals skips covered intervals.

   The one-batch invariant of [barrier_complete] carries over: interior
   nodes only BUFFER interval lists on the way up (they apply nothing),
   and the root applies the full combined batch at once.  Releases fan
   back down: each node, after applying its own release (which makes its
   knowledge complete — its release was computed against its subtree
   minimum), recomputes each direct child's missing set from the child's
   stored subtree-min clock.  Children stay blocked until their release
   arrives, so the clock buffers they sent up by reference are stable. *)

let tree_state node =
  match node.tb with
  | Some tb -> tb
  | None -> failwith "Proto: tree barrier message under a central config"

let tree_parent ~fanout id = (id - 1) / fanout

let tree_first_child ~fanout id = (id * fanout) + 1

let tree_children_count ~fanout ~nprocs id =
  let first = tree_first_child ~fanout id in
  if first >= nprocs then 0 else min fanout (nprocs - first)

let tree_iter_children ~fanout ~nprocs id f =
  let first = tree_first_child ~fanout id in
  let last = min (nprocs - 1) (first + fanout - 1) in
  for c = first to last do
    f c
  done

(* Fold one arrival (the node's own, or a child subtree's combined one)
   into the local combining state.  Clock components are copied into the
   preallocated [tb_vcmin]; nothing O(nprocs) is allocated. *)
let tree_contribute tb ~epoch ~vc ~intervals ~gc_wanted =
  if not tb.tb_vc_valid then begin
    tb.tb_epoch <- epoch;
    Vc.blit_into ~src:vc ~dst:tb.tb_vcmin;
    tb.tb_vc_valid <- true
  end
  else begin
    if epoch <> tb.tb_epoch then
      failwith
        (Printf.sprintf "Proto: tree barrier epoch mismatch (%d vs %d)" epoch
           tb.tb_epoch);
    Vc.min_into tb.tb_vcmin vc
  end;
  (* Order is irrelevant: apply_intervals sorts by timestamp. *)
  tb.tb_intervals <- List.rev_append intervals tb.tb_intervals;
  if gc_wanted then tb.tb_gc_wanted <- true

(* Root completion: apply the whole combined batch in ONE step (the
   barrier_complete invariant), then unblock the root's own process.  The
   fan-out of child releases happens in [tree_fan_release] when that
   process resumes — collect_unseen needs the root's interval log to be
   fully up to date, which apply_intervals just made true. *)
let tree_root_complete cl node tb =
  Lrc_core.apply_intervals cl node tb.tb_intervals;
  let gc_round = tb.tb_gc_wanted in
  if gc_round then Stats.gc_started cl.stats;
  let msg =
    Msg.Barrier_release { epoch = tb.tb_epoch; intervals = []; gc_round }
  in
  match node.barrier_wait with
  | Some ivar ->
    node.barrier_wait <- None;
    Proc.Ivar.fill cl.engine ivar msg
  | None -> assert false

let tree_maybe_forward cl node tb ~fanout =
  let nprocs = cl.cfg.Config.nprocs in
  if
    tb.tb_self_arrived
    && tb.tb_arrived = tree_children_count ~fanout ~nprocs node.id
  then
    if node.id = 0 then tree_root_complete cl node tb
    else
      Lrc_core.cast cl ~src:node.id ~dst:(tree_parent ~fanout node.id)
        (Msg.Barrier_arrive
           {
             epoch = tb.tb_epoch;
             vc = tb.tb_vcmin;
             intervals = tb.tb_intervals;
             gc_wanted = tb.tb_gc_wanted;
           })

let tree_handle_arrive cl node ~fanout ~src ~vc ~intervals ~gc_wanted epoch =
  let tb = tree_state node in
  tree_contribute tb ~epoch ~vc ~intervals ~gc_wanted;
  tb.tb_arrived <- tb.tb_arrived + 1;
  tb.tb_child_vcs <- (src, vc) :: tb.tb_child_vcs;
  tree_maybe_forward cl node tb ~fanout

(* Fan the release down: runs in the released node's own process, AFTER
   it applied its release batch, so its clock and interval log cover
   everything any descendant can be missing. *)
let tree_fan_release cl node ~epoch ~gc_round =
  let tb = tree_state node in
  List.iter
    (fun (child, cvc) ->
      let intervals = Lrc_core.collect_unseen cl node cvc in
      Lrc_core.cast cl ~src:node.id ~dst:child
        (Msg.Barrier_release { epoch; intervals; gc_round }))
    (List.rev tb.tb_child_vcs);
  tb.tb_arrived <- 0;
  tb.tb_self_arrived <- false;
  tb.tb_vc_valid <- false;
  tb.tb_intervals <- [];
  tb.tb_gc_wanted <- false;
  tb.tb_child_vcs <- []

(* GC completion fans down the static tree (the child clocks recorded
   for the barrier are already reset by now). *)
let tree_gc_complete_down cl node ~fanout ~epoch =
  let tb = tree_state node in
  let msg = Msg.Gc_complete { epoch } in
  tree_iter_children ~fanout ~nprocs:cl.cfg.Config.nprocs node.id (fun c ->
      Lrc_core.cast cl ~src:node.id ~dst:c msg);
  tb.tb_gc_done <- 0;
  tb.tb_self_gc_done <- false;
  match node.gc_wait with
  | Some ivar ->
    node.gc_wait <- None;
    Proc.Ivar.fill cl.engine ivar ()
  | None -> failwith "Proto: unexpected gc complete"

(* Combine Gc_done up the tree: forwarded once this node AND every direct
   child subtree have finished validating. *)
let tree_gc_maybe_up cl node ~fanout ~epoch =
  let tb = tree_state node in
  if
    tb.tb_self_gc_done
    && tb.tb_gc_done
       = tree_children_count ~fanout ~nprocs:cl.cfg.Config.nprocs node.id
  then
    if node.id = 0 then tree_gc_complete_down cl node ~fanout ~epoch
    else
      Lrc_core.cast cl ~src:node.id ~dst:(tree_parent ~fanout node.id)
        (Msg.Gc_done { epoch })

(* ------------------------------------------------------------------ *)
(* Central barrier (the paper's manager at node 0)                    *)
(* ------------------------------------------------------------------ *)

let barrier_complete cl =
  let mgr = cl.barrier_mgr in
  let manager = cl.nodes.(0) in
  (* Merge every arrival's intervals into the manager's knowledge in ONE
     batch: applying them per arrival would merge one node's vector clock
     (which covers other nodes' intervals) before those intervals' notices
     have been applied, silently dropping them. *)
  let all_intervals =
    List.concat_map (fun (_, _, intervals, _) -> intervals) mgr.arrivals
  in
  Lrc_core.apply_intervals cl manager all_intervals;
  let gc_round = mgr.gc_requested in
  if gc_round then Stats.gc_started cl.stats;
  let epoch = mgr.epoch in
  (* Release every node with the intervals it is missing. *)
  List.iter
    (fun (src, vc, _, _) ->
      let intervals = Lrc_core.collect_unseen cl manager vc in
      let msg = Msg.Barrier_release { epoch; intervals; gc_round } in
      if src = 0 then begin
        match manager.barrier_wait with
        | Some ivar ->
          manager.barrier_wait <- None;
          Proc.Ivar.fill cl.engine ivar msg
        | None -> assert false
      end
      else Lrc_core.cast cl ~src:0 ~dst:src msg)
    (List.rev mgr.arrivals);
  mgr.arrivals <- [];
  mgr.arrived <- 0;
  mgr.epoch <- epoch + 1;
  mgr.gc_requested <- false;
  if gc_round then mgr.gc_done_count <- 0

let handle_barrier_arrive cl node ~src ~vc ~intervals ~gc_wanted epoch =
  match cl.cfg.Config.barrier with
  | Config.Tree { fanout } ->
    tree_handle_arrive cl node ~fanout ~src ~vc ~intervals ~gc_wanted epoch
  | Config.Central ->
    let mgr = cl.barrier_mgr in
    if epoch <> mgr.epoch then
      failwith
        (Printf.sprintf "Proto: barrier epoch mismatch (%d vs %d)" epoch
           mgr.epoch);
    mgr.arrivals <- (src, vc, intervals, gc_wanted) :: mgr.arrivals;
    mgr.arrived <- mgr.arrived + 1;
    if gc_wanted then mgr.gc_requested <- true;
    if mgr.arrived = cl.cfg.Config.nprocs then barrier_complete cl

let handle_barrier_release cl node msg =
  match node.barrier_wait with
  | Some ivar ->
    node.barrier_wait <- None;
    Proc.Ivar.fill cl.engine ivar msg
  | None -> failwith "Proto: unexpected barrier release"

let gc_complete_all cl =
  (* One record fanned to every node — the broadcast reuses the same
     immutable message instead of allocating n-1 copies. *)
  let msg = Msg.Gc_complete { epoch = cl.barrier_mgr.epoch } in
  for p = 1 to cl.cfg.Config.nprocs - 1 do
    Lrc_core.cast cl ~src:0 ~dst:p msg
  done;
  let manager = cl.nodes.(0) in
  match manager.gc_wait with
  | Some ivar ->
    manager.gc_wait <- None;
    Proc.Ivar.fill cl.engine ivar ()
  | None -> assert false

let handle_gc_done cl node epoch =
  match cl.cfg.Config.barrier with
  | Config.Tree { fanout } ->
    let tb = tree_state node in
    tb.tb_gc_done <- tb.tb_gc_done + 1;
    tree_gc_maybe_up cl node ~fanout ~epoch
  | Config.Central ->
    let mgr = cl.barrier_mgr in
    mgr.gc_done_count <- mgr.gc_done_count + 1;
    if mgr.gc_done_count = cl.cfg.Config.nprocs then gc_complete_all cl

let handle_gc_complete cl node epoch =
  match cl.cfg.Config.barrier with
  | Config.Tree { fanout } -> tree_gc_complete_down cl node ~fanout ~epoch
  | Config.Central -> (
    match node.gc_wait with
    | Some ivar ->
      node.gc_wait <- None;
      Proc.Ivar.fill cl.engine ivar ()
    | None -> failwith "Proto: unexpected gc complete")

let barrier cl node =
  pause_if_crashed cl node;
  let t0 = Engine.now cl.engine in
  if tracing cl then
    emit cl ~node:node.id
      (Adsm_trace.Event.Barrier_enter { epoch = node.barrier_epoch });
  if checking cl then
    observe cl ~node:node.id
      (Adsm_check.Obs.Barrier_enter { epoch = node.barrier_epoch });
  end_interval_local cl node;
  let gc_wanted =
    Stats.diff_store_bytes cl.stats ~node:node.id
    > cl.cfg.Config.gc_threshold_bytes
  in
  let ivar = Proc.Ivar.create () in
  node.barrier_wait <- Some ivar;
  let epoch = node.barrier_epoch in
  node.barrier_epoch <- epoch + 1;
  let own_intervals =
    Interval.Log.unseen_by node.last_barrier_vc ~proc:node.id
      node.intervals.(node.id) []
  in
  (match cl.cfg.Config.barrier with
  | Config.Central ->
    let vc = Vc.copy node.vc in
    if node.id = 0 then
      handle_barrier_arrive cl node ~src:0 ~vc ~intervals:own_intervals
        ~gc_wanted epoch
    else
      Lrc_core.cast cl ~src:node.id ~dst:0
        (Msg.Barrier_arrive { epoch; vc; intervals = own_intervals; gc_wanted })
  | Config.Tree { fanout } ->
    (* Own arrival: fold our clock into the preallocated subtree minimum
       (no copy) and forward the combined arrival if the children already
       all checked in. *)
    let tb = tree_state node in
    tree_contribute tb ~epoch ~vc:node.vc ~intervals:own_intervals ~gc_wanted;
    tb.tb_self_arrived <- true;
    tree_maybe_forward cl node tb ~fanout);
  (match Proc.Ivar.await ivar with
  | Msg.Barrier_release { intervals; gc_round; _ } ->
    Lrc_core.apply_intervals cl node intervals;
    (match cl.cfg.Config.barrier with
    | Config.Central -> node.last_barrier_vc <- Vc.copy node.vc
    | Config.Tree _ ->
      (* Knowledge is complete now; release the children before the
         (possibly long) rule-3 scan and GC work below. *)
      tree_fan_release cl node ~epoch ~gc_round;
      Vc.blit_into ~src:node.vc ~dst:node.last_barrier_vc);
    (* The clock now equals the refreshed last-barrier snapshot: rebase
       so the sparse-VC wire accounting of everything piggybacking this
       clock (or copies of it — intervals, arrivals, acquires) counts
       only post-barrier components instead of scanning all [nprocs].
       Every node completing this barrier holds the same supremum, so
       stamp the snapshot with the epoch number ([epoch + 1], keeping 0
       for the initial all-zeros stamp of [make_node]): clocks relayed
       between nodes stay delta-comparable against the receiver's own
       snapshot of the same epoch. *)
    Vc.rebase node.vc ~base:node.last_barrier_vc ~epoch:(epoch + 1);
    rule3_scan cl node;
    if gc_round then begin
      let gc_ivar = Proc.Ivar.create () in
      node.gc_wait <- Some gc_ivar;
      gc_validate cl node;
      (match cl.cfg.Config.barrier with
      | Config.Central ->
        if node.id = 0 then handle_gc_done cl node epoch
        else Lrc_core.cast cl ~src:node.id ~dst:0 (Msg.Gc_done { epoch })
      | Config.Tree { fanout } ->
        let tb = tree_state node in
        tb.tb_self_gc_done <- true;
        tree_gc_maybe_up cl node ~fanout ~epoch);
      Proc.Ivar.await gc_ivar;
      gc_purge cl node
    end
  | _ -> failwith "Proto: unexpected barrier reply");
  (* Crash-recovery checkpoint: knowledge is barrier-complete and (on a
     GC round) freshly purged, so the VC plus the still-pending notices
     are exactly the state a restart must re-establish. *)
  checkpoint cl node;
  if tracing cl then
    emit cl ~node:node.id (Adsm_trace.Event.Barrier_leave { epoch });
  if checking cl then
    observe cl ~node:node.id (Adsm_check.Obs.Barrier_leave { epoch });
  Stats.add_time cl.stats ~node:node.id ~category:Stats.Barrier
    ~ns:(Engine.now cl.engine - t0)
