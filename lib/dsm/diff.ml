module Page = Adsm_mem.Page

(* Flat representation: run [i] covers [offs.(i) .. offs.(i) + length
   data.(i)), offsets strictly increasing.  The encoded size and modified
   byte count are computed once at construction — [Stats.diff_created],
   message sizing and the protocol cost model all query them on every
   diff, and the old [run list] representation re-folded the list each
   time. *)
type t = {
  offs : int array;
  data : Bytes.t array;
  size_bytes : int;  (* run headers + payload *)
  modified_bytes : int;  (* payload only *)
}

let empty = { offs = [||]; data = [||]; size_bytes = 0; modified_bytes = 0 }

let run_header_bytes = 4 (* 2-byte offset + 2-byte length *)

(* Modifications are detected at 32-bit word granularity, as in TreadMarks:
   a word with any differing byte contributes all four bytes to the diff.
   This is what makes a page of small counter updates diff at nearly the
   full page size (the paper's IS behaviour). *)
let word = 4

let of_runs ~nruns ~modified_words offs data =
  let modified_bytes = modified_words * word in
  {
    offs;
    data;
    size_bytes = (nruns * run_header_bytes) + modified_bytes;
    modified_bytes;
  }

(* The page scan compares 8-byte chunks first and only drops to 32-bit
   words inside a differing chunk, so the common all-equal stretches cost
   one load+compare per two words.  Only *equality* of same-offset chunks
   is ever tested, so native-endian unaligned loads are fine on any
   architecture, and the indices are bounded by the page size by
   construction, so the unchecked primitives are safe.  Run boundaries
   are identical to a plain word-at-a-time scan. *)

external get64u : Bytes.t -> int -> int64 = "%caml_bytes_get64u"

external get32u : Bytes.t -> int -> int32 = "%caml_bytes_get32u"

let word_equal a b w = Int32.equal (get32u a (w * word)) (get32u b (w * word))

(* First differing word index >= [w0], or [n] if none. *)
let next_diff a b w0 n =
  let w = ref w0 and found = ref (-1) in
  while !found < 0 && !w < n do
    let i = !w in
    if i + 1 < n then
      if Int64.equal (get64u a (i * word)) (get64u b (i * word)) then
        w := i + 2
      else if word_equal a b i then found := i + 1
      else found := i
    else if word_equal a b i then incr w
    else found := i
  done;
  if !found < 0 then n else !found

(* First equal word index >= [w0] (the end of a run), or [n] if none. *)
let run_end a b w0 n =
  let w = ref w0 and found = ref (-1) in
  while !found < 0 && !w < n do
    let i = !w in
    if i + 1 < n then
      if Int64.equal (get64u a (i * word)) (get64u b (i * word)) then
        found := i
      else if word_equal a b i then found := i
      else if word_equal a b (i + 1) then found := i + 1
      else w := i + 2
    else if word_equal a b i then found := i
    else incr w
  done;
  if !found < 0 then n else !found

let create ~twin ~current =
  let a = Page.raw twin and b = Page.raw current in
  let n = Page.size / word in
  (* Single scan; runs collect into a doubling buffer (pages rarely have
     more than a handful). *)
  let offs = ref (Array.make 8 0) in
  let data = ref (Array.make 8 Bytes.empty) in
  let nruns = ref 0 and modified_words = ref 0 in
  let w = ref (next_diff a b 0 n) in
  while !w < n do
    let stop = run_end a b !w n in
    if !nruns = Array.length !offs then begin
      let cap = 2 * !nruns in
      let offs' = Array.make cap 0 and data' = Array.make cap Bytes.empty in
      Array.blit !offs 0 offs' 0 !nruns;
      Array.blit !data 0 data' 0 !nruns;
      offs := offs';
      data := data'
    end;
    let off = !w * word in
    !offs.(!nruns) <- off;
    !data.(!nruns) <- Bytes.sub b off ((stop - !w) * word);
    incr nruns;
    modified_words := !modified_words + (stop - !w);
    w := next_diff a b stop n
  done;
  if !nruns = 0 then empty
  else
    of_runs ~nruns:!nruns ~modified_words:!modified_words
      (Array.sub !offs 0 !nruns)
      (Array.sub !data 0 !nruns)

let apply t page =
  let raw = Page.raw page in
  for i = 0 to Array.length t.offs - 1 do
    let d = t.data.(i) in
    Bytes.blit d 0 raw t.offs.(i) (Bytes.length d)
  done

let size_bytes t = t.size_bytes

let is_empty t = Array.length t.offs = 0

let run_count t = Array.length t.offs

let modified_bytes t = t.modified_bytes

let ranges t =
  Array.to_list
    (Array.mapi (fun i off -> (off, Bytes.length t.data.(i))) t.offs)

let pp ppf t =
  Format.fprintf ppf "diff[%d runs, %d bytes]" (run_count t) (modified_bytes t)

let of_ranges ranges page =
  (* Build a diff directly from logged write ranges (software write
     detection): coalesce and word-align the ranges, then capture the
     current contents.  No twin or page scan is needed. *)
  match ranges with
  | [] -> empty
  | _ ->
    let aligned =
      List.map
        (fun (off, len) ->
          let start = off / word * word in
          let stop = (off + len + word - 1) / word * word in
          (start, min Page.size stop))
        ranges
    in
    let sorted =
      List.sort
        (fun ((s1 : int), (e1 : int)) (s2, e2) ->
          if s1 <> s2 then Int.compare s1 s2 else Int.compare e1 e2)
        aligned
    in
    (* Single linear merge pass over the sorted ranges: a range starting
       at or before the previous stop extends it (adjacent ranges
       coalesce too). *)
    let max_runs = List.length sorted in
    let starts = Array.make max_runs 0 and stops = Array.make max_runs 0 in
    let count = ref 0 in
    List.iter
      (fun (start, stop) ->
        if !count > 0 && start <= stops.(!count - 1) then begin
          if stop > stops.(!count - 1) then stops.(!count - 1) <- stop
        end
        else begin
          starts.(!count) <- start;
          stops.(!count) <- stop;
          incr count
        end)
      sorted;
    let raw = Page.raw page in
    let nruns = !count in
    let offs = Array.sub starts 0 nruns in
    let data =
      Array.init nruns (fun i ->
          Bytes.sub raw starts.(i) (stops.(i) - starts.(i)))
    in
    let modified_words =
      Array.fold_left (fun acc d -> acc + (Bytes.length d / word)) 0 data
    in
    of_runs ~nruns ~modified_words offs data
