module Page = Adsm_mem.Page

(* Flat representation: run [i] covers [offs.(i) .. offs.(i) + lens.(i)),
   offsets strictly increasing, with every run's data concatenated in one
   [payload] buffer — three allocations per diff however many runs it
   has (a fine-grained diff of alternate words has hundreds, and a
   per-run [Bytes.sub] dominated diff creation).  The encoded size and
   modified byte count are computed once at construction —
   [Stats.diff_created], message sizing and the protocol cost model all
   query them on every diff. *)
type t = {
  offs : int array;
  lens : int array;
  payload : Bytes.t;  (* run data, concatenated in run order *)
  size_bytes : int;  (* run headers + payload *)
  modified_bytes : int;  (* payload only *)
}

let empty =
  {
    offs = [||];
    lens = [||];
    payload = Bytes.empty;
    size_bytes = 0;
    modified_bytes = 0;
  }

let run_header_bytes = 4 (* 2-byte offset + 2-byte length *)

(* Modifications are detected at 32-bit word granularity, as in TreadMarks:
   a word with any differing byte contributes all four bytes to the diff.
   This is what makes a page of small counter updates diff at nearly the
   full page size (the paper's IS behaviour). *)
let word = 4

let of_runs ~nruns ~modified_words offs lens payload =
  let modified_bytes = modified_words * word in
  {
    offs;
    lens;
    payload;
    size_bytes = (nruns * run_header_bytes) + modified_bytes;
    modified_bytes;
  }

(* The page scan compares one 32-bit word at a time, avoiding
   [Int32.equal]: comparing boxed [int32]/[int64] values goes through a C
   call, which dominated the scan, while [Int32.to_int] is a compiler
   primitive, so this compiles to an unboxed register compare.  Only
   *equality* of same-offset words is ever tested, so native-endian loads
   are fine on any architecture, and the indices are bounded by the page
   size by construction, so the unchecked primitive is safe. *)

external get32u : Bytes.t -> int -> int32 = "%caml_bytes_get32u"

let word_equal a b w =
  Int32.to_int (get32u a (w * word)) = Int32.to_int (get32u b (w * word))

(* First differing word index >= [w0], or [n] if none. *)
let next_diff a b w0 n =
  let w = ref w0 in
  while !w < n && word_equal a b !w do
    incr w
  done;
  !w

(* First equal word index >= [w0] (the end of a run), or [n] if none. *)
let run_end a b w0 n =
  let w = ref w0 in
  while !w < n && not (word_equal a b !w) do
    incr w
  done;
  !w

(* Reusable per-caller working space for [create]: the scan writes run
   boundaries and payload here in a single pass, then copies out
   exact-sized arrays.  A page of [w] modified words has at most
   [(w+1)/2 <= 512] runs.  NOT thread-safe — callers running in separate
   domains (the parallel bench pool) must each use their own scratch;
   the DSM runtime keeps one per cluster. *)
type scratch = {
  s_offs : int array;
  s_lens : int array;
  s_payload : Bytes.t;
}

let make_scratch () =
  {
    s_offs = Array.make 512 0;
    s_lens = Array.make 512 0;
    s_payload = Bytes.create Page.size;
  }

let create ?scratch ~twin ~current () =
  let s = match scratch with Some s -> s | None -> make_scratch () in
  let a = Page.raw twin and b = Page.raw current in
  let n = Page.size / word in
  let nruns = ref 0 and pos = ref 0 in
  let w = ref (next_diff a b 0 n) in
  while !w < n do
    let stop = run_end a b !w n in
    let off = !w * word and len = (stop - !w) * word in
    s.s_offs.(!nruns) <- off;
    s.s_lens.(!nruns) <- len;
    Bytes.blit b off s.s_payload !pos len;
    pos := !pos + len;
    incr nruns;
    w := next_diff a b stop n
  done;
  if !nruns = 0 then empty
  else
    of_runs ~nruns:!nruns ~modified_words:(!pos / word)
      (Array.sub s.s_offs 0 !nruns)
      (Array.sub s.s_lens 0 !nruns)
      (Bytes.sub s.s_payload 0 !pos)

let apply t page =
  let raw = Page.raw page in
  let pos = ref 0 in
  for i = 0 to Array.length t.offs - 1 do
    let len = t.lens.(i) in
    Bytes.blit t.payload !pos raw t.offs.(i) len;
    pos := !pos + len
  done

let size_bytes t = t.size_bytes

let is_empty t = Array.length t.offs = 0

let run_count t = Array.length t.offs

let modified_bytes t = t.modified_bytes

let ranges t =
  Array.to_list (Array.mapi (fun i off -> (off, t.lens.(i))) t.offs)

let pp ppf t =
  Format.fprintf ppf "diff[%d runs, %d bytes]" (run_count t) (modified_bytes t)

let of_ranges ranges page =
  (* Build a diff directly from logged write ranges (software write
     detection): coalesce and word-align the ranges, then capture the
     current contents.  No twin or page scan is needed. *)
  match ranges with
  | [] -> empty
  | _ ->
    let aligned =
      List.map
        (fun (off, len) ->
          let start = off / word * word in
          let stop = (off + len + word - 1) / word * word in
          (start, min Page.size stop))
        ranges
    in
    let sorted =
      List.sort
        (fun ((s1 : int), (e1 : int)) (s2, e2) ->
          if s1 <> s2 then Int.compare s1 s2 else Int.compare e1 e2)
        aligned
    in
    (* Single linear merge pass over the sorted ranges: a range starting
       at or before the previous stop extends it (adjacent ranges
       coalesce too). *)
    let max_runs = List.length sorted in
    let starts = Array.make max_runs 0 and stops = Array.make max_runs 0 in
    let count = ref 0 in
    List.iter
      (fun (start, stop) ->
        if !count > 0 && start <= stops.(!count - 1) then begin
          if stop > stops.(!count - 1) then stops.(!count - 1) <- stop
        end
        else begin
          starts.(!count) <- start;
          stops.(!count) <- stop;
          incr count
        end)
      sorted;
    let raw = Page.raw page in
    let nruns = !count in
    let offs = Array.sub starts 0 nruns in
    let lens = Array.init nruns (fun i -> stops.(i) - starts.(i)) in
    let modified_bytes = Array.fold_left ( + ) 0 lens in
    let payload = Bytes.create modified_bytes in
    let pos = ref 0 in
    for i = 0 to nruns - 1 do
      Bytes.blit raw offs.(i) payload !pos lens.(i);
      pos := !pos + lens.(i)
    done;
    of_runs ~nruns ~modified_words:(modified_bytes / word) offs lens payload
