(** Vector timestamps for lazy release consistency.

    Component [i] of a node's clock is the sequence number of the most
    recent interval of processor [i] whose modifications the node has seen.
    The happened-before-1 partial order of the paper is exactly the
    componentwise order on these vectors. *)

type t

val zero : nprocs:int -> t

val copy : t -> t

val nprocs : t -> int

val get : t -> int -> int

val set : t -> int -> int -> unit

(** Increment component [proc] (a new interval of that processor). *)
val tick : t -> proc:int -> unit

(** Componentwise maximum, into the first argument. *)
val merge_into : t -> t -> unit

(** Overwrite [dst] with [src]'s components (no allocation; the clocks
    must have the same width). *)
val blit_into : src:t -> dst:t -> unit

(** Componentwise minimum, into the first argument.  The minimum over a
    set of clocks covers interval [(p, s)] iff every clock in the set
    does — it is exactly the knowledge shared by a whole barrier subtree,
    which is what the combining tree sends upward. *)
val min_into : t -> t -> unit

(** Record [base] as the clock's delta base and clear its
    dirty-component set: from here on, {!delta_size_bytes} against
    exactly [base] (same clock, unchanged) counts only components
    touched since this call.  PRECONDITION: the clock's components must
    equal [base]'s at the time of the call (true at every call site —
    the base is a just-taken snapshot of the clock).  Copies inherit the
    base, so interval snapshots taken from a rebased clock keep the fast
    path against the origin's last-barrier knowledge.

    [epoch >= 0] additionally stamps [base] as the epoch-[epoch]
    snapshot.  PRECONDITION: all clocks stamped with the same epoch
    number (across all nodes of the cluster) have identical components —
    true for barrier-completion snapshots, which all equal the global
    supremum of the epoch.  The stamp extends the delta/merge/leq fast
    paths across nodes: a clock based on THIS node's epoch-[e] snapshot
    is delta-comparable against ANOTHER node's epoch-[e] snapshot. *)
val rebase : ?epoch:int -> t -> base:t -> unit

(** [leq a b] — every component of [a] is at or below [b]:
    "[a] happened before or is [b]". *)
val leq : t -> t -> bool

(** Neither [leq a b] nor [leq b a]: concurrent intervals. *)
val concurrent : t -> t -> bool

(** Total order extending happened-before-1, for applying diffs "in
    timestamp order": componentwise-dominated first, concurrent vectors
    tie-broken by (sum, lexicographic). *)
val order : t -> t -> int

(** Cached component sum (maintained incrementally by every mutator). *)
val sum : t -> int

(** Wire size in bytes (4 per component). *)
val size_bytes : t -> int

(** Wire size under delta encoding against [since], a clock the receiver
    is known to share: 8-byte header + 8 bytes per differing component.
    Used by the [sparse_vc] cost model with the sender's last-barrier
    clock as the base. *)
val delta_size_bytes : since:t -> t -> int

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
