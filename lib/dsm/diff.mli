(** Run-length-encoded page diffs, as in TreadMarks.

    A diff records the byte ranges on which a page differs from its twin,
    together with the new contents of those ranges.  Applying a diff
    overwrites exactly those ranges. *)

type t

(** Reusable working space for {!create}: the single-pass scan stages run
    boundaries and payload here before copying out exact-sized arrays.
    NOT thread-safe — each domain (e.g. each parallel-bench worker) must
    use its own; the DSM runtime keeps one per cluster. *)
type scratch

val make_scratch : unit -> scratch

(** [create ~twin ~current ()] encodes the modifications that turned
    [twin] into [current].  Passing [?scratch] avoids allocating working
    space per call (the hot path: one diff per dirty page per
    interval). *)
val create :
  ?scratch:scratch -> twin:Adsm_mem.Page.t -> current:Adsm_mem.Page.t ->
  unit -> t

(** [of_ranges ranges page] builds a diff from logged [(offset, length)]
    write ranges and the page's current contents — software write
    detection, the twin-free alternative the paper cites (write ranges /
    Midway).  Ranges are coalesced and word-aligned. *)
val of_ranges : (int * int) list -> Adsm_mem.Page.t -> t

(** Overwrite the diff's ranges in the target page. *)
val apply : t -> Adsm_mem.Page.t -> unit

(** Encoded wire/storage size: 4 bytes per run header plus the run data. *)
val size_bytes : t -> int

val is_empty : t -> bool

(** Number of modified runs. *)
val run_count : t -> int

(** Total modified bytes (sum of run lengths). *)
val modified_bytes : t -> int

(** Runs as [(offset, length)] pairs, in increasing offset order. *)
val ranges : t -> (int * int) list

val pp : Format.formatter -> t -> unit
