module Page = Adsm_mem.Page
module Perm = Adsm_mem.Perm
module Layout = Adsm_mem.Layout
module Proc = Adsm_sim.Proc
module Rng = Adsm_sim.Rng
module Engine = Adsm_sim.Engine

type entry = {
  page : int;
  mutable data : Page.t option;
  mutable has_base : bool;
  mutable perm : Perm.t;
  mutable twin : Page.t option;
  mutable version : int;
  mutable content_version : int;
  mutable committed_version : int;
  mutable owner : int;
  mutable is_owner : bool;
  mutable owned_at : int;
  mutable fs_active : bool;
  mutable wg_large : bool;
  mutable measured : bool;
  mutable drop_at_release : bool;
  mutable dirty : bool;
  mutable notices : Notice.t list;
  mutable reflected : int array;
      (* [[||]] is the all-zeros view: entries materialize the dense
         per-processor array only once a nonzero sequence is recorded
         (or a fetched copy installs one).  Most of a large cluster's
         entries are read-only touches that never leave the sentinel,
         so per-entry metadata stays O(active sharers), not O(nprocs). *)
  mutable nw_procs : int array;
      (* Sparse "last notice per writer" map, replacing the former dense
         [Vc.t option array]: parallel arrays of writer ids and their
         latest notice clocks, [nw_len] slots live.  Pages have few
         writers, so lookups scan a handful of slots instead of
         indexing (and allocating) an O(nprocs) table per entry. *)
  mutable nw_vcs : Vc.t array;
  mutable nw_len : int;
  mutable fs_view : bool array;  (* [[||]] = all [true] *)
  mutable copyset : bool array;  (* [[||]] = all [false] *)
  mutable own_diff_seqs : int list;
  mutable sw_home_hint : int;
  mutable pending_own : (int * int) list;
  mutable migratory_score : int;
  mutable read_fault_seq : int;
  mutable pending_diff : (int * Vc.t) option;
  mutable log_writes : bool;
  mutable logged_ranges : (int * int) list;
  mutable logged_count : int;
}

type lock_state = {
  mutable have_token : bool;
  mutable held : bool;
  mutable next : (int * Vc.t) option;
  mutable home_tail : int;
}

type tlb = {
  t_page : int;
  t_raw : Bytes.t;
      (* the frame's raw buffer: the accessor loops read/write it with
         direct primitives, avoiding a non-inlinable cross-module call
         (and a boxed float) per word *)
  t_entry : entry;
  t_write : bool;
      (* the slot may serve writes directly: Read_write perm AND no
         software write logging (logging writes must reach the entry) *)
}

(* Per-node combining state for the tree barrier (Config.Tree).  A node
   folds its own arrival and each direct child's into [tb_vcmin] (the
   componentwise MINIMUM — the knowledge every member of the subtree
   shares) and [tb_intervals], then forwards one combined arrival to its
   parent.  The fields are reset when the node fans its release down. *)
type tree_barrier = {
  mutable tb_epoch : int;
  mutable tb_arrived : int;  (* direct children whose subtrees arrived *)
  mutable tb_self_arrived : bool;
  mutable tb_vc_valid : bool;  (* [tb_vcmin] holds at least one arrival *)
  tb_vcmin : Vc.t;  (* preallocated: no per-barrier O(nprocs) allocation *)
  mutable tb_intervals : Interval.t list;
  mutable tb_gc_wanted : bool;
  mutable tb_child_vcs : (int * Vc.t) list;
      (* each direct child's subtree-min clock, for computing its release *)
  mutable tb_gc_done : int;  (* direct children whose subtrees validated *)
  mutable tb_self_gc_done : bool;
}

(* Barrier-leave checkpoint for crash recovery (see FAULTS.md): only
   the rollback clock.  Page contents are re-fetchable from copy
   holders, own intervals/diffs survive in the write-behind log, and
   notice lists are rebuilt from the peers' retained interval logs
   during the recovery round — a checkpointed pending-notice snapshot
   would be valid only relative to the page copies the crash wipes. *)
type ckpt = { ck_vc : Vc.t }

type node = {
  id : int;
  nprocs : int;
  vc : Vc.t;
  pages : entry option array;
      (* Entries materialize on first touch ([entry_of]): a fresh entry
         carries several O(nprocs) arrays, so eager allocation would cost
         O(pages * nprocs) words per node — O(pages * nprocs^2) for the
         cluster, prohibitive at 1024 nodes.  An untouched page has no
         notices, dirty flag or diffs, so every whole-array scan
         (rule 3, GC validation/purge, post-run checks) is a no-op on it:
         laziness is observationally identical to the old eager array. *)
  intervals : Interval.Log.t array;
  nw_idx : (int, int) Hashtbl.t;
      (* (page * nprocs + proc) -> slot in that entry's [nw_procs] /
         [nw_vcs] arrays: O(1) last-notice lookup without a dense
         per-entry table.  Per-node, so one table serves all entries. *)
  mutable dirty_pages : int list;
  diffs : (int * int * int, Vc.t * Diff.t) Hashtbl.t;
  locks : (int, lock_state) Hashtbl.t;
  lock_waits : (int, Interval.t list Proc.Ivar.t) Hashtbl.t;
  own_waits : (int, Msg.t Proc.Ivar.t) Hashtbl.t;
  mutable barrier_wait : Msg.t Proc.Ivar.t option;
  mutable gc_wait : unit Proc.Ivar.t option;
  mutable last_barrier_vc : Vc.t;
  mutable barrier_epoch : int;
  mutable hlrc_waiting : (int * (int * int) list * Msg.t Adsm_net.Rpc.respond) list;
  mutable tlb : tlb option;
  tb : tree_barrier option;  (* Some iff [cfg.barrier] is [Tree] *)
  rng : Rng.t;
  mutable diff_scratch : Diff.scratch option;
      (* lazily allocated per node: diff encoding happens inside the
         owning node's events, and under the parallel engine nodes on
         different domains encode concurrently, so the scratch buffer
         cannot be shared cluster-wide *)
  (* Crash-recovery state, all inert when [cfg.faults] has no crashes:
     [crash_pending] is set by the crash event on this node's lane and
     checked (one bool load) at every DSM operation boundary. *)
  mutable ckpt : ckpt option;
  mutable crash_pending : bool;
  mutable crash_restart_at : int;
  mutable restart_wait : unit Proc.Ivar.t option;
  mutable crash_count : int;
}

type barrier_manager = {
  mutable epoch : int;
  mutable arrived : int;
  mutable arrivals : (int * Vc.t * Interval.t list * bool) list;
      (** buffered (src, vc, intervals, gc_wanted); processed only once all
          nodes have arrived, so notices never land on a dirty page *)
  mutable gc_requested : bool;
  mutable gc_done_count : int;
}

type cluster = {
  cfg : Config.t;
  engine : Engine.t;
  rpc : Msg.t Adsm_net.Rpc.t;
  layout : Layout.t;
  nodes : node array;
  stats : Stats.t;
  barrier_mgr : barrier_manager;
  mutable next_lock : int;
  mutable running : int;
  tracer : Adsm_trace.Tracer.t;
  recorder : Adsm_check.Recorder.t;
}

let make_entry ~nprocs:_ ~page ~home =
  {
    page;
    (* Every node starts with a zero-filled valid read-only copy, as if the
       shared segment had just been mapped.  The frame itself is allocated
       lazily on first touch. *)
    data = None;
    has_base = true;
    perm = Perm.Read_only;
    twin = None;
    version = 0;
    content_version = 0;
    committed_version = 0;
    owner = home;
    is_owner = false;
    owned_at = 0;
    fs_active = false;
    wg_large = false;
    measured = false;
    drop_at_release = false;
    dirty = false;
    notices = [];
    reflected = [||];
    nw_procs = [||];
    nw_vcs = [||];
    nw_len = 0;
    fs_view = [||];
    copyset = [||];
    own_diff_seqs = [];
    sw_home_hint = home;
    pending_own = [];
    migratory_score = 0;
    read_fault_seq = -1;
    pending_diff = None;
    log_writes = false;
    logged_ranges = [];
    logged_count = 0;
  }

(* --- sparse entry-metadata accessors ------------------------------- *)
(* All of these preserve the dense semantics exactly; the sentinel
   representations above are materialized only when a value deviates
   from the initial one. *)

let reflected_get (e : entry) q =
  if Array.length e.reflected = 0 then 0 else e.reflected.(q)

(* Dense view, materializing: for whole-array fills and wire copies
   (message [reflected] fields stay dense — their wire size is part of
   the byte accounting and must not depend on the representation). *)
let reflected_rw (e : entry) ~nprocs =
  if Array.length e.reflected = 0 then e.reflected <- Array.make nprocs 0;
  e.reflected

let reflected_set (e : entry) ~nprocs q v =
  if v <> 0 || Array.length e.reflected > 0 then (reflected_rw e ~nprocs).(q) <- v

let reflected_copy (e : entry) ~nprocs =
  if Array.length e.reflected = 0 then Array.make nprocs 0
  else Array.copy e.reflected

let reflected_reset (e : entry) = e.reflected <- [||]

let nw_key node (e : entry) q = (e.page * node.nprocs) + q

let last_notice node (e : entry) q =
  match Hashtbl.find_opt node.nw_idx (nw_key node e q) with
  | Some i -> Some e.nw_vcs.(i)
  | None -> None

let set_last_notice node (e : entry) q vc =
  match Hashtbl.find_opt node.nw_idx (nw_key node e q) with
  | Some i -> e.nw_vcs.(i) <- vc
  | None ->
    if e.nw_len = Array.length e.nw_procs then begin
      let cap = max 4 (2 * e.nw_len) in
      let procs = Array.make cap 0 and vcs = Array.make cap vc in
      Array.blit e.nw_procs 0 procs 0 e.nw_len;
      Array.blit e.nw_vcs 0 vcs 0 e.nw_len;
      e.nw_procs <- procs;
      e.nw_vcs <- vcs
    end;
    e.nw_procs.(e.nw_len) <- q;
    e.nw_vcs.(e.nw_len) <- vc;
    Hashtbl.replace node.nw_idx (nw_key node e q) e.nw_len;
    e.nw_len <- e.nw_len + 1

let clear_last_notices node (e : entry) =
  for i = 0 to e.nw_len - 1 do
    Hashtbl.remove node.nw_idx (nw_key node e e.nw_procs.(i))
  done;
  e.nw_procs <- [||];
  e.nw_vcs <- [||];
  e.nw_len <- 0

let fs_view_get (e : entry) q =
  Array.length e.fs_view = 0 || e.fs_view.(q)

let fs_view_set (e : entry) ~nprocs q v =
  if (not v) || Array.length e.fs_view > 0 then begin
    if Array.length e.fs_view = 0 then e.fs_view <- Array.make nprocs true;
    e.fs_view.(q) <- v
  end

let copyset_add (e : entry) ~nprocs q =
  if Array.length e.copyset = 0 then e.copyset <- Array.make nprocs false;
  e.copyset.(q) <- true

(* Iterate the members of the (approximate) copyset. *)
let copyset_iter (e : entry) f =
  Array.iteri (fun q in_set -> if in_set then f q) e.copyset

let make_node ~cfg ~id ~total_pages =
  let nprocs = cfg.Config.nprocs in
  let vc = Vc.zero ~nprocs in
  let last_barrier_vc = Vc.zero ~nprocs in
  (* Both zero: the precondition of [Vc.rebase] (equal contents) holds,
     and pre-first-barrier sparse-VC accounting gets the fast path.
     Epoch 0 = the all-zeros snapshot every node starts from (barrier
     completions stamp from 1 up). *)
  Vc.rebase vc ~base:last_barrier_vc ~epoch:0;
  {
    id;
    nprocs;
    vc;
    pages = Array.make total_pages None;
    intervals = Array.init nprocs (fun _ -> Interval.Log.create ());
    nw_idx = Hashtbl.create 64;
    dirty_pages = [];
    diffs = Hashtbl.create 256;
    locks = Hashtbl.create 16;
    lock_waits = Hashtbl.create 16;
    own_waits = Hashtbl.create 16;
    barrier_wait = None;
    gc_wait = None;
    last_barrier_vc;
    barrier_epoch = 0;
    hlrc_waiting = [];
    tlb = None;
    tb =
      (match cfg.Config.barrier with
      | Config.Central -> None
      | Config.Tree _ ->
        Some
          {
            tb_epoch = 0;
            tb_arrived = 0;
            tb_self_arrived = false;
            tb_vc_valid = false;
            tb_vcmin = Vc.zero ~nprocs;
            tb_intervals = [];
            tb_gc_wanted = false;
            tb_child_vcs = [];
            tb_gc_done = 0;
            tb_self_gc_done = false;
          });
    rng = Rng.create (Int64.add cfg.Config.seed (Int64.of_int (id * 7919)));
    diff_scratch = None;
    ckpt = None;
    crash_pending = false;
    crash_restart_at = 0;
    restart_wait = None;
    crash_count = 0;
  }

let scratch node =
  match node.diff_scratch with
  | Some s -> s
  | None ->
    let s = Diff.make_scratch () in
    node.diff_scratch <- Some s;
    s

(* Get-or-create the node's entry for [page].  A lazily-created entry is
   exactly the entry the old eager initialization built: zero-page base,
   read-only, home = page mod nprocs. *)
let entry_of node page =
  match node.pages.(page) with
  | Some e -> e
  | None ->
    let home = page mod node.nprocs in
    let e = make_entry ~nprocs:node.nprocs ~page ~home in
    if home = node.id then e.is_owner <- true;
    node.pages.(page) <- Some e;
    e

(* Iterate the materialized entries (the only ones any state can live on). *)
let iter_entries node f =
  Array.iter (function None -> () | Some e -> f e) node.pages

(* TLB contract (see DESIGN.md, "Access fast path"): any code that lowers
   an entry's effective access rights on a node — protection downgrade,
   frame drop, or turning on write logging — must reset that node's TLB
   slot, because the slot bypasses the entry's permission test entirely.
   Upgrades need no reset: a stale slot is only ever conservative. *)
let tlb_reset node = node.tlb <- None

let frame entry =
  match entry.data with
  | Some p -> p
  | None ->
    let p = Page.create () in
    entry.data <- Some p;
    p

let committed_copy entry =
  match entry.twin with
  | Some t when entry.dirty -> Some t
  | Some _ | None -> (
    (* A twin held for a lazily-pending diff is the PREVIOUS interval's
       state; once the interval is closed the committed content is the
       frame itself. *)
    match entry.data with
    | Some _ as d -> d
    | None ->
      (* An entry with no frame yet still holds the initial zero page as a
         valid (possibly stale) base, unless it was dropped at a garbage
         collection. *)
      if entry.has_base then Some (frame entry) else None)

let lock_state node ~home lock =
  match Hashtbl.find_opt node.locks lock with
  | Some s -> s
  | None ->
    (* The token initially rests, free, at the lock's home node. *)
    let s =
      { have_token = home = node.id; held = false; next = None; home_tail = -1 }
    in
    Hashtbl.replace node.locks lock s;
    s

let home_of_page cluster page = page mod cluster.cfg.Config.nprocs

(* Lock homes: [Modulo] is the historical placement (lock l lives at node
   l mod n).  [Sharded k] spreads the homes over k manager nodes chosen
   evenly across the id space — stride n/k keeps them on distinct leaf
   switches of a tree fabric instead of crowding the low-numbered nodes. *)
let home_of_lock cluster lock =
  let n = cluster.cfg.Config.nprocs in
  match cluster.cfg.Config.lock_homes with
  | Config.Modulo -> lock mod n
  | Config.Sharded k ->
    let k = max 1 (min k n) in
    lock mod k * (n / k)

(* Emission guard: callers write
     [if tracing cl then emit cl ~node (Event.X { ... })]
   so the event payload is never even constructed when tracing is off. *)
let tracing cluster = Adsm_trace.Tracer.enabled cluster.tracer

(* Trace sinks are shared across every node, so under the parallel engine
   an in-window emission is journaled and replayed by the inter-window
   walk — the sink sees the exact global-order stream a sequential run
   writes.  The timestamp is captured here, at the original call. *)
let emit cluster ~node event =
  let engine = cluster.engine in
  let time = Engine.now engine in
  if Engine.deferring engine then
    Engine.defer engine (fun () ->
        Adsm_trace.Tracer.emit cluster.tracer ~time ~node event)
  else Adsm_trace.Tracer.emit cluster.tracer ~time ~node event

(* Same guard pattern for the consistency oracle's observation stream:
     [if checking cl then observe cl ~node (Obs.X { ... })]
   keeps the disabled path allocation-free and byte-identical. *)
let checking cluster = Adsm_check.Recorder.enabled cluster.recorder

let observe cluster ~node obs =
  let engine = cluster.engine in
  let time = Engine.now engine in
  if Engine.deferring engine then
    Engine.defer engine (fun () ->
        Adsm_check.Recorder.record cluster.recorder ~time ~node obs)
  else Adsm_check.Recorder.record cluster.recorder ~time ~node obs
