(** Write notices.

    A write notice announces that a page was modified during some interval.
    The multiple-writer protocol sends plain (non-owner) notices; the
    single-writer and adaptive protocols send owner write notices that also
    carry the page's version number, which lets receivers discard dominated
    notices on the fly. *)

type t = {
  page : int;  (** global page number *)
  proc : int;  (** writing processor *)
  seq : int;  (** sequence number of the writing interval *)
  vc : Vc.t;  (** timestamp of the writing interval *)
  version : int option;  (** [Some v]: owner write notice at version [v] *)
}

val is_owner : t -> bool

(** [covers ~by n]: [n]'s modifications are reflected in the page copy
    described by owner notice [by] (i.e. [n.vc <= by.vc]).  Computed in
    O(1) through the transitive-clock invariant: [by.vc]'s [n.proc]
    component reaches [n.seq] iff [by]'s writer had merged [n]'s
    interval snapshot (or a later, dominating one). *)
val covers : by:t -> t -> bool

(** Neither write saw the other ([Vc.concurrent n.vc m.vc]), in O(1)
    through the same invariant. *)
val concurrent : t -> t -> bool

(** Same (proc, seq, page): the same modification record. *)
val same_write : t -> t -> bool

(** Wire size, excluding the interval timestamp (carried once per
    interval): 8 bytes, plus 4 for the version of an owner notice. *)
val size_bytes : t -> int

val pp : Format.formatter -> t -> unit
