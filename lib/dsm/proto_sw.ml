(* SW: the CVM-like single-writer protocol (paper Section 2.3): per-page
   version numbers, ownership transfers forwarded through the page's static
   home, and a minimum ownership quantum as the ping-pong mitigation. *)

module Page = Adsm_mem.Page
module Perm = Adsm_mem.Perm
module Engine = Adsm_sim.Engine
module Proc = Adsm_sim.Proc
open State

let name = "SW"

let read_fault cl node (e : entry) = Lrc_core.validate cl node e

let close_page cl node (e : entry) ~seq ~vc ~charge =
  Lrc_core.close_page_default cl node e ~seq ~vc ~charge

(* --- ownership machinery (home forwarding + quantum) --- *)

(* Transfer ownership of the page from this node to [requester], respecting
   the minimum ownership quantum, and re-forward any queued requests to the
   new owner. *)
let sw_grant cl node (e : entry) requester =
  if tracing cl then
    emit cl ~node:node.id
      (Adsm_trace.Event.Own_grant
         { page = e.page; requester; version = e.version });
  assert e.is_owner;
  assert (requester <> node.id);
  e.is_owner <- false;
  let fire () =
    e.owner <- requester;
    if cl.cfg.Config.nprocs > 1 && Perm.allows_write e.perm then begin
      e.perm <- Perm.Read_only;
      (* This downgrade can run as a SCHEDULED event (quantum delay), with
         the old owner's process between accesses — its TLB slot may hold
         this page writable.  Reset is mandatory here, not just at the
         handler/sync chokepoints. *)
      tlb_reset node
    end;
    (* Mutation seam (testing only): transfer a stale version so the new
       owner's version bump collides with peers' existing knowledge and
       its write notices are silently discarded as dominated. *)
    let version =
      if cl.cfg.Config.mutation = Some Config.Stale_ownership_grant then
        e.version - 1
      else e.version
    in
    Lrc_core.cast cl ~src:node.id ~dst:requester
      (Msg.Sw_own_transfer
         {
           page = e.page;
           data = Page.copy (frame e);
           version;
           committed = e.committed_version;
         });
    (* Anyone queued behind this transfer chases the new owner. *)
    let queued = e.pending_own in
    e.pending_own <- [];
    List.iter
      (fun (r, v) ->
        if r <> requester then
          Lrc_core.cast cl ~src:node.id ~dst:requester
            (Msg.Sw_own_forward { page = e.page; requester = r; version = v }))
      queued
  in
  let now = Engine.now cl.engine in
  let ready = e.owned_at + cl.cfg.Config.ownership_quantum_ns in
  if now >= ready then fire ()
  else Engine.schedule cl.engine ~delay:(ready - now) fire

let sw_handle_forward cl node ~requester ~version page =
  let e = entry_of node page in
  if e.is_owner then sw_grant cl node e requester
  else if Hashtbl.mem node.own_waits page || e.owner = node.id then
    (* Either we are waiting for this page's ownership ourselves, or our
       own outgoing grant is scheduled but has not fired yet ([e.owner]
       still names us until the transfer fires): queue the request.  It is
       served once we own the page, or re-forwarded to the new owner by
       the firing transfer. *)
    e.pending_own <- (requester, version) :: e.pending_own
  else
    (* Not the owner any more: chase the grant chain. *)
    Lrc_core.cast cl ~src:node.id ~dst:e.owner
      (Msg.Sw_own_forward { page; requester; version })

let sw_handle_home_req cl ~node:home_id ~src page =
  let home_node = cl.nodes.(home_id) in
  let e = entry_of home_node page in
  let hint = e.sw_home_hint in
  e.sw_home_hint <- src;
  if hint = home_id then
    (* The home itself is (or believes it is) on the ownership chain. *)
    sw_handle_forward cl home_node ~requester:src ~version:0 page
  else
    Lrc_core.cast cl ~src:home_id ~dst:hint
      (Msg.Sw_own_forward { page; requester = src; version = 0 })

(* Serve the first request queued on us while our own transfer was in
   flight; the rest get re-forwarded by [sw_grant]. *)
let sw_service_pending cl node (e : entry) =
  match e.pending_own with
  | [] -> ()
  | (r, _) :: rest ->
    e.pending_own <- rest;
    sw_grant cl node e r

(* Write fault: ownership transfer through the home. *)
let write_fault cl node (e : entry) =
  if e.is_owner then begin
    (* Local reacquisition: version bump, no messages. *)
    Lrc_core.acquire_ownership_locally cl node e;
    Lrc_core.mark_dirty node e
  end
  else begin
    Stats.ownership_request cl.stats;
    let ivar = Proc.Ivar.create () in
    Hashtbl.replace node.own_waits e.page ivar;
    let home = home_of_page cl e.page in
    if tracing cl then
      emit cl ~node:node.id
        (Adsm_trace.Event.Own_request
           { page = e.page; owner = e.owner; version = e.version });
    if home = node.id then
      (* We are the home: run the home logic locally (no message). *)
      sw_handle_home_req cl ~node:node.id ~src:node.id e.page
    else
      Lrc_core.cast cl ~src:node.id ~dst:home
        (Msg.Sw_own_req { page = e.page; version = e.version });
    (match Proc.Ivar.await ivar with
    | Msg.Sw_own_transfer { data; version; committed; _ } ->
      (* Atomic state transition FIRST: a forward chasing the chain must
         never observe us neither waiting nor owning.  The install cost is
         charged afterwards. *)
      Page.blit ~src:data ~dst:(frame e);
      e.has_base <- true;
      e.version <- max e.version (version + 1);
      e.content_version <- max e.content_version committed;
      e.committed_version <- max e.committed_version committed;
      e.is_owner <- true;
      e.owner <- node.id;
      e.owned_at <- Engine.now cl.engine;
      e.notices <- [];
      let r = reflected_rw e ~nprocs:node.nprocs in
      for q = 0 to Array.length r - 1 do
        r.(q) <- Vc.get node.vc q
      done;
      Proc.sleep cl.engine cl.cfg.Config.page_install_ns;
      Hashtbl.remove node.own_waits e.page;
      Lrc_core.mark_dirty node e;
      (* Serve ownership requests that were queued on us while the
         transfer was in flight (unless a forward arriving during the
         install already took the ownership away). *)
      if e.is_owner && e.pending_own <> [] then sw_service_pending cl node e
    | _ -> failwith "Proto: unexpected SW ownership reply")
  end

(* --- server side --- *)

let handle_page_req cl node ~src page respond =
  Lrc_core.serve_page cl node ~src page respond

let handle_diff_req cl node ~src ~page ~seqs ~sees_sw respond =
  Lrc_core.serve_diffs cl node ~src ~page ~seqs ~sees_sw respond

let handle_own_req _cl _node ~src:_ ~page ~version:_ ~want_data:_ _respond =
  failwith
    (Printf.sprintf
       "Proto_sw: unexpected adaptive ownership request for page %d \
        (SW transfers go through Sw_own_req)"
       page)

let handle_protocol_msg cl node ~src msg respond =
  match (msg, respond) with
  | Msg.Sw_own_req { page; _ }, None ->
    sw_handle_home_req cl ~node:node.id ~src page;
    true
  | Msg.Sw_own_forward { page; requester; version }, None ->
    sw_handle_forward cl node ~requester ~version page;
    true
  | Msg.Sw_own_transfer { page; _ }, None ->
    (match Hashtbl.find_opt node.own_waits page with
    | Some ivar ->
      Proc.Ivar.fill cl.engine ivar msg;
      true
    | None -> failwith "Proto: unexpected ownership transfer")
  | _ -> false

(* SW keeps no diff store; GC never triggers, so no copy survives as a
   validator (the owner's copy is authoritative anyway). *)
let gc_validator _cl _node (_e : entry) = false

let gc_retarget_owner_on_drop = true
