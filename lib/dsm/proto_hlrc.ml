(* HLRC (cited in the paper's related work): a home-based extension beyond
   its evaluation.  Diffs are flushed eagerly to each page's static home
   and discarded — no diff store and no garbage collection; faults fetch
   whole current pages from the home, naming the modifications the reply
   must already contain. *)

module Page = Adsm_mem.Page
module Perm = Adsm_mem.Perm
module Engine = Adsm_sim.Engine
module Proc = Adsm_sim.Proc
open State

let name = "HLRC"

(* Diff sink: flush to the page's home and discard locally. *)
let flush_to_home cl node (e : entry) ~seq ~vc diff =
  Lrc_core.cast cl ~src:node.id ~dst:(home_of_page cl e.page)
    (Msg.Hlrc_diff { page = e.page; seq; vc; diff });
  Stats.diffs_dropped cl.stats ~node:node.id ~bytes:(Diff.size_bytes diff)
    ~count:1 ~time:(Engine.now cl.engine)

(* Home page closed dirty: the modifications are already in place in the
   master copy; emit a plain notice and re-protect so the next interval's
   writes are detected. *)
let close_home cl node (e : entry) ~seq =
  reflected_set e ~nprocs:node.nprocs node.id seq;
  if cl.cfg.Config.nprocs > 1 then begin
    e.perm <- Perm.Read_only;
    tlb_reset node
  end;
  None

let close_page cl node (e : entry) ~seq ~vc ~charge =
  Lrc_core.close_page_default ~allow_lazy:false ~sink:flush_to_home
    ~close_clean:close_home cl node e ~seq ~vc ~charge

(* Validation: the home waits for in-flight diffs to land in its master
   copy; everyone else fetches the whole current page from the home. *)
let hlrc_validate cl node (e : entry) =
  if not (Perm.allows_read e.perm) then begin
    let home = home_of_page cl e.page in
    let pending = List.filter (Lrc_core.still_needed node e) e.notices in
    if home = node.id then begin
      (* Master copy: in-flight diffs are guaranteed to arrive (they were
         flushed at the releases that happened before our acquire); poll
         until they have all been applied. *)
      let covered () =
        List.for_all
          (fun (n : Notice.t) -> reflected_get e n.proc >= n.seq)
          pending
      in
      while not (covered ()) do
        Proc.sleep cl.engine 100_000
      done;
      e.notices <- [];
      e.perm <- Perm.Read_only
    end
    else begin
      (* Collapse the pending notices into the highest needed sequence per
         writer, and require our own committed writes back too. *)
      let need = Hashtbl.create 8 in
      List.iter
        (fun (n : Notice.t) ->
          let prev = Option.value ~default:0 (Hashtbl.find_opt need n.proc) in
          if n.seq > prev then Hashtbl.replace need n.proc n.seq)
        pending;
      if reflected_get e node.id > 0 then
        Hashtbl.replace need node.id (reflected_get e node.id);
      let need = Hashtbl.fold (fun q s acc -> (q, s) :: acc) need [] in
      (match
         Lrc_core.call cl ~src:node.id ~dst:home
           (Msg.Hlrc_fetch { page = e.page; need })
       with
      | Msg.Page_reply { data; version; committed; reflected; _ } ->
        Lrc_core.install_copy cl node e ~data ~version ~committed ~reflected
      | _ -> failwith "Proto: unexpected reply to Hlrc_fetch");
      e.notices <- [];
      e.perm <- Perm.Read_only
    end
  end

let read_fault cl node (e : entry) = hlrc_validate cl node e

let write_fault cl node (e : entry) =
  hlrc_validate cl node e;
  (* The home writes its master copy in place; everyone else twins. *)
  if home_of_page cl e.page <> node.id then Lrc_core.make_twin cl node e;
  Lrc_core.mark_dirty node e

(* --- home-side handlers (event context) --- *)

let hlrc_covered (e : entry) need =
  List.for_all (fun (q, seq) -> reflected_get e q >= seq) need

let hlrc_reply_now cl node (e : entry) respond =
  Lrc_core.respond_msg cl node respond
    (Msg.Page_reply
       {
         page = e.page;
         data = Page.copy (frame e);
         version = 0;
         committed = 0;
         reflected = reflected_copy e ~nprocs:node.nprocs;
       })

(* A diff arrived at this home: apply it to the master copy and release
   any fetches that were waiting for it. *)
let handle_hlrc_diff cl node ~src ~page ~seq diff =
  let e = entry_of node page in
  Diff.apply diff (frame e);
  if tracing cl then
    emit cl ~node:node.id
      (Adsm_trace.Event.Diff_apply { page; writer = src; seq });
  if seq > reflected_get e src then reflected_set e ~nprocs:node.nprocs src seq;
  let ready, still_waiting =
    List.partition
      (fun (p, need, _) -> p = page && hlrc_covered e need)
      node.hlrc_waiting
  in
  node.hlrc_waiting <- still_waiting;
  List.iter (fun (_, _, respond) -> hlrc_reply_now cl node e respond) ready

let handle_hlrc_fetch cl node ~page ~need respond =
  let e = entry_of node page in
  if hlrc_covered e need then hlrc_reply_now cl node e respond
  else node.hlrc_waiting <- (page, need, respond) :: node.hlrc_waiting

let handle_page_req cl node ~src page respond =
  Lrc_core.serve_page cl node ~src page respond

let handle_diff_req cl node ~src ~page ~seqs ~sees_sw respond =
  Lrc_core.serve_diffs cl node ~src ~page ~seqs ~sees_sw respond

let handle_own_req _cl _node ~src:_ ~page ~version:_ ~want_data:_ _respond =
  failwith
    (Printf.sprintf "Proto_hlrc: unexpected ownership request for page %d"
       page)

let handle_protocol_msg cl node ~src msg respond =
  match (msg, respond) with
  | Msg.Hlrc_diff { page; seq; diff; _ }, None ->
    handle_hlrc_diff cl node ~src ~page ~seq diff;
    true
  | Msg.Hlrc_fetch { page; need }, Some respond ->
    handle_hlrc_fetch cl node ~page ~need respond;
    true
  | _ -> false

(* No diff store: GC never triggers. *)
let gc_validator _cl _node (_e : entry) = false

let gc_retarget_owner_on_drop = true
