(** The four DSM protocols (MW, SW, WFS, WFS+WG) over the LRC runtime.

    Entry points come in two flavors:
    - application-context operations ([read_fault], [write_fault], [lock],
      [unlock], [barrier]) run inside a simulated process and may block and
      charge simulated time;
    - [handle_message] runs in event context (a network handler) and never
      blocks; costs it incurs are charged as added latency on its replies. *)

(** Service a read page fault; on return the page is readable.
    Must run in process context. *)
val read_fault : State.cluster -> State.node -> State.entry -> unit

(** Service a write page fault; on return the page is writable and
    registered dirty. *)
val write_fault : State.cluster -> State.node -> State.entry -> unit

(** Acquire/release a distributed lock. *)
val lock : State.cluster -> State.node -> int -> unit

val unlock : State.cluster -> State.node -> int -> unit

(** Global barrier (manager at node 0); runs garbage collection when any
    node's diff store exceeded the threshold. *)
val barrier : State.cluster -> State.node -> unit

(** Close the current interval if the node has dirty pages (creates diffs /
    owner write notices).  Exposed for tests and end-of-run flushing. *)
val end_interval_local : State.cluster -> State.node -> unit

(** Crash-recovery operation-boundary hook (see {!Sync.pause_if_crashed}
    and FAULTS.md); called by every DSM operation entry point and by
    [Dsm.compute].  Process context. *)
val pause_if_crashed : State.cluster -> State.node -> unit

(** Dispatch an incoming protocol message at [node]. *)
val handle_message :
  State.cluster ->
  node:int ->
  src:int ->
  Msg.t ->
  Msg.t Adsm_net.Rpc.respond option ->
  unit

(** True when the node, per its pending notices and mode flags, believes the
    page is free of write-write false sharing (exposed for tests). *)
val sees_page_as_sw : State.entry -> bool
