(** Public DSM API.

    Usage:
    {[
      let cfg = Config.make ~protocol:Config.Wfs ~nprocs:8 () in
      let t = Dsm.create cfg in
      let data = Dsm.alloc_f64 t ~name:"grid" ~len:100_000 in
      let report =
        Dsm.run t (fun ctx ->
            let me = Dsm.me ctx in
            Dsm.f64_set ctx data me 1.0;
            Dsm.barrier ctx;
            ...)
      in
      Fmt.pr "took %d ns, %d messages@." report.time_ns report.messages
    ]}

    The callback runs once per simulated processor, as a cooperative
    process inside the simulation.  All shared-memory accesses go through
    the typed accessors, which enforce the simulated page protection and
    fault into the configured protocol (MW, SW, WFS or WFS+WG). *)

type t
(** A cluster under construction (allocate regions, then [run]). *)

type ctx
(** Per-processor execution context, passed to the application function. *)

(** Typed shared arrays. *)
type f64s

type i32s

type report = {
  time_ns : int;  (** simulated execution time *)
  messages : int;
  payload_bytes : int;  (** paper's "data" metric: payload excluding headers *)
  wire_bytes : int;
  by_kind : (string * (int * int)) list;  (** kind -> (messages, bytes) *)
  stats : Stats.t;
  shared_pages : int;
  events : int;  (** simulation events executed *)
}

val create : Config.t -> t

val config : t -> Config.t

(** Allocate a page-aligned shared array of [len] float64s. *)
val alloc_f64 : t -> name:string -> len:int -> f64s

(** Allocate a page-aligned shared array of [len] int32s. *)
val alloc_i32 : t -> name:string -> len:int -> i32s

val f64_len : f64s -> int

val i32_len : i32s -> int

(** A fresh lock identifier. *)
val fresh_lock : t -> int

(** Run the application on every simulated processor and drain the
    simulation.

    [tracer] (default: {!Adsm_trace.Tracer.disabled}) receives the
    structured event stream — see [TRACING.md].  Tracing is purely
    observational: a traced run executes the same events and moves the
    same bytes as an untraced one.  The caller keeps ownership of the
    tracer and must {!Adsm_trace.Tracer.close} it after [run] returns.

    [recorder] (default: {!Adsm_check.Recorder.disabled}) receives the
    consistency oracle's observation stream — every shared read/write
    and every lock/barrier synchronization operation, in completion
    order — see [TESTING.md].  Like tracing it is purely observational:
    a checked run executes the same events and moves the same bytes as
    an unchecked one.  Validate afterwards with
    {!Adsm_check.Oracle.check}.

    @raise Failure if the run deadlocks (processes blocked when the
    event queue empties). *)
val run :
  ?tracer:Adsm_trace.Tracer.t ->
  ?recorder:Adsm_check.Recorder.t ->
  t ->
  (ctx -> unit) ->
  report

(* --- operations available inside the application function --- *)

val me : ctx -> int

val nprocs : ctx -> int

(** Charge [ns] nanoseconds of local computation to the simulated clock. *)
val compute : ctx -> int -> unit

(** Current simulated time. *)
val now : ctx -> int

(** Deterministic per-processor random stream. *)
val rng : ctx -> Adsm_sim.Rng.t

val lock : ctx -> int -> unit

val unlock : ctx -> int -> unit

val barrier : ctx -> unit

(** Shared-array accessors (bounds-checked; fault into the protocol). *)
val f64_get : ctx -> f64s -> int -> float

val f64_set : ctx -> f64s -> int -> float -> unit

val i32_get : ctx -> i32s -> int -> int32

val i32_set : ctx -> i32s -> int -> int32 -> unit

(** [i32_add ctx a i v] adds [v] to element [i] (read-modify-write).
    Single locate: observable semantics are exactly [i32_get] followed by
    [i32_set] — the read (and any read fault) happens first, the addend is
    applied to the value read before the write fault, and the write never
    re-reads. *)
val i32_add : ctx -> i32s -> int -> int32 -> unit

(** {2 Bulk page-run operations}

    Sugar over the word accessors with identical observable semantics
    (same faults in the same order, same bytes, same diffs, same
    observation stream under the consistency recorder) — see PROTOCOL.md.
    The win is purely host-side: one bounds+permission check per
    within-page run (up to 512 f64 / 1024 i32 words) instead of per word,
    and under software write detection one coalesced logged range per run
    instead of one per word. *)

(** [f64_get_run ctx a i dst pos len] reads elements [\[i, i+len)] into
    [dst.(pos) .. dst.(pos+len-1)].  Equivalent to [len] calls of
    {!f64_get} at ascending indices. *)
val f64_get_run : ctx -> f64s -> int -> float array -> int -> int -> unit

(** [f64_set_run ctx a i src pos len] writes [src.(pos) ..
    src.(pos+len-1)] to elements [\[i, i+len)].  Equivalent to [len] calls
    of {!f64_set} at ascending indices. *)
val f64_set_run : ctx -> f64s -> int -> float array -> int -> int -> unit

(** [f64_fold_run ctx a i len ~init ~f] folds [f] over elements
    [\[i, i+len)] in ascending order without materializing them. *)
val f64_fold_run :
  ctx -> f64s -> int -> int -> init:'a -> f:('a -> float -> 'a) -> 'a

val i32_get_run : ctx -> i32s -> int -> int32 array -> int -> int -> unit

val i32_set_run : ctx -> i32s -> int -> int32 array -> int -> int -> unit

val i32_fold_run :
  ctx -> i32s -> int -> int -> init:'a -> f:('a -> int32 -> 'a) -> 'a

(** Pages spanned by elements [\[lo, hi)] of the array (for diagnostics). *)
val f64_pages : t -> f64s -> lo:int -> hi:int -> int list
