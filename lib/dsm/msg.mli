(** Protocol message vocabulary.

    Locks, barriers and the SW protocol's forwarded ownership transfers use
    one-way messages with explicit continuations (the reply can come from a
    third node); page, diff and adaptive ownership traffic uses
    request/reply.  Each constructor documents its sender and receiver.
    [size_bytes] gives the payload size charged to the network. *)

type own_result =
  | Granted  (** requester becomes owner *)
  | Refused_fs  (** write-write false sharing detected (version mismatch or
                    target believes the page is falsely shared) *)
  | Refused_measure  (** WFS+WG only: first sharing event on the page; the
                         requester must use MW so the write granularity can
                         be measured *)

type t =
  (* Locks (one-way). *)
  | Lock_acquire of { lock : int; vc : Vc.t }  (** requester -> home *)
  | Lock_forward of { lock : int; requester : int; vc : Vc.t }
      (** home -> last queued requester *)
  | Lock_grant of { lock : int; intervals : Interval.t list }
      (** previous holder -> requester *)
  (* Barriers (one-way, manager = node 0). *)
  | Barrier_arrive of {
      epoch : int;
      vc : Vc.t;
      intervals : Interval.t list;
      gc_wanted : bool;
    }
  | Barrier_release of {
      epoch : int;
      intervals : Interval.t list;
      gc_round : bool;
    }
  | Gc_done of { epoch : int }  (** node -> manager: validation finished *)
  | Gc_complete of { epoch : int }  (** manager -> all: purge diff stores *)
  (* Paging (request/reply). *)
  | Page_req of { page : int }
  | Page_reply of {
      page : int;
      data : Adsm_mem.Page.t;
      version : int;  (** server's highest known version *)
      committed : int;  (** version fully contained in [data] *)
      reflected : int array;
    }
  | Diff_req of { page : int; seqs : int list; sees_sw : bool }
      (** [seqs]: the target's interval numbers whose diffs are wanted.
          [sees_sw] piggybacks the requester's false-sharing view (WFS). *)
  | Diff_reply of { page : int; diffs : (int * Vc.t * Diff.t) list }
  (* Ownership. *)
  | Own_req of { page : int; version : int; want_data : bool }
      (** adaptive protocols: requester -> last perceived owner *)
  | Own_reply of {
      page : int;
      result : own_result;
      version : int;
      committed : int;  (** version fully contained in [data] *)
      data : Adsm_mem.Page.t option;
      reflected : int array;
    }
  | Sw_own_req of { page : int; version : int }
      (** SW protocol: requester -> home (one-way) *)
  | Sw_own_forward of { page : int; requester : int; version : int }
      (** home -> current owner (one-way) *)
  | Sw_own_transfer of { page : int; data : Adsm_mem.Page.t; version : int; committed : int }
      (** previous owner -> requester (one-way) *)
  (* HLRC extension. *)
  | Hlrc_diff of { page : int; seq : int; vc : Vc.t; diff : Diff.t }
      (** writer -> home at release (one-way); the home applies and
          discards it *)
  | Hlrc_fetch of { page : int; need : (int * int) list }
      (** faulting node -> home; [need] lists (proc, seq) modifications the
          reply must already contain — the home defers the reply until its
          copy covers them *)
  (* Crash recovery (see FAULTS.md). *)
  | Recover_req of { vc : Vc.t }
      (** restarted node -> every peer; [vc] is the checkpoint clock it
          rolled back to *)
  | Recover_reply of { intervals : Interval.t list }
      (** peer -> restarted node: every closed interval the peer knows of
          that [vc] does not cover (same shape as a lock grant) *)

(** Payload size in bytes for the network cost model.  [vc_bytes]
    overrides the cost of every piggybacked vector clock (defaults to
    dense {!Vc.size_bytes}); the [sparse_vc] cost model passes a
    delta-encoder based on the sender's last-barrier clock. *)
val size_bytes : ?vc_bytes:(Vc.t -> int) -> t -> int

(** Traffic class for the network's per-kind counters.  Derived here, once,
    from the constructor — the single interning point for message labels
    (HLRC diff flushes count as diff traffic, HLRC fetches as page
    traffic). *)
val kind : t -> Adsm_net.Kind.t

val pp : Format.formatter -> t -> unit
