(* Per-page protocol-mode predicates shared by the core, the sync layer and
   the protocol modules. *)

open State

let adaptive cl =
  match cl.cfg.Config.protocol with
  | Config.Wfs | Config.Wfs_wg -> true
  | Config.Mw | Config.Sw | Config.Hlrc -> false

let is_hlrc cl = cl.cfg.Config.protocol = Config.Hlrc

let is_wfs_wg cl = cl.cfg.Config.protocol = Config.Wfs_wg

(* A page "prefers" SW mode when the adaptive state variables say so. *)
let prefers_sw cl (e : entry) =
  match cl.cfg.Config.protocol with
  | Config.Sw -> true
  | Config.Mw | Config.Hlrc -> false
  | Config.Wfs -> not e.fs_active
  | Config.Wfs_wg ->
    (not e.fs_active) && if e.measured then e.wg_large else true

let sees_page_as_sw (e : entry) = not e.fs_active

let set_fs_active cl ~node (e : entry) value =
  if e.fs_active <> value then begin
    if adaptive cl then begin
      Stats.mode_switch cl.stats;
      if tracing cl then
        emit cl ~node
          (Adsm_trace.Event.Mode_change
             {
               page = e.page;
               mode = (if value then Adsm_trace.Event.Mw else Adsm_trace.Event.Sw);
             })
    end;
    e.fs_active <- value
  end

(* Migratory-detection extension (paper Section 7): a page this node
   repeatedly reads and then writes within the same interval is classified
   migratory; its read misses are upgraded to ownership migrations so the
   subsequent write fault costs no messages. *)
let migratory_classified cl (e : entry) =
  cl.cfg.Config.migratory_detection && adaptive cl && e.migratory_score >= 2
