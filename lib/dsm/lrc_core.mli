(** The lazy-release-consistency substrate shared by every protocol:
    interval closure, vector-clock plumbing, write notices, diff
    fetch/apply, and page validation.  Protocol policy enters via the
    module threaded into {!end_interval} and the parameters of
    {!close_page_default}; everything here is protocol-agnostic. *)

open State

(* --- sending helpers (size and kind derived from the message) --- *)

val cast : cluster -> src:int -> dst:int -> Msg.t -> unit

(** Blocking request; process context only. *)
val call : cluster -> src:int -> dst:int -> Msg.t -> Msg.t

(** Reply to a request; [node] is the responder (its last-barrier clock
    is the delta base under the [sparse_vc] cost model). *)
val respond_msg : cluster -> node -> Msg.t Adsm_net.Rpc.respond -> Msg.t -> unit

(* --- lazy diffing --- *)

(** Materialize a lazily-pending diff into the diff store; returns the
    creation cost in ns (0 if nothing was pending).  Event-context callers
    turn it into reply latency. *)
val materialize_pending_diff : cluster -> node -> entry -> int

(** Process-context variant: materialize and sleep the cost. *)
val materialize_now : cluster -> node -> entry -> unit

(* --- interval closure (release side) --- *)

(** Default diff sink: store the diff locally (TreadMarks-style). *)
val store_diff :
  cluster -> node -> entry -> seq:int -> vc:Vc.t -> Diff.t -> unit

(** Default clean-page closure: an owned single-writer page; emits an owner
    write notice (and handles a pending drop to MW mode). *)
val close_owned : cluster -> node -> entry -> seq:int -> int option

(** The twin/diff machinery behind each protocol's
    {!Protocol_intf.PROTOCOL.close_page}.  [sink] consumes created diffs;
    [close_clean] closes a dirty page with neither twin nor write log;
    [measure] enables WFS+WG granularity measurement; [allow_lazy] permits
    lazy diffing when configured. *)
val close_page_default :
  ?allow_lazy:bool ->
  ?measure:bool ->
  ?sink:(cluster -> node -> entry -> seq:int -> vc:Vc.t -> Diff.t -> unit) ->
  ?close_clean:(cluster -> node -> entry -> seq:int -> int option) ->
  cluster -> node -> entry -> seq:int -> vc:Vc.t -> charge:(int -> unit) ->
  int option

(** Close the node's current interval under protocol [p], creating diffs /
    owner write notices for every dirty page.  Atomic: no suspension point
    inside; the accumulated CPU cost is passed to [charge] once. *)
val end_interval :
  cluster -> Protocol_intf.t -> node -> charge:(int -> unit) -> unit

(* --- notice application (acquire side) --- *)

(** [replay] marks crash-recovery replay of retained intervals — the
    only path that can re-deliver a notice a durable page already holds
    pending, and hence the only one that pays the duplicate scan. *)
val apply_notice : ?replay:bool -> cluster -> node -> Notice.t -> unit

(** Apply intervals received on a lock grant or barrier release, oldest
    first; duplicates (already covered by our vector clock) are skipped. *)
val apply_intervals :
  ?replay:bool -> cluster -> node -> Interval.t list -> unit

(** All intervals this node knows that [vc] does not cover. *)
val collect_unseen : cluster -> node -> Vc.t -> Interval.t list

(** Is the notice's modification still missing from this node's copy? *)
val still_needed : node -> entry -> Notice.t -> bool

(* --- page validation (access-miss side) --- *)

(** Install a received page copy as the new base of the local frame. *)
val install_copy :
  cluster -> node -> entry -> data:Adsm_mem.Page.t -> version:int ->
  committed:int -> reflected:int array -> unit

(** Fetch (in parallel, one request per writer) and apply, in timestamp
    order, every pending diff for the page.  Process context. *)
val fetch_and_apply_diffs : cluster -> node -> entry -> unit

(** Make the page readable: fetch a base copy if needed, then fetch and
    apply pending diffs.  Used by every protocol except HLRC. *)
val validate : cluster -> node -> entry -> unit

(* --- write-side helpers --- *)

val mark_dirty : node -> entry -> unit

val make_twin : cluster -> node -> entry -> unit

(** Become (or re-become) owner locally: bump the version, as ownership is
    being (re)acquired (paper Section 2.3). *)
val acquire_ownership_locally : cluster -> node -> entry -> unit

(** MW-mode write path: valid copy + twin (or a write log when software
    write detection is enabled). *)
val mw_write_path : cluster -> node -> entry -> unit

(* --- server-side page/diff service (event context: never block) --- *)

(** Serve a whole-page request from the committed local copy. *)
val serve_page :
  cluster -> node -> src:int -> int -> Msg.t Adsm_net.Rpc.respond -> unit

(** Serve a diff request; [rule1] enables the adaptive copyset scan that
    clears the false-sharing flag (Section 3.1.2, rule 1). *)
val serve_diffs :
  ?rule1:bool ->
  cluster -> node -> src:int -> page:int -> seqs:int list -> sees_sw:bool ->
  Msg.t Adsm_net.Rpc.respond -> unit
