(** DSM runtime configuration: protocol selection and cost/threshold knobs.

    Default values reproduce the paper's Section 4 environment. *)

type protocol =
  | Mw  (** non-adaptive multiple writer (TreadMarks) *)
  | Sw  (** non-adaptive single writer (CVM-like) *)
  | Wfs  (** adaptive: write-write false sharing only *)
  | Wfs_wg  (** adaptive: false sharing + write granularity *)
  | Hlrc
      (** extension: home-based LRC (Zhou et al., OSDI'96, cited in the
          paper's related work) — diffs are flushed eagerly to each page's
          static home at release and discarded; faults fetch the whole
          current page from the home.  No diff storage, no garbage
          collection, but traffic concentrates at (possibly poorly chosen)
          homes. *)

val protocol_name : protocol -> string

val protocol_of_string : string -> protocol option

val all_protocols : protocol list
(** The paper's four protocols, in its presentation order. *)

val extended_protocols : protocol list
(** The paper's four plus the HLRC extension. *)

(** Deliberately-broken protocol variants for the mutation-detection
    suite (see TESTING.md): each silently corrupts consistency in a way
    the {!Adsm_check.Oracle} must flag, certifying that a green oracle
    run has detection power, not vacuity.  [None] (the default) is the
    correct protocol; mutations never change message flow, only data. *)
type mutation =
  | Skip_diff_apply
      (** apply no remote diff to the local frame (fetches and
          bookkeeping proceed normally) *)
  | Drop_write_notice
      (** omit odd-numbered pages' write notices from closed intervals *)
  | Stale_ownership_grant
      (** ownership grants (SW transfers and adaptive [Own_reply]s)
          carry a stale version, so the new owner's write notices are
          ignored by peers that already hold the previous version *)
  | Skip_notice_replay
      (** crash recovery omits both the checkpointed pending write
          notices and the peer recovery round: writes the crashed node
          had been told about but never applied are silently forgotten
          (needs a crash schedule to manifest) *)
  | Stale_vc_after_restart
      (** a restarted node keeps its pre-crash vector clock instead of
          rolling back to the checkpoint VC, so peers believe it has
          seen intervals whose effects its wiped pages lost (needs a
          crash schedule to manifest) *)

val mutation_name : mutation -> string

val mutation_of_string : string -> mutation option

val all_mutations : mutation list

(** Barrier algorithm (see PROTOCOL.md, "Barriers").  [Central] is the
    paper's manager-at-node-0 scheme; [Tree] is the combining tree for
    large clusters: arrivals merge interval sets and vector clocks up a
    [fanout]-ary tree rooted at node 0, releases fan back down it. *)
type barrier = Central | Tree of { fanout : int }

val barrier_name : barrier -> string

(** Parse ["central"], ["tree"] (fanout 4), or ["tree:K"] (K >= 2). *)
val barrier_of_string : string -> barrier option

(** Lock-home placement.  [Modulo] (the historical default) homes lock
    [l] at node [l mod nprocs]; [Sharded k] spreads homes over [k]
    manager nodes chosen evenly across the cluster — on a tree topology
    that keeps managers on distinct switches instead of crowding the
    low-numbered nodes. *)
type lock_homes = Modulo | Sharded of int

(** Event-engine execution mode (see PARALLELISM.md).  [Sequential] is
    the historical single-threaded event loop.  [Parallel {domains}]
    runs the conservative safe-horizon engine over that many OCaml
    domains; the simulation it produces — traces, checksums, counters,
    observation streams — is byte-identical, only host wall-clock
    changes.  Requests that cannot run in parallel fall back to
    [Sequential] silently: [domains <= 1], a single-node cluster, or
    [schedule_fuzz] set (fuzzing permutes the sequence numbers the
    parallel merge relies on). *)
type engine_mode = Sequential | Parallel of { domains : int }

(** ["seq"] or ["par:<domains>"] (for reports and artifacts). *)
val engine_mode_name : engine_mode -> string

type t = {
  protocol : protocol;
  nprocs : int;
  net : Adsm_net.Netcfg.t;
  topology : Adsm_net.Topology.shape;
      (** fabric shape the cluster runs on; [Flat] (default) reproduces
          the paper's network byte-identically *)
  node_speeds : float array;
      (** per-node compute-speed multipliers, indexed modulo the length;
          [[||]] (default) = homogeneous cluster.  Affects only
          [Dsm.compute] accounting, not protocol costs. *)
  barrier : barrier;  (** default [Central] *)
  lock_homes : lock_homes;  (** default [Modulo] *)
  sparse_vc : bool;
      (** account piggybacked vector clocks at their delta-encoded wire
          size (entries changed since the sender's last barrier) instead
          of 4 bytes per processor.  Pure cost-model change: no protocol
          content differs.  Off by default. *)
  twin_ns : int;  (** cost of making a twin (paper: 104 us) *)
  diff_create_ns : int;  (** cost of diffing a full page (paper: 179 us) *)
  diff_apply_base_ns : int;  (** fixed cost of applying one diff *)
  diff_apply_byte_ns : int;  (** per-byte cost of applying a diff *)
  page_install_ns : int;  (** cost of installing a received page copy *)
  fault_ns : int;  (** trap + handler dispatch cost per page fault *)
  wg_threshold_bytes : int;  (** diff size above which WFS+WG prefers SW
                                 (paper: 3 KB) *)
  ownership_quantum_ns : int;  (** minimum ownership tenure (paper: 1 ms) *)
  gc_threshold_bytes : int;  (** per-node live diff space that triggers
                                 garbage collection (paper: 1 MB) *)
  migratory_detection : bool;
      (** extension sketched in the paper's related-work section: detect
          read-then-write (migratory) pages and migrate ownership on the
          read miss, saving the write fault's ownership exchange.
          Off by default (not part of the paper's evaluation). *)
  write_ranges : bool;
      (** software write detection (the paper cites write ranges / Midway
          as cheaper alternatives to diffing): every shared write is
          logged, and diffs are built from the logged ranges at release —
          no twins, no page scans, but a per-write logging cost
          ([write_log_ns]).  Off by default. *)
  write_log_ns : int;  (** per-write logging cost when [write_ranges] *)
  lazy_diffing : bool;
      (** TreadMarks's actual scheme: keep the twin at release and create
          the diff only when first requested (or when the page is
          re-written).  Diffs whose notices are garbage-collected before
          anyone asks are never created at all.  Off by default — the
          baseline reproduction documents eager diffing as a
          simplification; the `lazydiff` ablation quantifies the gap. *)
  schedule_fuzz : int option;
      (** schedule fuzzing: permute the firing order of same-instant
          simulation events deterministically from this seed.  Correct
          protocols must produce bit-identical application results under
          every seed (property-tested); costs and message counts may
          legitimately vary. *)
  mutation : mutation option;
      (** inject a deliberate protocol bug (testing only; default
          [None]) *)
  faults : Adsm_net.Fault.schedule option;
      (** deterministic fault schedule (crashes, message perturbations,
          partitions — see FAULTS.md).  [None] (the default) is the
          failure-free cluster, byte-identical to builds without the
          fault subsystem; [Some Fault.empty] behaves identically.
          Crash schedules require eager diffing (no [lazy_diffing], no
          [write_ranges]) and a non-HLRC protocol. *)
  engine : engine_mode;
      (** event-engine execution mode (default [Sequential]); behavior-
          neutral — a [Parallel] run is byte-identical, just faster on a
          multi-core host *)
  seed : int64;  (** root seed for all application randomness *)
}

(** Paper defaults with the given protocol and processor count. *)
val make : ?seed:int64 -> protocol:protocol -> nprocs:int -> unit -> t
