(* Protocol selection: one total map from the configuration to a
   first-class protocol module.  This replaces both the per-call [match] on
   [Config.protocol] that was scattered through the old monolithic
   [Proto] and the ref-cell forward references it needed. *)

let get : Config.protocol -> Protocol_intf.t = function
  | Config.Mw -> (module Proto_mw)
  | Config.Sw -> (module Proto_sw)
  | Config.Wfs | Config.Wfs_wg -> (module Proto_adaptive)
  | Config.Hlrc -> (module Proto_hlrc)

let for_cluster (cl : State.cluster) = get cl.State.cfg.Config.protocol
