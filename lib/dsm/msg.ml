module Page = Adsm_mem.Page

type own_result = Granted | Refused_fs | Refused_measure

type t =
  | Lock_acquire of { lock : int; vc : Vc.t }
  | Lock_forward of { lock : int; requester : int; vc : Vc.t }
  | Lock_grant of { lock : int; intervals : Interval.t list }
  | Barrier_arrive of {
      epoch : int;
      vc : Vc.t;
      intervals : Interval.t list;
      gc_wanted : bool;
    }
  | Barrier_release of {
      epoch : int;
      intervals : Interval.t list;
      gc_round : bool;
    }
  | Gc_done of { epoch : int }
  | Gc_complete of { epoch : int }
  | Page_req of { page : int }
  | Page_reply of {
      page : int;
      data : Page.t;
      version : int;
      committed : int;
      reflected : int array;
    }
  | Diff_req of { page : int; seqs : int list; sees_sw : bool }
  | Diff_reply of { page : int; diffs : (int * Vc.t * Diff.t) list }
  | Own_req of { page : int; version : int; want_data : bool }
  | Own_reply of {
      page : int;
      result : own_result;
      version : int;
      committed : int;
      data : Page.t option;
      reflected : int array;
    }
  | Sw_own_req of { page : int; version : int }
  | Sw_own_forward of { page : int; requester : int; version : int }
  | Sw_own_transfer of { page : int; data : Page.t; version : int; committed : int }
  | Hlrc_diff of { page : int; seq : int; vc : Vc.t; diff : Diff.t }
  | Hlrc_fetch of { page : int; need : (int * int) list }
  | Recover_req of { vc : Vc.t }
  | Recover_reply of { intervals : Interval.t list }

let size_bytes ?(vc_bytes = Vc.size_bytes) = function
  | Lock_acquire { vc; _ } -> 8 + vc_bytes vc
  | Lock_forward { vc; _ } -> 12 + vc_bytes vc
  | Lock_grant { intervals; _ } ->
    8 + Interval.size_bytes_list ~vc_bytes intervals
  | Barrier_arrive { vc; intervals; _ } ->
    12 + vc_bytes vc + Interval.size_bytes_list ~vc_bytes intervals
  | Barrier_release { intervals; _ } ->
    12 + Interval.size_bytes_list ~vc_bytes intervals
  | Gc_done _ | Gc_complete _ -> 8
  | Page_req _ -> 8
  | Page_reply { reflected; _ } -> 8 + Page.size + (4 * Array.length reflected)
  | Diff_req { seqs; _ } -> 9 + (4 * List.length seqs)
  | Diff_reply { diffs; _ } ->
    List.fold_left
      (fun acc (_, vc, diff) -> acc + 4 + vc_bytes vc + Diff.size_bytes diff)
      8 diffs
  | Own_req _ -> 13
  | Own_reply { data; reflected; _ } ->
    13
    + (match data with None -> 0 | Some _ -> Page.size)
    + (4 * Array.length reflected)
  | Sw_own_req _ -> 12
  | Sw_own_forward _ -> 16
  | Sw_own_transfer _ -> 12 + Page.size
  | Hlrc_diff { vc; diff; _ } -> 12 + vc_bytes vc + Diff.size_bytes diff
  | Hlrc_fetch { need; _ } -> 8 + (8 * List.length need)
  | Recover_req { vc } -> 8 + vc_bytes vc
  | Recover_reply { intervals } ->
    8 + Interval.size_bytes_list ~vc_bytes intervals

let kind : t -> Adsm_net.Kind.t = function
  | Lock_acquire _ | Lock_forward _ | Lock_grant _ -> Adsm_net.Kind.Lock
  | Barrier_arrive _ | Barrier_release _ -> Adsm_net.Kind.Barrier
  | Gc_done _ | Gc_complete _ -> Adsm_net.Kind.Gc
  | Page_req _ | Page_reply _ -> Adsm_net.Kind.Page
  | Diff_req _ | Diff_reply _ -> Adsm_net.Kind.Diff
  | Own_req _ | Own_reply _ | Sw_own_req _ | Sw_own_forward _
  | Sw_own_transfer _ ->
    Adsm_net.Kind.Own
  | Hlrc_diff _ -> Adsm_net.Kind.Diff
  | Hlrc_fetch _ -> Adsm_net.Kind.Page
  | Recover_req _ | Recover_reply _ -> Adsm_net.Kind.Recover

let pp ppf t =
  let s =
    match t with
    | Lock_acquire { lock; _ } -> Printf.sprintf "lock-acquire(%d)" lock
    | Lock_forward { lock; requester; _ } ->
      Printf.sprintf "lock-forward(%d->p%d)" lock requester
    | Lock_grant { lock; _ } -> Printf.sprintf "lock-grant(%d)" lock
    | Barrier_arrive { epoch; _ } -> Printf.sprintf "barrier-arrive(%d)" epoch
    | Barrier_release { epoch; _ } -> Printf.sprintf "barrier-release(%d)" epoch
    | Gc_done { epoch } -> Printf.sprintf "gc-done(%d)" epoch
    | Gc_complete { epoch } -> Printf.sprintf "gc-complete(%d)" epoch
    | Page_req { page } -> Printf.sprintf "page-req(%d)" page
    | Page_reply { page; version; _ } ->
      Printf.sprintf "page-reply(%d v%d)" page version
    | Diff_req { page; seqs; _ } ->
      Printf.sprintf "diff-req(%d x%d)" page (List.length seqs)
    | Diff_reply { page; diffs } ->
      Printf.sprintf "diff-reply(%d x%d)" page (List.length diffs)
    | Own_req { page; version; _ } ->
      Printf.sprintf "own-req(%d v%d)" page version
    | Own_reply { page; result; version; _ } ->
      Printf.sprintf "own-reply(%d %s v%d)" page
        (match result with
        | Granted -> "granted"
        | Refused_fs -> "refused-fs"
        | Refused_measure -> "refused-measure")
        version
    | Sw_own_req { page; _ } -> Printf.sprintf "sw-own-req(%d)" page
    | Sw_own_forward { page; requester; _ } ->
      Printf.sprintf "sw-own-forward(%d->p%d)" page requester
    | Sw_own_transfer { page; version; _ } ->
      Printf.sprintf "sw-own-transfer(%d v%d)" page version
    | Hlrc_diff { page; seq; _ } -> Printf.sprintf "hlrc-diff(%d #%d)" page seq
    | Hlrc_fetch { page; _ } -> Printf.sprintf "hlrc-fetch(%d)" page
    | Recover_req _ -> "recover-req"
    | Recover_reply { intervals } ->
      Printf.sprintf "recover-reply(x%d)" (List.length intervals)
  in
  Format.pp_print_string ppf s
