type t = { proc : int; seq : int; vc : Vc.t; notices : Notice.t list }

let make ~proc ~vc ~notices =
  { proc; seq = Vc.get vc proc; vc = Vc.copy vc; notices }

let size_bytes ?(vc_bytes = Vc.size_bytes) t =
  8 + vc_bytes t.vc
  + List.fold_left (fun acc n -> acc + Notice.size_bytes n) 0 t.notices

let size_bytes_list ?vc_bytes ts =
  List.fold_left (fun acc t -> acc + size_bytes ?vc_bytes t) 0 ts

let unseen_by vc ts = List.filter (fun t -> t.seq > Vc.get vc t.proc) ts

let pp ppf t =
  Format.fprintf ppf "ival(p%d #%d %a [%d notices])" t.proc t.seq Vc.pp t.vc
    (List.length t.notices)
