type t = {
  proc : int;
  seq : int;
  vc : Vc.t;
  notices : Notice.t list;
  mutable wn_bytes : int;
      (* cached [Notice.size_bytes] total, -1 until first sized: the
         notice list is immutable, and an interval is sized once per
         receiver it is relayed to — without the cache, accounting walks
         every relayed notice again on every hop *)
}

let make ~proc ~vc ~notices =
  { proc; seq = Vc.get vc proc; vc = Vc.copy vc; notices; wn_bytes = -1 }

let size_bytes ?(vc_bytes = Vc.size_bytes) t =
  if t.wn_bytes < 0 then
    t.wn_bytes <-
      List.fold_left (fun acc n -> acc + Notice.size_bytes n) 0 t.notices;
  8 + vc_bytes t.vc + t.wn_bytes

let size_bytes_list ?vc_bytes ts =
  List.fold_left (fun acc t -> acc + size_bytes ?vc_bytes t) 0 ts

let unseen_by vc ts = List.filter (fun t -> t.seq > Vc.get vc t.proc) ts

(* Array-backed, clock-indexed per-processor interval log.

   Intervals of one processor are appended in strictly ascending [seq]
   (every producer path guarantees it: own intervals tick the clock,
   received intervals are fresh — their seq exceeds the receiver's clock
   component, which already covers everything logged).  "Which of p's
   intervals does clock [vc] not cover?" is then a binary search for the
   first seq above [Vc.get vc p] plus a suffix walk, instead of a filter
   over a rebuilt list.  GC and crash truncation reset [len] in place;
   the capacity is kept so steady-state logging stops allocating. *)
module Log = struct
  type interval = t

  type t = { mutable a : interval array; mutable len : int; mutable sorted : bool }

  (* Shared placeholder for vacated slots (releases the interval refs). *)
  let dummy =
    { proc = -1; seq = 0; vc = Vc.zero ~nprocs:1; notices = []; wn_bytes = 0 }

  let create () = { a = [||]; len = 0; sorted = true }

  let length l = l.len

  let get l i =
    if i < 0 || i >= l.len then invalid_arg "Interval.Log.get";
    l.a.(i)

  let append l (iv : interval) =
    (* Every healthy producer appends ascending.  Seeded recovery
       mutations ([Stale_vc_after_restart]) reissue sequence numbers on
       purpose; the log then degrades to the historical linear-filter
       behavior instead of misindexing (or refusing) the duplicates. *)
    if l.len > 0 && iv.seq <= l.a.(l.len - 1).seq then l.sorted <- false;
    if l.len = Array.length l.a then begin
      let a = Array.make (max 8 (2 * l.len)) dummy in
      Array.blit l.a 0 a 0 l.len;
      l.a <- a
    end;
    l.a.(l.len) <- iv;
    l.len <- l.len + 1

  let clear l =
    Array.fill l.a 0 l.len dummy;
    l.len <- 0;
    l.sorted <- true

  (* Index of the first logged interval with [seq > s] (= [len] if
     none): binary search over the ascending seqs, linear scan on a log
     that lost its sortedness. *)
  let first_after l s =
    if l.sorted then begin
      let lo = ref 0 and hi = ref l.len in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if l.a.(mid).seq > s then hi := mid else lo := mid + 1
      done;
      !lo
    end
    else begin
      let i = ref 0 in
      while !i < l.len && l.a.(!i).seq <= s do incr i done;
      !i
    end

  (* Prepend (newest first) every interval [vc] does not cover onto
     [acc].  [proc] is the log's owner — the search key is the sender's
     own clock component.  Appends are oldest-first, so the ascending
     walk prepends into the newest-first orientation the old list
     representation produced. *)
  let unseen_by vc ~proc l acc =
    let s = Vc.get vc proc in
    let acc = ref acc in
    if l.sorted then
      for i = first_after l s to l.len - 1 do
        acc := l.a.(i) :: !acc
      done
    else
      (* Element-for-element what [List.filter] did on the old
         newest-first list. *)
      for i = 0 to l.len - 1 do
        if l.a.(i).seq > s then acc := l.a.(i) :: !acc
      done;
    !acc
end

let pp ppf t =
  Format.fprintf ppf "ival(p%d #%d %a [%d notices])" t.proc t.seq Vc.pp t.vc
    (List.length t.notices)
