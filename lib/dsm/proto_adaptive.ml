(* The adaptive protocols (paper Section 3): WFS adapts between SW and MW
   per page on write-write false sharing, detected with the
   ownership-refusal protocol; WFS+WG adds write-granularity adaptation
   (pages with large measured diffs stay single-writer).  Both share this
   module — {!Mode.prefers_sw} and the [measure] flag read the configured
   variant.  The migratory-detection extension also lives here. *)

module Perm = Adsm_mem.Perm
module Page = Adsm_mem.Page
open State

let name = "WFS"

let close_page cl node (e : entry) ~seq ~vc ~charge =
  Lrc_core.close_page_default ~measure:(Mode.is_wfs_wg cl) cl node e ~seq ~vc
    ~charge

(* Owner-side reaction to the page becoming shared before its granularity
   has been measured (WFS+WG only): switch it to MW mode, after emitting a
   final owner notice if there are unreleased writes. *)
let wg_sharing_trigger cl node (e : entry) =
  if Mode.is_wfs_wg cl && e.is_owner && (not e.measured) && e.version > 0
  then begin
    e.measured <- true;
    if e.dirty then e.drop_at_release <- true
    else begin
      e.is_owner <- false;
      e.owner <- node.id;
      Stats.mode_switch cl.stats;
      if tracing cl then
        emit cl ~node:node.id
          (Adsm_trace.Event.Mode_change
             { page = e.page; mode = Adsm_trace.Event.Mw })
    end
  end

(* Adaptive write fault in MW mode (also the landing path after an
   ownership refusal, whose reply already installed a fresh base copy). *)
let adaptive_mw_write cl node (e : entry) = Lrc_core.mw_write_path cl node e

(* Adaptive write fault.  [Lrc_core.validate] suspends, and an ownership
   request handler may run meanwhile and grant our ownership away, so
   ownership is re-checked after every suspension point (the [restart]
   calls). *)
let rec adaptive_write_fault cl node (e : entry) =
  let restart () = adaptive_write_fault cl node e in
  if Mode.prefers_sw cl e then begin
    if e.is_owner then begin
      (* Concurrent MW diffs may have invalidated even an owned page. *)
      Lrc_core.validate cl node e;
      if not e.is_owner then restart ()
      else begin
        Lrc_core.acquire_ownership_locally cl node e;
        Lrc_core.mark_dirty node e
      end
    end
    else if e.owner = node.id then begin
      (* We were the last owner and nobody took ownership since (e.g.
         after the WG rule switched the page back to SW): re-establish
         ownership locally. *)
      Lrc_core.validate cl node e;
      if e.owner <> node.id || e.is_owner then restart ()
      else begin
        Lrc_core.acquire_ownership_locally cl node e;
        Stats.mode_switch cl.stats;
        if tracing cl then
          emit cl ~node:node.id
            (Adsm_trace.Event.Mode_change
               { page = e.page; mode = Adsm_trace.Event.Sw });
        Lrc_core.mark_dirty node e
      end
    end
    else begin
      Stats.ownership_request cl.stats;
      if tracing cl then
        emit cl ~node:node.id
          (Adsm_trace.Event.Own_request
             { page = e.page; owner = e.owner; version = e.version });
      let want_data = (not (Perm.allows_read e.perm)) || e.notices <> [] in
      let req =
        Msg.Own_req { page = e.page; version = e.version; want_data }
      in
      match Lrc_core.call cl ~src:node.id ~dst:e.owner req with
      | Msg.Own_reply { result; version; committed; data; reflected; _ } -> (
        (match data with
        | Some data ->
          Lrc_core.install_copy cl node e ~data ~version ~committed ~reflected
        | None -> ());
        match result with
        | Msg.Granted ->
          Lrc_core.fetch_and_apply_diffs cl node e;
          e.version <- version;
          Lrc_core.acquire_ownership_locally cl node e;
          Lrc_core.mark_dirty node e
        | Msg.Refused_measure ->
          e.measured <- true;
          adaptive_mw_write cl node e
        | Msg.Refused_fs ->
          Stats.ownership_refused cl.stats;
          Stats.note_false_sharing cl.stats ~page:e.page;
          Mode.set_fs_active cl ~node:node.id e true;
          adaptive_mw_write cl node e)
      | _ -> failwith "Proto: unexpected reply to Own_req"
    end
  end
  else begin
    if e.is_owner then begin
      (* Owner whose page now prefers MW (false sharing learned through
         notices, or small measured diffs): drop ownership and diff. *)
      e.is_owner <- false;
      e.owner <- node.id;
      Stats.mode_switch cl.stats;
      if tracing cl then
        emit cl ~node:node.id
          (Adsm_trace.Event.Mode_change
             { page = e.page; mode = Adsm_trace.Event.Mw })
    end;
    adaptive_mw_write cl node e
  end

let write_fault = adaptive_write_fault

(* The migratory read-upgrade: ask for ownership at the read miss (one
   exchange); if granted, the forthcoming write fault is purely local. *)
let migratory_read_upgrade cl node (e : entry) =
  Stats.migratory_upgrade cl.stats;
  Stats.ownership_request cl.stats;
  if tracing cl then
    emit cl ~node:node.id
      (Adsm_trace.Event.Own_request
         { page = e.page; owner = e.owner; version = e.version });
  let req =
    Msg.Own_req { page = e.page; version = e.version; want_data = true }
  in
  match Lrc_core.call cl ~src:node.id ~dst:e.owner req with
  | Msg.Own_reply { result; version; committed; data; reflected; _ } -> (
    (match data with
    | Some data ->
      Lrc_core.install_copy cl node e ~data ~version ~committed ~reflected
    | None -> ());
    match result with
    | Msg.Granted ->
      Lrc_core.fetch_and_apply_diffs cl node e;
      e.version <- version;
      Lrc_core.acquire_ownership_locally cl node e;
      e.perm <- Perm.Read_only;
      tlb_reset node
    | Msg.Refused_measure ->
      e.measured <- true;
      Lrc_core.validate cl node e
    | Msg.Refused_fs ->
      Stats.ownership_refused cl.stats;
      Stats.note_false_sharing cl.stats ~page:e.page;
      Mode.set_fs_active cl ~node:node.id e true;
      Lrc_core.validate cl node e)
  | _ -> failwith "Proto: unexpected reply to migratory Own_req"

let read_fault cl node (e : entry) =
  if
    Mode.migratory_classified cl e
    && Mode.prefers_sw cl e
    && (not e.is_owner)
    && e.owner <> node.id
  then migratory_read_upgrade cl node e
  else Lrc_core.validate cl node e

(* --- server side --- *)

let handle_page_req cl node ~src page respond =
  wg_sharing_trigger cl node (entry_of node page);
  Lrc_core.serve_page cl node ~src page respond

let handle_diff_req cl node ~src ~page ~seqs ~sees_sw respond =
  Lrc_core.serve_diffs ~rule1:true cl node ~src ~page ~seqs ~sees_sw respond

(* The ownership-refusal protocol (Section 3.1.1).  Always two messages;
   never forwarded. *)
let handle_own_req cl node ~src ~page ~version:v_req ~want_data respond =
  let e = entry_of node page in
  copyset_add e ~nprocs:node.nprocs src;
  let committed () =
    if want_data then Option.map Page.copy (committed_copy e) else None
  in
  let reply ?version:(v = e.version) result data =
    Lrc_core.respond_msg cl node respond
      (Msg.Own_reply
         {
           page;
           result;
           version = v;
           committed = e.committed_version;
           data;
           reflected = reflected_copy e ~nprocs:node.nprocs;
         })
  in
  (* Mutation seam (testing only): grants carry a stale version, so the
     new owner's bumped version collides with what peers already hold and
     its owner write notices are silently discarded as dominated. *)
  let grant_version () =
    if cl.cfg.Config.mutation = Some Config.Stale_ownership_grant then
      e.version - 1
    else e.version
  in
  let refuse_fs () =
    Stats.note_false_sharing cl.stats ~page;
    Mode.set_fs_active cl ~node:node.id e true;
    if e.is_owner then begin
      if e.dirty then e.drop_at_release <- true
      else begin
        e.is_owner <- false;
        e.owner <- node.id;
        Stats.mode_switch cl.stats;
        if tracing cl then
          emit cl ~node:node.id
            (Adsm_trace.Event.Mode_change
               { page; mode = Adsm_trace.Event.Mw })
      end
    end;
    if tracing cl then
      emit cl ~node:node.id
        (Adsm_trace.Event.Own_refuse
           { page; requester = src; reason = Adsm_trace.Event.Fs });
    reply Msg.Refused_fs (committed ())
  in
  if e.is_owner then begin
    if Mode.is_wfs_wg cl && (not e.measured) && e.version > 0 then begin
      (* First write-sharing event: force MW to measure granularity. *)
      e.measured <- true;
      if e.dirty then e.drop_at_release <- true
      else begin
        e.is_owner <- false;
        e.owner <- node.id;
        Stats.mode_switch cl.stats;
        if tracing cl then
          emit cl ~node:node.id
            (Adsm_trace.Event.Mode_change
               { page; mode = Adsm_trace.Event.Mw })
      end;
      if tracing cl then
        emit cl ~node:node.id
          (Adsm_trace.Event.Own_refuse
             { page; requester = src; reason = Adsm_trace.Event.Measure });
      reply Msg.Refused_measure (committed ())
    end
    else if e.version = v_req then begin
      (* Normal grant.  The owner is necessarily clean on this page (a
         dirty owner has bumped the version, which would mismatch), so its
         data frame is the committed copy.  Note: we do NOT learn the new
         version; it reaches us through owner write notices. *)
      e.is_owner <- false;
      e.owner <- src;
      if tracing cl then
        emit cl ~node:node.id
          (Adsm_trace.Event.Own_grant
             { page; requester = src; version = e.version });
      reply ~version:(grant_version ()) Msg.Granted (committed ())
    end
    else refuse_fs ()
  end
  else if (not e.fs_active) && e.version = v_req && e.owner = node.id
  then begin
    (* Resumed ownership request (rules 1-3 cleared the FS flag): the last
       owner re-establishes single-writer mode. *)
    e.owner <- src;
    Stats.mode_switch cl.stats;
    if tracing cl then begin
      emit cl ~node:node.id
        (Adsm_trace.Event.Mode_change { page; mode = Adsm_trace.Event.Sw });
      emit cl ~node:node.id
        (Adsm_trace.Event.Own_grant
           { page; requester = src; version = e.version })
    end;
    reply ~version:(grant_version ()) Msg.Granted (committed ())
  end
  else refuse_fs ()

let handle_protocol_msg _cl _node ~src:_ _msg _respond = false

(* Only the last owner validates at a GC round; [entry.owner] is protocol
   state and must not be repointed at a fetch hint on drop. *)
let gc_validator _cl node (e : entry) = e.owner = node.id

let gc_retarget_owner_on_drop = false
