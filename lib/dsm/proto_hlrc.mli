(** HLRC: the home-based LRC extension (related work of the paper).  Diffs
    are flushed eagerly to each page's static home and discarded; faults
    fetch whole current pages from the home. *)

include Protocol_intf.PROTOCOL
