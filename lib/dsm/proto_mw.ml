(* MW: the TreadMarks-style twin/diff multiple-writer protocol (paper
   Section 2.2).  Pure policy glue: every mechanism lives in
   {!Lrc_core}. *)

open State

let name = "MW"

let read_fault cl node (e : entry) = Lrc_core.validate cl node e

let write_fault cl node (e : entry) = Lrc_core.mw_write_path cl node e

let close_page cl node (e : entry) ~seq ~vc ~charge =
  Lrc_core.close_page_default cl node e ~seq ~vc ~charge

let handle_page_req cl node ~src page respond =
  Lrc_core.serve_page cl node ~src page respond

let handle_diff_req cl node ~src ~page ~seqs ~sees_sw respond =
  Lrc_core.serve_diffs cl node ~src ~page ~seqs ~sees_sw respond

let handle_own_req _cl _node ~src:_ ~page ~version:_ ~want_data:_ _respond =
  failwith
    (Printf.sprintf "Proto_mw: unexpected ownership request for page %d" page)

let handle_protocol_msg _cl _node ~src:_ _msg _respond = false

(* A node with live own diffs (and a frame to validate) keeps its copy at a
   GC round; everyone else drops theirs and refetches on demand. *)
let gc_validator _cl _node (e : entry) =
  (e.own_diff_seqs <> [] || e.pending_diff <> None) && e.data <> None

let gc_retarget_owner_on_drop = true
