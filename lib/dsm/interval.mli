(** Completed intervals of a processor.

    An interval groups the write notices created at one release.  Intervals
    are what synchronization messages carry: a lock grant or barrier release
    piggybacks every interval the receiver has not yet seen. *)

type t = {
  proc : int;
  seq : int;  (** [Vc.get vc proc] — this interval's own index *)
  vc : Vc.t;
  notices : Notice.t list;
  mutable wn_bytes : int;
      (** cached notice-bytes total, [-1] until first sized (the notice
          list is immutable; construct through {!make}) *)
}

val make : proc:int -> vc:Vc.t -> notices:Notice.t list -> t

(** Wire size: 8-byte header + timestamp + notices.  [vc_bytes]
    overrides how the piggybacked timestamp is costed (defaults to dense
    {!Vc.size_bytes}); see [Config.sparse_vc]. *)
val size_bytes : ?vc_bytes:(Vc.t -> int) -> t -> int

val size_bytes_list : ?vc_bytes:(Vc.t -> int) -> t list -> int

(** Intervals of [intervals] not yet covered by [vc] (i.e. with
    [seq > Vc.get vc proc]). *)
val unseen_by : Vc.t -> t list -> t list

(** Array-backed, clock-indexed per-processor interval log.  Appends are
    strictly ascending in [seq] (asserted), so coverage queries binary
    search on the observer's clock component instead of filtering a
    list; GC/crash truncation resets the length in place and keeps the
    capacity. *)
module Log : sig
  type interval := t

  type t

  val create : unit -> t

  val length : t -> int

  (** [get l i] — the [i]-th oldest retained interval. *)
  val get : t -> int -> interval

  (** Append; [iv.seq] must exceed the last logged seq (asserted). *)
  val append : t -> interval -> unit

  (** Drop every logged interval, keeping the capacity. *)
  val clear : t -> unit

  (** Index of the first logged interval with [seq > s] ([length] if
      none). *)
  val first_after : t -> int -> int

  (** [unseen_by vc ~proc l acc] — prepend (newest first) every logged
      interval not covered by [vc] onto [acc]; [proc] is the log
      owner, whose clock component is the search key. *)
  val unseen_by : Vc.t -> proc:int -> t -> interval list -> interval list
end

val pp : Format.formatter -> t -> unit
