(** Completed intervals of a processor.

    An interval groups the write notices created at one release.  Intervals
    are what synchronization messages carry: a lock grant or barrier release
    piggybacks every interval the receiver has not yet seen. *)

type t = {
  proc : int;
  seq : int;  (** [Vc.get vc proc] — this interval's own index *)
  vc : Vc.t;
  notices : Notice.t list;
}

val make : proc:int -> vc:Vc.t -> notices:Notice.t list -> t

(** Wire size: 8-byte header + timestamp + notices.  [vc_bytes]
    overrides how the piggybacked timestamp is costed (defaults to dense
    {!Vc.size_bytes}); see [Config.sparse_vc]. *)
val size_bytes : ?vc_bytes:(Vc.t -> int) -> t -> int

val size_bytes_list : ?vc_bytes:(Vc.t -> int) -> t list -> int

(** Intervals of [intervals] not yet covered by [vc] (i.e. with
    [seq > Vc.get vc proc]). *)
val unseen_by : Vc.t -> t list -> t list

val pp : Format.formatter -> t -> unit
