(** Protocol statistics.

    Collects everything the paper reports: message and data volumes come
    from the network layer; this module tracks ownership requests, twin and
    diff memory (cumulative and live), garbage collections, the live-diff
    time series of Figure 3, and the sharing profile (writers per page,
    write-write false sharing, diff granularity) behind Table 2. *)

type t

val create : nprocs:int -> unit -> t

(** [set_defer t (Some d)] routes every update to state shared across
    nodes (scalar counters, the live-diff series, the sharing hashtables,
    the diff-size list) through [d] — the parallel engine's
    {!Adsm_sim.Engine.defer}, which replays them in global event order
    between windows.  Per-node slots ([diff_store], the time breakdown)
    stay immediate: they are lane-owned and read mid-window (the GC
    trigger).  [None] (the default) is the unchanged sequential path. *)
val set_defer : t -> ((unit -> unit) -> unit) option -> unit

val nprocs : t -> int

(* --- twins --- *)

val twin_created : t -> node:int -> unit

val twin_freed : t -> node:int -> unit

val twins_created_total : t -> int

val twin_bytes_total : t -> int
(** Cumulative bytes of all twins ever created. *)

(* --- diffs --- *)

(** A diff was created by [node]; [bytes] is its encoded size and
    [modified] the number of bytes it changes on [page], at simulated
    [time]. *)
val diff_created : t -> node:int -> page:int -> bytes:int -> modified:int -> time:int -> unit

(** A fetched diff was added to [node]'s diff store at simulated [time]
    (counts as another live diff copy, as in the paper's Figure 3 which
    plots the total number of diffs on all processors — so the live
    series must record a point here just as it does on creation). *)
val diff_stored : t -> node:int -> bytes:int -> time:int -> unit

(** [node] dropped [bytes] of diff store and [count] diffs at [time]
    (garbage collection). *)
val diffs_dropped : t -> node:int -> bytes:int -> count:int -> time:int -> unit

val diffs_created_total : t -> int

val diff_bytes_total : t -> int
(** Cumulative encoded bytes of all diffs ever created. *)

val diff_store_bytes : t -> node:int -> int
(** Current live diff-store bytes at [node] (triggers GC). *)

val live_diff_series : t -> Adsm_sim.Series.t
(** Total live diffs across all nodes over time (paper Figure 3). *)

(* --- protocol events --- *)

val ownership_request : t -> unit

val ownership_requests : t -> int

val ownership_refused : t -> unit

val ownership_refusals : t -> int

val gc_started : t -> unit

val gc_count : t -> int

val page_faults : t -> int

val page_fault : t -> read:bool -> unit

val read_faults : t -> int

val write_faults : t -> int

(* --- sharing profile (Table 2) --- *)

val note_write : t -> page:int -> unit
(** A processor committed modifications to a page (at a release). *)

val note_false_sharing : t -> page:int -> unit
(** Concurrent writes by different processors were detected on the page. *)

val pages_written : t -> int
(** Pages with at least one recorded writer. *)

(** Has [note_false_sharing] for this page been committed?  Under
    deferred stats, pending notes are not yet visible — a [false] answer
    may lag, a [true] answer is definitive. *)
val page_false_shared : t -> page:int -> bool

val pages_false_shared : t -> int

val false_shared_fraction : t -> float
(** Falsely shared pages over written pages (0 if none written). *)

val diff_sizes : t -> int list
(** Modified-byte counts of every diff created (write granularity). *)

val mean_diff_size : t -> float

val mode_switches : t -> int
(** Number of per-page SW<->MW mode transitions (adaptive protocols). *)

val mode_switch : t -> unit

val migratory_upgrade : t -> unit
(** A read miss was upgraded to an ownership migration (the
    migratory-detection extension). *)

val migratory_upgrades : t -> int

(* --- execution-time breakdown --- *)

(** Where a processor's simulated time goes: its own computation
    ([Dsm.compute] charges), page-fault service (including twin/diff and
    install costs incurred inside the fault), lock acquisition, or
    barrier waits (including garbage collection). *)
type time_category = Compute | Fault | Lock | Barrier

val add_time : t -> node:int -> category:time_category -> ns:int -> unit

(** Sum over all processors. *)
val total_time : t -> category:time_category -> int
