type t = {
  page : int;
  proc : int;
  seq : int;
  vc : Vc.t;
  version : int option;
}

let is_owner t = t.version <> None

(* Coverage through the transitive-clock invariant.  A notice's [vc] is
   the writer's clock snapshot at the close of interval [(proc, seq)],
   so [vc.(proc) = seq]; and every clock in the system is built by
   merging whole interval vcs, so a clock whose [proc] component reaches
   [seq] has merged that snapshot (or a later, dominating one — a
   node's clock only grows).  [t.vc <= by.vc] therefore collapses to one
   component read instead of an O(nprocs) scan — the dominant cost of
   the false-sharing checks at large n. *)
let covers ~by t = Vc.get by.vc t.proc >= t.seq

(* Neither write saw the other: [concurrent t.vc u.vc], through the same
   invariant. *)
let concurrent t u =
  Vc.get u.vc t.proc < t.seq && Vc.get t.vc u.proc < u.seq

let same_write a b = a.proc = b.proc && a.seq = b.seq && a.page = b.page

let size_bytes t = match t.version with None -> 8 | Some _ -> 12

let pp ppf t =
  Format.fprintf ppf "wn(p%d i%d pg%d%s)" t.proc t.seq t.page
    (match t.version with None -> "" | Some v -> Printf.sprintf " v%d" v)
