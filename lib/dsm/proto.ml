(* Façade over the layered protocol stack.  See Section 3 of the paper:

   - MW ({!Proto_mw}): TreadMarks-style twin/diff multiple writer.
   - SW ({!Proto_sw}): CVM-like single writer with version numbers,
     home-forwarded ownership transfers and a minimum ownership quantum.
   - WFS / WFS+WG ({!Proto_adaptive}): adapts between SW and MW per page on
     write-write false sharing (ownership-refusal protocol), optionally
     with write-granularity adaptation (3 KB threshold).
   - HLRC ({!Proto_hlrc}): home-based extension beyond the paper's
     evaluation.

   The mechanisms live in {!Lrc_core} (intervals, notices, diffs,
   validation) and {!Sync} (locks, barriers, garbage collection);
   {!Dispatch} maps the configured protocol to its module.  This façade
   adds only the generic fault prologue/epilogue (fault cost, statistics,
   migratory bookkeeping) and routes incoming messages to the right
   layer. *)

module Engine = Adsm_sim.Engine
module Proc = Adsm_sim.Proc
open State

let sees_page_as_sw = Mode.sees_page_as_sw

let end_interval_local = Sync.end_interval_local

let lock = Sync.lock

let unlock = Sync.unlock

let barrier = Sync.barrier

let pause_if_crashed = Sync.pause_if_crashed

let read_fault cl node (e : entry) =
  Sync.pause_if_crashed cl node;
  let t0 = Engine.now cl.engine in
  if tracing cl then
    emit cl ~node:node.id (Adsm_trace.Event.Read_fault { page = e.page });
  Stats.page_fault cl.stats ~read:true;
  Proc.sleep cl.engine cl.cfg.Config.fault_ns;
  e.read_fault_seq <- Vc.get node.vc node.id;
  let (module P : Protocol_intf.PROTOCOL) = Dispatch.for_cluster cl in
  P.read_fault cl node e;
  Stats.add_time cl.stats ~node:node.id ~category:Stats.Fault
    ~ns:(Engine.now cl.engine - t0)

(* Update the migratory classifier: a write fault preceded by a read fault
   in the same interval is migratory evidence; one without is counter-
   evidence. *)
let update_migratory_score cl node (e : entry) =
  if cl.cfg.Config.migratory_detection then
    if e.read_fault_seq = Vc.get node.vc node.id then
      e.migratory_score <- min 3 (e.migratory_score + 1)
    else e.migratory_score <- max 0 (e.migratory_score - 1)

let write_fault cl node (e : entry) =
  Sync.pause_if_crashed cl node;
  let t0 = Engine.now cl.engine in
  if tracing cl then
    emit cl ~node:node.id (Adsm_trace.Event.Write_fault { page = e.page });
  Stats.page_fault cl.stats ~read:false;
  Proc.sleep cl.engine cl.cfg.Config.fault_ns;
  update_migratory_score cl node e;
  let (module P : Protocol_intf.PROTOCOL) = Dispatch.for_cluster cl in
  P.write_fault cl node e;
  Stats.add_time cl.stats ~node:node.id ~category:Stats.Fault
    ~ns:(Engine.now cl.engine - t0)

let handle_message cl ~node:node_id ~src msg respond =
  let node = cl.nodes.(node_id) in
  match (msg, respond) with
  (* Synchronization traffic. *)
  | Msg.Lock_acquire { lock; vc }, None ->
    Sync.handle_lock_acquire cl node ~src ~vc lock
  | Msg.Lock_forward { lock; requester; vc }, None ->
    Sync.handle_lock_forward cl node ~requester ~vc lock
  | Msg.Lock_grant { lock; intervals }, None ->
    Sync.handle_lock_grant cl node ~lock intervals
  | Msg.Barrier_arrive { epoch; vc; intervals; gc_wanted }, None ->
    Sync.handle_barrier_arrive cl node ~src ~vc ~intervals ~gc_wanted epoch
  | Msg.Barrier_release _, None -> Sync.handle_barrier_release cl node msg
  | Msg.Gc_done { epoch }, None -> Sync.handle_gc_done cl node epoch
  | Msg.Gc_complete { epoch }, None -> Sync.handle_gc_complete cl node epoch
  (* Crash recovery: a restarted peer re-fetching missed intervals. *)
  | Msg.Recover_req { vc }, Some respond ->
    Sync.handle_recover_req cl node ~vc respond
  (* Shared paging/ownership requests, served per the protocol's policy. *)
  | Msg.Page_req { page }, Some respond ->
    let (module P : Protocol_intf.PROTOCOL) = Dispatch.for_cluster cl in
    P.handle_page_req cl node ~src page respond
  | Msg.Diff_req { page; seqs; sees_sw }, Some respond ->
    let (module P : Protocol_intf.PROTOCOL) = Dispatch.for_cluster cl in
    P.handle_diff_req cl node ~src ~page ~seqs ~sees_sw respond
  | Msg.Own_req { page; version; want_data }, Some respond ->
    let (module P : Protocol_intf.PROTOCOL) = Dispatch.for_cluster cl in
    P.handle_own_req cl node ~src ~page ~version ~want_data respond
  (* Protocol-private traffic (SW forwarding, HLRC home messages). *)
  | _ ->
    let (module P : Protocol_intf.PROTOCOL) = Dispatch.for_cluster cl in
    if not (P.handle_protocol_msg cl node ~src msg respond) then
      failwith "Proto: malformed message/response combination"
