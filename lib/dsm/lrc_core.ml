(* The lazy-release-consistency substrate shared by every protocol:
   interval closure, vector-clock plumbing, write-notice application, diff
   fetch/apply, page validation, and the server-side page/diff service.

   Protocol policy enters through two seams: {!end_interval} threads the
   cluster's protocol module (a {!Protocol_intf.t}) into the per-page close
   step, and {!close_page_default} exposes the twin/diff machinery with the
   per-protocol choices (diff sink, clean-page closure, lazy diffing,
   granularity measurement) as parameters.

   Conventions inherited from the paper (Section 3):
   - an interval is closed (diffs / owner write notices created) at every
     release *and* before applying remotely received notices, so
     [apply_notice] never encounters a dirty page;
   - diffs are created eagerly at interval close (a documented
     simplification of TreadMarks's lazy diffing) unless [lazy_diffing];
   - an owner that grants ownership does NOT learn the new version number;
     it propagates only through owner write notices, which is what makes
     the ownership-refusal test detect false sharing (paper Section 3.1.1,
     second example). *)

module Page = Adsm_mem.Page
module Perm = Adsm_mem.Perm
module Engine = Adsm_sim.Engine
module Proc = Adsm_sim.Proc
module Rpc = Adsm_net.Rpc
open State

(* ------------------------------------------------------------------ *)
(* Sending helpers                                                    *)
(* ------------------------------------------------------------------ *)

(* Wire-size accounting for one outgoing message.  Under [sparse_vc]
   every piggybacked vector clock is charged at its delta-encoded size
   relative to the sender's last-barrier clock — knowledge the receiver
   provably shares — instead of 4 dense bytes per processor.  Pure cost
   model: message content and protocol behaviour are unchanged. *)
let msg_bytes cl ~src msg =
  if cl.cfg.Config.sparse_vc then
    Msg.size_bytes
      ~vc_bytes:(Vc.delta_size_bytes ~since:cl.nodes.(src).last_barrier_vc)
      msg
  else Msg.size_bytes msg

let cast cl ~src ~dst msg =
  Rpc.cast cl.rpc ~src ~dst ~bytes:(msg_bytes cl ~src msg)
    ~kind:(Msg.kind msg) msg

let call cl ~src ~dst msg =
  Rpc.call cl.rpc ~src ~dst ~bytes:(msg_bytes cl ~src msg)
    ~kind:(Msg.kind msg) msg

(* [node] is the responder: its last-barrier clock is the delta base. *)
let respond_msg cl node respond msg =
  respond ~bytes:(msg_bytes cl ~src:node.id msg) ~kind:(Msg.kind msg) msg

(* ------------------------------------------------------------------ *)
(* Lazy diffing                                                       *)
(* ------------------------------------------------------------------ *)

(* Materialize a lazily-pending diff (twin vs current frame) into the diff
   store.  Returns the creation cost to charge (0 if nothing was pending);
   callers in event context turn it into reply latency. *)
let materialize_pending_diff cl node (e : entry) =
  match e.pending_diff with
  | None -> 0
  | Some (seq, vc) ->
    e.pending_diff <- None;
    let twin =
      match e.twin with
      | Some t -> t
      | None -> failwith "Proto: pending diff without its twin"
    in
    let diff =
      Diff.create ~scratch:(State.scratch node) ~twin ~current:(frame e) ()
    in
    Hashtbl.replace node.diffs (e.page, node.id, seq) (vc, diff);
    e.own_diff_seqs <- seq :: e.own_diff_seqs;
    Stats.diff_created cl.stats ~node:node.id ~page:e.page
      ~bytes:(Diff.size_bytes diff)
      ~modified:(Diff.modified_bytes diff)
      ~time:(Engine.now cl.engine);
    if tracing cl then begin
      emit cl ~node:node.id
        (Adsm_trace.Event.Diff_create
           {
             page = e.page;
             seq;
             bytes = Diff.size_bytes diff;
             modified = Diff.modified_bytes diff;
           });
      emit cl ~node:node.id (Adsm_trace.Event.Twin_free { page = e.page })
    end;
    e.twin <- None;
    Stats.twin_freed cl.stats ~node:node.id;
    cl.cfg.Config.diff_create_ns

(* Process-context variant: charge the cost by sleeping. *)
let materialize_now cl node (e : entry) =
  match e.pending_diff with
  | None -> ()
  | Some _ ->
    let cost = materialize_pending_diff cl node e in
    if cost > 0 then Proc.sleep cl.engine cost

(* ------------------------------------------------------------------ *)
(* Interval closure (release side)                                    *)
(* ------------------------------------------------------------------ *)

(* Default diff sink: keep the diff in the local store (TreadMarks). *)
let store_diff _cl node (e : entry) ~seq ~vc diff =
  Hashtbl.replace node.diffs (e.page, node.id, seq) (vc, diff);
  e.own_diff_seqs <- seq :: e.own_diff_seqs

(* Default closure of a dirty page with neither twin nor write log: a
   single-writer page the node owned while writing (it may have transferred
   ownership away mid-interval under SW).  Emits an owner write notice. *)
let close_owned cl node (e : entry) ~seq =
  reflected_set e ~nprocs:node.nprocs node.id seq;
  e.committed_version <- e.version;
  if e.content_version < e.version then e.content_version <- e.version;
  if cl.cfg.Config.nprocs > 1 && e.is_owner then begin
    e.perm <- Perm.Read_only;
    tlb_reset node
  end;
  let v = e.version in
  if e.drop_at_release then begin
    (* Ownership refusal or WFS+WG sharing trigger: emit a final owner
       notice, then drop to MW mode. *)
    e.drop_at_release <- false;
    e.is_owner <- false;
    e.owner <- node.id;
    Stats.mode_switch cl.stats;
    if tracing cl then
      emit cl ~node:node.id
        (Adsm_trace.Event.Mode_change { page = e.page; mode = Adsm_trace.Event.Mw })
  end;
  Some v

(* The twin/diff close step shared by every protocol's [close_page]:
   [sink] receives each created diff (stored locally by default, flushed to
   the home by HLRC); [close_clean] closes a dirty page with neither twin
   nor write log (an owned SW-mode page by default, the master copy under
   HLRC); [measure] enables the WFS+WG write-granularity measurement;
   [allow_lazy] permits deferring the diff when [Config.lazy_diffing]. *)
let close_page_default ?(allow_lazy = true) ?(measure = false)
    ?(sink = store_diff) ?(close_clean = close_owned) cl node (e : entry)
    ~seq ~vc ~charge =
  let wg_measure modified =
    (* Write-granularity measurement (Section 3.2). *)
    if measure then begin
      e.measured <- true;
      let large = modified > cl.cfg.Config.wg_threshold_bytes in
      if large <> e.wg_large then Stats.mode_switch cl.stats;
      e.wg_large <- large
    end
  in
  match e.twin with
  | Some _ when cl.cfg.Config.lazy_diffing && allow_lazy ->
    (* Lazy diffing (TreadMarks): keep the twin; the diff materializes on
       first request or when the page is written again.  At most one
       interval can be pending per page — the next write fault
       materializes it before re-twinning. *)
    assert (e.pending_diff = None);
    e.pending_diff <- Some (seq, vc);
    reflected_set e ~nprocs:node.nprocs node.id seq;
    e.perm <- Perm.Read_only;
    tlb_reset node;
    None
  | Some twin ->
    (* MW-mode page: eager twin/diff. *)
    let current = frame e in
    let diff = Diff.create ~scratch:(State.scratch node) ~twin ~current () in
    charge cl.cfg.Config.diff_create_ns;
    let bytes = Diff.size_bytes diff in
    let modified = Diff.modified_bytes diff in
    Stats.diff_created cl.stats ~node:node.id ~page:e.page ~bytes ~modified
      ~time:(Engine.now cl.engine);
    if tracing cl then begin
      emit cl ~node:node.id
        (Adsm_trace.Event.Diff_create { page = e.page; seq; bytes; modified });
      emit cl ~node:node.id (Adsm_trace.Event.Twin_free { page = e.page })
    end;
    sink cl node e ~seq ~vc diff;
    e.twin <- None;
    Stats.twin_freed cl.stats ~node:node.id;
    reflected_set e ~nprocs:node.nprocs node.id seq;
    e.perm <- Perm.Read_only;
    tlb_reset node;
    wg_measure modified;
    None
  | None when e.log_writes ->
    (* Software write detection: build the diff from the logged ranges —
       no twin, no page scan; the cost is the per-write logging plus a
       small assembly cost per range. *)
    let diff = Diff.of_ranges e.logged_ranges (frame e) in
    charge
      ((e.logged_count * cl.cfg.Config.write_log_ns)
      + (Diff.run_count diff * 500));
    let bytes = Diff.size_bytes diff in
    let modified = Diff.modified_bytes diff in
    Stats.diff_created cl.stats ~node:node.id ~page:e.page ~bytes ~modified
      ~time:(Engine.now cl.engine);
    if tracing cl then
      emit cl ~node:node.id
        (Adsm_trace.Event.Diff_create { page = e.page; seq; bytes; modified });
    sink cl node e ~seq ~vc diff;
    e.log_writes <- false;
    e.logged_ranges <- [];
    e.logged_count <- 0;
    reflected_set e ~nprocs:node.nprocs node.id seq;
    e.perm <- Perm.Read_only;
    tlb_reset node;
    wg_measure modified;
    None
  | None -> close_clean cl node e ~seq

(* Close the node's current interval: run the protocol's [close_page] on
   every dirty page and append the resulting write notices as a new
   interval.

   The state update is ATOMIC — no suspension point inside — because other
   events (e.g. a lock-forward handler granting a different lock) may run
   interleaved and must observe a consistent interval state.  The total CPU
   cost is passed to [charge] once at the end: in process context it
   sleeps, in event context it becomes added latency on the triggered
   reply. *)
let end_interval cl (module P : Protocol_intf.PROTOCOL) node ~charge =
  let total_cost = ref 0 in
  let charge_later ns = total_cost := !total_cost + ns in
  if node.dirty_pages <> [] then begin
    Vc.tick node.vc ~proc:node.id;
    let vc_snapshot = Vc.copy node.vc in
    let seq = Vc.get node.vc node.id in
    let notices = ref [] in
    let seen = Hashtbl.create 16 in
    let close_page page =
      if not (Hashtbl.mem seen page) then begin
        Hashtbl.add seen page ();
        let e = entry_of node page in
        assert e.dirty;
        e.dirty <- false;
        Stats.note_write cl.stats ~page;
        set_last_notice node e node.id vc_snapshot;
        let version =
          P.close_page cl node e ~seq ~vc:vc_snapshot ~charge:charge_later
        in
        (* Mutation seam (testing only): lose odd pages' write notices —
           the modification happened and was diffed, but nobody is told. *)
        if cl.cfg.Config.mutation <> Some Config.Drop_write_notice
           || page land 1 = 0
        then
          notices :=
            { Notice.page; proc = node.id; seq; vc = vc_snapshot; version }
            :: !notices
      end
    in
    List.iter close_page node.dirty_pages;
    node.dirty_pages <- [];
    let ival =
      Interval.make ~proc:node.id ~vc:node.vc ~notices:(List.rev !notices)
    in
    Interval.Log.append node.intervals.(node.id) ival
  end;
  if !total_cost > 0 then charge !total_cost

(* ------------------------------------------------------------------ *)
(* Notice application (acquire side)                                  *)
(* ------------------------------------------------------------------ *)

let note_concurrent_writers cl node (e : entry) (n : Notice.t) =
  (* Both effects of a detected concurrent writer are idempotent — the
     stats note is a set insert, and flipping an already-active fs mode
     is a no-op — so once the page's false sharing is committed to the
     stats AND (for adaptive protocols) this entry's fs mode is already
     active, the sweep can have no observable effect: skip it.  Under
     deferred stats the membership answer may lag the insert, which only
     means a few more no-op sweeps before the skip kicks in. *)
  if
    (not (Stats.page_false_shared cl.stats ~page:n.page))
    || (Mode.adaptive cl && not e.fs_active)
  then
    (* Plain loop over the entry's sparse writer map: only pages' actual
       writers occupy slots — the former dense scan walked all [nprocs]
       components per notice, an O(nprocs^2) term per barrier at large
       clusters. *)
    for i = 0 to e.nw_len - 1 do
    let q = e.nw_procs.(i) in
    (* O(1) concurrency via the transitive-clock invariant (see
       [Notice.covers]): [q]'s recorded snapshot [m] has [m.(q)] = the
       seq of [q]'s writing interval, so coverage either way is one
       component read. *)
    let m = e.nw_vcs.(i) in
    if
      q <> n.proc
      && Vc.get n.vc q < Vc.get m q
      && Vc.get m n.proc < n.seq
    then begin
      Stats.note_false_sharing cl.stats ~page:n.page;
      if Mode.adaptive cl then Mode.set_fs_active cl ~node:node.id e true
    end
  done

(* Is notice [n]'s modification still missing from this node's copy?
   Plain notices are tracked per applied diff (reflected sequence numbers);
   owner notices by the version the local contents reflect. *)
let notice_relevant node (e : entry) (n : Notice.t) =
  n.proc <> node.id
  &&
  match n.version with
  | Some v -> v > e.content_version
  | None -> n.seq > reflected_get e n.proc

let apply_notice ?(replay = false) cl node (n : Notice.t) =
  let e = entry_of node n.page in
  Stats.note_write cl.stats ~page:n.page;
  note_concurrent_writers cl node e n;
  set_last_notice node e n.proc n.vc;
  if notice_relevant node e n then begin
    (match n.version with
    | Some v ->
      if v > e.version then begin
        e.version <- v;
        e.owner <- n.proc;
        if e.is_owner then
          (* Someone re-established ownership elsewhere (post-GC). *)
          e.is_owner <- false
      end;
      (* On-the-fly garbage collection: notices covered by an owner write
         notice are reflected in the owner's copy and can be discarded. *)
      e.notices <- List.filter (fun m -> not (Notice.covers ~by:n m)) e.notices;
      (* Rule 2 (Section 3.1.2): a fresh owner notice with no concurrent
         secondary notices means false sharing has stopped.  Our own recent
         writes count as secondary notices here: an owner notice concurrent
         with them does NOT end the false sharing. *)
      let own_concurrent =
        match last_notice node e node.id with
        | Some v ->
          Vc.get n.vc node.id < Vc.get v node.id
          && Vc.get v n.proc < n.seq
        | None -> false
      in
      if
        Mode.adaptive cl && (not own_concurrent)
        && not
             (List.exists
                (fun (m : Notice.t) ->
                  m.proc <> n.proc && Notice.concurrent m n)
                e.notices)
      then Mode.set_fs_active cl ~node:node.id e false
    | None -> ());
    (* Steady state cannot deliver a pending notice twice: a notice
       belongs to exactly one interval, and the freshness guard applies
       each interval at most once per node.  Only crash-recovery replay
       ([replay]) re-walks intervals a durable page may already hold
       pending notices from — the duplicate scan is confined to it. *)
    if (not replay) || not (List.exists (Notice.same_write n) e.notices)
    then e.notices <- n :: e.notices;
    if Perm.allows_read e.perm then begin
      e.perm <- Perm.No_access;
      tlb_reset node
    end
  end

(* Apply intervals received on a lock grant or barrier release, oldest
   first; duplicates (already covered by our vector clock) are skipped. *)
let apply_intervals ?(replay = false) cl node ivals =
  let fresh =
    List.filter
      (fun (iv : Interval.t) -> iv.seq > Vc.get node.vc iv.proc)
      ivals
  in
  let fresh =
    List.sort (fun (a : Interval.t) b -> Vc.order a.vc b.vc) fresh
  in
  let apply (iv : Interval.t) =
    if iv.seq > Vc.get node.vc iv.proc then begin
      Interval.Log.append node.intervals.(iv.proc) iv;
      List.iter (apply_notice ~replay cl node) iv.notices;
      (* The full clock merge reduces to advancing the sender component.
         Interval chains are transitively complete: a dependency of [iv]
         — [p]'s interval [iv.vc.(p)] — is either already covered here
         (its retention site GC'd it only once every node covered it) or
         rides the same chain with a dominated timestamp, hence was just
         applied ([Vc.order] extends happened-before).  Either way every
         component of [iv.vc] except [iv.proc]'s is at or below ours by
         the time [iv] applies, and that one is exactly [iv.seq]. *)
      Vc.set node.vc iv.proc iv.seq
    end
  in
  List.iter apply fresh

(* All intervals this node knows that [vc] does not cover. *)
let collect_unseen cl node vc =
  (* Walk the per-processor logs newest-proc-last so the accumulated
     list keeps each log's newest-first orientation; every consumer
     sorts by [Vc.order] before applying, so only the SET matters. *)
  let acc = ref [] in
  for p = cl.cfg.Config.nprocs - 1 downto 0 do
    acc := Interval.Log.unseen_by vc ~proc:p node.intervals.(p) !acc
  done;
  !acc

(* ------------------------------------------------------------------ *)
(* Page validation (access-miss side)                                 *)
(* ------------------------------------------------------------------ *)

let still_needed = notice_relevant

(* Install a received page copy as the new base of the local frame. *)
let install_copy cl node e ~data ~version ~committed ~reflected =
  (* A lazily-pending diff lives only in the frame we are about to
     overwrite: materialize it first or the interval's writes are lost. *)
  materialize_now cl node e;
  Proc.sleep cl.engine cl.cfg.Config.page_install_ns;
  Page.blit ~src:data ~dst:(frame e);
  e.has_base <- true;
  if version > e.version then e.version <- version;
  (* Only the version whose interval the copy fully contains dominates
     owner write notices; a dirty owner's current frame holds a PARTIAL
     newer interval that must not be claimed. *)
  if committed > e.content_version then e.content_version <- committed;
  if committed > e.committed_version then e.committed_version <- committed;
  e.reflected <- Array.copy reflected;
  e.notices <- List.filter (still_needed node e) e.notices

(* Fetch (in parallel, one request per writer) and apply, in timestamp
   order, every pending diff for the page.  Runs in process context. *)
let fetch_and_apply_diffs cl node (e : entry) =
  let pending = List.filter (still_needed node e) e.notices in
  let plain = List.filter (fun n -> not (Notice.is_owner n)) pending in
  (* Own committed modifications not reflected in the (possibly freshly
     installed) base copy must be merged back from our own diffs. *)
  (* A lazily-pending own diff must be materialized BEFORE any remote diff
     touches the frame: the diff is computed twin-vs-frame, and foreign
     words applied first would be captured into it at a stale position in
     the timestamp order. *)
  materialize_now cl node e;
  let own_missing =
    List.filter (fun seq -> seq > reflected_get e node.id) e.own_diff_seqs
  in
  if plain <> [] || own_missing <> [] then begin
    (* Group the missing diffs by their writer. *)
    let by_writer = Hashtbl.create 8 in
    let record (n : Notice.t) =
      if not (Hashtbl.mem node.diffs (n.page, n.proc, n.seq)) then begin
        let prev =
          Option.value ~default:[] (Hashtbl.find_opt by_writer n.proc)
        in
        Hashtbl.replace by_writer n.proc (n.seq :: prev)
      end
    in
    List.iter record plain;
    let requests =
      Hashtbl.fold
        (fun writer seqs acc ->
          let msg =
            Msg.Diff_req
              {
                page = e.page;
                seqs = List.sort compare seqs;
                sees_sw = Mode.sees_page_as_sw e;
              }
          in
          let ivar =
            Rpc.call_async cl.rpc ~src:node.id ~dst:writer
              ~bytes:(Msg.size_bytes msg) ~kind:(Msg.kind msg) msg
          in
          (writer, ivar) :: acc)
        by_writer []
    in
    (* Await the replies and store the received diffs. *)
    List.iter
      (fun (writer, ivar) ->
        match Proc.Ivar.await ivar with
        | Msg.Diff_reply { page; diffs } ->
          List.iter
            (fun (seq, vc, diff) ->
              Hashtbl.replace node.diffs (page, writer, seq) (vc, diff);
              Stats.diff_stored cl.stats ~node:node.id
                ~bytes:(Diff.size_bytes diff)
                ~time:(Engine.now cl.engine))
            diffs
        | _ -> failwith "Proto: unexpected reply to Diff_req")
      requests;
    (* Apply every pending diff — remote and our own — in timestamp order. *)
    let lookup proc seq =
      match Hashtbl.find_opt node.diffs (e.page, proc, seq) with
      | Some (vc, diff) -> (vc, diff, proc, seq)
      | None ->
        failwith
          (Printf.sprintf "Proto: missing diff for page %d proc %d seq %d"
             e.page proc seq)
    in
    let to_apply =
      List.map (fun (n : Notice.t) -> lookup n.proc n.seq) plain
      @ List.map (fun seq -> lookup node.id seq) own_missing
    in
    let to_apply =
      List.sort (fun (va, _, _, _) (vb, _, _, _) -> Vc.order va vb) to_apply
    in
    let target = frame e in
    List.iter
      (fun (_, diff, proc, seq) ->
        Proc.sleep cl.engine
          (cl.cfg.Config.diff_apply_base_ns
          + (Diff.modified_bytes diff * cl.cfg.Config.diff_apply_byte_ns));
        (* Mutation seam (testing only): skip the memory effect of remote
           diffs while keeping every cost, message and bookkeeping step, so
           only the consistency oracle can tell the difference. *)
        if cl.cfg.Config.mutation <> Some Config.Skip_diff_apply
           || proc = node.id
        then Diff.apply diff target;
        if tracing cl then
          emit cl ~node:node.id
            (Adsm_trace.Event.Diff_apply { page = e.page; writer = proc; seq });
        if seq > reflected_get e proc then reflected_set e ~nprocs:node.nprocs proc seq)
      to_apply
  end;
  e.notices <- []

(* Make the page readable: fetch a base copy if needed (from the processor
   named in the owner write notice with the highest version, or from the
   copy-fetch hint), then fetch and apply pending diffs.  Used by every
   protocol except HLRC, whose homes serve whole current pages instead. *)
let validate cl node (e : entry) =
  if not (Perm.allows_read e.perm) then begin
    let pending = List.filter (still_needed node e) e.notices in
    let owner_notices = List.filter Notice.is_owner pending in
    (* The local frame (or the implicit initial zero page) is a valid diff
       base; a whole-page fetch is needed only after a GC dropped the copy,
       or when an owner write notice says a fresher whole-page copy exists. *)
    let need_base = not e.has_base || owner_notices <> [] in
    if need_base then begin
      let target =
        match owner_notices with
        | [] -> e.owner
        | ns ->
          let best =
            List.fold_left
              (fun (acc : Notice.t) (n : Notice.t) ->
                match (acc.version, n.version) with
                | Some va, Some vb -> if vb > va then n else acc
                | _ -> acc)
              (List.hd ns) (List.tl ns)
          in
          best.proc
      in
      if target = node.id then
        failwith
          (Printf.sprintf
             "Proto: node %d needs a base for page %d but is its own fetch \
              hint"
             node.id e.page)
      else begin
        match call cl ~src:node.id ~dst:target (Msg.Page_req { page = e.page }) with
        | Msg.Page_reply { data; version; committed; reflected; _ } ->
          install_copy cl node e ~data ~version ~committed ~reflected
        | _ -> failwith "Proto: unexpected reply to Page_req"
      end
    end;
    fetch_and_apply_diffs cl node e;
    e.perm <- Perm.Read_only
  end

(* ------------------------------------------------------------------ *)
(* Write-side helpers                                                 *)
(* ------------------------------------------------------------------ *)

let mark_dirty node (e : entry) =
  e.perm <- Perm.Read_write;
  if not e.dirty then begin
    e.dirty <- true;
    node.dirty_pages <- e.page :: node.dirty_pages
  end

let make_twin cl node (e : entry) =
  let pending_cost = materialize_pending_diff cl node e in
  if pending_cost > 0 then Proc.sleep cl.engine pending_cost;
  assert (e.twin = None);
  Proc.sleep cl.engine cl.cfg.Config.twin_ns;
  e.twin <- Some (Page.copy (frame e));
  Stats.twin_created cl.stats ~node:node.id;
  if tracing cl then
    emit cl ~node:node.id (Adsm_trace.Event.Twin_create { page = e.page })

(* Become (or re-become) owner locally: bump the version, as ownership is
   being (re)acquired (Section 2.3). *)
let acquire_ownership_locally cl node (e : entry) =
  (* Entering SW mode: the page will be written without a twin, so any
     lazily-pending diff must be captured now. *)
  materialize_now cl node e;
  e.version <- e.version + 1;
  e.content_version <- e.version;
  e.is_owner <- true;
  e.owner <- node.id;
  e.owned_at <- Engine.now cl.engine

(* MW-mode write path: valid copy + twin (or, with software write
   detection enabled, a write log instead of a twin). *)
let mw_write_path cl node (e : entry) =
  validate cl node e;
  if cl.cfg.Config.write_ranges then begin
    (* The pending lazy diff (if any) still needs its twin captured. *)
    let cost = materialize_pending_diff cl node e in
    if cost > 0 then Proc.sleep cl.engine cost;
    e.log_writes <- true;
    (* A cached writable slot would bypass the write log. *)
    tlb_reset node
  end
  else make_twin cl node e;
  mark_dirty node e

(* ------------------------------------------------------------------ *)
(* Server-side page and diff service (event context: never block)     *)
(* ------------------------------------------------------------------ *)

let serve_page cl node ~src page respond =
  let e = entry_of node page in
  copyset_add e ~nprocs:node.nprocs src;
  match committed_copy e with
  | None ->
    failwith
      (Printf.sprintf
         "Proto: node %d has no copy of page %d to serve (src=%d perm=%s \
          owner=%d version=%d is_owner=%b notices=%d)"
         node.id page src
         (Perm.to_string e.perm)
         e.owner e.version e.is_owner
         (List.length e.notices))
  | Some copy ->
    respond_msg cl node respond
      (Msg.Page_reply
         {
           page;
           data = Page.copy copy;
           version = e.version;
           committed = e.committed_version;
           reflected = reflected_copy e ~nprocs:node.nprocs;
         })

(* Serve a diff request.  [rule1] enables the adaptive protocols' copyset
   scan (Section 3.1.2, rule 1): if every processor in the approximate
   copyset sees the page as SW, false sharing has stopped. *)
let serve_diffs ?(rule1 = false) cl node ~src ~page ~seqs ~sees_sw respond =
  let e = entry_of node page in
  (* Lazy diffing: the requested interval may still be pending; create the
     diff now and charge its cost as added latency on the reply. *)
  let delay = materialize_pending_diff cl node e in
  let respond =
    if delay = 0 then respond
    else fun ~bytes ~kind msg ->
      Engine.schedule cl.engine ~delay (fun () -> respond ~bytes ~kind msg)
  in
  copyset_add e ~nprocs:node.nprocs src;
  fs_view_set e ~nprocs:node.nprocs src sees_sw;
  if rule1 then begin
    let all_sw = ref true in
    copyset_iter e (fun q -> if not (fs_view_get e q) then all_sw := false);
    if !all_sw then Mode.set_fs_active cl ~node:node.id e false
  end;
  let diffs =
    List.map
      (fun seq ->
        match Hashtbl.find_opt node.diffs (page, node.id, seq) with
        | Some (vc, diff) -> (seq, vc, diff)
        | None ->
          failwith
            (Printf.sprintf "Proto: node %d asked for missing diff %d/%d"
               node.id page seq))
      seqs
  in
  respond_msg cl node respond (Msg.Diff_reply { page; diffs })
