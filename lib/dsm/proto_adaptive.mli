(** The adaptive protocols WFS and WFS+WG (paper Section 3): per-page
    adaptation between single- and multiple-writer mode driven by the
    ownership-refusal protocol, plus the write-granularity rule and the
    migratory-detection extension. *)

include Protocol_intf.PROTOCOL
