(** Fixed-size work pool over OCaml domains.

    Every simulation the harness launches is deterministic and fully
    independent (see DESIGN.md, "Domain safety"), so suites parallelize
    by replication: [map ~jobs f items] evaluates [f] on every item
    using at most [jobs] worker domains and returns the results in input
    order — the output is indistinguishable from [List.map f items].

    Guarantees:

    - {b Deterministic ordering}: results are collected by input index;
      scheduling never reorders them.  This holds with or without
      [?weight] — the weight changes only the order in which tasks
      {e start}.
    - {b Exception propagation}: if one or more applications of [f]
      raise, every remaining task still runs to completion, every worker
      domain is joined (no orphaned domains), and then the exception of
      the {e lowest-indexed} failing item is re-raised in the caller
      with its original backtrace — deterministic regardless of which
      worker hit it first.
    - {b Oversubscription}: [items] may far exceed [jobs]; at most
      [min jobs (length items)] domains exist at any moment, pulling
      tasks from a shared atomic counter.
    - [jobs = 1] (the default) runs everything in the calling domain,
      with no domain spawned at all — the exact sequential code path.

    [f] must be safe to run on a non-main domain and must not share
    mutable state across items; {!Runner.run} satisfies this contract. *)

(** The machine's recommended domain count
    ([Domain.recommended_domain_count]), the CLI default for [--jobs]. *)
val default_jobs : unit -> int

(** [map ~jobs ?weight f items] is [List.map f items], evaluated by up
    to [jobs] domains.

    [weight] gives the expected relative cost of an item (any monotone
    unit — expected wall nanoseconds, event counts...).  When present,
    workers claim tasks heaviest-first (longest-processing-time order)
    instead of input order, which keeps one slow task started late from
    setting the suite's critical path.  Ties break on input index, so
    dispatch order is deterministic; with [jobs = 1] the weight is
    ignored and the exact sequential path runs.
    @raise Invalid_argument if [jobs < 1]. *)
val map : ?jobs:int -> ?weight:('a -> int) -> ('a -> 'b) -> 'a list -> 'b list
