(** Node-count scaling study: 8 to 1024 simulated nodes, flat
    fabric/central barrier vs 2-level tree fabric/combining barrier, at
    tiny scale (the study varies the cluster, not the problem size).

    See EXPERIMENTS.md, "Running a scaling sweep". *)

type fabric =
  | Flat_central  (** the paper's fabric: flat network, manager barrier *)
  | Tree_combining
      (** large-cluster configuration: 2-level switched tree, combining
          tree barrier (fanout 4), lock homes sharded one per switch,
          sparse vector-clock cost accounting *)

val fabric_name : fabric -> string

(** Configuration tweak selecting a fabric: [Flat_central] is the
    identity, [Tree_combining] switches on the 2-level tree topology,
    the combining barrier, sharded lock homes and sparse vector-clock
    accounting.  Exposed so the bench harness prices the same two
    configurations the study compares. *)
val tweak_of_fabric : fabric -> Adsm_dsm.Config.t -> Adsm_dsm.Config.t

type row = {
  app : string;
  protocol : Adsm_dsm.Config.protocol;
  nprocs : int;
  fabric : fabric;
  time_ns : int;
  speedup : float;
  messages : int;
  barrier_msgs : int;
  wire_bytes : int;
  checksum : float;
}

type study = { smoke : bool; max_nodes : int; rows : row list }

(** Run the grid.  [smoke] (default false) restricts to the CI subset
    (SOR, MW + WFS, sparse node grid — about a minute of wall clock).
    [max_nodes] (default 1024) truncates the node grid; every app sweeps
    the full grid except 3D-FFT, structurally capped at 64 nodes (its
    tiny problem has 64 planes).  [jobs] fans the independent runs over
    worker domains, dispatched heaviest-cell-first; the returned rows
    are in grid order regardless.  [par] (default 1) runs each cell on
    the conservative parallel engine with that many domains —
    behavior-neutral (identical rows, checksums and bounds; see
    PARALLELISM.md), host wall-clock only; don't combine with
    [jobs > 1] on a small host.  [apps] restricts the sweep to the named
    applications (any case), overriding the [smoke]/default app list.
    @raise Invalid_argument on an unknown app name. *)
val collect :
  ?smoke:bool ->
  ?max_nodes:int ->
  ?jobs:int ->
  ?par:int ->
  ?apps:string list ->
  unit ->
  study

(** Cells where the flat and tree fabrics disagree on the application
    checksum (must be empty: the fabric is a cost model only). *)
val checksum_mismatches : study -> string list

(** Tree-fabric cells whose barrier message count exceeds
    [4 * rounds * n * ceil(log2 n)] (must be empty; guards against
    reintroducing an all-to-all or a per-node fan-in). *)
val barrier_bound_violations : study -> string list

(** Simulated-time and protocol-crossover text tables. *)
val render : study -> string

val crossover : study -> string

(** Machine-readable artifact (one object per row). *)
val to_json : study -> string
