module Config = Adsm_dsm.Config
module Dsm = Adsm_dsm.Dsm
module Stats = Adsm_dsm.Stats
module Registry = Adsm_apps.Registry
module Series = Adsm_sim.Series

type measurement = {
  app : string;
  protocol : Config.protocol;
  nprocs : int;
  scale : Registry.scale;
  time_ns : int;
  messages : int;
  data_bytes : int;
  wire_bytes : int;
  own_requests : int;
  own_refusals : int;
  twins_created : int;
  twin_bytes : int;
  diffs_created : int;
  diff_bytes : int;
  gc_runs : int;
  mode_switches : int;
  shared_pages : int;
  pages_written : int;
  pages_false_shared : int;
  mean_diff_bytes : float;
  read_faults : int;
  write_faults : int;
  checksum : float;
  by_kind : (string * (int * int)) list;  (* kind -> (messages, bytes) *)
  live_diff_series : (int * float) list;
  events : int;
  compute_ns : int;
  fault_time_ns : int;
  lock_time_ns : int;
  barrier_time_ns : int;
}

let run ?(seed = 0x5EEDL) ?(tweak = Fun.id) ?faults ?engine ?tracer ?recorder
    ~(app : Registry.entry) ~protocol ~nprocs ~scale () =
  let cfg = tweak (Config.make ~seed ~protocol ~nprocs ()) in
  (* [faults] and [engine] are applied after [tweak]: [faults] so a CLI
     --faults flag composes with any tweak, [engine] because the
     execution mode is a harness concern (wall-clock only), never part
     of a study's configuration. *)
  let cfg =
    match faults with None -> cfg | Some s -> { cfg with Config.faults = Some s }
  in
  let cfg =
    match engine with None -> cfg | Some e -> { cfg with Config.engine = e }
  in
  let t = Dsm.create cfg in
  let program, result = app.Registry.instantiate scale t in
  let report = Dsm.run ?tracer ?recorder t program in
  let stats = report.Dsm.stats in
  {
    app = app.Registry.name;
    protocol;
    nprocs;
    scale;
    time_ns = report.Dsm.time_ns;
    messages = report.Dsm.messages;
    data_bytes = report.Dsm.payload_bytes;
    wire_bytes = report.Dsm.wire_bytes;
    own_requests = Stats.ownership_requests stats;
    own_refusals = Stats.ownership_refusals stats;
    twins_created = Stats.twins_created_total stats;
    twin_bytes = Stats.twin_bytes_total stats;
    diffs_created = Stats.diffs_created_total stats;
    diff_bytes = Stats.diff_bytes_total stats;
    gc_runs = Stats.gc_count stats;
    mode_switches = Stats.mode_switches stats;
    shared_pages = report.Dsm.shared_pages;
    pages_written = Stats.pages_written stats;
    pages_false_shared = Stats.pages_false_shared stats;
    mean_diff_bytes = Stats.mean_diff_size stats;
    read_faults = Stats.read_faults stats;
    write_faults = Stats.write_faults stats;
    checksum = result ();
    by_kind = report.Dsm.by_kind;
    live_diff_series = Series.to_list (Stats.live_diff_series stats);
    events = report.Dsm.events;
    compute_ns = Stats.total_time stats ~category:Stats.Compute;
    fault_time_ns = Stats.total_time stats ~category:Stats.Fault;
    lock_time_ns = Stats.total_time stats ~category:Stats.Lock;
    barrier_time_ns = Stats.total_time stats ~category:Stats.Barrier;
  }

(* The sequential-baseline cache is the one cross-run mutable global in
   the harness; [Pool] workers reach it through [speedup], so every
   access goes through a mutex.  The simulation itself runs outside the
   lock: two domains may race to fill the same key, but the run is
   deterministic, so both write the identical value. *)
let seq_cache : (string * Registry.scale, int) Hashtbl.t = Hashtbl.create 16

let seq_cache_mutex = Mutex.create ()

let sequential_time_ns ~(app : Registry.entry) ~scale =
  let key = (app.Registry.name, scale) in
  let cached =
    Mutex.protect seq_cache_mutex (fun () -> Hashtbl.find_opt seq_cache key)
  in
  match cached with
  | Some t -> t
  | None ->
    let m = run ~app ~protocol:Config.Sw ~nprocs:1 ~scale () in
    Mutex.protect seq_cache_mutex (fun () ->
        Hashtbl.replace seq_cache key m.time_ns);
    m.time_ns

let speedup m =
  match
    List.find_opt (fun e -> e.Registry.name = m.app) Registry.all
  with
  | None -> invalid_arg ("Runner.speedup: unknown app " ^ m.app)
  | Some app ->
    let seq = sequential_time_ns ~app ~scale:m.scale in
    float_of_int seq /. float_of_int m.time_ns
