(** Ablation and sensitivity studies for the design choices the paper
    fixes by measurement or assertion:

    - the SW ownership quantum ("results do not appear to be sensitive to
      the exact value", Section 2.3);
    - the WFS+WG write-granularity threshold ("results are not very
      dependent on the exact value", Section 3.2);
    - the network cost model (the paper's tradeoffs are tied to a 1997
      ATM cluster; a modern-network model shifts them);
    - the migratory-detection extension the paper sketches in Section 7;
    - processor-count scaling (the paper reports 8 processors only).

    Each function runs the study and returns a rendered table.  Every
    study is a grid of independent simulations; [jobs] (default 1) fans
    the grid out over that many worker domains via {!Pool} with
    bit-identical tables for any value. *)

val quantum : ?jobs:int -> unit -> string

val threshold : ?jobs:int -> unit -> string

val network : ?jobs:int -> unit -> string

val migratory : ?jobs:int -> unit -> string

val lazydiff : ?jobs:int -> unit -> string

val writeranges : ?jobs:int -> unit -> string

val hlrc : ?jobs:int -> unit -> string

val scaling : ?jobs:int -> unit -> string

val names : string list

val run : ?jobs:int -> string -> string option
(** [run name] executes one study by name. *)

val run_all : ?jobs:int -> unit -> string
