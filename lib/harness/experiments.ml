module Config = Adsm_dsm.Config
module Dsm = Adsm_dsm.Dsm
module Stats = Adsm_dsm.Stats
module Registry = Adsm_apps.Registry

type suite = {
  scale : Registry.scale;
  nprocs : int;
  tweak : Config.t -> Config.t;
      (* configuration post-processing (e.g. a non-default network or
         topology from the CLI), re-applied by artifacts that make their
         own dedicated runs *)
  engine : Config.engine_mode option;
      (* event-engine mode for every run (wall-clock only; None = default
         Sequential), also re-applied by dedicated artifact runs *)
  measurements : Runner.measurement list;
}

let selected_apps = function
  | None -> Registry.all
  | Some names ->
    List.filter_map
      (fun n ->
        match Registry.find n with
        | Some e -> Some e
        | None -> invalid_arg ("Experiments: unknown application " ^ n))
      names

let collect ?apps ?(scale = Registry.Default) ?(nprocs = 8) ?(jobs = 1)
    ?(tweak = Fun.id) ?engine () =
  let apps = selected_apps apps in
  let cells =
    List.concat_map
      (fun app -> List.map (fun protocol -> (app, protocol)) Config.all_protocols)
      apps
  in
  (* Every (app, protocol) cell is an independent deterministic
     simulation; [Pool.map] preserves the sequential result order, so the
     suite is identical for any [jobs]. *)
  let measurements =
    Pool.map ~jobs
      (fun (app, protocol) ->
        Runner.run ~tweak ?engine ~app ~protocol ~nprocs ~scale ())
      cells
  in
  { scale; nprocs; tweak; engine; measurements }

let find suite ~app ~protocol =
  List.find_opt
    (fun (m : Runner.measurement) -> m.app = app && m.protocol = protocol)
    suite.measurements

let get suite ~app ~protocol =
  match find suite ~app ~protocol with
  | Some m -> m
  | None ->
    invalid_arg
      (Printf.sprintf "Experiments: no measurement for %s/%s" app
         (Config.protocol_name protocol))

let apps_of suite =
  List.filter
    (fun (e : Registry.entry) ->
      find suite ~app:e.Registry.name ~protocol:Config.Mw <> None)
    Registry.all

let seconds ns = Printf.sprintf "%.3f" (float_of_int ns /. 1e9)

(* ------------------------------------------------------------------ *)
(* Table 1                                                            *)
(* ------------------------------------------------------------------ *)

let table1 suite =
  let rows =
    List.map
      (fun (e : Registry.entry) ->
        let seq = Runner.sequential_time_ns ~app:e ~scale:suite.scale in
        [
          e.Registry.name;
          e.Registry.data_desc suite.scale;
          e.Registry.sync;
          seconds seq;
          Printf.sprintf "%.1f" e.Registry.paper_seq_s;
        ])
      (apps_of suite)
  in
  Tables.render
    ~title:
      "Table 1: applications, input sizes, synchronization, sequential time\n\
       (simulated seconds at scaled inputs; paper column is the authors'\n\
       SPARC-20 seconds at full inputs - only relative magnitudes are\n\
       comparable)"
    ~header:[ "Program"; "Input"; "Sync"; "Seq time (s)"; "Paper (s)" ]
    rows

(* ------------------------------------------------------------------ *)
(* Table 2                                                            *)
(* ------------------------------------------------------------------ *)

let granularity_class mean =
  if mean <= 0. then "large"
    (* no diffs at all: whole-page owner transfers *)
  else if mean > 3072. then "large"
  else if mean > 1024. then "med-large"
  else if mean > 256. then "medium"
  else "small"

let table2 suite =
  let rows =
    List.map
      (fun (e : Registry.entry) ->
        let m = get suite ~app:e.Registry.name ~protocol:Config.Mw in
        let fs_pct =
          if m.pages_written = 0 then 0.
          else
            100.
            *. float_of_int m.pages_false_shared
            /. float_of_int m.pages_written
        in
        [
          e.Registry.name;
          granularity_class m.mean_diff_bytes;
          Printf.sprintf "%.0f" m.mean_diff_bytes;
          Printf.sprintf "%.1f" fs_pct;
          e.Registry.paper_wg;
          Printf.sprintf "%.1f" e.Registry.paper_fs_pct;
        ])
      (apps_of suite)
  in
  Tables.render
    ~title:
      "Table 2: write granularity and write-write falsely shared pages\n\
       (measured under MW; \"% WW-FS\" is falsely shared pages over written\n\
       pages)"
    ~header:
      [
        "Program";
        "Granularity";
        "Mean diff (B)";
        "% WW-FS";
        "Paper gran.";
        "Paper % WW-FS";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* Figure 1                                                           *)
(* ------------------------------------------------------------------ *)

(* Run one micro access pattern under WFS and summarize the protocol
   actions, mirroring the narrative of the paper's Figure 1. *)
let micro_scenario name program =
  let cfg = Config.make ~protocol:Config.Wfs ~nprocs:2 () in
  let t = Dsm.create cfg in
  let a = Dsm.alloc_f64 t ~name:"page" ~len:512 in
  let report = Dsm.run t (fun ctx -> program ctx a) in
  let s = report.Dsm.stats in
  Printf.sprintf
    "%-18s  own-req %d  refused %d  twins %d  diffs %d  page-req msgs %s\n"
    name
    (Stats.ownership_requests s)
    (Stats.ownership_refusals s)
    (Stats.twins_created_total s)
    (Stats.diffs_created_total s)
    (match List.assoc_opt "page" report.Dsm.by_kind with
    | Some (n, _) -> string_of_int n
    | None -> "0")

let figure1 () =
  let producer_consumer ctx a =
    for _ = 1 to 3 do
      if Dsm.me ctx = 0 then
        for i = 0 to 511 do
          Dsm.f64_set ctx a i 1.0
        done;
      Dsm.barrier ctx;
      if Dsm.me ctx = 1 then ignore (Dsm.f64_get ctx a 0);
      Dsm.barrier ctx
    done
  in
  let migratory ctx a =
    for _ = 1 to 3 do
      (* each processor in turn reads then overwrites the page *)
      for turn = 0 to 1 do
        if Dsm.me ctx = turn then begin
          ignore (Dsm.f64_get ctx a 0);
          for i = 0 to 511 do
            Dsm.f64_set ctx a i 2.0
          done
        end;
        Dsm.barrier ctx
      done
    done
  in
  let false_sharing ctx a =
    let base = Dsm.me ctx * 256 in
    for _ = 1 to 3 do
      for i = base to base + 255 do
        Dsm.f64_set ctx a i 3.0
      done;
      Dsm.barrier ctx
    done
  in
  "Figure 1: WFS behaviour on the three canonical access patterns\n\
   (producer-consumer and migratory keep the page in SW mode - ownership\n\
   is granted, no twins; write-write false sharing triggers an ownership\n\
   refusal and a switch to MW mode - twins and diffs appear)\n\n"
  ^ micro_scenario "producer-consumer" producer_consumer
  ^ micro_scenario "migratory" migratory
  ^ micro_scenario "write-write FS" false_sharing
  ^ "\n"

(* ------------------------------------------------------------------ *)
(* Figure 2                                                           *)
(* ------------------------------------------------------------------ *)

let figure2 suite =
  let header =
    [ "Program" ]
    @ List.map Config.protocol_name Config.all_protocols
    @ [ Printf.sprintf "speedup bars (0..%d)" suite.nprocs ]
  in
  let rows =
    List.map
      (fun (e : Registry.entry) ->
        let sp protocol =
          Runner.speedup (get suite ~app:e.Registry.name ~protocol)
        in
        let cells =
          List.map
            (fun p -> Printf.sprintf "%.2f" (sp p))
            Config.all_protocols
        in
        let bars =
          String.concat " "
            (List.map
               (fun p ->
                 Tables.bar ~width:8 ~value:(sp p)
                   ~max:(float_of_int suite.nprocs))
               Config.all_protocols)
        in
        (e.Registry.name :: cells) @ [ bars ])
      (apps_of suite)
  in
  Tables.render
    ~title:
      (Printf.sprintf
         "Figure 2: speedup on %d processors (protocols in paper order: MW, \
          WFS+WG, WFS, SW)"
         suite.nprocs)
    ~header rows

(* ------------------------------------------------------------------ *)
(* Table 3                                                            *)
(* ------------------------------------------------------------------ *)

let table3 suite =
  let memory_protocols = [ Config.Mw; Config.Wfs_wg; Config.Wfs ] in
  let rows =
    List.concat_map
      (fun (e : Registry.entry) ->
        List.mapi
          (fun i protocol ->
            let m = get suite ~app:e.Registry.name ~protocol in
            [
              (if i = 0 then e.Registry.name else "");
              Config.protocol_name protocol;
              Tables.mb m.twin_bytes;
              Tables.mb m.diff_bytes;
              Tables.mb (m.twin_bytes + m.diff_bytes);
            ])
          memory_protocols)
      (apps_of suite)
  in
  Tables.render
    ~title:
      "Table 3: memory consumption (cumulative twin and diff space, MB);\n\
       SW uses neither twins nor diffs"
    ~header:[ "Program"; "Protocol"; "Twins"; "Diffs"; "Total" ]
    rows

(* ------------------------------------------------------------------ *)
(* Table 4                                                            *)
(* ------------------------------------------------------------------ *)

let table4 suite =
  let rows =
    List.concat_map
      (fun (e : Registry.entry) ->
        List.mapi
          (fun i protocol ->
            let m = get suite ~app:e.Registry.name ~protocol in
            [
              (if i = 0 then e.Registry.name else "");
              Config.protocol_name protocol;
              Tables.thousands m.messages;
              Tables.thousands m.own_requests;
              Tables.mb m.data_bytes;
            ])
          Config.all_protocols)
      (apps_of suite)
  in
  Tables.render
    ~title:
      "Table 4: messages (10^3), ownership requests (10^3) and data (MB)\n\
       exchanged"
    ~header:[ "Program"; "Protocol"; "Msgs"; "Own req"; "Data" ]
    rows

(* ------------------------------------------------------------------ *)
(* Figure 3                                                           *)
(* ------------------------------------------------------------------ *)

let figure3 suite =
  let app = "3D-FFT" in
  let protocols = [ Config.Mw; Config.Wfs_wg; Config.Wfs ] in
  match find suite ~app ~protocol:Config.Mw with
  | None -> "Figure 3: (3D-FFT not in the selected application set)\n"
  | Some _ ->
    (* Dedicated runs with the garbage-collection threshold scaled to the
       smaller data set (the paper's 1 MB per processor went with a 4 MB
       array; our default grid is 16x smaller), so the characteristic MW
       sawtooth appears within the six iterations. *)
    let entry =
      match Registry.find app with Some e -> e | None -> assert false
    in
    let tweak cfg = suite.tweak { cfg with Config.gc_threshold_bytes = 131_072 } in
    let runs =
      List.map
        (fun p ->
          ( p,
            Runner.run ~tweak ?engine:suite.engine ~app:entry ~protocol:p
              ~nprocs:suite.nprocs ~scale:suite.scale () ))
        protocols
    in
    let t_end =
      List.fold_left
        (fun acc (_, (m : Runner.measurement)) -> max acc m.time_ns)
        1 runs
    in
    let sampled =
      List.map
        (fun (p, (m : Runner.measurement)) ->
          let series = Adsm_sim.Series.create ~name:"d" in
          List.iter
            (fun (time, value) ->
              Adsm_sim.Series.record series ~time ~value)
            m.live_diff_series;
          ( Config.protocol_name p,
            Adsm_sim.Series.resample series ~buckets:72 ~t_end ))
        runs
    in
    "Figure 3: total live diffs over time, 3D-FFT (each drop in the MW\n\
     curve is a garbage collection; WFS makes almost no diffs; WFS+WG\n\
     stops diffing once every page's granularity is measured)\n\n"
    ^ Tables.series_plot ~width:72 ~height:7 sampled
    ^ "\n"

(* ------------------------------------------------------------------ *)
(* Execution-time breakdown (beyond the paper)                        *)
(* ------------------------------------------------------------------ *)

let breakdown suite =
  let rows =
    List.concat_map
      (fun (e : Registry.entry) ->
        List.mapi
          (fun i protocol ->
            let m = get suite ~app:e.Registry.name ~protocol in
            let total =
              float_of_int (m.Runner.time_ns * suite.nprocs) /. 100.
            in
            let pct ns = Printf.sprintf "%.0f" (float_of_int ns /. total) in
            let other =
              (m.Runner.time_ns * suite.nprocs)
              - m.Runner.compute_ns - m.Runner.fault_time_ns
              - m.Runner.lock_time_ns - m.Runner.barrier_time_ns
            in
            [
              (if i = 0 then e.Registry.name else "");
              Config.protocol_name protocol;
              pct m.Runner.compute_ns;
              pct m.Runner.fault_time_ns;
              pct m.Runner.lock_time_ns;
              pct m.Runner.barrier_time_ns;
              pct other;
            ])
          Config.all_protocols)
      (apps_of suite)
  in
  Tables.render
    ~title:
      "Execution-time breakdown (beyond the paper): percentage of total
       processor-time spent computing, servicing page faults (including
       twin/diff work), acquiring locks, and waiting at barriers
       (including garbage collection); the remainder is load imbalance
       and local protocol bookkeeping."
    ~header:
      [ "Program"; "Protocol"; "%comp"; "%fault"; "%lock"; "%barrier"; "%other" ]
    rows

(* ------------------------------------------------------------------ *)
(* Survivability study (FAULTS.md; EXPERIMENTS.md appendix)           *)
(* ------------------------------------------------------------------ *)

(* Crash schedules are derived per cell from the fault-free duration so
   the crashes always land mid-computation regardless of application or
   scale: [count] crashes split the run evenly (nodes 1, 2, ... so the
   barrier manager at node 0 keeps its simpler fast path exercised by
   the app suite elsewhere), each with a tenth of the run as downtime. *)
let survivability_schedule ~count ~nprocs ~duration_ns =
  let crashes =
    List.init count (fun i ->
        {
          Adsm_net.Fault.node = 1 + (i mod (nprocs - 1));
          at = duration_ns / (count + 1) * (i + 1);
          downtime = max 1 (duration_ns / 10);
        })
  in
  { Adsm_net.Fault.empty with Adsm_net.Fault.crashes }

let survivability ?(apps = [ "SOR"; "IS"; "Water" ])
    ?(scale = Registry.Tiny) ?(nprocs = 8) ?(jobs = 1) () =
  let apps = selected_apps (Some apps) in
  let protocols = [ Config.Mw; Config.Sw; Config.Wfs ] in
  let cells =
    List.concat_map
      (fun (app : Registry.entry) ->
        List.map (fun protocol -> (app, protocol)) protocols)
      apps
  in
  let rows =
    Pool.map ~jobs
      (fun ((app : Registry.entry), protocol) ->
        let base = Runner.run ~app ~protocol ~nprocs ~scale () in
        List.map
          (fun count ->
            let faults =
              survivability_schedule ~count ~nprocs
                ~duration_ns:base.Runner.time_ns
            in
            let m = Runner.run ~faults ~app ~protocol ~nprocs ~scale () in
            if m.Runner.checksum <> base.Runner.checksum then
              invalid_arg
                (Printf.sprintf
                   "Experiments: %s/%s checksum diverged under %d crash(es)"
                   app.Registry.name
                   (Config.protocol_name protocol)
                   count);
            let pct part whole =
              Printf.sprintf "+%.1f%%"
                (100. *. float_of_int (part - whole) /. float_of_int whole)
            in
            [
              (if count = 1 then app.Registry.name else "");
              (if count = 1 then Config.protocol_name protocol else "");
              string_of_int count;
              seconds m.Runner.time_ns;
              pct m.Runner.time_ns base.Runner.time_ns;
              Tables.thousands m.Runner.messages;
              pct m.Runner.wire_bytes base.Runner.wire_bytes;
            ])
          [ 1; 2 ])
      cells
  in
  Tables.render
    ~title:
      "Survivability: completion under node crashes (checksums verified\n\
       against the fault-free run; overheads relative to it)"
    ~header:
      [ "Program"; "Protocol"; "Crashes"; "Time(s)"; "Slowdown"; "Msgs";
        "Wire" ]
    (List.concat rows)

(* ------------------------------------------------------------------ *)
(* CSV export                                                         *)
(* ------------------------------------------------------------------ *)

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents);
  path

let export_csv suite ~dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path name = Filename.concat dir name in
  let speedups =
    let header =
      "app,protocol,nprocs,speedup,time_ns,messages,data_bytes,\
       ownership_requests,twin_bytes,diff_bytes,gc_runs,read_faults,\
       write_faults\n"
    in
    let rows =
      List.map
        (fun (m : Runner.measurement) ->
          Printf.sprintf "%s,%s,%d,%.4f,%d,%d,%d,%d,%d,%d,%d,%d,%d\n" m.app
            (Config.protocol_name m.protocol)
            m.nprocs (Runner.speedup m) m.time_ns m.messages m.data_bytes
            m.own_requests m.twin_bytes m.diff_bytes m.gc_runs m.read_faults
            m.write_faults)
        suite.measurements
    in
    write_file (path "speedups.csv") (header ^ String.concat "" rows)
  in
  let sharing =
    let header = "app,mean_diff_bytes,pages_written,pages_false_shared\n" in
    let rows =
      List.map
        (fun (e : Registry.entry) ->
          let m = get suite ~app:e.Registry.name ~protocol:Config.Mw in
          Printf.sprintf "%s,%.1f,%d,%d\n" m.Runner.app m.mean_diff_bytes
            m.pages_written m.pages_false_shared)
        (apps_of suite)
    in
    write_file (path "sharing.csv") (header ^ String.concat "" rows)
  in
  let fig3 =
    match find suite ~app:"3D-FFT" ~protocol:Config.Mw with
    | None -> []
    | Some _ ->
      List.map
        (fun protocol ->
          let m = get suite ~app:"3D-FFT" ~protocol in
          let rows =
            List.map
              (fun (t, v) -> Printf.sprintf "%d,%.0f\n" t v)
              m.Runner.live_diff_series
          in
          let name =
            Printf.sprintf "fig3_%s.csv"
              (String.lowercase_ascii
                 (String.map
                    (fun c -> if c = '+' then 'p' else c)
                    (Config.protocol_name protocol)))
          in
          write_file (path name) ("time_ns,live_diffs\n" ^ String.concat "" rows))
        [ Config.Mw; Config.Wfs_wg; Config.Wfs ]
  in
  (speedups :: sharing :: fig3)

(* ------------------------------------------------------------------ *)

let run_all ?apps ?scale ?nprocs ?jobs ?tweak ?engine () =
  let suite = collect ?apps ?scale ?nprocs ?jobs ?tweak ?engine () in
  String.concat "\n"
    [
      table1 suite;
      table2 suite;
      figure1 ();
      figure2 suite;
      table3 suite;
      table4 suite;
      figure3 suite;
      breakdown suite;
    ]
