let default_jobs () = Domain.recommended_domain_count ()

(* Workers get a larger minor heap than the 256k-word default: in the
   multicore runtime every domain's minor collection briefly stops all
   domains, so frequent small collections in one worker stall the whole
   pool.  Fewer, larger collections trade a little locality for much less
   cross-domain synchronization.  Sized in words (8 MB here). *)
let worker_minor_heap_words = 1024 * 1024

let tune_worker_gc () =
  let g = Gc.get () in
  if g.minor_heap_size < worker_minor_heap_words then
    Gc.set { g with minor_heap_size = worker_minor_heap_words }

let map ?(jobs = 1) ?weight f items =
  if jobs < 1 then invalid_arg "Pool.map: jobs must be >= 1";
  match items with
  | [] -> []
  | items when jobs = 1 -> List.map f items
  | items ->
    let tasks = Array.of_list items in
    let n = Array.length tasks in
    (* Dispatch order.  With a weight, heaviest-first: a long task started
       last would otherwise run alone past the end of the suite and set
       the critical path (the classic LPT argument).  The sort is made
       deterministic by breaking weight ties on the original index, and
       results are still collected by original index, so scheduling can
       never reorder the output. *)
    let order = Array.init n (fun i -> i) in
    (match weight with
    | None -> ()
    | Some w ->
      let ws = Array.map w tasks in
      Array.sort
        (fun i j ->
          if ws.(i) <> ws.(j) then Int.compare ws.(j) ws.(i)
          else Int.compare i j)
        order);
    let results = Array.make n None in
    let failures = Array.make n None in
    let next = Atomic.make 0 in
    (* Workers drain the shared counter; a failing task records its
       exception by index and the worker moves on, so one failure never
       wedges the pool or strands unjoined domains. *)
    let rec work () =
      let r = Atomic.fetch_and_add next 1 in
      if r < n then begin
        let i = order.(r) in
        (match f tasks.(i) with
        | v -> results.(i) <- Some v
        | exception e ->
          failures.(i) <- Some (e, Printexc.get_raw_backtrace ()));
        work ()
      end
    in
    let domains =
      Array.init (min jobs n) (fun _ ->
          Domain.spawn (fun () ->
              tune_worker_gc ();
              work ()))
    in
    Array.iter Domain.join domains;
    Array.iter
      (function
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ())
      failures;
    Array.to_list
      (Array.map
         (function Some v -> v | None -> assert false)
         results)
