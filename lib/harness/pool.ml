let default_jobs () = Domain.recommended_domain_count ()

let map ?(jobs = 1) f items =
  if jobs < 1 then invalid_arg "Pool.map: jobs must be >= 1";
  match items with
  | [] -> []
  | items when jobs = 1 -> List.map f items
  | items ->
    let tasks = Array.of_list items in
    let n = Array.length tasks in
    let results = Array.make n None in
    let failures = Array.make n None in
    let next = Atomic.make 0 in
    (* Workers drain the shared counter; a failing task records its
       exception by index and the worker moves on, so one failure never
       wedges the pool or strands unjoined domains. *)
    let rec work () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        (match f tasks.(i) with
        | v -> results.(i) <- Some v
        | exception e ->
          failures.(i) <- Some (e, Printexc.get_raw_backtrace ()));
        work ()
      end
    in
    let domains =
      Array.init (min jobs n) (fun _ -> Domain.spawn work)
    in
    Array.iter Domain.join domains;
    Array.iter
      (function
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ())
      failures;
    Array.to_list
      (Array.map
         (function Some v -> v | None -> assert false)
         results)
