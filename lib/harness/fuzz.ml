(* Bridge between the pure workload AST (lib/check has no view of the
   DSM runtime) and an actual simulated run: interpret a program under a
   protocol with the oracle's recorder attached, validate the stream,
   and on failure shrink to a minimal failing program.

   Written values are unique per run — (node, per-node counter) encoded
   as a float — so a stale read can never be masked by value
   coincidence. *)

module Config = Adsm_dsm.Config
module Dsm = Adsm_dsm.Dsm
module Registry = Adsm_apps.Registry
module Rng = Adsm_sim.Rng
module Obs = Adsm_check.Obs
module Recorder = Adsm_check.Recorder
module Oracle = Adsm_check.Oracle
module Workload = Adsm_check.Workload

type outcome = {
  program : Workload.program;
  report : Oracle.report;
  stream : Obs.stamped array;
}

let run_program ?mutation ?(protocol = Config.Mw) ?(seed = 0x5EEDL)
    (p : Workload.program) =
  let cfg = Config.make ~seed ~protocol ~nprocs:p.Workload.nprocs () in
  let cfg = { cfg with Config.mutation } in
  let t = Dsm.create cfg in
  let arr =
    Dsm.alloc_f64 t ~name:"fuzz"
      ~len:(((p.Workload.words - 1) * p.Workload.stride) + 1)
  in
  let locks = Array.init p.Workload.nlocks (fun _ -> Dsm.fresh_lock t) in
  let recorder = Recorder.create () in
  let counters = Array.make p.Workload.nprocs 0 in
  let program ctx =
    let me = Dsm.me ctx in
    let do_op = function
      | Workload.R w -> ignore (Dsm.f64_get ctx arr (w * p.Workload.stride))
      | Workload.W w ->
        counters.(me) <- counters.(me) + 1;
        let v = float_of_int ((me * 1_000_000) + counters.(me)) in
        Dsm.f64_set ctx arr (w * p.Workload.stride) v
      | Workload.C ns -> Dsm.compute ctx ns
    in
    let do_unit = function
      | Workload.Plain op -> do_op op
      | Workload.Crit (l, ops) ->
        Dsm.lock ctx locks.(l);
        List.iter do_op ops;
        Dsm.unlock ctx locks.(l)
    in
    Array.iter
      (fun phase ->
        List.iter do_unit phase.(me);
        Dsm.barrier ctx)
      p.Workload.phases
  in
  ignore (Dsm.run ~recorder t program);
  let stream = Recorder.stream recorder in
  { program = p; report = Oracle.check ~nprocs:p.Workload.nprocs stream; stream }

(* A candidate "fails" only if the oracle flags it; a crash (e.g. a
   mutated protocol deadlocking on a reduced program) is a different
   failure mode and would derail the shrink, so it does not count. *)
let shrink_failing ?mutation ?protocol ?seed (p : Workload.program) =
  let try_run q =
    match run_program ?mutation ?protocol ?seed q with
    | o when not (Oracle.ok o.report) -> Some o
    | _ -> None
    | exception _ -> None
  in
  let rec first_failing seq =
    match seq () with
    | Seq.Nil -> None
    | Seq.Cons (cand, rest) -> (
      match try_run cand with
      | Some o -> Some o
      | None -> first_failing rest)
  in
  let rec go current =
    match first_failing (Workload.shrink current.program) with
    | Some smaller -> go smaller
    | None -> current
  in
  match try_run p with None -> None | Some o -> Some (go o)

let fuzz_once ?mutation ?protocol ~nprocs ~seed () =
  let rng = Rng.create seed in
  let p = Workload.generate rng (Workload.default_params ~nprocs) in
  run_program ?mutation ?protocol ~seed p

(* Parallel seed sweep: each seed's generate+run+check is independent, so
   the sweep fans out over a {!Pool} and reports per-seed results in seed
   order.  A crash (e.g. a mutated protocol deadlocking) is captured as
   [Error] rather than aborting the other seeds — the CLI prints it per
   seed, exactly as the sequential loop did.  Shrinking of failing seeds
   stays with the caller, after the sweep. *)
let sweep ?(jobs = 1) ?mutation ?protocol ~nprocs ~seed ~count () =
  let seeds = List.init count (fun i -> seed + i) in
  Pool.map ~jobs
    (fun s ->
      match fuzz_once ?mutation ?protocol ~nprocs ~seed:(Int64.of_int s) () with
      | o -> (s, Ok o)
      | exception e -> (s, Error (Printexc.to_string e)))
    seeds

let counterexample outcome =
  match outcome.report.Oracle.violations with
  | [] -> None
  | v :: _ ->
    Some
      (Format.asprintf "%a@.--- workload ---@.%a"
         (fun ppf (stream, v) -> Oracle.pp_counterexample ppf stream v)
         (outcome.stream, v) Workload.pp outcome.program)

let check_app ?seed ?mutation ~(app : Registry.entry) ~protocol ~nprocs
    ~scale () =
  let recorder = Recorder.create () in
  let tweak cfg = { cfg with Config.mutation } in
  let (_ : Runner.measurement) =
    Runner.run ?seed ~tweak ~recorder ~app ~protocol ~nprocs ~scale ()
  in
  Oracle.check ~nprocs (Recorder.stream recorder)
