(* Bridge between the pure workload AST (lib/check has no view of the
   DSM runtime) and an actual simulated run: interpret a program under a
   protocol with the oracle's recorder attached, validate the stream,
   and on failure shrink to a minimal failing program.

   Written values are unique per run — (node, per-node counter) encoded
   as a float — so a stale read can never be masked by value
   coincidence. *)

module Config = Adsm_dsm.Config
module Dsm = Adsm_dsm.Dsm
module Fault = Adsm_net.Fault
module Registry = Adsm_apps.Registry
module Rng = Adsm_sim.Rng
module Obs = Adsm_check.Obs
module Recorder = Adsm_check.Recorder
module Oracle = Adsm_check.Oracle
module Workload = Adsm_check.Workload

type outcome = {
  program : Workload.program;
  faults : Fault.schedule option;
  report : Oracle.report;
  stream : Obs.stamped array;
}

let run_program ?mutation ?faults ?(protocol = Config.Mw) ?(seed = 0x5EEDL)
    (p : Workload.program) =
  let cfg = Config.make ~seed ~protocol ~nprocs:p.Workload.nprocs () in
  let cfg = { cfg with Config.mutation; faults } in
  let t = Dsm.create cfg in
  let arr =
    Dsm.alloc_f64 t ~name:"fuzz"
      ~len:(((p.Workload.words - 1) * p.Workload.stride) + 1)
  in
  let locks = Array.init p.Workload.nlocks (fun _ -> Dsm.fresh_lock t) in
  let recorder = Recorder.create () in
  let counters = Array.make p.Workload.nprocs 0 in
  let program ctx =
    let me = Dsm.me ctx in
    let do_op = function
      | Workload.R w -> ignore (Dsm.f64_get ctx arr (w * p.Workload.stride))
      | Workload.W w ->
        counters.(me) <- counters.(me) + 1;
        let v = float_of_int ((me * 1_000_000) + counters.(me)) in
        Dsm.f64_set ctx arr (w * p.Workload.stride) v
      | Workload.C ns -> Dsm.compute ctx ns
    in
    let do_unit = function
      | Workload.Plain op -> do_op op
      | Workload.Crit (l, ops) ->
        Dsm.lock ctx locks.(l);
        List.iter do_op ops;
        Dsm.unlock ctx locks.(l)
    in
    Array.iter
      (fun phase ->
        List.iter do_unit phase.(me);
        Dsm.barrier ctx)
      p.Workload.phases
  in
  ignore (Dsm.run ~recorder t program);
  let stream = Recorder.stream recorder in
  {
    program = p;
    faults;
    report = Oracle.check ~nprocs:p.Workload.nprocs stream;
    stream;
  }

(* A candidate "fails" only if the oracle flags it; a crash (e.g. a
   mutated protocol deadlocking on a reduced program) is a different
   failure mode and would derail the shrink, so it does not count.

   Shrinking is joint over (program, fault schedule): each step first
   tries to simplify the schedule (drop a crash, zero a probability)
   under the unchanged program, then to shrink the program under the
   unchanged schedule, and greedily recurses on the first candidate
   that still fails.  A counterexample therefore ends up minimal in
   both dimensions — e.g. the seeded recovery mutations typically
   shrink to a single crash and a two-node write/read program. *)
let shrink_failing ?mutation ?protocol ?seed ?faults (p : Workload.program) =
  let try_run (q, fs) =
    match run_program ?mutation ?faults:fs ?protocol ?seed q with
    | o when not (Oracle.ok o.report) -> Some o
    | _ -> None
    | exception _ -> None
  in
  let candidates (q, fs) =
    let sched_shrinks =
      match fs with
      | None -> Seq.empty
      | Some s -> Seq.map (fun s' -> (q, Some s')) (Fault.shrink s)
    in
    let prog_shrinks = Seq.map (fun q' -> (q', fs)) (Workload.shrink q) in
    Seq.append sched_shrinks prog_shrinks
  in
  let rec first_failing seq =
    match seq () with
    | Seq.Nil -> None
    | Seq.Cons (cand, rest) -> (
      match try_run cand with
      | Some o -> Some o
      | None -> first_failing rest)
  in
  let rec go current =
    match first_failing (candidates (current.program, current.faults)) with
    | Some smaller -> go smaller
    | None -> current
  in
  match try_run (p, faults) with None -> None | Some o -> Some (go o)

(* Fault-mode fuzzing first runs the program clean (no mutation, no
   faults) to learn its simulated duration, then generates a schedule
   whose crashes land inside that horizon — a fixed horizon would miss
   short programs entirely and never exercise recovery. *)
let fuzz_once ?mutation ?protocol ?(faults = false) ~nprocs ~seed () =
  let rng = Rng.create seed in
  let p = Workload.generate rng (Workload.default_params ~nprocs) in
  if not faults then run_program ?mutation ?protocol ~seed p
  else
    let clean = run_program ?protocol ~seed p in
    let horizon_ns =
      let n = Array.length clean.stream in
      if n = 0 then 1_000_000
      else max 100_000 clean.stream.(n - 1).Obs.time
    in
    let sched = Fault.generate rng ~nprocs ~horizon_ns in
    run_program ?mutation ~faults:sched ?protocol ~seed p

(* Parallel seed sweep: each seed's generate+run+check is independent, so
   the sweep fans out over a {!Pool} and reports per-seed results in seed
   order.  A crash (e.g. a mutated protocol deadlocking) is captured as
   [Error] rather than aborting the other seeds — the CLI prints it per
   seed, exactly as the sequential loop did.  Shrinking of failing seeds
   stays with the caller, after the sweep. *)
let sweep ?(jobs = 1) ?mutation ?protocol ?faults ~nprocs ~seed ~count () =
  let seeds = List.init count (fun i -> seed + i) in
  Pool.map ~jobs
    (fun s ->
      match
        fuzz_once ?mutation ?protocol ?faults ~nprocs ~seed:(Int64.of_int s) ()
      with
      | o -> (s, Ok o)
      | exception e -> (s, Error (Printexc.to_string e)))
    seeds

let counterexample outcome =
  let faults =
    match outcome.faults with
    | None -> ""
    | Some s -> Format.asprintf "@.--- faults ---@.%a@." Fault.pp s
  in
  match
    (outcome.report.Oracle.violations, outcome.report.Oracle.fault_errors)
  with
  | v :: _, _ ->
    Some
      (Format.asprintf "%a@.--- workload ---@.%a%s"
         (fun ppf (stream, v) -> Oracle.pp_counterexample ppf stream v)
         (outcome.stream, v) Workload.pp outcome.program faults)
  | [], _ :: _ ->
    (* Crash/recovery structure errors have no single anchoring
       observation, so print the report itself plus the inputs. *)
    Some
      (Format.asprintf "%a@.--- workload ---@.%a%s" Oracle.pp_report
         outcome.report Workload.pp outcome.program faults)
  | [], [] -> None

let check_app ?seed ?mutation ?faults ~(app : Registry.entry) ~protocol
    ~nprocs ~scale () =
  let recorder = Recorder.create () in
  let tweak cfg = { cfg with Config.mutation; faults } in
  let (_ : Runner.measurement) =
    Runner.run ?seed ~tweak ~recorder ~app ~protocol ~nprocs ~scale ()
  in
  Oracle.check ~nprocs (Recorder.stream recorder)
