module Config = Adsm_dsm.Config
module Netcfg = Adsm_net.Netcfg
module Registry = Adsm_apps.Registry

let app name =
  match Registry.find name with
  | Some e -> e
  | None -> invalid_arg ("Ablations: unknown application " ^ name)

let speedup ?tweak name protocol ~nprocs =
  let m =
    Runner.run ?tweak ~app:(app name) ~protocol ~nprocs
      ~scale:Registry.Default ()
  in
  Runner.speedup m

let fmt2 = Printf.sprintf "%.2f"

(* Each study is a grid of independent simulations; [cells] evaluates the
   whole grid on the pool (input order preserved) and [chunk] slices the
   flat results back into table rows.  With [jobs = 1] this is exactly
   the old nested [List.map]. *)
let cells ~jobs grid f = Pool.map ~jobs f grid

let chunk n l =
  let rec go acc row k = function
    | [] -> List.rev (if row = [] then acc else List.rev row :: acc)
    | x :: rest ->
      if k = n - 1 then go (List.rev (x :: row) :: acc) [] 0 rest
      else go acc (x :: row) (k + 1) rest
  in
  go [] [] 0 l

let grid_of apps values = List.concat_map (fun a -> List.map (fun v -> (a, v)) values) apps

(* --- ownership quantum ------------------------------------------- *)

let quantum ?(jobs = 1) () =
  let values = [ 50_000; 250_000; 1_000_000; 4_000_000 ] in
  let apps = [ "Shallow"; "Barnes"; "IS" ] in
  let results =
    cells ~jobs (grid_of apps values) (fun (name, q) ->
        fmt2
          (speedup name Config.Sw ~nprocs:8
             ~tweak:(fun c -> { c with Config.ownership_quantum_ns = q })))
  in
  let rows =
    List.map2 (fun name cs -> name :: cs) apps (chunk (List.length values) results)
  in
  Tables.render
    ~title:
      "Ablation: SW ownership quantum (speedup on 8 processors).\n\
       The paper fixes 1 ms and reports insensitivity, which holds here\n\
       too; with NO quantum at all, heavily falsely-shared pages (Barnes)\n\
       ping-pong per write and the run diverges — the quantum is the SW\n\
       protocol's only brake on that."
    ~header:[ "Program (SW)"; "0.05 ms"; "0.25 ms"; "1 ms (paper)"; "4 ms" ]
    rows

(* --- WFS+WG threshold --------------------------------------------- *)

let threshold ?(jobs = 1) () =
  let values = [ 1_024; 3_072; 8_192 ] in
  let apps = [ "TSP"; "Water"; "3D-FFT"; "IS" ] in
  let results =
    cells ~jobs (grid_of apps values) (fun (name, w) ->
        fmt2
          (speedup name Config.Wfs_wg ~nprocs:8
             ~tweak:(fun c -> { c with Config.wg_threshold_bytes = w })))
  in
  let rows =
    List.map2 (fun name cs -> name :: cs) apps (chunk (List.length values) results)
  in
  Tables.render
    ~title:
      "Ablation: WFS+WG write-granularity threshold (speedup on 8\n\
       processors).  The paper derives 3 KB from the twin+diff vs page\n\
       transfer break-even and reports low sensitivity."
    ~header:[ "Program (WFS+WG)"; "1 KB"; "3 KB (paper)"; "8 KB" ]
    rows

(* --- network model ------------------------------------------------ *)

let network ?(jobs = 1) () =
  let nets =
    [ ("ATM'97", Netcfg.atm_155); ("fast", Netcfg.fast_ethernet) ]
  in
  let apps = [ "IS"; "Barnes" ] in
  let protocols = [ Config.Mw; Config.Sw; Config.Wfs ] in
  let grid =
    List.concat_map
      (fun name ->
        List.concat_map
          (fun protocol -> List.map (fun (_, net) -> (name, protocol, net)) nets)
          protocols)
      apps
  in
  let results =
    cells ~jobs grid (fun (name, protocol, net) ->
        fmt2
          (speedup name protocol ~nprocs:8
             ~tweak:(fun c -> { c with Config.net })))
  in
  let labels =
    List.concat_map
      (fun name ->
        List.mapi
          (fun i protocol ->
            [ (if i = 0 then name else ""); Config.protocol_name protocol ])
          protocols)
      apps
  in
  let rows =
    List.map2 (fun label cs -> label @ cs) labels
      (chunk (List.length nets) results)
  in
  Tables.render
    ~title:
      "Ablation: network cost model (speedup on 8 processors).  The\n\
       paper's protocol tradeoffs are calibrated to a 155 Mbps ATM\n\
       cluster with ~1 ms round trips; on a low-latency gigabit-class\n\
       model communication stops dominating and the protocols converge."
    ~header:[ "Program"; "Protocol"; "ATM'97"; "fast" ]
    rows

(* --- migratory-detection extension -------------------------------- *)

let migratory ?(jobs = 1) () =
  let apps = [ "IS"; "TSP"; "Water" ] in
  let results =
    cells ~jobs (grid_of apps [ false; true ]) (fun (name, detect) ->
        Runner.run
          ~tweak:(fun c -> { c with Config.migratory_detection = detect })
          ~app:(app name) ~protocol:Config.Wfs ~nprocs:8
          ~scale:Registry.Default ())
  in
  let rows =
    List.map2
      (fun name ms ->
        match ms with
        | [ off; on ] ->
          [
            name;
            fmt2 (Runner.speedup off);
            fmt2 (Runner.speedup on);
            string_of_int off.Runner.messages;
            string_of_int on.Runner.messages;
          ]
        | _ -> assert false)
      apps (chunk 2 results)
  in
  Tables.render
    ~title:
      "Extension: migratory-data detection (paper Section 7) under WFS.\n\
       Read misses on read-then-write pages are upgraded to ownership\n\
       migrations, saving the write fault's exchange."
    ~header:
      [ "Program"; "speedup off"; "speedup on"; "msgs off"; "msgs on" ]
    rows

(* --- lazy diffing --------------------------------------------------- *)

let lazydiff ?(jobs = 1) () =
  let apps = [ "SOR"; "3D-FFT"; "Shallow"; "Barnes" ] in
  let results =
    cells ~jobs (grid_of apps [ false; true ]) (fun (name, lazy_diffing) ->
        Runner.run
          ~tweak:(fun c -> { c with Config.lazy_diffing })
          ~app:(app name) ~protocol:Config.Mw ~nprocs:8
          ~scale:Registry.Default ())
  in
  let rows =
    List.map2
      (fun name ms ->
        match ms with
        | [ eager; lz ] ->
          [
            name;
            fmt2 (Runner.speedup eager);
            fmt2 (Runner.speedup lz);
            string_of_int eager.Runner.diffs_created;
            string_of_int lz.Runner.diffs_created;
          ]
        | _ -> assert false)
      apps (chunk 2 results)
  in
  Tables.render
    ~title:
      "Ablation: eager vs lazy diff creation under MW.  The baseline\n\
       reproduction diffs eagerly at release (a documented TreadMarks\n\
       simplification); with lazy diffing the diff is created on first\n\
       request, and diffs garbage-collected before anyone asks are never\n\
       created at all."
    ~header:
      [ "Program (MW)"; "spd eager"; "spd lazy"; "diffs eager"; "diffs lazy" ]
    rows

(* --- software write detection --------------------------------------- *)

let writeranges ?(jobs = 1) () =
  let apps = [ "TSP"; "Barnes"; "Water"; "SOR"; "IS" ] in
  let results =
    cells ~jobs (grid_of apps [ false; true ]) (fun (name, write_ranges) ->
        Runner.run
          ~tweak:(fun c -> { c with Config.write_ranges })
          ~app:(app name) ~protocol:Config.Mw ~nprocs:8
          ~scale:Registry.Default ())
  in
  let rows =
    List.map2
      (fun name ms ->
        match ms with
        | [ twin; wr ] ->
          [
            name;
            fmt2 (Runner.speedup twin);
            fmt2 (Runner.speedup wr);
            string_of_int twin.Runner.twins_created;
            string_of_int wr.Runner.twins_created;
          ]
        | _ -> assert false)
      apps (chunk 2 results)
  in
  Tables.render
    ~title:
      "Ablation: twin/diff vs software write detection (write ranges /\n\
       Midway-style, cited in the paper's related work) under MW.  Logging\n\
       every shared write replaces the twin (104 us) and the release-time\n\
       page scan (179 us); at these write densities the logging cost\n\
       (250 ns/write) never catches up, so it wins or ties everywhere --\n\
       consistent with the paper's view of such techniques as orthogonal\n\
       optimizations."
    ~header:
      [ "Program (MW)"; "spd twin"; "spd ranges"; "twins"; "twins(ranges)" ]
    rows

(* --- HLRC extension ------------------------------------------------ *)

let hlrc ?(jobs = 1) () =
  let protocols = [ Config.Mw; Config.Wfs; Config.Hlrc ] in
  let apps = [ "IS"; "SOR"; "Shallow"; "Barnes"; "ILINK" ] in
  let results =
    cells ~jobs (grid_of apps protocols) (fun (name, protocol) ->
        Runner.run ~app:(app name) ~protocol ~nprocs:8
          ~scale:Registry.Default ())
  in
  let rows =
    List.map2
      (fun name ms ->
        name
        :: List.concat_map
             (fun m ->
               [ fmt2 (Runner.speedup m); Tables.thousands m.Runner.messages ])
             ms)
      apps
      (chunk (List.length protocols) results)
  in
  Tables.render
    ~title:
      "Extension: home-based LRC (HLRC, Zhou et al., cited in the paper's\n\
       related work) against MW and WFS.  HLRC flushes diffs eagerly to\n\
       each page's static home and fetches whole pages from it: no diff\n\
       store, no garbage collection, fewer message types — but traffic\n\
       concentrates at homes and whole pages move on every miss."
    ~header:
      [
        "Program";
        "MW spd"; "MW msg(k)";
        "WFS spd"; "WFS msg(k)";
        "HLRC spd"; "HLRC msg(k)";
      ]
    rows

(* --- processor scaling -------------------------------------------- *)

let scaling ?(jobs = 1) () =
  let counts = [ 1; 2; 4; 8 ] in
  let apps = [ "SOR"; "ILINK"; "Barnes"; "3D-FFT" ] in
  let results =
    cells ~jobs (grid_of apps counts) (fun (name, nprocs) ->
        fmt2 (speedup name Config.Wfs ~nprocs))
  in
  let rows =
    List.map2 (fun name cs -> name :: cs) apps (chunk (List.length counts) results)
  in
  Tables.render
    ~title:
      "Sensitivity: processor-count scaling under WFS (the paper reports\n\
       8 processors only)."
    ~header:[ "Program (WFS)"; "1"; "2"; "4"; "8" ]
    rows

(* ------------------------------------------------------------------ *)

let studies =
  [
    ("quantum", quantum);
    ("threshold", threshold);
    ("network", network);
    ("migratory", migratory);
    ("lazydiff", lazydiff);
    ("writeranges", writeranges);
    ("hlrc", hlrc);
    ("scaling", scaling);
  ]

let names = List.map fst studies

let run ?jobs name =
  Option.map (fun f -> f ?jobs ()) (List.assoc_opt name studies)

let run_all ?jobs () =
  String.concat "\n" (List.map (fun (_, f) -> f ?jobs ()) studies)
