(** Drive the consistency oracle: interpret {!Adsm_check.Workload}
    programs on the simulated DSM with the observation recorder
    attached, validate the stream, shrink failures, and check the real
    benchmark applications.

    Lives in the harness (not [lib/check]) because the workload AST is
    deliberately runtime-free — this module is the one place that knows
    how to execute it under {!Adsm_dsm.Dsm}.

    Fault mode (FAULTS.md): every entry point optionally takes a fault
    schedule; [fuzz_once ~faults:true] generates a schedule alongside
    the program, and {!shrink_failing} shrinks jointly over program and
    schedule. *)

type outcome = {
  program : Adsm_check.Workload.program;
  faults : Adsm_net.Fault.schedule option;
      (** the schedule the run executed under, if any *)
  report : Adsm_check.Oracle.report;
  stream : Adsm_check.Obs.stamped array;
}

(** Run one workload program under [protocol] (default MW) with the
    oracle recording.  [mutation] injects a deliberate protocol bug
    (see {!Adsm_dsm.Config.mutation}); [faults] runs it under a fault
    schedule. *)
val run_program :
  ?mutation:Adsm_dsm.Config.mutation ->
  ?faults:Adsm_net.Fault.schedule ->
  ?protocol:Adsm_dsm.Config.protocol ->
  ?seed:int64 ->
  Adsm_check.Workload.program ->
  outcome

(** If the program fails the oracle, greedily shrink it to a minimal
    failing (program, schedule) pair and return that outcome; [None] if
    the full program passes.  Each greedy step first tries schedule
    simplifications (drop a crash or partition, zero a probability),
    then program shrinks.  Candidates that crash instead of failing the
    oracle are skipped. *)
val shrink_failing :
  ?mutation:Adsm_dsm.Config.mutation ->
  ?protocol:Adsm_dsm.Config.protocol ->
  ?seed:int64 ->
  ?faults:Adsm_net.Fault.schedule ->
  Adsm_check.Workload.program ->
  outcome option

(** Generate a random workload from [seed] and run it checked.  With
    [~faults:true] (default false) the program is first run clean to
    learn its simulated duration, then re-run under a schedule generated
    from the same seed whose crashes land inside that horizon. *)
val fuzz_once :
  ?mutation:Adsm_dsm.Config.mutation ->
  ?protocol:Adsm_dsm.Config.protocol ->
  ?faults:bool ->
  nprocs:int ->
  seed:int64 ->
  unit ->
  outcome

(** [sweep ~jobs ~nprocs ~seed ~count ()] runs [fuzz_once] on the [count]
    consecutive seeds starting at [seed], on up to [jobs] worker domains
    (default 1, fully sequential).  Results come back in seed order; a
    seed whose run raises is reported as [Error] with the exception text
    instead of aborting the sweep.  Used for both plain fuzzing and
    mutation-detection sweeps (pass [mutation], and [~faults:true] for
    the recovery mutations, which only manifest under crashes). *)
val sweep :
  ?jobs:int ->
  ?mutation:Adsm_dsm.Config.mutation ->
  ?protocol:Adsm_dsm.Config.protocol ->
  ?faults:bool ->
  nprocs:int ->
  seed:int ->
  count:int ->
  unit ->
  (int * (outcome, string) result) list

(** Human-readable counterexample (first violation's trace window plus
    the workload program and, in fault mode, the schedule); [None] if
    the outcome passed. *)
val counterexample : outcome -> string option

(** Run a registry application with the oracle recording and validate
    the whole run. *)
val check_app :
  ?seed:int64 ->
  ?mutation:Adsm_dsm.Config.mutation ->
  ?faults:Adsm_net.Fault.schedule ->
  app:Adsm_apps.Registry.entry ->
  protocol:Adsm_dsm.Config.protocol ->
  nprocs:int ->
  scale:Adsm_apps.Registry.scale ->
  unit ->
  Adsm_check.Oracle.report
