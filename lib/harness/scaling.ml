(* Node-count scaling study: sweep the cluster size from 8 to 1024
   simulated nodes and compare the paper's flat-fabric/central-barrier
   configuration against the large-cluster configuration (2-level
   switched tree, combining tree barrier, sharded lock homes, sparse
   vector-clock accounting).

   Everything runs at tiny scale: this study varies the CLUSTER, not the
   problem size.  Every app sweeps the whole grid to 1024 nodes — the
   large-n hot-path work (summarized clocks, indexed interval logs, O(1)
   notice coverage) brought the worst cells from minutes to seconds, see
   EXPERIMENTS.md.  The one exception is structural, not a cost cap:
   3D-FFT's tiny problem has 64 planes, so it cannot spread over more
   than 64 nodes.

   Two properties are checked over the collected rows and surfaced to the
   CLI (and CI) as hard failures:
   - the two fabrics must produce bit-identical application checksums for
     every (app, protocol, node count) — the fabric is a cost model, not
     a consistency change;
   - tree-barrier traffic must stay within c * n * log2 n messages per
     run, with the per-run round count derived from the smallest
     tree-fabric run of the same cell (a combining tree uses exactly
     2(n-1) messages per round; the bound fails loudly if a regression
     reintroduces an all-to-all or per-node fan-in). *)

module Config = Adsm_dsm.Config
module Registry = Adsm_apps.Registry
module Topology = Adsm_net.Topology

type fabric = Flat_central | Tree_combining

let fabric_name = function
  | Flat_central -> "flat"
  | Tree_combining -> "tree"

type row = {
  app : string;
  protocol : Config.protocol;
  nprocs : int;
  fabric : fabric;
  time_ns : int;
  speedup : float;
  messages : int;
  barrier_msgs : int;
  wire_bytes : int;
  checksum : float;
}

type study = { smoke : bool; max_nodes : int; rows : row list }

let node_grid = [ 8; 16; 32; 64; 128; 256; 512; 1024 ]

(* Structural limits only: 3D-FFT's tiny problem has 64 planes and
   cannot occupy more nodes than that.  Cost is no longer a reason to
   cap — the former 256-node cap on IS and Water is gone. *)
let app_cap name =
  if String.lowercase_ascii name = "3d-fft" then 64 else max_int

let default_apps =
  [ "SOR"; "IS"; "Water"; "3D-FFT"; "TSP"; "Shallow"; "Barnes"; "ILINK" ]

(* Rough host-cost weight of a cell, for dispatch order only: the
   lock-chain apps (IS, Water) do work superlinear in n, ILINK moves the
   most diff bytes; everything else is light.  Wrong weights cost a
   little wall clock, never correctness. *)
let cell_weight (app, _protocol, n, _fabric) =
  let factor =
    match String.lowercase_ascii app with
    | "is" | "water" -> 40
    | "ilink" -> 10
    | _ -> 1
  in
  factor * n * n

(* The CI smoke subset: one cheap app, the two protocol families, a
   sparse node grid.  Seconds of wall clock; the 1024 entry only fires
   when the caller raises [max_nodes] past 256 (the CI large-n cell). *)
let smoke_apps = [ "SOR" ]

let smoke_protocols = [ Config.Mw; Config.Wfs ]

let smoke_grid = [ 8; 32; 128; 256; 1024 ]

(* The large-cluster configuration under test: a 2-level switched tree
   (32 nodes per leaf switch), the combining barrier, lock homes sharded
   across one manager per switch, and delta-encoded vector-clock costs. *)
let tweak_of_fabric fabric cfg =
  match fabric with
  | Flat_central -> cfg
  | Tree_combining ->
    let shards = max 1 (cfg.Config.nprocs / 32) in
    {
      cfg with
      Config.topology = Topology.shape (Topology.tree cfg.Config.net);
      barrier = Config.Tree { fanout = 4 };
      lock_homes = Config.Sharded shards;
      sparse_vc = true;
    }

let collect ?(smoke = false) ?(max_nodes = 1024) ?(jobs = 1) ?(par = 1) ?apps
    () =
  (* [par > 1] runs every cell on the conservative parallel engine —
     behavior-neutral (same rows, checksums and bounds), host wall-clock
     only.  Don't combine with [jobs > 1] on a small host.  [apps]
     restricts the sweep to the named applications (CI smoke, local
     iteration). *)
  let engine =
    if par > 1 then Some (Config.Parallel { domains = par }) else None
  in
  let apps =
    match apps with
    | Some l ->
      List.iter
        (fun a ->
          if Registry.find a = None then
            invalid_arg ("Scaling.collect: unknown app " ^ a))
        l;
      l
    | None -> if smoke then smoke_apps else default_apps
  in
  let protocols = if smoke then smoke_protocols else Config.all_protocols in
  let counts = if smoke then smoke_grid else node_grid in
  let cells =
    List.concat_map
      (fun a ->
        List.concat_map
          (fun p ->
            List.concat_map
              (fun n ->
                if n > max_nodes || n > app_cap a then []
                else [ (a, p, n, Flat_central); (a, p, n, Tree_combining) ])
              counts)
          protocols)
      apps
  in
  let run_cell (a, p, n, f) =
    let app =
      match Registry.find a with
      | Some e -> e
      | None -> invalid_arg ("Scaling.collect: unknown app " ^ a)
    in
    let m =
      Runner.run ~tweak:(tweak_of_fabric f) ?engine ~app ~protocol:p ~nprocs:n
        ~scale:Registry.Tiny ()
    in
    {
      app = m.Runner.app;
      protocol = p;
      nprocs = n;
      fabric = f;
      time_ns = m.Runner.time_ns;
      speedup = Runner.speedup m;
      messages = m.Runner.messages;
      barrier_msgs =
        (match List.assoc_opt "barrier" m.Runner.by_kind with
        | Some (count, _) -> count
        | None -> 0);
      wire_bytes = m.Runner.wire_bytes;
      checksum = m.Runner.checksum;
    }
  in
  (* Dispatch heaviest-first so a trailing 1024-node cell cannot
     serialize the tail of a [jobs > 1] sweep, then scatter the results
     back into grid order — the artifact's row order is stable whatever
     the dispatch order. *)
  let cell_arr = Array.of_list cells in
  let order = Array.init (Array.length cell_arr) Fun.id in
  Array.sort
    (fun i j ->
      let c =
        Int.compare (cell_weight cell_arr.(j)) (cell_weight cell_arr.(i))
      in
      if c <> 0 then c else Int.compare i j)
    order;
  let dispatched =
    Pool.map ~jobs run_cell
      (Array.to_list (Array.map (fun i -> cell_arr.(i)) order))
  in
  let out = Array.make (Array.length cell_arr) None in
  List.iteri (fun k r -> out.(order.(k)) <- Some r) dispatched;
  let rows = Array.to_list (Array.map Option.get out) in
  { smoke; max_nodes; rows }

(* ------------------------------------------------------------------ *)
(* Checks                                                             *)
(* ------------------------------------------------------------------ *)

(* The fabric is a cost model only: flat and tree runs of the same cell
   must agree bit-for-bit on the application result. *)
let checksum_mismatches study =
  List.filter_map
    (fun r ->
      if r.fabric <> Flat_central then None
      else
        match
          List.find_opt
            (fun r' ->
              r'.fabric = Tree_combining && r'.app = r.app
              && r'.protocol = r.protocol && r'.nprocs = r.nprocs)
            study.rows
        with
        | Some r' when r'.checksum <> r.checksum ->
          Some
            (Printf.sprintf "%s/%s/%d: flat %h vs tree %h" r.app
               (Config.protocol_name r.protocol)
               r.nprocs r.checksum r'.checksum)
        | _ -> None)
    study.rows

let log2_ceil n =
  let rec go acc v = if v >= n then acc else go (acc + 1) (v * 2) in
  go 0 1

(* Tree-barrier message bound.  A combining tree spends exactly 2(n-1)
   barrier messages per round, so the round count R of a cell is
   barrier_msgs / (2(n-1)) at the SMALLEST tree run; every larger run of
   the same (app, protocol) must stay within 4 * R * n * log2 n. *)
let barrier_bound_violations study =
  let tree_rows =
    List.filter (fun r -> r.fabric = Tree_combining && r.nprocs > 1) study.rows
  in
  let cells =
    List.sort_uniq compare
      (List.map (fun r -> (r.app, r.protocol)) tree_rows)
  in
  List.concat_map
    (fun (app, protocol) ->
      let rows =
        List.sort
          (fun a b -> Int.compare a.nprocs b.nprocs)
          (List.filter
             (fun r -> r.app = app && r.protocol = protocol)
             tree_rows)
      in
      match rows with
      | [] -> []
      | smallest :: _ ->
        let rounds =
          max 1 (smallest.barrier_msgs / (2 * (smallest.nprocs - 1)))
        in
        List.filter_map
          (fun r ->
            let bound = 4 * rounds * r.nprocs * log2_ceil r.nprocs in
            if r.barrier_msgs > bound then
              Some
                (Printf.sprintf
                   "%s/%s/%d: %d barrier messages > bound %d (R=%d)" r.app
                   (Config.protocol_name r.protocol)
                   r.nprocs r.barrier_msgs bound rounds)
            else None)
          rows)
    cells

(* ------------------------------------------------------------------ *)
(* Rendering                                                          *)
(* ------------------------------------------------------------------ *)

let counts_of study =
  List.sort_uniq Int.compare (List.map (fun r -> r.nprocs) study.rows)

let find_row study ~app ~protocol ~nprocs ~fabric =
  List.find_opt
    (fun r ->
      r.app = app && r.protocol = protocol && r.nprocs = nprocs
      && r.fabric = fabric)
    study.rows

let apps_of study =
  List.sort_uniq compare (List.map (fun r -> r.app) study.rows)

let protocols_of study =
  List.filter
    (fun p -> List.exists (fun r -> r.protocol = p) study.rows)
    Config.extended_protocols

(* Simulated-time table: one row per (app, protocol, fabric), one column
   per node count. *)
let table_times study =
  let counts = counts_of study in
  let rows =
    List.concat_map
      (fun app ->
        List.concat_map
          (fun protocol ->
            List.map
              (fun fabric ->
                app
                :: Config.protocol_name protocol
                :: fabric_name fabric
                :: List.map
                     (fun n ->
                       match find_row study ~app ~protocol ~nprocs:n ~fabric with
                       | Some r ->
                         Printf.sprintf "%.1f" (float_of_int r.time_ns /. 1e6)
                       | None -> "-")
                     counts)
              [ Flat_central; Tree_combining ])
          (protocols_of study))
      (apps_of study)
  in
  Tables.render
    ~title:
      "Node-count scaling: simulated time (ms) at tiny scale.\n\
       flat = paper fabric + central barrier; tree = 2-level switched\n\
       tree + combining barrier + sharded locks + sparse VCs."
    ~header:([ "Program"; "Protocol"; "Fabric" ] @ List.map string_of_int counts)
    rows

(* Protocol crossover: the fastest protocol per (app, fabric, node
   count).  This is the study's headline artifact — where the
   single-writer family overtakes multiple-writer as clusters grow. *)
let crossover study =
  let counts = counts_of study in
  let rows =
    List.concat_map
      (fun app ->
        List.map
          (fun fabric ->
            app
            :: fabric_name fabric
            :: List.map
                 (fun n ->
                   let cell =
                     List.filter
                       (fun r ->
                         r.app = app && r.fabric = fabric && r.nprocs = n)
                       study.rows
                   in
                   match cell with
                   | [] -> "-"
                   | first :: rest ->
                     let best =
                       List.fold_left
                         (fun acc r ->
                           if r.time_ns < acc.time_ns then r else acc)
                         first rest
                     in
                     Config.protocol_name best.protocol)
                 counts)
          [ Flat_central; Tree_combining ])
      (apps_of study)
  in
  Tables.render
    ~title:"Protocol crossover: fastest protocol per node count."
    ~header:([ "Program"; "Fabric" ] @ List.map string_of_int counts)
    rows

let render study = table_times study ^ "\n" ^ crossover study

(* ------------------------------------------------------------------ *)
(* JSON artifact                                                      *)
(* ------------------------------------------------------------------ *)

let to_json study =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "{\n  \"smoke\": %b,\n  \"max_nodes\": %d,\n  \"rows\": [\n"
       study.smoke study.max_nodes);
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"app\": %S, \"protocol\": %S, \"nprocs\": %d, \"fabric\": \
            %S, \"time_ns\": %d, \"speedup\": %.4f, \"messages\": %d, \
            \"barrier_msgs\": %d, \"wire_bytes\": %d, \"checksum\": %.17g}"
           r.app
           (Config.protocol_name r.protocol)
           r.nprocs (fabric_name r.fabric) r.time_ns r.speedup r.messages
           r.barrier_msgs r.wire_bytes r.checksum))
    study.rows;
  Buffer.add_string buf "\n  ]\n}\n";
  Buffer.contents buf
