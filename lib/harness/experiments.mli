(** Drivers that regenerate every table and figure of the paper's
    evaluation (Section 6) from fresh simulation runs.

    [collect] runs the full grid once (8 applications x 4 protocols at the
    requested processor count, plus the sequential baselines); each
    [table_*] / [figure_*] function renders one artifact from it.  Use
    [run_all] to print everything in paper order. *)

type suite = {
  scale : Adsm_apps.Registry.scale;
  nprocs : int;
  tweak : Adsm_dsm.Config.t -> Adsm_dsm.Config.t;
      (** configuration post-processing (e.g. a non-default network or
          topology), re-applied by artifacts that make dedicated runs *)
  engine : Adsm_dsm.Config.engine_mode option;
      (** event-engine execution mode for every run (behavior-neutral;
          [None] = sequential), also re-applied by dedicated runs *)
  measurements : Runner.measurement list;
}

(** Runs the whole grid.  [apps] restricts the application set (default:
    all eight).  [jobs] (default 1) runs the independent (app, protocol)
    simulations on that many worker domains via {!Pool}; the resulting
    suite is field-for-field identical for any [jobs] value.  [engine]
    selects the event-engine mode per run (see PARALLELISM.md) — also
    behavior-neutral; don't combine [jobs > 1] with a parallel engine on
    a small host (oversubscription; see EXPERIMENTS.md). *)
val collect :
  ?apps:string list ->
  ?scale:Adsm_apps.Registry.scale ->
  ?nprocs:int ->
  ?jobs:int ->
  ?tweak:(Adsm_dsm.Config.t -> Adsm_dsm.Config.t) ->
  ?engine:Adsm_dsm.Config.engine_mode ->
  unit ->
  suite

val find :
  suite -> app:string -> protocol:Adsm_dsm.Config.protocol ->
  Runner.measurement option

(** Table 1: applications, input sizes, synchronization, sequential time. *)
val table1 : suite -> string

(** Table 2: write granularity and write-write falsely shared pages. *)
val table2 : suite -> string

(** Figure 1: protocol behaviour on the three canonical access patterns
    (producer-consumer, migratory, write-write false sharing) under WFS. *)
val figure1 : unit -> string

(** Figure 2: speedup comparison, all protocols and applications. *)
val figure2 : suite -> string

(** Table 3: twin and diff memory consumption for MW, WFS+WG, WFS. *)
val table3 : suite -> string

(** Table 4: messages, ownership requests, and data exchanged. *)
val table4 : suite -> string

(** Figure 3: live diff count over time for 3D-FFT under MW/WFS+WG/WFS. *)
val figure3 : suite -> string

(** Beyond the paper: per-protocol execution-time breakdown (compute /
    fault / lock / barrier / other percentages). *)
val breakdown : suite -> string

(** Write machine-readable CSV files for every artifact into [dir]
    (created if missing): `speedups.csv` with one row per (application,
    protocol) measurement, `sharing.csv` with the Table 2 profile, and
    `fig3_<protocol>.csv` live-diff series. *)
val export_csv : suite -> dir:string -> string list
(** Returns the paths written. *)

(** "Crashing nodes" appendix (FAULTS.md): completion time and message
    overhead of SOR/IS/Water under MW, SW and WFS with 1 and 2 node
    crashes, schedules derived from each cell's fault-free duration so
    the crashes land mid-run.  Every faulty run's checksum is verified
    against the fault-free one ([Invalid_argument] on divergence). *)
val survivability :
  ?apps:string list ->
  ?scale:Adsm_apps.Registry.scale ->
  ?nprocs:int ->
  ?jobs:int ->
  unit ->
  string

(** Everything, in paper order. *)
val run_all :
  ?apps:string list ->
  ?scale:Adsm_apps.Registry.scale ->
  ?nprocs:int ->
  ?jobs:int ->
  ?tweak:(Adsm_dsm.Config.t -> Adsm_dsm.Config.t) ->
  ?engine:Adsm_dsm.Config.engine_mode ->
  unit ->
  string
