(** Execute one (application x protocol x processor-count) configuration
    and collect everything the paper's tables and figures report. *)

type measurement = {
  app : string;
  protocol : Adsm_dsm.Config.protocol;
  nprocs : int;
  scale : Adsm_apps.Registry.scale;
  time_ns : int;
  messages : int;
  data_bytes : int;  (** payload bytes, the paper's "Data" column *)
  wire_bytes : int;  (** payload plus per-message headers on the wire *)
  own_requests : int;
  own_refusals : int;
  twins_created : int;
  twin_bytes : int;  (** cumulative twin bytes (paper Table 3) *)
  diffs_created : int;
  diff_bytes : int;  (** cumulative diff bytes (paper Table 3) *)
  gc_runs : int;
  mode_switches : int;
  shared_pages : int;
  pages_written : int;
  pages_false_shared : int;
  mean_diff_bytes : float;
  read_faults : int;
  write_faults : int;
  checksum : float;
  by_kind : (string * (int * int)) list;
      (** traffic class -> (messages, bytes); e.g. ["barrier"] for the
          scaling study's barrier message-count bound *)
  live_diff_series : (int * float) list;
      (** (time_ns, live diff count) samples — the paper's Figure 3 *)
  events : int;
  compute_ns : int;  (** execution-time breakdown, summed over nodes: *)
  fault_time_ns : int;  (** time inside page-fault service *)
  lock_time_ns : int;  (** time acquiring locks *)
  barrier_time_ns : int;  (** time in barriers (including GC) *)
}

val run :
  ?seed:int64 ->
  ?tweak:(Adsm_dsm.Config.t -> Adsm_dsm.Config.t) ->
  ?faults:Adsm_net.Fault.schedule ->
  ?engine:Adsm_dsm.Config.engine_mode ->
  ?tracer:Adsm_trace.Tracer.t ->
  ?recorder:Adsm_check.Recorder.t ->
  app:Adsm_apps.Registry.entry ->
  protocol:Adsm_dsm.Config.protocol ->
  nprocs:int ->
  scale:Adsm_apps.Registry.scale ->
  unit ->
  measurement
(** [tweak] post-processes the configuration (e.g. a smaller GC threshold
    for the Figure 3 runs, matching the scaled-down data set); [faults]
    runs the app under a fault schedule (applied after [tweak], see
    FAULTS.md); [engine] overrides the event-engine execution mode after
    [tweak] (behavior-neutral — see PARALLELISM.md); [tracer] receives
    the structured event
    stream (the caller closes it); [recorder] captures the consistency
    oracle's observation stream (validate with {!Adsm_check.Oracle.check}
    afterwards). *)

(** Sequential baseline: one processor under SW (no twins, no diffs, no
    messages), as the paper obtains its Table 1 baselines by stripping
    synchronization. *)
val sequential_time_ns :
  app:Adsm_apps.Registry.entry -> scale:Adsm_apps.Registry.scale -> int

(** Speedup of a measurement against the matching sequential baseline. *)
val speedup : measurement -> float
