(** Deterministic fault schedules.

    A schedule is pure data carried by the configuration: node
    crash/restart windows, message perturbations (loss, duplication,
    reorder jitter — modeled as a reliable transport over a faulty
    link, so delivery is delayed and wire bytes grow but no message is
    protocol-visibly lost), and link-partition windows.  All randomness
    comes from one dedicated SplitMix64 stream consumed in global send
    order, so the same (seed, schedule) pair replays byte-identically
    on the sequential and parallel engines.  See FAULTS.md. *)

type crash = {
  node : int;
  at : int;  (** simulated ns at which the node fail-stops *)
  downtime : int;  (** ns until it restarts; must be positive *)
}

(** Nodes [p_lo..p_hi] are cut off from the rest during
    [\[p_from, p_until)]; messages crossing the cut are delayed to the
    heal time. *)
type partition = { p_lo : int; p_hi : int; p_from : int; p_until : int }

type schedule = {
  crashes : crash list;
  loss : float;  (** per-transmission loss probability, [0, 0.9] *)
  dup : float;  (** per-message duplication probability, [0, 0.9] *)
  jitter_ns : int;  (** uniform extra fabric delay in [0, jitter_ns] *)
  rto_ns : int;  (** retransmission timeout charged per lost try *)
  partitions : partition list;
}

val default_rto_ns : int

(** The no-fault schedule: running with [Some empty] is byte-identical
    to running with [None]. *)
val empty : schedule

val is_null : schedule -> bool

(** Parse a spec string: [;]-separated clauses [crash=NODE@AT:DOWNTIME],
    [part=LO-HI@FROM:UNTIL], [loss=P], [dup=P], [jitter=DUR], [rto=DUR],
    where durations take an optional [ns]/[us]/[ms] suffix (default ns).
    Clauses may repeat ([crash], [part]) or override ([loss], ...). *)
val of_string : string -> (schedule, string) result

(** Canonical spec string; [of_string (to_string s) = Ok s]. *)
val to_string : schedule -> string

val pp : Format.formatter -> schedule -> unit

(** Structural validity for an [nprocs]-node run: nodes in range, every
    crash has a restart, per-node crash windows disjoint, probability
    and window bounds.  Checked by [Dsm.run] before anything starts. *)
val validate : nprocs:int -> schedule -> (unit, string) result

(** Draw a random valid schedule (at least one crash) sized for a run of
    roughly [horizon_ns] simulated time. *)
val generate : Adsm_sim.Rng.t -> nprocs:int -> horizon_ns:int -> schedule

(** Candidate reductions for shrinking, biggest cuts first (drop the
    partition, zero loss/dup/jitter, drop or shorten a crash).  Every
    candidate is valid whenever the input is. *)
val shrink : schedule -> schedule Seq.t

(** {1 Runtime state}

    Owned by {!Network}; exposed here because the schedule types live in
    this module.  [down]/parked queues are only touched from the affected
    node's engine lane; [rng] and [counters] only from [perturb], which
    runs in global send order on both engines. *)

type counters = {
  mutable retransmits : int;
  mutable overhead_bytes : int;  (** retransmitted + duplicated wire bytes *)
  mutable duplicates : int;
  mutable partition_delays : int;
}

type runtime = {
  sched : schedule;
  rng : Adsm_sim.Rng.t;
  down : bool array;
  counters : counters;
}

(** Fresh runtime state; the fault RNG stream is derived from [seed] with
    a fixed offset so it is independent of the per-node workload RNGs. *)
val runtime : schedule -> seed:int64 -> nodes:int -> runtime

(** Perturb one message: given its unperturbed fabric [arrival], return
    the (possibly delayed) arrival plus the wire-byte overhead of
    retransmissions and duplicates.  Never returns an arrival below the
    input, so the parallel engine's lookahead bound is preserved. *)
val perturb :
  runtime ->
  now:int ->
  arrival:int ->
  src:int ->
  dst:int ->
  wire_bytes:int ->
  int * int
