(** Wire envelope used by {!Rpc} to correlate requests with replies.

    A mutable record plus a free pool rather than an immutable variant:
    one envelope is allocated per message sent, and all of them die at
    delivery, so the sequential hot path recycles them.  {!Rpc} is the
    only producer and consumer — it takes envelopes from its pool on
    send and releases them after extracting the payload at dispatch.
    With no pool ([None]), {!make} allocates and {!release} is a no-op —
    the behavior under the parallel engine, where envelopes cross
    domains and a shared free list would race. *)

type tag = Request | Reply | Oneway

type 'msg t = {
  mutable tag : tag;
  mutable id : int;  (** correlation id; meaningless for [Oneway] *)
  mutable payload : 'msg;
}

type 'msg pool

val create_pool : unit -> 'msg pool

(** Take an envelope from the pool (or allocate one) and fill it. *)
val make : 'msg pool option -> tag -> id:int -> 'msg -> 'msg t

(** Return a dispatched envelope to the pool.  The caller must have
    extracted everything it needs: the fields may be overwritten by the
    next {!make}.  Each envelope is released at most once, by the
    dispatch path of its own delivery. *)
val release : 'msg pool option -> 'msg t -> unit

val payload : 'msg t -> 'msg
