(* Cluster fabric description.

   The flat shape is the paper's model: every node pair is connected by
   the same [Netcfg] cost, and only the endpoint NICs serialize.  The
   tree shape models the 2-level switched clusters the scaling study
   targets: nodes attach via their NIC to a leaf switch, leaf switches
   connect by an uplink to a root switch, and each uplink direction is a
   shared channel that serializes contending transfers exactly the way
   the endpoint NICs already do.  Same-switch traffic never touches the
   uplinks.

   The shape is pure description; the cost arithmetic lives in
   {!Network.send}. *)

type link = { latency_ns : int; per_byte_ns : int }

type tree = {
  nodes_per_switch : int;
  edge_latency_ns : int;  (* node NIC <-> leaf switch, each way *)
  switch_ns : int;  (* forwarding cost per switch traversal *)
  uplink : link;  (* leaf switch <-> root, one shared channel per direction *)
}

type shape = Flat | Tree of tree

type t = {
  base : Netcfg.t;
  shape : shape;
  speeds : float array;
      (* per-node compute-speed multipliers, indexed modulo its length;
         [||] means a homogeneous cluster (every node at 1.0) *)
}

let flat base = { base; shape = Flat; speeds = [||] }

(* Tree defaults carve the flat wire latency into its hops — half for
   each node<->switch edge — so an uncontended same-switch hop costs
   about one flat hop plus the switch traversal, and give the uplink 4x
   the NIC's bandwidth (an 8:1 oversubscription at the default 32-node
   radix, typical of real 2-level fabrics). *)
let tree ?(nodes_per_switch = 32) ?edge_latency_ns ?(switch_ns = 1_000)
    ?uplink (base : Netcfg.t) =
  if nodes_per_switch <= 0 then
    invalid_arg "Topology.tree: nodes_per_switch must be positive";
  let edge_latency_ns =
    match edge_latency_ns with
    | Some l -> l
    | None -> base.Netcfg.wire_latency_ns / 2
  in
  let uplink =
    match uplink with
    | Some l -> l
    | None ->
      {
        latency_ns = base.Netcfg.wire_latency_ns;
        per_byte_ns = max 1 (base.Netcfg.per_byte_ns / 4);
      }
  in
  {
    base;
    shape = Tree { nodes_per_switch; edge_latency_ns; switch_ns; uplink };
    speeds = [||];
  }

let make base shape =
  match shape with
  | Flat -> flat base
  | Tree tr ->
    if tr.nodes_per_switch <= 0 then
      invalid_arg "Topology.make: nodes_per_switch must be positive";
    { base; shape; speeds = [||] }

let with_speeds t speeds =
  Array.iter
    (fun s ->
      if not (s > 0.) then
        invalid_arg "Topology.with_speeds: multipliers must be positive")
    speeds;
  { t with speeds }

let base t = t.base

let shape t = t.shape

let node_speed t node =
  let n = Array.length t.speeds in
  if n = 0 then 1.0 else t.speeds.(node mod n)

let is_flat t = t.shape = Flat

let switch_of t node =
  match t.shape with
  | Flat -> 0
  | Tree tr -> node / tr.nodes_per_switch

let switch_count t ~nodes =
  match t.shape with
  | Flat -> 1
  | Tree tr -> ((nodes - 1) / tr.nodes_per_switch) + 1

(* Static lower bound on [delivery - send] for any message under
   {!Network.send}'s cost arithmetic: send overhead, the header's
   serialization (every message pays at least [header_bytes] on the NIC),
   the cheapest fabric path, and receive overhead.  Queueing behind busy
   NICs or uplinks only increases the delay, so this is a safe lookahead
   for the conservative parallel engine.  Mirror any change to
   [Network.send]'s arithmetic here — the parallel engine fails loudly if
   a delivery ever lands below the horizon this bound implies. *)
let lookahead_ns (base : Netcfg.t) shape =
  let header_ns = base.Netcfg.header_bytes * base.Netcfg.per_byte_ns in
  let path =
    match shape with
    | Flat -> base.Netcfg.wire_latency_ns
    | Tree tr ->
      (* Same-switch: edge + switch + edge.  Cross-switch additionally
         serializes the header on both shared uplink channels and crosses
         the root: edge + switch + (up serialize + up latency) + switch +
         (down serialize + down latency) + switch + edge. *)
      let same = (2 * tr.edge_latency_ns) + tr.switch_ns in
      let uplink_ns =
        (base.Netcfg.header_bytes * tr.uplink.per_byte_ns) + tr.uplink.latency_ns
      in
      let cross =
        (2 * tr.edge_latency_ns) + (3 * tr.switch_ns) + (2 * uplink_ns)
      in
      min same cross
  in
  base.Netcfg.send_overhead_ns + header_ns + path + base.Netcfg.recv_overhead_ns

let shape_to_string = function
  | Flat -> "flat"
  | Tree { nodes_per_switch; _ } -> Printf.sprintf "tree:%d" nodes_per_switch

(* "flat" | "tree" | "tree:<nodes-per-switch>", applied to a base cost
   model by the caller. *)
let shape_of_string ~base s =
  match String.lowercase_ascii s with
  | "flat" -> Ok Flat
  | "tree" -> Ok (tree base).shape
  | s when String.length s > 5 && String.sub s 0 5 = "tree:" -> (
    match int_of_string_opt (String.sub s 5 (String.length s - 5)) with
    | Some k when k > 0 -> Ok (tree ~nodes_per_switch:k base).shape
    | Some _ | None ->
      Error (Printf.sprintf "invalid tree radix in topology %S" s))
  | _ -> Error (Printf.sprintf "unknown topology %S (try flat, tree, tree:N)" s)
