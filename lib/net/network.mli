(** Simulated point-to-point cluster network.

    Messages of type ['msg] are delivered to a per-node handler after the
    cost-model delay.  Each directed link is FIFO: a message never overtakes
    an earlier message on the same link.  The network also keeps message and
    byte counters, globally, per node, and per message [kind] label, which
    the experiment harness reads out for the paper's Table 4. *)

type 'msg t

(** Passive observation hooks, called synchronously from inside [send]
    (after counters are updated) and from inside the delivery event
    (before the receive handler runs).  A monitor must not send messages
    or schedule events — it exists so an upper layer (e.g. tracing) can
    watch traffic without the network depending on it, and without
    perturbing delivery order or cost. *)
type monitor = {
  on_send : now:int -> src:int -> dst:int -> bytes:int -> kind:Kind.t -> unit;
  on_deliver : now:int -> src:int -> dst:int -> bytes:int -> kind:Kind.t -> unit;
}

(** A flat network over the given cost model — shorthand for
    [create_topo] with {!Topology.flat}. *)
val create : Adsm_sim.Engine.t -> Netcfg.t -> nodes:int -> 'msg t

(** A network over an arbitrary fabric shape.  The [Flat] shape is
    byte-identical to [create]; tree shapes add switch hops and shared,
    serializing uplink channels (see {!Topology}).  Deliveries are routed
    to the destination node's engine lane when the engine has lanes. *)
val create_topo : Adsm_sim.Engine.t -> Topology.t -> nodes:int -> 'msg t

(** Install or remove the traffic monitor (at most one at a time). *)
val set_monitor : 'msg t -> monitor option -> unit

(** Install fault-injection runtime state ({!Fault.runtime}) built from
    the run's schedule, or remove it.  With no runtime installed (the
    default) the delivery path is byte-identical to a fault-free build. *)
val set_faults : 'msg t -> Fault.runtime option -> unit

(** The installed fault runtime, for reading its counters. *)
val fault_runtime : 'msg t -> Fault.runtime option

(** Mark [node] crashed: messages addressed to it are parked instead of
    delivered.  Must be called from an event on [node]'s lane.
    @raise Invalid_argument if no fault runtime is installed. *)
val fault_crash : 'msg t -> node:int -> unit

(** Restart [node]: clears the crashed flag and synchronously hands every
    parked message to its handler in arrival order.  Must be called from
    an event on [node]'s lane.
    @raise Invalid_argument if no fault runtime is installed. *)
val fault_restart : 'msg t -> node:int -> unit

val nodes : 'msg t -> int

val config : 'msg t -> Netcfg.t

val topology : 'msg t -> Topology.t

(** Install the receive handler for [node].  Must be set before any message
    addressed to [node] is delivered. *)
val set_handler : 'msg t -> node:int -> (src:int -> 'msg -> unit) -> unit

(** [send t ~src ~dst ~bytes ~kind msg] transmits [msg] with a payload of
    [bytes] bytes.  [kind] labels the message for statistics.
    @raise Invalid_argument on self-sends or out-of-range nodes. *)
val send : 'msg t -> src:int -> dst:int -> bytes:int -> kind:Kind.t -> 'msg -> unit

(** Total messages delivered or in flight. *)
val total_messages : 'msg t -> int

(** Total payload bytes (excluding headers). *)
val total_payload_bytes : 'msg t -> int

(** Total bytes on the wire including per-message headers. *)
val total_wire_bytes : 'msg t -> int

(** [(messages, payload_bytes)] counters for one traffic kind. *)
val kind_counts : 'msg t -> kind:Kind.t -> int * int

(** Per-kind [(label, (messages, payload_bytes))] counters for every kind
    with traffic, sorted by label — the report format the harness and the
    Table 4 extraction consume. *)
val by_kind : 'msg t -> (string * (int * int)) list

(** [(sent, received)] message counts for [node]; received counts messages
    addressed to it that have been sent, whether or not yet delivered. *)
val node_counts : 'msg t -> node:int -> int * int

(** Reset all counters (topology and handlers are kept). *)
val reset_counters : 'msg t -> unit
