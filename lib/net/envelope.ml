(* The envelope is a mutable record rather than an immutable variant so
   the sequential hot path can recycle envelopes through a free pool:
   the send path allocates one envelope per message — millions per run
   at large n — and every one of them dies at delivery, pure minor-heap
   churn.  [Rpc] takes envelopes from its pool at send time and releases
   them after extracting the payload at dispatch; under the parallel
   engine envelopes cross domains, so the pool is disabled there and
   every envelope is freshly allocated ([make None]). *)

type tag = Request | Reply | Oneway

type 'msg t = {
  mutable tag : tag;
  mutable id : int;  (* correlation id; meaningless for [Oneway] *)
  mutable payload : 'msg;
}

(* Array-backed free stack.  Slots at or beyond [len] may retain stale
   references to envelopes (and through them, their last payloads) until
   overwritten by a later release — bounded by the in-flight high-water
   mark, which is also the pool's natural size. *)
type 'msg pool = { mutable slots : 'msg t array; mutable len : int }

let create_pool () = { slots = [||]; len = 0 }

(* Retaining arbitrarily many dead envelopes (each pinning its last
   payload) would turn the pool into a leak; past this point released
   envelopes are simply dropped for the GC. *)
let pool_cap = 4096

let payload t = t.payload

let make pool tag ~id payload =
  match pool with
  | None -> { tag; id; payload }
  | Some p ->
    if p.len = 0 then { tag; id; payload }
    else begin
      let n = p.len - 1 in
      p.len <- n;
      let e = p.slots.(n) in
      e.tag <- tag;
      e.id <- id;
      e.payload <- payload;
      e
    end

let release pool e =
  match pool with
  | None -> ()
  | Some p ->
    if p.len < pool_cap then begin
      if p.len = Array.length p.slots then begin
        let grown = Array.make (max 64 (2 * p.len)) e in
        Array.blit p.slots 0 grown 0 p.len;
        p.slots <- grown
      end;
      p.slots.(p.len) <- e;
      p.len <- p.len + 1
    end
