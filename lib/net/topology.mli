(** Cluster fabric description: the flat all-pairs model of the paper, or
    a 2-level switched tree for the scaling studies.

    A topology is a {!Netcfg} base cost model (NIC overheads and
    bandwidth) plus a {!shape}.  The [Flat] shape reproduces the
    historical flat network byte-for-byte; the [Tree] shape adds leaf
    switches and a root with per-hop latencies and shared, serializing
    uplink channels.  Per-node compute-speed multipliers model
    heterogeneous clusters and are consumed by the DSM runtime's compute
    accounting, not by the network itself. *)

type link = { latency_ns : int; per_byte_ns : int }

type tree = {
  nodes_per_switch : int;  (** leaf switch radix *)
  edge_latency_ns : int;  (** node NIC <-> leaf switch wire, each way *)
  switch_ns : int;  (** forwarding cost per switch traversal *)
  uplink : link;
      (** leaf <-> root channel; one shared, serializing channel per
          direction per leaf switch *)
}

type shape = Flat | Tree of tree

type t = private {
  base : Netcfg.t;
  shape : shape;
  speeds : float array;
      (** per-node compute-speed multipliers, indexed modulo the array
          length; [[||]] = homogeneous cluster *)
}

(** The paper's flat network over the given cost model. *)
val flat : Netcfg.t -> t

(** A 2-level tree over the given cost model.  Defaults: 32 nodes per
    switch, edge latency = half the flat wire latency, 1 us switch
    traversal, uplink at the flat wire latency with 4x the NIC
    bandwidth. *)
val tree :
  ?nodes_per_switch:int ->
  ?edge_latency_ns:int ->
  ?switch_ns:int ->
  ?uplink:link ->
  Netcfg.t ->
  t

(** Pair a cost model with an already-built shape (no speed multipliers). *)
val make : Netcfg.t -> shape -> t

(** Attach per-node compute-speed multipliers (> 0; node [i] runs at
    [speeds.(i mod length)] times the base speed). *)
val with_speeds : t -> float array -> t

val base : t -> Netcfg.t

val shape : t -> shape

val is_flat : t -> bool

(** Effective compute-speed multiplier for a node (1.0 when homogeneous). *)
val node_speed : t -> int -> float

(** Leaf switch a node attaches to (always 0 under [Flat]). *)
val switch_of : t -> int -> int

val switch_count : t -> nodes:int -> int

(** [lookahead_ns base shape] is a static lower bound, in simulated
    nanoseconds, on the delay between any [Network.send] call and its
    delivery event under this fabric: send overhead + header serialization
    + the cheapest path through the shape + receive overhead.  Contention
    (busy NICs, shared uplinks) only adds delay, so the bound is safe.
    Strictly positive for every preset cost model; used as the safe-horizon
    window by the conservative parallel engine (see PARALLELISM.md). *)
val lookahead_ns : Netcfg.t -> shape -> int

val shape_to_string : shape -> string

(** Parse ["flat"], ["tree"], or ["tree:N"] (N = nodes per switch); tree
    hop costs are derived from [base]. *)
val shape_of_string : base:Netcfg.t -> string -> (shape, string) result
