(** Request/reply layer over {!Network} for simulated processes.

    A client process [call]s and suspends until the server's reply arrives.
    Servers receive a [respond] closure and may reply immediately or later
    (e.g. to model the SW protocol's ownership quantum).  One-way messages
    ([cast]) bypass the correlation machinery. *)

type 'msg t

type 'msg respond = bytes:int -> kind:Kind.t -> 'msg -> unit

(** What a node does with an incoming message. *)
type 'msg handler = src:int -> 'msg -> 'msg respond option -> unit
(** The [respond option] is [Some r] for requests ([call]) and [None] for
    one-way messages ([cast]). *)

val create : Adsm_sim.Engine.t -> Netcfg.t -> nodes:int -> 'msg t

(** Like [create] but over an arbitrary fabric shape (see {!Topology}). *)
val create_topo : Adsm_sim.Engine.t -> Topology.t -> nodes:int -> 'msg t

val nodes : 'msg t -> int

(** The underlying network (for statistics). *)
val network : 'msg t -> ('msg Envelope.t) Network.t

(** Install or remove a {!Network.monitor} on the underlying network.
    Requests, replies and casts are all observed (each as one message,
    with its [kind] label and payload size). *)
val set_monitor : 'msg t -> Network.monitor option -> unit

val set_handler : 'msg t -> node:int -> 'msg handler -> unit

(** Blocking request; must run in process context.  Returns the reply. *)
val call : 'msg t -> src:int -> dst:int -> bytes:int -> kind:Kind.t -> 'msg -> 'msg

(** Non-blocking request: returns immediately with a cell that the reply
    will fill.  Used to overlap several requests (e.g. fetching diffs from
    all writers of a page in parallel, as TreadMarks does). *)
val call_async :
  'msg t -> src:int -> dst:int -> bytes:int -> kind:Kind.t -> 'msg ->
  'msg Adsm_sim.Proc.Ivar.t

(** Fire-and-forget message. *)
val cast : 'msg t -> src:int -> dst:int -> bytes:int -> kind:Kind.t -> 'msg -> unit
