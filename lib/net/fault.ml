(* Deterministic fault schedules and their runtime state.

   A schedule is pure data: node crash/restart windows, message-level
   perturbations (loss, duplication, reorder jitter) and link-partition
   windows.  It travels with the configuration — the same (seed,
   schedule) pair must replay byte-identically on either engine — so
   everything random is drawn from one dedicated SplitMix64 stream
   consumed inside {!Network.send_now}, which executes in global send
   order on both the sequential and the conservative parallel engine.

   The transport model is RELIABLE delivery over a faulty link: a lost
   message is retransmitted until it gets through (the draw decides how
   many tries, each adding one round-trip timeout of latency and one
   wire copy of overhead), a duplicate is suppressed by receiver-side
   sequence numbers (costing only wire bytes), reorder jitter and
   partition windows delay the fabric crossing.  No protocol message is
   ever truly dropped, so the DSM layer needs no timeout/abort paths and
   a run under any message schedule still completes — see FAULTS.md for
   why this is the honest boundary of the model. *)

module Rng = Adsm_sim.Rng

type crash = { node : int; at : int; downtime : int }

type partition = { p_lo : int; p_hi : int; p_from : int; p_until : int }

type schedule = {
  crashes : crash list;
  loss : float;  (** per-transmission loss probability, [0, 0.9] *)
  dup : float;  (** per-message duplication probability, [0, 0.9] *)
  jitter_ns : int;  (** uniform extra fabric delay in [0, jitter_ns] *)
  rto_ns : int;  (** retransmission timeout charged per lost try *)
  partitions : partition list;
}

let default_rto_ns = 400_000

let empty =
  { crashes = []; loss = 0.; dup = 0.; jitter_ns = 0;
    rto_ns = default_rto_ns; partitions = [] }

let is_null s =
  s.crashes = [] && s.loss = 0. && s.dup = 0. && s.jitter_ns = 0
  && s.partitions = []

(* ------------------------------------------------------------------ *)
(* Spec strings                                                       *)
(* ------------------------------------------------------------------ *)

(* Grammar (see FAULTS.md): `;`-separated clauses
     crash=NODE@AT:DOWNTIME      (repeatable)
     part=LO-HI@FROM:UNTIL       (repeatable)
     loss=P  dup=P  jitter=DUR  rto=DUR
   where DUR/AT/DOWNTIME take an optional ns/us/ms suffix (default ns). *)

let duration_of_string s =
  let num mult body =
    match int_of_string_opt body with
    | Some v when v >= 0 -> Some (v * mult)
    | Some _ | None -> None
  in
  let n = String.length s in
  if n > 2 && String.sub s (n - 2) 2 = "ns" then num 1 (String.sub s 0 (n - 2))
  else if n > 2 && String.sub s (n - 2) 2 = "us" then
    num 1_000 (String.sub s 0 (n - 2))
  else if n > 2 && String.sub s (n - 2) 2 = "ms" then
    num 1_000_000 (String.sub s 0 (n - 2))
  else num 1 s

let split_on c s = String.split_on_char c s |> List.filter (fun x -> x <> "")

let of_string spec =
  let ( let* ) r f = Result.bind r f in
  let err fmt = Printf.ksprintf Result.error fmt in
  let prob clause v =
    match float_of_string_opt v with
    | Some p when p >= 0. && p <= 0.9 -> Ok p
    | Some _ | None -> err "%s: probability must be in [0, 0.9]" clause
  in
  let dur clause v =
    match duration_of_string v with
    | Some d -> Ok d
    | None -> err "%s: bad duration %S (NUM[ns|us|ms])" clause v
  in
  let parse_clause acc clause =
    match String.index_opt clause '=' with
    | None -> err "bad clause %S (expected key=value)" clause
    | Some i -> (
      let key = String.sub clause 0 i in
      let v = String.sub clause (i + 1) (String.length clause - i - 1) in
      match key with
      | "loss" ->
        let* p = prob clause v in
        Ok { acc with loss = p }
      | "dup" ->
        let* p = prob clause v in
        Ok { acc with dup = p }
      | "jitter" ->
        let* d = dur clause v in
        Ok { acc with jitter_ns = d }
      | "rto" ->
        let* d = dur clause v in
        Ok { acc with rto_ns = d }
      | "crash" -> (
        match split_on '@' v with
        | [ node; window ] -> (
          match (int_of_string_opt node, split_on ':' window) with
          | Some node, [ at; downtime ] ->
            let* at = dur clause at in
            let* downtime = dur clause downtime in
            Ok { acc with crashes = { node; at; downtime } :: acc.crashes }
          | _ -> err "%s: expected crash=NODE@AT:DOWNTIME" clause)
        | _ -> err "%s: expected crash=NODE@AT:DOWNTIME" clause)
      | "part" -> (
        match split_on '@' v with
        | [ range; window ] -> (
          match (split_on '-' range, split_on ':' window) with
          | [ lo; hi ], [ from; until ] -> (
            match (int_of_string_opt lo, int_of_string_opt hi) with
            | Some p_lo, Some p_hi ->
              let* p_from = dur clause from in
              let* p_until = dur clause until in
              Ok
                {
                  acc with
                  partitions =
                    { p_lo; p_hi; p_from; p_until } :: acc.partitions;
                }
            | _ -> err "%s: expected part=LO-HI@FROM:UNTIL" clause)
          | _ -> err "%s: expected part=LO-HI@FROM:UNTIL" clause)
        | _ -> err "%s: expected part=LO-HI@FROM:UNTIL" clause)
      | _ -> err "unknown fault clause %S" key)
  in
  let* s =
    List.fold_left
      (fun acc clause ->
        let* acc = acc in
        parse_clause acc clause)
      (Ok empty)
      (split_on ';' (String.trim spec))
  in
  Ok { s with crashes = List.rev s.crashes; partitions = List.rev s.partitions }

let to_string s =
  let b = Buffer.create 64 in
  let clause fmt =
    Printf.ksprintf
      (fun c ->
        if Buffer.length b > 0 then Buffer.add_char b ';';
        Buffer.add_string b c)
      fmt
  in
  List.iter (fun c -> clause "crash=%d@%d:%d" c.node c.at c.downtime) s.crashes;
  if s.loss > 0. then clause "loss=%g" s.loss;
  if s.dup > 0. then clause "dup=%g" s.dup;
  if s.jitter_ns > 0 then clause "jitter=%d" s.jitter_ns;
  if s.rto_ns <> default_rto_ns then clause "rto=%d" s.rto_ns;
  List.iter
    (fun p -> clause "part=%d-%d@%d:%d" p.p_lo p.p_hi p.p_from p.p_until)
    s.partitions;
  Buffer.contents b

let pp ppf s = Format.pp_print_string ppf (to_string s)

(* ------------------------------------------------------------------ *)
(* Validation                                                         *)
(* ------------------------------------------------------------------ *)

(* Every crash must restart (downtime > 0 and finite by construction):
   the recovery design has no permanent-failure mode — barriers wait for
   the crashed node, which is what keeps GC from purging the diffs its
   recovery needs.  Per-node crash windows must not overlap: a node
   cannot crash again before its previous restart completed. *)
let validate ~nprocs s =
  let err fmt = Printf.ksprintf Result.error fmt in
  let check_crash acc (c : crash) =
    Result.bind acc (fun () ->
        if c.node < 0 || c.node >= nprocs then
          err "crash node %d out of range [0, %d)" c.node nprocs
        else if c.at < 0 then err "crash time %d negative" c.at
        else if c.downtime <= 0 then
          err "crash at node %d has no restart (downtime %d)" c.node c.downtime
        else Ok ())
  in
  let check_part acc (p : partition) =
    Result.bind acc (fun () ->
        if p.p_lo < 0 || p.p_hi >= nprocs || p.p_lo > p.p_hi then
          err "partition range %d-%d invalid for %d nodes" p.p_lo p.p_hi nprocs
        else if p.p_from < 0 || p.p_until <= p.p_from then
          err "partition window %d:%d invalid" p.p_from p.p_until
        else Ok ())
  in
  let per_node_disjoint acc =
    Result.bind acc (fun () ->
        let by_node = Hashtbl.create 8 in
        List.iter
          (fun (c : crash) ->
            let prev =
              Option.value ~default:[] (Hashtbl.find_opt by_node c.node)
            in
            Hashtbl.replace by_node c.node (c :: prev))
          s.crashes;
        Hashtbl.fold
          (fun node cs acc ->
            Result.bind acc (fun () ->
                let sorted =
                  List.sort (fun (a : crash) b -> compare a.at b.at) cs
                in
                let rec check = function
                  | a :: (b : crash) :: rest ->
                    if a.at + a.downtime > b.at then
                      err "node %d crashes at %d before its %d restart" node
                        b.at (a.at + a.downtime)
                    else check (b :: rest)
                  | _ -> Ok ()
                in
                check sorted))
          by_node (Ok ()))
  in
  List.fold_left check_crash (Ok ()) s.crashes
  |> fun acc ->
  List.fold_left check_part acc s.partitions |> per_node_disjoint

(* ------------------------------------------------------------------ *)
(* Generation and shrinking (for the fault fuzzer)                    *)
(* ------------------------------------------------------------------ *)

(* Draw a schedule sized for a fuzz run of roughly [horizon_ns]
   simulated time.  Probabilities are drawn on a 1/100 grid so the spec
   string round-trips exactly through %g. *)
let generate rng ~nprocs ~horizon_ns =
  let crash_count = 1 + Rng.int rng 2 in
  let crashes =
    List.init crash_count (fun _ ->
        {
          node = Rng.int rng nprocs;
          at = horizon_ns / 10 * (1 + Rng.int rng 9);
          downtime = horizon_ns / 20 * (1 + Rng.int rng 4);
        })
  in
  (* Overlapping windows on one node are invalid: keep the first. *)
  let crashes =
    List.fold_left
      (fun acc (c : crash) ->
        if
          List.exists
            (fun (o : crash) ->
              o.node = c.node
              && c.at < o.at + o.downtime
              && o.at < c.at + c.downtime)
            acc
        then acc
        else c :: acc)
      [] crashes
    |> List.rev
  in
  let loss = if Rng.int rng 2 = 0 then float_of_int (Rng.int rng 16) /. 100. else 0. in
  let dup = if Rng.int rng 2 = 0 then float_of_int (Rng.int rng 11) /. 100. else 0. in
  let jitter_ns = if Rng.int rng 2 = 0 then Rng.int rng 20_001 else 0 in
  let partitions =
    if nprocs >= 2 && Rng.int rng 4 = 0 then begin
      let cut = 1 + Rng.int rng (nprocs - 1) in
      let p_from = horizon_ns / 10 * (1 + Rng.int rng 8) in
      [
        {
          p_lo = 0;
          p_hi = cut - 1;
          p_from;
          p_until = p_from + (horizon_ns / 20 * (1 + Rng.int rng 3));
        };
      ]
    end
    else []
  in
  { crashes; loss; dup; jitter_ns; rto_ns = default_rto_ns; partitions }

(* Candidate reductions, biggest cuts first.  Like {!Workload.shrink},
   every candidate is a valid schedule; the caller keeps a candidate only
   if the failure it is chasing still reproduces. *)
let shrink s () =
  let drop_nth n l = List.filteri (fun i _ -> i <> n) l in
  let candidates =
    (if s.partitions <> [] then [ { s with partitions = [] } ] else [])
    @ (if s.loss > 0. then [ { s with loss = 0. } ] else [])
    @ (if s.dup > 0. then [ { s with dup = 0. } ] else [])
    @ (if s.jitter_ns > 0 then [ { s with jitter_ns = 0 } ] else [])
    @ List.mapi (fun i _ -> { s with crashes = drop_nth i s.crashes }) s.crashes
    @ List.filter_map
        (fun (c : crash) ->
          if c.downtime > 2_000 then
            Some
              {
                s with
                crashes =
                  List.map
                    (fun (o : crash) ->
                      if o == c then { o with downtime = o.downtime / 2 }
                      else o)
                    s.crashes;
              }
          else None)
        s.crashes
  in
  (List.to_seq candidates) ()

(* ------------------------------------------------------------------ *)
(* Runtime state                                                      *)
(* ------------------------------------------------------------------ *)

(* Mutable per-run state.  [down] and the parked queues (which live in
   {!Network}, where the message type is known) are only touched by
   events on the affected node's lane; [rng] and [counters] are only
   touched inside [perturb], which {!Network.send_now} runs in global
   send order on both engines. *)

type counters = {
  mutable retransmits : int;
  mutable overhead_bytes : int;  (** retransmitted + duplicated wire bytes *)
  mutable duplicates : int;
  mutable partition_delays : int;
}

type runtime = {
  sched : schedule;
  rng : Rng.t;
  down : bool array;
  counters : counters;
}

let runtime sched ~seed ~nodes =
  {
    sched;
    (* Offset keeps the fault stream independent of the per-node
       workload generators (seed + id * 7919 in State.make_node). *)
    rng = Rng.create (Int64.add seed 0x0FA0_17ED_5EEDL);
    down = Array.make nodes false;
    counters =
      { retransmits = 0; overhead_bytes = 0; duplicates = 0;
        partition_delays = 0 };
  }

(* Perturb one message: returns its (possibly delayed) fabric arrival
   and the wire-byte overhead of retransmissions/duplicates.  Loss and
   duplication draw from [rng]; the draw order is the global send order,
   identical on both engines.  The delay is strictly additive, so the
   parallel engine's lookahead bound still holds, and it lands BEFORE
   the receiver-NIC serialization step, so per-destination delivery
   order is preserved (rx_done is strictly monotone per destination). *)
let perturb rt ~now ~arrival ~src ~dst ~wire_bytes =
  let s = rt.sched in
  let c = rt.counters in
  let arrival = ref arrival in
  let overhead = ref 0 in
  if s.loss > 0. then begin
    let tries = ref 0 in
    while !tries < 8 && Rng.float rt.rng < s.loss do
      incr tries
    done;
    if !tries > 0 then begin
      c.retransmits <- c.retransmits + !tries;
      overhead := !overhead + (!tries * wire_bytes);
      arrival := !arrival + (!tries * s.rto_ns)
    end
  end;
  if s.dup > 0. && Rng.float rt.rng < s.dup then begin
    c.duplicates <- c.duplicates + 1;
    overhead := !overhead + wire_bytes
  end;
  if s.jitter_ns > 0 then arrival := !arrival + Rng.int rt.rng (s.jitter_ns + 1);
  List.iter
    (fun p ->
      if now >= p.p_from && now < p.p_until then begin
        let src_in = src >= p.p_lo && src <= p.p_hi in
        let dst_in = dst >= p.p_lo && dst <= p.p_hi in
        if src_in <> dst_in && !arrival < p.p_until then begin
          c.partition_delays <- c.partition_delays + 1;
          arrival := p.p_until
        end
      end)
    s.partitions;
  (!arrival, !overhead)
