module Engine = Adsm_sim.Engine
module Proc = Adsm_sim.Proc

type 'msg respond = bytes:int -> kind:Kind.t -> 'msg -> unit

type 'msg handler = src:int -> 'msg -> 'msg respond option -> unit

(* Request ids and the pending-reply tables are sharded per caller node:
   ids are never observable (they ride inside the envelope and cost no
   wire bytes beyond the fixed header), and a reply is always delivered
   back to the node that issued the call, so each node can match replies
   out of its own table.  This keeps every RPC structure lane-owned —
   under the parallel engine a node's calls and its reply deliveries all
   execute on that node's lane, so no two domains ever touch the same
   counter or table (see PARALLELISM.md). *)
type 'msg t = {
  engine : Engine.t;
  net : 'msg Envelope.t Network.t;
  next_ids : int array;
  pendings : (int, 'msg Proc.Ivar.t) Hashtbl.t array;
  handlers : 'msg handler option array;
  pool : 'msg Envelope.pool option;
      (* envelope free pool; [None] under the parallel engine, where
         envelopes cross domains and a shared free list would race *)
}

let create_topo engine topo ~nodes =
  let t =
    {
      engine;
      net = Network.create_topo engine topo ~nodes;
      next_ids = Array.make nodes 0;
      pendings = Array.init nodes (fun _ -> Hashtbl.create 16);
      handlers = Array.make nodes None;
      pool =
        (if Engine.is_parallel engine then None
         else Some (Envelope.create_pool ()));
    }
  in
  for node = 0 to nodes - 1 do
    Network.set_handler t.net ~node (fun ~src env ->
        (* Extract everything, then release: a recycled envelope may be
           overwritten by any send the handler makes. *)
        let tag = env.Envelope.tag in
        let id = env.Envelope.id in
        let msg = env.Envelope.payload in
        Envelope.release t.pool env;
        match tag with
        | Envelope.Reply -> (
          let pending = t.pendings.(node) in
          match Hashtbl.find_opt pending id with
          | Some ivar ->
            Hashtbl.remove pending id;
            Proc.Ivar.fill t.engine ivar msg
          | None ->
            failwith (Printf.sprintf "Rpc: unexpected reply id %d" id))
        | Envelope.Request -> (
          match t.handlers.(node) with
          | None -> failwith (Printf.sprintf "Rpc: node %d has no handler" node)
          | Some h ->
            let respond ~bytes ~kind reply =
              Network.send t.net ~src:node ~dst:src ~bytes ~kind
                (Envelope.make t.pool Envelope.Reply ~id reply)
            in
            h ~src msg (Some respond))
        | Envelope.Oneway -> (
          match t.handlers.(node) with
          | None -> failwith (Printf.sprintf "Rpc: node %d has no handler" node)
          | Some h -> h ~src msg None))
  done;
  t

let create engine cfg ~nodes = create_topo engine (Topology.flat cfg) ~nodes

let nodes t = Network.nodes t.net

let network t = t.net

let set_monitor t monitor = Network.set_monitor t.net monitor

let set_handler t ~node h = t.handlers.(node) <- Some h

let call_async t ~src ~dst ~bytes ~kind msg =
  let id = t.next_ids.(src) in
  t.next_ids.(src) <- id + 1;
  let ivar = Proc.Ivar.create () in
  Hashtbl.replace t.pendings.(src) id ivar;
  Network.send t.net ~src ~dst ~bytes ~kind
    (Envelope.make t.pool Envelope.Request ~id msg);
  ivar

let call t ~src ~dst ~bytes ~kind msg =
  Proc.Ivar.await (call_async t ~src ~dst ~bytes ~kind msg)

let cast t ~src ~dst ~bytes ~kind msg =
  Network.send t.net ~src ~dst ~bytes ~kind
    (Envelope.make t.pool Envelope.Oneway ~id:0 msg)
