module Engine = Adsm_sim.Engine
module Proc = Adsm_sim.Proc

type 'msg respond = bytes:int -> kind:Kind.t -> 'msg -> unit

type 'msg handler = src:int -> 'msg -> 'msg respond option -> unit

type 'msg t = {
  engine : Engine.t;
  net : 'msg Envelope.t Network.t;
  mutable next_id : int;
  pending : (int, 'msg Proc.Ivar.t) Hashtbl.t;
  handlers : 'msg handler option array;
}

let create_topo engine topo ~nodes =
  let t =
    {
      engine;
      net = Network.create_topo engine topo ~nodes;
      next_id = 0;
      pending = Hashtbl.create 64;
      handlers = Array.make nodes None;
    }
  in
  for node = 0 to nodes - 1 do
    Network.set_handler t.net ~node (fun ~src env ->
        match env with
        | Envelope.Reply (id, msg) -> (
          match Hashtbl.find_opt t.pending id with
          | Some ivar ->
            Hashtbl.remove t.pending id;
            Proc.Ivar.fill t.engine ivar msg
          | None ->
            failwith (Printf.sprintf "Rpc: unexpected reply id %d" id))
        | Envelope.Request (id, msg) -> (
          match t.handlers.(node) with
          | None -> failwith (Printf.sprintf "Rpc: node %d has no handler" node)
          | Some h ->
            let respond ~bytes ~kind reply =
              Network.send t.net ~src:node ~dst:src ~bytes ~kind
                (Envelope.Reply (id, reply))
            in
            h ~src msg (Some respond))
        | Envelope.Oneway msg -> (
          match t.handlers.(node) with
          | None -> failwith (Printf.sprintf "Rpc: node %d has no handler" node)
          | Some h -> h ~src msg None))
  done;
  t

let create engine cfg ~nodes = create_topo engine (Topology.flat cfg) ~nodes

let nodes t = Network.nodes t.net

let network t = t.net

let set_monitor t monitor = Network.set_monitor t.net monitor

let set_handler t ~node h = t.handlers.(node) <- Some h

let call_async t ~src ~dst ~bytes ~kind msg =
  let id = t.next_id in
  t.next_id <- id + 1;
  let ivar = Proc.Ivar.create () in
  Hashtbl.replace t.pending id ivar;
  Network.send t.net ~src ~dst ~bytes ~kind (Envelope.Request (id, msg));
  ivar

let call t ~src ~dst ~bytes ~kind msg =
  Proc.Ivar.await (call_async t ~src ~dst ~bytes ~kind msg)

let cast t ~src ~dst ~bytes ~kind msg =
  Network.send t.net ~src ~dst ~bytes ~kind (Envelope.Oneway msg)
