module Engine = Adsm_sim.Engine
module Proc = Adsm_sim.Proc

type 'msg respond = bytes:int -> kind:Kind.t -> 'msg -> unit

type 'msg handler = src:int -> 'msg -> 'msg respond option -> unit

(* Request ids and the pending-reply tables are sharded per caller node:
   ids are never observable (they ride inside the envelope and cost no
   wire bytes beyond the fixed header), and a reply is always delivered
   back to the node that issued the call, so each node can match replies
   out of its own table.  This keeps every RPC structure lane-owned —
   under the parallel engine a node's calls and its reply deliveries all
   execute on that node's lane, so no two domains ever touch the same
   counter or table (see PARALLELISM.md). *)
type 'msg t = {
  engine : Engine.t;
  net : 'msg Envelope.t Network.t;
  next_ids : int array;
  pendings : (int, 'msg Proc.Ivar.t) Hashtbl.t array;
  handlers : 'msg handler option array;
}

let create_topo engine topo ~nodes =
  let t =
    {
      engine;
      net = Network.create_topo engine topo ~nodes;
      next_ids = Array.make nodes 0;
      pendings = Array.init nodes (fun _ -> Hashtbl.create 16);
      handlers = Array.make nodes None;
    }
  in
  for node = 0 to nodes - 1 do
    Network.set_handler t.net ~node (fun ~src env ->
        match env with
        | Envelope.Reply (id, msg) -> (
          let pending = t.pendings.(node) in
          match Hashtbl.find_opt pending id with
          | Some ivar ->
            Hashtbl.remove pending id;
            Proc.Ivar.fill t.engine ivar msg
          | None ->
            failwith (Printf.sprintf "Rpc: unexpected reply id %d" id))
        | Envelope.Request (id, msg) -> (
          match t.handlers.(node) with
          | None -> failwith (Printf.sprintf "Rpc: node %d has no handler" node)
          | Some h ->
            let respond ~bytes ~kind reply =
              Network.send t.net ~src:node ~dst:src ~bytes ~kind
                (Envelope.Reply (id, reply))
            in
            h ~src msg (Some respond))
        | Envelope.Oneway msg -> (
          match t.handlers.(node) with
          | None -> failwith (Printf.sprintf "Rpc: node %d has no handler" node)
          | Some h -> h ~src msg None))
  done;
  t

let create engine cfg ~nodes = create_topo engine (Topology.flat cfg) ~nodes

let nodes t = Network.nodes t.net

let network t = t.net

let set_monitor t monitor = Network.set_monitor t.net monitor

let set_handler t ~node h = t.handlers.(node) <- Some h

let call_async t ~src ~dst ~bytes ~kind msg =
  let id = t.next_ids.(src) in
  t.next_ids.(src) <- id + 1;
  let ivar = Proc.Ivar.create () in
  Hashtbl.replace t.pendings.(src) id ivar;
  Network.send t.net ~src ~dst ~bytes ~kind (Envelope.Request (id, msg));
  ivar

let call t ~src ~dst ~bytes ~kind msg =
  Proc.Ivar.await (call_async t ~src ~dst ~bytes ~kind msg)

let cast t ~src ~dst ~bytes ~kind msg =
  Network.send t.net ~src ~dst ~bytes ~kind (Envelope.Oneway msg)
