(** Traffic classes for network accounting.

    Every message on the simulated network carries one of these labels; the
    network keeps per-kind message and byte counters that the experiment
    harness reads out for the paper's Table 4.  A closed variant (instead of
    the free-form strings it replaces) gives the counters a fixed dense
    index and catches typos at compile time; the protocol layer derives the
    label once, in [Msg.kind]. *)

type t =
  | Lock  (** lock acquires, forwards and grants *)
  | Barrier  (** barrier arrivals and releases *)
  | Gc  (** garbage-collection coordination *)
  | Page  (** whole-page requests and copies *)
  | Diff  (** diff requests, replies and HLRC diff flushes *)
  | Own  (** ownership requests, transfers and refusals *)
  | Recover  (** post-restart interval replay (crash recovery) *)

(** Number of kinds (the counter-array length). *)
val count : int

(** Dense index in [0, count). *)
val index : t -> int

(** Every kind, in index order. *)
val all : t list

(** Lowercase label used in reports ("lock", "barrier", "gc", "page",
    "diff", "own"). *)
val to_string : t -> string

val of_string : string -> t option

val pp : Format.formatter -> t -> unit
