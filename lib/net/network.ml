module Engine = Adsm_sim.Engine

type monitor = {
  on_send : now:int -> src:int -> dst:int -> bytes:int -> kind:Kind.t -> unit;
  on_deliver : now:int -> src:int -> dst:int -> bytes:int -> kind:Kind.t -> unit;
}

(* Fault-injection state: the schedule-level runtime (RNG, down flags,
   counters) plus per-node queues of messages that arrived while their
   destination was crashed, parked here and handed to the handler when
   the node restarts.  The queues live in this record (not in
   [Fault.runtime]) because they hold ['msg] values. *)
type 'msg faults = {
  rt : Fault.runtime;
  parked : (int * 'msg) Queue.t array;  (* per dst: (src, msg), FIFO *)
}

type 'msg t = {
  engine : Engine.t;
  topo : Topology.t;
  cfg : Netcfg.t;  (** [Topology.base topo], kept unpacked for the hot path *)
  node_count : int;
  handlers : (src:int -> 'msg -> unit) option array;
  tx_free : int array;  (** sender NIC: next instant it can start a send *)
  rx_free : int array;  (** receiver NIC: next instant it can accept data *)
  up_free : int array;
      (** per leaf switch: next instant its root-bound uplink channel is
          free (tree shapes only; [[||]] under [Flat]) *)
  down_free : int array;  (** per leaf switch: root-to-leaf channel *)
  mutable messages : int;
  mutable payload_bytes : int;
  mutable wire_bytes : int;
  kind_msgs : int array;  (** indexed by [Kind.index] *)
  kind_bytes : int array;
  sent : int array;
  received : int array;
  mutable monitor : monitor option;
  mutable faults : 'msg faults option;
}

let create_topo engine topo ~nodes =
  if nodes <= 0 then
    invalid_arg "Network.create_topo: need at least one node";
  let switches =
    if Topology.is_flat topo then 0 else Topology.switch_count topo ~nodes
  in
  {
    engine;
    topo;
    cfg = Topology.base topo;
    node_count = nodes;
    handlers = Array.make nodes None;
    tx_free = Array.make nodes 0;
    rx_free = Array.make nodes 0;
    up_free = Array.make switches 0;
    down_free = Array.make switches 0;
    messages = 0;
    payload_bytes = 0;
    wire_bytes = 0;
    kind_msgs = Array.make Kind.count 0;
    kind_bytes = Array.make Kind.count 0;
    sent = Array.make nodes 0;
    received = Array.make nodes 0;
    monitor = None;
    faults = None;
  }

let create engine cfg ~nodes = create_topo engine (Topology.flat cfg) ~nodes

let set_monitor t monitor = t.monitor <- monitor

let set_faults t rt =
  t.faults <-
    Option.map
      (fun rt ->
        { rt; parked = Array.init t.node_count (fun _ -> Queue.create ()) })
      rt

let fault_runtime t = Option.map (fun f -> f.rt) t.faults

(* Mark [node] crashed: subsequent deliveries to it are parked.  Called
   from a crash event on [node]'s lane; the flag is only read by delivery
   events on that same lane, so this is lane-local state. *)
let fault_crash t ~node =
  match t.faults with
  | None -> invalid_arg "Network.fault_crash: no fault schedule installed"
  | Some f -> f.rt.Fault.down.(node) <- true

(* Restart [node]: clear the down flag and hand every parked message to
   the handler, in arrival order, from the caller's (event) context. *)
let fault_restart t ~node =
  match t.faults with
  | None -> invalid_arg "Network.fault_restart: no fault schedule installed"
  | Some f ->
    f.rt.Fault.down.(node) <- false;
    let q = f.parked.(node) in
    while not (Queue.is_empty q) do
      let src, msg = Queue.pop q in
      match t.handlers.(node) with
      | Some handler -> handler ~src msg
      | None ->
        failwith (Printf.sprintf "Network: node %d has no handler" node)
    done

let nodes t = t.node_count

let config t = t.cfg

let topology t = t.topo

let set_handler t ~node f =
  if node < 0 || node >= t.node_count then
    invalid_arg "Network.set_handler: node out of range";
  t.handlers.(node) <- Some f

let count t ~src ~dst ~bytes ~kind =
  t.messages <- t.messages + 1;
  t.payload_bytes <- t.payload_bytes + bytes;
  t.wire_bytes <- t.wire_bytes + bytes + t.cfg.Netcfg.header_bytes;
  t.sent.(src) <- t.sent.(src) + 1;
  t.received.(dst) <- t.received.(dst) + 1;
  let k = Kind.index kind in
  t.kind_msgs.(k) <- t.kind_msgs.(k) + 1;
  t.kind_bytes.(k) <- t.kind_bytes.(k) + bytes

(* Endpoint-serialized transfer: the payload occupies the sender's NIC,
   crosses the fabric, then occupies the receiver's NIC.  On the flat
   shape, uncontended, this reduces exactly to [Netcfg.one_way_ns];
   under contention concurrent transfers into (or out of) one node
   queue up, which is what limited the paper's SPARC/ATM testbed.  On
   a tree shape the payload additionally traverses switches and — for
   cross-switch traffic — the two shared uplink channels, each of
   which serializes contending transfers the same way the NICs do.

   [send_now] mutates state shared across every node — the counters and
   the NIC/uplink contention arrays, whose [max]-then-advance updates
   depend on the global order of sends.  Under the parallel engine the
   whole body is therefore deferred: [send] journals it and the
   inter-window walk replays it at the sending event's position in the
   global order, so contention resolves exactly as in a sequential run
   (see PARALLELISM.md).  [now] is captured at the original call site. *)
let send_now t ~now ~src ~dst ~bytes ~kind msg =
  count t ~src ~dst ~bytes ~kind;
  (match t.monitor with
  | None -> ()
  | Some m -> m.on_send ~now ~src ~dst ~bytes ~kind);
  let cfg = t.cfg in
  let bytes_ns = (cfg.Netcfg.header_bytes + bytes) * cfg.Netcfg.per_byte_ns in
  let tx_start = max (now + cfg.Netcfg.send_overhead_ns) t.tx_free.(src) in
  let tx_end = tx_start + bytes_ns in
  t.tx_free.(src) <- tx_end;
  let fabric_arrival =
    match Topology.shape t.topo with
    | Topology.Flat -> tx_end + cfg.Netcfg.wire_latency_ns
    | Topology.Tree tr ->
      let s_src = src / tr.Topology.nodes_per_switch in
      let s_dst = dst / tr.Topology.nodes_per_switch in
      let at_src_switch =
        tx_end + tr.Topology.edge_latency_ns + tr.Topology.switch_ns
      in
      if s_src = s_dst then at_src_switch + tr.Topology.edge_latency_ns
      else begin
        let up = tr.Topology.uplink in
        let up_bytes_ns =
          (cfg.Netcfg.header_bytes + bytes) * up.Topology.per_byte_ns
        in
        (* Root-bound channel of the source's leaf switch. *)
        let up_start = max at_src_switch t.up_free.(s_src) in
        let up_end = up_start + up_bytes_ns in
        t.up_free.(s_src) <- up_end;
        let at_root = up_end + up.Topology.latency_ns + tr.Topology.switch_ns in
        (* Leaf-bound channel of the destination's switch. *)
        let down_start = max at_root t.down_free.(s_dst) in
        let down_end = down_start + up_bytes_ns in
        t.down_free.(s_dst) <- down_end;
        down_end + up.Topology.latency_ns + tr.Topology.switch_ns
        + tr.Topology.edge_latency_ns
      end
  in
  (* Fault perturbations (loss retransmits, duplication, jitter,
     partition holds) delay the fabric crossing and add wire bytes.
     They land before receiver-NIC serialization, so per-link FIFO
     order is preserved: rx_done stays strictly monotone per dst. *)
  let fabric_arrival =
    match t.faults with
    | None -> fabric_arrival
    | Some f ->
      let arrival, overhead =
        Fault.perturb f.rt ~now ~arrival:fabric_arrival ~src ~dst
          ~wire_bytes:(cfg.Netcfg.header_bytes + bytes)
      in
      if overhead > 0 then t.wire_bytes <- t.wire_bytes + overhead;
      arrival
  in
  (* The receiving NIC is occupied for the payload's transfer time: a
     message queues behind earlier arrivals still being received. *)
  let rx_done = max fabric_arrival (t.rx_free.(dst) + bytes_ns) in
  t.rx_free.(dst) <- rx_done;
  let delivery = rx_done + cfg.Netcfg.recv_overhead_ns in
  Engine.schedule_at ~lane:dst t.engine ~time:delivery (fun () ->
      (match t.monitor with
      | None -> ()
      | Some m ->
        (* The monitor feeds globally ordered sinks (trace files); inside
           a parallel window its call is deferred to the walk. *)
        if Engine.deferring t.engine then
          Engine.defer t.engine (fun () ->
              m.on_deliver ~now:delivery ~src ~dst ~bytes ~kind)
        else m.on_deliver ~now:delivery ~src ~dst ~bytes ~kind);
      match t.faults with
      | Some f when f.rt.Fault.down.(dst) ->
        (* Destination is crashed: park the message; [fault_restart]
           replays the queue in arrival order. *)
        Queue.add (src, msg) f.parked.(dst)
      | _ -> (
        match t.handlers.(dst) with
        | Some handler -> handler ~src msg
        | None ->
          failwith (Printf.sprintf "Network: node %d has no handler" dst)))

let send t ~src ~dst ~bytes ~kind msg =
  if src < 0 || src >= t.node_count then
    invalid_arg "Network.send: src out of range";
  if dst < 0 || dst >= t.node_count then
    invalid_arg "Network.send: dst out of range";
  if src = dst then invalid_arg "Network.send: self-send";
  if bytes < 0 then invalid_arg "Network.send: negative size";
  let now = Engine.now t.engine in
  if Engine.deferring t.engine then
    Engine.defer t.engine (fun () -> send_now t ~now ~src ~dst ~bytes ~kind msg)
  else send_now t ~now ~src ~dst ~bytes ~kind msg

let total_messages t = t.messages

let total_payload_bytes t = t.payload_bytes

let total_wire_bytes t = t.wire_bytes

let kind_counts t ~kind =
  let k = Kind.index kind in
  (t.kind_msgs.(k), t.kind_bytes.(k))

let by_kind t =
  List.filter_map
    (fun kind ->
      let k = Kind.index kind in
      if t.kind_msgs.(k) = 0 then None
      else Some (Kind.to_string kind, (t.kind_msgs.(k), t.kind_bytes.(k))))
    Kind.all
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let node_counts t ~node =
  if node < 0 || node >= t.node_count then
    invalid_arg "Network.node_counts: node out of range";
  (t.sent.(node), t.received.(node))

let reset_counters t =
  t.messages <- 0;
  t.payload_bytes <- 0;
  t.wire_bytes <- 0;
  Array.fill t.kind_msgs 0 Kind.count 0;
  Array.fill t.kind_bytes 0 Kind.count 0;
  Array.fill t.sent 0 t.node_count 0;
  Array.fill t.received 0 t.node_count 0
