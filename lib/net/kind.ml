type t = Lock | Barrier | Gc | Page | Diff | Own

let count = 6

let index = function
  | Lock -> 0
  | Barrier -> 1
  | Gc -> 2
  | Page -> 3
  | Diff -> 4
  | Own -> 5

let all = [ Lock; Barrier; Gc; Page; Diff; Own ]

let to_string = function
  | Lock -> "lock"
  | Barrier -> "barrier"
  | Gc -> "gc"
  | Page -> "page"
  | Diff -> "diff"
  | Own -> "own"

let of_string = function
  | "lock" -> Some Lock
  | "barrier" -> Some Barrier
  | "gc" -> Some Gc
  | "page" -> Some Page
  | "diff" -> Some Diff
  | "own" -> Some Own
  | _ -> None

let pp ppf t = Format.pp_print_string ppf (to_string t)
