type t = Lock | Barrier | Gc | Page | Diff | Own | Recover

let count = 7

let index = function
  | Lock -> 0
  | Barrier -> 1
  | Gc -> 2
  | Page -> 3
  | Diff -> 4
  | Own -> 5
  | Recover -> 6

let all = [ Lock; Barrier; Gc; Page; Diff; Own; Recover ]

let to_string = function
  | Lock -> "lock"
  | Barrier -> "barrier"
  | Gc -> "gc"
  | Page -> "page"
  | Diff -> "diff"
  | Own -> "own"
  | Recover -> "recover"

let of_string = function
  | "lock" -> Some Lock
  | "barrier" -> Some Barrier
  | "gc" -> Some Gc
  | "page" -> Some Page
  | "diff" -> Some Diff
  | "own" -> Some Own
  | "recover" -> Some Recover
  | _ -> None

let pp ppf t = Format.pp_print_string ppf (to_string t)
