let size = 4096

let shift = 12 (* log2 size: byte lsr shift = page, byte land mask = offset *)

let mask = size - 1

type t = Bytes.t

let create () = Bytes.make size '\000'

let copy t = Bytes.copy t

let blit ~src ~dst = Bytes.blit src 0 dst 0 size

let equal = Bytes.equal

let get_byte t i = Char.code (Bytes.get t i)

let set_byte t i v = Bytes.set t i (Char.chr (v land 0xff))

(* Bounds-checked native-endian word accessors.  [Bytes.get_int64_le]
   hides a [Sys.big_endian] branch that blocks the compiler's unboxing
   pass, costing a boxed float (and int64) per word in the accessor hot
   loops.  The simulated memory is little-endian by contract, so require
   a little-endian host and use the native primitives directly. *)
let () = if Sys.big_endian then failwith "Page: little-endian host required"

external get_32 : Bytes.t -> int -> int32 = "%caml_bytes_get32"

external set_32 : Bytes.t -> int -> int32 -> unit = "%caml_bytes_set32"

external get_64 : Bytes.t -> int -> int64 = "%caml_bytes_get64"

external set_64 : Bytes.t -> int -> int64 -> unit = "%caml_bytes_set64"

let[@inline] get_i32 t i = get_32 t i

let[@inline] set_i32 t i v = set_32 t i v

let[@inline] get_f64 t i = Int64.float_of_bits (get_64 t i)

let[@inline] set_f64 t i v = set_64 t i (Int64.bits_of_float v)

let raw t = t

let of_bytes b =
  if Bytes.length b <> size then
    invalid_arg
      (Printf.sprintf "Page.of_bytes: expected %d bytes, got %d" size
         (Bytes.length b));
  b

let fill_zero t = Bytes.fill t 0 size '\000'
