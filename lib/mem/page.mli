(** Fixed-size shared memory pages.

    A page is a mutable 4096-byte buffer, the DSM coherence unit (the same
    size as the paper's SPARC/SunOS pages).  Accessors use little-endian
    encoding and check bounds. *)

val size : int
(** Page size in bytes (4096). *)

val shift : int
(** [log2 size]: [byte lsr shift] is the page index of a byte offset. *)

val mask : int
(** [size - 1]: [byte land mask] is the within-page offset of a byte
    offset. *)

type t

val create : unit -> t
(** A zero-filled page. *)

val copy : t -> t
(** An independent copy (used for twins). *)

val blit : src:t -> dst:t -> unit
(** Overwrite [dst] with the contents of [src]. *)

val equal : t -> t -> bool

val get_byte : t -> int -> int

val set_byte : t -> int -> int -> unit

val get_i32 : t -> int -> int32

val set_i32 : t -> int -> int32 -> unit

val get_f64 : t -> int -> float

val set_f64 : t -> int -> float -> unit

val raw : t -> Bytes.t
(** The underlying buffer (for diffing); treat as read-only outside the
    DSM runtime. *)

val of_bytes : Bytes.t -> t
(** Wrap an exactly page-sized buffer. @raise Invalid_argument otherwise. *)

val fill_zero : t -> unit
