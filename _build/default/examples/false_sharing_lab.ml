(* False-sharing laboratory: sweep the fraction of falsely-shared pages in
   a synthetic workload and watch the SW/MW crossover — and how the
   adaptive WFS protocol tracks the better of the two at every point by
   choosing the mode per page.

   The workload has [pages] shared pages rewritten by their owners every
   iteration; a fraction of them is split between two writers (write-write
   false sharing).

     dune exec examples/false_sharing_lab.exe
*)

module Config = Adsm_dsm.Config
module Dsm = Adsm_dsm.Dsm

let nprocs = 4

let pages = 32

let iterations = 6

let compute_per_page = 2_000_000 (* ns *)

let run ~protocol ~fs_pages =
  let cfg = Config.make ~protocol ~nprocs () in
  let t = Dsm.create cfg in
  let a = Dsm.alloc_f64 t ~name:"lab" ~len:(pages * 512) in
  let report =
    Dsm.run t (fun ctx ->
        let me = Dsm.me ctx in
        for iter = 1 to iterations do
          for p = 0 to pages - 1 do
            let value k = sqrt (float_of_int ((iter * 1_000_000) + k)) in
            if p < fs_pages then begin
              (* falsely shared: processors me and me+1 split the page *)
              let w1 = p mod nprocs and w2 = (p + 1) mod nprocs in
              if me = w1 then
                for i = 0 to 255 do
                  Dsm.f64_set ctx a ((p * 512) + i) (value i)
                done;
              if me = w2 then
                for i = 256 to 511 do
                  Dsm.f64_set ctx a ((p * 512) + i) (value i)
                done
            end
            else if p mod nprocs = me then
              (* single writer: the owner overwrites the page *)
              for i = 0 to 511 do
                Dsm.f64_set ctx a ((p * 512) + i) (value i)
              done
          done;
          Dsm.compute ctx (compute_per_page * pages / nprocs);
          Dsm.barrier ctx
        done)
  in
  (if Sys.getenv_opt "LAB_STATS" <> None then
     Printf.printf
       "    [%s fs=%d] own-req %d refused %d twins %d diffs %d switches %d\n"
       (Config.protocol_name protocol)
       fs_pages
       (Adsm_dsm.Stats.ownership_requests report.Dsm.stats)
       (Adsm_dsm.Stats.ownership_refusals report.Dsm.stats)
       (Adsm_dsm.Stats.twins_created_total report.Dsm.stats)
       (Adsm_dsm.Stats.diffs_created_total report.Dsm.stats)
       (Adsm_dsm.Stats.mode_switches report.Dsm.stats));
  float_of_int report.Dsm.time_ns /. 1e6

let () =
  Printf.printf
    "Sweep: %d pages, %d processors, %d iterations; a growing fraction of\n\
     pages is write-write falsely shared.  Times in simulated ms (lower is\n\
     better).\n\n"
    pages nprocs iterations;
  Printf.printf "%10s %10s %10s %10s %10s   best non-adaptive\n" "%FS pages"
    "MW" "SW" "WFS" "WFS+WG";
  List.iter
    (fun fs_pages ->
      let time p = run ~protocol:p ~fs_pages in
      let mw = time Config.Mw
      and sw = time Config.Sw
      and wfs = time Config.Wfs
      and wg = time Config.Wfs_wg in
      Printf.printf "%9.0f%% %10.1f %10.1f %10.1f %10.1f   %s\n"
        (100. *. float_of_int fs_pages /. float_of_int pages)
        mw sw wfs wg
        (if mw < sw then "MW" else "SW"))
    [ 0; 4; 8; 16; 24; 32 ];
  print_newline ();
  print_endline
    "WFS should sit at (or below) the winning column on every row: it runs\n\
     the falsely-shared pages in MW mode and everything else in SW mode."
