(* The paper's Figure 1, live: run the three canonical shared-memory
   access patterns — producer-consumer, migratory, and write-write false
   sharing — under all four protocols and compare the protocol actions.

     dune exec examples/access_patterns.exe
*)

module Config = Adsm_dsm.Config
module Dsm = Adsm_dsm.Dsm
module Stats = Adsm_dsm.Stats

type pattern = {
  name : string;
  description : string;
  program : Dsm.ctx -> Dsm.f64s -> unit;
}

let iterations = 4

let patterns =
  [
    {
      name = "producer-consumer";
      description =
        "p0 overwrites a page; p1 reads it (through barriers).  SW-style \
         whole-page moves are ideal; ownership never needs to change.";
      program =
        (fun ctx a ->
          for _ = 1 to iterations do
            if Dsm.me ctx = 0 then
              for i = 0 to 511 do
                Dsm.f64_set ctx a i (Dsm.f64_get ctx a i +. 1.)
              done;
            Dsm.barrier ctx;
            if Dsm.me ctx = 1 then ignore (Dsm.f64_get ctx a 0);
            Dsm.barrier ctx
          done);
    };
    {
      name = "migratory";
      description =
        "the page is read then overwritten by each processor in turn; \
         ownership should migrate without twins or diffs.";
      program =
        (fun ctx a ->
          for _ = 1 to iterations do
            for turn = 0 to 1 do
              if Dsm.me ctx = turn then begin
                let v = Dsm.f64_get ctx a 0 in
                for i = 0 to 511 do
                  Dsm.f64_set ctx a i (v +. float_of_int i)
                done
              end;
              Dsm.barrier ctx
            done
          done);
    };
    {
      name = "write-write FS";
      description =
        "both processors concurrently write disjoint halves of one page; \
         SW ping-pongs, MW merges diffs, WFS refuses ownership once and \
         switches the page to MW mode.";
      program =
        (fun ctx a ->
          let base = Dsm.me ctx * 256 in
          for _ = 1 to iterations do
            for i = base to base + 255 do
              Dsm.f64_set ctx a i (Dsm.f64_get ctx a i +. 1.)
            done;
            Dsm.barrier ctx
          done);
    };
  ]

let run_pattern pattern protocol =
  let cfg = Config.make ~protocol ~nprocs:2 () in
  let t = Dsm.create cfg in
  let a = Dsm.alloc_f64 t ~name:"page" ~len:512 in
  let report = Dsm.run t (fun ctx -> pattern.program ctx a) in
  let s = report.Dsm.stats in
  Printf.printf "  %-8s %8.2f ms %6d msgs %4d twins %4d diffs %4d own-req %3d refused\n"
    (Config.protocol_name protocol)
    (float_of_int report.Dsm.time_ns /. 1e6)
    report.Dsm.messages
    (Stats.twins_created_total s)
    (Stats.diffs_created_total s)
    (Stats.ownership_requests s)
    (Stats.ownership_refusals s)

let () =
  List.iter
    (fun pattern ->
      Printf.printf "\n=== %s ===\n%s\n\n" pattern.name pattern.description;
      List.iter (run_pattern pattern) Config.all_protocols)
    patterns;
  print_newline ()
