(* Tutorial: writing your own application against the DSM API.

   A blocked parallel matrix multiply (C = A x B) built step by step, then
   run under every protocol.  The access pattern is instructive:

   - A and B are written once by their owners and then only read
     (producer-consumer: the adaptive protocols keep them in SW mode,
     whole-page transfers, no twins);
   - C is written in row bands; with a row a multiple of the page size
     there is no false sharing, so even MW's twins buy nothing.

     dune exec examples/write_your_own.exe
*)

module Config = Adsm_dsm.Config
module Dsm = Adsm_dsm.Dsm
module Stats = Adsm_dsm.Stats

let n = 128 (* matrices are n x n; a 128-column f64 row is 1 KB *)

let block = 32

let ns_per_flop = 500 (* 1997-class multiply-add cost *)

(* Step 1: the program every simulated processor runs. *)
let program a b c ctx =
  let me = Dsm.me ctx and nprocs = Dsm.nprocs ctx in
  let rows_per_proc = n / nprocs in
  let lo = me * rows_per_proc and hi = (me + 1) * rows_per_proc in
  let idx i j = (i * n) + j in

  (* Step 2: initialize the bands we own.  Writes fault into the
     protocol; the first write to each page acquires ownership (or makes
     a twin, depending on the protocol). *)
  for i = lo to hi - 1 do
    for j = 0 to n - 1 do
      Dsm.f64_set ctx a (idx i j) (float_of_int (((i * 13) + j) mod 7));
      Dsm.f64_set ctx b (idx i j) (float_of_int (((i * 7) + (j * 3)) mod 5))
    done
  done;

  (* Step 3: a barrier publishes the writes (release consistency: nothing
     is guaranteed visible before synchronization). *)
  Dsm.barrier ctx;

  (* Step 4: compute our band of C, reading remote pages of A and B on
     demand.  [Dsm.compute] charges the arithmetic to the simulated
     clock; blocking improves page reuse exactly as it improves cache
     reuse on real hardware. *)
  let kb = ref 0 in
  while !kb < n do
    for i = lo to hi - 1 do
      for j = 0 to n - 1 do
        let acc = ref (if !kb = 0 then 0. else Dsm.f64_get ctx c (idx i j)) in
        for k = !kb to min (!kb + block) n - 1 do
          acc := !acc +. (Dsm.f64_get ctx a (idx i k) *. Dsm.f64_get ctx b (idx k j))
        done;
        Dsm.f64_set ctx c (idx i j) !acc
      done;
      Dsm.compute ctx (ns_per_flop * 2 * n * block / n)
    done;
    kb := !kb + block
  done;
  Dsm.compute ctx (ns_per_flop * 2 * n * n * rows_per_proc / 4);
  Dsm.barrier ctx;

  (* Step 5: processor 0 verifies a spot value. *)
  if me = 0 then begin
    let i = 3 and j = 5 in
    let expect = ref 0. in
    for k = 0 to n - 1 do
      expect :=
        !expect
        +. (float_of_int (((i * 13) + k) mod 7)
           *. float_of_int (((k * 7) + (j * 3)) mod 5))
    done;
    let got = Dsm.f64_get ctx c (idx i j) in
    Printf.printf "spot check C[%d,%d] = %.1f (expected %.1f) %s\n" i j got
      !expect
      (if got = !expect then "ok" else "WRONG")
  end

let () =
  Printf.printf "%dx%d blocked matrix multiply on 8 simulated processors\n\n"
    n n;
  Printf.printf "%-8s %9s %8s %8s %8s %8s\n" "protocol" "time(ms)" "msgs"
    "twins" "diffs" "own-req";
  List.iter
    (fun protocol ->
      (* Step 0: configure and allocate.  Allocation happens before [run];
         regions are page-aligned and zero-filled on every node. *)
      let cfg = Config.make ~protocol ~nprocs:8 () in
      let t = Dsm.create cfg in
      let a = Dsm.alloc_f64 t ~name:"A" ~len:(n * n) in
      let b = Dsm.alloc_f64 t ~name:"B" ~len:(n * n) in
      let c = Dsm.alloc_f64 t ~name:"C" ~len:(n * n) in
      let report = Dsm.run t (program a b c) in
      Printf.printf "%-8s %9.1f %8d %8d %8d %8d\n"
        (Config.protocol_name protocol)
        (float_of_int report.Dsm.time_ns /. 1e6)
        report.Dsm.messages
        (Stats.twins_created_total report.Dsm.stats)
        (Stats.diffs_created_total report.Dsm.stats)
        (Stats.ownership_requests report.Dsm.stats))
    Config.extended_protocols
