(* Red-Black SOR — one of the paper's workloads — under all four
   protocols: speedups, memory and message counts side by side, plus the
   WFS+WG granularity adaptation at work (diff sizes grow with the
   spreading wavefront until the 3 KB threshold flips pages to SW mode).

     dune exec examples/adaptive_sor.exe
*)

module Config = Adsm_dsm.Config
module Registry = Adsm_apps.Registry
module Runner = Adsm_harness.Runner
module Stats = Adsm_dsm.Stats

let () =
  let app = Option.get (Registry.find "SOR") in
  let nprocs = 8 in
  let seq = Runner.sequential_time_ns ~app ~scale:Registry.Default in
  Printf.printf "Red-Black SOR (%s), %d processors, sequential %.2f s\n\n"
    (app.Registry.data_desc Registry.Default)
    nprocs
    (float_of_int seq /. 1e9);
  Printf.printf "%-8s %8s %9s %9s %10s %8s\n" "protocol" "speedup" "msgs"
    "data(MB)" "twin+diff" "switches";
  List.iter
    (fun protocol ->
      let m = Runner.run ~app ~protocol ~nprocs ~scale:Registry.Default () in
      Printf.printf "%-8s %8.2f %9d %9.2f %8.2fMB %8d\n"
        (Config.protocol_name protocol)
        (Runner.speedup m) m.Runner.messages
        (float_of_int m.Runner.data_bytes /. 1_048_576.)
        (float_of_int (m.Runner.twin_bytes + m.Runner.diff_bytes)
        /. 1_048_576.)
        m.Runner.mode_switches)
    Config.all_protocols;
  print_newline ();
  (* Show the WG adaptation: mean diff size under WFS+WG vs plain MW. *)
  let mw = Runner.run ~app ~protocol:Config.Mw ~nprocs ~scale:Registry.Default () in
  let wg =
    Runner.run ~app ~protocol:Config.Wfs_wg ~nprocs ~scale:Registry.Default ()
  in
  Printf.printf
    "MW created %d diffs (mean %.0f B); WFS+WG created %d — its pages flip\n\
     to single-writer mode once their diffs cross the 3 KB threshold.\n"
    mw.Runner.diffs_created mw.Runner.mean_diff_bytes wg.Runner.diffs_created
