(* Quickstart: a parallel sum over a shared array on a simulated 4-node
   cluster running the adaptive WFS protocol.

     dune exec examples/quickstart.exe
*)

module Config = Adsm_dsm.Config
module Dsm = Adsm_dsm.Dsm
module Stats = Adsm_dsm.Stats

let () =
  (* 1. Configure a cluster: protocol, processor count; everything else
     (network model, twin/diff costs, thresholds) defaults to the paper's
     SPARC/ATM testbed. *)
  let cfg = Config.make ~protocol:Config.Wfs ~nprocs:4 () in
  let t = Dsm.create cfg in

  (* 2. Allocate shared memory (page-aligned, zero-initialized). *)
  let n = 4096 in
  let data = Dsm.alloc_f64 t ~name:"data" ~len:n in
  let partial = Dsm.alloc_f64 t ~name:"partial-sums" ~len:8 in

  (* 3. The program each simulated processor runs.  Shared accesses go
     through the typed accessors, which enforce the simulated page
     protection and fault into the DSM protocol. *)
  let program ctx =
    let me = Dsm.me ctx and nprocs = Dsm.nprocs ctx in
    let chunk = n / nprocs in
    let lo = me * chunk and hi = (me + 1) * chunk in
    (* initialize own chunk *)
    for i = lo to hi - 1 do
      Dsm.f64_set ctx data i (float_of_int i)
    done;
    Dsm.barrier ctx;
    (* sum own chunk, publish the partial result *)
    let sum = ref 0. in
    for i = lo to hi - 1 do
      sum := !sum +. Dsm.f64_get ctx data i
    done;
    Dsm.compute ctx (100 * chunk);
    (* model the loop's CPU time *)
    Dsm.f64_set ctx partial me !sum;
    Dsm.barrier ctx;
    (* processor 0 reduces *)
    if me = 0 then begin
      let total = ref 0. in
      for q = 0 to nprocs - 1 do
        total := !total +. Dsm.f64_get ctx partial q
      done;
      Printf.printf "sum of 0..%d = %.0f (expected %.0f)\n" (n - 1) !total
        (float_of_int (n * (n - 1) / 2))
    end
  in

  (* 4. Run and inspect the protocol's behaviour. *)
  let report = Dsm.run t program in
  Printf.printf "simulated time : %.3f ms\n"
    (float_of_int report.Dsm.time_ns /. 1e6);
  Printf.printf "messages       : %d (%.1f KB payload)\n" report.Dsm.messages
    (float_of_int report.Dsm.payload_bytes /. 1024.);
  Printf.printf "twins / diffs  : %d / %d\n"
    (Stats.twins_created_total report.Dsm.stats)
    (Stats.diffs_created_total report.Dsm.stats);
  Printf.printf "ownership reqs : %d\n"
    (Stats.ownership_requests report.Dsm.stats);
  List.iter
    (fun (kind, (msgs, bytes)) ->
      Printf.printf "  %-8s %5d msgs %8d bytes\n" kind msgs bytes)
    report.Dsm.by_kind
