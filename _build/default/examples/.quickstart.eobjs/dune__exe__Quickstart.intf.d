examples/quickstart.mli:
