examples/access_patterns.mli:
