examples/write_your_own.ml: Adsm_dsm List Printf
