examples/false_sharing_lab.mli:
