examples/adaptive_sor.mli:
