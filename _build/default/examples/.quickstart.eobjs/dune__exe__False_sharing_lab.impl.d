examples/false_sharing_lab.ml: Adsm_dsm List Printf Sys
