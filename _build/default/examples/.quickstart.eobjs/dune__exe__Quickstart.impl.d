examples/quickstart.ml: Adsm_dsm List Printf
