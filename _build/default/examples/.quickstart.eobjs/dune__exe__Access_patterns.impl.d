examples/access_patterns.ml: Adsm_dsm List Printf
