examples/adaptive_sor.ml: Adsm_apps Adsm_dsm Adsm_harness List Option Printf
