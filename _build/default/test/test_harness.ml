(* Tests for the experiment harness: runner measurements, speedups, table
   rendering, and the paper-shape assertions the reproduction rests on.
   Everything runs at tiny scale to stay fast; the shape assertions that
   need realistic compute/communication ratios run at default scale on a
   reduced processor count. *)

module Config = Adsm_dsm.Config
module Registry = Adsm_apps.Registry
module Runner = Adsm_harness.Runner
module Tables = Adsm_harness.Tables
module Experiments = Adsm_harness.Experiments

let sor () = Option.get (Registry.find "SOR")

let test_runner_measurement () =
  let m =
    Runner.run ~app:(sor ()) ~protocol:Config.Mw ~nprocs:2
      ~scale:Registry.Tiny ()
  in
  Alcotest.(check string) "app" "SOR" m.Runner.app;
  Alcotest.(check bool) "time" true (m.Runner.time_ns > 0);
  Alcotest.(check bool) "messages" true (m.Runner.messages > 0);
  Alcotest.(check bool) "twins under MW" true (m.Runner.twins_created > 0);
  Alcotest.(check bool) "pages accounted" true (m.Runner.shared_pages > 0)

let test_runner_speedup_definition () =
  let m =
    Runner.run ~app:(sor ()) ~protocol:Config.Sw ~nprocs:2
      ~scale:Registry.Tiny ()
  in
  let seq = Runner.sequential_time_ns ~app:(sor ()) ~scale:Registry.Tiny in
  Alcotest.(check (float 1e-9)) "speedup = seq/par"
    (float_of_int seq /. float_of_int m.Runner.time_ns)
    (Runner.speedup m)

let test_sequential_runs_are_cached () =
  let t1 = Runner.sequential_time_ns ~app:(sor ()) ~scale:Registry.Tiny in
  let t2 = Runner.sequential_time_ns ~app:(sor ()) ~scale:Registry.Tiny in
  Alcotest.(check int) "deterministic and cached" t1 t2

let test_runner_determinism () =
  let run () =
    let m =
      Runner.run ~app:(sor ()) ~protocol:Config.Wfs ~nprocs:4
        ~scale:Registry.Tiny ()
    in
    (m.Runner.time_ns, m.Runner.messages, m.Runner.checksum)
  in
  Alcotest.(check bool) "bit-identical reruns" true (run () = run ())

(* ------------------------------------------------------------------ *)
(* Tables                                                             *)
(* ------------------------------------------------------------------ *)

let test_render_alignment () =
  let out =
    Tables.render ~title:"T" ~header:[ "a"; "bb" ]
      [ [ "xxx"; "y" ]; [ "z" ] ]
  in
  let lines = String.split_on_char '\n' out in
  Alcotest.(check string) "title first" "T" (List.nth lines 0);
  (* all body lines padded to the same width *)
  let widths =
    List.filter_map
      (fun l -> if l = "" || l = "T" then None else Some (String.length l))
      lines
  in
  List.iter (fun w -> Alcotest.(check int) "width" (List.hd widths) w) widths

let test_bar () =
  Alcotest.(check string) "full" "####" (Tables.bar ~width:4 ~value:8. ~max:8.);
  Alcotest.(check string) "half" "##  " (Tables.bar ~width:4 ~value:4. ~max:8.);
  Alcotest.(check string) "zero" "    " (Tables.bar ~width:4 ~value:0. ~max:8.);
  Alcotest.(check string) "clamped" "####"
    (Tables.bar ~width:4 ~value:99. ~max:8.)

let test_units () =
  Alcotest.(check string) "mb" "2.00" (Tables.mb (2 * 1024 * 1024));
  Alcotest.(check string) "thousands" "1.50" (Tables.thousands 1500)

(* ------------------------------------------------------------------ *)
(* Experiment suite plumbing                                          *)
(* ------------------------------------------------------------------ *)

let test_collect_and_render () =
  let suite =
    Experiments.collect ~apps:[ "SOR"; "IS" ] ~scale:Registry.Tiny ~nprocs:2 ()
  in
  Alcotest.(check int) "apps x protocols" 8
    (List.length suite.Experiments.measurements);
  Alcotest.(check bool) "find works" true
    (Experiments.find suite ~app:"SOR" ~protocol:Config.Sw <> None);
  (* every artifact renders without raising and mentions its subject *)
  let t1 = Experiments.table1 suite in
  let t2 = Experiments.table2 suite in
  let f2 = Experiments.figure2 suite in
  let t3 = Experiments.table3 suite in
  let t4 = Experiments.table4 suite in
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun (name, s) ->
      Alcotest.(check bool) (name ^ " mentions SOR") true (contains s "SOR"))
    [ ("table1", t1); ("table2", t2); ("fig2", f2); ("table3", t3); ("table4", t4) ]

let test_export_csv () =
  let suite =
    Experiments.collect ~apps:[ "SOR" ] ~scale:Registry.Tiny ~nprocs:2 ()
  in
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "adsm-csv-test" in
  let written = Experiments.export_csv suite ~dir in
  Alcotest.(check bool) "wrote files" true (List.length written >= 2);
  List.iter
    (fun path ->
      Alcotest.(check bool) (path ^ " exists") true (Sys.file_exists path);
      let ic = open_in path in
      let header = input_line ic in
      close_in ic;
      Alcotest.(check bool) "has a CSV header" true
        (String.contains header ','))
    written

let test_figure1_narrative () =
  let s = Experiments.figure1 () in
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "three scenarios" true
    (contains s "producer-consumer" && contains s "migratory"
    && contains s "write-write FS")

(* ------------------------------------------------------------------ *)
(* Paper-shape assertions (default scale, 4 processors for speed)     *)
(* ------------------------------------------------------------------ *)

let speedup_of app protocol =
  match Registry.find app with
  | None -> Alcotest.fail ("unknown app " ^ app)
  | Some entry ->
    Runner.speedup
      (Runner.run ~app:entry ~protocol ~nprocs:4 ~scale:Registry.Default ())

let test_shape_is_prefers_single_writer () =
  (* Paper Section 6.4: IS is migratory with whole-page writes; MW's
     diffing and diff accumulation make it the worst protocol. *)
  let mw = speedup_of "IS" Config.Mw and wfs = speedup_of "IS" Config.Wfs in
  Alcotest.(check bool)
    (Printf.sprintf "WFS (%.2f) beats MW (%.2f) on IS" wfs mw)
    true (wfs > mw)

let test_shape_barnes_prefers_multiple_writer () =
  (* Paper Section 6.4: Barnes is dominated by write-write false sharing;
     SW's ping-pong makes it far slower than MW, and the adaptive
     protocols stay close to MW. *)
  let mw = speedup_of "Barnes" Config.Mw
  and sw = speedup_of "Barnes" Config.Sw
  and wfs = speedup_of "Barnes" Config.Wfs in
  Alcotest.(check bool)
    (Printf.sprintf "MW (%.2f) beats SW (%.2f) on Barnes" mw sw)
    true
    (mw > sw *. 1.5);
  Alcotest.(check bool)
    (Printf.sprintf "WFS (%.2f) well above SW (%.2f)" wfs sw)
    true
    (wfs > sw *. 1.3)

let test_shape_shallow_adaptive_wins () =
  (* Paper Section 6.4: Shallow makes a clear case for per-page
     adaptation; WFS beats both non-adaptive protocols. *)
  let mw = speedup_of "Shallow" Config.Mw
  and sw = speedup_of "Shallow" Config.Sw
  and wfs = speedup_of "Shallow" Config.Wfs in
  Alcotest.(check bool)
    (Printf.sprintf "WFS (%.2f) >= MW (%.2f) and SW (%.2f)" wfs mw sw)
    true
    (wfs >= mw *. 0.98 && wfs >= sw *. 0.98)

let test_shape_memory_ordering () =
  (* Paper Table 3: twin+diff memory satisfies WFS <= WFS+WG <= MW. *)
  List.iter
    (fun app_name ->
      let entry = Option.get (Registry.find app_name) in
      let mem protocol =
        let m =
          Runner.run ~app:entry ~protocol ~nprocs:4 ~scale:Registry.Default ()
        in
        m.Runner.twin_bytes + m.Runner.diff_bytes
      in
      let mw = mem Config.Mw
      and wg = mem Config.Wfs_wg
      and wfs = mem Config.Wfs in
      Alcotest.(check bool)
        (Printf.sprintf "%s: WFS (%d) <= WFS+WG (%d) <= MW (%d)" app_name wfs
           wg mw)
        true
        (wfs <= wg && wg <= mw))
    [ "SOR"; "IS"; "Shallow" ]

let () =
  Alcotest.run "harness"
    [
      ( "runner",
        [
          Alcotest.test_case "measurement" `Quick test_runner_measurement;
          Alcotest.test_case "speedup" `Quick test_runner_speedup_definition;
          Alcotest.test_case "seq cache" `Quick test_sequential_runs_are_cached;
          Alcotest.test_case "determinism" `Quick test_runner_determinism;
        ] );
      ( "tables",
        [
          Alcotest.test_case "alignment" `Quick test_render_alignment;
          Alcotest.test_case "bar" `Quick test_bar;
          Alcotest.test_case "units" `Quick test_units;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "collect+render" `Slow test_collect_and_render;
          Alcotest.test_case "csv export" `Quick test_export_csv;
          Alcotest.test_case "figure1" `Quick test_figure1_narrative;
        ] );
      ( "paper-shapes",
        [
          Alcotest.test_case "IS prefers SW-side" `Slow
            test_shape_is_prefers_single_writer;
          Alcotest.test_case "Barnes prefers MW" `Slow
            test_shape_barnes_prefers_multiple_writer;
          Alcotest.test_case "Shallow adaptive wins" `Slow
            test_shape_shallow_adaptive_wins;
          Alcotest.test_case "memory ordering" `Slow test_shape_memory_ordering;
        ] );
    ]
