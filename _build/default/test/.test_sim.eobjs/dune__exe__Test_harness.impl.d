test/test_harness.ml: Adsm_apps Adsm_dsm Adsm_harness Alcotest Filename List Option Printf String Sys
