test/test_mem.ml: Adsm_mem Alcotest Bytes Char List Option QCheck QCheck_alcotest
