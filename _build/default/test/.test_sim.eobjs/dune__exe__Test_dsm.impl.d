test/test_dsm.ml: Adsm_dsm Alcotest List Printf String
