test/test_random.ml: Adsm_dsm Adsm_sim Alcotest Array Int64 List QCheck QCheck_alcotest
