test/test_proto.ml: Adsm_dsm Alcotest Fun Int32 List Printf
