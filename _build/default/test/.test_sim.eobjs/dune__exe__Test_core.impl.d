test/test_core.ml: Adsm_dsm Adsm_mem Adsm_sim Alcotest Format Int64 List Printf QCheck QCheck_alcotest
