test/test_net.ml: Adsm_net Adsm_sim Alcotest Array Hashtbl List Printf
