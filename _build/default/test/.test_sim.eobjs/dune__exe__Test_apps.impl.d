test/test_apps.ml: Adsm_apps Adsm_dsm Adsm_sim Alcotest Array Int64 List Printf QCheck QCheck_alcotest
