test/test_sim.ml: Adsm_sim Alcotest Array Fun List QCheck QCheck_alcotest
