(* Application integration tests: every application, at tiny scale, must
   produce a bit-identical checksum under all four protocols and match the
   single-processor run.  This exercises the full protocol stack —
   twin/diff merging, ownership transfer, adaptation, GC — against real
   computations. *)

module Config = Adsm_dsm.Config
module Dsm = Adsm_dsm.Dsm
module Stats = Adsm_dsm.Stats
module Registry = Adsm_apps.Registry
module Fft_core = Adsm_apps.Fft_core
module Common = Adsm_apps.Common

let run_app (entry : Registry.entry) ~protocol ~nprocs =
  let cfg = Config.make ~protocol ~nprocs () in
  let t = Dsm.create cfg in
  let run, result = entry.Registry.instantiate Registry.Tiny t in
  let report = Dsm.run t run in
  (report, result ())

let test_app_cross_protocol (entry : Registry.entry) () =
  let _, reference = run_app entry ~protocol:Config.Sw ~nprocs:1 in
  List.iter
    (fun protocol ->
      List.iter
        (fun nprocs ->
          let _, value = run_app entry ~protocol ~nprocs in
          Alcotest.(check (float 0.))
            (Printf.sprintf "%s %s %dp matches sequential" entry.Registry.name
               (Config.protocol_name protocol)
               nprocs)
            reference value)
        [ 2; 4 ])
    Config.all_protocols

let test_app_progress (entry : Registry.entry) () =
  (* Sanity: a parallel run both communicates and takes simulated time. *)
  let report, _ = run_app entry ~protocol:Config.Mw ~nprocs:4 in
  Alcotest.(check bool) "messages sent" true (report.Dsm.messages > 0);
  Alcotest.(check bool) "time advanced" true (report.Dsm.time_ns > 0)

(* ------------------------------------------------------------------ *)
(* Per-application protocol narratives (paper Section 6.4)            *)
(* ------------------------------------------------------------------ *)

(* These run at default scale (4 processors for speed) and assert the
   behaviour the paper describes for each application. *)

let measure app_name protocol =
  match Registry.find app_name with
  | None -> Alcotest.fail ("unknown app " ^ app_name)
  | Some entry ->
    let cfg = Config.make ~protocol ~nprocs:4 () in
    let t = Dsm.create cfg in
    let run, _ = entry.Registry.instantiate Registry.Default t in
    Dsm.run t run

let test_narrative_is () =
  (* "WFS keeps all these pages in SW mode during the entire execution"
     — no twins, no diffs, ever. *)
  let r = measure "IS" Config.Wfs in
  Alcotest.(check int) "WFS: no twins on IS" 0
    (Stats.twins_created_total r.Dsm.stats);
  Alcotest.(check int) "WFS: no diffs on IS" 0
    (Stats.diffs_created_total r.Dsm.stats);
  (* "WFS+WG switches to SW mode for all pages after the first
     iteration" — diffs only from the measuring pass. *)
  let r = measure "IS" Config.Wfs_wg in
  let per_iter = Stats.diffs_created_total r.Dsm.stats in
  let mw = Stats.diffs_created_total (measure "IS" Config.Mw).Dsm.stats in
  Alcotest.(check bool)
    (Printf.sprintf "WFS+WG measures once (%d diffs vs MW's %d)" per_iter mw)
    true
    (per_iter * 3 < mw)

let test_narrative_fft () =
  (* "In WFS, each processor switches once from SW to MW for the page for
     which there is write-write false sharing" — only the norms page ever
     produces diffs, so diff traffic is negligible next to MW's. *)
  let wfs = measure "3D-FFT" Config.Wfs in
  let mw = measure "3D-FFT" Config.Mw in
  Alcotest.(check bool)
    (Printf.sprintf "WFS diffs (%d) negligible vs MW (%d)"
       (Stats.diffs_created_total wfs.Dsm.stats)
       (Stats.diffs_created_total mw.Dsm.stats))
    true
    (Stats.diffs_created_total wfs.Dsm.stats * 5
    < Stats.diffs_created_total mw.Dsm.stats);
  Alcotest.(check int) "exactly one falsely shared page" 1
    (Stats.pages_false_shared mw.Dsm.stats)

let test_narrative_sor () =
  (* "For applications that have no write-write false sharing (SOR and
     IS), the WFS protocol does not create any twins or diffs." *)
  let r = measure "SOR" Config.Wfs in
  Alcotest.(check int) "no twins" 0 (Stats.twins_created_total r.Dsm.stats);
  Alcotest.(check int) "no diffs" 0 (Stats.diffs_created_total r.Dsm.stats);
  Alcotest.(check int) "no false sharing" 0
    (Stats.pages_false_shared r.Dsm.stats);
  (* "WFS+WG starts out making diffs ... and switches to SW mode" once
     the growing writes cross the threshold. *)
  let wg = measure "SOR" Config.Wfs_wg in
  Alcotest.(check bool) "WFS+WG diffs early" true
    (Stats.diffs_created_total wg.Dsm.stats > 0);
  Alcotest.(check bool) "...but far fewer than MW" true
    (Stats.diffs_created_total wg.Dsm.stats * 2
    < Stats.diffs_created_total (measure "SOR" Config.Mw).Dsm.stats)

let test_narrative_tsp () =
  (* "WFS switches from SW to MW on a total of 2 pages ... WFS+WG uses
     mostly diffs" — under WFS+WG the small queue/control writes keep
     their pages in MW mode, so diffs flow. *)
  let wfs = measure "TSP" Config.Wfs in
  let wg = measure "TSP" Config.Wfs_wg in
  Alcotest.(check bool) "WFS switches few pages" true
    (Stats.pages_false_shared wfs.Dsm.stats <= 4);
  Alcotest.(check bool)
    (Printf.sprintf "WFS+WG diffs (%d) >> WFS diffs (%d)"
       (Stats.diffs_created_total wg.Dsm.stats)
       (Stats.diffs_created_total wfs.Dsm.stats))
    true
    (Stats.diffs_created_total wg.Dsm.stats
    > Stats.diffs_created_total wfs.Dsm.stats)

let test_narrative_shallow () =
  (* "The WFS protocol switches to MW mode for all of the write-write
     falsely shared pages, and keeps the other pages in SW mode" — twins
     appear, but far fewer than under MW (which twins every written
     page). *)
  let wfs = measure "Shallow" Config.Wfs in
  let mw = measure "Shallow" Config.Mw in
  Alcotest.(check bool) "some MW-mode pages" true
    (Stats.twins_created_total wfs.Dsm.stats > 0);
  Alcotest.(check bool)
    (Printf.sprintf "but far fewer twins (%d) than MW (%d)"
       (Stats.twins_created_total wfs.Dsm.stats)
       (Stats.twins_created_total mw.Dsm.stats))
    true
    (Stats.twins_created_total wfs.Dsm.stats * 4
    < Stats.twins_created_total mw.Dsm.stats)

let test_narrative_barnes_ilink () =
  (* "The adaptive protocols switch to the MW mode for all of the pages
     containing bodies" / ILINK "WFS adapts to MW mode for these pages" —
     high-FS apps end up diffing nearly as much as MW. *)
  List.iter
    (fun name ->
      let wfs = measure name Config.Wfs in
      let mw = measure name Config.Mw in
      Alcotest.(check bool)
        (Printf.sprintf "%s: WFS diffs (%d) close to MW (%d)" name
           (Stats.diffs_created_total wfs.Dsm.stats)
           (Stats.diffs_created_total mw.Dsm.stats))
        true
        (Stats.diffs_created_total wfs.Dsm.stats * 2
        > Stats.diffs_created_total mw.Dsm.stats))
    [ "Barnes"; "ILINK" ]

(* ------------------------------------------------------------------ *)
(* FFT numerical core                                                 *)
(* ------------------------------------------------------------------ *)

let test_fft_roundtrip () =
  let n = 64 in
  let re = Array.init n (fun i -> sin (float_of_int i)) in
  let im = Array.init n (fun i -> cos (float_of_int (i * 3))) in
  let re0 = Array.copy re and im0 = Array.copy im in
  Fft_core.fft ~invert:false re im;
  Fft_core.fft ~invert:true re im;
  for i = 0 to n - 1 do
    Alcotest.(check (float 1e-9)) "re restored" re0.(i) re.(i);
    Alcotest.(check (float 1e-9)) "im restored" im0.(i) im.(i)
  done

let test_fft_impulse () =
  (* The transform of a unit impulse is flat ones. *)
  let n = 16 in
  let re = Array.make n 0. and im = Array.make n 0. in
  re.(0) <- 1.;
  Fft_core.fft ~invert:false re im;
  for i = 0 to n - 1 do
    Alcotest.(check (float 1e-12)) "flat spectrum re" 1.0 re.(i);
    Alcotest.(check (float 1e-12)) "flat spectrum im" 0.0 im.(i)
  done

let test_fft_parseval () =
  let n = 32 in
  let re = Array.init n (fun i -> float_of_int ((i * 7 mod 13) - 6)) in
  let im = Array.make n 0. in
  let energy_in =
    Array.fold_left (fun acc x -> acc +. (x *. x)) 0. re
  in
  Fft_core.fft ~invert:false re im;
  let energy_out = ref 0. in
  for i = 0 to n - 1 do
    energy_out := !energy_out +. (re.(i) *. re.(i)) +. (im.(i) *. im.(i))
  done;
  Alcotest.(check (float 1e-6))
    "Parseval" energy_in
    (!energy_out /. float_of_int n)

let prop_fft_roundtrip =
  QCheck.Test.make ~name:"fft inverse restores input" ~count:50
    QCheck.(pair (int_range 0 5) (int_range 0 1000))
    (fun (log_n, seed) ->
      let n = 1 lsl log_n in
      let rng = Adsm_sim.Rng.create (Int64.of_int seed) in
      let re = Array.init n (fun _ -> Adsm_sim.Rng.float rng -. 0.5) in
      let im = Array.init n (fun _ -> Adsm_sim.Rng.float rng -. 0.5) in
      let re0 = Array.copy re and im0 = Array.copy im in
      Fft_core.fft ~invert:false re im;
      Fft_core.fft ~invert:true re im;
      let ok = ref true in
      for i = 0 to n - 1 do
        if abs_float (re.(i) -. re0.(i)) > 1e-9 then ok := false;
        if abs_float (im.(i) -. im0.(i)) > 1e-9 then ok := false
      done;
      !ok)

let test_fft_rejects_bad_length () =
  Alcotest.check_raises "length 3"
    (Invalid_argument "Fft_core.fft: length must be a power of two")
    (fun () -> Fft_core.fft ~invert:false (Array.make 3 0.) (Array.make 3 0.))

(* ------------------------------------------------------------------ *)
(* Common helpers                                                     *)
(* ------------------------------------------------------------------ *)

let test_band_partition () =
  (* bands cover [0, n) without overlap, sizes differ by at most 1 *)
  List.iter
    (fun (n, nprocs) ->
      let bands = List.init nprocs (fun me -> Common.band ~n ~nprocs ~me) in
      let covered = List.fold_left (fun acc (lo, hi) -> acc + hi - lo) 0 bands in
      Alcotest.(check int) "covers all" n covered;
      List.iteri
        (fun i (lo, hi) ->
          Alcotest.(check bool) "ordered" true (lo <= hi);
          if i > 0 then
            let _, prev_hi = List.nth bands (i - 1) in
            Alcotest.(check int) "contiguous" prev_hi lo)
        bands)
    [ (10, 3); (8, 8); (7, 8); (100, 7); (1, 1) ]

let test_checksum_cell () =
  let c = Common.new_checksum () in
  Alcotest.check_raises "unset"
    (Failure "checksum: run did not produce a result") (fun () ->
      ignore (Common.get_checksum c));
  Common.set_checksum c 42.;
  Alcotest.(check (float 0.)) "set" 42. (Common.get_checksum c)

(* ------------------------------------------------------------------ *)
(* Table 2 shape: per-application sharing profile                     *)
(* ------------------------------------------------------------------ *)

let sharing_profile name =
  match Registry.find name with
  | None -> Alcotest.fail ("unknown app " ^ name)
  | Some entry ->
    let report, _ = run_app entry ~protocol:Config.Mw ~nprocs:4 in
    Stats.false_shared_fraction report.Dsm.stats

let test_sharing_profile_shape () =
  (* Even at tiny scale the ordering of false-sharing intensity should
     hold: IS and SOR have none; Barnes and ILINK are heavily shared. *)
  let is = sharing_profile "IS" in
  let sor = sharing_profile "SOR" in
  let barnes = sharing_profile "Barnes" in
  let ilink = sharing_profile "ILINK" in
  Alcotest.(check (float 0.)) "IS has no false sharing" 0. is;
  Alcotest.(check (float 0.)) "SOR has no false sharing" 0. sor;
  Alcotest.(check bool)
    (Printf.sprintf "Barnes heavily shared (%.2f)" barnes)
    true (barnes > 0.3);
  Alcotest.(check bool)
    (Printf.sprintf "ILINK heavily shared (%.2f)" ilink)
    true (ilink > 0.3)

let () =
  let app_cases =
    List.concat_map
      (fun (entry : Registry.entry) ->
        [
          Alcotest.test_case
            (entry.Registry.name ^ " identical across protocols")
            `Slow
            (test_app_cross_protocol entry);
          Alcotest.test_case
            (entry.Registry.name ^ " communicates")
            `Quick (test_app_progress entry);
        ])
      Registry.all
  in
  Alcotest.run "apps"
    [
      ("applications", app_cases);
      ( "paper-narratives",
        [
          Alcotest.test_case "IS stays SW under WFS" `Slow test_narrative_is;
          Alcotest.test_case "3D-FFT one FS page" `Slow test_narrative_fft;
          Alcotest.test_case "SOR never twins under WFS" `Slow
            test_narrative_sor;
          Alcotest.test_case "TSP small writes" `Slow test_narrative_tsp;
          Alcotest.test_case "Shallow partial adaptation" `Slow
            test_narrative_shallow;
          Alcotest.test_case "Barnes/ILINK go MW" `Slow
            test_narrative_barnes_ilink;
        ] );
      ( "fft-core",
        [
          Alcotest.test_case "roundtrip" `Quick test_fft_roundtrip;
          Alcotest.test_case "impulse" `Quick test_fft_impulse;
          Alcotest.test_case "parseval" `Quick test_fft_parseval;
          Alcotest.test_case "bad length" `Quick test_fft_rejects_bad_length;
          QCheck_alcotest.to_alcotest prop_fft_roundtrip;
        ] );
      ( "helpers",
        [
          Alcotest.test_case "band partition" `Quick test_band_partition;
          Alcotest.test_case "checksum cell" `Quick test_checksum_cell;
        ] );
      ( "sharing-profile",
        [ Alcotest.test_case "shape" `Slow test_sharing_profile_shape ] );
    ]
