(* Protocol-level tests: the ownership-refusal state machine, the MW->SW
   detection rules, SW forwarding and quantum behaviour, garbage-collection
   policies, and regression tests for the concurrency bugs found during
   development (barrier interval batching, transfer-receipt atomicity,
   dirty-owner committed versions, interval-closure reentrancy). *)

module Config = Adsm_dsm.Config
module Dsm = Adsm_dsm.Dsm
module Stats = Adsm_dsm.Stats

let make ?(nprocs = 2) ?(tweak = Fun.id) protocol =
  let cfg = tweak (Config.make ~protocol ~nprocs ()) in
  Dsm.create cfg

(* ------------------------------------------------------------------ *)
(* Ownership refusal (paper 3.1.1)                                    *)
(* ------------------------------------------------------------------ *)

(* Example 2 of Section 3.1.1: p0 owns and writes; p1 takes ownership
   (granted: no sharing yet); then p0 writes again WITHOUT synchronizing —
   its version number is stale, so its request must be refused and the
   page must go to MW mode. *)
let test_refusal_on_stale_version () =
  let t = make Config.Wfs in
  let a = Dsm.alloc_f64 t ~name:"page" ~len:512 in
  let report =
    Dsm.run t (fun ctx ->
        match Dsm.me ctx with
        | 0 ->
          Dsm.f64_set ctx a 0 1.0;
          (* p0 acquires ownership (v1) *)
          Dsm.barrier ctx;
          (* p1 takes ownership during this window *)
          Dsm.compute ctx 20_000_000;
          (* concurrent write: stale version -> refusal *)
          Dsm.f64_set ctx a 1 2.0;
          Dsm.barrier ctx
        | _ ->
          Dsm.barrier ctx;
          Dsm.f64_set ctx a 256 3.0;
          (* granted: v2 *)
          Dsm.compute ctx 40_000_000;
          Dsm.barrier ctx)
  in
  Alcotest.(check int) "exactly one refusal" 1
    (Stats.ownership_refusals report.Dsm.stats);
  Alcotest.(check bool) "page flagged falsely shared" true
    (Stats.pages_false_shared report.Dsm.stats = 1)

(* Migratory handoff: ownership is granted, never refused, and no twin is
   ever made (paper Figure 1, top right). *)
let test_migratory_grants_without_twins () =
  let t = make ~nprocs:4 Config.Wfs in
  let a = Dsm.alloc_f64 t ~name:"page" ~len:512 in
  let report =
    Dsm.run t (fun ctx ->
        for turn = 0 to 3 do
          if Dsm.me ctx = turn then begin
            ignore (Dsm.f64_get ctx a 0);
            Dsm.f64_set ctx a 0 (float_of_int turn)
          end;
          Dsm.barrier ctx
        done)
  in
  Alcotest.(check bool) "ownership moved" true
    (Stats.ownership_requests report.Dsm.stats >= 3);
  Alcotest.(check int) "no refusals" 0 (Stats.ownership_refusals report.Dsm.stats);
  Alcotest.(check int) "no twins" 0 (Stats.twins_created_total report.Dsm.stats)

(* Producer-consumer: ownership stays with the producer across repeated
   rewrites (local reacquisition bumps the version, paper Figure 1 top
   left: v1 then v2 from the same owner). *)
let test_producer_keeps_ownership () =
  let t = make Config.Wfs in
  let a = Dsm.alloc_f64 t ~name:"page" ~len:512 in
  let report =
    Dsm.run t (fun ctx ->
        for _ = 1 to 4 do
          if Dsm.me ctx = 0 then
            for i = 0 to 511 do
              Dsm.f64_set ctx a i 1.0
            done;
          Dsm.barrier ctx;
          if Dsm.me ctx = 1 then ignore (Dsm.f64_get ctx a 7);
          Dsm.barrier ctx
        done)
  in
  Alcotest.(check int) "no ownership traffic" 0
    (Stats.ownership_requests report.Dsm.stats);
  Alcotest.(check int) "no twins" 0 (Stats.twins_created_total report.Dsm.stats)

(* ------------------------------------------------------------------ *)
(* MW -> SW detection (paper 3.1.2)                                   *)
(* ------------------------------------------------------------------ *)

(* False sharing that STOPS: two writers share a page for a few
   iterations, then only one keeps writing.  The adaptive protocol must
   return the page to SW mode (diff creation stops). *)
let test_fs_stop_returns_to_sw () =
  let t = make Config.Wfs in
  let a = Dsm.alloc_f64 t ~name:"page" ~len:512 in
  let report =
    Dsm.run t (fun ctx ->
        let me = Dsm.me ctx in
        (* phase 1: genuine false sharing *)
        for _ = 1 to 3 do
          let base = me * 256 in
          for i = base to base + 255 do
            Dsm.f64_set ctx a i 1.0
          done;
          Dsm.barrier ctx
        done;
        (* phase 2: single writer only *)
        for iter = 1 to 8 do
          if me = 0 then
            for i = 0 to 511 do
              Dsm.f64_set ctx a i (float_of_int iter)
            done;
          Dsm.barrier ctx;
          if me = 1 then ignore (Dsm.f64_get ctx a 0);
          Dsm.barrier ctx
        done)
  in
  (* Phase 1 creates about 2 diffs per iteration (both writers); phase 2
     must stop creating them well before its 8 iterations are over (rule 3
     clears the flag at the barrier once one writer's notices dominate,
     then ownership resumes).  Allow phase 1's six diffs plus a couple of
     transition diffs. *)
  let diffs = Stats.diffs_created_total report.Dsm.stats in
  Alcotest.(check bool)
    (Printf.sprintf "diff creation stops (%d diffs total)" diffs)
    true (diffs <= 10)

(* Sustained false sharing must NOT flap between modes (regression: rules
   2/3 once ignored the node's own concurrent writes, so every barrier
   reset the flag and every iteration re-refused ownership). *)
let test_sustained_fs_does_not_flap () =
  let t = make Config.Wfs in
  let a = Dsm.alloc_f64 t ~name:"page" ~len:512 in
  let iterations = 8 in
  let report =
    Dsm.run t (fun ctx ->
        let base = Dsm.me ctx * 256 in
        for _ = 1 to iterations do
          for i = base to base + 255 do
            Dsm.f64_set ctx a i 1.0
          done;
          Dsm.barrier ctx
        done)
  in
  Alcotest.(check bool)
    (Printf.sprintf "at most a couple of refusals (%d)"
       (Stats.ownership_refusals report.Dsm.stats))
    true
    (Stats.ownership_refusals report.Dsm.stats <= 2);
  (* Once in MW mode, both writers diff every iteration. *)
  Alcotest.(check bool)
    (Printf.sprintf "diffing is steady (%d)" (Stats.diffs_created_total report.Dsm.stats))
    true
    (Stats.diffs_created_total report.Dsm.stats >= (2 * iterations) - 4)

(* ------------------------------------------------------------------ *)
(* WFS+WG measurement and threshold                                   *)
(* ------------------------------------------------------------------ *)

let wg_run ~bytes_per_iter =
  let t = make Config.Wfs_wg in
  let a = Dsm.alloc_f64 t ~name:"page" ~len:512 in
  let words = bytes_per_iter / 8 in
  let report =
    Dsm.run t (fun ctx ->
        for iter = 1 to 6 do
          if Dsm.me ctx = 0 then
            for i = 0 to words - 1 do
              Dsm.f64_set ctx a i (sqrt (float_of_int ((iter * 7919) + i)))
            done;
          Dsm.barrier ctx;
          if Dsm.me ctx = 1 then ignore (Dsm.f64_get ctx a 0);
          Dsm.barrier ctx
        done)
  in
  Stats.diffs_created_total report.Dsm.stats

let test_wg_threshold_behaviour () =
  (* Writes above the 3 KB threshold: exactly one measuring diff, then SW.
     Writes below it: a diff per iteration. *)
  let large = wg_run ~bytes_per_iter:4096 in
  let small = wg_run ~bytes_per_iter:1024 in
  Alcotest.(check int) "large writes: one measuring diff" 1 large;
  Alcotest.(check bool)
    (Printf.sprintf "small writes keep diffing (%d)" small)
    true (small >= 5)

(* ------------------------------------------------------------------ *)
(* SW protocol: forwarding chains and quantum                         *)
(* ------------------------------------------------------------------ *)

(* Ownership requests chase the grant chain through stale hints; with 4
   processors writing in turn, every transfer must eventually land
   (regression: forwards used to be lost in the transfer-receipt window,
   deadlocking the run). *)
let test_sw_forwarding_chain () =
  let t = make ~nprocs:4 Config.Sw in
  let a = Dsm.alloc_f64 t ~name:"page" ~len:512 in
  let final = ref 0. in
  ignore
    (Dsm.run t (fun ctx ->
         (* unsynchronized competing writes: maximal chain chasing *)
         for round = 1 to 5 do
           Dsm.f64_set ctx a (Dsm.me ctx) (float_of_int round);
           Dsm.compute ctx 300_000
         done;
         Dsm.barrier ctx;
         if Dsm.me ctx = 0 then final := Dsm.f64_get ctx a 3));
  Alcotest.(check (float 0.)) "last round visible" 5. !final

let test_sw_quantum_zero_vs_large () =
  let run quantum =
    let t =
      make ~tweak:(fun c -> { c with Config.ownership_quantum_ns = quantum })
        Config.Sw
    in
    let a = Dsm.alloc_f64 t ~name:"page" ~len:512 in
    let report =
      Dsm.run t (fun ctx ->
          if Dsm.me ctx = 0 then Dsm.f64_set ctx a 0 1.0
          else Dsm.f64_set ctx a 1 2.0;
          Dsm.barrier ctx)
    in
    report.Dsm.time_ns
  in
  Alcotest.(check bool) "larger quantum delays the competing writer" true
    (run 20_000_000 > run 0 + 15_000_000)

(* ------------------------------------------------------------------ *)
(* Garbage collection policies                                        *)
(* ------------------------------------------------------------------ *)

let gc_run protocol =
  let t =
    make ~nprocs:4
      ~tweak:(fun c -> { c with Config.gc_threshold_bytes = 32_768 })
      protocol
  in
  let pages = 8 in
  let a = Dsm.alloc_f64 t ~name:"data" ~len:(512 * pages) in
  let ok = ref true in
  let report =
    Dsm.run t (fun ctx ->
        let me = Dsm.me ctx and nprocs = Dsm.nprocs ctx in
        let mine = pages / nprocs in
        for iter = 1 to 8 do
          for k = 0 to mine - 1 do
            let p = (me * mine) + k in
            for i = 0 to 511 do
              Dsm.f64_set ctx a ((p * 512) + i)
                (sqrt (float_of_int ((iter * 1_000_000) + (p * 512) + i)))
            done
          done;
          Dsm.barrier ctx;
          (* read a remote page back and check it *)
          let p = (me + 1) mod nprocs * mine in
          let expect = sqrt (float_of_int ((iter * 1_000_000) + (p * 512) + 5)) in
          if Dsm.f64_get ctx a ((p * 512) + 5) <> expect then ok := false;
          Dsm.barrier ctx
        done)
  in
  (report, !ok)

let test_gc_under_all_protocols () =
  List.iter
    (fun protocol ->
      let report, ok = gc_run protocol in
      let name = Config.protocol_name protocol in
      Alcotest.(check bool) (name ^ " data survives GC") true ok;
      match protocol with
      | Config.Mw ->
        (* MW keeps diffing whole pages, so it must hit the threshold. *)
        Alcotest.(check bool) (name ^ " GC ran") true
          (Stats.gc_count report.Dsm.stats >= 1)
      | Config.Sw | Config.Wfs | Config.Wfs_wg | Config.Hlrc ->
        (* SW makes no diffs at all, the adaptive protocols keep these
           single-writer pages in SW mode, and HLRC flushes diffs to the
           home immediately (avoiding GC is the point); GC may or may not
           trigger. *)
        ())
    Config.all_protocols

let test_adaptive_gc_cheaper_than_mw () =
  (* The adaptive protocols validate only the last owner's copy at GC;
     MW validates every concurrent writer.  On a single-writer workload
     the adaptive GC must not be more expensive in messages. *)
  let msgs protocol =
    let report, _ = gc_run protocol in
    report.Dsm.messages
  in
  let mw = msgs Config.Mw and wfs = msgs Config.Wfs in
  Alcotest.(check bool)
    (Printf.sprintf "WFS (%d msgs) <= MW (%d msgs)" wfs mw)
    true (wfs <= mw)

(* ------------------------------------------------------------------ *)
(* Regression tests for specific bugs found during development        *)
(* ------------------------------------------------------------------ *)

(* Barrier arrivals must be merged in ONE causally-ordered batch: merging
   one node's vector clock before another node's intervals were applied
   used to drop those intervals' write notices (lost bucket updates). *)
let test_barrier_interval_batching () =
  let t = make ~nprocs:4 Config.Mw in
  let buckets = 512 in
  let a = Dsm.alloc_i32 t ~name:"buckets" ~len:buckets in
  let l = Dsm.fresh_lock t in
  let total = ref 0 in
  ignore
    (Dsm.run t (fun ctx ->
         for _ = 1 to 2 do
           Dsm.lock ctx l;
           for b = 0 to buckets - 1 do
             Dsm.i32_add ctx a b 1l
           done;
           Dsm.unlock ctx l;
           Dsm.barrier ctx
         done;
         if Dsm.me ctx = 0 then begin
           total := 0;
           for b = 0 to buckets - 1 do
             total := !total + Int32.to_int (Dsm.i32_get ctx a b)
           done
         end));
  Alcotest.(check int) "no lost updates through lock chains + barriers"
    (2 * 4 * buckets) !total

(* A dirty owner serving a page copy must claim only its COMMITTED
   version: claiming the in-progress one made the eventual owner notice
   look dominated, and the fetcher silently missed the rest of the
   interval's writes. *)
let test_dirty_owner_copy_versioning () =
  let t = make Config.Sw in
  let a = Dsm.alloc_f64 t ~name:"page" ~len:512 in
  let seen = ref (-1.) in
  ignore
    (Dsm.run t (fun ctx ->
         if Dsm.me ctx = 0 then begin
           (* long interval: write, and keep the page dirty while the
              reader fetches a copy mid-interval *)
           Dsm.f64_set ctx a 0 1.0;
           Dsm.compute ctx 30_000_000;
           Dsm.f64_set ctx a 1 2.0;
           Dsm.barrier ctx;
           Dsm.barrier ctx
         end
         else begin
           Dsm.compute ctx 10_000_000;
           ignore (Dsm.f64_get ctx a 0);
           (* mid-interval fetch *)
           Dsm.barrier ctx;
           (* after synchronization, the FULL interval must be visible *)
           seen := Dsm.f64_get ctx a 1;
           Dsm.barrier ctx
         end));
  Alcotest.(check (float 0.)) "post-sync read sees the whole interval" 2.
    !seen

(* Lock grants under way must not be granted twice when a forward arrives
   during the grant's interval-closure charge (reentrancy regression). *)
let test_lock_storm () =
  let t = make ~nprocs:8 Config.Mw in
  let a = Dsm.alloc_f64 t ~name:"counter" ~len:8 in
  let locks = List.init 4 (fun _ -> Dsm.fresh_lock t) in
  let final = ref 0. in
  ignore
    (Dsm.run t (fun ctx ->
         for round = 1 to 5 do
           List.iteri
             (fun k l ->
               if (round + k + Dsm.me ctx) mod 2 = 0 then begin
                 Dsm.lock ctx l;
                 Dsm.f64_set ctx a k (Dsm.f64_get ctx a k +. 1.);
                 Dsm.unlock ctx l
               end)
             locks
         done;
         Dsm.barrier ctx;
         if Dsm.me ctx = 0 then
           final :=
             List.fold_left
               (fun acc k -> acc +. Dsm.f64_get ctx a k)
               0.
               [ 0; 1; 2; 3 ]));
  (* every increment must survive: 8 procs x 5 rounds x 4 locks, half the
     (round,k,me) combinations hit *)
  Alcotest.(check (float 0.)) "all increments survive" 80. !final

(* ------------------------------------------------------------------ *)
(* Migratory-detection extension (paper Section 7)                    *)
(* ------------------------------------------------------------------ *)

let migratory_workload detection =
  let t =
    make ~nprocs:4
      ~tweak:(fun c -> { c with Config.migratory_detection = detection })
      Config.Wfs
  in
  let a = Dsm.alloc_f64 t ~name:"page" ~len:512 in
  let final = ref 0. in
  let report =
    Dsm.run t (fun ctx ->
        (* classic migratory: each processor in turn reads then updates *)
        for round = 1 to 6 do
          for turn = 0 to 3 do
            if Dsm.me ctx = turn then begin
              let v = Dsm.f64_get ctx a 0 in
              Dsm.f64_set ctx a 0 (v +. 1.);
              ignore round
            end;
            Dsm.barrier ctx
          done
        done;
        if Dsm.me ctx = 0 then final := Dsm.f64_get ctx a 0)
  in
  (report, !final)

let test_migratory_detection_saves_messages () =
  let off, v_off = migratory_workload false in
  let on, v_on = migratory_workload true in
  Alcotest.(check (float 0.)) "same result" v_off v_on;
  Alcotest.(check (float 0.)) "correct count" 24. v_on;
  Alcotest.(check bool) "upgrades happened" true
    (Stats.migratory_upgrades on.Dsm.stats > 0);
  Alcotest.(check int) "no upgrades when disabled" 0
    (Stats.migratory_upgrades off.Dsm.stats);
  (* With the upgrade, the write fault's ownership exchange disappears:
     page-related message traffic must drop. *)
  let page_own msgs =
    List.fold_left
      (fun acc (kind, (n, _)) ->
        if kind = "page" || kind = "own" then acc + n else acc)
      0 msgs
  in
  Alcotest.(check bool)
    (Printf.sprintf "fewer page+ownership messages (%d < %d)"
       (page_own on.Dsm.by_kind) (page_own off.Dsm.by_kind))
    true
    (page_own on.Dsm.by_kind < page_own off.Dsm.by_kind)

let test_migratory_detection_harmless_on_fs () =
  (* Detection must not break false-sharing adaptation. *)
  let t =
    make ~tweak:(fun c -> { c with Config.migratory_detection = true })
      Config.Wfs
  in
  let a = Dsm.alloc_f64 t ~name:"page" ~len:512 in
  let ok = ref true in
  ignore
    (Dsm.run t (fun ctx ->
         let base = Dsm.me ctx * 256 in
         for iter = 1 to 4 do
           for i = base to base + 255 do
             Dsm.f64_set ctx a i (float_of_int (iter + i))
           done;
           Dsm.barrier ctx;
           for i = 0 to 511 do
             if Dsm.f64_get ctx a i <> float_of_int (iter + i) then ok := false
           done;
           Dsm.barrier ctx
         done));
  Alcotest.(check bool) "false sharing still merges correctly" true !ok

(* ------------------------------------------------------------------ *)
(* HLRC extension                                                     *)
(* ------------------------------------------------------------------ *)

let test_hlrc_no_diff_store () =
  (* HLRC flushes every diff to the home immediately: the live diff store
     stays empty and GC never triggers, even with a tiny threshold. *)
  let t =
    make ~nprocs:4
      ~tweak:(fun c -> { c with Config.gc_threshold_bytes = 8_192 })
      Config.Hlrc
  in
  let a = Dsm.alloc_f64 t ~name:"data" ~len:2048 in
  let ok = ref true in
  let report =
    Dsm.run t (fun ctx ->
        let me = Dsm.me ctx in
        (* write a block homed at ANOTHER node, so the writes twin/diff
           and flush to the home *)
        let mine = (me + 1) mod 4 in
        for iter = 1 to 6 do
          for i = 0 to 511 do
            Dsm.f64_set ctx a ((mine * 512) + i)
              (sqrt (float_of_int ((iter * 4096) + i)))
          done;
          Dsm.barrier ctx;
          let q = (me + 2) mod 4 in
          let expect = sqrt (float_of_int ((iter * 4096) + 3)) in
          if Dsm.f64_get ctx a ((q * 512) + 3) <> expect then ok := false;
          Dsm.barrier ctx
        done)
  in
  Alcotest.(check bool) "reads correct" true !ok;
  Alcotest.(check int) "no GC" 0 (Stats.gc_count report.Dsm.stats);
  Alcotest.(check bool) "diffs were made and flushed" true
    (Stats.diffs_created_total report.Dsm.stats > 0)

let test_hlrc_false_sharing_merges () =
  let t = make Config.Hlrc in
  let a = Dsm.alloc_f64 t ~name:"page" ~len:512 in
  let ok = ref true in
  ignore
    (Dsm.run t (fun ctx ->
         let base = Dsm.me ctx * 256 in
         for iter = 1 to 4 do
           for i = base to base + 255 do
             Dsm.f64_set ctx a i (float_of_int (iter + i))
           done;
           Dsm.barrier ctx;
           for i = 0 to 511 do
             if Dsm.f64_get ctx a i <> float_of_int (iter + i) then ok := false
           done;
           Dsm.barrier ctx
         done));
  Alcotest.(check bool) "home merges concurrent diffs" true !ok

(* Paper Section 3.3: "with priority to the test for write-write false
   sharing" — a page that is BOTH falsely shared AND writes large diffs
   must stay in MW mode under WFS+WG (the granularity preference for SW
   yields to the false-sharing test). *)
let test_wg_fs_priority () =
  let t = make Config.Wfs_wg in
  let a = Dsm.alloc_f64 t ~name:"page" ~len:512 in
  let iterations = 6 in
  let report =
    Dsm.run t (fun ctx ->
        let base = Dsm.me ctx * 256 in
        for iter = 1 to iterations do
          (* each writer rewrites its half with fresh bytes: per-writer
             diffs are ~2 KB, but the PAGE is falsely shared *)
          for i = base to base + 255 do
            Dsm.f64_set ctx a i (sqrt (float_of_int ((iter * 100_000) + i)))
          done;
          Dsm.barrier ctx
        done)
  in
  (* staying in MW means both writers keep diffing every iteration *)
  Alcotest.(check bool)
    (Printf.sprintf "page stays MW under FS (%d diffs)"
       (Stats.diffs_created_total report.Dsm.stats))
    true
    (Stats.diffs_created_total report.Dsm.stats >= (2 * iterations) - 4);
  Alcotest.(check bool) "at most the initial refusal" true
    (Stats.ownership_refusals report.Dsm.stats <= 2)

(* HLRC: a fetch that arrives at the home before the needed diff must be
   deferred, not answered stale.  We force the window with a slow link by
   making the writer's diff large (slow to arrive) and the reader's fetch
   race it through the barrier release. *)
let test_hlrc_fetch_waits_for_diffs () =
  let t = make ~nprocs:4 Config.Hlrc in
  let a = Dsm.alloc_f64 t ~name:"data" ~len:2048 in
  let seen = ref [] in
  ignore
    (Dsm.run t (fun ctx ->
         let me = Dsm.me ctx in
         for iter = 1 to 4 do
           (* p1 writes a page homed at p2; p3 reads it immediately after
              the barrier, often before the diff has landed at p2. *)
           if me = 1 then
             for i = 0 to 511 do
               Dsm.f64_set ctx a (512 + i)
                 (float_of_int ((iter * 4096) + i))
             done;
           Dsm.barrier ctx;
           if me = 3 then
             seen := Dsm.f64_get ctx a (512 + 100) :: !seen;
           Dsm.barrier ctx
         done));
  Alcotest.(check (list (float 0.)))
    "every read sees the synchronized value"
    [ 16484.; 12388.; 8292.; 4196. ]
    !seen

let () =
  Alcotest.run "proto"
    [
      ( "ownership-refusal",
        [
          Alcotest.test_case "stale version refused" `Quick
            test_refusal_on_stale_version;
          Alcotest.test_case "migratory grants" `Quick
            test_migratory_grants_without_twins;
          Alcotest.test_case "producer keeps ownership" `Quick
            test_producer_keeps_ownership;
        ] );
      ( "mode-detection",
        [
          Alcotest.test_case "FS stop returns to SW" `Quick
            test_fs_stop_returns_to_sw;
          Alcotest.test_case "sustained FS stable" `Quick
            test_sustained_fs_does_not_flap;
          Alcotest.test_case "WG threshold" `Quick test_wg_threshold_behaviour;
          Alcotest.test_case "FS has priority over WG" `Quick
            test_wg_fs_priority;
        ] );
      ( "sw-protocol",
        [
          Alcotest.test_case "forwarding chain" `Quick test_sw_forwarding_chain;
          Alcotest.test_case "quantum" `Quick test_sw_quantum_zero_vs_large;
        ] );
      ( "gc",
        [
          Alcotest.test_case "all protocols survive GC" `Quick
            test_gc_under_all_protocols;
          Alcotest.test_case "adaptive GC cheaper" `Quick
            test_adaptive_gc_cheaper_than_mw;
        ] );
      ( "regressions",
        [
          Alcotest.test_case "barrier interval batching" `Quick
            test_barrier_interval_batching;
          Alcotest.test_case "dirty-owner copy versioning" `Quick
            test_dirty_owner_copy_versioning;
          Alcotest.test_case "lock storm" `Quick test_lock_storm;
        ] );
      ( "migratory-extension",
        [
          Alcotest.test_case "saves messages" `Quick
            test_migratory_detection_saves_messages;
          Alcotest.test_case "harmless on FS" `Quick
            test_migratory_detection_harmless_on_fs;
        ] );
      ( "hlrc-extension",
        [
          Alcotest.test_case "no diff store, no GC" `Quick
            test_hlrc_no_diff_store;
          Alcotest.test_case "false sharing merges" `Quick
            test_hlrc_false_sharing_merges;
          Alcotest.test_case "fetch waits for diffs" `Quick
            test_hlrc_fetch_waits_for_diffs;
        ] );
    ]
