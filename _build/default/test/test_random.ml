(* Randomized cross-protocol equivalence.

   For random (but race-free) shared-memory programs, all four protocols
   and every processor count must produce bit-identical results — the
   protocols may only differ in cost, never in outcome.

   Program shape (deterministic from a seed): a few pages of shared
   float64s; ownership of indices is partitioned round-robin so concurrent
   writes never touch the same word but freely falsely-share pages.  Each
   phase: every processor overwrites a random subset of its own indices
   (values derived from the seed), then a barrier, then every processor
   reads a random subset of ALL indices into a running checksum, then a
   barrier.  Locks guard a shared accumulator to exercise the migratory
   path too. *)

module Config = Adsm_dsm.Config
module Dsm = Adsm_dsm.Dsm
module Rng = Adsm_sim.Rng

let total_len = 1536 (* three pages of f64 *)

let run_program ?(lazy_diffing = false) ?(write_ranges = false)
    ?schedule_fuzz ~seed ~protocol ~nprocs ~phases () =
  let cfg = Config.make ~protocol ~nprocs () in
  (* a tiny GC threshold exercises garbage collection in the mix *)
  let cfg =
    {
      cfg with
      Config.gc_threshold_bytes = 24_576;
      lazy_diffing;
      write_ranges;
      schedule_fuzz;
    }
  in
  let t = Dsm.create cfg in
  let data = Dsm.alloc_f64 t ~name:"data" ~len:total_len in
  let acc = Dsm.alloc_f64 t ~name:"acc" ~len:8 in
  let l = Dsm.fresh_lock t in
  let results = Array.make nprocs 0. in
  let report =
    Dsm.run t (fun ctx ->
        let me = Dsm.me ctx in
        let rng = Rng.create (Int64.of_int ((seed * 7919) + 13)) in
        let checksum = ref 0. in
        for phase = 1 to phases do
          (* Every processor draws the same stream and filters to its own
             actions, so the workload is identical across nprocs... for a
             fixed virtual processor count. *)
          let virtual_procs = 4 in
          for v = 0 to virtual_procs - 1 do
            let writes = 8 + Rng.int rng 24 in
            for _ = 1 to writes do
              let slot = Rng.int rng (total_len / virtual_procs) in
              let idx = (slot * virtual_procs) + v in
              let value =
                float_of_int ((phase * 100_000) + idx)
                /. float_of_int (1 + Rng.int rng 97)
              in
              if v mod nprocs = me then Dsm.f64_set ctx data idx value
            done;
            (* occasional lock-guarded accumulation (migratory) *)
            if Rng.int rng 3 = 0 then begin
              let inc = float_of_int (Rng.int rng 1000) in
              if v mod nprocs = me then begin
                Dsm.lock ctx l;
                Dsm.f64_set ctx acc 0 (Dsm.f64_get ctx acc 0 +. inc);
                Dsm.unlock ctx l
              end
            end
          done;
          Dsm.barrier ctx;
          (* reads: same index stream on every processor *)
          let reads = 16 + Rng.int rng 32 in
          for _ = 1 to reads do
            let idx = Rng.int rng total_len in
            checksum :=
              (!checksum *. 0.99) +. Dsm.f64_get ctx data idx
          done;
          checksum := !checksum +. Dsm.f64_get ctx acc 0;
          Dsm.barrier ctx
        done;
        results.(me) <- !checksum)
  in
  (* every processor read the same stream, so all checksums must agree *)
  Array.iter
    (fun r ->
      if r <> results.(0) then
        Alcotest.failf "intra-run checksum divergence (%h vs %h)" r
          results.(0))
    results;
  (results.(0), report)

let prop_cross_protocol_equivalence =
  QCheck.Test.make ~name:"all protocols compute identical results" ~count:12
    QCheck.(int_bound 100_000)
    (fun seed ->
      let reference, _ =
        run_program ~seed ~protocol:Config.Sw ~nprocs:1 ~phases:3 ()
      in
      List.for_all
        (fun protocol ->
          List.for_all
            (fun nprocs ->
              List.for_all
                (fun (lazy_diffing, write_ranges) ->
                  let value, _ =
                    run_program ~lazy_diffing ~write_ranges ~seed ~protocol
                      ~nprocs ~phases:3 ()
                  in
                  value = reference)
                [ (false, false); (true, false); (false, true) ])
            [ 2; 4 ])
        Config.extended_protocols)

(* Schedule fuzzing: permuting the firing order of same-instant events
   explores different legal interleavings of protocol handlers and
   processes.  The application result must be identical under every
   schedule (timings and message counts may differ). *)
let prop_schedule_fuzz_equivalence =
  QCheck.Test.make ~name:"results are schedule-independent" ~count:8
    QCheck.(pair (int_bound 100_000) (int_bound 1_000_000))
    (fun (seed, fuzz) ->
      let reference, _ =
        run_program ~seed ~protocol:Config.Sw ~nprocs:1 ~phases:2 ()
      in
      List.for_all
        (fun protocol ->
          let value, _ =
            run_program ~schedule_fuzz:fuzz ~seed ~protocol ~nprocs:4
              ~phases:2 ()
          in
          value = reference)
        Config.extended_protocols)

let prop_runs_are_deterministic =
  QCheck.Test.make ~name:"identical configurations replay bit-for-bit"
    ~count:6
    QCheck.(int_bound 100_000)
    (fun seed ->
      let run () =
        let value, report =
          run_program ~seed ~protocol:Config.Wfs ~nprocs:4 ~phases:2 ()
        in
        (value, report.Dsm.time_ns, report.Dsm.messages)
      in
      run () = run ())

let () =
  Alcotest.run "random"
    [
      ( "equivalence",
        [
          QCheck_alcotest.to_alcotest prop_cross_protocol_equivalence;
          QCheck_alcotest.to_alcotest prop_schedule_fuzz_equivalence;
          QCheck_alcotest.to_alcotest prop_runs_are_deterministic;
        ] );
    ]
