(* Tests for the simulated paged memory substrate. *)

module Page = Adsm_mem.Page
module Perm = Adsm_mem.Perm
module Layout = Adsm_mem.Layout

let test_page_size () = Alcotest.(check int) "4KB pages" 4096 Page.size

let test_page_accessors () =
  let p = Page.create () in
  Page.set_byte p 0 0xAB;
  Alcotest.(check int) "byte" 0xAB (Page.get_byte p 0);
  Page.set_i32 p 4 (-123456l);
  Alcotest.(check int32) "i32" (-123456l) (Page.get_i32 p 4);
  Page.set_f64 p 8 2.718281828;
  Alcotest.(check (float 0.)) "f64" 2.718281828 (Page.get_f64 p 8);
  Page.set_f64 p (Page.size - 8) 1.5;
  Alcotest.(check (float 0.)) "last slot" 1.5 (Page.get_f64 p (Page.size - 8))

let test_page_copy_blit () =
  let a = Page.create () in
  Page.set_f64 a 0 9.0;
  let b = Page.copy a in
  Page.set_f64 a 0 1.0;
  Alcotest.(check (float 0.)) "copy independent" 9.0 (Page.get_f64 b 0);
  Page.blit ~src:a ~dst:b;
  Alcotest.(check bool) "blit equalizes" true (Page.equal a b);
  Page.fill_zero a;
  Alcotest.(check (float 0.)) "zeroed" 0.0 (Page.get_f64 a 0)

let test_page_of_bytes () =
  Alcotest.check_raises "wrong size"
    (Invalid_argument "Page.of_bytes: expected 4096 bytes, got 3") (fun () ->
      ignore (Page.of_bytes (Bytes.create 3)));
  let p = Page.of_bytes (Bytes.make Page.size 'x') in
  Alcotest.(check int) "wraps" (Char.code 'x') (Page.get_byte p 17)

let test_perm () =
  Alcotest.(check bool) "none: no read" false (Perm.allows_read Perm.No_access);
  Alcotest.(check bool) "ro: read" true (Perm.allows_read Perm.Read_only);
  Alcotest.(check bool) "ro: no write" false (Perm.allows_write Perm.Read_only);
  Alcotest.(check bool) "rw: write" true (Perm.allows_write Perm.Read_write);
  Alcotest.(check string) "names" "ro" (Perm.to_string Perm.Read_only)

let test_layout_alloc () =
  let l = Layout.create () in
  let a = Layout.alloc l ~name:"a" ~bytes:100 in
  let b = Layout.alloc l ~name:"b" ~bytes:(2 * Page.size) in
  let c = Layout.alloc l ~name:"c" ~bytes:(Page.size + 1) in
  Alcotest.(check int) "a starts at 0" 0 a.Layout.first_page;
  Alcotest.(check int) "a rounded to one page" 1 a.Layout.page_count;
  Alcotest.(check int) "b follows" 1 b.Layout.first_page;
  Alcotest.(check int) "b exact" 2 b.Layout.page_count;
  Alcotest.(check int) "c rounded up" 2 c.Layout.page_count;
  Alcotest.(check int) "total" 5 (Layout.total_pages l);
  Alcotest.(check (list string)) "regions in order" [ "a"; "b"; "c" ]
    (List.map (fun (r : Layout.region) -> r.Layout.name) (Layout.regions l))

let test_layout_locate () =
  let l = Layout.create () in
  let _a = Layout.alloc l ~name:"a" ~bytes:Page.size in
  let b = Layout.alloc l ~name:"b" ~bytes:(3 * Page.size) in
  Alcotest.(check (pair int int)) "start" (1, 0) (Layout.locate b 0);
  Alcotest.(check (pair int int)) "mid"
    (2, 10)
    (Layout.locate b (Page.size + 10));
  Alcotest.check_raises "out of range"
    (Invalid_argument
       "Layout.locate: offset 12288 outside region b (12288 bytes)")
    (fun () -> ignore (Layout.locate b (3 * Page.size)))

let test_layout_region_of_page () =
  let l = Layout.create () in
  let a = Layout.alloc l ~name:"a" ~bytes:Page.size in
  let b = Layout.alloc l ~name:"b" ~bytes:Page.size in
  Alcotest.(check (option string)) "page 0" (Some a.Layout.name)
    (Option.map
       (fun (r : Layout.region) -> r.Layout.name)
       (Layout.region_of_page l 0));
  Alcotest.(check (option string)) "page 1" (Some b.Layout.name)
    (Option.map
       (fun (r : Layout.region) -> r.Layout.name)
       (Layout.region_of_page l 1));
  Alcotest.(check bool) "page 2 unmapped" true
    (Layout.region_of_page l 2 = None)

let test_layout_pages_of_range () =
  let l = Layout.create () in
  let a = Layout.alloc l ~name:"a" ~bytes:(4 * Page.size) in
  Alcotest.(check (list int)) "within one page" [ 0 ]
    (Layout.pages_of_range a ~offset:10 ~len:100);
  Alcotest.(check (list int)) "spanning" [ 0; 1; 2 ]
    (Layout.pages_of_range a ~offset:100 ~len:(2 * Page.size));
  Alcotest.(check (list int)) "empty" []
    (Layout.pages_of_range a ~offset:0 ~len:0)

let prop_locate_consistent =
  QCheck.Test.make ~name:"locate maps offsets monotonically" ~count:200
    QCheck.(int_bound ((4 * Page.size) - 2))
    (fun off ->
      let l = Layout.create () in
      let r = Layout.alloc l ~name:"r" ~bytes:(4 * Page.size) in
      let p1, o1 = Layout.locate r off in
      let p2, o2 = Layout.locate r (off + 1) in
      let linear p o = (p * Page.size) + o in
      linear p2 o2 = linear p1 o1 + 1)

let () =
  Alcotest.run "mem"
    [
      ( "page",
        [
          Alcotest.test_case "size" `Quick test_page_size;
          Alcotest.test_case "accessors" `Quick test_page_accessors;
          Alcotest.test_case "copy/blit" `Quick test_page_copy_blit;
          Alcotest.test_case "of_bytes" `Quick test_page_of_bytes;
        ] );
      ("perm", [ Alcotest.test_case "permissions" `Quick test_perm ]);
      ( "layout",
        [
          Alcotest.test_case "alloc" `Quick test_layout_alloc;
          Alcotest.test_case "locate" `Quick test_layout_locate;
          Alcotest.test_case "region_of_page" `Quick test_layout_region_of_page;
          Alcotest.test_case "pages_of_range" `Quick test_layout_pages_of_range;
          QCheck_alcotest.to_alcotest prop_locate_consistent;
        ] );
    ]
