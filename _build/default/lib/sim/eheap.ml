type 'a entry = { time : int; seq : int; value : 'a }

type 'a t = { mutable data : 'a entry array; mutable size : int }

let create () = { data = [||]; size = 0 }

let length h = h.size

let is_empty h = h.size = 0

let precedes a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow h =
  let cap = Array.length h.data in
  let cap' = if cap = 0 then 64 else cap * 2 in
  (* The dummy cell is only used to extend the array; it is never read
     because [size] bounds all accesses. *)
  let dummy = h.data.(0) in
  let data' = Array.make cap' dummy in
  Array.blit h.data 0 data' 0 cap;
  h.data <- data'

let push h ~time ~seq value =
  let e = { time; seq; value } in
  if h.size = Array.length h.data then
    if h.size = 0 then h.data <- Array.make 64 e else grow h;
  let data = h.data in
  let i = ref h.size in
  h.size <- h.size + 1;
  data.(!i) <- e;
  (* Sift up. *)
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if precedes e data.(parent) then begin
      data.(!i) <- data.(parent);
      data.(parent) <- e;
      i := parent
    end
    else continue := false
  done

let sift_down h =
  let data = h.data and n = h.size in
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < n && precedes data.(l) data.(!smallest) then smallest := l;
    if r < n && precedes data.(r) data.(!smallest) then smallest := r;
    if !smallest <> !i then begin
      let tmp = data.(!i) in
      data.(!i) <- data.(!smallest);
      data.(!smallest) <- tmp;
      i := !smallest
    end
    else continue := false
  done

let pop_min h =
  if h.size = 0 then None
  else begin
    let e = h.data.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.data.(0) <- h.data.(h.size);
      h.data.(h.size) <- e;
      (* keep a live value in the vacated slot; harmless *)
      sift_down h
    end;
    Some (e.time, e.seq, e.value)
  end

let peek_time h = if h.size = 0 then None else Some h.data.(0).time
