(** Append-only time series of [(time_ns, value)] samples, used to record
    protocol metrics over simulated time (e.g. live diff count for the
    paper's Figure 3). *)

type t

val create : name:string -> t

val name : t -> string

val record : t -> time:int -> value:float -> unit

val length : t -> int

(** Samples in recording order. *)
val to_list : t -> (int * float) list

(** Largest value recorded, or 0 if empty. *)
val max_value : t -> float

(** Value in effect at [time] (last sample at or before it); 0 before the
    first sample. *)
val value_at : t -> time:int -> float

(** [resample t ~buckets ~t_end] summarizes the series into [buckets] equal
    time windows over [0, t_end], carrying the last value forward. *)
val resample : t -> buckets:int -> t_end:int -> float array
