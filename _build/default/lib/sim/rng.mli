(** Deterministic SplitMix64 pseudo-random number generator.

    The simulator never touches the global [Random] state, so every
    experiment is reproducible from its seed. *)

type t

val create : int64 -> t

(** Next raw 64-bit output. *)
val next64 : t -> int64

(** [int t bound] is uniform in [0, bound).  @raise Invalid_argument if
    [bound <= 0]. *)
val int : t -> int -> int

(** Uniform float in [0, 1). *)
val float : t -> float

(** [split t] derives an independent generator; [t] advances. *)
val split : t -> t

(** In-place Fisher-Yates shuffle. *)
val shuffle : t -> 'a array -> unit
