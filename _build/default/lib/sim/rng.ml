type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* 63-bit rejection sampling to avoid modulo bias. *)
  let rec draw () =
    let r = Int64.to_int (Int64.shift_right_logical (next64 t) 1) in
    let v = r mod bound in
    if r - v + (bound - 1) < 0 then draw () else v
  in
  draw ()

let float t =
  (* 53 significant bits, as in Java's SplittableRandom. *)
  let bits = Int64.shift_right_logical (next64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let split t =
  let seed = next64 t in
  { state = seed }

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
