(** Binary min-heap of timestamped events.

    Events are ordered by [(time, seq)]: [seq] is a monotonically increasing
    insertion counter supplied by the caller, so that events scheduled for the
    same simulated instant fire in insertion order.  This makes the whole
    simulation deterministic. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

(** [push h ~time ~seq v] inserts [v] with priority [(time, seq)]. *)
val push : 'a t -> time:int -> seq:int -> 'a -> unit

(** [pop_min h] removes and returns the event with the smallest [(time, seq)],
    or [None] when the heap is empty. *)
val pop_min : 'a t -> (int * int * 'a) option

(** [peek_time h] is the time of the earliest event without removing it. *)
val peek_time : 'a t -> int option
