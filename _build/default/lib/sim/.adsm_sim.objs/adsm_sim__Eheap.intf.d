lib/sim/eheap.mli:
