lib/sim/engine.mli:
