lib/sim/proc.ml: Effect Engine Queue
