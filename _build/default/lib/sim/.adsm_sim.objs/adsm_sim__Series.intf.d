lib/sim/series.mli:
