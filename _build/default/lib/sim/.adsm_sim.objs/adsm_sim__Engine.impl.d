lib/sim/engine.ml: Eheap Fun Int64 Printf
