lib/sim/rng.mli:
