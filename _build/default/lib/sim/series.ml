type t = {
  series_name : string;
  mutable times : int array;
  mutable values : float array;
  mutable size : int;
}

let create ~name = { series_name = name; times = [||]; values = [||]; size = 0 }

let name t = t.series_name

let record t ~time ~value =
  if t.size = Array.length t.times then begin
    let cap = max 64 (2 * t.size) in
    let times' = Array.make cap 0 and values' = Array.make cap 0. in
    Array.blit t.times 0 times' 0 t.size;
    Array.blit t.values 0 values' 0 t.size;
    t.times <- times';
    t.values <- values'
  end;
  t.times.(t.size) <- time;
  t.values.(t.size) <- value;
  t.size <- t.size + 1

let length t = t.size

let to_list t =
  let rec build i acc =
    if i < 0 then acc else build (i - 1) ((t.times.(i), t.values.(i)) :: acc)
  in
  build (t.size - 1) []

let max_value t =
  let m = ref 0. in
  for i = 0 to t.size - 1 do
    if t.values.(i) > !m then m := t.values.(i)
  done;
  !m

let value_at t ~time =
  (* Samples are recorded with nondecreasing times; binary search for the
     last sample at or before [time]. *)
  if t.size = 0 || time < t.times.(0) then 0.
  else begin
    let lo = ref 0 and hi = ref (t.size - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if t.times.(mid) <= time then lo := mid else hi := mid - 1
    done;
    t.values.(!lo)
  end

let resample t ~buckets ~t_end =
  if buckets <= 0 then invalid_arg "Series.resample: buckets must be positive";
  let out = Array.make buckets 0. in
  for b = 0 to buckets - 1 do
    let time =
      if buckets = 1 then t_end else b * t_end / (buckets - 1)
    in
    out.(b) <- value_at t ~time
  done;
  out
