(* The LRC protocols.  See Section 3 of the paper:

   - MW: TreadMarks-style twin/diff multiple writer.
   - SW: CVM-like single writer with version numbers, home-forwarded
     ownership transfers and a minimum ownership quantum.
   - WFS: adapts between SW and MW per page on write-write false sharing,
     detected with the ownership-refusal protocol.
   - WFS+WG: WFS plus write-granularity adaptation (3 KB threshold).

   Plus two extensions beyond the paper's evaluation:
   - HLRC (cited in its related work): diffs are flushed eagerly to each
     page's static home and discarded; faults fetch whole pages from the
     home; no diff store and no garbage collection.
   - Migratory-data detection (sketched in its related work): read misses
     on read-then-write pages are upgraded to ownership migrations
     (enabled by Config.migratory_detection).

   Conventions used throughout:
   - an interval is closed (diffs / owner write notices created) at every
     release *and* before applying remotely received notices, so
     [apply_notice] never encounters a dirty page;
   - diffs are created eagerly at interval close (a documented
     simplification of TreadMarks's lazy diffing);
   - an owner that grants ownership does NOT learn the new version number;
     it propagates only through owner write notices, which is what makes
     the ownership-refusal test detect false sharing (paper Section 3.1.1,
     second example). *)

module Page = Adsm_mem.Page
module Perm = Adsm_mem.Perm
module Engine = Adsm_sim.Engine
module Proc = Adsm_sim.Proc
module Rpc = Adsm_net.Rpc
open State

let adaptive cl =
  match cl.cfg.Config.protocol with
  | Config.Wfs | Config.Wfs_wg -> true
  | Config.Mw | Config.Sw | Config.Hlrc -> false

let is_hlrc cl = cl.cfg.Config.protocol = Config.Hlrc

let is_wfs_wg cl = cl.cfg.Config.protocol = Config.Wfs_wg

(* A page "prefers" SW mode when the adaptive state variables say so. *)
let prefers_sw cl (e : entry) =
  match cl.cfg.Config.protocol with
  | Config.Sw -> true
  | Config.Mw | Config.Hlrc -> false
  | Config.Wfs -> not e.fs_active
  | Config.Wfs_wg ->
    (not e.fs_active) && if e.measured then e.wg_large else true

let sees_page_as_sw (e : entry) = not e.fs_active

let set_fs_active cl (e : entry) value =
  if e.fs_active <> value then begin
    if adaptive cl then Stats.mode_switch cl.stats;
    e.fs_active <- value
  end

(* ------------------------------------------------------------------ *)
(* Sending helpers                                                    *)
(* ------------------------------------------------------------------ *)

let cast cl ~src ~dst msg =
  Rpc.cast cl.rpc ~src ~dst ~bytes:(Msg.size_bytes msg) ~kind:(Msg.kind msg)
    msg

let call cl ~src ~dst msg =
  Rpc.call cl.rpc ~src ~dst ~bytes:(Msg.size_bytes msg) ~kind:(Msg.kind msg)
    msg

let respond_msg respond msg =
  respond ~bytes:(Msg.size_bytes msg) ~kind:(Msg.kind msg) msg

(* ------------------------------------------------------------------ *)
(* Interval closure (release side)                                    *)
(* ------------------------------------------------------------------ *)

(* Close the node's current interval: create a diff for every dirty MW-mode
   page and an owner write notice for every dirty SW-mode page.

   The state update is ATOMIC — no suspension point inside — because other
   events (e.g. a lock-forward handler granting a different lock) may run
   interleaved and must observe a consistent interval state.  The total CPU
   cost is passed to [charge] once at the end: in process context it
   sleeps, in event context it becomes added latency on the triggered
   reply. *)
let end_interval cl node ~charge =
  let total_cost = ref 0 in
  let charge_later ns = total_cost := !total_cost + ns in
  if node.dirty_pages <> [] then begin
    Vc.tick node.vc ~proc:node.id;
    let vc_snapshot = Vc.copy node.vc in
    let seq = Vc.get node.vc node.id in
    let notices = ref [] in
    let seen = Hashtbl.create 16 in
    let close_page page =
      if not (Hashtbl.mem seen page) then begin
        Hashtbl.add seen page ();
        let e = node.pages.(page) in
        assert e.dirty;
        e.dirty <- false;
        Stats.note_write cl.stats ~page ~proc:node.id;
        e.last_notice_vc.(node.id) <- Some vc_snapshot;
        let version =
          match e.twin with
          | Some _ when cl.cfg.Config.lazy_diffing && not (is_hlrc cl) ->
            (* Lazy diffing (TreadMarks): keep the twin; the diff
               materializes on first request or when the page is written
               again.  At most one interval can be pending per page — the
               next write fault materializes it before re-twinning. *)
            assert (e.pending_diff = None);
            e.pending_diff <- Some (seq, vc_snapshot);
            e.reflected.(node.id) <- seq;
            e.perm <- Perm.Read_only;
            None
          | Some twin ->
            (* MW-mode page: eager twin/diff. *)
            let current = frame e in
            let diff = Diff.create ~twin ~current in
            charge_later cl.cfg.Config.diff_create_ns;
            let bytes = Diff.size_bytes diff in
            let modified = Diff.modified_bytes diff in
            trace cl ~node:node.id
              (Printf.sprintf "diff pg%d seq%d bytes=%d" page seq
                 (Diff.modified_bytes diff));
            Stats.diff_created cl.stats ~node:node.id ~page ~bytes ~modified
              ~time:(Engine.now cl.engine);
            if is_hlrc cl then begin
              (* HLRC: flush the diff to the page's home and discard it —
                 no local diff store, hence no garbage collection. *)
              cast cl ~src:node.id ~dst:(home_of_page cl page)
                (Msg.Hlrc_diff { page; seq; vc = vc_snapshot; diff });
              Stats.diffs_dropped cl.stats ~node:node.id ~bytes ~count:1
                ~time:(Engine.now cl.engine)
            end
            else begin
              Hashtbl.replace node.diffs (page, node.id, seq)
                (vc_snapshot, diff);
              e.own_diff_seqs <- seq :: e.own_diff_seqs
            end;
            e.twin <- None;
            Stats.twin_freed cl.stats ~node:node.id;
            e.reflected.(node.id) <- seq;
            e.perm <- Perm.Read_only;
            if is_wfs_wg cl then begin
              (* Write-granularity measurement (Section 3.2). *)
              e.measured <- true;
              let large = modified > cl.cfg.Config.wg_threshold_bytes in
              if large <> e.wg_large then Stats.mode_switch cl.stats;
              e.wg_large <- large
            end;
            None
          | None when e.log_writes ->
            (* Software write detection: build the diff from the logged
               ranges — no twin, no page scan; the cost is the per-write
               logging plus a small assembly cost per range. *)
            let diff = Diff.of_ranges e.logged_ranges (frame e) in
            charge_later
              ((e.logged_count * cl.cfg.Config.write_log_ns)
              + (Diff.run_count diff * 500));
            let bytes = Diff.size_bytes diff in
            let modified = Diff.modified_bytes diff in
            Stats.diff_created cl.stats ~node:node.id ~page ~bytes ~modified
              ~time:(Engine.now cl.engine);
            if is_hlrc cl then begin
              cast cl ~src:node.id ~dst:(home_of_page cl page)
                (Msg.Hlrc_diff { page; seq; vc = vc_snapshot; diff });
              Stats.diffs_dropped cl.stats ~node:node.id ~bytes ~count:1
                ~time:(Engine.now cl.engine)
            end
            else begin
              Hashtbl.replace node.diffs (page, node.id, seq)
                (vc_snapshot, diff);
              e.own_diff_seqs <- seq :: e.own_diff_seqs
            end;
            e.log_writes <- false;
            e.logged_ranges <- [];
            e.logged_count <- 0;
            e.reflected.(node.id) <- seq;
            e.perm <- Perm.Read_only;
            if is_wfs_wg cl then begin
              e.measured <- true;
              let large = modified > cl.cfg.Config.wg_threshold_bytes in
              if large <> e.wg_large then Stats.mode_switch cl.stats;
              e.wg_large <- large
            end;
            None
          | None when is_hlrc cl ->
            (* HLRC home page: the modifications are already in place in
               the master copy; emit a plain notice and re-protect so the
               next interval's writes are detected. *)
            e.reflected.(node.id) <- seq;
            if cl.cfg.Config.nprocs > 1 then e.perm <- Perm.Read_only;
            None
          | None ->
            (* SW-mode page: the node owned the page while writing (it may
               have transferred ownership away mid-interval under SW). *)
            e.reflected.(node.id) <- seq;
            e.committed_version <- e.version;
            if e.content_version < e.version then
              e.content_version <- e.version;
            if cl.cfg.Config.nprocs > 1 && e.is_owner then
              e.perm <- Perm.Read_only;
            let v = e.version in
            if e.drop_at_release then begin
              (* Ownership refusal or WFS+WG sharing trigger: emit a final
                 owner notice, then drop to MW mode. *)
              e.drop_at_release <- false;
              e.is_owner <- false;
              e.owner <- node.id;
              Stats.mode_switch cl.stats
            end;
            Some v
        in
        notices :=
          { Notice.page; proc = node.id; seq; vc = vc_snapshot; version }
          :: !notices
      end
    in
    List.iter close_page node.dirty_pages;
    node.dirty_pages <- [];
    let ival =
      Interval.make ~proc:node.id ~vc:node.vc ~notices:(List.rev !notices)
    in
    node.intervals.(node.id) <- ival :: node.intervals.(node.id)
  end;
  if !total_cost > 0 then charge !total_cost

let end_interval_local cl node =
  end_interval cl node ~charge:(fun ns -> Proc.sleep cl.engine ns)

(* Materialize a lazily-pending diff (twin vs current frame) into the diff
   store.  Returns the creation cost to charge (0 if nothing was pending);
   callers in event context turn it into reply latency. *)
let materialize_pending_diff cl node (e : entry) =
  match e.pending_diff with
  | None -> 0
  | Some (seq, vc) ->
    e.pending_diff <- None;
    let twin =
      match e.twin with
      | Some t -> t
      | None -> failwith "Proto: pending diff without its twin"
    in
    let diff = Diff.create ~twin ~current:(frame e) in
    Hashtbl.replace node.diffs (e.page, node.id, seq) (vc, diff);
    e.own_diff_seqs <- seq :: e.own_diff_seqs;
    Stats.diff_created cl.stats ~node:node.id ~page:e.page
      ~bytes:(Diff.size_bytes diff)
      ~modified:(Diff.modified_bytes diff)
      ~time:(Engine.now cl.engine);
    e.twin <- None;
    Stats.twin_freed cl.stats ~node:node.id;
    cl.cfg.Config.diff_create_ns

(* ------------------------------------------------------------------ *)
(* Notice application (acquire side)                                  *)
(* ------------------------------------------------------------------ *)

let note_concurrent_writers cl (e : entry) (n : Notice.t) =
  Array.iteri
    (fun q vco ->
      match vco with
      | Some v when q <> n.proc && Vc.concurrent v n.vc ->
        Stats.note_false_sharing cl.stats ~page:n.page;
        if adaptive cl then set_fs_active cl e true
      | Some _ | None -> ())
    e.last_notice_vc

(* Is notice [n]'s modification still missing from this node's copy?
   Plain notices are tracked per applied diff (reflected sequence numbers);
   owner notices by the version the local contents reflect. *)
let notice_relevant node (e : entry) (n : Notice.t) =
  n.proc <> node.id
  &&
  match n.version with
  | Some v -> v > e.content_version
  | None -> n.seq > e.reflected.(n.proc)

let apply_notice cl node (n : Notice.t) =
  let e = node.pages.(n.page) in
  trace cl ~node:node.id
    (Printf.sprintf "apply_notice pg%d from p%d seq%d owner=%b relevant=%b"
       n.page n.proc n.seq (Notice.is_owner n) (notice_relevant node e n));
  Stats.note_write cl.stats ~page:n.page ~proc:n.proc;
  note_concurrent_writers cl e n;
  e.last_notice_vc.(n.proc) <- Some n.vc;
  if notice_relevant node e n then begin
    (match n.version with
    | Some v ->
      if v > e.version then begin
        e.version <- v;
        e.owner <- n.proc;
        if e.is_owner then
          (* Someone re-established ownership elsewhere (post-GC). *)
          e.is_owner <- false
      end;
      (* On-the-fly garbage collection: notices covered by an owner write
         notice are reflected in the owner's copy and can be discarded. *)
      e.notices <- List.filter (fun m -> not (Notice.covers ~by:n m)) e.notices;
      (* Rule 2 (Section 3.1.2): a fresh owner notice with no concurrent
         secondary notices means false sharing has stopped.  Our own recent
         writes count as secondary notices here: an owner notice concurrent
         with them does NOT end the false sharing. *)
      let own_concurrent =
        match e.last_notice_vc.(node.id) with
        | Some v -> Vc.concurrent v n.vc
        | None -> false
      in
      if
        adaptive cl && (not own_concurrent)
        && not
             (List.exists
                (fun (m : Notice.t) ->
                  m.proc <> n.proc && Vc.concurrent m.vc n.vc)
                e.notices)
      then set_fs_active cl e false
    | None -> ());
    if not (List.exists (Notice.same_write n) e.notices) then
      e.notices <- n :: e.notices;
    if Perm.allows_read e.perm then e.perm <- Perm.No_access
  end

(* Apply intervals received on a lock grant or barrier release, oldest
   first; duplicates (already covered by our vector clock) are skipped. *)
let apply_intervals cl node ivals =
  let fresh =
    List.filter
      (fun (iv : Interval.t) -> iv.seq > Vc.get node.vc iv.proc)
      ivals
  in
  let fresh =
    List.sort (fun (a : Interval.t) b -> Vc.order a.vc b.vc) fresh
  in
  let apply (iv : Interval.t) =
    if iv.seq > Vc.get node.vc iv.proc then begin
      node.intervals.(iv.proc) <- iv :: node.intervals.(iv.proc);
      List.iter (apply_notice cl node) iv.notices;
      Vc.merge_into node.vc iv.vc
    end
  in
  List.iter apply fresh

(* All intervals this node knows that [vc] does not cover. *)
let collect_unseen cl node vc =
  let parts =
    List.init cl.cfg.Config.nprocs (fun p ->
        Interval.unseen_by vc node.intervals.(p))
  in
  List.concat parts

(* ------------------------------------------------------------------ *)
(* Page validation (access-miss side)                                 *)
(* ------------------------------------------------------------------ *)

let still_needed = notice_relevant

(* Install a received page copy as the new base of the local frame. *)
let install_copy cl node e ~data ~version ~committed ~reflected =
  (* A lazily-pending diff lives only in the frame we are about to
     overwrite: materialize it first or the interval's writes are lost. *)
  (match e.pending_diff with
  | Some _ ->
    let cost = materialize_pending_diff cl node e in
    if cost > 0 then Proc.sleep cl.engine cost
  | None -> ());
  Proc.sleep cl.engine cl.cfg.Config.page_install_ns;
  Page.blit ~src:data ~dst:(frame e);
  e.has_base <- true;
  if version > e.version then e.version <- version;
  (* Only the version whose interval the copy fully contains dominates
     owner write notices; a dirty owner's current frame holds a PARTIAL
     newer interval that must not be claimed. *)
  if committed > e.content_version then e.content_version <- committed;
  if committed > e.committed_version then e.committed_version <- committed;
  e.reflected <- Array.copy reflected;
  e.notices <- List.filter (still_needed node e) e.notices

(* Fetch (in parallel, one request per writer) and apply, in timestamp
   order, every pending diff for the page.  Runs in process context. *)
let fetch_and_apply_diffs cl node (e : entry) =
  let pending = List.filter (still_needed node e) e.notices in
  let plain = List.filter (fun n -> not (Notice.is_owner n)) pending in
  (* Own committed modifications not reflected in the (possibly freshly
     installed) base copy must be merged back from our own diffs. *)
  (* A lazily-pending own diff must be materialized BEFORE any remote diff
     touches the frame: the diff is computed twin-vs-frame, and foreign
     words applied first would be captured into it at a stale position in
     the timestamp order. *)
  (match e.pending_diff with
  | Some _ ->
    let cost = materialize_pending_diff cl node e in
    if cost > 0 then Proc.sleep cl.engine cost
  | None -> ());
  let own_missing =
    List.filter (fun seq -> seq > e.reflected.(node.id)) e.own_diff_seqs
  in
  if plain <> [] || own_missing <> [] then begin
    (* Group the missing diffs by their writer. *)
    let by_writer = Hashtbl.create 8 in
    let record (n : Notice.t) =
      if not (Hashtbl.mem node.diffs (n.page, n.proc, n.seq)) then begin
        let prev =
          Option.value ~default:[] (Hashtbl.find_opt by_writer n.proc)
        in
        Hashtbl.replace by_writer n.proc (n.seq :: prev)
      end
    in
    List.iter record plain;
    let requests =
      Hashtbl.fold
        (fun writer seqs acc ->
          let msg =
            Msg.Diff_req
              {
                page = e.page;
                seqs = List.sort compare seqs;
                sees_sw = sees_page_as_sw e;
              }
          in
          let ivar =
            Rpc.call_async cl.rpc ~src:node.id ~dst:writer
              ~bytes:(Msg.size_bytes msg) ~kind:(Msg.kind msg) msg
          in
          (writer, ivar) :: acc)
        by_writer []
    in
    (* Await the replies and store the received diffs. *)
    List.iter
      (fun (writer, ivar) ->
        match Proc.Ivar.await ivar with
        | Msg.Diff_reply { page; diffs } ->
          List.iter
            (fun (seq, vc, diff) ->
              Hashtbl.replace node.diffs (page, writer, seq) (vc, diff);
              Stats.diff_stored cl.stats ~node:node.id
                ~bytes:(Diff.size_bytes diff))
            diffs
        | _ -> failwith "Proto: unexpected reply to Diff_req")
      requests;
    (* Apply every pending diff — remote and our own — in timestamp order. *)
    let lookup proc seq =
      match Hashtbl.find_opt node.diffs (e.page, proc, seq) with
      | Some (vc, diff) -> (vc, diff, proc, seq)
      | None ->
        failwith
          (Printf.sprintf "Proto: missing diff for page %d proc %d seq %d"
             e.page proc seq)
    in
    let to_apply =
      List.map (fun (n : Notice.t) -> lookup n.proc n.seq) plain
      @ List.map (fun seq -> lookup node.id seq) own_missing
    in
    let to_apply =
      List.sort (fun (va, _, _, _) (vb, _, _, _) -> Vc.order va vb) to_apply
    in
    let target = frame e in
    List.iter
      (fun (_, diff, proc, seq) ->
        Proc.sleep cl.engine
          (cl.cfg.Config.diff_apply_base_ns
          + (Diff.modified_bytes diff * cl.cfg.Config.diff_apply_byte_ns));
        Diff.apply diff target;
        trace cl ~node:node.id
          (Printf.sprintf "apply-diff pg%d from p%d seq%d" e.page proc seq);
        if seq > e.reflected.(proc) then e.reflected.(proc) <- seq)
      to_apply
  end;
  e.notices <- []

(* HLRC validation: the home waits for in-flight diffs to land in its
   master copy; everyone else fetches the whole current page from the
   home, naming the modifications the reply must already contain. *)
let hlrc_validate cl node (e : entry) =
  if not (Perm.allows_read e.perm) then begin
    let home = home_of_page cl e.page in
    let pending = List.filter (still_needed node e) e.notices in
    if home = node.id then begin
      (* Master copy: in-flight diffs are guaranteed to arrive (they were
         flushed at the releases that happened before our acquire); poll
         until they have all been applied. *)
      let covered () =
        List.for_all
          (fun (n : Notice.t) -> e.reflected.(n.proc) >= n.seq)
          pending
      in
      while not (covered ()) do
        Proc.sleep cl.engine 100_000
      done;
      e.notices <- [];
      e.perm <- Perm.Read_only
    end
    else begin
      (* Collapse the pending notices into the highest needed sequence per
         writer, and require our own committed writes back too. *)
      let need = Hashtbl.create 8 in
      List.iter
        (fun (n : Notice.t) ->
          let prev = Option.value ~default:0 (Hashtbl.find_opt need n.proc) in
          if n.seq > prev then Hashtbl.replace need n.proc n.seq)
        pending;
      if e.reflected.(node.id) > 0 then
        Hashtbl.replace need node.id e.reflected.(node.id);
      let need = Hashtbl.fold (fun q s acc -> (q, s) :: acc) need [] in
      (match
         call cl ~src:node.id ~dst:home (Msg.Hlrc_fetch { page = e.page; need })
       with
      | Msg.Page_reply { data; version; committed; reflected; _ } ->
        install_copy cl node e ~data ~version ~committed ~reflected
      | _ -> failwith "Proto: unexpected reply to Hlrc_fetch");
      e.notices <- [];
      e.perm <- Perm.Read_only
    end
  end

(* Make the page readable: fetch a base copy if needed (from the processor
   named in the owner write notice with the highest version, or from the
   copy-fetch hint), then fetch and apply pending diffs. *)
let validate cl node (e : entry) =
  if is_hlrc cl then hlrc_validate cl node e
  else
  if not (Perm.allows_read e.perm) then begin
    trace cl ~node:node.id
      (Printf.sprintf "validate pg%d notices=%d" e.page
         (List.length e.notices));
    let pending = List.filter (still_needed node e) e.notices in
    let owner_notices = List.filter Notice.is_owner pending in
    (* The local frame (or the implicit initial zero page) is a valid diff
       base; a whole-page fetch is needed only after a GC dropped the copy,
       or when an owner write notice says a fresher whole-page copy exists. *)
    let need_base = not e.has_base || owner_notices <> [] in
    if need_base then begin
      let target =
        match owner_notices with
        | [] -> e.owner
        | ns ->
          let best =
            List.fold_left
              (fun (acc : Notice.t) (n : Notice.t) ->
                match (acc.version, n.version) with
                | Some va, Some vb -> if vb > va then n else acc
                | _ -> acc)
              (List.hd ns) (List.tl ns)
          in
          best.proc
      in
      if target = node.id then
        failwith
          (Printf.sprintf
             "Proto: node %d needs a base for page %d but is its own fetch \
              hint"
             node.id e.page)
      else begin
        match call cl ~src:node.id ~dst:target (Msg.Page_req { page = e.page }) with
        | Msg.Page_reply { data; version; committed; reflected; _ } ->
          install_copy cl node e ~data ~version ~committed ~reflected
        | _ -> failwith "Proto: unexpected reply to Page_req"
      end
    end;
    fetch_and_apply_diffs cl node e;
    e.perm <- Perm.Read_only
  end

(* ------------------------------------------------------------------ *)
(* Write-side helpers                                                 *)
(* ------------------------------------------------------------------ *)

let mark_dirty node (e : entry) =
  e.perm <- Perm.Read_write;
  if not e.dirty then begin
    e.dirty <- true;
    node.dirty_pages <- e.page :: node.dirty_pages
  end

let make_twin cl node (e : entry) =
  let pending_cost = materialize_pending_diff cl node e in
  if pending_cost > 0 then Proc.sleep cl.engine pending_cost;
  assert (e.twin = None);
  Proc.sleep cl.engine cl.cfg.Config.twin_ns;
  e.twin <- Some (Page.copy (frame e));
  Stats.twin_created cl.stats ~node:node.id

(* Become (or re-become) owner locally: bump the version, as ownership is
   being (re)acquired (Section 2.3). *)
let acquire_ownership_locally cl node (e : entry) =
  (* Entering SW mode: the page will be written without a twin, so any
     lazily-pending diff must be captured now. *)
  (match e.pending_diff with
  | Some _ ->
    let cost = materialize_pending_diff cl node e in
    if cost > 0 then Proc.sleep cl.engine cost
  | None -> ());
  e.version <- e.version + 1;
  e.content_version <- e.version;
  e.is_owner <- true;
  e.owner <- node.id;
  e.owned_at <- Engine.now cl.engine

(* MW-mode write path: valid copy + twin (or, with software write
   detection enabled, a write log instead of a twin). *)
let mw_write_path cl node (e : entry) =
  validate cl node e;
  if cl.cfg.Config.write_ranges then begin
    (* The pending lazy diff (if any) still needs its twin captured. *)
    let cost = materialize_pending_diff cl node e in
    if cost > 0 then Proc.sleep cl.engine cost;
    e.log_writes <- true
  end
  else make_twin cl node e;
  mark_dirty node e

(* ------------------------------------------------------------------ *)
(* Fault handlers                                                     *)
(* ------------------------------------------------------------------ *)

(* Forward declaration: the migratory read-upgrade reuses the adaptive
   ownership path, defined below with the write-fault machinery. *)
let migratory_read_upgrade :
    (cluster -> node -> entry -> unit) ref =
  ref (fun _ _ _ -> assert false)

(* Migratory-detection extension (paper Section 7): a page this node
   repeatedly reads and then writes within the same interval is classified
   migratory; its read misses are upgraded to ownership migrations so the
   subsequent write fault costs no messages. *)
let migratory_classified cl (e : entry) =
  cl.cfg.Config.migratory_detection && adaptive cl && e.migratory_score >= 2

let read_fault cl node (e : entry) =
  let t0 = Engine.now cl.engine in
  Stats.page_fault cl.stats ~read:true;
  Proc.sleep cl.engine cl.cfg.Config.fault_ns;
  e.read_fault_seq <- Vc.get node.vc node.id;
  if
    migratory_classified cl e
    && prefers_sw cl e
    && (not e.is_owner)
    && e.owner <> node.id
  then !migratory_read_upgrade cl node e
  else validate cl node e;
  Stats.add_time cl.stats ~node:node.id ~category:Stats.Fault
    ~ns:(Engine.now cl.engine - t0)

(* --- SW protocol ownership machinery (home forwarding + quantum) --- *)

(* Transfer ownership of [page] from this node to [requester], respecting
   the minimum ownership quantum (the paper's ping-pong mitigation), and
   re-forward any queued requests to the new owner. *)
let sw_grant cl node (e : entry) requester =
  trace cl ~node:node.id
    (Printf.sprintf "t=%d sw-grant pg%d -> p%d v%d"
       (Engine.now cl.engine) e.page requester e.version);
  assert e.is_owner;
  assert (requester <> node.id);
  e.is_owner <- false;
  let fire () =
    e.owner <- requester;
    if cl.cfg.Config.nprocs > 1 && Perm.allows_write e.perm then
      e.perm <- Perm.Read_only;
    cast cl ~src:node.id ~dst:requester
      (Msg.Sw_own_transfer
         {
           page = e.page;
           data = Page.copy (frame e);
           version = e.version;
           committed = e.committed_version;
         });
    (* Anyone queued behind this transfer chases the new owner. *)
    let queued = e.pending_own in
    e.pending_own <- [];
    List.iter
      (fun (r, v) ->
        if r <> requester then
          cast cl ~src:node.id ~dst:requester
            (Msg.Sw_own_forward { page = e.page; requester = r; version = v }))
      queued
  in
  let now = Engine.now cl.engine in
  let ready = e.owned_at + cl.cfg.Config.ownership_quantum_ns in
  if now >= ready then fire ()
  else Engine.schedule cl.engine ~delay:(ready - now) fire

let sw_handle_forward cl node ~requester ~version page =
  let e = node.pages.(page) in
  trace cl ~node:node.id
    (Printf.sprintf
       "t=%d sw-forward pg%d req=p%d is_owner=%b waiting=%b owner=%d pend=%d"
       (Engine.now cl.engine) page requester e.is_owner
       (Hashtbl.mem node.own_waits page)
       e.owner (List.length e.pending_own));
  if e.is_owner then sw_grant cl node e requester
  else if Hashtbl.mem node.own_waits page || e.owner = node.id then
    (* Either we are waiting for this page's ownership ourselves, or our
       own outgoing grant is scheduled but has not fired yet ([e.owner]
       still names us until the transfer fires): queue the request.  It is
       served once we own the page, or re-forwarded to the new owner by
       the firing transfer. *)
    e.pending_own <- (requester, version) :: e.pending_own
  else
    (* Not the owner any more: chase the grant chain. *)
    cast cl ~src:node.id ~dst:e.owner
      (Msg.Sw_own_forward { page; requester; version })

let sw_handle_home_req cl ~node:home_id ~src page =
  let home_node = cl.nodes.(home_id) in
  let e = home_node.pages.(page) in
  let hint = e.sw_home_hint in
  e.sw_home_hint <- src;
  if hint = home_id then
    (* The home itself is (or believes it is) on the ownership chain. *)
    sw_handle_forward cl home_node ~requester:src ~version:0 page
  else
    cast cl ~src:home_id ~dst:hint
      (Msg.Sw_own_forward { page; requester = src; version = 0 })

(* Serve the first request queued on us while our own transfer was in
   flight; the rest get re-forwarded by [sw_grant]. *)
let sw_service_pending cl node (e : entry) =
  match e.pending_own with
  | [] -> ()
  | (r, _) :: rest ->
    e.pending_own <- rest;
    sw_grant cl node e r

(* Non-adaptive SW write fault: ownership transfer through the home. *)
let sw_write_fault cl node (e : entry) =
  if e.is_owner then begin
    (* Local reacquisition: version bump, no messages. *)
    acquire_ownership_locally cl node e;
    mark_dirty node e
  end
  else begin
    Stats.ownership_request cl.stats;
    let ivar = Proc.Ivar.create () in
    Hashtbl.replace node.own_waits e.page ivar;
    let home = home_of_page cl e.page in
    trace cl ~node:node.id
      (Printf.sprintf "t=%d sw-own-req pg%d v%d" (Engine.now cl.engine) e.page
         e.version);
    if home = node.id then
      (* We are the home: run the home logic locally (no message). *)
      sw_handle_home_req cl ~node:node.id ~src:node.id e.page
    else
      cast cl ~src:node.id ~dst:home
        (Msg.Sw_own_req { page = e.page; version = e.version });
    (match Proc.Ivar.await ivar with
    | Msg.Sw_own_transfer { data; version; committed; _ } ->
      trace cl ~node:node.id
        (Printf.sprintf "t=%d sw-transfer-recv pg%d v%d"
           (Engine.now cl.engine) e.page version);
      (* Atomic state transition FIRST: a forward chasing the chain must
         never observe us neither waiting nor owning.  The install cost is
         charged afterwards. *)
      Page.blit ~src:data ~dst:(frame e);
      e.has_base <- true;
      e.version <- max e.version (version + 1);
      e.content_version <- max e.content_version committed;
      e.committed_version <- max e.committed_version committed;
      e.is_owner <- true;
      e.owner <- node.id;
      e.owned_at <- Engine.now cl.engine;
      e.notices <- [];
      Array.iteri (fun q _ -> e.reflected.(q) <- Vc.get node.vc q) e.reflected;
      Proc.sleep cl.engine cl.cfg.Config.page_install_ns;
      Hashtbl.remove node.own_waits e.page;
      mark_dirty node e;
      (* Serve ownership requests that were queued on us while the
         transfer was in flight (unless a forward arriving during the
         install already took the ownership away). *)
      if e.is_owner && e.pending_own <> [] then sw_service_pending cl node e
    | _ -> failwith "Proto: unexpected SW ownership reply")
  end

(* Adaptive write fault in MW mode (also the landing path after an
   ownership refusal, whose reply already installed a fresh base copy). *)
let adaptive_mw_write cl node (e : entry) = mw_write_path cl node e

(* Adaptive write fault (WFS / WFS+WG).  [validate] suspends, and an
   ownership request handler may run meanwhile and grant our ownership
   away, so ownership is re-checked after every suspension point (the
   [restart] calls). *)
let rec adaptive_write_fault cl node (e : entry) =
  let restart () = adaptive_write_fault cl node e in
  if prefers_sw cl e then begin
    if e.is_owner then begin
      (* Concurrent MW diffs may have invalidated even an owned page. *)
      validate cl node e;
      if not e.is_owner then restart ()
      else begin
        acquire_ownership_locally cl node e;
        mark_dirty node e
      end
    end
    else if e.owner = node.id then begin
      (* We were the last owner and nobody took ownership since (e.g.
         after the WG rule switched the page back to SW): re-establish
         ownership locally. *)
      validate cl node e;
      if e.owner <> node.id || e.is_owner then restart ()
      else begin
        acquire_ownership_locally cl node e;
        Stats.mode_switch cl.stats;
        mark_dirty node e
      end
    end
    else begin
      Stats.ownership_request cl.stats;
      let want_data = (not (Perm.allows_read e.perm)) || e.notices <> [] in
      let req =
        Msg.Own_req { page = e.page; version = e.version; want_data }
      in
      match call cl ~src:node.id ~dst:e.owner req with
      | Msg.Own_reply { result; version; committed; data; reflected; _ } -> (
        (match data with
        | Some data -> install_copy cl node e ~data ~version ~committed ~reflected
        | None -> ());
        match result with
        | Msg.Granted ->
          fetch_and_apply_diffs cl node e;
          e.version <- version;
          acquire_ownership_locally cl node e;
          mark_dirty node e
        | Msg.Refused_measure ->
          e.measured <- true;
          adaptive_mw_write cl node e
        | Msg.Refused_fs ->
          Stats.ownership_refused cl.stats;
          Stats.note_false_sharing cl.stats ~page:e.page;
          set_fs_active cl e true;
          adaptive_mw_write cl node e)
      | _ -> failwith "Proto: unexpected reply to Own_req"
    end
  end
  else begin
    if e.is_owner then begin
      (* Owner whose page now prefers MW (false sharing learned through
         notices, or small measured diffs): drop ownership and diff. *)
      e.is_owner <- false;
      e.owner <- node.id;
      Stats.mode_switch cl.stats
    end;
    adaptive_mw_write cl node e
  end

(* The migratory read-upgrade: ask for ownership at the read miss (one
   exchange); if granted, the forthcoming write fault is purely local. *)
let migratory_read_upgrade_impl cl node (e : entry) =
  Stats.migratory_upgrade cl.stats;
  Stats.ownership_request cl.stats;
  let req = Msg.Own_req { page = e.page; version = e.version; want_data = true } in
  match call cl ~src:node.id ~dst:e.owner req with
  | Msg.Own_reply { result; version; committed; data; reflected; _ } -> (
    (match data with
    | Some data -> install_copy cl node e ~data ~version ~committed ~reflected
    | None -> ());
    match result with
    | Msg.Granted ->
      fetch_and_apply_diffs cl node e;
      e.version <- version;
      acquire_ownership_locally cl node e;
      e.perm <- Perm.Read_only
    | Msg.Refused_measure ->
      e.measured <- true;
      validate cl node e
    | Msg.Refused_fs ->
      Stats.ownership_refused cl.stats;
      Stats.note_false_sharing cl.stats ~page:e.page;
      set_fs_active cl e true;
      validate cl node e)
  | _ -> failwith "Proto: unexpected reply to migratory Own_req"

let () = migratory_read_upgrade := migratory_read_upgrade_impl

(* Update the migratory classifier: a write fault preceded by a read fault
   in the same interval is migratory evidence; one without is counter-
   evidence. *)
let update_migratory_score cl node (e : entry) =
  if cl.cfg.Config.migratory_detection then
    if e.read_fault_seq = Vc.get node.vc node.id then
      e.migratory_score <- min 3 (e.migratory_score + 1)
    else e.migratory_score <- max 0 (e.migratory_score - 1)

let write_fault cl node (e : entry) =
  let t0 = Engine.now cl.engine in
  Stats.page_fault cl.stats ~read:false;
  Proc.sleep cl.engine cl.cfg.Config.fault_ns;
  update_migratory_score cl node e;
  (match cl.cfg.Config.protocol with
  | Config.Mw -> mw_write_path cl node e
  | Config.Sw -> sw_write_fault cl node e
  | Config.Wfs | Config.Wfs_wg -> adaptive_write_fault cl node e
  | Config.Hlrc ->
    hlrc_validate cl node e;
    (* The home writes its master copy in place; everyone else twins. *)
    if home_of_page cl e.page <> node.id then make_twin cl node e;
    mark_dirty node e);
  Stats.add_time cl.stats ~node:node.id ~category:Stats.Fault
    ~ns:(Engine.now cl.engine - t0)

(* ------------------------------------------------------------------ *)
(* Server-side handlers (event context: never block)                  *)
(* ------------------------------------------------------------------ *)

(* Owner-side reaction to the page becoming shared before its granularity
   has been measured (WFS+WG only): switch it to MW mode, after emitting a
   final owner notice if there are unreleased writes. *)
let wg_sharing_trigger cl node (e : entry) =
  if is_wfs_wg cl && e.is_owner && (not e.measured) && e.version > 0 then begin
    e.measured <- true;
    if e.dirty then e.drop_at_release <- true
    else begin
      e.is_owner <- false;
      e.owner <- node.id;
      Stats.mode_switch cl.stats
    end
  end

let handle_page_req cl node ~src page respond =
  let e = node.pages.(page) in
  e.copyset.(src) <- true;
  wg_sharing_trigger cl node e;
  match committed_copy e with
  | None ->
    failwith
      (Printf.sprintf
         "Proto: node %d has no copy of page %d to serve (src=%d perm=%s \
          owner=%d version=%d is_owner=%b notices=%d)"
         node.id page src
         (Perm.to_string e.perm)
         e.owner e.version e.is_owner
         (List.length e.notices))
  | Some copy ->
    respond_msg respond
      (Msg.Page_reply
         {
           page;
           data = Page.copy copy;
           version = e.version;
           committed = e.committed_version;
           reflected = Array.copy e.reflected;
         })

let handle_diff_req cl node ~src ~page ~seqs ~sees_sw respond =
  let e = node.pages.(page) in
  (* Lazy diffing: the requested interval may still be pending; create the
     diff now and charge its cost as added latency on the reply. *)
  let delay = materialize_pending_diff cl node e in
  let respond =
    if delay = 0 then respond
    else fun ~bytes ~kind msg ->
      Engine.schedule cl.engine ~delay (fun () -> respond ~bytes ~kind msg)
  in
  e.copyset.(src) <- true;
  e.fs_view.(src) <- sees_sw;
  (* Rule 1 (Section 3.1.2): if every processor in the approximate copyset
     sees the page as SW, false sharing has stopped. *)
  if adaptive cl then begin
    let all_sw = ref true in
    Array.iteri (fun q in_set -> if in_set && not e.fs_view.(q) then all_sw := false)
      e.copyset;
    if !all_sw then set_fs_active cl e false
  end;
  let diffs =
    List.map
      (fun seq ->
        match Hashtbl.find_opt node.diffs (page, node.id, seq) with
        | Some (vc, diff) -> (seq, vc, diff)
        | None ->
          failwith
            (Printf.sprintf "Proto: node %d asked for missing diff %d/%d"
               node.id page seq))
      seqs
  in
  respond_msg respond (Msg.Diff_reply { page; diffs })

(* Adaptive ownership request (Section 3.1.1, the ownership refusal
   protocol).  Always two messages; never forwarded. *)
let handle_own_req cl node ~src ~page ~version:v_req ~want_data respond =
  let e = node.pages.(page) in
  e.copyset.(src) <- true;
  let committed () =
    if want_data then
      Option.map Page.copy (committed_copy e)
    else None
  in
  let reply result data =
    respond_msg respond
      (Msg.Own_reply
         {
           page;
           result;
           version = e.version;
           committed = e.committed_version;
           data;
           reflected = Array.copy e.reflected;
         })
  in
  let refuse_fs () =
    Stats.note_false_sharing cl.stats ~page;
    set_fs_active cl e true;
    if e.is_owner then begin
      if e.dirty then e.drop_at_release <- true
      else begin
        e.is_owner <- false;
        e.owner <- node.id;
        Stats.mode_switch cl.stats
      end
    end;
    reply Msg.Refused_fs (committed ())
  in
  if e.is_owner then begin
    if is_wfs_wg cl && (not e.measured) && e.version > 0 then begin
      (* First write-sharing event: force MW to measure granularity. *)
      e.measured <- true;
      if e.dirty then e.drop_at_release <- true
      else begin
        e.is_owner <- false;
        e.owner <- node.id;
        Stats.mode_switch cl.stats
      end;
      reply Msg.Refused_measure (committed ())
    end
    else if e.version = v_req then begin
      (* Normal grant.  The owner is necessarily clean on this page (a
         dirty owner has bumped the version, which would mismatch), so its
         data frame is the committed copy.  Note: we do NOT learn the new
         version; it reaches us through owner write notices. *)
      e.is_owner <- false;
      e.owner <- src;
      reply Msg.Granted (committed ())
    end
    else refuse_fs ()
  end
  else if (not e.fs_active) && e.version = v_req && e.owner = node.id then begin
    (* Resumed ownership request (rules 1-3 cleared the FS flag): the last
       owner re-establishes single-writer mode. *)
    e.owner <- src;
    Stats.mode_switch cl.stats;
    reply Msg.Granted (committed ())
  end
  else refuse_fs ()

(* ------------------------------------------------------------------ *)
(* Locks                                                              *)
(* ------------------------------------------------------------------ *)

(* Grant a lock to [requester]: close our interval (charging its cost as
   extra latency on the grant when running in event context) and send every
   interval the requester has not seen. *)
let lock_grant_now cl node lock requester req_vc ~charge_delay =
  (* Claim the token before any suspension point so no concurrent handler
     can decide to grant the same lock again. *)
  let ls = lock_state node ~home:(home_of_lock cl lock) lock in
  ls.have_token <- false;
  ls.next <- None;
  let delay = ref 0 in
  let charge =
    match charge_delay with
    | `Sleep -> fun ns -> Proc.sleep cl.engine ns
    | `Delay -> fun ns -> delay := !delay + ns
  in
  end_interval cl node ~charge;
  let intervals = collect_unseen cl node req_vc in
  let send () =
    cast cl ~src:node.id ~dst:requester (Msg.Lock_grant { lock; intervals })
  in
  if !delay = 0 then send () else Engine.schedule cl.engine ~delay:!delay send

let handle_lock_forward cl node ~requester ~vc lock =
  let ls = lock_state node ~home:(home_of_lock cl lock) lock in
  if ls.have_token && not ls.held then
    lock_grant_now cl node lock requester vc ~charge_delay:`Delay
  else begin
    assert (ls.next = None);
    ls.next <- Some (requester, vc)
  end

let handle_lock_acquire cl node ~src ~vc lock =
  (* We are the home: append [src] to the distributed queue. *)
  let ls = lock_state node ~home:(home_of_lock cl lock) lock in
  let prev = if ls.home_tail = -1 then node.id else ls.home_tail in
  ls.home_tail <- src;
  if prev = node.id then handle_lock_forward cl node ~requester:src ~vc lock
  else
    cast cl ~src:node.id ~dst:prev
      (Msg.Lock_forward { lock; requester = src; vc })

let lock cl node l =
  let t0 = Engine.now cl.engine in
  let ls = lock_state node ~home:(home_of_lock cl l) l in
  if ls.have_token && not ls.held then ls.held <- true
  else begin
    end_interval_local cl node;
    let ivar = Proc.Ivar.create () in
    Hashtbl.replace node.lock_waits l ivar;
    let vc = Vc.copy node.vc in
    let home = home_of_lock cl l in
    if home = node.id then handle_lock_acquire cl node ~src:node.id ~vc l
    else cast cl ~src:node.id ~dst:home (Msg.Lock_acquire { lock = l; vc });
    let intervals = Proc.Ivar.await ivar in
    Hashtbl.remove node.lock_waits l;
    apply_intervals cl node intervals;
    ls.have_token <- true;
    ls.held <- true
  end;
  Stats.add_time cl.stats ~node:node.id ~category:Stats.Lock
    ~ns:(Engine.now cl.engine - t0)

let unlock cl node l =
  let ls = lock_state node ~home:(home_of_lock cl l) l in
  if not ls.held then invalid_arg "Dsm.unlock: lock not held";
  ls.held <- false;
  match ls.next with
  | Some (requester, vc) ->
    lock_grant_now cl node l requester vc ~charge_delay:`Sleep
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Barriers and garbage collection                                    *)
(* ------------------------------------------------------------------ *)

(* Rule 3 (Section 3.1.2): at a barrier, a write notice that dominates all
   other write notices — including this node's own recent writes — means
   false sharing has stopped. *)
let rule3_scan cl node =
  if adaptive cl then
    Array.iter
      (fun (e : entry) ->
        match e.notices with
        | [] -> ()
        | notices ->
          let dominates (n : Notice.t) =
            List.for_all
              (fun (m : Notice.t) ->
                Notice.same_write n m || Notice.covers ~by:n m)
              notices
            &&
            match e.last_notice_vc.(node.id) with
            | Some own -> Vc.leq own n.vc
            | None -> true
          in
          if List.exists dominates notices then set_fs_active cl e false)
      node.pages

(* Pick the copy-fetch hint for a dropped page: the writer of the latest
   pending notice (necessarily a GC validator, since its diff is live). *)
let gc_fetch_hint (pending : Notice.t list) fallback =
  match pending with
  | [] -> fallback
  | n :: rest ->
    let best =
      List.fold_left
        (fun (acc : Notice.t) (m : Notice.t) ->
          if Vc.order m.vc acc.vc > 0 then m else acc)
        n rest
    in
    best.proc

(* Validation phase of garbage collection (runs in process context inside
   the barrier).  MW: every node with live own diffs for a page validates
   its copy; the adaptive protocols: only the last owner validates.  All
   other copies are dropped. *)
let gc_validate cl node =
  Array.iter
    (fun (e : entry) ->
      let pending = List.filter (still_needed node e) e.notices in
      if pending = [] then e.notices <- []
      else begin
        let validator =
          match cl.cfg.Config.protocol with
          | Config.Mw ->
            (e.own_diff_seqs <> [] || e.pending_diff <> None)
            && e.data <> None
          | Config.Sw | Config.Hlrc -> false
            (* SW and HLRC keep no diff stores; GC never triggers. *)
          | Config.Wfs | Config.Wfs_wg -> e.owner = node.id
        in
        if validator then begin
          (* Bring the copy fully up to date. *)
          if e.data = None then ignore (frame e);
          fetch_and_apply_diffs cl node e;
          e.perm <- Perm.Read_only;
          e.content_version <- e.version;
          e.committed_version <- e.version;
          Array.iteri
            (fun q _ -> e.reflected.(q) <- Vc.get node.vc q)
            e.reflected
        end
        else begin
          let hint = gc_fetch_hint pending e.owner in
          e.data <- None;
          e.has_base <- false;
          e.perm <- Perm.No_access;
          e.notices <- [];
          e.content_version <- 0;
          e.committed_version <- 0;
          Array.fill e.reflected 0 (Array.length e.reflected) 0;
          if not (adaptive cl) then e.owner <- hint
        end
      end)
    node.pages

(* Purge the diff store and twins after everyone has validated. *)
let gc_purge cl node =
  let bytes = ref 0 and count = ref 0 in
  Hashtbl.iter
    (fun _ (_, diff) ->
      bytes := !bytes + Diff.size_bytes diff;
      incr count)
    node.diffs;
  Hashtbl.reset node.diffs;
  Stats.diffs_dropped cl.stats ~node:node.id ~bytes:!bytes ~count:!count
    ~time:(Engine.now cl.engine);
  Array.iter
    (fun (e : entry) ->
      e.own_diff_seqs <- [];
      (* Lazily-pending diffs whose notices were just discarded will never
         be requested: drop them uncreated (the lazy scheme's win). *)
      match e.pending_diff with
      | Some _ ->
        e.pending_diff <- None;
        if e.twin <> None then begin
          e.twin <- None;
          Stats.twin_freed cl.stats ~node:node.id
        end
      | None -> ())
    node.pages;
  (* Interval logs are globally known at this point; drop them so grants
     stay small.  Vector clocks keep the ordering information. *)
  Array.iteri (fun p _ -> node.intervals.(p) <- []) node.intervals

let barrier_complete cl =
  let mgr = cl.barrier_mgr in
  let manager = cl.nodes.(0) in
  (* Merge every arrival's intervals into the manager's knowledge in ONE
     batch: applying them per arrival would merge one node's vector clock
     (which covers other nodes' intervals) before those intervals' notices
     have been applied, silently dropping them. *)
  let all_intervals =
    List.concat_map (fun (_, _, intervals, _) -> intervals) mgr.arrivals
  in
  apply_intervals cl manager all_intervals;
  let gc_round = mgr.gc_requested in
  if gc_round then Stats.gc_started cl.stats;
  let epoch = mgr.epoch in
  (* Release every node with the intervals it is missing. *)
  List.iter
    (fun (src, vc, _, _) ->
      let intervals = collect_unseen cl manager vc in
      let msg = Msg.Barrier_release { epoch; intervals; gc_round } in
      if src = 0 then begin
        match manager.barrier_wait with
        | Some ivar ->
          manager.barrier_wait <- None;
          Proc.Ivar.fill cl.engine ivar msg
        | None -> assert false
      end
      else cast cl ~src:0 ~dst:src msg)
    (List.rev mgr.arrivals);
  mgr.arrivals <- [];
  mgr.arrived <- 0;
  mgr.epoch <- epoch + 1;
  mgr.gc_requested <- false;
  if gc_round then mgr.gc_done_count <- 0

let handle_barrier_arrive cl ~src ~vc ~intervals ~gc_wanted epoch =
  let mgr = cl.barrier_mgr in
  if epoch <> mgr.epoch then
    failwith
      (Printf.sprintf "Proto: barrier epoch mismatch (%d vs %d)" epoch
         mgr.epoch);
  mgr.arrivals <- (src, vc, intervals, gc_wanted) :: mgr.arrivals;
  mgr.arrived <- mgr.arrived + 1;
  if gc_wanted then mgr.gc_requested <- true;
  if mgr.arrived = cl.cfg.Config.nprocs then barrier_complete cl

let gc_complete_all cl =
  for p = 1 to cl.cfg.Config.nprocs - 1 do
    cast cl ~src:0 ~dst:p (Msg.Gc_complete { epoch = cl.barrier_mgr.epoch })
  done;
  let manager = cl.nodes.(0) in
  match manager.gc_wait with
  | Some ivar ->
    manager.gc_wait <- None;
    Proc.Ivar.fill cl.engine ivar ()
  | None -> assert false

let handle_gc_done cl =
  let mgr = cl.barrier_mgr in
  mgr.gc_done_count <- mgr.gc_done_count + 1;
  if mgr.gc_done_count = cl.cfg.Config.nprocs then gc_complete_all cl

let barrier cl node =
  let t0 = Engine.now cl.engine in
  end_interval_local cl node;
  let gc_wanted =
    Stats.diff_store_bytes cl.stats ~node:node.id
    > cl.cfg.Config.gc_threshold_bytes
  in
  let ivar = Proc.Ivar.create () in
  node.barrier_wait <- Some ivar;
  let epoch = node.barrier_epoch in
  node.barrier_epoch <- epoch + 1;
  let own_intervals =
    Interval.unseen_by node.last_barrier_vc node.intervals.(node.id)
  in
  let vc = Vc.copy node.vc in
  if node.id = 0 then
    handle_barrier_arrive cl ~src:0 ~vc ~intervals:own_intervals ~gc_wanted
      epoch
  else
    cast cl ~src:node.id ~dst:0
      (Msg.Barrier_arrive { epoch; vc; intervals = own_intervals; gc_wanted });
  (match Proc.Ivar.await ivar with
  | Msg.Barrier_release { intervals; gc_round; _ } ->
    apply_intervals cl node intervals;
    node.last_barrier_vc <- Vc.copy node.vc;
    rule3_scan cl node;
    if gc_round then begin
      let gc_ivar = Proc.Ivar.create () in
      node.gc_wait <- Some gc_ivar;
      gc_validate cl node;
      if node.id = 0 then handle_gc_done cl
      else cast cl ~src:node.id ~dst:0 (Msg.Gc_done { epoch });
      Proc.Ivar.await gc_ivar;
      gc_purge cl node
    end
  | _ -> failwith "Proto: unexpected barrier reply");
  Stats.add_time cl.stats ~node:node.id ~category:Stats.Barrier
    ~ns:(Engine.now cl.engine - t0)

(* ------------------------------------------------------------------ *)
(* HLRC home-side handlers                                            *)
(* ------------------------------------------------------------------ *)

let hlrc_covered (e : entry) need =
  List.for_all (fun (q, seq) -> e.reflected.(q) >= seq) need

let hlrc_reply_now (e : entry) respond =
  respond_msg respond
    (Msg.Page_reply
       {
         page = e.page;
         data = Page.copy (frame e);
         version = 0;
         committed = 0;
         reflected = Array.copy e.reflected;
       })

(* A diff arrived at this home: apply it to the master copy and release
   any fetches that were waiting for it. *)
let handle_hlrc_diff node ~src ~page ~seq diff =
  let e = node.pages.(page) in
  Diff.apply diff (frame e);
  if seq > e.reflected.(src) then e.reflected.(src) <- seq;
  let ready, still_waiting =
    List.partition
      (fun (p, need, _) -> p = page && hlrc_covered e need)
      node.hlrc_waiting
  in
  node.hlrc_waiting <- still_waiting;
  List.iter (fun (_, _, respond) -> hlrc_reply_now e respond) ready

let handle_hlrc_fetch node ~page ~need respond =
  let e = node.pages.(page) in
  if hlrc_covered e need then hlrc_reply_now e respond
  else node.hlrc_waiting <- (page, need, respond) :: node.hlrc_waiting

(* ------------------------------------------------------------------ *)
(* Message dispatch                                                   *)
(* ------------------------------------------------------------------ *)

let handle_message cl ~node:node_id ~src msg respond =
  let node = cl.nodes.(node_id) in
  match (msg, respond) with
  | Msg.Lock_acquire { lock; vc }, None ->
    handle_lock_acquire cl node ~src ~vc lock
  | Msg.Lock_forward { lock; requester; vc }, None ->
    handle_lock_forward cl node ~requester ~vc lock
  | Msg.Lock_grant { lock; intervals }, None -> (
    match Hashtbl.find_opt node.lock_waits lock with
    | Some ivar -> Proc.Ivar.fill cl.engine ivar intervals
    | None -> failwith "Proto: unexpected lock grant")
  | Msg.Barrier_arrive { epoch; vc; intervals; gc_wanted }, None ->
    handle_barrier_arrive cl ~src ~vc ~intervals ~gc_wanted epoch
  | Msg.Barrier_release _, None -> (
    match node.barrier_wait with
    | Some ivar ->
      node.barrier_wait <- None;
      Proc.Ivar.fill cl.engine ivar msg
    | None -> failwith "Proto: unexpected barrier release")
  | Msg.Gc_done _, None -> handle_gc_done cl
  | Msg.Gc_complete _, None -> (
    match node.gc_wait with
    | Some ivar ->
      node.gc_wait <- None;
      Proc.Ivar.fill cl.engine ivar ()
    | None -> failwith "Proto: unexpected gc complete")
  | Msg.Page_req { page }, Some respond ->
    handle_page_req cl node ~src page respond
  | Msg.Diff_req { page; seqs; sees_sw }, Some respond ->
    handle_diff_req cl node ~src ~page ~seqs ~sees_sw respond
  | Msg.Own_req { page; version; want_data }, Some respond ->
    handle_own_req cl node ~src ~page ~version ~want_data respond
  | Msg.Sw_own_req { page; _ }, None -> sw_handle_home_req cl ~node:node_id ~src page
  | Msg.Sw_own_forward { page; requester; version }, None ->
    sw_handle_forward cl node ~requester ~version page
  | Msg.Sw_own_transfer { page; _ }, None -> (
    match Hashtbl.find_opt node.own_waits page with
    | Some ivar -> Proc.Ivar.fill cl.engine ivar msg
    | None -> failwith "Proto: unexpected ownership transfer")
  | Msg.Hlrc_diff { page; seq; diff; _ }, None ->
    handle_hlrc_diff node ~src ~page ~seq diff
  | Msg.Hlrc_fetch { page; need }, Some respond ->
    handle_hlrc_fetch node ~page ~need respond
  | _ -> failwith "Proto: malformed message/response combination"
