type t = int array

let zero ~nprocs =
  if nprocs <= 0 then invalid_arg "Vc.zero: nprocs must be positive";
  Array.make nprocs 0

let copy = Array.copy

let nprocs = Array.length

let get t i = t.(i)

let set t i v = t.(i) <- v

let tick t ~proc = t.(proc) <- t.(proc) + 1

let merge_into t other =
  if Array.length t <> Array.length other then
    invalid_arg "Vc.merge_into: size mismatch";
  for i = 0 to Array.length t - 1 do
    if other.(i) > t.(i) then t.(i) <- other.(i)
  done

let leq a b =
  if Array.length a <> Array.length b then invalid_arg "Vc.leq: size mismatch";
  let rec go i = i = Array.length a || (a.(i) <= b.(i) && go (i + 1)) in
  go 0

let concurrent a b = (not (leq a b)) && not (leq b a)

let sum a = Array.fold_left ( + ) 0 a

let order a b =
  if leq a b then if leq b a then 0 else -1
  else if leq b a then 1
  else begin
    (* Concurrent: any deterministic total order respecting nothing in
       particular is fine, as concurrent diffs touch disjoint words when the
       program is race-free.  Use (sum, lexicographic). *)
    let c = compare (sum a) (sum b) in
    if c <> 0 then c else compare a b
  end

let size_bytes t = 4 * Array.length t

let equal a b = a = b

let pp ppf t =
  Format.fprintf ppf "<%a>"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
       Format.pp_print_int)
    (Array.to_list t)
