lib/dsm/config.mli: Adsm_net
