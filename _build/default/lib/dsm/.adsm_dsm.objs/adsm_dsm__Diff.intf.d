lib/dsm/diff.mli: Adsm_mem Format
