lib/dsm/dsm.mli: Adsm_sim Config Stats
