lib/dsm/stats.ml: Adsm_mem Adsm_sim Array Hashtbl List
