lib/dsm/proto.mli: Adsm_net Msg State
