lib/dsm/msg.ml: Adsm_mem Array Diff Format Interval List Printf Vc
