lib/dsm/dsm.ml: Adsm_mem Adsm_net Adsm_sim Array Buffer Config Hashtbl Int32 Printf Proto State Stats String
