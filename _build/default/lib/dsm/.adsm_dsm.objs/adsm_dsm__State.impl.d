lib/dsm/state.ml: Adsm_mem Adsm_net Adsm_sim Array Config Diff Hashtbl Int64 Interval Msg Notice Stats Vc
