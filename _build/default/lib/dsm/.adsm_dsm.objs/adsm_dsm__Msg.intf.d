lib/dsm/msg.mli: Adsm_mem Diff Format Interval Vc
