lib/dsm/notice.mli: Format Vc
