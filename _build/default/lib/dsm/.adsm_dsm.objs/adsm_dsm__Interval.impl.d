lib/dsm/interval.ml: Format List Notice Vc
