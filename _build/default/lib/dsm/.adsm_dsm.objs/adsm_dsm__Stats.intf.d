lib/dsm/stats.mli: Adsm_sim
