lib/dsm/proto.ml: Adsm_mem Adsm_net Adsm_sim Array Config Diff Hashtbl Interval List Msg Notice Option Printf State Stats Vc
