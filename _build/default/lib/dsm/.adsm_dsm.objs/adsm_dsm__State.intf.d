lib/dsm/state.mli: Adsm_mem Adsm_net Adsm_sim Config Diff Hashtbl Interval Msg Notice Stats Vc
