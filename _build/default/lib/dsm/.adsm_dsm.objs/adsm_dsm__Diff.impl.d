lib/dsm/diff.ml: Adsm_mem Bytes Format List
