lib/dsm/interval.mli: Format Notice Vc
