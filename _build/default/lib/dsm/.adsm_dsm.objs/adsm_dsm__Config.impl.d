lib/dsm/config.ml: Adsm_net String
