lib/dsm/notice.ml: Format Printf Vc
