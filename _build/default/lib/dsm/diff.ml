module Page = Adsm_mem.Page

type run = { off : int; data : Bytes.t }

type t = run list
(* Runs are kept in increasing offset order. *)

let run_header_bytes = 4 (* 2-byte offset + 2-byte length *)

(* Modifications are detected at 32-bit word granularity, as in TreadMarks:
   a word with any differing byte contributes all four bytes to the diff.
   This is what makes a page of small counter updates diff at nearly the
   full page size (the paper's IS behaviour). *)
let word = 4

let create ~twin ~current =
  let a = Page.raw twin and b = Page.raw current in
  let n = Page.size / word in
  let differs w = Bytes.get_int32_le a (w * word) <> Bytes.get_int32_le b (w * word) in
  let runs = ref [] in
  let w = ref 0 in
  while !w < n do
    if differs !w then begin
      let start = !w in
      while !w < n && differs !w do
        incr w
      done;
      let off = start * word in
      let len = (!w - start) * word in
      runs := { off; data = Bytes.sub b off len } :: !runs
    end
    else incr w
  done;
  List.rev !runs

let apply t page =
  let raw = Page.raw page in
  List.iter
    (fun { off; data } -> Bytes.blit data 0 raw off (Bytes.length data))
    t

let size_bytes t =
  List.fold_left
    (fun acc { data; _ } -> acc + run_header_bytes + Bytes.length data)
    0 t

let is_empty t = t = []

let run_count = List.length

let modified_bytes t =
  List.fold_left (fun acc { data; _ } -> acc + Bytes.length data) 0 t

let ranges t = List.map (fun { off; data } -> (off, Bytes.length data)) t

let pp ppf t =
  Format.fprintf ppf "diff[%d runs, %d bytes]" (run_count t) (modified_bytes t)

let of_ranges ranges page =
  (* Build a diff directly from logged write ranges (software write
     detection): coalesce and word-align the ranges, then capture the
     current contents.  No twin or page scan is needed. *)
  let aligned =
    List.map
      (fun (off, len) ->
        let start = off / word * word in
        let stop = (off + len + word - 1) / word * word in
        (start, min Page.size stop))
      ranges
  in
  let sorted = List.sort compare aligned in
  let merged =
    List.fold_left
      (fun acc (start, stop) ->
        match acc with
        | (pstart, pstop) :: rest when start <= pstop ->
          (pstart, max pstop stop) :: rest
        | _ -> (start, stop) :: acc)
      [] sorted
  in
  let raw = Page.raw page in
  List.rev_map
    (fun (start, stop) -> { off = start; data = Bytes.sub raw start (stop - start) })
    merged
