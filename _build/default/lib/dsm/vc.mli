(** Vector timestamps for lazy release consistency.

    Component [i] of a node's clock is the sequence number of the most
    recent interval of processor [i] whose modifications the node has seen.
    The happened-before-1 partial order of the paper is exactly the
    componentwise order on these vectors. *)

type t

val zero : nprocs:int -> t

val copy : t -> t

val nprocs : t -> int

val get : t -> int -> int

val set : t -> int -> int -> unit

(** Increment component [proc] (a new interval of that processor). *)
val tick : t -> proc:int -> unit

(** Componentwise maximum, into the first argument. *)
val merge_into : t -> t -> unit

(** [leq a b] — every component of [a] is at or below [b]:
    "[a] happened before or is [b]". *)
val leq : t -> t -> bool

(** Neither [leq a b] nor [leq b a]: concurrent intervals. *)
val concurrent : t -> t -> bool

(** Total order extending happened-before-1, for applying diffs "in
    timestamp order": componentwise-dominated first, concurrent vectors
    tie-broken by (sum, lexicographic). *)
val order : t -> t -> int

(** Wire size in bytes (4 per component). *)
val size_bytes : t -> int

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
