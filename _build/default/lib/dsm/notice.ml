type t = {
  page : int;
  proc : int;
  seq : int;
  vc : Vc.t;
  version : int option;
}

let is_owner t = t.version <> None

let covers ~by t = Vc.leq t.vc by.vc

let same_write a b = a.proc = b.proc && a.seq = b.seq && a.page = b.page

let size_bytes t = match t.version with None -> 8 | Some _ -> 12

let pp ppf t =
  Format.fprintf ppf "wn(p%d i%d pg%d%s)" t.proc t.seq t.page
    (match t.version with None -> "" | Some v -> Printf.sprintf " v%d" v)
