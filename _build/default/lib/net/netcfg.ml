type t = {
  send_overhead_ns : int;
  recv_overhead_ns : int;
  wire_latency_ns : int;
  per_byte_ns : int;
  header_bytes : int;
}

(* Calibration for the paper's testbed (Section 4):

   - smallest-message RTT = 1 ms
   - remote 4096-byte page fetch = 1921 us

   With [one_way b = send + wire + (header + b) * per_byte + recv]:
     small RTT  = 2 * (490 us + 40 B * 225 ns)            =  998.0 us
     page fetch = small RTT + 4096 B * 225 ns             = 1919.6 us

   The 225 ns/B effective byte cost (~4.4 MB/s) reflects the measured
   large-datagram UDP throughput of the SPARC-20/ATM testbed (fragmentation
   and per-cell CPU costs dominate), not the 155 Mbps signalling rate. *)
let atm_155 =
  {
    send_overhead_ns = 150_000;
    recv_overhead_ns = 150_000;
    wire_latency_ns = 190_000;
    per_byte_ns = 225;
    header_bytes = 40;
  }

let fast_ethernet =
  {
    send_overhead_ns = 10_000;
    recv_overhead_ns = 10_000;
    wire_latency_ns = 5_000;
    per_byte_ns = 1;
    header_bytes = 40;
  }

let one_way_ns t ~bytes =
  if bytes < 0 then invalid_arg "Netcfg.one_way_ns: negative size";
  t.send_overhead_ns + t.wire_latency_ns
  + ((t.header_bytes + bytes) * t.per_byte_ns)
  + t.recv_overhead_ns

let round_trip_ns t ~req_bytes ~reply_bytes =
  one_way_ns t ~bytes:req_bytes + one_way_ns t ~bytes:reply_bytes
