type 'msg t =
  | Request of int * 'msg
  | Reply of int * 'msg
  | Oneway of 'msg

let payload = function Request (_, m) | Reply (_, m) | Oneway m -> m
