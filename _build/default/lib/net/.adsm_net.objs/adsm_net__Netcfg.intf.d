lib/net/netcfg.mli:
