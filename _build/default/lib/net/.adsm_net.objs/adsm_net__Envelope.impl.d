lib/net/envelope.ml:
