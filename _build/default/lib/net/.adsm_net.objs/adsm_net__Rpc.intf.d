lib/net/rpc.mli: Adsm_sim Envelope Netcfg Network
