lib/net/network.mli: Adsm_sim Netcfg
