lib/net/netcfg.ml:
