lib/net/network.ml: Adsm_sim Array Hashtbl List Netcfg Printf String
