lib/net/envelope.mli:
