lib/net/rpc.ml: Adsm_sim Array Envelope Hashtbl Network Printf
