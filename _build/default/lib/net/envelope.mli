(** Wire envelope used by {!Rpc} to correlate requests with replies. *)

type 'msg t =
  | Request of int * 'msg  (** correlation id, payload *)
  | Reply of int * 'msg
  | Oneway of 'msg

val payload : 'msg t -> 'msg
