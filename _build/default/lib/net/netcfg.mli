(** Network cost model.

    The model charges each message
    [send_overhead + wire_latency + payload_bytes * per_byte + recv_overhead]
    nanoseconds end to end, and serializes messages on each directed link
    (a later message never overtakes an earlier one on the same link).

    The default is calibrated to the paper's Section 4 environment: 8
    SPARC-20s on 155 Mbps ATM over UDP, where the smallest-message round trip
    is 1 ms and fetching a 4096-byte page remotely takes 1921 us. *)

type t = {
  send_overhead_ns : int;  (** sender-side software cost per message *)
  recv_overhead_ns : int;  (** receiver-side software cost per message *)
  wire_latency_ns : int;  (** propagation + switching delay *)
  per_byte_ns : int;  (** inverse bandwidth, ns per payload byte *)
  header_bytes : int;  (** protocol header accounted to every message *)
}

(** Cost model reproducing the paper's testbed:
    - small-message round-trip time = 1 ms,
    - remote 4 KB page fetch = 1921 us
      (request + reply carrying the page + fault handling). *)
val atm_155 : t

(** A fast modern-network model (for sensitivity experiments): 10 us
    overheads, 5 us latency, ~1 Gbps. *)
val fast_ethernet : t

(** One-way transfer time for a message with [bytes] of payload. *)
val one_way_ns : t -> bytes:int -> int

(** Round-trip time for a request of [req_bytes] and reply of [reply_bytes]. *)
val round_trip_ns : t -> req_bytes:int -> reply_bytes:int -> int
