type t = No_access | Read_only | Read_write

let allows_read = function No_access -> false | Read_only | Read_write -> true

let allows_write = function No_access | Read_only -> false | Read_write -> true

let to_string = function
  | No_access -> "none"
  | Read_only -> "ro"
  | Read_write -> "rw"

let pp ppf t = Format.pp_print_string ppf (to_string t)
