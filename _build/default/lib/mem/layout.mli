(** Global shared address-space layout.

    Regions are allocated page-aligned out of a single global page-number
    space shared by all nodes; a global page number identifies a coherence
    unit in the DSM protocols.  The layout itself holds no data — each node
    materializes its own copies of pages. *)

type region = {
  id : int;
  name : string;
  first_page : int;  (** global number of the region's first page *)
  page_count : int;
  byte_size : int;  (** requested size; the region occupies whole pages *)
}

type t

val create : unit -> t

(** Allocate a new page-aligned region of at least [bytes] bytes. *)
val alloc : t -> name:string -> bytes:int -> region

(** Total pages allocated so far. *)
val total_pages : t -> int

val regions : t -> region list

(** [locate region offset] is [(global_page, offset_in_page)].
    @raise Invalid_argument if [offset] is outside the region. *)
val locate : region -> int -> int * int

(** [region_of_page t page] finds the region containing a global page. *)
val region_of_page : t -> int -> region option

(** Pages spanned by the byte range [\[offset, offset+len)] of a region. *)
val pages_of_range : region -> offset:int -> len:int -> int list
