lib/mem/layout.ml: List Page Printf
