lib/mem/layout.mli:
