lib/mem/page.ml: Bytes Char Int64 Printf
