let size = 4096

type t = Bytes.t

let create () = Bytes.make size '\000'

let copy t = Bytes.copy t

let blit ~src ~dst = Bytes.blit src 0 dst 0 size

let equal = Bytes.equal

let get_byte t i = Char.code (Bytes.get t i)

let set_byte t i v = Bytes.set t i (Char.chr (v land 0xff))

let get_i32 t i = Bytes.get_int32_le t i

let set_i32 t i v = Bytes.set_int32_le t i v

let get_f64 t i = Int64.float_of_bits (Bytes.get_int64_le t i)

let set_f64 t i v = Bytes.set_int64_le t i (Int64.bits_of_float v)

let raw t = t

let of_bytes b =
  if Bytes.length b <> size then
    invalid_arg
      (Printf.sprintf "Page.of_bytes: expected %d bytes, got %d" size
         (Bytes.length b));
  b

let fill_zero t = Bytes.fill t 0 size '\000'
