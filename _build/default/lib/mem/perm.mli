(** Simulated page protection.

    Stands in for [mprotect] access rights: an access that exceeds the
    current permission raises a simulated page fault in the DSM layer. *)

type t = No_access | Read_only | Read_write

val allows_read : t -> bool

val allows_write : t -> bool

val to_string : t -> string

val pp : Format.formatter -> t -> unit
