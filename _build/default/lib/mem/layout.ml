type region = {
  id : int;
  name : string;
  first_page : int;
  page_count : int;
  byte_size : int;
}

type t = { mutable next_page : int; mutable allocated : region list }

let create () = { next_page = 0; allocated = [] }

let alloc t ~name ~bytes =
  if bytes <= 0 then invalid_arg "Layout.alloc: size must be positive";
  let page_count = (bytes + Page.size - 1) / Page.size in
  let region =
    {
      id = List.length t.allocated;
      name;
      first_page = t.next_page;
      page_count;
      byte_size = bytes;
    }
  in
  t.next_page <- t.next_page + page_count;
  t.allocated <- region :: t.allocated;
  region

let total_pages t = t.next_page

let regions t = List.rev t.allocated

let locate region offset =
  if offset < 0 || offset >= region.byte_size then
    invalid_arg
      (Printf.sprintf "Layout.locate: offset %d outside region %s (%d bytes)"
         offset region.name region.byte_size);
  (region.first_page + (offset / Page.size), offset mod Page.size)

let region_of_page t page =
  List.find_opt
    (fun r -> page >= r.first_page && page < r.first_page + r.page_count)
    t.allocated

let pages_of_range region ~offset ~len =
  if len <= 0 then []
  else begin
    let first, _ = locate region offset in
    let last, _ = locate region (offset + len - 1) in
    List.init (last - first + 1) (fun i -> first + i)
  end
