(** Barnes-Hut hierarchical N-body simulation (paper Section 5).

    The body array is shared; tree cells are private, as in the paper's
    version.  Bodies are partitioned in small interleaved chunks, so both
    reads and writes to the body array are fine-grained and most body
    pages are write-write falsely shared — the pattern on which MW (and
    the adaptive protocols in MW mode) decisively beat SW. *)

type params = { bodies : int; steps : int; theta : float }

(** Scaled-down stand-in for the paper's 32K-body input. *)
val default : params

val tiny : params

val data_desc : params -> string

val sync_desc : string

val make : Adsm_dsm.Dsm.t -> params -> (Adsm_dsm.Dsm.ctx -> unit) * (unit -> float)
