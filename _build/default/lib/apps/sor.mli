(** Red-Black successive over-relaxation (paper Section 5).

    The shared matrix is divided into bands of rows, one band per
    processor; communication happens across band boundaries.  With the
    default geometry one row fills exactly one page, so there is no
    write-write false sharing (as in the paper's input).  Boundary
    elements start at 1 and interior elements at 0, so the set of elements
    that change — and hence the write granularity — grows with every
    iteration, which is what drives WFS+WG's delayed switch to SW. *)

type params = { rows : int; cols : int; iters : int }

(** Scaled-down stand-in for the paper's 1000x2000 input. *)
val default : params

val tiny : params

val data_desc : params -> string

val sync_desc : string

(** Allocate the shared data and return the per-processor program plus a
    checksum extractor (set by processor 0 after the final barrier). *)
val make : Adsm_dsm.Dsm.t -> params -> (Adsm_dsm.Dsm.ctx -> unit) * (unit -> float)
