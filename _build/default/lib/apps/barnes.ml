module Dsm = Adsm_dsm.Dsm
module Rng = Adsm_sim.Rng

type params = { bodies : int; steps : int; theta : float }

let default = { bodies = 512; steps = 10; theta = 0.5 }

let tiny = { bodies = 64; steps = 2; theta = 0.8 }

let data_desc p = Printf.sprintf "%d bodies" p.bodies

let sync_desc = "b"

(* 10 doubles per body (mass, pos3, vel3, acc3), 80 bytes: ~51 bodies per
   page.  Interleaved chunk ownership makes nearly every page
   multi-writer. *)
let body_size = 10

let chunk = 8 (* bodies per ownership chunk *)

let ns_per_interaction = 3_000

let ns_per_insert = 2_000

(* --- private octree --- *)

type cell = {
  mutable mass : float;
  mutable cx : float;
  mutable cy : float;
  mutable cz : float;
  mutable half : float;  (** half edge length *)
  mutable mx : float;
  mutable my : float;
  mutable mz : float;  (** center of mass *)
  mutable children : node array;  (** 8 octants, or [||] for none *)
  mutable body : int;  (** body index for a leaf, -1 otherwise *)
}

and node = Empty | Node of cell

let new_cell cx cy cz half =
  {
    mass = 0.;
    cx;
    cy;
    cz;
    half;
    mx = 0.;
    my = 0.;
    mz = 0.;
    children = [||];
    body = -1;
  }

let octant c x y z =
  (if x >= c.cx then 1 else 0)
  lor (if y >= c.cy then 2 else 0)
  lor if z >= c.cz then 4 else 0

let child_center c o =
  let q = c.half /. 2. in
  ( (c.cx +. if o land 1 = 1 then q else -.q),
    (c.cy +. if o land 2 = 2 then q else -.q),
    c.cz +. if o land 4 = 4 then q else -.q )

(* Coincident (or nearly so) bodies would split forever; beyond the depth
   cap they are merged into the leaf's aggregate mass. *)
let max_depth = 24

let rec insert ?(depth = 0) c i x y z m inserts =
  incr inserts;
  if depth >= max_depth then begin
    (* aggregate leaf *)
    let total = c.mass +. m in
    if total > 0. then begin
      c.mx <- ((c.mx *. c.mass) +. (x *. m)) /. total;
      c.my <- ((c.my *. c.mass) +. (y *. m)) /. total;
      c.mz <- ((c.mz *. c.mass) +. (z *. m)) /. total
    end;
    c.mass <- total;
    c.body <- -2
  end
  else if c.children = [||] && c.body = -1 && c.mass = 0. then begin
    (* empty leaf slot *)
    c.body <- i;
    c.mass <- m;
    c.mx <- x;
    c.my <- y;
    c.mz <- z
  end
  else begin
    if c.children = [||] then begin
      (* split: push the resident body down *)
      c.children <- Array.make 8 Empty;
      let b = c.body in
      if b >= 0 then begin
        c.body <- -1;
        let o = octant c c.mx c.my c.mz in
        let ox, oy, oz = child_center c o in
        let sub = new_cell ox oy oz (c.half /. 2.) in
        c.children.(o) <- Node sub;
        insert ~depth:(depth + 1) sub b c.mx c.my c.mz c.mass inserts;
        c.mass <- 0.
      end
    end;
    let o = octant c x y z in
    (match c.children.(o) with
    | Node sub -> insert ~depth:(depth + 1) sub i x y z m inserts
    | Empty ->
      let ox, oy, oz = child_center c o in
      let sub = new_cell ox oy oz (c.half /. 2.) in
      c.children.(o) <- Node sub;
      insert ~depth:(depth + 1) sub i x y z m inserts)
  end

let rec summarize c =
  if c.children <> [||] then begin
    let m = ref 0. and x = ref 0. and y = ref 0. and z = ref 0. in
    Array.iter
      (function
        | Empty -> ()
        | Node sub ->
          summarize sub;
          m := !m +. sub.mass;
          x := !x +. (sub.mass *. sub.mx);
          y := !y +. (sub.mass *. sub.my);
          z := !z +. (sub.mass *. sub.mz))
      c.children;
    c.mass <- !m;
    if !m > 0. then begin
      c.mx <- !x /. !m;
      c.my <- !y /. !m;
      c.mz <- !z /. !m
    end
  end

let make t p =
  let bodies = Dsm.alloc_f64 t ~name:"barnes-bodies" ~len:(p.bodies * body_size) in
  let checksum = Common.new_checksum () in
  let run ctx =
    let me = Dsm.me ctx and nprocs = Dsm.nprocs ctx in
    let mine i = i / chunk mod nprocs = me in
    let fidx i field = (i * body_size) + field in
    (* Initialize own bodies (interleaved chunks); a per-body seed makes
       the workload independent of the processor count. *)
    for i = 0 to p.bodies - 1 do
      if mine i then begin
        let rng = Rng.create (Int64.of_int ((i * 104729) + 7)) in
        Dsm.f64_set ctx bodies (fidx i 0) (1.0 +. Rng.float rng);
        for k = 0 to 2 do
          Dsm.f64_set ctx bodies (fidx i (1 + k)) (Rng.float rng -. 0.5);
          Dsm.f64_set ctx bodies (fidx i (4 + k))
            ((Rng.float rng -. 0.5) *. 0.01)
        done
      end
    done;
    Dsm.barrier ctx;
    for _step = 1 to p.steps do
      (* Build a private tree over all (shared) bodies. *)
      let root = new_cell 0. 0. 0. 1.0 in
      let inserts = ref 0 in
      for i = 0 to p.bodies - 1 do
        let m = Dsm.f64_get ctx bodies (fidx i 0)
        and x = Dsm.f64_get ctx bodies (fidx i 1)
        and y = Dsm.f64_get ctx bodies (fidx i 2)
        and z = Dsm.f64_get ctx bodies (fidx i 3) in
        insert root i x y z m inserts
      done;
      summarize root;
      Dsm.compute ctx (ns_per_insert * !inserts);
      (* Forces on own bodies via tree walk; update acceleration,
         velocity, position (fine-grained scattered writes). *)
      let interactions = ref 0 in
      for i = 0 to p.bodies - 1 do
        if mine i then begin
          let x = Dsm.f64_get ctx bodies (fidx i 1)
          and y = Dsm.f64_get ctx bodies (fidx i 2)
          and z = Dsm.f64_get ctx bodies (fidx i 3) in
          let ax = ref 0. and ay = ref 0. and az = ref 0. in
          let rec walk c =
            if c.mass > 0. then begin
              let dx = c.mx -. x and dy = c.my -. y and dz = c.mz -. z in
              let r2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) +. 1e-6 in
              let width = 2. *. c.half in
              if c.children = [||] || width *. width < p.theta *. p.theta *. r2
              then begin
                if c.body <> i then begin
                  incr interactions;
                  let r = sqrt r2 in
                  let f = c.mass /. (r2 *. r) in
                  ax := !ax +. (f *. dx);
                  ay := !ay +. (f *. dy);
                  az := !az +. (f *. dz)
                end
              end
              else
                Array.iter
                  (function Empty -> () | Node sub -> walk sub)
                  c.children
            end
          in
          walk root;
          for k = 0 to 2 do
            let a = match k with 0 -> !ax | 1 -> !ay | _ -> !az in
            Dsm.f64_set ctx bodies (fidx i (7 + k)) a
          done
        end
      done;
      Dsm.compute ctx (ns_per_interaction * !interactions);
      (* Accelerations are complete everywhere before any position moves:
         the integration phase is separated by a barrier, as in SPLASH
         (otherwise tree-build reads would race with position writes). *)
      Dsm.barrier ctx;
      for i = 0 to p.bodies - 1 do
        if mine i then begin
          let dt = 0.005 in
          for k = 0 to 2 do
            let a = Dsm.f64_get ctx bodies (fidx i (7 + k)) in
            let vel = Dsm.f64_get ctx bodies (fidx i (4 + k)) +. (dt *. a) in
            Dsm.f64_set ctx bodies (fidx i (4 + k)) vel;
            let pos = Dsm.f64_get ctx bodies (fidx i (1 + k)) +. (dt *. vel) in
            (* reflect at the root cell's walls *)
            let pos =
              if pos > 0.99 then 1.98 -. pos
              else if pos < -0.99 then -1.98 -. pos
              else pos
            in
            let pos = max (-0.99) (min 0.99 pos) in
            Dsm.f64_set ctx bodies (fidx i (1 + k)) pos
          done
        end
      done;
      Dsm.compute ctx (ns_per_interaction * p.bodies / Dsm.nprocs ctx);
      Dsm.barrier ctx
    done;
    if me = 0 then begin
      let acc = ref 0. in
      for i = 0 to p.bodies - 1 do
        acc := Common.mix !acc (Dsm.f64_get ctx bodies (fidx i 1))
      done;
      Common.set_checksum checksum !acc
    end;
    Dsm.barrier ctx
  in
  (run, fun () -> Common.get_checksum checksum)
